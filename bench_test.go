package gippr

// One benchmark per paper figure (DESIGN.md section 3), plus ablation
// benches for the design decisions DESIGN.md calls out and microbenchmarks
// of the simulation kernels.
//
// Figure benches compute their experiment once per process (memoized lab,
// shared across benches) and report the figure's headline series as custom
// benchmark metrics, so `go test -bench=Fig` regenerates the paper's
// numbers. The full per-benchmark tables come from `go run
// ./cmd/gippr-report`. Scale follows GIPPR_SCALE (default: "default").

import (
	"fmt"
	"sync"
	"testing"

	"gippr/internal/batchreplay"
	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/experiments"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/stats"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
	"gippr/internal/workload"
	"gippr/internal/xrand"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
)

func lab() *experiments.Lab {
	benchOnce.Do(func() { benchLab = experiments.NewLab(experiments.ScaleFromEnv()) })
	return benchLab
}

// BenchmarkFig1RandomIPVSweep: the sorted random design-space exploration.
// Reported metrics: best and median estimated speedup and the fraction of
// random vectors beating LRU (paper: a small minority, best around +2.8%).
func BenchmarkFig1RandomIPVSweep(b *testing.B) {
	var res experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig1(lab())
	}
	b.ReportMetric(res.Summary.Max, "best-speedup")
	b.ReportMetric(res.Summary.Median, "median-speedup")
	b.ReportMetric(res.Summary.FractionAboveOne, "frac-beating-lru")
}

// BenchmarkFig2LRUTransitionGraph and BenchmarkFig3GIPLRTransitionGraph
// build the structural figures (they also serve as microbenchmarks of graph
// construction).
func BenchmarkFig2LRUTransitionGraph(b *testing.B) {
	var edges int
	for i := 0; i < b.N; i++ {
		g := experiments.Fig2()
		edges = len(g.Solid) + len(g.Dashed)
	}
	b.ReportMetric(float64(edges), "edges")
}

func BenchmarkFig3GIPLRTransitionGraph(b *testing.B) {
	var edges int
	for i := 0; i < b.N; i++ {
		g := experiments.Fig3()
		edges = len(g.Solid) + len(g.Dashed)
	}
	b.ReportMetric(float64(edges), "edges")
}

// BenchmarkFig4GIPLRSpeedup: geometric-mean speedup over LRU of PLRU,
// Random and the evolved GIPLR vector (paper: ~1.00, ~0.999, ~1.031).
func BenchmarkFig4GIPLRSpeedup(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig4(lab())
	}
	b.ReportMetric(t.GeoMean("PLRU"), "plru-speedup")
	b.ReportMetric(t.GeoMean("Random"), "random-speedup")
	b.ReportMetric(t.GeoMean("GIPLR"), "giplr-speedup")
}

// BenchmarkFig8PLRUPositions exercises the Figure 8 structural property:
// reading all 16 positions of a PseudoLRU tree.
func BenchmarkFig8PLRUPositions(b *testing.B) {
	tr := policy.NewPLRU(1, 16).Tree(0)
	s := 0
	for i := 0; i < b.N; i++ {
		tr.Promote(i & 15)
		for w := 0; w < 16; w++ {
			s += tr.Position(w)
		}
	}
	_ = s
}

// BenchmarkFig10NormalizedMPKI: geometric-mean MPKI normalized to LRU for
// the 1-, 2- and 4-vector workload-neutral GIPPR and Belady MIN
// (paper: 95.2%, 96.5%, 91.0%, 67.5%).
func BenchmarkFig10NormalizedMPKI(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig10(lab())
	}
	b.ReportMetric(t.GeoMean("WN-GIPPR"), "wn-gippr")
	b.ReportMetric(t.GeoMean("WN-2-DGIPPR"), "wn-2dgippr")
	b.ReportMetric(t.GeoMean("WN-4-DGIPPR"), "wn-4dgippr")
	b.ReportMetric(t.GeoMean("Optimal"), "optimal")
}

// BenchmarkFig11MPKIvsStateOfArt: geometric-mean normalized MPKI of DRRIP,
// PDP and WN-4-DGIPPR (paper: 91.5%, 90.2%, 91.0%).
func BenchmarkFig11MPKIvsStateOfArt(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig11(lab())
	}
	b.ReportMetric(t.GeoMean("DRRIP"), "drrip")
	b.ReportMetric(t.GeoMean("PDP"), "pdp")
	b.ReportMetric(t.GeoMean("WN-4-DGIPPR"), "wn-4dgippr")
	b.ReportMetric(t.GeoMean("Optimal"), "optimal")
}

// BenchmarkFig12WNvsWI: workload-neutral vs workload-inclusive speedups
// (paper: 3.47/4.96/5.61% WN vs 3.68/5.12/5.66% WI).
func BenchmarkFig12WNvsWI(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Fig12(lab())
	}
	b.ReportMetric(t.GeoMean("WN-GIPPR"), "wn-1")
	b.ReportMetric(t.GeoMean("WN-2-DGIPPR"), "wn-2")
	b.ReportMetric(t.GeoMean("WN-4-DGIPPR"), "wn-4")
	b.ReportMetric(t.GeoMean("WI-GIPPR"), "wi-1")
	b.ReportMetric(t.GeoMean("WI-2-DGIPPR"), "wi-2")
	b.ReportMetric(t.GeoMean("WI-4-DGIPPR"), "wi-4")
}

// BenchmarkFig13Speedup: overall and memory-intensive-subset speedups of
// DRRIP, PDP and WN-4-DGIPPR (paper: 5.41/5.69/5.61% overall,
// 15.6/16.4/15.6% on the subset).
func BenchmarkFig13Speedup(b *testing.B) {
	var res experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig13(lab())
	}
	b.ReportMetric(res.Table.GeoMean("DRRIP"), "drrip")
	b.ReportMetric(res.Table.GeoMean("PDP"), "pdp")
	b.ReportMetric(res.Table.GeoMean("WN-4-DGIPPR"), "wn-4dgippr")
	b.ReportMetric(res.SubsetGeoMeans["DRRIP"], "drrip-subset")
	b.ReportMetric(res.SubsetGeoMeans["PDP"], "pdp-subset")
	b.ReportMetric(res.SubsetGeoMeans["WN-4-DGIPPR"], "wn-4dgippr-subset")
	b.ReportMetric(float64(len(res.MemoryIntensive)), "subset-size")
}

// BenchmarkOverheadTable: the Section 3.6 storage comparison; reported
// metric is GIPPR's bits per block (paper: < 0.94).
func BenchmarkOverheadTable(b *testing.B) {
	var rows []policy.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = policy.OverheadTable(cache.L3Config, []string{"lru", "plru", "gippr", "2-dgippr", "4-dgippr", "drrip", "pdp"})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Policy {
		case "GIPPR":
			b.ReportMetric(r.BitsPerBlock, "gippr-bits/block")
		case "LRU":
			b.ReportMetric(r.BitsPerBlock, "lru-bits/block")
		case "DRRIP":
			b.ReportMetric(r.BitsPerBlock, "drrip-bits/block")
		}
	}
}

// BenchmarkVectorsLearned: one GA run at the current scale (the Section 5.3
// pipeline end-to-end); metric is the best fitness found.
func BenchmarkVectorsLearned(b *testing.B) {
	var res experiments.VectorsLearnedResult
	for i := 0; i < b.N; i++ {
		res = experiments.VectorsLearned(lab())
	}
	b.ReportMetric(res.FreshFit, "best-fitness")
}

// BenchmarkLabGrid measures the parallel evaluation engine on a smoke-scale
// multi-policy grid: each iteration builds a fresh Lab (no memoization
// carry-over) and evaluates 4 policies x 8 workloads end to end, stream
// capture included. Sub-benchmark wall-clock times at workers=1 vs 4 show
// the engine's speedup on multi-core hardware; on a single-core machine the
// times converge instead (the pool degrades to the serial loop).
func BenchmarkLabGrid(b *testing.B) {
	specs := []experiments.Spec{
		experiments.SpecLRU, experiments.SpecPLRU,
		experiments.SpecDRRIP, experiments.SpecSRRIP,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l := experiments.NewLab(experiments.Smoke).SetWorkers(workers)
				l.PrefetchWorkloads(specs, l.Suite()[:8], false)
			}
		})
	}
}

// BenchmarkGridMultiPass measures what the single-pass engine buys on a
// simulation-tool grid (gippr-sim's default policy suite over three
// workloads): the per-cell baseline regenerates and re-filters the phase
// stream for every (workload, policy) cell — the shape of the old grid —
// while the single-pass variant captures each phase once and replays every
// policy from that walk via cpu.MultiWindowReplay. Capture dwarfs a single
// policy's replay, so single-pass should run at least ~2x faster on this
// suite (and allocate roughly 1/len(policies) as much).
func BenchmarkGridMultiPass(b *testing.B) {
	const records = 60_000
	wlNames := []string{"mcf_like", "lbm_like", "sphinx3_like"}
	polNames := []string{"lru", "plru", "drrip", "pdp", "gippr", "4-dgippr"}
	var wls []workload.Workload
	for _, n := range wlNames {
		w, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		wls = append(wls, w)
	}
	mks := make([]func(sets, ways int) cache.Policy, len(polNames))
	for i, n := range polNames {
		f, err := policy.Lookup(n)
		if err != nil {
			b.Fatal(err)
		}
		mks[i] = f.New
	}
	cfg := cache.L3Config
	capture := func(w workload.Workload, pi int) []trace.Record {
		sess, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		h := sess.Hierarchy(policy.NewTrueLRU(cfg.Sets(), cfg.Ways))
		h.RecordLLC = true
		h.ReserveLLC(records)
		src := &workload.Limit{Src: w.Phases[pi].Source(xrand.Mix(uint64(pi), 0x5eed)), N: records}
		h.Run(src)
		return h.LLCStream
	}
	b.Run("per-cell-capture", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, w := range wls {
				for pi := range w.Phases {
					for _, mk := range mks {
						stream := capture(w, pi)
						cpu.WindowReplay(stream, cfg, mk(cfg.Sets(), cfg.Ways),
							len(stream)/3, cpu.DefaultWindowModel())
					}
				}
			}
		}
	})
	b.Run("single-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, w := range wls {
				for pi := range w.Phases {
					stream := capture(w, pi)
					pols := make([]cache.Policy, len(mks))
					models := make([]*cpu.WindowModel, len(mks))
					for j, mk := range mks {
						pols[j] = mk(cfg.Sets(), cfg.Ways)
						models[j] = cpu.DefaultWindowModel()
					}
					cpu.MultiWindowReplay(stream, cfg, pols, len(stream)/3, models, nil)
				}
			}
		}
	})
}

// --- ablation benches (DESIGN.md section 4) ------------------------------

// thrashStream is the ablation workload: a cyclic loop at 1.4x LLC
// capacity, the regime where the design choices matter most.
func thrashStream(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Gap: 3, Addr: uint64(i%(90<<10)) * 64}
	}
	return recs
}

// BenchmarkAblationVectorCount compares 1-, 2-, 4- and 8-vector DGIPPR
// miss counts on the thrash workload (paper Section 3.5: "extending beyond
// four vectors yields diminishing returns" — the 8-vector bracket should
// not improve meaningfully on the 4-vector tournament).
func BenchmarkAblationVectorCount(b *testing.B) {
	cfg := cache.L3Config
	stream := thrashStream(500_000)
	vecs := []ipv.Vector{
		ipv.PaperWI4DGIPPR[0], ipv.PaperWI4DGIPPR[1],
		ipv.PaperWI4DGIPPR[2], ipv.PaperWI4DGIPPR[3],
		ipv.PaperWIGIPPR, ipv.PaperWI2DGIPPR[0], ipv.LRU(16), ipv.LIP(16),
	}
	for _, n := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "1-vector", 2: "2-vector", 4: "4-vector", 8: "8-vector"}[n]
		b.Run(name, func(b *testing.B) {
			var misses uint64
			for i := 0; i < b.N; i++ {
				var pol cache.Policy
				if n == 8 {
					pol = policy.NewDGIPPRBracket(cfg.Sets(), cfg.Ways, vecs[:8])
				} else {
					pol = policy.NewDGIPPRN(cfg.Sets(), cfg.Ways, vecs[:n])
				}
				rs := cache.ReplayStream(stream, cfg, pol, len(stream)/3)
				misses = rs.Misses
			}
			b.ReportMetric(float64(misses), "misses")
		})
	}
}

// BenchmarkAblationLeaderSets sweeps the number of leader sets per vector
// in 4-DGIPPR (design decision 3: 32 leaders is the customary choice).
func BenchmarkAblationLeaderSets(b *testing.B) {
	cfg := cache.L3Config
	stream := thrashStream(500_000)
	for _, leaders := range []int{8, 16, 32, 64} {
		b.Run(map[int]string{8: "8", 16: "16", 32: "32", 64: "64"}[leaders], func(b *testing.B) {
			var misses uint64
			for i := 0; i < b.N; i++ {
				pol := policy.NewDGIPPR4WithDuel(cfg.Sets(), cfg.Ways, ipv.PaperWI4DGIPPR, leaders, 11)
				rs := cache.ReplayStream(stream, cfg, pol, len(stream)/3)
				misses = rs.Misses
			}
			b.ReportMetric(float64(misses), "misses")
		})
	}
}

// BenchmarkAblationFullHierarchyVsReplay validates design decision 2: the
// LLC-stream replay must report the same LLC misses as a full-hierarchy
// re-simulation (L1/L2 are policy-independent). Metric: relative miss
// delta, which should be ~0.
func BenchmarkAblationFullHierarchyVsReplay(b *testing.B) {
	w, err := workload.ByName("sphinx3_like")
	if err != nil {
		b.Fatal(err)
	}
	var delta float64
	for i := 0; i < b.N; i++ {
		const records = 200_000
		mkHier := func(llc cache.Policy) *cache.Hierarchy {
			return cache.NewHierarchy(
				cache.New(cache.L1Config, policy.NewTrueLRU(cache.L1Config.Sets(), cache.L1Config.Ways)),
				cache.New(cache.L2Config, policy.NewTrueLRU(cache.L2Config.Sets(), cache.L2Config.Ways)),
				cache.New(cache.L3Config, llc),
			)
		}
		// Full hierarchy with DRRIP at the LLC.
		full := mkHier(policy.NewDRRIP(cache.L3Config.Sets(), cache.L3Config.Ways))
		src := &workload.Limit{Src: w.Phases[0].Source(9), N: records}
		full.Run(src)
		fullMisses := full.L3.Stats.Misses

		// Capture stream under LRU, then replay into DRRIP.
		capt := mkHier(policy.NewTrueLRU(cache.L3Config.Sets(), cache.L3Config.Ways))
		capt.RecordLLC = true
		src2 := &workload.Limit{Src: w.Phases[0].Source(9), N: records}
		capt.Run(src2)
		rs := cache.ReplayStream(capt.LLCStream, cache.L3Config,
			policy.NewDRRIP(cache.L3Config.Sets(), cache.L3Config.Ways), 0)
		delta = stats.Normalize(float64(rs.Misses), float64(fullMisses)) - 1
	}
	b.ReportMetric(delta, "relative-miss-delta")
}

// BenchmarkAblationWindowVsLinearModel compares the two timing models'
// speedup estimates for 4-DGIPPR over LRU on the thrash workload (design
// decision: the GA uses the cheap linear model; the figures use the window
// model).
func BenchmarkAblationWindowVsLinearModel(b *testing.B) {
	cfg := cache.L3Config
	stream := thrashStream(400_000)
	warm := len(stream) / 3
	var windowSpeedup, linearSpeedup float64
	for i := 0; i < b.N; i++ {
		lin := cpu.DefaultLinearModel()
		lruRS := cache.ReplayStream(stream, cfg, policy.NewTrueLRU(cfg.Sets(), cfg.Ways), warm)
		d4RS := cache.ReplayStream(stream, cfg, policy.NewDGIPPR4(cfg.Sets(), cfg.Ways, ipv.PaperWI4DGIPPR), warm)
		linearSpeedup = lin.CPIFromReplay(lruRS) / lin.CPIFromReplay(d4RS)

		lruW := cpu.WindowReplay(stream, cfg, policy.NewTrueLRU(cfg.Sets(), cfg.Ways), warm, cpu.DefaultWindowModel())
		d4W := cpu.WindowReplay(stream, cfg, policy.NewDGIPPR4(cfg.Sets(), cfg.Ways, ipv.PaperWI4DGIPPR), warm, cpu.DefaultWindowModel())
		windowSpeedup = lruW.CPI / d4W.CPI
	}
	b.ReportMetric(windowSpeedup, "window-speedup")
	b.ReportMetric(linearSpeedup, "linear-speedup")
}

// --- extension benches (paper Section 7 future work) ----------------------

// BenchmarkExtensionMulticore: 4-core shared-LLC throughput normalized to
// LRU on the memory-intensive mix.
func BenchmarkExtensionMulticore(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Multicore(lab())
	}
	b.ReportMetric(t.Value("intensive", "WI-4-DGIPPR"), "dgippr4-intensive")
	b.ReportMetric(t.Value("intensive", "DRRIP"), "drrip-intensive")
	b.ReportMetric(t.Value("friendly", "WI-4-DGIPPR"), "dgippr4-friendly")
}

// BenchmarkExtensionAssocSweep: GIPPR's normalized MPKI at 8 through 64
// ways (future-work item 6).
func BenchmarkExtensionAssocSweep(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AssocSweep(lab())
	}
	b.ReportMetric(t.Value("8-way", "GIPPR"), "gippr-8way")
	b.ReportMetric(t.Value("16-way", "GIPPR"), "gippr-16way")
	b.ReportMetric(t.Value("64-way", "GIPPR"), "gippr-64way")
}

// BenchmarkExtensionRRIPVSearch: exhaustive search of the 1024 RRIP
// transition vectors (future-work items 3 and 5).
func BenchmarkExtensionRRIPVSearch(b *testing.B) {
	var res experiments.RRIPVResult
	for i := 0; i < b.N; i++ {
		res = experiments.RRIPVSearch(lab())
	}
	b.ReportMetric(res.BestFitness, "best-hitrate")
	b.ReportMetric(res.HPFitness, "srrip-hp-hitrate")
}

// BenchmarkExtensionBypass: GIPPR+bypass versus plain GIPPR, geomean MPKI
// normalized to LRU (future-work item 1).
func BenchmarkExtensionBypass(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Bypass(lab())
	}
	b.ReportMetric(t.GeoMean("WI-GIPPR"), "gippr")
	b.ReportMetric(t.GeoMean("GIPPR+bypass"), "gippr-bypass")
}

// --- microbenchmarks of the simulation kernels ----------------------------

func microStream(n int) []trace.Record {
	rng := xrand.New(0xbe)
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Gap: 3, Addr: rng.Uint64n(200<<10) * 64, PC: rng.Uint64n(64) * 4}
	}
	return recs
}

func benchPolicy(b *testing.B, mk func(sets, ways int) cache.Policy) {
	cfg := cache.L3Config
	stream := microStream(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.ReplayStream(stream, cfg, mk(cfg.Sets(), cfg.Ways), 0)
	}
	b.SetBytes(int64(len(stream)))
}

// BenchmarkReplayStream measures the simulator's hot loop on both engines.
// The scalar pair pins the telemetry tax: the cache and policy are built
// outside the timed region so the loop body is pure Access traffic — with
// the sink disabled the only cost is a handful of nil checks, with a sink
// attached every hit, miss, eviction, fill and IPV move is recorded into
// fixed-size counters and histograms. The batched pair drives the same
// stream through the branch-free kernel (internal/batchreplay) that
// ReplayStream dispatches Packable policies onto; its speedup over the
// scalar engine is the whole point of the kernel (EXPERIMENTS.md records
// the measured ratio). All four variants must report 0 allocs/op.
func BenchmarkReplayStream(b *testing.B) {
	cfg := cache.L3Config
	stream := microStream(100_000)
	runScalar := func(b *testing.B, sink *telemetry.Sink) {
		c := cache.New(cfg, policy.NewGIPPR(cfg.Sets(), cfg.Ways, ipv.PaperWIGIPPR))
		if sink != nil {
			c.SetTelemetry(sink)
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(stream)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range stream {
				c.Access(r)
			}
		}
	}
	runBatched := func(b *testing.B, sink *telemetry.Sink) {
		pr, ok := cache.NewPackedReplay(cfg, policy.NewGIPPR(cfg.Sets(), cfg.Ways, ipv.PaperWIGIPPR))
		if !ok {
			b.Fatal("GIPPR did not dispatch to the batched kernel")
		}
		if sink != nil {
			pr.K.SetTelemetry(sink)
		}
		var hits batchreplay.HitBits
		b.ReportAllocs()
		b.SetBytes(int64(len(stream)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(stream); off += batchreplay.BlockSize {
				end := off + batchreplay.BlockSize
				if end > len(stream) {
					end = len(stream)
				}
				pr.K.AccessBlock(stream[off:end], &hits)
			}
		}
	}
	b.Run("scalar/telemetry=off", func(b *testing.B) { runScalar(b, nil) })
	b.Run("scalar/telemetry=on", func(b *testing.B) { runScalar(b, &telemetry.Sink{}) })
	b.Run("batched/telemetry=off", func(b *testing.B) { runBatched(b, nil) })
	b.Run("batched/telemetry=on", func(b *testing.B) { runBatched(b, &telemetry.Sink{}) })
}

func BenchmarkPolicyLRU(b *testing.B) {
	benchPolicy(b, func(s, w int) cache.Policy { return policy.NewTrueLRU(s, w) })
}

func BenchmarkPolicyPLRU(b *testing.B) {
	benchPolicy(b, func(s, w int) cache.Policy { return policy.NewPLRU(s, w) })
}

func BenchmarkPolicyGIPPR(b *testing.B) {
	benchPolicy(b, func(s, w int) cache.Policy { return policy.NewGIPPR(s, w, ipv.PaperWIGIPPR) })
}

func BenchmarkPolicyDGIPPR4(b *testing.B) {
	benchPolicy(b, func(s, w int) cache.Policy { return policy.NewDGIPPR4(s, w, ipv.PaperWI4DGIPPR) })
}

func BenchmarkPolicyDRRIP(b *testing.B) {
	benchPolicy(b, func(s, w int) cache.Policy { return policy.NewDRRIP(s, w) })
}

func BenchmarkPolicyPDP(b *testing.B) {
	benchPolicy(b, func(s, w int) cache.Policy { return policy.NewPDP(s, w) })
}

func BenchmarkPolicySHiP(b *testing.B) {
	benchPolicy(b, func(s, w int) cache.Policy { return policy.NewSHiP(s, w) })
}

func BenchmarkBeladyOptimal(b *testing.B) {
	b.ReportAllocs()
	stream := microStream(100_000)
	for i := 0; i < b.N; i++ {
		policy.Optimal(stream, cache.L3Config, 0)
	}
	b.SetBytes(int64(len(stream)))
}

func BenchmarkWindowModel(b *testing.B) {
	b.ReportAllocs()
	m := cpu.DefaultWindowModel()
	for i := 0; i < b.N; i++ {
		if i%7 == 0 {
			m.StepMiss(5, 230)
		} else {
			m.Step(5, 30)
		}
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	b.ReportAllocs()
	sess, err := New(LLCConfig())
	if err != nil {
		b.Fatal(err)
	}
	h := sess.Hierarchy(NewLRU(LLCConfig().Sets(), LLCConfig().Ways))
	stream := microStream(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(stream[i&(1<<16-1)])
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	w, err := workload.ByName("mcf_like")
	if err != nil {
		b.Fatal(err)
	}
	src := w.Phases[0].Source(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Next()
	}
}
