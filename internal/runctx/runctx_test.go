package runctx

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/workload"
)

func TestUsageError(t *testing.T) {
	usage := []error{
		cache.ErrBadGeometry,
		fmt.Errorf("checking shift: %w", cache.ErrBadGeometry),
		policy.ErrUnknownPolicy,
		workload.ErrUnknownWorkload,
		ipv.ErrBadVector,
	}
	for _, err := range usage {
		if !UsageError(err) {
			t.Errorf("UsageError(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, errors.New("boom"), context.Canceled} {
		if UsageError(err) {
			t.Errorf("UsageError(%v) = true, want false", err)
		}
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("boom"), ExitFailure},
		{fmt.Errorf("bad flag: %w", policy.ErrUnknownPolicy), ExitUsage},
		{fmt.Errorf("bad shift: %w", cache.ErrBadGeometry), ExitUsage},
		{context.Canceled, ExitCancelled},
		{fmt.Errorf("run: %w", context.DeadlineExceeded), ExitCancelled},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// A cancelled run that also wraps a usage sentinel counts as cancelled: the
// cancellation is what the operator needs to see.
func TestExitCodeCancelledWins(t *testing.T) {
	err := fmt.Errorf("%w while validating: %w", context.Canceled, cache.ErrBadGeometry)
	if got := ExitCode(err); got != ExitCancelled {
		t.Errorf("ExitCode = %d, want %d", got, ExitCancelled)
	}
}
