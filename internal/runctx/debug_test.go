package runctx

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProgressGauges(t *testing.T) {
	p := NewProgress("gippr-test")
	p.SetTotal(100)
	p.Add(25)
	p.SetGeneration(3)
	p.SetPhase("warm")
	if p.Done() != 25 {
		t.Errorf("Done = %d, want 25", p.Done())
	}
	if p.Rate() <= 0 {
		t.Errorf("Rate = %v, want > 0", p.Rate())
	}
	if age := p.CheckpointAge(); age >= 0 {
		t.Errorf("CheckpointAge before any checkpoint = %v, want negative", age)
	}
	p.MarkCheckpoint()
	if age := p.CheckpointAge(); age < 0 || age > time.Minute {
		t.Errorf("CheckpointAge after checkpoint = %v", age)
	}
	s := p.String()
	for _, want := range []string{"gippr-test:", `phase "warm"`, "gen 3", "25/100", "ckpt"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestProgressStringUnknownTotal(t *testing.T) {
	p := NewProgress("t")
	p.Add(7)
	s := p.String()
	if !strings.Contains(s, "7 units") || strings.Contains(s, "%") {
		t.Errorf("String() with unknown total = %q", s)
	}
}

func TestServeDebug(t *testing.T) {
	p := NewProgress("gippr-debugtest")
	p.SetTotal(10)
	p.Add(4)
	addr, stop, err := ServeDebug("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars struct {
		Gippr struct {
			Tool  string  `json:"tool"`
			Done  uint64  `json:"done"`
			Total uint64  `json:"total"`
			Rate  float64 `json:"rate_per_sec"`
		} `json:"gippr"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars.Gippr.Tool != "gippr-debugtest" || vars.Gippr.Done != 4 || vars.Gippr.Total != 10 {
		t.Errorf("gauges = %+v", vars.Gippr)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

// TestServeDebugTwice: a second server (a tool restart, or another test)
// must not panic on duplicate expvar registration, and the gauge must track
// the most recently served Progress.
func TestServeDebugTwice(t *testing.T) {
	p1 := NewProgress("first")
	addr1, stop1, err := ServeDebug("127.0.0.1:0", p1)
	if err != nil {
		t.Fatal(err)
	}
	stop1()
	p2 := NewProgress("second")
	p2.Add(9)
	addr2, stop2, err := ServeDebug("127.0.0.1:0", p2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if addr1 == addr2 {
		t.Fatalf("both servers bound %s", addr1)
	}
	resp, err := http.Get("http://" + addr2 + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(`"tool": "second"`)) &&
		!bytes.Contains(body, []byte(`"tool":"second"`)) {
		t.Errorf("gauge still reports the old Progress:\n%s", body)
	}
}

func TestStartProgressLog(t *testing.T) {
	p := NewProgress("logtest")
	p.SetTotal(50)
	var buf syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	StartProgressLog(ctx, &buf, 5*time.Millisecond, p)

	p.Add(10)
	waitFor(t, func() bool { return strings.Contains(buf.String(), "10/50") })
	// With no further work, the logger must go quiet.
	before := buf.String()
	time.Sleep(25 * time.Millisecond)
	if after := buf.String(); after != before {
		t.Errorf("logger emitted lines while idle:\n%s", after[len(before):])
	}
	p.Add(5)
	waitFor(t, func() bool { return strings.Contains(buf.String(), "15/50") })
}

func TestStartProgressLogZeroInterval(t *testing.T) {
	// interval <= 0 means disabled: must not spin or write.
	var buf syncBuffer
	StartProgressLog(context.Background(), &buf, 0, NewProgress("t"))
	time.Sleep(10 * time.Millisecond)
	if buf.String() != "" {
		t.Errorf("disabled logger wrote %q", buf.String())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

// syncBuffer is a goroutine-safe bytes.Buffer for the log tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
