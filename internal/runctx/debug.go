package runctx

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live-gauge block of a running tool: how many records (or
// cells, or samples — whatever the tool's unit of work is) have been
// processed out of how many, which generation a search is in, and when the
// last checkpoint was written. All fields are atomics, so worker goroutines
// update them wait-free from the hot loop and the debug server reads them
// without coordination.
type Progress struct {
	tool    string
	start   time.Time
	done    atomic.Uint64 // work units completed
	total   atomic.Uint64 // work units expected (0 = unknown)
	gen     atomic.Uint64 // current generation / stage (searches)
	ckpt    atomic.Int64  // unix nanos of the last checkpoint (0 = never)
	phase   atomic.Pointer[string]
	lastLog uint64 // done count at the last progress line (ticker goroutine only)
}

// NewProgress returns a Progress for the named tool, with the rate clock
// started now.
func NewProgress(tool string) *Progress {
	p := &Progress{tool: tool, start: time.Now()}
	empty := ""
	p.phase.Store(&empty)
	return p
}

// Add records n completed work units.
func (p *Progress) Add(n uint64) { p.done.Add(n) }

// SetTotal sets the expected work-unit total (0 when unknown).
func (p *Progress) SetTotal(n uint64) { p.total.Store(n) }

// SetGeneration sets the current search generation.
func (p *Progress) SetGeneration(g uint64) { p.gen.Store(g) }

// SetPhase names the tool's current stage ("bake plru", "fig12", ...).
func (p *Progress) SetPhase(s string) { p.phase.Store(&s) }

// MarkCheckpoint records that a checkpoint was just written.
func (p *Progress) MarkCheckpoint() { p.ckpt.Store(time.Now().UnixNano()) }

// Done returns the completed work-unit count.
func (p *Progress) Done() uint64 { return p.done.Load() }

// Rate returns the mean work units per second since the progress started.
func (p *Progress) Rate() float64 {
	el := time.Since(p.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(p.done.Load()) / el
}

// CheckpointAge returns the time since the last checkpoint, or a negative
// duration when none has been written.
func (p *Progress) CheckpointAge() time.Duration {
	ns := p.ckpt.Load()
	if ns == 0 {
		return -1
	}
	return time.Since(time.Unix(0, ns))
}

// snapshot renders the gauges as a flat map (the expvar payload).
func (p *Progress) snapshot() map[string]any {
	m := map[string]any{
		"tool":           p.tool,
		"uptime_seconds": time.Since(p.start).Seconds(),
		"done":           p.done.Load(),
		"total":          p.total.Load(),
		"generation":     p.gen.Load(),
		"rate_per_sec":   p.Rate(),
		"phase":          *p.phase.Load(),
	}
	if age := p.CheckpointAge(); age >= 0 {
		m["checkpoint_age_seconds"] = age.Seconds()
	}
	return m
}

// String renders a one-line progress report, the format the periodic
// progress logs use:
//
//	gippr-evolve: phase "bake plru" gen 3 1234567 units (45678.1/sec) ckpt 12s ago
func (p *Progress) String() string {
	s := p.tool + ":"
	if ph := *p.phase.Load(); ph != "" {
		s += fmt.Sprintf(" phase %q", ph)
	}
	if g := p.gen.Load(); g > 0 {
		s += fmt.Sprintf(" gen %d", g)
	}
	done, total := p.done.Load(), p.total.Load()
	if total > 0 {
		s += fmt.Sprintf(" %d/%d units (%.1f%%, %.1f/sec)",
			done, total, 100*float64(done)/float64(total), p.Rate())
	} else {
		s += fmt.Sprintf(" %d units (%.1f/sec)", done, p.Rate())
	}
	if age := p.CheckpointAge(); age >= 0 {
		s += fmt.Sprintf(" ckpt %s ago", age.Round(time.Second))
	}
	return s
}

// current is the Progress the expvar gauge reads. expvar.Publish panics on
// duplicate names and offers no unpublish, so the gauge is registered once
// per process and always dereferences this pointer — tests (and tools) may
// install a fresh Progress at any time.
var (
	current     atomic.Pointer[Progress]
	publishOnce sync.Once
)

func publishGauges() {
	publishOnce.Do(func() {
		expvar.Publish("gippr", expvar.Func(func() any {
			p := current.Load()
			if p == nil {
				return nil
			}
			return p.snapshot()
		}))
	})
}

// AttachDebug registers the live-introspection suite on an existing mux:
// expvar at /debug/vars (including the "gippr" progress gauges for p) and
// the pprof handlers at /debug/pprof/. Long-lived servers with their own
// mux (gippr-serve) use this directly; the one-shot tools go through
// ServeDebug, which owns the listener too.
func AttachDebug(mux *http.ServeMux, p *Progress) {
	current.Store(p)
	publishGauges()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeDebug starts the live-introspection HTTP server every cmd tool hangs
// off its -debug-addr flag: expvar at /debug/vars (including the "gippr"
// progress gauges for p) and the pprof suite at /debug/pprof/. It returns
// the bound address (useful with ":0") and a shutdown function. The server
// uses its own mux, so tools never expose handlers they did not choose, and
// it lives on a background goroutine until shutdown or process exit.
func ServeDebug(addr string, p *Progress) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("runctx: debug server: %w", err)
	}
	mux := http.NewServeMux()
	AttachDebug(mux, p)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on exit
	}
	return ln.Addr().String(), stop, nil
}

// MaybeServeDebug is the cmd tools' -debug-addr plumbing: with an empty
// addr it does nothing and returns a no-op stop; otherwise it starts
// ServeDebug and announces the bound address on stderr (so ":0" runs print
// where they landed).
func MaybeServeDebug(addr string, p *Progress) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	bound, stop, err := ServeDebug(addr, p)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/debug/vars (pprof at /debug/pprof/)\n", p.tool, bound)
	return stop, nil
}

// StartProgressLog emits p's one-line report to w every interval until ctx
// is cancelled, skipping intervals in which no work completed (an idle tool
// stays quiet). It returns immediately; the ticker runs on its own
// goroutine.
func StartProgressLog(ctx context.Context, w io.Writer, interval time.Duration, p *Progress) {
	if interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				done := p.done.Load()
				if done == p.lastLog {
					continue
				}
				p.lastLog = done
				fmt.Fprintln(w, p.String())
			}
		}
	}()
}
