// Package runctx is the shared run-context plumbing for the cmd tools:
// signal-driven graceful shutdown, wall-clock deadlines, and the exit-code
// convention. Every long-running tool builds its context here so SIGINT,
// SIGTERM and -deadline all cancel through the same path: the engine stops
// handing out work, in-flight cells drain, checkpoints (where configured)
// are written, and the process exits with ExitCancelled — distinct from a
// real failure, so wrapper scripts and schedulers can requeue a preempted
// run instead of reporting it broken.
package runctx

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/workload"
)

// Exit codes shared by the cmd tools. 0 is success and flag.ExitOnError
// uses 2, so failures are 1 and cooperative cancellation (signal or
// deadline) is 3.
const (
	ExitFailure   = 1
	ExitUsage     = 2
	ExitCancelled = 3
)

// Setup returns a context cancelled by SIGINT/SIGTERM and, when deadline is
// positive, by a wall-clock budget. The returned stop function releases the
// signal registration; a second signal while draining kills the process
// immediately (the runtime default), so a stuck drain can always be
// escaped.
func Setup(deadline time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if deadline <= 0 {
		return ctx, stop
	}
	ctx, cancelT := context.WithTimeout(ctx, deadline)
	return ctx, func() {
		cancelT()
		stop()
	}
}

// Cancelled reports whether err is a cooperative-cancellation error
// (context cancellation or deadline expiry), directly or wrapped.
func Cancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// UsageError reports whether err is (or wraps) one of the typed input-
// validation sentinels — a bad cache geometry or sampling shift, an unknown
// policy or workload name, or a malformed IPV. These are the caller's
// mistake, not the tool's, so they exit with the flag-parse code rather
// than ExitFailure.
func UsageError(err error) bool {
	return errors.Is(err, cache.ErrBadGeometry) ||
		errors.Is(err, policy.ErrUnknownPolicy) ||
		errors.Is(err, workload.ErrUnknownWorkload) ||
		errors.Is(err, ipv.ErrBadVector)
}

// ExitCode maps an error to the tools' exit-code convention: nil is 0,
// cancellation is ExitCancelled, typed input-validation errors are
// ExitUsage, anything else ExitFailure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case Cancelled(err):
		return ExitCancelled
	case UsageError(err):
		return ExitUsage
	default:
		return ExitFailure
	}
}

// Explain renders a one-line operator message for a cancelled run: which
// budget ended it and what state it left behind.
func Explain(tool string, err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Sprintf("%s: deadline reached; in-flight work drained, stopping", tool)
	case errors.Is(err, context.Canceled):
		return fmt.Sprintf("%s: interrupted; in-flight work drained, stopping", tool)
	default:
		return fmt.Sprintf("%s: %v", tool, err)
	}
}
