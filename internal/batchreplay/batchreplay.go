// Package batchreplay is the batched, branch-free LLC replay kernel behind
// cache.ReplayStream and cpu.MultiWindowReplay.
//
// The scalar replay path models one record at a time: Cache.Access scans a
// set's line structs with a short-circuiting compare loop, then the policy
// walks a plrutree.Tree node by node, branching on child direction at every
// level. That is the right shape for the general Policy interface — dueling
// policies read PSEL counters, PDP consults a reuse predictor — but for the
// two policies every grid, GA fitness call and served job spends most of its
// time in (PLRU and single-vector GIPPR), the whole per-record transition is
// a pure function of (tag array, valid bits, one plru state word, the IPV).
// This package exploits that:
//
//   - records are decoded in fixed-size blocks (BlockSize): block numbers
//     and set indices are computed up front into flat arrays, separating the
//     pointer-chasing-free decode from the state update;
//   - tag probes are two-level and mostly branch-free: one tag byte per way
//     is packed eight-to-a-uint64, a SWAR zero-byte scan over the xor with
//     the probe byte yields a candidate-way mask in a couple of word ops,
//     and only candidates (almost always zero or one) are verified against
//     the full tag array — the per-way compare loop is gone entirely;
//   - per-set metadata lives in packed uint64 words: a valid mask, a dirty
//     mask, and the k-1 tree-PLRU bits updated with plrutree.Packed's
//     mask-and-or tables instead of per-node walks.
//
// Equivalence contract: a Kernel models exactly the Cache.Access semantics
// for a policy whose behaviour is "IPV over tree-PLRU" (see Packable) — the
// same counters in the same order, the same telemetry event sequence
// (telemetry.Sink is order-sensitive through its access clock), the same
// victim choices, bit for bit. The differential battery in this package's
// tests, FuzzBatchedReplayConsistency, and the golden-MPKI suite all pin
// that contract; DESIGN.md §14 gives the argument.
package batchreplay

import (
	"fmt"
	"math/bits"

	"gippr/internal/plrutree"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// BlockSize is the number of trace records decoded per batch. 256 records
// keep the decode scratch (256 x 12 bytes) and the hit bitmap (4 words)
// comfortably inside L1 while amortizing loop overheads; block size only
// affects throughput, never results, because blocks are processed in stream
// order with no reordering inside or across them.
const BlockSize = 256

// laneLSB and laneMSB broadcast a byte lane's low and high bit across a
// uint64 — the building blocks of the SWAR signature scan.
const (
	laneLSB = 0x0101010101010101
	laneMSB = 0x8080808080808080
)

// HitBits is the per-block hit bitmap filled by AccessBlock: bit i set means
// record i of the block hit (or was skipped by set sampling, which the
// timing models treat as a hit — the same convention as Cache.Access's
// return value).
type HitBits [BlockSize / 64]uint64

// Bit reports record i's hit flag.
func (h *HitBits) Bit(i int) bool { return h[i>>6]>>(i&63)&1 == 1 }

// Packable is implemented by replacement policies whose behaviour is
// exactly "insertion/promotion vector over tree-PLRU": on a hit a block at
// tree position i moves to V[i], on a fill the incoming block is placed at
// V[k], the victim is the tree-PLRU block, and OnMiss/OnEvict have no
// observable effect. PackedIPV returns that vector (length ways+1) and
// ok=true; policies with any additional state or decision-making (dueling,
// bypass, predictors) must return ok=false so replays fall back to the
// scalar path. policy.PLRU (the all-zero vector) and policy.GIPPR implement
// it.
type Packable interface {
	PackedIPV() ([]int, bool)
}

// Stats mirrors cache.Stats field for field (batchreplay cannot import
// cache — cache imports this package to dispatch onto the kernel).
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writes     uint64
	Writebacks uint64
	Skipped    uint64
}

// Result summarizes a Replay.
type Result struct {
	Stats
	// Instructions is the sum of record gaps in the measured window.
	Instructions uint64
}

// Supported reports whether the kernel can model a cache of the given
// associativity: a power of two in 2..plrutree.MaxWays, the domain of the
// packed tree tables.
func Supported(ways int) bool {
	return ways >= 2 && ways <= plrutree.MaxWays && ways&(ways-1) == 0
}

// Kernel holds the batched model of one set-associative cache under one
// packed IPV policy. Construct with New; a Kernel is single-goroutine, like
// the Cache it replaces.
type Kernel struct {
	sets       int
	ways       int
	setMask    uint64
	blockShift uint

	tags  []uint64 // [set*ways+way]: full block number (tag+index)
	valid []uint64 // per set: way-indexed valid bitmask
	dirty []uint64 // per set: way-indexed dirty bitmask
	// Probe filter: one tag byte per way (the byte just above the set
	// index), packed eight ways to a word. A SWAR zero-byte scan of
	// sig^probe yields candidate ways; only candidates touch the full tag
	// array. False candidates (byte collisions, borrow artifacts of the
	// zero-byte detector) are weeded out by full-tag verification, so the
	// filter changes nothing observable.
	sigWords int
	sigShift uint
	sig      []uint64
	plru     []uint64 // per set: k-1 tree-PLRU bits (Tree.Bits layout)
	ops      *plrutree.Packed
	vec      []int  // promotion targets V[0..ways-1]
	insPos   int    // insertion position V[ways]
	sampled  []bool // nil at full fidelity; else per-set in-sample flags

	stats Stats
	tel   *telemetry.Sink

	// Decode scratch, reused across blocks so the steady state allocates
	// nothing.
	blockBuf [BlockSize]uint64
	setBuf   [BlockSize]uint32
}

// New returns a kernel for a cache of sets x ways lines with the given
// block-offset shift, per-set sampling flags (nil for full fidelity, else
// length sets — the caller shares cache.Config.InSample's precomputed
// table), and IPV (length ways+1, entries in 0..ways-1). It panics on
// malformed geometry or vector, mirroring the internal policy constructors;
// use Supported to probe the associativity domain first.
func New(sets, ways int, blockShift uint, sampled []bool, vec []int) *Kernel {
	if sets < 1 {
		panic(fmt.Sprintf("batchreplay: %d sets", sets))
	}
	if !Supported(ways) {
		panic(fmt.Sprintf("batchreplay: associativity %d is not a power of two in 2..%d", ways, plrutree.MaxWays))
	}
	if sampled != nil && len(sampled) != sets {
		panic(fmt.Sprintf("batchreplay: %d sampling flags for %d sets", len(sampled), sets))
	}
	if len(vec) != ways+1 {
		panic(fmt.Sprintf("batchreplay: vector has %d entries, want %d", len(vec), ways+1))
	}
	for i, e := range vec {
		if e < 0 || e >= ways {
			panic(fmt.Sprintf("batchreplay: vector entry %d is %d, outside 0..%d", i, e, ways-1))
		}
	}
	sigWords := (ways + 7) / 8
	k := &Kernel{
		sets:       sets,
		ways:       ways,
		setMask:    uint64(sets - 1),
		blockShift: blockShift,
		tags:       make([]uint64, sets*ways),
		valid:      make([]uint64, sets),
		dirty:      make([]uint64, sets),
		sigWords:   sigWords,
		sigShift:   uint(bits.Len(uint(sets - 1))),
		sig:        make([]uint64, sets*sigWords),
		plru:       make([]uint64, sets),
		ops:        plrutree.NewPacked(ways),
		vec:        append([]int(nil), vec[:ways]...),
		insPos:     vec[ways],
		sampled:    sampled,
	}
	return k
}

// SetTelemetry attaches an event sink (nil detaches), sized for the modeled
// cache's line count — the same convention as Cache.SetTelemetry. The
// kernel emits the exact event sequence the scalar path would, so an
// attached sink ends up bit-identical to a scalar replay's.
func (k *Kernel) SetTelemetry(s *telemetry.Sink) {
	s.Attach(k.sets * k.ways)
	k.tel = s
}

// Stats returns the counters accumulated since the last ResetStats.
func (k *Kernel) Stats() Stats { return k.stats }

// PLRUBits returns set's packed tree-PLRU state word (Tree.Bits layout).
func (k *Kernel) PLRUBits(set int) uint64 { return k.plru[set] }

// SetPLRUBits overwrites set's packed tree-PLRU state word; bits outside
// the k-1 internal-node range are masked off, matching Tree.SetBits. The
// dispatch layer uses this pair to seed kernel state from a policy's trees
// and write the final state back.
func (k *Kernel) SetPLRUBits(set int, word uint64) {
	k.plru[set] = word & (uint64(1)<<k.ways - 2)
}

// ResetStats zeroes the counters and any attached telemetry, keeping cache
// contents and replacement state (the warm-up boundary convention of
// Cache.ResetStats).
func (k *Kernel) ResetStats() {
	k.stats = Stats{}
	k.tel.Reset()
}

// AccessBlock models up to BlockSize records (len(recs) must not exceed it)
// and fills hits with the per-record hit flags. Records are decoded up
// front — block numbers and set indices into flat arrays — then the state
// update walks the decoded block.
func (k *Kernel) AccessBlock(recs []trace.Record, hits *HitBits) {
	n := len(recs)
	if n > BlockSize {
		panic("batchreplay: block exceeds BlockSize")
	}
	for i := 0; i < n; i++ {
		b := recs[i].Addr >> k.blockShift
		k.blockBuf[i] = b
		k.setBuf[i] = uint32(b & k.setMask)
	}
	*hits = HitBits{}
	for i := 0; i < n; i++ {
		if k.access(k.blockBuf[i], k.setBuf[i], recs[i].Write) {
			hits[i>>6] |= 1 << (i & 63)
		}
	}
}

// access models one reference: the Cache.Access state machine with the
// policy callbacks inlined for IPV-over-tree-PLRU. Counter updates and
// telemetry events replicate the scalar order exactly — the sink's access
// clock makes reordering observable.
func (k *Kernel) access(block uint64, set uint32, write bool) bool {
	if k.sampled != nil && !k.sampled[set] {
		k.stats.Skipped++
		return true
	}
	k.stats.Accesses++
	if write {
		k.stats.Writes++
	}
	base := int(set) * k.ways
	valid := k.valid[set]
	sbase := int(set) * k.sigWords
	probe := uint64(byte(block>>k.sigShift)) * laneLSB
	hitWay := -1
	for j := 0; j < k.sigWords; j++ {
		z := k.sig[sbase+j] ^ probe
		// Zero-byte detect: flags every matching signature byte, plus the
		// occasional borrow artifact directly above a real match — full-tag
		// verification filters both collision kinds. A valid set holds at
		// most one copy of a block, so at most one candidate verifies.
		for zb := (z - laneLSB) &^ z & laneMSB; zb != 0; zb &= zb - 1 {
			cand := j*8 + bits.TrailingZeros64(zb)>>3
			if valid>>cand&1 == 1 && k.tags[base+cand] == block {
				hitWay = cand
				break
			}
		}
		if hitWay >= 0 {
			break
		}
	}
	if hitWay >= 0 {
		w := hitWay
		k.stats.Hits++
		if write {
			k.dirty[set] |= 1 << w
		}
		word := k.plru[set]
		if k.tel != nil {
			k.tel.Hit(base + w)
			from := k.ops.Position(word, w)
			k.tel.Promote(from, k.vec[from])
			k.plru[set] = k.ops.Set(word, w, k.vec[from])
			return true
		}
		from := k.ops.Position(word, w)
		k.plru[set] = k.ops.Set(word, w, k.vec[from])
		return true
	}
	k.stats.Misses++
	if k.tel != nil {
		k.tel.Miss()
	}
	var w int
	if invalid := ^valid & (uint64(1)<<k.ways - 1); invalid != 0 {
		// Cold fill: the scalar path takes the first invalid way in scan
		// order, which is the lowest clear valid bit.
		w = bits.TrailingZeros64(invalid)
	} else {
		w = k.ops.Victim(k.plru[set])
		k.stats.Evictions++
		dirtyBit := k.dirty[set] >> w & 1
		k.stats.Writebacks += dirtyBit
		if k.tel != nil {
			k.tel.Evict(base+w, dirtyBit == 1)
		}
	}
	k.tags[base+w] = block
	sw := sbase + w>>3
	shift := uint(w&7) * 8
	k.sig[sw] = k.sig[sw]&^(0xFF<<shift) | probe&0xFF<<shift
	k.valid[set] = valid | 1<<w
	if write {
		k.dirty[set] |= 1 << w
	} else {
		k.dirty[set] &^= 1 << w
	}
	if k.tel != nil {
		k.tel.Fill(base + w)
		k.tel.Insert(k.insPos)
	}
	k.plru[set] = k.ops.Set(k.plru[set], w, k.insPos)
	return false
}

// Replay drives a captured LLC stream through the kernel with the
// ReplayStreamTel protocol: the first warm records warm the model, stats
// and telemetry are then reset, and the remainder is measured. The result's
// Instructions is the sum of measured-window gaps.
func (k *Kernel) Replay(stream []trace.Record, warm int) Result {
	if warm > len(stream) {
		warm = len(stream)
	}
	var hits HitBits
	for off := 0; off < warm; off += BlockSize {
		end := off + BlockSize
		if end > warm {
			end = warm
		}
		k.AccessBlock(stream[off:end], &hits)
	}
	k.ResetStats()
	var res Result
	for off := warm; off < len(stream); off += BlockSize {
		end := off + BlockSize
		if end > len(stream) {
			end = len(stream)
		}
		blk := stream[off:end]
		k.AccessBlock(blk, &hits)
		for i := range blk {
			res.Instructions += uint64(blk[i].Gap)
		}
	}
	res.Stats = k.stats
	return res
}
