package batchreplay_test

import (
	"fmt"
	"reflect"
	"testing"

	"gippr/internal/batchreplay"
	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// scalarOnly hides a policy's PackedIPV method so replays through it always
// take the scalar Cache.Access path — the reference side of every
// kernel-vs-scalar comparison in this package. Interface embedding keeps
// only cache.Policy's method set; SetTelemetry is re-exposed explicitly so
// instrumented comparisons still reach the wrapped policy.
type scalarOnly struct{ cache.Policy }

func (s scalarOnly) SetTelemetry(t *telemetry.Sink) {
	if ins, ok := s.Policy.(cache.Instrumented); ok {
		ins.SetTelemetry(t)
	}
}

// makeStream generates a seeded synthetic LLC stream: addresses drawn from a
// footprint of roughly spread x the cache's block capacity (so the replay
// sees hits, cold fills, evictions and writebacks), ~1/4 writes, small gaps.
func makeStream(n int, cfg cache.Config, spread float64, seed uint64) []trace.Record {
	rng := xrand.New(seed)
	blocks := uint64(float64(cfg.Sets()*cfg.Ways)*spread) + 1
	recs := make([]trace.Record, n)
	for i := range recs {
		b := rng.Uint64() % blocks
		recs[i] = trace.Record{
			Addr:  b * uint64(cfg.BlockBytes),
			PC:    rng.Uint64(),
			Gap:   uint32(rng.Intn(8)) + 1,
			Write: rng.Intn(4) == 0,
		}
	}
	return recs
}

// runScalar replicates ReplayStreamTel's loop with a direct Cache so the
// comparison side exposes the full Stats struct (ReplayStats drops
// evictions/writes/writebacks/skipped) — the kernel must match every
// counter, not just the hit/miss triple.
func runScalar(stream []trace.Record, cfg cache.Config, pol cache.Policy, warm int, tel *telemetry.Sink) cache.Stats {
	c := cache.New(cfg, pol)
	if tel != nil {
		c.SetTelemetry(tel)
	}
	if warm > len(stream) {
		warm = len(stream)
	}
	for _, r := range stream[:warm] {
		c.Access(r)
	}
	c.ResetStats()
	for _, r := range stream[warm:] {
		c.Access(r)
	}
	return c.Stats
}

// statsOf converts for field-by-field comparison.
func statsOf(s cache.Stats) batchreplay.Stats {
	return batchreplay.Stats{
		Accesses: s.Accesses, Hits: s.Hits, Misses: s.Misses,
		Evictions: s.Evictions, Writes: s.Writes, Writebacks: s.Writebacks,
		Skipped: s.Skipped,
	}
}

// kernelConfigs is the geometry grid the equivalence tests sweep: every
// supported associativity, set counts from the degenerate single set up,
// and a sampled variant.
func kernelConfigs() []cache.Config {
	var cfgs []cache.Config
	for _, ways := range []int{2, 4, 8, 16, 32, 64} {
		for _, sets := range []int{1, 4, 16} {
			cfgs = append(cfgs, cache.Config{
				Name:      fmt.Sprintf("k%dx%d", sets, ways),
				SizeBytes: sets * ways * 64, Ways: ways, BlockBytes: 64, HitLatency: 30,
			})
		}
	}
	cfgs = append(cfgs, cache.Config{
		Name:      "sampled",
		SizeBytes: 64 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 30, SampleShift: 2,
	})
	return cfgs
}

// vectorsFor returns the IPVs each geometry is checked under: PLRU's
// all-zero vector, LIP's insert-at-LRU, the paper's mid-climb example, and
// two seeded random vectors.
func vectorsFor(ways int, rng *xrand.RNG) []ipv.Vector {
	vecs := []ipv.Vector{ipv.LRU(ways), ipv.LIP(ways), ipv.MidClimb(ways)}
	for i := 0; i < 2; i++ {
		v := ipv.New(ways)
		for j := range v {
			v[j] = rng.Intn(ways)
		}
		vecs = append(vecs, v)
	}
	return vecs
}

// TestKernelMatchesScalarAcrossGeometries is the kernel's differential
// battery: for every geometry x vector x warm fraction, a kernel replay
// (via the dispatching ReplayStreamTel) and a forced-scalar replay of the
// same stream must agree on every stat counter, produce DeepEqual telemetry
// sinks (which pins the exact event sequence — the sink's access clock
// makes reordering visible), and leave the two policy objects' trees in
// identical states.
func TestKernelMatchesScalarAcrossGeometries(t *testing.T) {
	n := 20_000
	if testing.Short() {
		n = 4_000
	}
	rng := xrand.New(0xBA7C4)
	for _, cfg := range kernelConfigs() {
		for vi, vec := range vectorsFor(cfg.Ways, rng) {
			for _, warm := range []int{0, n / 3} {
				fast := policy.NewGIPPR(cfg.Sets(), cfg.Ways, vec)
				slow := policy.NewGIPPR(cfg.Sets(), cfg.Ways, vec)
				stream := makeStream(n, cfg, 2.5, 0xF00D+uint64(vi))

				var fastSink, slowSink telemetry.Sink
				pr, ok := cache.NewPackedReplay(cfg, fast)
				if !ok {
					t.Fatalf("%s vec %d: fast path did not engage", cfg.Name, vi)
				}
				pr.K.SetTelemetry(&fastSink)
				fastRes := pr.K.Replay(stream, warm)
				pr.Finish()

				slowStats := runScalar(stream, cfg, scalarOnly{slow}, warm, &slowSink)

				if fastRes.Stats != statsOf(slowStats) {
					t.Errorf("%s vec %d warm %d: kernel stats %+v != scalar %+v",
						cfg.Name, vi, warm, fastRes.Stats, slowStats)
				}
				if !reflect.DeepEqual(&fastSink, &slowSink) {
					t.Errorf("%s vec %d warm %d: telemetry sinks diverge", cfg.Name, vi, warm)
				}
				for set := 0; set < cfg.Sets(); set++ {
					if fb, sb := fast.Tree(uint32(set)).Bits(), slow.Tree(uint32(set)).Bits(); fb != sb {
						t.Fatalf("%s vec %d warm %d: set %d tree state %#x != scalar %#x",
							cfg.Name, vi, warm, set, fb, sb)
					}
				}
			}
		}
	}
}

// TestDispatchedReplayStreamMatchesScalar checks the public entry point:
// cache.ReplayStreamTel with a packable policy (kernel path) against the
// same call with the policy wrapped scalarOnly, for PLRU and GIPPR.
func TestDispatchedReplayStreamMatchesScalar(t *testing.T) {
	cfg := cache.Config{Name: "d", SizeBytes: 32 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 30}
	stream := makeStream(30_000, cfg, 3, 0xD15)
	warm := len(stream) / 4
	makers := map[string]func() cache.Policy{
		"plru":  func() cache.Policy { return policy.NewPLRU(cfg.Sets(), cfg.Ways) },
		"gippr": func() cache.Policy { return policy.NewGIPPR(cfg.Sets(), cfg.Ways, ipv.MidClimb(cfg.Ways)) },
	}
	for name, mk := range makers {
		var fastSink, slowSink telemetry.Sink
		fast := cache.ReplayStreamTel(stream, cfg, mk(), warm, &fastSink)
		slow := cache.ReplayStreamTel(stream, cfg, scalarOnly{mk()}, warm, &slowSink)
		if fast != slow {
			t.Errorf("%s: dispatched %+v != scalar %+v", name, fast, slow)
		}
		if !reflect.DeepEqual(&fastSink, &slowSink) {
			t.Errorf("%s: telemetry sinks diverge", name)
		}
	}
}

// TestKernelSeedsFromPolicyState replays through a policy whose trees were
// mutated before the replay: the kernel must pick the state up (and write
// its final state back), matching the scalar path bit for bit. This is the
// reuse case the seed/write-back contract exists for.
func TestKernelSeedsFromPolicyState(t *testing.T) {
	cfg := cache.Config{Name: "s", SizeBytes: 8 * 8 * 64, Ways: 8, BlockBytes: 64, HitLatency: 30}
	rng := xrand.New(0x5EED)
	fast := policy.NewPLRU(cfg.Sets(), cfg.Ways)
	slow := policy.NewPLRU(cfg.Sets(), cfg.Ways)
	for set := 0; set < cfg.Sets(); set++ {
		raw := rng.Uint64()
		fast.Tree(uint32(set)).SetBits(raw)
		slow.Tree(uint32(set)).SetBits(raw)
	}
	stream := makeStream(5_000, cfg, 2, 0x5EED2)
	fastRes := cache.ReplayStream(stream, cfg, fast, 100)
	slowRes := cache.ReplayStream(stream, cfg, scalarOnly{slow}, 100)
	if fastRes != slowRes {
		t.Fatalf("seeded replay: kernel %+v != scalar %+v", fastRes, slowRes)
	}
	for set := 0; set < cfg.Sets(); set++ {
		if fb, sb := fast.Tree(uint32(set)).Bits(), slow.Tree(uint32(set)).Bits(); fb != sb {
			t.Fatalf("set %d final tree state %#x != scalar %#x", set, fb, sb)
		}
	}
}

// TestDispatchFallsBackForNonPackable pins who takes which path: dueling
// DGIPPR and the true-LRU stack policy must not engage the kernel, while
// PLRU/GIPPR must.
func TestDispatchFallsBackForNonPackable(t *testing.T) {
	cfg := cache.Config{Name: "f", SizeBytes: 16 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 30}
	sets, ways := cfg.Sets(), cfg.Ways
	vecs := [2]ipv.Vector{ipv.LRU(ways), ipv.LIP(ways)}
	for name, want := range map[string]bool{"plru": true, "gippr": true, "lru": false, "dgippr2": false} {
		var pol cache.Policy
		switch name {
		case "plru":
			pol = policy.NewPLRU(sets, ways)
		case "gippr":
			pol = policy.NewGIPPR(sets, ways, ipv.LIP(ways))
		case "lru":
			pol = policy.NewTrueLRU(sets, ways)
		case "dgippr2":
			pol = policy.NewDGIPPR2(sets, ways, vecs)
		}
		if _, ok := cache.NewPackedReplay(cfg, pol); ok != want {
			t.Errorf("%s: kernel engaged = %v, want %v", name, ok, want)
		}
	}
	// A packable policy whose vector does not match the geometry must fall
	// back rather than model the wrong shape.
	if _, ok := cache.NewPackedReplay(cfg, policy.NewGIPPR(sets, 8, ipv.LRU(8))); ok {
		t.Error("mismatched-associativity policy engaged the kernel")
	}
}

// TestNewValidation pins the constructor's panic surface.
func TestNewValidation(t *testing.T) {
	vec := make([]int, 5)
	cases := map[string]func(){
		"zero sets":        func() { batchreplay.New(0, 4, 6, nil, vec) },
		"non-pow2 ways":    func() { batchreplay.New(4, 3, 6, nil, make([]int, 4)) },
		"oversized ways":   func() { batchreplay.New(4, 128, 6, nil, make([]int, 129)) },
		"sampled mismatch": func() { batchreplay.New(4, 4, 6, make([]bool, 3), vec) },
		"short vector":     func() { batchreplay.New(4, 4, 6, nil, make([]int, 4)) },
		"entry range":      func() { batchreplay.New(4, 4, 6, nil, []int{0, 0, 4, 0, 0}) },
		"negative entry":   func() { batchreplay.New(4, 4, 6, nil, []int{0, -1, 0, 0, 0}) },
		"oversized block": func() {
			k := batchreplay.New(4, 4, 6, nil, vec)
			k.AccessBlock(make([]trace.Record, batchreplay.BlockSize+1), &batchreplay.HitBits{})
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	for ways, want := range map[int]bool{2: true, 16: true, 64: true, 1: false, 3: false, 128: false, 0: false} {
		if got := batchreplay.Supported(ways); got != want {
			t.Errorf("Supported(%d) = %v, want %v", ways, got, want)
		}
	}
}

// TestHitBits covers the bitmap accessor across word boundaries.
func TestHitBits(t *testing.T) {
	var h batchreplay.HitBits
	for _, i := range []int{0, 1, 63, 64, 130, batchreplay.BlockSize - 1} {
		if h.Bit(i) {
			t.Fatalf("bit %d set in zero bitmap", i)
		}
		h[i>>6] |= 1 << (i & 63)
		if !h.Bit(i) {
			t.Fatalf("bit %d not visible after set", i)
		}
	}
}

// TestAccessBlockZeroAllocs is the steady-state allocation gate from the
// issue: once constructed (and telemetry attached), block processing must
// not allocate — with or without a sink.
func TestAccessBlockZeroAllocs(t *testing.T) {
	cfg := cache.Config{Name: "a", SizeBytes: 16 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 30}
	stream := makeStream(batchreplay.BlockSize, cfg, 2, 0xA110C)
	for _, withTel := range []bool{false, true} {
		pr, ok := cache.NewPackedReplay(cfg, policy.NewPLRU(cfg.Sets(), cfg.Ways))
		if !ok {
			t.Fatal("fast path did not engage")
		}
		if withTel {
			pr.K.SetTelemetry(&telemetry.Sink{})
		}
		var hits batchreplay.HitBits
		pr.K.AccessBlock(stream, &hits) // settle one block before measuring
		allocs := testing.AllocsPerRun(100, func() {
			pr.K.AccessBlock(stream, &hits)
		})
		if allocs != 0 {
			t.Errorf("telemetry=%v: AccessBlock allocates %v per block, want 0", withTel, allocs)
		}
	}
}

// TestReplayWarmBeyondStream mirrors cache.ReplayStream's clamp: warming
// past the end measures nothing and must not panic.
func TestReplayWarmBeyondStream(t *testing.T) {
	cfg := cache.Config{Name: "w", SizeBytes: 4 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 30}
	pr, _ := cache.NewPackedReplay(cfg, policy.NewPLRU(cfg.Sets(), cfg.Ways))
	res := pr.K.Replay(makeStream(10, cfg, 2, 1), 100)
	if res.Accesses != 0 || res.Instructions != 0 {
		t.Fatalf("over-warm replay measured %+v", res)
	}
}

// TestSampledKernelSkips checks the sampling path end to end: a sampled
// geometry must skip out-of-sample sets identically to the scalar model,
// with Skipped accounted and in-sample counters matching.
func TestSampledKernelSkips(t *testing.T) {
	cfg := cache.Config{Name: "sp", SizeBytes: 64 * 16 * 64, Ways: 16, BlockBytes: 64,
		HitLatency: 30, SampleShift: 2}
	stream := makeStream(20_000, cfg, 2, 0x5A)
	pr, ok := cache.NewPackedReplay(cfg, policy.NewPLRU(cfg.Sets(), cfg.Ways))
	if !ok {
		t.Fatal("fast path did not engage")
	}
	res := pr.K.Replay(stream, 500)
	slow := runScalar(stream, cfg, scalarOnly{policy.NewPLRU(cfg.Sets(), cfg.Ways)}, 500, nil)
	if res.Stats != statsOf(slow) {
		t.Fatalf("sampled kernel stats %+v != scalar %+v", res.Stats, slow)
	}
	if res.Skipped == 0 {
		t.Fatal("sampling skipped nothing; test is vacuous")
	}
}
