package batchreplay_test

import (
	"reflect"
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// FuzzBatchedReplayConsistency drives arbitrary record streams and
// geometries through the batched kernel and the scalar ReplayStream path
// and requires bit-identical results: the hit/miss/access triple (and hence
// MPKI), the full telemetry sink with its event-ordered histograms, and the
// final policy tree state. The input encodes the stream as (addr byte, gap
// byte) pairs — the FuzzMultiRunConsistency convention — plus geometry
// selectors: associativity and set-count exponents, an optional sampling
// shift, a warm length, and a seed that derives the IPV. Every byte of
// divergence the fuzzer can find is a kernel bug by definition; the scalar
// path is the semantic reference.
func FuzzBatchedReplayConsistency(f *testing.F) {
	f.Add([]byte{0, 1, 64, 1, 128, 2, 0, 1}, uint8(1), uint8(2), uint8(0), uint8(2), uint64(0))
	f.Add([]byte{7, 3, 7, 3, 9, 1, 200, 5, 13, 2}, uint8(2), uint8(0), uint8(1), uint8(0), uint64(0x1234))
	f.Add([]byte{255, 255, 0, 0, 128, 128, 64, 9}, uint8(0), uint8(3), uint8(0), uint8(4), uint64(99))
	f.Add([]byte{1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6}, uint8(5), uint8(1), uint8(1), uint8(7), uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, waysExp, setsExp, shiftByte, warmByte uint8, vecSeed uint64) {
		if len(data) < 2 || len(data) > 1024 {
			t.Skip()
		}
		ways := 2 << (waysExp % 6) // 2..64, the full packed-tree domain
		sets := 1 << (setsExp % 4) // 1..8 sets so tiny caches still evict
		stream := make([]trace.Record, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			stream = append(stream, trace.Record{
				Addr:  uint64(data[i]) * 64,
				Gap:   uint32(data[i+1]%64) + 1,
				Write: data[i]&1 == 1,
			})
		}
		cfg := cache.Config{Name: "fz", SizeBytes: sets * ways * 64, Ways: ways, BlockBytes: 64,
			HitLatency: 30}
		if shift, err := cfg.CheckSampleShift(int(shiftByte % 4)); err == nil {
			cfg.SampleShift = shift
		}
		warm := int(warmByte) % (len(stream) + 1)
		vec := ipv.New(ways)
		s := vecSeed
		for i := range vec {
			s = s*6364136223846793005 + 1442695040888963407
			vec[i] = int(s>>33) % ways
		}

		fast := policy.NewGIPPR(sets, ways, vec)
		slow := policy.NewGIPPR(sets, ways, vec)
		var fastSink, slowSink telemetry.Sink
		fastRes := cache.ReplayStreamTel(stream, cfg, fast, warm, &fastSink)
		slowRes := cache.ReplayStreamTel(stream, cfg, scalarOnly{slow}, warm, &slowSink)

		if fastRes != slowRes {
			t.Fatalf("kernel diverged from scalar:\nkernel %+v\nscalar %+v\ncfg %+v vec %v warm %d",
				fastRes, slowRes, cfg, vec, warm)
		}
		if !reflect.DeepEqual(&fastSink, &slowSink) {
			t.Fatalf("telemetry sinks diverged:\nkernel %+v\nscalar %+v\ncfg %+v vec %v warm %d",
				fastSink, slowSink, cfg, vec, warm)
		}
		for set := 0; set < sets; set++ {
			if fb, sb := fast.Tree(uint32(set)).Bits(), slow.Tree(uint32(set)).Bits(); fb != sb {
				t.Fatalf("set %d final tree state %#x != scalar %#x (cfg %+v vec %v warm %d)",
					set, fb, sb, cfg, vec, warm)
			}
		}
	})
}
