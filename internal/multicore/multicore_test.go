package multicore

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/trace"
	"gippr/internal/workload"
	"gippr/internal/xrand"
)

func srcFor(t *testing.T, name string, seed uint64) trace.Source {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Phases[0].Source(seed)
}

func l3() cache.Config { return cache.L3Config }

func TestNewPanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	New(policy.NewTrueLRU(l3().Sets(), l3().Ways), nil)
}

func TestRunCompletesAllCores(t *testing.T) {
	sys := New(policy.NewTrueLRU(l3().Sets(), l3().Ways), []trace.Source{
		srcFor(t, "gamess_like", 1),
		srcFor(t, "povray_like", 2),
	})
	const refs = 20_000
	total := sys.Run(refs)
	if total != 2*refs {
		t.Fatalf("executed %d of %d references", total, 2*refs)
	}
	res := sys.Results()
	if len(res.PerCore) != 2 {
		t.Fatalf("%d core results", len(res.PerCore))
	}
	for _, c := range res.PerCore {
		if c.Instructions == 0 || c.IPC <= 0 {
			t.Fatalf("core %d produced no progress: %+v", c.ID, c)
		}
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestAddressSpacesDisjoint(t *testing.T) {
	// Two cores running the identical workload+seed must not share cache
	// blocks: the shared L3 must see twice the distinct footprint.
	mk := func(n int) *System {
		var srcs []trace.Source
		for i := 0; i < n; i++ {
			srcs = append(srcs, srcFor(t, "milc_like", 42))
		}
		return New(policy.NewTrueLRU(l3().Sets(), l3().Ways), srcs)
	}
	one := mk(1)
	one.Run(30_000)
	two := mk(2)
	two.Run(30_000)
	// With disjoint address spaces the duplicated workload roughly
	// doubles L3 misses; with aliasing the second core would hit the
	// first core's blocks.
	m1 := one.Results().L3.Misses
	m2 := two.Results().L3.Misses
	if m2 < m1*18/10 {
		t.Fatalf("duplicated workload misses %d vs single %d: address spaces alias?", m2, m1)
	}
}

func TestTimeSharedScheduling(t *testing.T) {
	// A memory-bound core must retire fewer instructions than a compute-
	// bound core in the same simulated time window.
	sys := New(policy.NewTrueLRU(l3().Sets(), l3().Ways), []trace.Source{
		srcFor(t, "libquantum_like", 1), // memory-bound
		srcFor(t, "gamess_like", 2),     // L2-resident
	})
	sys.Run(40_000)
	res := sys.Results()
	memIPC := res.PerCore[0].IPC
	cpuIPC := res.PerCore[1].IPC
	if memIPC >= cpuIPC {
		t.Fatalf("memory-bound core IPC %.3f not below compute-bound %.3f", memIPC, cpuIPC)
	}
	// Both cores execute the same number of references, so the memory-
	// bound core needs strictly more simulated time.
	if res.PerCore[0].Cycles <= res.PerCore[1].Cycles {
		t.Fatalf("memory-bound core finished faster: %.0f vs %.0f cycles",
			res.PerCore[0].Cycles, res.PerCore[1].Cycles)
	}
}

func TestSharedLLCPolicyMatters(t *testing.T) {
	// Four memory-intensive cores: a thrash-resistant shared-LLC policy
	// must beat LRU on system throughput, as the paper expects its
	// multi-core extension to.
	mix := func() []trace.Source {
		return []trace.Source{
			srcFor(t, "cactusADM_like", 1),
			srcFor(t, "libquantum_like", 2),
			srcFor(t, "sphinx3_like", 3),
			srcFor(t, "lbm_like", 4),
		}
	}
	// Enough references per core to wrap the cyclic working sets several
	// times; shorter runs are all cold misses under every policy.
	const refs = 250_000
	lru := New(policy.NewTrueLRU(l3().Sets(), l3().Ways), mix())
	lru.Run(refs)
	d4 := New(policy.NewDGIPPR4(l3().Sets(), l3().Ways, [4]ipv.Vector{
		ipv.PaperWI4DGIPPR[0], ipv.PaperWI4DGIPPR[1],
		ipv.PaperWI4DGIPPR[2], ipv.PaperWI4DGIPPR[3],
	}), mix())
	d4.Run(refs)
	tLRU := lru.Results().Throughput
	tD4 := d4.Results().Throughput
	if tD4 <= tLRU {
		t.Fatalf("4-DGIPPR throughput %.3f not above LRU %.3f on a memory-intensive mix", tD4, tLRU)
	}
}

func TestInterferenceSlowsVictims(t *testing.T) {
	// A cache-fitting workload must lose IPC when co-run with streaming
	// neighbours that pollute the shared LLC.
	alone := New(policy.NewTrueLRU(l3().Sets(), l3().Ways), []trace.Source{
		srcFor(t, "milc_like", 9),
	})
	alone.Run(60_000)
	ipcAlone := alone.Results().PerCore[0].IPC

	shared := New(policy.NewTrueLRU(l3().Sets(), l3().Ways), []trace.Source{
		srcFor(t, "milc_like", 9),
		srcFor(t, "libquantum_like", 10),
		srcFor(t, "lbm_like", 11),
		srcFor(t, "bwaves_like", 12),
	})
	shared.Run(60_000)
	ipcShared := shared.Results().PerCore[0].IPC
	if ipcShared >= ipcAlone {
		t.Fatalf("victim IPC %.3f did not drop from solo %.3f under interference", ipcShared, ipcAlone)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		sys := New(policy.NewDRRIP(l3().Sets(), l3().Ways), []trace.Source{
			srcFor(t, "mcf_like", 5),
			srcFor(t, "gcc_like", 6),
		})
		sys.Run(20_000)
		return sys.Results()
	}
	a, b := mk(), mk()
	if a.Throughput != b.Throughput || a.L3.Misses != b.L3.Misses {
		t.Fatal("multicore run not reproducible")
	}
}

func TestStringRendering(t *testing.T) {
	sys := New(policy.NewTrueLRU(l3().Sets(), l3().Ways), []trace.Source{srcFor(t, "gamess_like", 1)})
	sys.Run(5000)
	out := sys.Results().String()
	if len(out) == 0 {
		t.Fatal("empty summary")
	}
	_ = xrand.Mix // keep the deterministic-seed helper visible for future mixes
}
