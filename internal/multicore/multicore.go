// Package multicore implements the paper's future-work item 4: running the
// replacement policies under a chip-multiprocessor configuration — several
// cores, each with a private L1/L2 and its own out-of-order window model,
// sharing one last-level cache whose replacement policy is under study.
//
// Cores are scheduled by simulated time: at every step the core with the
// smallest accumulated cycle count issues its next memory reference, so a
// core stalling on DRAM naturally falls behind in instruction progress
// exactly as on real hardware, and the shared LLC sees the interleaving
// that results. Each core's address space is offset into a disjoint region
// (no sharing — the paper's multi-programmed SPEC-mix methodology, not a
// parallel-program model).
//
// Set-dueling policies work unchanged on the shared LLC: leader sets sample
// the merged reference stream of all cores.
package multicore

import (
	"fmt"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/policy"
	"gippr/internal/trace"
)

// coreAddressStride separates per-core address spaces. Workload generators
// use at most 44 bits of address (region id << 36 plus offsets), so
// shifting the core id into bits 48+ guarantees disjointness.
const coreAddressStride = 1 << 48

// Core is one processor: a trace source, private L1/L2, and a timing model.
type Core struct {
	ID     int
	Source trace.Source
	L1, L2 *cache.Cache
	Model  *cpu.WindowModel

	Instructions uint64
	L3Accesses   uint64
	L3Misses     uint64
	Finished     bool
	refs         uint64
}

// System is an n-core chip with a shared LLC.
type System struct {
	Cores []*Core
	L3    *cache.Cache
	DRAM  int
}

// New builds a system: one core per source, private 32 KB L1 / 256 KB L2
// (LRU), and the given policy on the shared 4 MB LLC.
func New(llc cache.Policy, sources []trace.Source) *System {
	if len(sources) == 0 {
		panic("multicore: need at least one core")
	}
	s := &System{
		L3:   cache.New(cache.L3Config, llc),
		DRAM: cache.DRAMLatency,
	}
	for i, src := range sources {
		s.Cores = append(s.Cores, &Core{
			ID:     i,
			Source: src,
			L1:     cache.New(cache.L1Config, policy.NewTrueLRU(cache.L1Config.Sets(), cache.L1Config.Ways)),
			L2:     cache.New(cache.L2Config, policy.NewTrueLRU(cache.L2Config.Sets(), cache.L2Config.Ways)),
			Model:  cpu.DefaultWindowModel(),
		})
	}
	return s
}

// step advances one core by one memory reference.
func (s *System) step(c *Core, refsPerCore uint64) {
	rec, ok := c.Source.Next()
	if !ok || c.refs >= refsPerCore {
		c.Finished = true
		return
	}
	c.refs++
	rec.Addr += uint64(c.ID) * coreAddressStride
	rec.Core = uint8(c.ID)
	c.Instructions += uint64(rec.Gap)
	var latency int
	switch {
	case c.L1.Access(rec):
		latency = c.L1.Config().HitLatency
	case c.L2.Access(rec):
		latency = c.L2.Config().HitLatency
	default:
		c.L3Accesses++
		if s.L3.Access(rec) {
			latency = s.L3.Config().HitLatency
		} else {
			c.L3Misses++
			c.Model.StepMiss(rec.Gap, s.L3.Config().HitLatency+s.DRAM)
			return
		}
	}
	c.Model.Step(rec.Gap, latency)
}

// Run drives every core for up to refsPerCore references each, scheduling
// by smallest simulated time. It returns the number of references executed.
func (s *System) Run(refsPerCore int) uint64 {
	var total uint64
	for {
		var next *Core
		for _, c := range s.Cores {
			if c.Finished {
				continue
			}
			if next == nil || c.Model.Cycles() < next.Model.Cycles() {
				next = c
			}
		}
		if next == nil {
			return total
		}
		before := next.Finished
		s.step(next, uint64(refsPerCore))
		if !before && !next.Finished {
			total++
		}
	}
}

// CoreResult summarizes one core after a run.
type CoreResult struct {
	ID           int
	Instructions uint64
	Cycles       float64
	IPC          float64
	L3Accesses   uint64
	L3Misses     uint64
}

// Result summarizes a whole-system run.
type Result struct {
	PerCore []CoreResult
	L3      cache.Stats
	// Throughput is total instructions divided by the slowest core's
	// cycle count — the system-level instructions per cycle.
	Throughput float64
}

// Results collects per-core and system statistics.
func (s *System) Results() Result {
	var res Result
	var instrs uint64
	var maxCycles float64
	for _, c := range s.Cores {
		cr := CoreResult{
			ID:           c.ID,
			Instructions: c.Model.Instructions(),
			Cycles:       c.Model.Cycles(),
			IPC:          c.Model.IPC(),
			L3Accesses:   c.L3Accesses,
			L3Misses:     c.L3Misses,
		}
		res.PerCore = append(res.PerCore, cr)
		instrs += cr.Instructions
		if cr.Cycles > maxCycles {
			maxCycles = cr.Cycles
		}
	}
	res.L3 = s.L3.Stats
	if maxCycles > 0 {
		res.Throughput = float64(instrs) / maxCycles
	}
	return res
}

// String renders a short per-core summary.
func (r Result) String() string {
	out := ""
	for _, c := range r.PerCore {
		out += fmt.Sprintf("core %d: %d instrs, IPC %.3f, L3 %d/%d misses\n",
			c.ID, c.Instructions, c.IPC, c.L3Misses, c.L3Accesses)
	}
	out += fmt.Sprintf("system throughput: %.3f IPC, shared L3 hit rate %.1f%%\n",
		r.Throughput, 100*r.L3.HitRate())
	return out
}
