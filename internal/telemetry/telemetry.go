// Package telemetry is the event-level instrumentation layer of the
// simulator: an allocation-free sink of per-cache events (hits, misses,
// insertions, promotions, evictions, bypasses, dueling votes) that the
// cache model and the tree-PLRU policy family feed when — and only when — a
// sink is attached. The paper's argument is about *why* policies differ:
// where blocks are inserted in the PseudoLRU recency stack, how far hits
// promote them, and how long dead blocks linger before eviction. Terminal
// cache.Stats totals cannot answer those questions; the histograms here can.
//
// Design constraints, in order:
//
//  1. Zero disabled cost. Every event call site in the hot Access path is
//     guarded by a nil check (`if tel != nil`), and the methods themselves
//     are nil-safe, so an uninstrumented simulation pays one predictable
//     branch per event and allocates nothing. bench_test.go's
//     BenchmarkReplayStream holds this bound (0 allocs/op disabled).
//  2. Zero steady-state allocation when enabled. Counters are plain
//     uint64s; histograms are fixed arrays of power-of-two buckets; the
//     per-line reuse clocks are allocated once at Attach time.
//  3. No synchronization. A Sink belongs to exactly one cache on one
//     goroutine, the same ownership rule the caches themselves follow.
//     Parallel grids give every cell its own Sink and merge afterwards
//     (Merge is cheap: a few hundred integer adds).
//
// Reuse distances here are measured in cache accesses between consecutive
// touches of the same resident line ("reuse interval"), not LRU stack
// distance; package reusedist computes exact stack distances offline when
// the distinction matters. The interval is what a hardware counter could
// measure, and its histogram separates streaming blocks (evicted untouched)
// from resident working sets just as well.
package telemetry

import "math/bits"

// Counter is a monotonically increasing event count. It is a plain uint64:
// a Sink is single-goroutine by contract, so no atomics are needed (and
// none would be paid for by disabled simulations).
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Load returns the current count.
func (c Counter) Load() uint64 { return uint64(c) }

// NumBuckets is the number of power-of-two histogram buckets: bucket 0
// holds the value 0 and bucket i (1..64) holds values v with bit length i,
// i.e. v in [2^(i-1), 2^i). Every uint64 lands in exactly one bucket.
const NumBuckets = 65

// Histogram counts values in power-of-two buckets. The zero value is ready
// to use; Observe never allocates. Positions, distances and intervals in a
// cache simulation span five orders of magnitude, which is exactly the
// regime where log-spaced buckets keep the histogram small (65 fixed
// buckets) without flattening the short-distance structure the paper's
// insertion/promotion analysis needs.
type Histogram struct {
	counts [NumBuckets]uint64
	n      uint64
	sum    uint64
	max    uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bits.Len64(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Bucket returns the raw count of bucket i (see NumBuckets for the bucket
// boundaries).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// Each calls f for every non-empty bucket in ascending value order with the
// bucket's index, inclusive value bounds, and count. It is the stable
// iteration API consumers should use instead of reaching into raw bucket
// slices; internal/explain is the first in-tree consumer.
func (h *Histogram) Each(f func(bucket int, lo, hi, count uint64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		f(i, lo, hi, c)
	}
}

// Quantile returns an upper bound on the q-quantile of the observed values:
// the inclusive upper bound of the first bucket at which the cumulative
// count reaches q*Count. q is clamped to [0, 1]; an empty histogram returns
// 0. Because buckets are power-of-two ranges the result is exact to within
// a factor of two — the right resolution for the positions, distances and
// intervals this package records.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= target && cum > 0 {
			_, hi := BucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// BucketBounds returns the inclusive value range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// MaxVotePolicies bounds the dueling-vote counters: set-dueling brackets in
// this repository select among at most eight candidate policies.
const MaxVotePolicies = 8

// Sink accumulates the event-level telemetry of one cache. Attach a Sink
// with cache.Cache.SetTelemetry (which also hands it to the replacement
// policy when the policy is Instrumented); a nil *Sink is a valid "off"
// sink — every method is nil-safe, so call sites may also invoke methods
// unconditionally where the arguments are free to compute.
type Sink struct {
	// Cache-level event counters, maintained by cache.Cache.
	Hits       Counter
	Misses     Counter
	Evictions  Counter
	Writebacks Counter
	Bypasses   Counter
	Fills      Counter

	// Policy-level event counters, maintained by Instrumented policies.
	Insertions Counter
	Promotions Counter

	// InsertPos histograms the recency-stack position blocks are inserted
	// at (GIPPR: V[k]; PLRU: 0). PromoteFrom and PromoteTo histogram the
	// positions hits move blocks between, and PromoteDist the magnitude of
	// that move — the "promotion distance" of the paper's IPV analysis.
	InsertPos   Histogram
	PromoteFrom Histogram
	PromoteTo   Histogram
	PromoteDist Histogram

	// HitReuse histograms, at each hit, the number of cache accesses since
	// the line was last touched. EvictAge histograms, at each eviction, the
	// accesses since the victim's last touch (its "dead time"); EvictLife
	// the accesses since the victim was filled.
	HitReuse  Histogram
	EvictAge  Histogram
	EvictLife Histogram

	// Votes counts, per candidate-policy index, the leader-set misses that
	// trained a set-dueling mechanism toward that policy's opponents (the
	// raw PSEL traffic of paper Section 3.5).
	Votes [MaxVotePolicies]Counter

	// tick is the access clock: one tick per cache access, never reset, so
	// the per-line reuse clocks below stay valid across ResetStats.
	tick      uint64
	lastTouch []uint64 // per line: tick of the line's most recent touch
	fillTick  []uint64 // per line: tick at which the line was filled
}

// Attach sizes the per-line reuse clocks for a cache of the given total
// line count (sets x ways). It is called once by cache.Cache.SetTelemetry;
// a Sink used only for policy-level events may skip it.
func (s *Sink) Attach(lines int) {
	if s == nil {
		return
	}
	if len(s.lastTouch) != lines {
		s.lastTouch = make([]uint64, lines)
		s.fillTick = make([]uint64, lines)
	}
}

// Reset zeroes every counter and histogram while preserving the access
// clock and per-line state, so a warm-up window can be discarded (the
// cache.Cache.ResetStats convention) without corrupting reuse intervals
// that span the boundary.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	s.Hits, s.Misses, s.Evictions, s.Writebacks, s.Bypasses, s.Fills = 0, 0, 0, 0, 0, 0
	s.Insertions, s.Promotions = 0, 0
	s.InsertPos.Reset()
	s.PromoteFrom.Reset()
	s.PromoteTo.Reset()
	s.PromoteDist.Reset()
	s.HitReuse.Reset()
	s.EvictAge.Reset()
	s.EvictLife.Reset()
	s.Votes = [MaxVotePolicies]Counter{}
}

// Hit records a hit on the line with flat index line (set*ways + way).
func (s *Sink) Hit(line int) {
	if s == nil {
		return
	}
	s.tick++
	s.Hits.Inc()
	if line < len(s.lastTouch) {
		s.HitReuse.Observe(s.tick - s.lastTouch[line])
		s.lastTouch[line] = s.tick
	}
}

// Miss records a miss (called once per miss, before any eviction or fill).
func (s *Sink) Miss() {
	if s == nil {
		return
	}
	s.tick++
	s.Misses.Inc()
}

// Evict records the eviction of the valid line with flat index line.
func (s *Sink) Evict(line int, dirty bool) {
	if s == nil {
		return
	}
	s.Evictions.Inc()
	if dirty {
		s.Writebacks.Inc()
	}
	if line < len(s.lastTouch) {
		s.EvictAge.Observe(s.tick - s.lastTouch[line])
		s.EvictLife.Observe(s.tick - s.fillTick[line])
	}
}

// Fill records the fill of the line with flat index line.
func (s *Sink) Fill(line int) {
	if s == nil {
		return
	}
	s.Fills.Inc()
	if line < len(s.lastTouch) {
		s.lastTouch[line] = s.tick
		s.fillTick[line] = s.tick
	}
}

// Bypass records a miss that the policy chose not to cache.
func (s *Sink) Bypass() {
	if s == nil {
		return
	}
	s.Bypasses.Inc()
}

// Insert records a policy inserting an incoming block at recency-stack
// position pos.
func (s *Sink) Insert(pos int) {
	if s == nil {
		return
	}
	s.Insertions.Inc()
	s.InsertPos.Observe(uint64(pos))
}

// Promote records a policy moving a hit block from recency-stack position
// from to position to. Demotions (to > from, possible under arbitrary IPVs)
// count with their absolute distance.
func (s *Sink) Promote(from, to int) {
	if s == nil {
		return
	}
	s.Promotions.Inc()
	s.PromoteFrom.Observe(uint64(from))
	s.PromoteTo.Observe(uint64(to))
	d := from - to
	if d < 0 {
		d = -d
	}
	s.PromoteDist.Observe(uint64(d))
}

// Vote records a set-dueling leader miss that voted against candidate
// policy p (indices beyond MaxVotePolicies-1 are dropped).
func (s *Sink) Vote(p int) {
	if s == nil {
		return
	}
	if p >= 0 && p < MaxVotePolicies {
		s.Votes[p].Inc()
	}
}

// Accesses returns hits + misses, the sink's access count.
func (s *Sink) Accesses() uint64 {
	if s == nil {
		return 0
	}
	return s.Hits.Load() + s.Misses.Load()
}

// Merge adds other's counters and histograms into s (per-line clocks are
// not merged — they are meaningless across caches). Use it to aggregate
// per-worker sinks from a parallel grid.
func (s *Sink) Merge(other *Sink) {
	if s == nil || other == nil {
		return
	}
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.Bypasses += other.Bypasses
	s.Fills += other.Fills
	s.Insertions += other.Insertions
	s.Promotions += other.Promotions
	s.InsertPos.Merge(&other.InsertPos)
	s.PromoteFrom.Merge(&other.PromoteFrom)
	s.PromoteTo.Merge(&other.PromoteTo)
	s.PromoteDist.Merge(&other.PromoteDist)
	s.HitReuse.Merge(&other.HitReuse)
	s.EvictAge.Merge(&other.EvictAge)
	s.EvictLife.Merge(&other.EvictLife)
	for i := range s.Votes {
		s.Votes[i] += other.Votes[i]
	}
}
