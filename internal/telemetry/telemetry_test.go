package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		lo, hi := BucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BucketBounds(%d) = [%d, %d], want [%d, %d]", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	vals := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, math.MaxUint64}
	var sum uint64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %d, want %d", h.Sum(), sum)
	}
	if h.Max() != math.MaxUint64 {
		t.Errorf("Max = %d, want MaxUint64", h.Max())
	}
	// Every observation must land in the bucket whose bounds contain it.
	var total uint64
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		for _, v := range vals {
			if v >= lo && v <= hi {
				continue
			}
		}
		total += h.Bucket(i)
	}
	if total != uint64(len(vals)) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(vals))
	}
	if h.Bucket(0) != 1 { // only the value 0
		t.Errorf("bucket 0 = %d, want 1", h.Bucket(0))
	}
	if h.Bucket(2) != 2 { // values 2, 3
		t.Errorf("bucket 2 = %d, want 2", h.Bucket(2))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := uint64(0); v < 100; v++ {
		a.Observe(v)
		b.Observe(v * 10)
	}
	want := a.Count() + b.Count()
	wantSum := a.Sum() + b.Sum()
	a.Merge(&b)
	if a.Count() != want || a.Sum() != wantSum {
		t.Errorf("after merge: count %d sum %d, want %d / %d", a.Count(), a.Sum(), want, wantSum)
	}
	if a.Max() != 990 {
		t.Errorf("after merge: max %d, want 990", a.Max())
	}
}

// TestNilSinkSafe: every event method must be a no-op on a nil sink — this
// is the contract the uninstrumented hot path relies on.
func TestNilSinkSafe(t *testing.T) {
	var s *Sink
	s.Attach(64)
	s.Hit(0)
	s.Miss()
	s.Evict(0, true)
	s.Fill(0)
	s.Bypass()
	s.Insert(3)
	s.Promote(5, 1)
	s.Vote(2)
	s.Reset()
	s.Merge(&Sink{})
	(&Sink{}).Merge(s)
	if s.Accesses() != 0 {
		t.Error("nil sink reported accesses")
	}
	if r := s.Report(); r.Accesses != 0 {
		t.Error("nil sink reported a non-zero report")
	}
}

func TestSinkEventAccounting(t *testing.T) {
	var s Sink
	s.Attach(4)
	// Access pattern on a tiny 1-set, 4-way "cache": fill 0..3, hit 0,
	// evict line 1 (dirty), refill it, bypass one miss.
	for i := 0; i < 4; i++ {
		s.Miss()
		s.Fill(i)
	}
	s.Hit(0)
	s.Miss()
	s.Evict(1, true)
	s.Fill(1)
	s.Miss()
	s.Bypass()

	if got := s.Accesses(); got != 7 {
		t.Errorf("Accesses = %d, want 7", got)
	}
	if s.Hits.Load() != 1 || s.Misses.Load() != 6 {
		t.Errorf("hits/misses = %d/%d, want 1/6", s.Hits.Load(), s.Misses.Load())
	}
	if s.Evictions.Load() != 1 || s.Writebacks.Load() != 1 || s.Bypasses.Load() != 1 {
		t.Errorf("evict/wb/bypass = %d/%d/%d, want 1/1/1",
			s.Evictions.Load(), s.Writebacks.Load(), s.Bypasses.Load())
	}
	// The hit on line 0 came 5 accesses after its fill at tick 1.
	if s.HitReuse.Count() != 1 || s.HitReuse.Sum() != 4 {
		t.Errorf("HitReuse count/sum = %d/%d, want 1/4", s.HitReuse.Count(), s.HitReuse.Sum())
	}
	// Line 1 was filled at tick 2 and evicted at tick 6: age = life = 4.
	if s.EvictAge.Sum() != 4 || s.EvictLife.Sum() != 4 {
		t.Errorf("EvictAge/EvictLife sums = %d/%d, want 4/4", s.EvictAge.Sum(), s.EvictLife.Sum())
	}
}

func TestSinkResetPreservesClocks(t *testing.T) {
	var s Sink
	s.Attach(2)
	s.Miss()
	s.Fill(0)
	s.Reset()
	if s.Misses.Load() != 0 || s.Fills.Load() != 0 {
		t.Fatal("Reset did not zero counters")
	}
	// A hit after the reset must still see a correct reuse interval
	// relative to the pre-reset fill.
	s.Hit(0)
	if s.HitReuse.Count() != 1 || s.HitReuse.Sum() != 1 {
		t.Errorf("post-reset reuse interval = %d (count %d), want 1 (1)",
			s.HitReuse.Sum(), s.HitReuse.Count())
	}
}

func TestSinkMerge(t *testing.T) {
	var a, b Sink
	a.Miss()
	a.Insert(3)
	a.Vote(1)
	b.Miss()
	b.Miss()
	b.Insert(5)
	b.Vote(1)
	b.Vote(7)
	a.Merge(&b)
	if a.Misses.Load() != 3 || a.Insertions.Load() != 2 {
		t.Errorf("merged misses/insertions = %d/%d, want 3/2", a.Misses.Load(), a.Insertions.Load())
	}
	if a.Votes[1].Load() != 2 || a.Votes[7].Load() != 1 {
		t.Errorf("merged votes = %v", a.Votes)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	var s Sink
	s.Attach(8)
	for i := 0; i < 8; i++ {
		s.Miss()
		s.Fill(i)
		s.Insert(i)
	}
	s.Hit(3)
	s.Promote(7, 0)
	s.Vote(2)

	m := &Manifest{
		Tool:        "test",
		Fingerprint: "fp|v1",
		Cache:       CacheGeometry{Name: "L3", SizeBytes: 4 << 20, Ways: 16, BlockBytes: 64, Sets: 4096},
		Records:     1000,
		WarmFrac:    1.0 / 3,
		Entries:     []Entry{{Workload: "w", Policy: "p", MPKI: 1.5, LLC: s.Report()}},
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != ManifestVersion || got.Tool != "test" || got.Fingerprint != "fp|v1" {
		t.Errorf("round-trip header mismatch: %+v", got)
	}
	if len(got.Entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(got.Entries))
	}
	e := got.Entries[0]
	if e.LLC.Misses != 8 || e.LLC.Hits != 1 || e.LLC.Insertions != 8 || e.LLC.Promotions != 1 {
		t.Errorf("entry counters mismatch: %+v", e.LLC)
	}
	if e.LLC.Votes["2"] != 1 {
		t.Errorf("votes = %v, want {2:1}", e.LLC.Votes)
	}
	if e.LLC.InsertPos.Count != 8 {
		t.Errorf("InsertPos count = %d, want 8", e.LLC.InsertPos.Count)
	}
}

func TestManifestVersionCheck(t *testing.T) {
	var buf bytes.Buffer
	m := &Manifest{Tool: "t"}
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["version"] != float64(ManifestVersion) {
		t.Errorf("encoded version = %v, want %d", decoded["version"], ManifestVersion)
	}
	// A future-versioned file must be refused.
	path := filepath.Join(t.TempDir(), "m.json")
	bad := &Manifest{Version: ManifestVersion + 1, Tool: "t"}
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Error("ReadManifest accepted a future manifest version")
	}
}

func TestHistogramEach(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(5)
	h.Observe(1000)

	var got []struct {
		bucket        int
		lo, hi, count uint64
	}
	h.Each(func(bucket int, lo, hi, count uint64) {
		got = append(got, struct {
			bucket        int
			lo, hi, count uint64
		}{bucket, lo, hi, count})
	})
	prev := -1
	var total uint64
	for _, b := range got {
		if b.bucket <= prev {
			t.Fatalf("Each not in ascending bucket order: %d after %d", b.bucket, prev)
		}
		prev = b.bucket
		if b.count == 0 {
			t.Fatalf("Each visited empty bucket %d", b.bucket)
		}
		lo, hi := BucketBounds(b.bucket)
		if lo != b.lo || hi != b.hi {
			t.Fatalf("bucket %d bounds (%d,%d) != BucketBounds (%d,%d)", b.bucket, b.lo, b.hi, lo, hi)
		}
		total += b.count
	}
	if total != 5 {
		t.Fatalf("Each covered %d observations, want 5", total)
	}
	// Value 0 lands in bucket 0, value 1 in bucket 1: the two singleton buckets.
	if got[0].bucket != 0 || got[0].count != 1 || got[1].bucket != 1 || got[1].count != 2 {
		t.Fatalf("low buckets wrong: %+v", got[:2])
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", q)
	}

	// 90 observations of value 1, 10 of value 1000: p50 bounds to bucket(1),
	// p99 bounds to bucket(1000) capped at the observed max.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	if q := h.Quantile(0.50); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(0.99); q != 1000 {
		t.Errorf("p99 = %d, want 1000 (bucket upper bound capped at max)", q)
	}
	// Clamping: out-of-range q behaves as the endpoints.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Error("q is not clamped to [0, 1]")
	}
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("p100 = %d, want max 1000", q)
	}
}

func TestSnapshotQuantilesMirrorHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 7, 8, 100, 5000, 5000, 70000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.P50 != h.Quantile(0.50) || s.P90 != h.Quantile(0.90) || s.P99 != h.Quantile(0.99) {
		t.Errorf("snapshot quantile summary (%d/%d/%d) != live (%d/%d/%d)",
			s.P50, s.P90, s.P99, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if s.Quantile(q) != h.Quantile(q) {
			t.Errorf("snapshot Quantile(%v) = %d, live = %d", q, s.Quantile(q), h.Quantile(q))
		}
	}
	var fromSnap, fromLive []BucketSnapshot
	s.Each(func(b BucketSnapshot) { fromSnap = append(fromSnap, b) })
	h.Each(func(_ int, lo, hi, c uint64) { fromLive = append(fromLive, BucketSnapshot{Lo: lo, Hi: hi, Count: c}) })
	if len(fromSnap) != len(fromLive) {
		t.Fatalf("snapshot Each visited %d buckets, live %d", len(fromSnap), len(fromLive))
	}
	for i := range fromSnap {
		if fromSnap[i] != fromLive[i] {
			t.Errorf("bucket %d: snapshot %+v != live %+v", i, fromSnap[i], fromLive[i])
		}
	}
}

func TestManifestV1StillReadable(t *testing.T) {
	// A v1 file (no quantile summary) must decode under the v2 reader, with
	// the quantile fields recomputable from the serialized buckets.
	path := filepath.Join(t.TempDir(), "v1.json")
	old := &Manifest{Version: 1, Tool: "t", Entries: []Entry{{
		Workload: "w", Policy: "p",
		LLC: Report{HitReuse: HistogramSnapshot{
			Count: 3, Sum: 12, Max: 8, Mean: 4,
			Buckets: []BucketSnapshot{{Lo: 2, Hi: 3, Count: 1}, {Lo: 4, Hi: 7, Count: 1}, {Lo: 8, Hi: 15, Count: 1}},
		}},
	}}}
	if err := old.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatalf("v1 manifest refused: %v", err)
	}
	hr := got.Entries[0].LLC.HitReuse
	if hr.P50 != 0 || hr.P90 != 0 {
		t.Errorf("v1 decode invented quantile fields: %+v", hr)
	}
	if q := hr.Quantile(0.5); q != 7 {
		t.Errorf("recomputed p50 = %d, want 7 (second bucket's bound)", q)
	}
	// Below the floor is refused like above the ceiling. (Encode back-fills
	// a zero version, so write the raw bytes directly.)
	if err := os.WriteFile(path, []byte(`{"version": 0, "tool": "t"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Error("ReadManifest accepted manifest version 0")
	}
}
