package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		lo, hi := BucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BucketBounds(%d) = [%d, %d], want [%d, %d]", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	vals := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, math.MaxUint64}
	var sum uint64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %d, want %d", h.Sum(), sum)
	}
	if h.Max() != math.MaxUint64 {
		t.Errorf("Max = %d, want MaxUint64", h.Max())
	}
	// Every observation must land in the bucket whose bounds contain it.
	var total uint64
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		for _, v := range vals {
			if v >= lo && v <= hi {
				continue
			}
		}
		total += h.Bucket(i)
	}
	if total != uint64(len(vals)) {
		t.Errorf("bucket counts sum to %d, want %d", total, len(vals))
	}
	if h.Bucket(0) != 1 { // only the value 0
		t.Errorf("bucket 0 = %d, want 1", h.Bucket(0))
	}
	if h.Bucket(2) != 2 { // values 2, 3
		t.Errorf("bucket 2 = %d, want 2", h.Bucket(2))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := uint64(0); v < 100; v++ {
		a.Observe(v)
		b.Observe(v * 10)
	}
	want := a.Count() + b.Count()
	wantSum := a.Sum() + b.Sum()
	a.Merge(&b)
	if a.Count() != want || a.Sum() != wantSum {
		t.Errorf("after merge: count %d sum %d, want %d / %d", a.Count(), a.Sum(), want, wantSum)
	}
	if a.Max() != 990 {
		t.Errorf("after merge: max %d, want 990", a.Max())
	}
}

// TestNilSinkSafe: every event method must be a no-op on a nil sink — this
// is the contract the uninstrumented hot path relies on.
func TestNilSinkSafe(t *testing.T) {
	var s *Sink
	s.Attach(64)
	s.Hit(0)
	s.Miss()
	s.Evict(0, true)
	s.Fill(0)
	s.Bypass()
	s.Insert(3)
	s.Promote(5, 1)
	s.Vote(2)
	s.Reset()
	s.Merge(&Sink{})
	(&Sink{}).Merge(s)
	if s.Accesses() != 0 {
		t.Error("nil sink reported accesses")
	}
	if r := s.Report(); r.Accesses != 0 {
		t.Error("nil sink reported a non-zero report")
	}
}

func TestSinkEventAccounting(t *testing.T) {
	var s Sink
	s.Attach(4)
	// Access pattern on a tiny 1-set, 4-way "cache": fill 0..3, hit 0,
	// evict line 1 (dirty), refill it, bypass one miss.
	for i := 0; i < 4; i++ {
		s.Miss()
		s.Fill(i)
	}
	s.Hit(0)
	s.Miss()
	s.Evict(1, true)
	s.Fill(1)
	s.Miss()
	s.Bypass()

	if got := s.Accesses(); got != 7 {
		t.Errorf("Accesses = %d, want 7", got)
	}
	if s.Hits.Load() != 1 || s.Misses.Load() != 6 {
		t.Errorf("hits/misses = %d/%d, want 1/6", s.Hits.Load(), s.Misses.Load())
	}
	if s.Evictions.Load() != 1 || s.Writebacks.Load() != 1 || s.Bypasses.Load() != 1 {
		t.Errorf("evict/wb/bypass = %d/%d/%d, want 1/1/1",
			s.Evictions.Load(), s.Writebacks.Load(), s.Bypasses.Load())
	}
	// The hit on line 0 came 5 accesses after its fill at tick 1.
	if s.HitReuse.Count() != 1 || s.HitReuse.Sum() != 4 {
		t.Errorf("HitReuse count/sum = %d/%d, want 1/4", s.HitReuse.Count(), s.HitReuse.Sum())
	}
	// Line 1 was filled at tick 2 and evicted at tick 6: age = life = 4.
	if s.EvictAge.Sum() != 4 || s.EvictLife.Sum() != 4 {
		t.Errorf("EvictAge/EvictLife sums = %d/%d, want 4/4", s.EvictAge.Sum(), s.EvictLife.Sum())
	}
}

func TestSinkResetPreservesClocks(t *testing.T) {
	var s Sink
	s.Attach(2)
	s.Miss()
	s.Fill(0)
	s.Reset()
	if s.Misses.Load() != 0 || s.Fills.Load() != 0 {
		t.Fatal("Reset did not zero counters")
	}
	// A hit after the reset must still see a correct reuse interval
	// relative to the pre-reset fill.
	s.Hit(0)
	if s.HitReuse.Count() != 1 || s.HitReuse.Sum() != 1 {
		t.Errorf("post-reset reuse interval = %d (count %d), want 1 (1)",
			s.HitReuse.Sum(), s.HitReuse.Count())
	}
}

func TestSinkMerge(t *testing.T) {
	var a, b Sink
	a.Miss()
	a.Insert(3)
	a.Vote(1)
	b.Miss()
	b.Miss()
	b.Insert(5)
	b.Vote(1)
	b.Vote(7)
	a.Merge(&b)
	if a.Misses.Load() != 3 || a.Insertions.Load() != 2 {
		t.Errorf("merged misses/insertions = %d/%d, want 3/2", a.Misses.Load(), a.Insertions.Load())
	}
	if a.Votes[1].Load() != 2 || a.Votes[7].Load() != 1 {
		t.Errorf("merged votes = %v", a.Votes)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	var s Sink
	s.Attach(8)
	for i := 0; i < 8; i++ {
		s.Miss()
		s.Fill(i)
		s.Insert(i)
	}
	s.Hit(3)
	s.Promote(7, 0)
	s.Vote(2)

	m := &Manifest{
		Tool:        "test",
		Fingerprint: "fp|v1",
		Cache:       CacheGeometry{Name: "L3", SizeBytes: 4 << 20, Ways: 16, BlockBytes: 64, Sets: 4096},
		Records:     1000,
		WarmFrac:    1.0 / 3,
		Entries:     []Entry{{Workload: "w", Policy: "p", MPKI: 1.5, LLC: s.Report()}},
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != ManifestVersion || got.Tool != "test" || got.Fingerprint != "fp|v1" {
		t.Errorf("round-trip header mismatch: %+v", got)
	}
	if len(got.Entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(got.Entries))
	}
	e := got.Entries[0]
	if e.LLC.Misses != 8 || e.LLC.Hits != 1 || e.LLC.Insertions != 8 || e.LLC.Promotions != 1 {
		t.Errorf("entry counters mismatch: %+v", e.LLC)
	}
	if e.LLC.Votes["2"] != 1 {
		t.Errorf("votes = %v, want {2:1}", e.LLC.Votes)
	}
	if e.LLC.InsertPos.Count != 8 {
		t.Errorf("InsertPos count = %d, want 8", e.LLC.InsertPos.Count)
	}
}

func TestManifestVersionCheck(t *testing.T) {
	var buf bytes.Buffer
	m := &Manifest{Tool: "t"}
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["version"] != float64(ManifestVersion) {
		t.Errorf("encoded version = %v, want %d", decoded["version"], ManifestVersion)
	}
	// A future-versioned file must be refused.
	path := filepath.Join(t.TempDir(), "m.json")
	bad := &Manifest{Version: ManifestVersion + 1, Tool: "t"}
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Error("ReadManifest accepted a future manifest version")
	}
}
