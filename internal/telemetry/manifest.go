package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ManifestVersion identifies the manifest schema; bump it on incompatible
// changes so downstream consumers can refuse files they do not understand.
// Version 2 added the histogram quantile summary (P50/P90/P99) to every
// HistogramSnapshot; version-1 files remain readable (the quantile fields
// simply decode as zero and can be recomputed via Quantile).
const ManifestVersion = 2

// manifestVersionPrev is the oldest schema ReadManifest still accepts.
const manifestVersionPrev = 1

// BucketSnapshot is one non-empty histogram bucket in a manifest: the
// inclusive value range it covers and its count.
type BucketSnapshot struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a histogram exported for a manifest. Only non-empty
// buckets are serialized. The quantile fields (manifest v2) summarize the
// distribution to within a power-of-two bucket; Quantile recomputes any
// other point from the buckets, so consumers never need the raw slice.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     uint64           `json:"sum"`
	Max     uint64           `json:"max"`
	Mean    float64          `json:"mean"`
	P50     uint64           `json:"p50,omitempty"`
	P90     uint64           `json:"p90,omitempty"`
	P99     uint64           `json:"p99,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot exports the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.n, Sum: h.sum, Max: h.max, Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	h.Each(func(_ int, lo, hi, c uint64) {
		s.Buckets = append(s.Buckets, BucketSnapshot{Lo: lo, Hi: hi, Count: c})
	})
	return s
}

// Each calls f for every serialized (non-empty) bucket in ascending value
// order — the stable iteration API mirroring Histogram.Each for consumers
// that hold a decoded manifest rather than a live histogram.
func (s HistogramSnapshot) Each(f func(b BucketSnapshot)) {
	for _, b := range s.Buckets {
		f(b)
	}
}

// Quantile returns an upper bound on the q-quantile of the snapshotted
// distribution, following the Histogram.Quantile contract (clamped q, 0 on
// empty, exact to within the bucket's factor of two, capped at Max).
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if float64(cum) >= target && cum > 0 {
			hi := b.Hi
			if hi > s.Max {
				hi = s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Report is a Sink exported for a manifest.
type Report struct {
	Accesses   uint64 `json:"accesses"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Writebacks uint64 `json:"writebacks"`
	Bypasses   uint64 `json:"bypasses"`
	Fills      uint64 `json:"fills"`
	Insertions uint64 `json:"insertions"`
	Promotions uint64 `json:"promotions"`

	InsertPos   HistogramSnapshot `json:"insert_pos"`
	PromoteFrom HistogramSnapshot `json:"promote_from"`
	PromoteTo   HistogramSnapshot `json:"promote_to"`
	PromoteDist HistogramSnapshot `json:"promote_dist"`
	HitReuse    HistogramSnapshot `json:"hit_reuse"`
	EvictAge    HistogramSnapshot `json:"evict_age"`
	EvictLife   HistogramSnapshot `json:"evict_life"`

	// Votes maps candidate-policy index to leader-miss votes; empty when
	// the policy does not duel.
	Votes map[string]uint64 `json:"votes,omitempty"`
}

// Report exports the sink.
func (s *Sink) Report() Report {
	if s == nil {
		return Report{}
	}
	r := Report{
		Accesses:    s.Accesses(),
		Hits:        s.Hits.Load(),
		Misses:      s.Misses.Load(),
		Evictions:   s.Evictions.Load(),
		Writebacks:  s.Writebacks.Load(),
		Bypasses:    s.Bypasses.Load(),
		Fills:       s.Fills.Load(),
		Insertions:  s.Insertions.Load(),
		Promotions:  s.Promotions.Load(),
		InsertPos:   s.InsertPos.Snapshot(),
		PromoteFrom: s.PromoteFrom.Snapshot(),
		PromoteTo:   s.PromoteTo.Snapshot(),
		PromoteDist: s.PromoteDist.Snapshot(),
		HitReuse:    s.HitReuse.Snapshot(),
		EvictAge:    s.EvictAge.Snapshot(),
		EvictLife:   s.EvictLife.Snapshot(),
	}
	for i, v := range s.Votes {
		if v > 0 {
			if r.Votes == nil {
				r.Votes = make(map[string]uint64, len(s.Votes))
			}
			r.Votes[fmt.Sprintf("%d", i)] = v.Load()
		}
	}
	return r
}

// CacheGeometry describes the cache a manifest's telemetry was collected
// on. It mirrors cache.Config's fields (telemetry cannot import cache —
// cache imports telemetry).
type CacheGeometry struct {
	Name       string `json:"name"`
	SizeBytes  int    `json:"size_bytes"`
	Ways       int    `json:"ways"`
	BlockBytes int    `json:"block_bytes"`
	Sets       int    `json:"sets"`
	// SampleShift and SampledSets record the set-sampling configuration a
	// manifest's numbers were estimated under; both absent (zero) for a
	// full-fidelity run.
	SampleShift uint `json:"sample_shift,omitempty"`
	SampledSets int  `json:"sampled_sets,omitempty"`
}

// Entry is one (workload, policy) cell of a manifest.
type Entry struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	MPKI     float64 `json:"mpki"`
	LLC      Report  `json:"llc"`
}

// Manifest is the JSON run manifest a -telemetry flag dumps: enough
// configuration to reproduce the run, plus per-(workload, policy)
// event-level telemetry of the LLC under study. gippr-report and external
// tooling consume it instead of re-parsing ASCII tables.
type Manifest struct {
	Version     int           `json:"version"`
	Tool        string        `json:"tool"`
	Fingerprint string        `json:"fingerprint"`
	Cache       CacheGeometry `json:"cache"`
	Records     int           `json:"records_per_phase"`
	WarmFrac    float64       `json:"warm_frac"`
	Entries     []Entry       `json:"entries"`
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	if m.Version == 0 {
		m.Version = ManifestVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest atomically (temp file + rename in the
// destination directory), so a crashed or interrupted run never leaves a
// torn manifest for tooling to choke on.
func (m *Manifest) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := m.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("telemetry: encode %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("telemetry: parse %s: %w", path, err)
	}
	if m.Version < manifestVersionPrev || m.Version > ManifestVersion {
		return nil, fmt.Errorf("telemetry: %s: manifest version %d, want %d..%d",
			path, m.Version, manifestVersionPrev, ManifestVersion)
	}
	return &m, nil
}
