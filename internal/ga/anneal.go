package ga

import (
	"math"

	"gippr/internal/ipv"
	"gippr/internal/xrand"
)

// AnnealConfig parameterizes simulated annealing, an alternative to the
// genetic algorithm for the paper's future-work item 3 ("ways to find these
// vectors more systematically"). Annealing explores single-element moves
// under a geometric cooling schedule, which suits the IPV space: fitness is
// often improved by local refinements of one insertion or promotion entry
// (the paper's own hill-climbing observation in Section 2.6).
type AnnealConfig struct {
	// Steps is the number of candidate moves considered.
	Steps int
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// fitness units (speedup deltas; 0.01 = one percent of speedup).
	StartTemp, EndTemp float64
	Seed               uint64
}

// DefaultAnnealConfig returns a schedule sized comparably to a small GA run.
func DefaultAnnealConfig(seed uint64) AnnealConfig {
	return AnnealConfig{Steps: 200, StartTemp: 0.02, EndTemp: 0.0005, Seed: seed}
}

// Anneal refines start by simulated annealing and returns the best vector
// seen and its fitness. The accept rule is Metropolis: worse moves are
// taken with probability exp(delta/T).
func Anneal(e *Env, start ipv.Vector, cfg AnnealConfig) (ipv.Vector, float64) {
	if cfg.Steps < 1 {
		panic("ga: annealing needs at least one step")
	}
	if cfg.StartTemp <= 0 || cfg.EndTemp <= 0 || cfg.EndTemp > cfg.StartTemp {
		panic("ga: annealing temperatures must satisfy 0 < end <= start")
	}
	rng := xrand.New(cfg.Seed)
	k := e.Config.Ways

	cur := start.Clone()
	curFit := e.Fitness(cur)
	best := cur.Clone()
	bestFit := curFit

	cool := math.Pow(cfg.EndTemp/cfg.StartTemp, 1/float64(cfg.Steps))
	temp := cfg.StartTemp
	for step := 0; step < cfg.Steps; step++ {
		i := rng.Intn(len(cur))
		old := cur[i]
		next := rng.Intn(k)
		for next == old && k > 1 {
			next = rng.Intn(k)
		}
		cur[i] = next
		fit := e.Fitness(cur)
		delta := fit - curFit
		if delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
			curFit = fit
			if fit > bestFit {
				bestFit = fit
				best = cur.Clone()
			}
		} else {
			cur[i] = old
		}
		temp *= cool
	}
	return best, bestFit
}
