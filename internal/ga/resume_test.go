package ga

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"gippr/internal/checkpoint"
	"gippr/internal/ipv"
)

// resumeCfg is a run long enough that cancelling at generation 2 leaves
// real work to redo on resume.
func resumeCfg(workers int) Config {
	cfg := DefaultConfig(0x515)
	cfg.Population = 8
	cfg.Generations = 5
	cfg.Elite = 2
	cfg.Seeds = []ipv.Vector{ipv.LRU(16), ipv.LIP(16)}
	_ = workers
	return cfg
}

// TestEvolveKillAndResumeBitIdentical is the crash-safety contract: a run
// cancelled mid-flight via context and resumed from its last generation
// snapshot must produce the same best vector, fitness and history — bit for
// bit — as a run that was never interrupted, serially and at 8 workers.
func TestEvolveKillAndResumeBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 8} {
		env := testEnv(t).SetWorkers(workers)

		wantBest, wantFit, wantHist := Evolve(env, resumeCfg(workers))

		// Interrupted run: cancel as soon as generation 2's snapshot lands,
		// so generations 3 and 4 never run before the "crash".
		ctx, cancel := context.WithCancel(context.Background())
		var last State
		cfg := resumeCfg(workers)
		cfg.OnState = func(st State) {
			last = st
			if st.Generation == 2 {
				cancel()
			}
		}
		_, _, _, err := EvolveCtx(ctx, env, cfg)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: interrupted run err = %v", workers, err)
		}
		if last.Generation != 2 {
			t.Fatalf("workers=%d: last snapshot at generation %d", workers, last.Generation)
		}

		// Resume from the snapshot on a fresh environment (a real resume is
		// a new process).
		cfg2 := resumeCfg(workers)
		cfg2.Resume = &last
		gotBest, gotFit, gotHist, err := EvolveCtx(context.Background(), testEnv(t).SetWorkers(workers), cfg2)
		if err != nil {
			t.Fatalf("workers=%d: resume err = %v", workers, err)
		}
		if !gotBest.Equal(wantBest) || gotFit != wantFit {
			t.Fatalf("workers=%d: resumed (%v, %v) != uninterrupted (%v, %v)",
				workers, gotBest, gotFit, wantBest, wantFit)
		}
		if len(gotHist) != len(wantHist) {
			t.Fatalf("workers=%d: history length %d != %d", workers, len(gotHist), len(wantHist))
		}
		for i := range wantHist {
			if gotHist[i] != wantHist[i] {
				t.Fatalf("workers=%d: generation %d history %v != %v",
					workers, i, gotHist[i], wantHist[i])
			}
		}
	}
}

// TestEvolveResumeThroughCheckpointFile proves the full persistence loop:
// the snapshot survives the JSON envelope (atomic write, checksum,
// fingerprint) and still resumes bit-identically — i.e. float64 fitnesses
// and RNG state round-trip exactly through the on-disk format.
func TestEvolveResumeThroughCheckpointFile(t *testing.T) {
	env := testEnv(t).SetWorkers(4)
	cfg := resumeCfg(4)
	wantBest, wantFit, _ := Evolve(env, cfg)

	path := filepath.Join(t.TempDir(), "evolve.ckpt")
	const fp = "test|pop=8|gens=5"
	ctx, cancel := context.WithCancel(context.Background())
	run := resumeCfg(4)
	run.OnState = func(st State) {
		if err := checkpoint.Save(path, fp, st); err != nil {
			t.Fatalf("save: %v", err)
		}
		if st.Generation == 1 {
			cancel()
		}
	}
	_, _, _, err := EvolveCtx(ctx, env, run)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v", err)
	}

	var loaded State
	if err := checkpoint.Load(path, fp, &loaded); err != nil {
		t.Fatalf("load: %v", err)
	}
	resume := resumeCfg(4)
	resume.Resume = &loaded
	gotBest, gotFit, _, err := EvolveCtx(context.Background(), testEnv(t).SetWorkers(4), resume)
	if err != nil {
		t.Fatal(err)
	}
	if !gotBest.Equal(wantBest) || gotFit != wantFit {
		t.Fatalf("resumed-from-disk (%v, %v) != uninterrupted (%v, %v)",
			gotBest, gotFit, wantBest, wantFit)
	}
}

func TestEvolveResumeRejectsMismatchedState(t *testing.T) {
	env := testEnv(t).SetWorkers(2)
	var st State
	cfg := resumeCfg(2)
	cfg.Generations = 1
	cfg.OnState = func(s State) { st = s }
	Evolve(env, cfg)

	bad := resumeCfg(2)
	bad.Population = 12 // differs from the snapshot's 8
	bad.Resume = &st
	if _, _, _, err := EvolveCtx(context.Background(), env, bad); err == nil {
		t.Fatal("resume with mismatched population accepted")
	}

	corrupt := st
	corrupt.Population = append([]Scored(nil), st.Population...)
	corrupt.Population[0] = Scored{Vector: ipv.Vector{0, 99, 0}, Fitness: 1}
	withBad := resumeCfg(2)
	withBad.Resume = &corrupt
	if _, _, _, err := EvolveCtx(context.Background(), env, withBad); err == nil {
		t.Fatal("resume with invalid vector accepted")
	}
}

func TestEvolveCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := EvolveCtx(ctx, testEnv(t), resumeCfg(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
