package ga

import (
	"testing"

	"gippr/internal/ipv"
)

// The parallel-engine contract: worker count changes scheduling, never
// arithmetic. Every entry point must return bit-identical results at any
// Workers value. Run with -race to additionally prove the fan-outs are
// data-race-free.

func TestPerStreamBitIdenticalAcrossWorkers(t *testing.T) {
	serial := testEnv(t).SetWorkers(1)
	par := testEnv(t).SetWorkers(8)
	for _, v := range []ipv.Vector{ipv.LRU(16), ipv.LIP(16), ipv.PaperWIGIPPR} {
		a, b := serial.PerStream(v), par.PerStream(v)
		if len(a) != len(b) {
			t.Fatalf("length mismatch %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vector %v stream %d: serial %v != parallel %v", v, i, a[i], b[i])
			}
		}
		if serial.Fitness(v) != par.Fitness(v) {
			t.Fatalf("vector %v: fitness differs across worker counts", v)
		}
	}
}

func TestRandomSearchBitIdenticalAcrossWorkers(t *testing.T) {
	serial := RandomSearch(testEnv(t).SetWorkers(1), 24, 0xabc)
	par := RandomSearch(testEnv(t).SetWorkers(8), 24, 0xabc)
	for i := range serial {
		if serial[i].Fitness != par[i].Fitness || !serial[i].Vector.Equal(par[i].Vector) {
			t.Fatalf("sample %d: serial (%v, %v) != parallel (%v, %v)",
				i, serial[i].Vector, serial[i].Fitness, par[i].Vector, par[i].Fitness)
		}
	}
}

func TestEvolveBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Population = 8
	cfg.Generations = 3
	cfg.Seeds = []ipv.Vector{ipv.LRU(16), ipv.LIP(16)}

	bestS, fitS, histS := Evolve(testEnv(t).SetWorkers(1), cfg)
	bestP, fitP, histP := Evolve(testEnv(t).SetWorkers(8), cfg)
	if !bestS.Equal(bestP) || fitS != fitP {
		t.Fatalf("serial (%v, %v) != parallel (%v, %v)", bestS, fitS, bestP, fitP)
	}
	for i := range histS {
		if histS[i] != histP[i] {
			t.Fatalf("generation %d: history %v != %v", i, histS[i], histP[i])
		}
	}
}

func TestSelectComplementaryBitIdenticalAcrossWorkers(t *testing.T) {
	pool := []ipv.Vector{ipv.LRU(16), ipv.LIP(16), ipv.PaperWIGIPPR, ipv.PaperWI4DGIPPR[0]}
	a := SelectComplementary(testEnv(t).SetWorkers(1), pool, 2)
	b := SelectComplementary(testEnv(t).SetWorkers(8), pool, 2)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("choice %d: %v != %v", i, a[i], b[i])
		}
	}
}

func TestSubsetInheritsBaselinesAndWorkers(t *testing.T) {
	e := testEnv(t).SetWorkers(3)
	sub := e.Subset(func(w string) bool { return w == "thrash" })
	if sub.Workers != 3 {
		t.Fatalf("subset workers = %d", sub.Workers)
	}
	if len(sub.baselines()) != 1 {
		t.Fatalf("subset baselines = %d", len(sub.baselines()))
	}
	if sub.baselines()[0] != e.baselines()[0] {
		t.Fatal("subset did not inherit the parent's precomputed baseline")
	}
}
