// Package ga implements the paper's IPV search machinery (Section 4):
// uniformly random design-space sampling (Figure 1), the genetic algorithm
// that evolves insertion/promotion vectors (Section 4.2), hill-climbing
// refinement (Section 2.6), and greedy selection of complementary vector
// sets for 2- and 4-vector DGIPPR. Fitness is the paper's Section 4.3
// function: mean estimated speedup over LRU on LLC-filtered access streams
// under a linear CPI model.
package ga

import (
	"fmt"
	"sort"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/ipv"
	"gippr/internal/stats"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// Stream is one LLC-filtered access stream with its SimPoint-style weight.
type Stream struct {
	Workload string
	Weight   float64
	Records  []trace.Record
}

// Env is a fitness-evaluation environment: the LLC geometry, the streams,
// the CPI model, and the policy family being searched (GIPPR by default;
// the Section 2 proof of concept passes a GIPLR constructor instead).
type Env struct {
	Config cache.Config
	Model  cpu.LinearModel
	// WarmFrac is the fraction of each stream used to warm the cache
	// before misses are counted (the paper warms 500M of 1.5B
	// instructions).
	WarmFrac float64
	// NewPolicy builds the policy under search for a candidate vector.
	NewPolicy func(sets, ways int, v ipv.Vector) cache.Policy

	streams []Stream
	// baseline CPI per stream under true LRU, computed once.
	baseCPI []float64
}

// NewEnv precomputes the LRU baseline for each stream. newLRU builds the
// baseline policy (true LRU in the paper).
func NewEnv(cfg cache.Config, model cpu.LinearModel, warmFrac float64,
	streams []Stream,
	newLRU func(sets, ways int) cache.Policy,
	newPolicy func(sets, ways int, v ipv.Vector) cache.Policy) *Env {
	if warmFrac < 0 || warmFrac >= 1 {
		panic("ga: WarmFrac must be in [0,1)")
	}
	e := &Env{
		Config:    cfg,
		Model:     model,
		WarmFrac:  warmFrac,
		NewPolicy: newPolicy,
		streams:   streams,
		baseCPI:   make([]float64, len(streams)),
	}
	sets := cfg.Sets()
	for i, s := range streams {
		rs := cache.ReplayStream(s.Records, cfg, newLRU(sets, cfg.Ways), e.warm(len(s.Records)))
		e.baseCPI[i] = model.CPIFromReplay(rs)
	}
	return e
}

func (e *Env) warm(n int) int { return int(float64(n) * e.WarmFrac) }

// Streams returns the environment's streams (shared; do not mutate).
func (e *Env) Streams() []Stream { return e.streams }

// Subset returns a new Env restricted to streams whose workload passes
// keep, re-using the precomputed baselines. This implements the paper's
// workload-neutral (WNk) cross-validation: evolve on the complement of the
// held-out workloads.
func (e *Env) Subset(keep func(workload string) bool) *Env {
	sub := &Env{
		Config:    e.Config,
		Model:     e.Model,
		WarmFrac:  e.WarmFrac,
		NewPolicy: e.NewPolicy,
	}
	for i, s := range e.streams {
		if keep(s.Workload) {
			sub.streams = append(sub.streams, s)
			sub.baseCPI = append(sub.baseCPI, e.baseCPI[i])
		}
	}
	if len(sub.streams) == 0 {
		panic("ga: Subset kept no streams")
	}
	return sub
}

// PerStream returns each stream's estimated speedup over LRU for vector v.
func (e *Env) PerStream(v ipv.Vector) []float64 {
	sets := e.Config.Sets()
	out := make([]float64, len(e.streams))
	for i, s := range e.streams {
		pol := e.NewPolicy(sets, e.Config.Ways, v)
		rs := cache.ReplayStream(s.Records, e.Config, pol, e.warm(len(s.Records)))
		out[i] = e.baseCPI[i] / e.Model.CPIFromReplay(rs)
	}
	return out
}

// Fitness is the paper's fitness function: the weighted arithmetic-mean
// estimated speedup over LRU across all streams.
func (e *Env) Fitness(v ipv.Vector) float64 {
	per := e.PerStream(v)
	weights := make([]float64, len(e.streams))
	for i, s := range e.streams {
		weights[i] = s.Weight
	}
	return stats.WeightedMean(per, weights)
}

// Scored pairs a vector with its fitness.
type Scored struct {
	Vector  ipv.Vector
	Fitness float64
}

// RandomSearch evaluates n uniformly random IPVs (the paper's Figure 1
// exploration: 15,000 random 17-entry vectors) and returns them sorted by
// ascending fitness, ready to plot as the sorted speedup curve.
func RandomSearch(e *Env, n int, seed uint64) []Scored {
	rng := xrand.New(seed)
	k := e.Config.Ways
	out := make([]Scored, n)
	for i := range out {
		v := make(ipv.Vector, k+1)
		for j := range v {
			v[j] = rng.Intn(k)
		}
		out[i] = Scored{Vector: v, Fitness: e.Fitness(v)}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Fitness < out[b].Fitness })
	return out
}

// Config parameterizes Evolve. The defaults follow the paper's operators:
// one-point crossover and a 5% chance of mutating one randomly chosen
// element per offspring (Section 4.2), at laptop-scale population sizes.
type Config struct {
	Population  int
	Generations int
	// Elite individuals are copied unchanged into the next generation.
	Elite int
	// TournamentSize controls selection pressure.
	TournamentSize int
	// MutationProb is the per-offspring probability of one random-element
	// mutation (the paper uses 0.05).
	MutationProb float64
	Seed         uint64
	// Seeds are vectors injected into the initial population (e.g. LRU,
	// LIP, previously evolved vectors — the paper seeds its pgapack run
	// with earlier GA output).
	Seeds []ipv.Vector
	// OnGeneration, if non-nil, is called after each generation with the
	// generation index and the best individual so far.
	OnGeneration func(gen int, best Scored)
}

// DefaultConfig returns a small but effective configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Population:     24,
		Generations:    10,
		Elite:          2,
		TournamentSize: 3,
		MutationProb:   0.05,
		Seed:           seed,
	}
}

func (c Config) validate() error {
	if c.Population < 2 {
		return fmt.Errorf("ga: population %d too small", c.Population)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ga: need at least one generation")
	}
	if c.Elite < 0 || c.Elite >= c.Population {
		return fmt.Errorf("ga: elite %d out of range for population %d", c.Elite, c.Population)
	}
	if c.TournamentSize < 1 {
		return fmt.Errorf("ga: tournament size %d too small", c.TournamentSize)
	}
	return nil
}

// Evolve runs the genetic algorithm and returns the best vector found, its
// fitness, and the best-fitness history per generation.
func Evolve(e *Env, cfg Config) (ipv.Vector, float64, []float64) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	rng := xrand.New(cfg.Seed)
	k := e.Config.Ways

	randomVec := func() ipv.Vector {
		v := make(ipv.Vector, k+1)
		for j := range v {
			v[j] = rng.Intn(k)
		}
		return v
	}

	pop := make([]Scored, 0, cfg.Population)
	for _, s := range cfg.Seeds {
		if len(pop) == cfg.Population {
			break
		}
		if s.K() != k {
			panic("ga: seed vector associativity mismatch")
		}
		pop = append(pop, Scored{Vector: s.Clone()})
	}
	for len(pop) < cfg.Population {
		// Skip degenerate vectors that can never promote to MRU
		// (footnote 1): they waste evaluations.
		v := randomVec()
		for !v.ReachesMRU() {
			v = randomVec()
		}
		pop = append(pop, Scored{Vector: v})
	}
	for i := range pop {
		pop[i].Fitness = e.Fitness(pop[i].Vector)
	}
	sortDesc(pop)

	history := make([]float64, 0, cfg.Generations)
	tournament := func() ipv.Vector {
		best := rng.Intn(len(pop))
		for t := 1; t < cfg.TournamentSize; t++ {
			c := rng.Intn(len(pop))
			if pop[c].Fitness > pop[best].Fitness {
				best = c
			}
		}
		return pop[best].Vector
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]Scored, 0, cfg.Population)
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, pop[i])
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := crossover(a, b, rng)
			if rng.Bool(cfg.MutationProb) {
				child[rng.Intn(len(child))] = rng.Intn(k)
			}
			next = append(next, Scored{Vector: child, Fitness: e.Fitness(child)})
		}
		pop = next
		sortDesc(pop)
		history = append(history, pop[0].Fitness)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, pop[0])
		}
	}
	return pop[0].Vector, pop[0].Fitness, history
}

// crossover is the paper's one-point crossover: elements 0..c from a,
// c+1..k from b, with c chosen uniformly.
func crossover(a, b ipv.Vector, rng *xrand.RNG) ipv.Vector {
	child := a.Clone()
	c := rng.Intn(len(a))
	copy(child[c+1:], b[c+1:])
	return child
}

func sortDesc(pop []Scored) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].Fitness > pop[j].Fitness })
}

// HillClimb refines v by repeatedly trying every single-element change and
// keeping the best improvement, stopping after maxRounds rounds or at a
// local optimum (the Section 2.6 refinement). It returns the refined vector
// and its fitness.
func HillClimb(e *Env, v ipv.Vector, maxRounds int) (ipv.Vector, float64) {
	best := v.Clone()
	bestFit := e.Fitness(best)
	k := e.Config.Ways
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i := range best {
			orig := best[i]
			for val := 0; val < k; val++ {
				if val == orig {
					continue
				}
				best[i] = val
				if f := e.Fitness(best); f > bestFit {
					bestFit = f
					orig = val
					improved = true
				} else {
					best[i] = orig
				}
			}
			best[i] = orig
		}
		if !improved {
			break
		}
	}
	return best, bestFit
}

// SelectComplementary greedily picks setSize vectors from pool so that the
// oracle-best-per-stream mean speedup of the chosen set is maximized: the
// offline idealization of what set-dueling can exploit at run time. This is
// how the 2- and 4-vector DGIPPR sets are assembled from independently
// evolved vectors.
func SelectComplementary(e *Env, pool []ipv.Vector, setSize int) []ipv.Vector {
	if setSize <= 0 || len(pool) == 0 {
		panic("ga: SelectComplementary needs a pool and positive set size")
	}
	per := make([][]float64, len(pool))
	for i, v := range pool {
		per[i] = e.PerStream(v)
	}
	weights := make([]float64, len(e.streams))
	for i, s := range e.streams {
		weights[i] = s.Weight
	}
	chosen := []int{}
	bestOf := make([]float64, len(e.streams)) // oracle speedup of chosen set
	for len(chosen) < setSize && len(chosen) < len(pool) {
		bestIdx, bestScore := -1, -1.0
		for i := range pool {
			if contains(chosen, i) {
				continue
			}
			cand := make([]float64, len(bestOf))
			for s := range cand {
				cand[s] = per[i][s]
				if len(chosen) > 0 && bestOf[s] > cand[s] {
					cand[s] = bestOf[s]
				}
			}
			score := stats.WeightedMean(cand, weights)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		for s := range bestOf {
			if v := per[bestIdx][s]; len(chosen) == 0 || v > bestOf[s] {
				bestOf[s] = v
			}
		}
		chosen = append(chosen, bestIdx)
	}
	out := make([]ipv.Vector, len(chosen))
	for i, idx := range chosen {
		out[i] = pool[idx].Clone()
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
