// Package ga implements the paper's IPV search machinery (Section 4):
// uniformly random design-space sampling (Figure 1), the genetic algorithm
// that evolves insertion/promotion vectors (Section 4.2), hill-climbing
// refinement (Section 2.6), and greedy selection of complementary vector
// sets for 2- and 4-vector DGIPPR. Fitness is the paper's Section 4.3
// function: mean estimated speedup over LRU on LLC-filtered access streams
// under a linear CPI model.
package ga

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/ipv"
	"gippr/internal/parallel"
	"gippr/internal/stats"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// Stream is one LLC-filtered access stream with its SimPoint-style weight.
type Stream struct {
	Workload string
	Weight   float64
	Records  []trace.Record
}

// Env is a fitness-evaluation environment: the LLC geometry, the streams,
// the CPI model, and the policy family being searched (GIPPR by default;
// the Section 2 proof of concept passes a GIPLR constructor instead).
//
// Env is safe for concurrent use: the streams are immutable, the policy
// constructors build fresh unshared instances, and the lazily computed LRU
// baseline is guarded by a sync.Once. Every evaluation entry point (Fitness,
// PerStream, RandomSearch, Evolve, SelectComplementary) fans work out over
// Workers goroutines while drawing all random numbers serially, so results
// are bit-identical for every worker count.
type Env struct {
	Config cache.Config
	Model  cpu.LinearModel
	// WarmFrac is the fraction of each stream used to warm the cache
	// before misses are counted (the paper warms 500M of 1.5B
	// instructions).
	WarmFrac float64
	// NewPolicy builds the policy under search for a candidate vector.
	NewPolicy func(sets, ways int, v ipv.Vector) cache.Policy
	// Workers bounds the evaluation fan-out; values below 1 mean GOMAXPROCS.
	Workers int

	streams []Stream
	newLRU  func(sets, ways int) cache.Policy
	// sampleFactor scales sampled-set hit/miss counts back to full-cache
	// magnitudes when Config samples sets (Config.SampleShift > 0); it is
	// exactly 1 at full fidelity, where the unscaled CPI path is used so
	// results stay bit-identical to pre-sampling builds.
	sampleFactor float64
	// baseline CPI per stream under true LRU, computed once on first use so
	// the construction cost lands under the caller's chosen Workers.
	baseOnce sync.Once
	baseCPI  []float64
}

// NewEnv builds a fitness environment. newLRU builds the baseline policy
// (true LRU in the paper); the per-stream baseline CPIs are computed in
// parallel on first use.
func NewEnv(cfg cache.Config, model cpu.LinearModel, warmFrac float64,
	streams []Stream,
	newLRU func(sets, ways int) cache.Policy,
	newPolicy func(sets, ways int, v ipv.Vector) cache.Policy) *Env {
	if warmFrac < 0 || warmFrac >= 1 {
		panic("ga: WarmFrac must be in [0,1)")
	}
	factor := 1.0
	if cfg.SampleShift != 0 {
		factor = cfg.SampleFactor()
	}
	return &Env{
		Config:       cfg,
		Model:        model,
		WarmFrac:     warmFrac,
		NewPolicy:    newPolicy,
		Workers:      parallel.DefaultWorkers(),
		streams:      streams,
		newLRU:       newLRU,
		sampleFactor: factor,
	}
}

// cpi maps replay stats to an estimated CPI, scaling the sampled hit and
// miss counts back up when the environment's geometry samples sets. The
// full-fidelity path keeps the historical operation order so fitness values
// are bit-identical to pre-sampling builds.
func (e *Env) cpi(rs cache.ReplayStats) float64 {
	if e.sampleFactor != 1 {
		return e.Model.SampledCPI(rs, e.sampleFactor)
	}
	return e.Model.CPIFromReplay(rs)
}

// SetWorkers sets the evaluation fan-out width (values below 1 mean
// GOMAXPROCS) and returns the environment for chaining.
func (e *Env) SetWorkers(n int) *Env {
	e.Workers = parallel.Clamp(n)
	return e
}

// baselines returns the per-stream LRU baseline CPIs, computing them in
// parallel exactly once.
func (e *Env) baselines() []float64 {
	e.baseOnce.Do(func() {
		base := make([]float64, len(e.streams))
		sets := e.Config.Sets()
		parallel.For(e.Workers, len(e.streams), func(i int) {
			s := e.streams[i]
			rs := cache.ReplayStream(s.Records, e.Config, e.newLRU(sets, e.Config.Ways), e.warm(len(s.Records)))
			base[i] = e.cpi(rs)
		})
		e.baseCPI = base
	})
	return e.baseCPI
}

func (e *Env) warm(n int) int { return int(float64(n) * e.WarmFrac) }

// Streams returns the environment's streams (shared; do not mutate).
func (e *Env) Streams() []Stream { return e.streams }

// Subset returns a new Env restricted to streams whose workload passes
// keep, re-using the precomputed baselines. This implements the paper's
// workload-neutral (WNk) cross-validation: evolve on the complement of the
// held-out workloads.
func (e *Env) Subset(keep func(workload string) bool) *Env {
	base := e.baselines()
	sub := &Env{
		Config:       e.Config,
		Model:        e.Model,
		WarmFrac:     e.WarmFrac,
		NewPolicy:    e.NewPolicy,
		Workers:      e.Workers,
		newLRU:       e.newLRU,
		sampleFactor: e.sampleFactor,
	}
	var subBase []float64
	for i, s := range e.streams {
		if keep(s.Workload) {
			sub.streams = append(sub.streams, s)
			subBase = append(subBase, base[i])
		}
	}
	if len(sub.streams) == 0 {
		panic("ga: Subset kept no streams")
	}
	sub.baseCPI = subBase
	sub.baseOnce.Do(func() {}) // baselines inherited, never recomputed
	return sub
}

// PerStream returns each stream's estimated speedup over LRU for vector v.
// The streams are replayed in parallel on e.Workers goroutines; each writes
// only its own slot, so the result is independent of scheduling.
func (e *Env) PerStream(v ipv.Vector) []float64 {
	base := e.baselines()
	sets := e.Config.Sets()
	out := make([]float64, len(e.streams))
	parallel.For(e.Workers, len(e.streams), func(i int) {
		s := e.streams[i]
		pol := e.NewPolicy(sets, e.Config.Ways, v)
		rs := cache.ReplayStream(s.Records, e.Config, pol, e.warm(len(s.Records)))
		out[i] = base[i] / e.cpi(rs)
	})
	return out
}

// Fitness is the paper's fitness function: the weighted arithmetic-mean
// estimated speedup over LRU across all streams.
func (e *Env) Fitness(v ipv.Vector) float64 {
	per := e.PerStream(v)
	weights := make([]float64, len(e.streams))
	for i, s := range e.streams {
		weights[i] = s.Weight
	}
	return stats.WeightedMean(per, weights)
}

// Scored pairs a vector with its fitness. The JSON tags make Scored (and
// State, which embeds a population of them) checkpointable: float64 values
// survive a JSON round trip bit-identically, which the resume determinism
// guarantee depends on.
type Scored struct {
	Vector  ipv.Vector `json:"vector"`
	Fitness float64    `json:"fitness"`
}

// RandomSearch evaluates n uniformly random IPVs (the paper's Figure 1
// exploration: 15,000 random 17-entry vectors) and returns them sorted by
// ascending fitness, ready to plot as the sorted speedup curve. All vectors
// are drawn serially from the seeded generator first, then scored in
// parallel — fitness evaluation consumes no randomness, so the outcome is
// bit-identical to the serial engine at any worker count.
func RandomSearch(e *Env, n int, seed uint64) []Scored {
	out, _ := RandomSearchCtx(context.Background(), e, n, seed) // Background never cancels
	return out
}

// RandomSearchCtx is RandomSearch with cooperative cancellation: on
// cancellation, in-flight evaluations drain and it returns (nil, ctx.Err())
// — a partially scored sample has no meaningful sorted curve.
func RandomSearchCtx(ctx context.Context, e *Env, n int, seed uint64) ([]Scored, error) {
	return RandomSearchProgressCtx(ctx, e, n, seed, nil)
}

// RandomSearchProgressCtx is RandomSearchCtx with a per-sample progress
// callback, invoked from worker goroutines as each evaluation completes.
// onSample must be safe for concurrent use (an atomic gauge is; most
// callers pass runctx.Progress.Add via a closure). A nil callback makes it
// identical to RandomSearchCtx.
func RandomSearchProgressCtx(ctx context.Context, e *Env, n int, seed uint64, onSample func()) ([]Scored, error) {
	rng := xrand.New(seed)
	k := e.Config.Ways
	out := make([]Scored, n)
	for i := range out {
		v := make(ipv.Vector, k+1)
		for j := range v {
			v[j] = rng.Intn(k)
		}
		out[i] = Scored{Vector: v}
	}
	err := parallel.ForCtx(ctx, e.Workers, n, func(i int) {
		out[i].Fitness = e.Fitness(out[i].Vector)
		if onSample != nil {
			onSample()
		}
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Fitness < out[b].Fitness })
	return out, nil
}

// Config parameterizes Evolve. The defaults follow the paper's operators:
// one-point crossover and a 5% chance of mutating one randomly chosen
// element per offspring (Section 4.2), at laptop-scale population sizes.
type Config struct {
	Population  int
	Generations int
	// Elite individuals are copied unchanged into the next generation.
	Elite int
	// TournamentSize controls selection pressure.
	TournamentSize int
	// MutationProb is the per-offspring probability of one random-element
	// mutation (the paper uses 0.05).
	MutationProb float64
	Seed         uint64
	// Seeds are vectors injected into the initial population (e.g. LRU,
	// LIP, previously evolved vectors — the paper seeds its pgapack run
	// with earlier GA output).
	Seeds []ipv.Vector
	// OnGeneration, if non-nil, is called after each generation with the
	// generation index and the best individual so far.
	OnGeneration func(gen int, best Scored)
	// OnState, if non-nil, is called at every generation boundary (after
	// the initial population is evaluated, then after each completed
	// generation) with a self-contained resumable snapshot. Callers persist
	// it (see internal/checkpoint) to make long runs crash-safe.
	OnState func(st State)
	// Resume, if non-nil, restarts Evolve from a snapshot previously
	// handed to OnState instead of initializing a fresh population. The
	// resumed run draws the identical random sequence the uninterrupted
	// run would have, so its result is bit-identical.
	Resume *State
}

// State is a resumable snapshot of Evolve at a generation boundary: the
// scored population (sorted descending), the serialized RNG state as of
// that boundary, and the best-fitness history so far. It is pure data —
// JSON-serializable, no hidden pointers into the running GA.
type State struct {
	// Generation is the number of fully completed generations; the resumed
	// run continues with this generation index.
	Generation int `json:"generation"`
	// RNG is the xrand.RNG state after the last serial draw of the
	// completed generation (selection, crossover and mutation all draw
	// serially, so this single word captures the whole random trajectory).
	RNG        uint64    `json:"rng"`
	Population []Scored  `json:"population"`
	History    []float64 `json:"history"`
}

// snapshot deep-copies the live population into a State so later
// generations (which re-sort and replace slices) can never alias a
// checkpoint the caller is still holding.
func snapshot(gen int, rng *xrand.RNG, pop []Scored, history []float64) State {
	p := make([]Scored, len(pop))
	for i, s := range pop {
		p[i] = Scored{Vector: s.Vector.Clone(), Fitness: s.Fitness}
	}
	return State{
		Generation: gen,
		RNG:        rng.State(),
		Population: p,
		History:    append([]float64(nil), history...),
	}
}

// validate checks a snapshot against the configuration and associativity of
// the run trying to resume from it. Checkpoint files are external input, so
// every vector is re-validated rather than trusted.
func (st *State) validate(cfg Config, k int) error {
	if len(st.Population) != cfg.Population {
		return fmt.Errorf("ga: resume state has population %d, config wants %d",
			len(st.Population), cfg.Population)
	}
	if st.Generation < 0 || st.Generation > cfg.Generations {
		return fmt.Errorf("ga: resume state at generation %d, config runs %d",
			st.Generation, cfg.Generations)
	}
	if len(st.History) != st.Generation {
		return fmt.Errorf("ga: resume state history has %d entries for %d completed generations",
			len(st.History), st.Generation)
	}
	for i, s := range st.Population {
		if err := s.Vector.Validate(); err != nil {
			return fmt.Errorf("ga: resume state individual %d: %w", i, err)
		}
		if s.Vector.K() != k {
			return fmt.Errorf("ga: resume state individual %d is for %d ways, environment has %d",
				i, s.Vector.K(), k)
		}
	}
	return nil
}

// DefaultConfig returns a small but effective configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Population:     24,
		Generations:    10,
		Elite:          2,
		TournamentSize: 3,
		MutationProb:   0.05,
		Seed:           seed,
	}
}

func (c Config) validate() error {
	if c.Population < 2 {
		return fmt.Errorf("ga: population %d too small", c.Population)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ga: need at least one generation")
	}
	if c.Elite < 0 || c.Elite >= c.Population {
		return fmt.Errorf("ga: elite %d out of range for population %d", c.Elite, c.Population)
	}
	if c.TournamentSize < 1 {
		return fmt.Errorf("ga: tournament size %d too small", c.TournamentSize)
	}
	return nil
}

// Evolve runs the genetic algorithm and returns the best vector found, its
// fitness, and the best-fitness history per generation. It panics on an
// invalid configuration or resume state; for cooperative cancellation use
// EvolveCtx.
func Evolve(e *Env, cfg Config) (ipv.Vector, float64, []float64) {
	best, fit, history, err := EvolveCtx(context.Background(), e, cfg)
	if err != nil {
		// Background is never cancelled, so the only possible errors are
		// configuration or resume-state problems — programming errors under
		// this legacy signature.
		panic(err)
	}
	return best, fit, history
}

// EvolveCtx is Evolve with cooperative cancellation and checkpoint/resume.
//
// Cancellation is cell-granular: when ctx is cancelled, in-flight fitness
// evaluations drain, the partially evaluated generation is discarded —
// truncating the run, never reordering a completed generation — and
// EvolveCtx returns the best individual of the last completed generation
// along with ctx.Err(). The snapshot handed to cfg.OnState at that
// generation's boundary resumes the run (via cfg.Resume) so that it
// produces results bit-identical to an uninterrupted run at any worker
// count: selection, crossover and mutation randomness is drawn serially and
// its generator state is part of the snapshot.
func EvolveCtx(ctx context.Context, e *Env, cfg Config) (ipv.Vector, float64, []float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, 0, nil, err
	}
	rng := xrand.New(cfg.Seed)
	k := e.Config.Ways

	var pop []Scored
	history := make([]float64, 0, cfg.Generations)
	startGen := 0

	emit := func(completed int) {
		if cfg.OnState != nil {
			cfg.OnState(snapshot(completed, rng, pop, history))
		}
	}

	if cfg.Resume != nil {
		if err := cfg.Resume.validate(cfg, k); err != nil {
			return nil, 0, nil, err
		}
		// Work on copies: the caller may hold (or re-use) the snapshot.
		pop = make([]Scored, len(cfg.Resume.Population))
		for i, s := range cfg.Resume.Population {
			pop[i] = Scored{Vector: s.Vector.Clone(), Fitness: s.Fitness}
		}
		history = append(history, cfg.Resume.History...)
		startGen = cfg.Resume.Generation
		rng.SetState(cfg.Resume.RNG)
	} else {
		randomVec := func() ipv.Vector {
			v := make(ipv.Vector, k+1)
			for j := range v {
				v[j] = rng.Intn(k)
			}
			return v
		}
		pop = make([]Scored, 0, cfg.Population)
		for _, s := range cfg.Seeds {
			if len(pop) == cfg.Population {
				break
			}
			if s.K() != k {
				panic("ga: seed vector associativity mismatch")
			}
			pop = append(pop, Scored{Vector: s.Clone()})
		}
		for len(pop) < cfg.Population {
			// Skip degenerate vectors that can never promote to MRU
			// (footnote 1): they waste evaluations.
			v := randomVec()
			for !v.ReachesMRU() {
				v = randomVec()
			}
			pop = append(pop, Scored{Vector: v})
		}
		err := parallel.ForCtx(ctx, e.Workers, len(pop), func(i int) {
			pop[i].Fitness = e.Fitness(pop[i].Vector)
		})
		if err != nil {
			// Cancelled before the first checkpointable boundary: there is
			// no partial progress worth returning.
			return nil, 0, nil, err
		}
		sortDesc(pop)
		emit(0)
	}

	tournament := func() ipv.Vector {
		best := rng.Intn(len(pop))
		for t := 1; t < cfg.TournamentSize; t++ {
			c := rng.Intn(len(pop))
			if pop[c].Fitness > pop[best].Fitness {
				best = c
			}
		}
		return pop[best].Vector
	}

	for gen := startGen; gen < cfg.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return pop[0].Vector.Clone(), pop[0].Fitness, history, err
		}
		// Selection, crossover and mutation draw from the seeded generator
		// and depend only on the previous generation's fitnesses, so the
		// whole offspring cohort is produced serially first; the fitness
		// evaluations — the expensive part, and randomness-free — then run
		// in parallel. The generator's call sequence is exactly the serial
		// engine's, so evolution is bit-identical at any worker count.
		next := make([]Scored, 0, cfg.Population)
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, pop[i])
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := crossover(a, b, rng)
			if rng.Bool(cfg.MutationProb) {
				child[rng.Intn(len(child))] = rng.Intn(k)
			}
			next = append(next, Scored{Vector: child})
		}
		err := parallel.ForCtx(ctx, e.Workers, len(next)-cfg.Elite, func(i int) {
			s := &next[cfg.Elite+i]
			s.Fitness = e.Fitness(s.Vector)
		})
		if err != nil {
			// Drop the partially evaluated cohort; the last completed
			// generation (already checkpointed via OnState) stands.
			return pop[0].Vector.Clone(), pop[0].Fitness, history, err
		}
		pop = next
		sortDesc(pop)
		history = append(history, pop[0].Fitness)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, pop[0])
		}
		emit(gen + 1)
	}
	return pop[0].Vector, pop[0].Fitness, history, nil
}

// crossover is the paper's one-point crossover: elements 0..c from a,
// c+1..k from b, with c chosen uniformly.
func crossover(a, b ipv.Vector, rng *xrand.RNG) ipv.Vector {
	child := a.Clone()
	c := rng.Intn(len(a))
	copy(child[c+1:], b[c+1:])
	return child
}

func sortDesc(pop []Scored) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].Fitness > pop[j].Fitness })
}

// HillClimb refines v by repeatedly trying every single-element change and
// keeping the best improvement, stopping after maxRounds rounds or at a
// local optimum (the Section 2.6 refinement). It returns the refined vector
// and its fitness. The accept chain is greedy and order-dependent, so the
// candidate loop stays serial; parallelism comes from each Fitness call
// fanning its streams out over e.Workers.
func HillClimb(e *Env, v ipv.Vector, maxRounds int) (ipv.Vector, float64) {
	best, fit, _ := HillClimbCtx(context.Background(), e, v, maxRounds) // Background never cancels
	return best, fit
}

// HillClimbCtx is HillClimb with cooperative cancellation, checked before
// each candidate evaluation. On cancellation it returns the best vector
// accepted so far with ctx.Err(): hill climbing is an anytime algorithm, so
// a truncated climb is still a valid (just less refined) result.
func HillClimbCtx(ctx context.Context, e *Env, v ipv.Vector, maxRounds int) (ipv.Vector, float64, error) {
	best := v.Clone()
	bestFit := e.Fitness(best)
	k := e.Config.Ways
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i := range best {
			orig := best[i]
			for val := 0; val < k; val++ {
				if val == orig {
					continue
				}
				if err := ctx.Err(); err != nil {
					// best currently holds the last accepted state: the
					// trial assignment below has not happened yet.
					best[i] = orig
					return best, bestFit, err
				}
				best[i] = val
				if f := e.Fitness(best); f > bestFit {
					bestFit = f
					orig = val
					improved = true
				} else {
					best[i] = orig
				}
			}
			best[i] = orig
		}
		if !improved {
			break
		}
	}
	return best, bestFit, nil
}

// SelectComplementary greedily picks setSize vectors from pool so that the
// oracle-best-per-stream mean speedup of the chosen set is maximized: the
// offline idealization of what set-dueling can exploit at run time. This is
// how the 2- and 4-vector DGIPPR sets are assembled from independently
// evolved vectors.
func SelectComplementary(e *Env, pool []ipv.Vector, setSize int) []ipv.Vector {
	out, _ := SelectComplementaryCtx(context.Background(), e, pool, setSize) // Background never cancels
	return out
}

// SelectComplementaryCtx is SelectComplementary with cooperative
// cancellation of the per-vector evaluation fan-out; the greedy selection
// itself reads precomputed scores and is negligible. On cancellation it
// returns (nil, ctx.Err()).
func SelectComplementaryCtx(ctx context.Context, e *Env, pool []ipv.Vector, setSize int) ([]ipv.Vector, error) {
	if setSize <= 0 || len(pool) == 0 {
		panic("ga: SelectComplementary needs a pool and positive set size")
	}
	per := make([][]float64, len(pool))
	e.baselines() // settle the baseline before fanning out
	if err := parallel.ForCtx(ctx, e.Workers, len(pool), func(i int) { per[i] = e.PerStream(pool[i]) }); err != nil {
		return nil, err
	}
	weights := make([]float64, len(e.streams))
	for i, s := range e.streams {
		weights[i] = s.Weight
	}
	chosen := []int{}
	bestOf := make([]float64, len(e.streams)) // oracle speedup of chosen set
	for len(chosen) < setSize && len(chosen) < len(pool) {
		bestIdx, bestScore := -1, -1.0
		for i := range pool {
			if contains(chosen, i) {
				continue
			}
			cand := make([]float64, len(bestOf))
			for s := range cand {
				cand[s] = per[i][s]
				if len(chosen) > 0 && bestOf[s] > cand[s] {
					cand[s] = bestOf[s]
				}
			}
			score := stats.WeightedMean(cand, weights)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		for s := range bestOf {
			if v := per[bestIdx][s]; len(chosen) == 0 || v > bestOf[s] {
				bestOf[s] = v
			}
		}
		chosen = append(chosen, bestIdx)
	}
	out := make([]ipv.Vector, len(chosen))
	for i, idx := range chosen {
		out[i] = pool[idx].Clone()
	}
	return out, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
