// Package ga implements the paper's IPV search machinery (Section 4):
// uniformly random design-space sampling (Figure 1), the genetic algorithm
// that evolves insertion/promotion vectors (Section 4.2), hill-climbing
// refinement (Section 2.6), and greedy selection of complementary vector
// sets for 2- and 4-vector DGIPPR. Fitness is the paper's Section 4.3
// function: mean estimated speedup over LRU on LLC-filtered access streams
// under a linear CPI model.
package ga

import (
	"fmt"
	"sort"
	"sync"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/ipv"
	"gippr/internal/parallel"
	"gippr/internal/stats"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// Stream is one LLC-filtered access stream with its SimPoint-style weight.
type Stream struct {
	Workload string
	Weight   float64
	Records  []trace.Record
}

// Env is a fitness-evaluation environment: the LLC geometry, the streams,
// the CPI model, and the policy family being searched (GIPPR by default;
// the Section 2 proof of concept passes a GIPLR constructor instead).
//
// Env is safe for concurrent use: the streams are immutable, the policy
// constructors build fresh unshared instances, and the lazily computed LRU
// baseline is guarded by a sync.Once. Every evaluation entry point (Fitness,
// PerStream, RandomSearch, Evolve, SelectComplementary) fans work out over
// Workers goroutines while drawing all random numbers serially, so results
// are bit-identical for every worker count.
type Env struct {
	Config cache.Config
	Model  cpu.LinearModel
	// WarmFrac is the fraction of each stream used to warm the cache
	// before misses are counted (the paper warms 500M of 1.5B
	// instructions).
	WarmFrac float64
	// NewPolicy builds the policy under search for a candidate vector.
	NewPolicy func(sets, ways int, v ipv.Vector) cache.Policy
	// Workers bounds the evaluation fan-out; values below 1 mean GOMAXPROCS.
	Workers int

	streams []Stream
	newLRU  func(sets, ways int) cache.Policy
	// baseline CPI per stream under true LRU, computed once on first use so
	// the construction cost lands under the caller's chosen Workers.
	baseOnce sync.Once
	baseCPI  []float64
}

// NewEnv builds a fitness environment. newLRU builds the baseline policy
// (true LRU in the paper); the per-stream baseline CPIs are computed in
// parallel on first use.
func NewEnv(cfg cache.Config, model cpu.LinearModel, warmFrac float64,
	streams []Stream,
	newLRU func(sets, ways int) cache.Policy,
	newPolicy func(sets, ways int, v ipv.Vector) cache.Policy) *Env {
	if warmFrac < 0 || warmFrac >= 1 {
		panic("ga: WarmFrac must be in [0,1)")
	}
	return &Env{
		Config:    cfg,
		Model:     model,
		WarmFrac:  warmFrac,
		NewPolicy: newPolicy,
		Workers:   parallel.DefaultWorkers(),
		streams:   streams,
		newLRU:    newLRU,
	}
}

// SetWorkers sets the evaluation fan-out width (values below 1 mean
// GOMAXPROCS) and returns the environment for chaining.
func (e *Env) SetWorkers(n int) *Env {
	e.Workers = parallel.Clamp(n)
	return e
}

// baselines returns the per-stream LRU baseline CPIs, computing them in
// parallel exactly once.
func (e *Env) baselines() []float64 {
	e.baseOnce.Do(func() {
		base := make([]float64, len(e.streams))
		sets := e.Config.Sets()
		parallel.For(e.Workers, len(e.streams), func(i int) {
			s := e.streams[i]
			rs := cache.ReplayStream(s.Records, e.Config, e.newLRU(sets, e.Config.Ways), e.warm(len(s.Records)))
			base[i] = e.Model.CPIFromReplay(rs)
		})
		e.baseCPI = base
	})
	return e.baseCPI
}

func (e *Env) warm(n int) int { return int(float64(n) * e.WarmFrac) }

// Streams returns the environment's streams (shared; do not mutate).
func (e *Env) Streams() []Stream { return e.streams }

// Subset returns a new Env restricted to streams whose workload passes
// keep, re-using the precomputed baselines. This implements the paper's
// workload-neutral (WNk) cross-validation: evolve on the complement of the
// held-out workloads.
func (e *Env) Subset(keep func(workload string) bool) *Env {
	base := e.baselines()
	sub := &Env{
		Config:    e.Config,
		Model:     e.Model,
		WarmFrac:  e.WarmFrac,
		NewPolicy: e.NewPolicy,
		Workers:   e.Workers,
		newLRU:    e.newLRU,
	}
	var subBase []float64
	for i, s := range e.streams {
		if keep(s.Workload) {
			sub.streams = append(sub.streams, s)
			subBase = append(subBase, base[i])
		}
	}
	if len(sub.streams) == 0 {
		panic("ga: Subset kept no streams")
	}
	sub.baseCPI = subBase
	sub.baseOnce.Do(func() {}) // baselines inherited, never recomputed
	return sub
}

// PerStream returns each stream's estimated speedup over LRU for vector v.
// The streams are replayed in parallel on e.Workers goroutines; each writes
// only its own slot, so the result is independent of scheduling.
func (e *Env) PerStream(v ipv.Vector) []float64 {
	base := e.baselines()
	sets := e.Config.Sets()
	out := make([]float64, len(e.streams))
	parallel.For(e.Workers, len(e.streams), func(i int) {
		s := e.streams[i]
		pol := e.NewPolicy(sets, e.Config.Ways, v)
		rs := cache.ReplayStream(s.Records, e.Config, pol, e.warm(len(s.Records)))
		out[i] = base[i] / e.Model.CPIFromReplay(rs)
	})
	return out
}

// Fitness is the paper's fitness function: the weighted arithmetic-mean
// estimated speedup over LRU across all streams.
func (e *Env) Fitness(v ipv.Vector) float64 {
	per := e.PerStream(v)
	weights := make([]float64, len(e.streams))
	for i, s := range e.streams {
		weights[i] = s.Weight
	}
	return stats.WeightedMean(per, weights)
}

// Scored pairs a vector with its fitness.
type Scored struct {
	Vector  ipv.Vector
	Fitness float64
}

// RandomSearch evaluates n uniformly random IPVs (the paper's Figure 1
// exploration: 15,000 random 17-entry vectors) and returns them sorted by
// ascending fitness, ready to plot as the sorted speedup curve. All vectors
// are drawn serially from the seeded generator first, then scored in
// parallel — fitness evaluation consumes no randomness, so the outcome is
// bit-identical to the serial engine at any worker count.
func RandomSearch(e *Env, n int, seed uint64) []Scored {
	rng := xrand.New(seed)
	k := e.Config.Ways
	out := make([]Scored, n)
	for i := range out {
		v := make(ipv.Vector, k+1)
		for j := range v {
			v[j] = rng.Intn(k)
		}
		out[i] = Scored{Vector: v}
	}
	parallel.For(e.Workers, n, func(i int) { out[i].Fitness = e.Fitness(out[i].Vector) })
	sort.Slice(out, func(a, b int) bool { return out[a].Fitness < out[b].Fitness })
	return out
}

// Config parameterizes Evolve. The defaults follow the paper's operators:
// one-point crossover and a 5% chance of mutating one randomly chosen
// element per offspring (Section 4.2), at laptop-scale population sizes.
type Config struct {
	Population  int
	Generations int
	// Elite individuals are copied unchanged into the next generation.
	Elite int
	// TournamentSize controls selection pressure.
	TournamentSize int
	// MutationProb is the per-offspring probability of one random-element
	// mutation (the paper uses 0.05).
	MutationProb float64
	Seed         uint64
	// Seeds are vectors injected into the initial population (e.g. LRU,
	// LIP, previously evolved vectors — the paper seeds its pgapack run
	// with earlier GA output).
	Seeds []ipv.Vector
	// OnGeneration, if non-nil, is called after each generation with the
	// generation index and the best individual so far.
	OnGeneration func(gen int, best Scored)
}

// DefaultConfig returns a small but effective configuration.
func DefaultConfig(seed uint64) Config {
	return Config{
		Population:     24,
		Generations:    10,
		Elite:          2,
		TournamentSize: 3,
		MutationProb:   0.05,
		Seed:           seed,
	}
}

func (c Config) validate() error {
	if c.Population < 2 {
		return fmt.Errorf("ga: population %d too small", c.Population)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ga: need at least one generation")
	}
	if c.Elite < 0 || c.Elite >= c.Population {
		return fmt.Errorf("ga: elite %d out of range for population %d", c.Elite, c.Population)
	}
	if c.TournamentSize < 1 {
		return fmt.Errorf("ga: tournament size %d too small", c.TournamentSize)
	}
	return nil
}

// Evolve runs the genetic algorithm and returns the best vector found, its
// fitness, and the best-fitness history per generation.
func Evolve(e *Env, cfg Config) (ipv.Vector, float64, []float64) {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	rng := xrand.New(cfg.Seed)
	k := e.Config.Ways

	randomVec := func() ipv.Vector {
		v := make(ipv.Vector, k+1)
		for j := range v {
			v[j] = rng.Intn(k)
		}
		return v
	}

	pop := make([]Scored, 0, cfg.Population)
	for _, s := range cfg.Seeds {
		if len(pop) == cfg.Population {
			break
		}
		if s.K() != k {
			panic("ga: seed vector associativity mismatch")
		}
		pop = append(pop, Scored{Vector: s.Clone()})
	}
	for len(pop) < cfg.Population {
		// Skip degenerate vectors that can never promote to MRU
		// (footnote 1): they waste evaluations.
		v := randomVec()
		for !v.ReachesMRU() {
			v = randomVec()
		}
		pop = append(pop, Scored{Vector: v})
	}
	parallel.For(e.Workers, len(pop), func(i int) { pop[i].Fitness = e.Fitness(pop[i].Vector) })
	sortDesc(pop)

	history := make([]float64, 0, cfg.Generations)
	tournament := func() ipv.Vector {
		best := rng.Intn(len(pop))
		for t := 1; t < cfg.TournamentSize; t++ {
			c := rng.Intn(len(pop))
			if pop[c].Fitness > pop[best].Fitness {
				best = c
			}
		}
		return pop[best].Vector
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		// Selection, crossover and mutation draw from the seeded generator
		// and depend only on the previous generation's fitnesses, so the
		// whole offspring cohort is produced serially first; the fitness
		// evaluations — the expensive part, and randomness-free — then run
		// in parallel. The generator's call sequence is exactly the serial
		// engine's, so evolution is bit-identical at any worker count.
		next := make([]Scored, 0, cfg.Population)
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, pop[i])
		}
		for len(next) < cfg.Population {
			a, b := tournament(), tournament()
			child := crossover(a, b, rng)
			if rng.Bool(cfg.MutationProb) {
				child[rng.Intn(len(child))] = rng.Intn(k)
			}
			next = append(next, Scored{Vector: child})
		}
		parallel.For(e.Workers, len(next)-cfg.Elite, func(i int) {
			s := &next[cfg.Elite+i]
			s.Fitness = e.Fitness(s.Vector)
		})
		pop = next
		sortDesc(pop)
		history = append(history, pop[0].Fitness)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, pop[0])
		}
	}
	return pop[0].Vector, pop[0].Fitness, history
}

// crossover is the paper's one-point crossover: elements 0..c from a,
// c+1..k from b, with c chosen uniformly.
func crossover(a, b ipv.Vector, rng *xrand.RNG) ipv.Vector {
	child := a.Clone()
	c := rng.Intn(len(a))
	copy(child[c+1:], b[c+1:])
	return child
}

func sortDesc(pop []Scored) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].Fitness > pop[j].Fitness })
}

// HillClimb refines v by repeatedly trying every single-element change and
// keeping the best improvement, stopping after maxRounds rounds or at a
// local optimum (the Section 2.6 refinement). It returns the refined vector
// and its fitness. The accept chain is greedy and order-dependent, so the
// candidate loop stays serial; parallelism comes from each Fitness call
// fanning its streams out over e.Workers.
func HillClimb(e *Env, v ipv.Vector, maxRounds int) (ipv.Vector, float64) {
	best := v.Clone()
	bestFit := e.Fitness(best)
	k := e.Config.Ways
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i := range best {
			orig := best[i]
			for val := 0; val < k; val++ {
				if val == orig {
					continue
				}
				best[i] = val
				if f := e.Fitness(best); f > bestFit {
					bestFit = f
					orig = val
					improved = true
				} else {
					best[i] = orig
				}
			}
			best[i] = orig
		}
		if !improved {
			break
		}
	}
	return best, bestFit
}

// SelectComplementary greedily picks setSize vectors from pool so that the
// oracle-best-per-stream mean speedup of the chosen set is maximized: the
// offline idealization of what set-dueling can exploit at run time. This is
// how the 2- and 4-vector DGIPPR sets are assembled from independently
// evolved vectors.
func SelectComplementary(e *Env, pool []ipv.Vector, setSize int) []ipv.Vector {
	if setSize <= 0 || len(pool) == 0 {
		panic("ga: SelectComplementary needs a pool and positive set size")
	}
	per := make([][]float64, len(pool))
	e.baselines() // settle the baseline before fanning out
	parallel.For(e.Workers, len(pool), func(i int) { per[i] = e.PerStream(pool[i]) })
	weights := make([]float64, len(e.streams))
	for i, s := range e.streams {
		weights[i] = s.Weight
	}
	chosen := []int{}
	bestOf := make([]float64, len(e.streams)) // oracle speedup of chosen set
	for len(chosen) < setSize && len(chosen) < len(pool) {
		bestIdx, bestScore := -1, -1.0
		for i := range pool {
			if contains(chosen, i) {
				continue
			}
			cand := make([]float64, len(bestOf))
			for s := range cand {
				cand[s] = per[i][s]
				if len(chosen) > 0 && bestOf[s] > cand[s] {
					cand[s] = bestOf[s]
				}
			}
			score := stats.WeightedMean(cand, weights)
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		for s := range bestOf {
			if v := per[bestIdx][s]; len(chosen) == 0 || v > bestOf[s] {
				bestOf[s] = v
			}
		}
		chosen = append(chosen, bestIdx)
	}
	out := make([]ipv.Vector, len(chosen))
	for i, idx := range chosen {
		out[i] = pool[idx].Clone()
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
