package ga

import (
	"testing"

	"gippr/internal/ipv"
)

func TestAnnealImprovesOnBadStart(t *testing.T) {
	e := testEnv(t)
	start := ipv.LRU(16) // mediocre on the thrash-heavy mix
	cfg := DefaultAnnealConfig(3)
	cfg.Steps = 60
	best, fit := Anneal(e, start, cfg)
	if err := best.Validate(); err != nil {
		t.Fatal(err)
	}
	if fit < e.Fitness(start) {
		t.Fatalf("annealing returned fitness %v below its start %v", fit, e.Fitness(start))
	}
}

func TestAnnealDoesNotMutateStart(t *testing.T) {
	e := testEnv(t)
	start := ipv.LIP(16)
	orig := start.Clone()
	cfg := DefaultAnnealConfig(5)
	cfg.Steps = 10
	Anneal(e, start, cfg)
	if !start.Equal(orig) {
		t.Fatal("start vector mutated")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	e := testEnv(t)
	cfg := DefaultAnnealConfig(9)
	cfg.Steps = 20
	a, fa := Anneal(e, ipv.LRU(16), cfg)
	b, fb := Anneal(e, ipv.LRU(16), cfg)
	if !a.Equal(b) || fa != fb {
		t.Fatal("annealing not reproducible")
	}
}

func TestAnnealConfigValidation(t *testing.T) {
	e := testEnv(t)
	bad := []AnnealConfig{
		{Steps: 0, StartTemp: 1, EndTemp: 0.1},
		{Steps: 10, StartTemp: 0, EndTemp: 0.1},
		{Steps: 10, StartTemp: 0.1, EndTemp: 0.5}, // end > start
		{Steps: 10, StartTemp: 0.1, EndTemp: 0},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d accepted", i)
				}
			}()
			Anneal(e, ipv.LRU(16), c)
		}()
	}
}

func TestAnnealReturnsBestVisited(t *testing.T) {
	// The returned fitness must match re-evaluating the returned vector
	// (the best-seen bookkeeping is consistent).
	e := testEnv(t)
	cfg := DefaultAnnealConfig(13)
	cfg.Steps = 25
	best, fit := Anneal(e, ipv.LIP(16), cfg)
	if got := e.Fitness(best); got != fit {
		t.Fatalf("returned fitness %v but re-evaluation gives %v", fit, got)
	}
}
