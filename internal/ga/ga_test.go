package ga

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

func gaConfig() cache.Config {
	return cache.Config{Name: "ga", SizeBytes: 64 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 30}
}

func blocksToRecords(blocks []uint64) []trace.Record {
	recs := make([]trace.Record, len(blocks))
	for i, b := range blocks {
		recs[i] = trace.Record{Gap: 4, Addr: b * 64}
	}
	return recs
}

// thrashStream: cyclic loop at 1.5x capacity -> favours LRU-side insertion.
func thrashStream(n int) []trace.Record {
	cap := 64 * 16
	blocks := make([]uint64, n)
	for i := range blocks {
		blocks[i] = uint64(i % (cap * 3 / 2))
	}
	return blocksToRecords(blocks)
}

// friendlyStream: quick-reuse scan -> favours MRU-side insertion.
func friendlyStream(n int) []trace.Record {
	var blocks []uint64
	next := uint64(1 << 20)
	for len(blocks) < n {
		blocks = append(blocks, next)
		if next > (1<<20)+256 {
			blocks = append(blocks, next-256)
		}
		next++
	}
	return blocksToRecords(blocks[:n])
}

func testEnv(t *testing.T) *Env {
	t.Helper()
	cfg := gaConfig()
	streams := []Stream{
		{Workload: "thrash", Weight: 1, Records: thrashStream(30000)},
		{Workload: "friendly", Weight: 1, Records: friendlyStream(30000)},
	}
	return NewEnv(cfg, cpu.DefaultLinearModel(), 1.0/3, streams,
		func(sets, ways int) cache.Policy { return policy.NewTrueLRU(sets, ways) },
		func(sets, ways int, v ipv.Vector) cache.Policy { return policy.NewGIPPR(sets, ways, v) },
	)
}

func TestFitnessLRUVectorNearOne(t *testing.T) {
	e := testEnv(t)
	// GIPPR with the all-zero vector is PLRU, which tracks LRU closely.
	f := e.Fitness(ipv.LRU(16))
	if f < 0.9 || f > 1.1 {
		t.Fatalf("PLRU-equivalent fitness = %v, want near 1", f)
	}
}

func TestFitnessLIPBeatsLRUOnThisMix(t *testing.T) {
	e := testEnv(t)
	lip := e.Fitness(ipv.LIP(16))
	lru := e.Fitness(ipv.LRU(16))
	if lip <= lru {
		t.Fatalf("LIP fitness %v not above LRU %v on a thrash-heavy mix", lip, lru)
	}
}

func TestPerStreamShape(t *testing.T) {
	e := testEnv(t)
	per := e.PerStream(ipv.LIP(16))
	if len(per) != 2 {
		t.Fatalf("PerStream returned %d values", len(per))
	}
	// LIP should win on the thrash stream and lose (or tie) on the
	// friendly one.
	if per[0] <= 1.0 {
		t.Fatalf("LIP speedup on thrash = %v", per[0])
	}
	if per[1] > 1.05 {
		t.Fatalf("LIP speedup on friendly quick-reuse = %v, expected <= ~1", per[1])
	}
}

func TestSubset(t *testing.T) {
	e := testEnv(t)
	sub := e.Subset(func(w string) bool { return w == "thrash" })
	if len(sub.Streams()) != 1 || sub.Streams()[0].Workload != "thrash" {
		t.Fatalf("subset wrong: %+v", sub.Streams())
	}
	// Fitness on the thrash-only env must rank LIP higher than the mixed
	// env does.
	if sub.Fitness(ipv.LIP(16)) <= e.Fitness(ipv.LIP(16)) {
		t.Fatal("thrash-only fitness should exceed mixed fitness for LIP")
	}
}

func TestSubsetPanicsOnEmpty(t *testing.T) {
	e := testEnv(t)
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	e.Subset(func(string) bool { return false })
}

func TestRandomSearchSortedAndSized(t *testing.T) {
	e := testEnv(t)
	res := RandomSearch(e, 20, 7)
	if len(res) != 20 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Fitness < res[i-1].Fitness {
			t.Fatal("results not sorted ascending")
		}
	}
	for _, s := range res {
		if err := s.Vector.Validate(); err != nil {
			t.Fatalf("random vector invalid: %v", err)
		}
	}
}

func TestRandomSearchDeterministic(t *testing.T) {
	e := testEnv(t)
	a := RandomSearch(e, 5, 42)
	b := RandomSearch(e, 5, 42)
	for i := range a {
		if !a[i].Vector.Equal(b[i].Vector) || a[i].Fitness != b[i].Fitness {
			t.Fatal("random search not reproducible")
		}
	}
}

func TestEvolveImprovesOverSeeds(t *testing.T) {
	e := testEnv(t)
	cfg := Config{
		Population: 10, Generations: 4, Elite: 2, TournamentSize: 3,
		MutationProb: 0.05, Seed: 11,
		Seeds: []ipv.Vector{ipv.LRU(16)},
	}
	best, fit, hist := Evolve(e, cfg)
	if err := best.Validate(); err != nil {
		t.Fatalf("evolved vector invalid: %v", err)
	}
	if len(hist) != 4 {
		t.Fatalf("history length %d", len(hist))
	}
	// Elitism makes best fitness monotonically non-decreasing.
	for i := 1; i < len(hist); i++ {
		if hist[i] < hist[i-1]-1e-12 {
			t.Fatalf("best fitness regressed: %v", hist)
		}
	}
	if fit < e.Fitness(ipv.LRU(16)) {
		t.Fatalf("GA final fitness %v below its LRU seed", fit)
	}
}

func TestEvolveCallsOnGeneration(t *testing.T) {
	e := testEnv(t)
	cfg := DefaultConfig(3)
	cfg.Population = 6
	cfg.Generations = 2
	calls := 0
	cfg.OnGeneration = func(gen int, best Scored) { calls++ }
	Evolve(e, cfg)
	if calls != 2 {
		t.Fatalf("OnGeneration called %d times", calls)
	}
}

func TestEvolveValidatesConfig(t *testing.T) {
	e := testEnv(t)
	bad := []Config{
		{Population: 1, Generations: 1, TournamentSize: 1},
		{Population: 4, Generations: 0, TournamentSize: 1},
		{Population: 4, Generations: 1, Elite: 4, TournamentSize: 1},
		{Population: 4, Generations: 1, TournamentSize: 0},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d accepted", i)
				}
			}()
			Evolve(e, c)
		}()
	}
}

func TestCrossoverProducesValidChildren(t *testing.T) {
	rng := xrand.New(5)
	a, b := ipv.PaperWIGIPPR, ipv.LIP(16)
	for i := 0; i < 200; i++ {
		c := crossover(a, b, rng)
		if err := c.Validate(); err != nil {
			t.Fatalf("crossover child invalid: %v", err)
		}
		// Every element comes from one of the parents at its position.
		for j := range c {
			if c[j] != a[j] && c[j] != b[j] {
				t.Fatalf("element %d from neither parent", j)
			}
		}
	}
}

func TestHillClimbNeverWorsens(t *testing.T) {
	e := testEnv(t)
	start := ipv.LRU(16)
	startFit := e.Fitness(start)
	refined, fit := HillClimb(e, start, 1)
	if fit < startFit {
		t.Fatalf("hill climb worsened: %v -> %v", startFit, fit)
	}
	if err := refined.Validate(); err != nil {
		t.Fatal(err)
	}
	// The input must not be mutated.
	if !start.Equal(ipv.LRU(16)) {
		t.Fatal("HillClimb mutated its input")
	}
}

func TestSelectComplementaryPrefersCoverage(t *testing.T) {
	e := testEnv(t)
	// Pool: LRU-like (wins friendly), LIP (wins thrash), and a mild
	// variant. A 2-set must include both specialists.
	pool := []ipv.Vector{ipv.LRU(16), ipv.LIP(16), ipv.MidClimb(16)}
	set := SelectComplementary(e, pool, 2)
	if len(set) != 2 {
		t.Fatalf("selected %d", len(set))
	}
	hasLRUish := false
	hasLIPish := false
	for _, v := range set {
		if v.Insertion() == 0 {
			hasLRUish = true
		}
		if v.Insertion() == 15 {
			hasLIPish = true
		}
	}
	if !hasLRUish || !hasLIPish {
		t.Fatalf("complementary set lacks a specialist: %v", set)
	}
}

func TestSelectComplementaryClampsToPool(t *testing.T) {
	e := testEnv(t)
	set := SelectComplementary(e, []ipv.Vector{ipv.LRU(16)}, 4)
	if len(set) != 1 {
		t.Fatalf("selected %d from pool of 1", len(set))
	}
}

func TestNewEnvPanicsOnBadWarm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	NewEnv(gaConfig(), cpu.DefaultLinearModel(), 1.5, nil,
		func(s, w int) cache.Policy { return policy.NewTrueLRU(s, w) },
		func(s, w int, v ipv.Vector) cache.Policy { return policy.NewGIPPR(s, w, v) })
}
