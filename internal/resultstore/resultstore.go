// Package resultstore is a disk-backed, content-addressed store for served
// result manifests: the persistence layer that lets gippr-serve survive
// restarts and serve repeat traffic from storage instead of recompute
// (cold grid -> warm store -> the daemon becomes a read-mostly cache with
// simulation as the miss path).
//
// Keys are result fingerprints — the canonical configuration string a
// manifest is fully determined by — hashed to a filename with SHA-256, so
// equivalent requests collide to one entry and nothing else can. Each entry
// is written with the internal/checkpoint durability recipe: a versioned
// JSON envelope around the payload, temp file + fsync + rename + directory
// fsync, a SHA-256 payload checksum verified on every read, and the full
// fingerprint stored in the envelope so a (cosmically unlikely) key-hash
// collision or a hand-misplaced file is refused rather than served.
//
// The contract the serving layer relies on: Get either returns exactly the
// bytes Put stored, or reports a miss — never bad data. Any entry that
// fails its checksum, does not parse, carries the wrong envelope version,
// or records a different fingerprint is deleted on sight and counted as
// corrupt; the caller recomputes and the next Put heals the entry. Leftover
// temp files from a crash mid-write are swept at Open (the previous
// complete entry, if any, was never touched).
//
// The store is size-bounded: when the sum of entry sizes exceeds the
// configured cap, entries are evicted oldest-modification-time first until
// the store fits. A cap of 0 means unbounded.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gippr/internal/checkpoint"
)

// entrySuffix is the on-disk extension of a committed entry; temp files are
// named "<key>.json.tmp-*" by the checkpoint writer and are never read.
const entrySuffix = ".json"

// Key derives the store filename for a fingerprint: the hex SHA-256 of the
// fingerprint string plus the entry suffix. Exposed so tests and tooling
// can find an entry on disk without re-implementing the derivation.
func Key(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:]) + entrySuffix
}

// entry is the in-memory index record for one on-disk file, used for size
// accounting and eviction ordering.
type entry struct {
	size  int64
	mtime time.Time
}

// Stats is a point-in-time snapshot of the store's counters and footprint.
type Stats struct {
	Hits    uint64 // Get served a verified entry
	Misses  uint64 // Get found nothing usable (includes corrupt entries)
	Corrupt uint64 // Get deleted an entry that failed verification
	Entries int    // committed entries currently on disk
	Bytes   int64  // their total size
}

// Store is a content-addressed fingerprint -> payload store rooted at one
// directory. It is safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64

	mu    sync.Mutex
	index map[string]entry // filename -> accounting record
	bytes int64
}

// Open opens (creating if needed) the store rooted at dir, sweeps temp
// files left by a crash mid-write, indexes the committed entries, and
// applies the size cap. maxBytes <= 0 means unbounded.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, index: make(map[string]entry)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: read %s: %w", dir, err)
	}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.Contains(name, ".tmp-") {
			// A crash between CreateTemp and the rename left this behind; the
			// committed entry (if any) is intact, so the temp is pure garbage.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.index[name] = entry{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
	}
	s.mu.Lock()
	s.gcLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get looks up fingerprint and, on a verified hit, unmarshals the stored
// payload into out and returns true. Every other outcome is a miss: a
// missing entry, or an entry that fails its checksum / envelope version /
// fingerprint check — the latter are deleted and counted as corrupt, so
// the store never serves bad data and the next Put repairs the slot.
func (s *Store) Get(fingerprint string, out any) bool {
	name := Key(fingerprint)
	err := checkpoint.Load(filepath.Join(s.dir, name), fingerprint, out)
	switch {
	case err == nil:
		s.hits.Add(1)
		return true
	case errors.Is(err, fs.ErrNotExist):
		s.misses.Add(1)
		return false
	default:
		// Torn, tampered, version-skewed, or fingerprint-mismatched: delete
		// and treat as a miss. The recompute path is always correct.
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.removeEntry(name)
		return false
	}
}

// Put stores payload under fingerprint, atomically replacing any previous
// entry, then applies the size cap (evicting oldest-mtime entries first).
func (s *Store) Put(fingerprint string, payload any) error {
	name := Key(fingerprint)
	path := filepath.Join(s.dir, name)
	if err := checkpoint.Save(path, fingerprint, payload); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("resultstore: stat after save: %w", err)
	}
	s.mu.Lock()
	if old, ok := s.index[name]; ok {
		s.bytes -= old.size
	}
	s.index[name] = entry{size: info.Size(), mtime: info.ModTime()}
	s.bytes += info.Size()
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// removeEntry deletes one on-disk entry and its accounting record.
func (s *Store) removeEntry(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(name)
}

func (s *Store) removeLocked(name string) {
	os.Remove(filepath.Join(s.dir, name))
	if e, ok := s.index[name]; ok {
		s.bytes -= e.size
		delete(s.index, name)
	}
}

// gcLocked enforces the size cap: while the store exceeds maxBytes, evict
// the entry with the oldest modification time (ties broken by filename so
// eviction order is deterministic). Call with mu held.
func (s *Store) gcLocked() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	names := make([]string, 0, len(s.index))
	for name := range s.index {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool {
		ea, eb := s.index[names[a]], s.index[names[b]]
		if !ea.mtime.Equal(eb.mtime) {
			return ea.mtime.Before(eb.mtime)
		}
		return names[a] < names[b]
	})
	for _, name := range names {
		if s.bytes <= s.maxBytes {
			return
		}
		s.removeLocked(name)
	}
}

// Stats snapshots the store's counters and current footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.index), s.bytes
	s.mu.Unlock()
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Entries: entries,
		Bytes:   bytes,
	}
}
