package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type payload struct {
	Name  string    `json:"name"`
	Cells []float64 `json:"cells"`
}

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	in := payload{Name: "a", Cells: []float64{1.5, 2.25, 3.125}}
	const fp = "gippr-serve|v2|records=4000|policies=lru"
	if err := s.Put(fp, in); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var out payload
	if !s.Get(fp, &out) {
		t.Fatal("Get after Put: miss, want hit")
	}
	if out.Name != in.Name || len(out.Cells) != len(in.Cells) || out.Cells[2] != in.Cells[2] {
		t.Errorf("round trip mismatch: got %+v, want %+v", out, in)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Corrupt != 0 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats after hit = %+v", st)
	}
	// An unknown fingerprint is a plain miss, not corruption.
	if s.Get("some-other-fingerprint", &out) {
		t.Error("Get of unknown fingerprint: hit, want miss")
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats after miss = %+v", st)
	}
}

// TestReopenSurvivesRestart is the point of the store: entries written by
// one Store are served, bit-identical, by a fresh Store over the same dir.
func TestReopenSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	in := payload{Name: "persisted", Cells: []float64{0.1, 0.2}}
	if err := s1.Put("fp-restart", in); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	var out payload
	if !s2.Get("fp-restart", &out) {
		t.Fatal("entry did not survive reopen")
	}
	if out.Name != "persisted" || out.Cells[1] != 0.2 {
		t.Errorf("reopened payload = %+v", out)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("reopened stats = %+v", st)
	}
}

// TestCrashMidWriteSweep: a temp file left by a crash between write and
// rename is deleted at Open and never indexed or served.
func TestCrashMidWriteSweep(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, Key("fp-crash")+".tmp-123456")
	if err := os.WriteFile(tmp, []byte(`{"half":"written`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, 0)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp file survived Open (stat err %v)", err)
	}
	var out payload
	if s.Get("fp-crash", &out) {
		t.Error("Get served a crash-torn temp file")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats counted the temp file: %+v", st)
	}
}

// TestChecksumCorruption: a bit-flipped payload fails its sha256 check; the
// entry is deleted, counted corrupt, and reported as a miss.
func TestChecksumCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	const fp = "fp-corrupt"
	if err := s.Put(fp, payload{Name: "clean", Cells: []float64{42}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Key(fp))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(raw), `"clean"`, `"dirty"`, 1)
	if mangled == string(raw) {
		t.Fatal("test bug: corruption did not change the file")
	}
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(fp, &out) {
		t.Fatal("Get served a checksum-failing entry")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Errorf("stats after corrupt read = %+v, want 1 corrupt + 1 miss", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry was not deleted")
	}
	// The slot heals: a fresh Put serves again.
	if err := s.Put(fp, payload{Name: "healed"}); err != nil {
		t.Fatal(err)
	}
	if !s.Get(fp, &out) || out.Name != "healed" {
		t.Errorf("healed slot: hit=%v out=%+v", s.Get(fp, &out), out)
	}
}

// TestVersionSkew: an entry written under a different envelope version is
// refused, deleted, and treated as a miss (a future format change must
// degrade to recompute, not to garbage).
func TestVersionSkew(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	const fp = "fp-skew"
	env, _ := json.Marshal(map[string]any{
		"version":     99,
		"fingerprint": fp,
		"sha256":      "0000",
		"payload":     map[string]string{"name": "future"},
	})
	path := filepath.Join(dir, Key(fp))
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get(fp, &out) {
		t.Fatal("Get served a version-skewed entry")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("stats after version skew = %+v, want 1 corrupt", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("version-skewed entry was not deleted")
	}
}

// TestFingerprintMismatch: a file sitting at some key's path but recording
// a different fingerprint (misplaced by hand, or a key-hash collision) is
// refused rather than served.
func TestFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if err := s.Put("fp-real", payload{Name: "real"}); err != nil {
		t.Fatal(err)
	}
	// Copy the valid entry to a different key's path.
	raw, err := os.ReadFile(filepath.Join(dir, Key("fp-real")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, Key("fp-other")), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Get("fp-other", &out) {
		t.Fatal("Get served an entry recorded under a different fingerprint")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("stats = %+v, want 1 corrupt", st)
	}
}

// TestGCEvictionOrder pins the eviction policy: over the cap, the oldest-
// mtime entries go first. Mtimes are forced with Chtimes and the store
// reopened, so the order is deterministic regardless of filesystem clock
// granularity.
func TestGCEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	fps := []string{"fp-oldest", "fp-middle", "fp-newest"}
	var perEntry int64
	for i, fp := range fps {
		if err := s.Put(fp, payload{Name: fp, Cells: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(filepath.Join(dir, Key(fp)))
		if err != nil {
			t.Fatal(err)
		}
		perEntry = info.Size()
		mtime := time.Now().Add(time.Duration(i-len(fps)) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, Key(fp)), mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with room for two entries: Open's GC must evict exactly the
	// oldest.
	s2 := mustOpen(t, dir, 2*perEntry+perEntry/2)
	var out payload
	if s2.Get("fp-oldest", &out) {
		t.Error("oldest entry survived GC")
	}
	for _, fp := range fps[1:] {
		if !s2.Get(fp, &out) {
			t.Errorf("entry %s was evicted, want oldest-first order", fp)
		}
	}
	if st := s2.Stats(); st.Entries != 2 {
		t.Errorf("entries after GC = %d, want 2", st.Entries)
	}
}

// TestGCOnPut: the cap is enforced on the write path too, keeping the
// store's footprint bounded as entries accumulate.
func TestGCOnPut(t *testing.T) {
	dir := t.TempDir()
	probe := mustOpen(t, dir, 0)
	if err := probe.Put("fp-probe", payload{Name: "probe"}); err != nil {
		t.Fatal(err)
	}
	size := probe.Stats().Bytes
	os.Remove(filepath.Join(dir, Key("fp-probe")))

	s := mustOpen(t, dir, 3*size+size/2)
	for i := 0; i < 10; i++ {
		fp := strings.Repeat("x", i+1) // distinct fingerprints, same payload size
		if err := s.Put(fp, payload{Name: "probe"}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 3*size+size/2 {
		t.Errorf("store bytes %d exceed cap %d", st.Bytes, 3*size+size/2)
	}
	if st.Entries >= 10 {
		t.Errorf("no eviction happened: %d entries", st.Entries)
	}
}
