package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"gippr/internal/experiments"
	"gippr/internal/explain"
	"gippr/internal/runctx"
)

// StatusOf maps the service's error vocabulary to HTTP statuses: the typed
// input sentinels (bad geometry/shift, unknown policy or workload, bad
// vector) are the client's fault (400), a missing job is 404, a result
// requested before completion is 409, a full queue is 429, draining is 503,
// and anything else is a 500.
func StatusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrPanic):
		// Checked before ErrNotDone: a panicked job's result carries both
		// sentinels, and a panic is a server fault, not a client conflict.
		return http.StatusInternalServerError
	case errors.Is(err, ErrNotDone):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case runctx.UsageError(err):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes v as JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to report to
}

// writeError writes an error response; backpressure statuses carry a
// Retry-After hint so well-behaved clients wait instead of hammering.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := StatusOf(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		secs := int(s.cfg.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Handler returns the daemon's HTTP surface: the /v1 job API, /metrics,
// /healthz, and the runctx debug suite (/debug/vars with the live progress
// gauges, /debug/pprof/).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	runctx.AttachDebug(mux, s.prog)
	return mux
}

// decodeJobRequest parses a submission body with unknown fields rejected
// (a typo must not silently no-op). Shared by the HTTP handler and the
// submission fuzz target, so the fuzzer exercises exactly the production
// decode path.
func decodeJobRequest(r io.Reader) (JobRequest, error) {
	var req JobRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// Both %w verbs matter: ErrBadRequest drives the 400 mapping, and
		// the original error keeps *http.MaxBytesError reachable for the
		// handler's 413 branch.
		return JobRequest{}, fmt.Errorf("%w: bad request body: %w", ErrBadRequest, err)
	}
	return req, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.submitHTTP(w, r, nil)
}

// handleExplain is the explain-job front door: the same queue, body cap,
// and decode path as /v1/jobs, but the submission must carry an explain
// spec — posting a grid or sweep body here is a 400, so the endpoint's
// responses are always explanation-shaped.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.submitHTTP(w, r, func(req JobRequest) error {
		if req.Explain == nil {
			return fmt.Errorf("%w: /v1/explain requires an explain spec naming policy_a and policy_b", ErrBadRequest)
		}
		return nil
	})
}

// submitHTTP is the shared submission body behind /v1/jobs and
// /v1/explain; check, when non-nil, gates the decoded request before it
// enters the queue.
func (s *Server) submitHTTP(w http.ResponseWriter, r *http.Request, check func(JobRequest) error) {
	// The body cap turns a multi-gigabyte submission into a 413 after at
	// most MaxBodyBytes read, instead of an OOM; MaxBytesReader also closes
	// the connection so the client stops sending.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := decodeJobRequest(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		s.writeError(w, err)
		return
	}
	if check != nil {
		if err := check(req); err != nil {
			s.writeError(w, err)
			return
		}
	}
	job, err := s.Submit(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	res, err := s.Result(job)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleStream serves NDJSON: one GridCell object per line as each cell
// settles — or, for explain jobs, one explain.Explanation per workload as
// it settles — then a single trailer line {"state": "..."} once the job
// reaches a terminal state (neither shape carries a "state" key, so the
// lines are unambiguous). A client that connects after completion gets
// every line followed by the trailer immediately.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	i := 0
	for {
		var n int
		var ch <-chan struct{}
		var state State
		if job.explain {
			var expls []*explain.Explanation
			expls, ch, state = job.snapshotExplsFrom(i)
			for _, e := range expls {
				if err := enc.Encode(e); err != nil {
					return // client went away
				}
			}
			n = len(expls)
		} else {
			var cells []experiments.GridCell
			cells, ch, state = job.snapshotFrom(i)
			for _, c := range cells {
				if err := enc.Encode(c); err != nil {
					return // client went away
				}
			}
			n = len(cells)
		}
		i += n
		if flusher != nil && n > 0 {
			flusher.Flush()
		}
		if state.Terminal() {
			enc.Encode(map[string]State{"state": state}) //nolint:errcheck // final line, best effort
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
