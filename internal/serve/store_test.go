package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gippr/internal/experiments"
	"gippr/internal/resultstore"
)

func getResult(t *testing.T, ts *httptest.Server, id string) Result {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, want 200", resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return res
}

// TestStoreWarmRestart is the acceptance criterion for the persistent
// store: a daemon computes a result, "restarts" (a fresh Server over a
// fresh store handle on the same directory), and a repeat submission is
// served from disk — zero grid runs, bit-identical Result — while a
// corrupted entry degrades to recompute, never to bad data.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	st1, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Store: st1})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	req := JobRequest{Workloads: []string{"mcf_like"}, Policies: []string{"lru", "plru"}}
	job1, _ := postJob(t, ts1, req)
	waitState(t, ts1, job1.ID, StateDone)
	res1 := getResult(t, ts1, job1.ID)
	if got := st1.Stats(); got.Entries != 1 || got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("after first run store stats = %+v, want 1 entry from 1 miss", got)
	}

	// A same-process resubmission is already a store hit (the Lab memo
	// would also make it cheap, but the transition must go through the
	// store so the counters prove the read-through path).
	job1b, _ := postJob(t, ts1, req)
	waitState(t, ts1, job1b.ID, StateDone)
	if got := st1.Stats(); got.Hits != 1 {
		t.Fatalf("same-process repeat: store hits = %d, want 1", got.Hits)
	}

	// "Restart": drain the first daemon, open a second one over the same
	// directory with the grid stubbed to count invocations.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain first server: %v", err)
	}
	st2, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Store: st2})
	var gridRuns atomic.Int64
	real2 := s2.runGrid
	s2.runGrid = func(ctx context.Context, lab *experiments.Lab, job *Job) error {
		gridRuns.Add(1)
		return real2(ctx, lab, job)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	job2, _ := postJob(t, ts2, req)
	waitState(t, ts2, job2.ID, StateDone)
	res2 := getResult(t, ts2, job2.ID)
	if n := gridRuns.Load(); n != 0 {
		t.Errorf("warm restart ran the grid %d times, want 0 (result must come from the store)", n)
	}

	// Bit-identical modulo the per-request random job id, which is the one
	// field that names the request rather than the content.
	norm1, norm2 := res1, res2
	norm1.ID, norm2.ID = "", ""
	if !reflect.DeepEqual(norm1, norm2) {
		t.Errorf("restarted result differs from original:\n first  %+v\n second %+v", norm1, norm2)
	}
	snap := s2.Snapshot()
	if snap.StoreHits != 1 || snap.StoreEntries != 1 || snap.StoreBytes <= 0 {
		t.Errorf("metrics after warm hit = hits %d entries %d bytes %d, want 1/1/>0",
			snap.StoreHits, snap.StoreEntries, snap.StoreBytes)
	}

	// A store-hit job streams like a computed one: late-connect NDJSON
	// replay yields every cell plus the done trailer.
	sresp, err := http.Get(ts2.URL + "/v1/jobs/" + job2.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		lines++
	}
	if lines != 3 { // 2 cells + trailer
		t.Errorf("store-hit stream has %d lines, want 3", lines)
	}

	// Corrupt the entry on disk: the next identical submission must fall
	// back to recompute (one grid run), reproduce the same cells, and heal
	// the store entry.
	job2j, err := s2.Get(job2.ID)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, resultstore.Key(s2.fingerprint(job2j)))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(raw), `"mpki"`, `"mpkX"`, 1)
	if mangled == string(raw) {
		t.Fatal("test bug: corruption did not change the entry")
	}
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	job3, _ := postJob(t, ts2, req)
	waitState(t, ts2, job3.ID, StateDone)
	res3 := getResult(t, ts2, job3.ID)
	if n := gridRuns.Load(); n != 1 {
		t.Errorf("corrupt entry: grid ran %d times, want exactly 1 recompute", n)
	}
	if !reflect.DeepEqual(res3.Cells, res1.Cells) {
		t.Errorf("recomputed cells differ from original")
	}
	snap = s2.Snapshot()
	if snap.StoreCorrupt != 1 {
		t.Errorf("store_corrupt = %d, want 1", snap.StoreCorrupt)
	}
	if snap.StoreEntries != 1 {
		t.Errorf("store_entries = %d, want 1 (recompute must re-persist)", snap.StoreEntries)
	}
}

// TestFingerprintCanonicalization pins the two persistence-key fixes:
// equivalent IPV spellings collide to one fingerprint, and the cache
// geometry is part of the key so different LLCs can never share an entry.
func TestFingerprintCanonicalization(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	base := JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru"}}

	reqA, reqB := base, base
	reqA.IPV = "0,0,1,0,3,0,1,2,1,0,5,1,0,0,1,11,13"
	reqB.IPV = "[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]"
	jobA, err := s.resolve(reqA)
	if err != nil {
		t.Fatal(err)
	}
	jobB, err := s.resolve(reqB)
	if err != nil {
		t.Fatal(err)
	}
	fpA, fpB := s.fingerprint(jobA), s.fingerprint(jobB)
	if fpA != fpB {
		t.Errorf("equivalent IPV spellings produce different fingerprints:\n %s\n %s", fpA, fpB)
	}
	if !strings.Contains(fpA, "ipv=[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]") {
		t.Errorf("fingerprint does not carry the canonical IPV: %s", fpA)
	}

	job, err := s.resolve(base)
	if err != nil {
		t.Fatal(err)
	}
	fp1 := s.fingerprint(job)
	for _, field := range []string{"cache=", "size=", "ways=", "block=", "sets=", "records=", "sample="} {
		if !strings.Contains(fp1, field) {
			t.Errorf("fingerprint missing %q: %s", field, fp1)
		}
	}
	// Same request against a lab with a different geometry must key
	// differently (halving the ways doubles the sets: both axes move).
	s.base.Cfg.Ways /= 2
	fp2 := s.fingerprint(job)
	if fp1 == fp2 {
		t.Errorf("fingerprint ignores cache geometry: %s", fp1)
	}
}
