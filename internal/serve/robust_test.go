package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gippr/internal/experiments"
	"gippr/internal/parallel"
	"gippr/internal/resultstore"
	"gippr/internal/workload"
)

// runnerFunc adapts a function to GridRunner for test stubs.
type runnerFunc func(ctx context.Context, local *experiments.Lab, plan GridPlan, emit func(experiments.GridCell)) error

func (f runnerFunc) RunGrid(ctx context.Context, local *experiments.Lab, plan GridPlan, emit func(experiments.GridCell)) error {
	return f(ctx, local, plan, emit)
}

// TestPanickingJobFailsNotTheDaemon is the panic-boundary regression test:
// a grid body that panics must fail exactly that job — panic value and
// stack in the job error, 500 from the result endpoint, counted in
// /metrics — while the daemon keeps serving.
func TestPanickingJobFailsNotTheDaemon(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.SetRunner(runnerFunc(func(context.Context, *experiments.Lab, GridPlan, func(experiments.GridCell)) error {
		panic("kaboom: nil policy state")
	}))

	req := JobRequest{Workloads: []string{"mcf_like"}, Policies: []string{"lru"}}
	st, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	failed := waitState(t, ts, st.ID, StateFailed)
	if !strings.Contains(failed.Error, "kaboom: nil policy state") {
		t.Fatalf("job error lost the panic value: %q", failed.Error)
	}
	if !strings.Contains(failed.Error, "goroutine stack:") {
		t.Fatalf("job error carries no stack: %q", failed.Error)
	}

	// The result endpoint must report a server fault, not a client one.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("result of panicked job: status %d, want 500", rresp.StatusCode)
	}

	if snap := s.Snapshot(); snap.JobsPanicked != 1 || snap.JobsFailed != 1 {
		t.Fatalf("panicked/failed = %d/%d, want 1/1", snap.JobsPanicked, snap.JobsFailed)
	}

	// The daemon survived: with the stub removed, the next job completes.
	s.SetRunner(nil)
	st2, _ := postJob(t, ts, req)
	waitState(t, ts, st2.ID, StateDone)
}

// TestPanicPreservesWorkerStack covers the parallel.Panic convention: when
// the panic crossed the Lab's fan-out, the job error must carry the worker
// goroutine's original stack, not the rethrow site's.
func TestPanicPreservesWorkerStack(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.SetRunner(runnerFunc(func(context.Context, *experiments.Lab, GridPlan, func(experiments.GridCell)) error {
		panic(&parallel.Panic{Value: "index out of range", Stack: []byte("goroutine 42 [running]:\nworker.frame()")})
	}))

	st, _ := postJob(t, ts, JobRequest{Workloads: []string{"mcf_like"}, Policies: []string{"lru"}})
	failed := waitState(t, ts, st.ID, StateFailed)
	if !strings.Contains(failed.Error, "index out of range") {
		t.Fatalf("job error lost the panic value: %q", failed.Error)
	}
	if !strings.Contains(failed.Error, "worker goroutine stack:") || !strings.Contains(failed.Error, "worker.frame()") {
		t.Fatalf("job error lost the worker stack: %q", failed.Error)
	}
}

// TestDrainRacesInflightPersist drives the SIGTERM contract against the
// result store's write-behind: a drain issued while a job is mid-run must
// wait for both the job and its persist, leaving the store with exactly
// one complete, verified entry and no temp droppings — a daemon restarted
// onto the directory serves the result from disk.
func TestDrainRacesInflightPersist(t *testing.T) {
	dir := t.TempDir()
	st1, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Scale: testScale, Workers: 1, QueueDepth: 2, Store: st1})
	defer s1.Close()
	ts := httptest.NewServer(s1.Handler())
	defer ts.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	s1.SetRunner(runnerFunc(func(ctx context.Context, local *experiments.Lab, plan GridPlan, emit func(experiments.GridCell)) error {
		close(started)
		<-release
		// From here the job is the real thing: compute through the local
		// Lab so the persisted entry is a genuine manifest.
		var wls []workload.Workload
		wls = append(wls, plan.Workloads...)
		_, err := local.Grid(ctx, plan.Specs, wls, emit)
		return err
	}))

	req := JobRequest{Workloads: []string{"mcf_like"}, Policies: []string{"lru", "plru"}}
	st, _ := postJob(t, ts, req)
	<-started

	// Job is mid-run: start the drain, and hold the job until the server
	// is provably draining (new submissions refused), so the drain/persist
	// race is real in every run, not a scheduling accident.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s1.Drain(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, resp := postJob(t, ts, req); resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started refusing submissions during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The drained job finished and persisted.
	done := waitState(t, ts, st.ID, StateDone)
	want := getResult(t, ts, st.ID)
	if len(want.Cells) != 2 || done.CellsDone != 2 {
		t.Fatalf("drained job delivered %d cells (status %d), want 2", len(want.Cells), done.CellsDone)
	}
	if got := st1.Stats(); got.Entries != 1 {
		t.Fatalf("store entries after drain = %d, want 1", got.Entries)
	}
	assertNoTempFiles(t, dir)

	// Restart onto the directory: the entry must verify and serve the
	// bit-identical result with zero grid work.
	st2, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Store: st2})
	s2.SetRunner(runnerFunc(func(context.Context, *experiments.Lab, GridPlan, func(experiments.GridCell)) error {
		t.Error("restarted server ran the grid; the drained persist should have fed it")
		return nil
	}))
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	st2nd, _ := postJob(t, ts2, req)
	waitState(t, ts2, st2nd.ID, StateDone)
	res2 := getResult(t, ts2, st2nd.ID)
	if stats := st2.Stats(); stats.Hits != 1 || stats.Corrupt != 0 {
		t.Fatalf("restart store stats = %+v, want 1 hit, 0 corrupt", stats)
	}
	res2.ID, want.ID = "", ""
	if len(res2.Cells) != len(want.Cells) || res2.Fingerprint != want.Fingerprint {
		t.Fatalf("restart served a different manifest: %+v vs %+v", res2, want)
	}
	for i := range res2.Cells {
		if res2.Cells[i] != want.Cells[i] {
			t.Fatalf("cell %d differs across restart: %+v vs %+v", i, res2.Cells[i], want.Cells[i])
		}
	}

	// Now the kill-mid-write shape: a process that died during a drain's
	// persist leaves a temp file behind. A reopen must sweep it and still
	// serve (or cleanly recompute) — never serve a torn entry.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-druid42"), []byte(`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := st3.Stats(); got.Entries != 1 {
		t.Fatalf("reopen over stale temp file: entries = %d, want 1", got.Entries)
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("store left temp file %s behind", e.Name())
		}
	}
}
