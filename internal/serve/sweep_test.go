package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"gippr/internal/experiments"
	"gippr/internal/stackdist"
)

// TestSweepSubmissionValidation pins the 400 surface of sweep jobs: every
// impossible geometry range — including tree-PLRU ways beyond a PseudoLRU
// set's capacity, the shape that used to panic mid-replay — and every
// field that cannot compose with the one-pass engine must be rejected at
// submission, before any stream is built.
func TestSweepSubmissionValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sweep := func(minSets, maxSets, maxWays int, plru ...stackdist.Geometry) *SweepRequest {
		return &SweepRequest{MinSets: minSets, MaxSets: maxSets, MaxWays: maxWays, PLRU: plru}
	}
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"sets not power of two", JobRequest{Workloads: []string{"mcf_like"}, Sweep: sweep(3, 4096, 4)}},
		{"min above max", JobRequest{Workloads: []string{"mcf_like"}, Sweep: sweep(4096, 1024, 4)}},
		{"zero ways", JobRequest{Workloads: []string{"mcf_like"}, Sweep: sweep(1024, 4096, 0)}},
		{"plru ways not power of two", JobRequest{Workloads: []string{"mcf_like"},
			Sweep: sweep(1024, 4096, 4, stackdist.Geometry{Sets: 4096, Ways: 3})}},
		{"plru ways beyond tree capacity", JobRequest{Workloads: []string{"mcf_like"},
			Sweep: sweep(1024, 4096, 4, stackdist.Geometry{Sets: 4096, Ways: 128})}},
		{"sweep with policies", JobRequest{Workloads: []string{"mcf_like"},
			Policies: []string{"lru"}, Sweep: sweep(1024, 4096, 4)}},
		{"sweep with ipv", JobRequest{Workloads: []string{"mcf_like"},
			IPV: "0,0,1,0,3,0,1,2,0,4,0,1,2,3,0,5,0", Sweep: sweep(1024, 4096, 4)}},
		{"sweep with sample", JobRequest{Workloads: []string{"mcf_like"},
			Sample: 2, Sweep: sweep(1024, 4096, 4)}},
		{"sweep with exact", JobRequest{Workloads: []string{"mcf_like"},
			Exact: true, Sweep: sweep(1024, 4096, 4)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, resp := postJob(t, ts, tc.req)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("submit: status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestServedSweepBitIdentical is the sweep acceptance criterion: a served
// sweep job's manifest must be bit-identical to what the Lab's one-pass
// engine computes directly, and the lattice point at the daemon's own
// geometry must be bit-identical to the classic grid engine's LRU cell for
// the same workload (IPC aside — lattice cells carry no timing model).
func TestServedSweepBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, LabWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := s.Lab().Cfg
	req := JobRequest{
		Workloads: []string{"mcf_like", "libquantum_like"},
		Sweep: &SweepRequest{
			MinSets: cfg.Sets() / 2,
			MaxSets: cfg.Sets(),
			MaxWays: cfg.Ways,
			PLRU:    []stackdist.Geometry{{Sets: cfg.Sets(), Ways: cfg.Ways}},
		},
	}
	st, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	spec := experiments.LatticeSpec{
		MinSets: req.Sweep.MinSets, MaxSets: req.Sweep.MaxSets,
		MaxWays: req.Sweep.MaxWays, PLRU: req.Sweep.PLRU,
	}
	wantTotal := 2 * spec.Points()
	if st.CellsTotal != wantTotal {
		t.Fatalf("CellsTotal = %d, want %d", st.CellsTotal, wantTotal)
	}
	if st.Sweep == nil || st.Sweep.MaxWays != cfg.Ways {
		t.Fatalf("status sweep section = %+v, want the submitted lattice", st.Sweep)
	}

	done := waitState(t, ts, st.ID, StateDone)
	rresp, err := http.Get(ts.URL + done.ResultURL)
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer rresp.Body.Close()
	var res Result
	if err := json.NewDecoder(rresp.Body).Decode(&res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.Sweep == nil {
		t.Fatal("result manifest missing sweep section")
	}
	if len(res.Cells) != wantTotal {
		t.Fatalf("result has %d cells, want %d", len(res.Cells), wantTotal)
	}

	// The CLI side: a fresh Lab at the same scale running the same lattice.
	job, err := s.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.NewLab(testScale).SweepGrid(context.Background(), spec, job.wls, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Cells[i] != want[i] {
			t.Errorf("cell %d: served %+v, direct one-pass %+v", i, res.Cells[i], want[i])
		}
	}

	// The engine bridge: the served lattice point at the daemon's own
	// geometry equals the grid engine's LRU cell, bit for bit.
	lruLabel := fmt.Sprintf("lru@%dx%d", cfg.Sets(), cfg.Ways)
	var lat *experiments.GridCell
	for i := range res.Cells {
		if res.Cells[i].Workload == "mcf_like" && res.Cells[i].Policy == lruLabel {
			lat = &res.Cells[i]
		}
	}
	if lat == nil {
		t.Fatalf("no served cell labeled %s", lruLabel)
	}
	sp, err := experiments.SpecFromRegistry("lru")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := experiments.NewLab(testScale).Grid(context.Background(), []experiments.Spec{sp}, job.wls[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	g := grid[0]
	if lat.MPKI != g.MPKI || lat.HitPct != g.HitPct || lat.Misses != g.Misses || lat.Accesses != g.Accesses {
		t.Errorf("%s: served lattice cell %+v != grid engine cell %+v", lruLabel, *lat, g)
	}
}
