package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"gippr/internal/experiments"
	"gippr/internal/explain"
	"gippr/internal/stackdist"
	"gippr/internal/workload"
)

// State is a job's lifecycle stage. Transitions are strictly forward:
// queued -> running -> one of done/failed/cancelled, or queued -> rejected
// when a drain empties the queue before a worker picks the job up.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StateRejected  State = "rejected"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateRejected:
		return true
	}
	return false
}

// JobRequest is the POST /v1/jobs body: a {workloads x policies x sampling}
// grid spec. The daemon's scale (records per phase, warm-up fraction) is
// server configuration, not per-job — that is what lets jobs share one
// memoized Lab.
type JobRequest struct {
	// Workloads lists suite workload names; empty or ["all"] means the full
	// 29-workload suite.
	Workloads []string `json:"workloads,omitempty"`
	// Policies lists policy-registry names; empty means the gippr-sim
	// default set.
	Policies []string `json:"policies,omitempty"`
	// IPV, when set, adds a GIPPR policy driven by this vector (the same
	// syntax as gippr-sim's -ipv).
	IPV string `json:"ipv,omitempty"`
	// Sample is the set-sampling shift (0 = full fidelity). Negative or
	// geometry-exceeding shifts are rejected at submission.
	Sample int `json:"sample,omitempty"`
	// TimeoutSec caps the job's wall-clock run time. 0 uses the server
	// default; values above the server maximum are clamped to it.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Exact disables the default-policy fallback: an empty Policies list
	// then means "no registry policies" (the IPV spec alone, when set)
	// instead of the gippr-sim default set. The cluster coordinator uses
	// this to dispatch sub-jobs that carry exactly the cells a peer owns.
	Exact bool `json:"exact,omitempty"`
	// Sweep switches the job to the one-pass all-geometry engine: instead
	// of a {workloads x policies} grid, the job scores the full LRU lattice
	// (plus the listed tree-PLRU geometries) in one stream walk per
	// workload. Sweep jobs take no policies, IPV, or sampling — geometry
	// and policy shape are the sweep spec itself.
	Sweep *SweepRequest `json:"sweep,omitempty"`
	// Explain switches the job to the policy-diff engine: instead of grid
	// cells, the job produces one explain.Explanation per workload for the
	// named policy pair. Explain jobs take no policies, IPV, exact flag, or
	// sampling — the pair is the whole policy surface, and the exact
	// decomposition identity requires full fidelity.
	Explain *ExplainRequest `json:"explain,omitempty"`
}

// ExplainRequest names the policy pair of an explain job: the report
// attributes PolicyB's miss delta relative to PolicyA. Both are registry
// names, resolved with the same lookup as grid policies.
type ExplainRequest struct {
	PolicyA string `json:"policy_a"`
	PolicyB string `json:"policy_b"`
}

// SweepRequest is the one-pass sweep spec carried by a job submission: the
// LRU lattice bounds (power-of-two set counts in [min_sets, max_sets]
// crossed with associativities 1..max_ways) and the tree-PLRU geometries to
// co-simulate. Invalid shapes — including ways beyond a PseudoLRU set's
// capacity — are rejected at submission with HTTP 400, never mid-replay.
type SweepRequest struct {
	MinSets int                  `json:"min_sets"`
	MaxSets int                  `json:"max_sets"`
	MaxWays int                  `json:"max_ways"`
	PLRU    []stackdist.Geometry `json:"plru,omitempty"`
}

// defaultPolicies mirrors gippr-sim's -policies default.
var defaultPolicies = []string{"lru", "plru", "drrip", "pdp", "gippr", "4-dgippr"}

// Job is one submitted grid evaluation. All mutable fields are guarded by
// mu; broadcast to watchers (streaming handlers, pollers in tests) happens
// by closing and replacing the updated channel.
type Job struct {
	ID  string
	Req JobRequest

	// Resolved at submission (immutable afterwards).
	specs    []experiments.Spec
	wls      []workload.Workload
	shift    uint
	timeout  time.Duration
	ipvCanon string                   // canonical form of Req.IPV (ipv.Parse -> String), "" if unset
	sweep    *experiments.LatticeSpec // non-nil switches the job to the one-pass engine
	explain  bool                     // true switches the job to the policy-diff engine (specs = [A, B])

	mu       sync.Mutex
	state    State
	err      error
	cells    []experiments.GridCell
	expls    []*explain.Explanation
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc
	updated  chan struct{}
}

// newID returns a 16-hex-char random job identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// broadcast wakes every watcher; call with mu held.
func (j *Job) broadcast() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// appendCell records one settled grid cell and wakes watchers.
func (j *Job) appendCell(c experiments.GridCell) {
	j.mu.Lock()
	j.cells = append(j.cells, c)
	j.broadcast()
	j.mu.Unlock()
}

// appendExplanation records one settled per-workload explanation and wakes
// watchers — the explain-job counterpart of appendCell.
func (j *Job) appendExplanation(e *explain.Explanation) {
	j.mu.Lock()
	j.expls = append(j.expls, e)
	j.broadcast()
	j.mu.Unlock()
}

// setRunning atomically transitions queued -> running and installs the
// job's cancel function (DELETE /v1/jobs/{id} calls it). It refuses
// terminal states — a job cancelled while queued must stay cancelled, not
// be resurrected by the worker that later dequeues it — and reports
// whether the transition happened; on false the caller must not run the
// job.
func (j *Job) setRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.broadcast()
	return true
}

// finish transitions to a terminal state exactly once and reports whether
// this call performed the transition — the caller's metrics must count a
// state change only when it actually happened, not on every attempt.
func (j *Job) finish(state State, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.err = err
	j.finished = time.Now()
	j.broadcast()
	return true
}

// Cancel requests cooperative cancellation of a running job; a queued job
// cancels immediately. Cancelling a terminal job is a no-op. The decision
// is made in one critical section with the state transitions above, so a
// DELETE racing the worker's pickup resolves to exactly one of two
// serializations: the cancel lands first and setRunning refuses, or the
// pickup lands first and the job's context is cancelled.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if j.state == StateRunning {
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel() // the run loop observes ctx and finishes as cancelled
		}
		return
	}
	// Still queued: terminal immediately, under the same lock the worker's
	// setRunning will take — no resurrection window.
	j.state = StateCancelled
	j.err = context.Canceled
	j.finished = time.Now()
	j.broadcast()
	j.mu.Unlock()
}

// snapshotFrom returns the cells appended at or after index i, the channel
// that will be closed on the next update, and the current state — the
// streaming handler's wait primitive.
func (j *Job) snapshotFrom(i int) ([]experiments.GridCell, <-chan struct{}, State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []experiments.GridCell
	if i < len(j.cells) {
		out = append(out, j.cells[i:]...)
	}
	return out, j.updated, j.state
}

// snapshotExplsFrom is snapshotFrom for explain jobs: the explanations
// appended at or after index i plus the wait channel and state.
func (j *Job) snapshotExplsFrom(i int) ([]*explain.Explanation, <-chan struct{}, State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []*explain.Explanation
	if i < len(j.expls) {
		out = append(out, j.expls[i:]...)
	}
	return out, j.updated, j.state
}

// cellLabels returns the per-workload cell labels in the deterministic
// manifest order: spec labels for grid jobs, lattice point labels for
// sweep jobs.
func (j *Job) cellLabels() []string {
	if j.sweep != nil {
		return j.sweep.Labels()
	}
	out := make([]string, len(j.specs))
	for i, s := range j.specs {
		out[i] = s.Label
	}
	return out
}

// cellsTotal returns the number of cells (or, for an explain job,
// per-workload explanations) the job will produce.
func (j *Job) cellsTotal() int {
	if j.sweep != nil {
		return len(j.wls) * j.sweep.Points()
	}
	if j.explain {
		return len(j.wls)
	}
	return len(j.wls) * len(j.specs)
}

// JobStatus is the GET /v1/jobs/{id} JSON view.
type JobStatus struct {
	ID         string                   `json:"id"`
	State      State                    `json:"state"`
	Created    time.Time                `json:"created"`
	Started    *time.Time               `json:"started,omitempty"`
	Finished   *time.Time               `json:"finished,omitempty"`
	CellsDone  int                      `json:"cells_done"`
	CellsTotal int                      `json:"cells_total"`
	Error      string                   `json:"error,omitempty"`
	Sample     int                      `json:"sample,omitempty"`
	Workloads  []string                 `json:"workloads"`
	Policies   []string                 `json:"policies"`
	Sweep      *experiments.LatticeSpec `json:"sweep,omitempty"`
	Explain    *ExplainRequest          `json:"explain,omitempty"`
	ResultURL  string                   `json:"result_url,omitempty"`
	StreamURL  string                   `json:"stream_url"`
}

// Status renders the job's current status view.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	done := len(j.cells)
	if j.explain {
		done = len(j.expls)
	}
	st := JobStatus{
		ID:         j.ID,
		State:      j.state,
		Created:    j.created,
		CellsDone:  done,
		CellsTotal: j.cellsTotal(),
		Sample:     int(j.shift),
		Sweep:      j.sweep,
		Explain:    j.Req.Explain,
		StreamURL:  "/v1/jobs/" + j.ID + "/stream",
	}
	for _, w := range j.wls {
		st.Workloads = append(st.Workloads, w.Name)
	}
	for _, s := range j.specs {
		st.Policies = append(st.Policies, s.Label)
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateDone {
		st.ResultURL = "/v1/jobs/" + j.ID + "/result"
	}
	return st
}
