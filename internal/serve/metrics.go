package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"gippr/internal/experiments"
	"gippr/internal/telemetry"
)

// Metrics is the daemon's observable state, served as JSON at /metrics.
// Counters are atomics updated from worker and handler goroutines; the
// per-policy latency histograms reuse internal/telemetry's power-of-two
// Histogram under a mutex (cell completions are far off the replay hot
// path, so a lock is fine here where it would not be inside the simulator).
type Metrics struct {
	start time.Time

	submitted     atomic.Uint64
	rejectedFull  atomic.Uint64
	rejectedDrain atomic.Uint64
	done          atomic.Uint64
	failed        atomic.Uint64
	cancelled     atomic.Uint64
	panicked      atomic.Uint64
	inflight      atomic.Int64

	cells    atomic.Uint64
	accesses atomic.Uint64

	mu        sync.Mutex
	perPolicy map[string]*telemetry.Histogram // policy label -> cell latency in µs
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now(), perPolicy: make(map[string]*telemetry.Histogram)}
}

// cellDone records one completed grid cell: its replayed LLC accesses (the
// records/sec numerator) and its time-to-availability since the job
// started, bucketed per policy.
func (m *Metrics) cellDone(c experiments.GridCell, sinceStart time.Duration) {
	m.cells.Add(1)
	m.accesses.Add(c.Accesses)
	m.mu.Lock()
	h, ok := m.perPolicy[c.Policy]
	if !ok {
		h = &telemetry.Histogram{}
		m.perPolicy[c.Policy] = h
	}
	h.Observe(uint64(sinceStart.Microseconds()))
	m.mu.Unlock()
}

// MetricsSnapshot is the /metrics JSON document.
type MetricsSnapshot struct {
	UptimeSec     float64 `json:"uptime_sec"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	JobsInflight  int64   `json:"jobs_inflight"`
	JobsSubmitted uint64  `json:"jobs_submitted"`
	JobsDone      uint64  `json:"jobs_done"`
	JobsFailed    uint64  `json:"jobs_failed"`
	JobsCancelled uint64  `json:"jobs_cancelled"`
	// JobsPanicked counts grid bodies that panicked (each also counts as
	// failed); the daemon survives every one of them.
	JobsPanicked  uint64 `json:"jobs_panicked"`
	Rejected429   uint64 `json:"rejected_queue_full"`
	RejectedDrain uint64 `json:"rejected_draining"`
	CellsDone     uint64 `json:"cells_done"`
	LLCAccesses   uint64 `json:"llc_accesses"`
	// Store* expose the persistent result store (all zero when the daemon
	// runs without -store): jobs served from disk vs sent to the grid,
	// entries deleted for failing verification, and the store's footprint.
	StoreHits    uint64 `json:"store_hits"`
	StoreMisses  uint64 `json:"store_misses"`
	StoreCorrupt uint64 `json:"store_corrupt"`
	StoreEntries int    `json:"store_entries"`
	StoreBytes   int64  `json:"store_bytes"`
	// RecordsPerSec is replayed LLC accesses per second of daemon uptime —
	// the serving-throughput gauge the ROADMAP's "fast as the hardware
	// allows" goal is tracked by.
	RecordsPerSec float64 `json:"records_per_sec"`
	// PolicyLatencyUS histograms, per policy label, the microseconds from
	// job start to each of that policy's cells becoming available
	// (time-to-result as a client streaming NDJSON would see it).
	PolicyLatencyUS map[string]telemetry.HistogramSnapshot `json:"policy_latency_us"`
	// Cluster reports the coordinator's peer, breaker, and failover state;
	// absent when no cluster runner is installed.
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`
}

// ClusterPeer is one shard worker as the coordinator sees it.
type ClusterPeer struct {
	Addr string `json:"addr"`
	// Breaker is the circuit state gating dispatch to this peer: "closed"
	// (healthy traffic), "open" (tripped; no dispatch until the cooldown
	// elapses), or "half-open" (probing after a cooldown).
	Breaker string `json:"breaker"`
	// Healthy reports the last active health probe's outcome; Compatible
	// whether the peer's scale and cache geometry match the coordinator's
	// (an incompatible peer is never dispatched to — its cells would not
	// merge bit-identically).
	Healthy    bool   `json:"healthy"`
	Compatible bool   `json:"compatible"`
	ConsecFail int    `json:"consecutive_failures"`
	Probes     uint64 `json:"health_probes"`
	ProbeFails uint64 `json:"health_probe_failures"`
	SubJobs    uint64 `json:"sub_jobs"`
	SubJobFail uint64 `json:"sub_job_failures"`
	LastError  string `json:"last_error,omitempty"`
}

// ClusterSnapshot is the /metrics "cluster" section: the robustness
// counters the chaos suite and the smoke test assert on.
type ClusterSnapshot struct {
	Peers []ClusterPeer `json:"peers"`
	// SubJobsSent counts dispatch attempts (retries included); Retries the
	// re-attempts alone.
	SubJobsSent uint64 `json:"sub_jobs_sent"`
	Retries     uint64 `json:"sub_job_retries"`
	// Failovers counts cells rerouted away from their rendezvous owner —
	// because it was tripped at assignment or failed during dispatch.
	// LocalCells counts cells that degraded all the way to the
	// coordinator's own in-process Lab; RemoteCells those served by peers.
	Failovers   uint64 `json:"failovers"`
	LocalCells  uint64 `json:"local_fallback_cells"`
	RemoteCells uint64 `json:"remote_cells"`
	// Breaker transition counters, summed over peers.
	BreakerOpens  uint64 `json:"breaker_opens"`
	BreakerCloses uint64 `json:"breaker_closes"`
}

// Snapshot renders the current metrics.
func (s *Server) Snapshot() MetricsSnapshot {
	m := s.metrics
	up := time.Since(m.start).Seconds()
	snap := MetricsSnapshot{
		UptimeSec:       up,
		QueueDepth:      s.QueueDepth(),
		QueueCap:        s.cfg.QueueDepth,
		JobsInflight:    m.inflight.Load(),
		JobsSubmitted:   m.submitted.Load(),
		JobsDone:        m.done.Load(),
		JobsFailed:      m.failed.Load(),
		JobsCancelled:   m.cancelled.Load(),
		JobsPanicked:    m.panicked.Load(),
		Rejected429:     m.rejectedFull.Load(),
		RejectedDrain:   m.rejectedDrain.Load(),
		CellsDone:       m.cells.Load(),
		LLCAccesses:     m.accesses.Load(),
		PolicyLatencyUS: make(map[string]telemetry.HistogramSnapshot),
	}
	if up > 0 {
		snap.RecordsPerSec = float64(snap.LLCAccesses) / up
	}
	if s.store != nil {
		st := s.store.Stats()
		snap.StoreHits = st.Hits
		snap.StoreMisses = st.Misses
		snap.StoreCorrupt = st.Corrupt
		snap.StoreEntries = st.Entries
		snap.StoreBytes = st.Bytes
	}
	m.mu.Lock()
	for name, h := range m.perPolicy {
		snap.PolicyLatencyUS[name] = h.Snapshot()
	}
	m.mu.Unlock()
	s.mu.Lock()
	runner := s.cfg.Runner
	s.mu.Unlock()
	if cr, ok := runner.(ClusterReporter); ok {
		cs := cr.ClusterSnapshot()
		snap.Cluster = &cs
	}
	return snap
}
