// Package serve is the simulation-as-a-service layer: a long-lived job
// daemon that evaluates {workloads x policies x sampling} grids over one
// shared, memoized experiments.Lab behind an HTTP/JSON v1 API
// (cmd/gippr-serve is the binary).
//
// Architecture: submissions validate against the typed-sentinel error
// vocabulary (bad vectors, unknown policies/workloads, bad sampling shifts
// all fail fast with 400), then enter a bounded FIFO queue served by a
// fixed worker pool — one worker runs one job at a time, and each job fans
// its grid out over the Lab's own worker pool. A full queue rejects with
// ErrQueueFull (HTTP 429 + Retry-After) rather than blocking the client;
// a draining server rejects with ErrDraining (503). Because every job runs
// through the same Lab engine as the gippr-sim CLI, a served cell is
// bit-identical to the CLI's row for the same spec, and repeated jobs over
// overlapping specs are memo reads, not replays.
//
// Lifecycle: Drain (SIGTERM in the daemon) stops intake, lets in-flight
// jobs finish, marks still-queued jobs rejected, and returns when the pool
// is idle; Close force-cancels in-flight jobs through their contexts for
// the case where a drain deadline expires.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"gippr/internal/experiments"
	"gippr/internal/explain"
	"gippr/internal/ipv"
	"gippr/internal/parallel"
	"gippr/internal/resultstore"
	"gippr/internal/runctx"
	"gippr/internal/stackdist"
	"gippr/internal/telemetry"
	"gippr/internal/workload"
)

// Service-level sentinels, mapped to HTTP statuses by StatusOf.
var (
	// ErrQueueFull rejects a submission when the bounded queue has no free
	// slot (HTTP 429 + Retry-After; the client should back off and retry).
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrDraining rejects a submission during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("serve: server is draining")
	// ErrNotFound reports an unknown job id (HTTP 404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrNotDone reports a result request for a job that has not finished
	// successfully (HTTP 409).
	ErrNotDone = errors.New("serve: job has not completed")
	// ErrBadRequest rejects a malformed request field (a negative or
	// non-finite timeout, for example) at submission time (HTTP 400).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrPanic marks a job whose grid body panicked. The job fails — the
	// daemon does not — with the worker stack captured in the job error,
	// and the result endpoint reports 500 (a server bug, not client fault).
	ErrPanic = errors.New("serve: job panicked")
)

// maxNameList bounds the workload and policy lists a single request may
// carry. The full suite is 26 workloads and the registry under 20 policies,
// so the cap only rejects hostile or corrupted requests before resolve
// loops over them.
const maxNameList = 1024

// Config sizes the daemon.
type Config struct {
	// Scale fixes the per-phase record budget and warm-up fraction every
	// job runs at (jobs share one Lab, so this is server-wide).
	Scale experiments.Scale
	// Workers is the job worker pool size: how many jobs run concurrently.
	// Values below 1 mean 1.
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the running
	// ones; a submission beyond it gets ErrQueueFull. Values below 1
	// mean 1.
	QueueDepth int
	// LabWorkers is each job's grid fan-out width (0 = GOMAXPROCS).
	LabWorkers int
	// DefaultTimeout is the per-job deadline applied when a request does
	// not set one (0 = none). MaxTimeout caps request-supplied deadlines
	// (0 = uncapped).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// Store, when non-nil, is the persistent content-addressed result store
	// the server reads through: a job whose fingerprint is already stored
	// is served from disk (queued -> running -> done with the stored cells,
	// zero grid recompute), and every freshly computed result is persisted
	// on completion. Nil keeps today's in-memory-only behavior.
	Store *resultstore.Store
	// MaxBodyBytes caps a job-submission request body; oversized bodies
	// get HTTP 413. Values <= 0 mean the 1 MiB default.
	MaxBodyBytes int64
	// Runner, when non-nil, replaces the in-process grid engine for job
	// execution — the cluster coordinator implements it to fan cells out
	// across shard workers. Nil (or SetRunner(nil)) runs every job on the
	// server's own Lab. See GridRunner.
	Runner GridRunner
	// Role labels this daemon in /healthz: "single" (default),
	// "coordinator", or "worker". ShardOf optionally names the cluster a
	// worker belongs to. Both are informational.
	Role    string
	ShardOf string
}

// GridPlan is a job's resolved, immutable execution plan as handed to a
// GridRunner: the concrete specs and workloads (the cell cross-product),
// the sampling shift selecting the Lab view, and the canonicalized IPV (""
// when the request had none) for rebuilding the IPV spec on a remote peer.
type GridPlan struct {
	Specs     []experiments.Spec
	Workloads []workload.Workload
	Shift     uint
	IPVCanon  string
}

// GridRunner executes one job's grid. local is the server's own Lab view
// for the plan's sampling shift — the engine a distributed runner degrades
// to, so a fully-degraded cluster and a single-node daemon are the same
// code path. emit must be called exactly once per settled cell and is safe
// for concurrent use; the server routes it into the job record, so NDJSON
// streaming, /result rendering, late-connect replay, and the result store
// are untouched by how cells were computed.
type GridRunner interface {
	RunGrid(ctx context.Context, local *experiments.Lab, plan GridPlan, emit func(experiments.GridCell)) error
}

// ClusterReporter is implemented by runners (the cluster coordinator) that
// expose per-peer health, breaker, and failover state; /metrics embeds the
// snapshot when the installed Runner provides one.
type ClusterReporter interface {
	ClusterSnapshot() ClusterSnapshot
}

// Server is the job daemon: a bounded queue, a worker pool, and the shared
// Lab (plus its per-shift sampling views). It is safe for concurrent use by
// any number of HTTP handler goroutines.
type Server struct {
	cfg  Config
	base *experiments.Lab

	viewMu sync.Mutex
	views  map[uint]*experiments.Lab // sampling shift -> lab view sharing base streams

	store *resultstore.Store // nil = in-memory only

	mu       sync.Mutex // guards jobs, order, draining, and queue sends
	jobs     map[string]*Job
	order    []string
	queue    chan *Job
	draining bool

	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc

	metrics *Metrics
	prog    *runctx.Progress

	// runGrid is the job execution hook; tests substitute a blocking stub
	// to hold workers busy deterministically.
	runGrid func(ctx context.Context, lab *experiments.Lab, job *Job) error
}

// New builds a server and starts its worker pool. Call Drain (and, if the
// drain deadline expires, Close) to stop it.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Scale.PhaseRecords == 0 {
		cfg.Scale = experiments.ScaleFromEnv()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Role == "" {
		cfg.Role = "single"
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      cfg.Store,
		base:       experiments.NewLab(cfg.Scale).SetWorkers(cfg.LabWorkers),
		views:      make(map[uint]*experiments.Lab),
		jobs:       make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		metrics:    newMetrics(),
		prog:       runctx.NewProgress("gippr-serve"),
	}
	s.runGrid = s.runGridReal
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Lab returns the server's base (full-fidelity) lab — the one the
// equivalence tests compare served results against.
func (s *Server) Lab() *experiments.Lab { return s.base }

// labFor returns the lab view for a sampling shift: the base lab at shift
// 0, else a per-shift view sharing the base's captured streams but with its
// own result memo (sampled and full-fidelity results must never mix).
func (s *Server) labFor(shift uint) *experiments.Lab {
	if shift == 0 {
		return s.base
	}
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	if l, ok := s.views[shift]; ok {
		return l
	}
	l := s.base.WithSampling(shift)
	s.views[shift] = l
	return l
}

// resolve validates a request into its immutable execution plan. Every
// failure wraps one of the typed sentinels, so the HTTP layer can map it to
// 400 with errors.Is.
func (s *Server) resolve(req JobRequest) (*Job, error) {
	if len(req.Workloads) > maxNameList || len(req.Policies) > maxNameList {
		return nil, fmt.Errorf("%w: request lists %d workloads and %d policies (max %d each)",
			ErrBadRequest, len(req.Workloads), len(req.Policies), maxNameList)
	}
	var wls []workload.Workload
	names := req.Workloads
	if len(names) == 0 || (len(names) == 1 && names[0] == "all") {
		wls = workload.Suite()
	} else {
		for _, n := range names {
			w, err := workload.ByName(strings.TrimSpace(n))
			if err != nil {
				return nil, err
			}
			wls = append(wls, w)
		}
	}

	var sweep *experiments.LatticeSpec
	var specs []experiments.Spec
	var ipvCanon string
	var explainJob bool
	if req.Explain != nil {
		// Explain jobs are a third engine: the policy pair is the whole
		// policy surface, and the decomposition's exact integer identity
		// only holds at full fidelity, so nothing else may compose with it.
		if req.Sweep != nil {
			return nil, fmt.Errorf("%w: a job is a grid, a sweep, or an explain — not two at once", ErrBadRequest)
		}
		if len(req.Policies) > 0 || req.IPV != "" || req.Exact {
			return nil, fmt.Errorf("%w: an explain job takes no policies, ipv, or exact flag", ErrBadRequest)
		}
		if req.Sample != 0 {
			return nil, fmt.Errorf("%w: the explain decomposition is exact only at full fidelity; sample must be 0", ErrBadRequest)
		}
		a, err := experiments.SpecFromRegistry(strings.TrimSpace(req.Explain.PolicyA))
		if err != nil {
			return nil, err
		}
		b, err := experiments.SpecFromRegistry(strings.TrimSpace(req.Explain.PolicyB))
		if err != nil {
			return nil, err
		}
		specs = []experiments.Spec{a, b}
		explainJob = true
	} else if req.Sweep != nil {
		// One-pass sweep jobs are a different engine: the lattice spec IS
		// the policy set, and the engine is exact-by-construction at full
		// fidelity, so policy/IPV/sampling fields cannot compose with it.
		if len(req.Policies) > 0 || req.IPV != "" || req.Exact {
			return nil, fmt.Errorf("%w: a sweep job takes no policies, ipv, or exact flag", ErrBadRequest)
		}
		if req.Sample != 0 {
			return nil, fmt.Errorf("%w: the one-pass sweep runs at full fidelity; sample must be 0", ErrBadRequest)
		}
		sp := experiments.LatticeSpec{
			MinSets: req.Sweep.MinSets,
			MaxSets: req.Sweep.MaxSets,
			MaxWays: req.Sweep.MaxWays,
			PLRU:    append([]stackdist.Geometry(nil), req.Sweep.PLRU...),
		}
		// Geometry validation happens here, at submission, wrapping
		// cache.ErrBadGeometry -> HTTP 400 — not at replay time.
		if err := sp.Validate(s.base.Cfg.BlockBytes); err != nil {
			return nil, err
		}
		sweep = &sp
	} else {
		polNames := req.Policies
		if len(polNames) == 0 && !req.Exact {
			polNames = defaultPolicies
		}
		for _, n := range polNames {
			sp, err := experiments.SpecFromRegistry(strings.TrimSpace(n))
			if err != nil {
				return nil, err
			}
			specs = append(specs, sp)
		}
		if req.IPV != "" {
			v, err := ipv.Parse(req.IPV)
			if err != nil {
				return nil, err
			}
			// The canonical form (not the raw request string) feeds the result
			// fingerprint, so "0,1,2" and "[ 0 1 2 ]" collide to one store key.
			ipvCanon = v.String()
			specs = append(specs, experiments.SpecForIPV("GIPPR*", v))
		}
		if len(specs) == 0 {
			// Only reachable with Exact set: an exact request must name at
			// least one policy (or carry an IPV) — there is no default to fall
			// back to.
			return nil, fmt.Errorf("%w: exact request names no policies", ErrBadRequest)
		}
	}

	shift, err := s.base.Cfg.CheckSampleShift(req.Sample)
	if err != nil {
		return nil, err
	}

	if math.IsNaN(req.TimeoutSec) || math.IsInf(req.TimeoutSec, 0) {
		return nil, fmt.Errorf("%w: timeout_sec must be finite", ErrBadRequest)
	}
	if req.TimeoutSec < 0 {
		return nil, fmt.Errorf("%w: timeout_sec %v is negative", ErrBadRequest, req.TimeoutSec)
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	if s.cfg.MaxTimeout > 0 && timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	return &Job{
		ID:       newID(),
		Req:      req,
		specs:    specs,
		wls:      wls,
		shift:    shift,
		timeout:  timeout,
		ipvCanon: ipvCanon,
		sweep:    sweep,
		explain:  explainJob,
		state:    StateQueued,
		created:  time.Now(),
		updated:  make(chan struct{}),
	}, nil
}

// Submit validates a request and enqueues it. It never blocks: with the
// queue full it fails with ErrQueueFull, while draining with ErrDraining;
// validation failures wrap the typed input sentinels.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	job, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	select {
	case s.queue <- job:
	default:
		s.metrics.rejectedFull.Add(1)
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, s.cfg.QueueDepth)
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.metrics.submitted.Add(1)
	return job, nil
}

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueDepth returns the number of queued (not yet started) jobs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// worker is one pool goroutine: it serves jobs until the queue closes at
// drain time, rejecting any job it dequeues after draining began (those
// were queued, never started — the drain contract).
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			if job.finish(StateRejected, ErrDraining) {
				s.metrics.rejectedDrain.Add(1)
			}
			continue
		}
		s.run(job)
	}
}

// run executes one job with its deadline and cancellation plumbing: compute
// the fingerprint up front, serve a store hit from disk, otherwise run the
// grid and persist the settled result (read-through / write-behind).
func (s *Server) run(job *Job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if job.timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, job.timeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	// setRunning is the atomic check-and-transition: a job cancelled via
	// DELETE while queued is terminal and must stay that way, so a refusal
	// means this worker never touches the job.
	if !job.setRunning(cancel) {
		return
	}
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	fp := s.fingerprint(job)
	if s.serveFromStore(job, fp) {
		return
	}

	err := s.execute(ctx, job)
	switch {
	case err == nil:
		// Persist before the done transition becomes observable: a client
		// that polls the job to done and immediately inspects the store (or
		// a drain that returns once in-flight jobs settle) must find the
		// entry on disk, never a window where the job is done but the
		// write-behind is still racing.
		s.persist(job, fp)
		if job.finish(StateDone, nil) {
			s.metrics.done.Add(1)
		}
	case runctx.Cancelled(err):
		if job.finish(StateCancelled, err) {
			s.metrics.cancelled.Add(1)
		}
	default:
		if job.finish(StateFailed, err) {
			s.metrics.failed.Add(1)
		}
	}
}

// execute runs one job's grid through the installed Runner (cluster
// coordinator) or, without one, the in-process engine. It is the panic
// boundary of the worker pool: a panicking grid run — a policy bug, a bad
// vector deep in the replay kernel — fails only this job, with the panic
// value and goroutine stack captured in the job error (following the
// parallel.Panic convention, whose worker stack is preserved when the
// panic crossed the fan-out), never the daemon.
func (s *Server) execute(ctx context.Context, job *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.panicked.Add(1)
			if p, ok := r.(*parallel.Panic); ok {
				err = fmt.Errorf("%w: %v\n\nworker goroutine stack:\n%s", ErrPanic, p.Value, p.Stack)
				return
			}
			err = fmt.Errorf("%w: %v\n\ngoroutine stack:\n%s", ErrPanic, r, debug.Stack())
		}
	}()
	if job.explain {
		// Explain jobs always run locally, like sweeps: both policies settle
		// from one instrumented walk per workload phase on this Lab, so the
		// pair cannot be split across peers without breaking the shared
		// captures the decomposition identity rides on.
		lab := s.labFor(job.shift)
		errs := make([]error, len(job.wls))
		err := parallel.ForCtx(ctx, lab.Workers, len(job.wls), func(i int) {
			e, derr := lab.Diff(job.specs[0], job.specs[1], job.wls[i])
			if derr != nil {
				errs[i] = derr
				return
			}
			job.appendExplanation(e)
			s.prog.Add(1)
		})
		if err != nil {
			return err
		}
		for _, derr := range errs {
			if derr != nil {
				return derr
			}
		}
		return nil
	}
	if job.sweep != nil {
		// Sweep jobs always run on the local one-pass engine, cluster or
		// not: the whole lattice is one cheap stream walk per workload, so
		// sharding cells across peers would cost more in dispatch than the
		// compute it saves.
		start := time.Now()
		_, err := s.labFor(job.shift).SweepGrid(ctx, *job.sweep, job.wls, func(c experiments.GridCell) {
			job.appendCell(c)
			s.metrics.cellDone(c, time.Since(start))
			s.prog.Add(1)
		})
		return err
	}
	s.mu.Lock()
	runner := s.cfg.Runner
	s.mu.Unlock()
	if runner != nil {
		start := time.Now()
		plan := GridPlan{Specs: job.specs, Workloads: job.wls, Shift: job.shift, IPVCanon: job.ipvCanon}
		return runner.RunGrid(ctx, s.labFor(job.shift), plan, func(c experiments.GridCell) {
			job.appendCell(c)
			s.metrics.cellDone(c, time.Since(start))
			s.prog.Add(1)
		})
	}
	return s.runGrid(ctx, s.labFor(job.shift), job)
}

// SetRunner installs (or, with nil, removes) the distributed grid engine.
// Call it during wiring, before the server receives traffic; jobs already
// running keep the engine they started with.
func (s *Server) SetRunner(r GridRunner) {
	s.mu.Lock()
	s.cfg.Runner = r
	s.mu.Unlock()
}

// serveFromStore attempts the read-through path: on a verified store hit
// the stored cells are delivered through appendCell — so NDJSON streaming,
// /result rendering, and late-connect replay behave exactly as for a
// computed job — and the job completes without any grid work. A corrupt
// entry was already deleted by the store and reads as a miss; the caller
// recomputes and re-persists.
func (s *Server) serveFromStore(job *Job, fp string) bool {
	if s.store == nil {
		return false
	}
	var stored Result
	if !s.store.Get(fp, &stored) {
		return false
	}
	for _, c := range stored.Cells {
		job.appendCell(c)
	}
	for _, e := range stored.Explanations {
		job.appendExplanation(e)
	}
	if job.finish(StateDone, nil) {
		s.metrics.done.Add(1)
	}
	return true
}

// persist is the write-behind path: render the job's settled manifest and
// store it under its fingerprint, strictly before the caller publishes the
// done state. Best-effort — a full disk must not fail a job that computed
// correctly; the entry simply stays cold and the next identical request
// recomputes.
func (s *Server) persist(job *Job, fp string) {
	if s.store == nil {
		return
	}
	res := s.manifest(job)
	// The stored document is content-addressed and job-independent; the
	// per-request random job id would otherwise be the one field keeping
	// two identical results from being byte-identical.
	res.ID = ""
	s.store.Put(fp, res) //nolint:errcheck // write-behind is best-effort
}

// fingerprint renders the canonical configuration string a job's manifest
// is fully determined by: engine version, scale, the cache geometry under
// study, the sampling shift, the resolved workload and policy lists, and
// the canonicalized IPV. It is the persistence key of the result store, so
// everything that changes the cells must appear here — geometry included,
// because two daemons with different LLCs must never share an entry — and
// nothing request-cosmetic (like IPV spelling) may.
func (s *Server) fingerprint(job *Job) string {
	cfg := s.base.Cfg
	wls := make([]string, len(job.wls))
	for i, w := range job.wls {
		wls[i] = w.Name
	}
	pols := make([]string, len(job.specs))
	for i, sp := range job.specs {
		pols[i] = sp.Label
	}
	fp := fmt.Sprintf("gippr-serve|v2|records=%d|warm=%.6f|cache=%s;size=%d;ways=%d;block=%d;sets=%d|sample=%d|workloads=%s|policies=%s|ipv=%s",
		s.cfg.Scale.PhaseRecords, s.cfg.Scale.WarmFrac,
		cfg.Name, cfg.SizeBytes, cfg.Ways, cfg.BlockBytes, cfg.Sets(),
		job.shift, strings.Join(wls, ","), strings.Join(pols, ","), job.ipvCanon)
	if job.sweep != nil {
		// Appended only for sweep jobs so every pre-existing grid
		// fingerprint — and the store entries addressed by them — is
		// untouched.
		fp += "|sweep=" + job.sweep.Key()
	}
	if job.explain {
		// Same suffix rule as sweeps: explain results carry full
		// explanations, not cells, so they must never share a store entry
		// with a grid job over the same policy pair — while leaving every
		// pre-existing grid and sweep fingerprint byte-identical.
		fp += fmt.Sprintf("|explain=v%d", explain.Version)
	}
	return fp
}

// runGridReal is the production job body: the shared-Lab grid engine with
// per-cell delivery into the job record and the metrics.
func (s *Server) runGridReal(ctx context.Context, lab *experiments.Lab, job *Job) error {
	start := time.Now()
	_, err := lab.Grid(ctx, job.specs, job.wls, func(c experiments.GridCell) {
		job.appendCell(c)
		s.metrics.cellDone(c, time.Since(start))
		s.prog.Add(1)
	})
	return err
}

// Result renders the done job's manifest: the configuration fingerprint
// (mirroring gippr-sim's -telemetry fingerprint format) plus every cell in
// workload-major order. Cells accumulate in completion order while the job
// runs (that is the order the NDJSON stream shows), so the manifest sorts
// them back into the deterministic workload-major layout gippr-sim prints.
func (s *Server) Result(job *Job) (*Result, error) {
	job.mu.Lock()
	state, err := job.state, job.err
	job.mu.Unlock()
	if state != StateDone {
		if err != nil {
			// Both sentinels stay in the chain: a panicked job's result
			// reads as a server fault (500 via ErrPanic), any other
			// non-done state as a 409.
			return nil, fmt.Errorf("%w: state %s: %w", ErrNotDone, state, err)
		}
		return nil, fmt.Errorf("%w: state %s", ErrNotDone, state)
	}
	return s.manifest(job), nil
}

// manifest renders a job's result document from its current cells without
// the done-state gate, so the write-behind persist can run strictly before
// the done transition is published.
func (s *Server) manifest(job *Job) *Result {
	job.mu.Lock()
	cells := append([]experiments.GridCell(nil), job.cells...)
	expls := append([]*explain.Explanation(nil), job.expls...)
	job.mu.Unlock()
	if job.explain {
		// Explanations accumulate in completion order; the manifest sorts
		// them into workload order, mirroring the cell layout below.
		wlRank := make(map[string]int, len(job.wls))
		for wi, w := range job.wls {
			wlRank[w.Name] = wi
		}
		sort.Slice(expls, func(a, b int) bool {
			return wlRank[expls[a].Workload] < wlRank[expls[b].Workload]
		})
	} else {
		expls = nil
	}
	labels := job.cellLabels()
	rank := make(map[string]int, len(job.wls)*len(labels))
	for wi, w := range job.wls {
		for li, label := range labels {
			rank[w.Name+"\x00"+label] = wi*len(labels) + li
		}
	}
	sort.Slice(cells, func(a, b int) bool {
		return rank[cells[a].Workload+"\x00"+cells[a].Policy] < rank[cells[b].Workload+"\x00"+cells[b].Policy]
	})
	lab := s.labFor(job.shift)
	geom := telemetry.CacheGeometry{
		Name: lab.Cfg.Name, SizeBytes: lab.Cfg.SizeBytes, Ways: lab.Cfg.Ways,
		BlockBytes: lab.Cfg.BlockBytes, Sets: lab.Cfg.Sets(),
	}
	if job.shift > 0 {
		geom.SampleShift = job.shift
		geom.SampledSets = lab.Cfg.SampledSets()
	}
	return &Result{
		ID:           job.ID,
		Fingerprint:  s.fingerprint(job),
		Cache:        geom,
		Records:      s.cfg.Scale.PhaseRecords,
		WarmFrac:     s.cfg.Scale.WarmFrac,
		Sweep:        job.sweep,
		Cells:        cells,
		Explanations: expls,
	}
}

// Result is the GET /v1/jobs/{id}/result document. Sweep, present only on
// one-pass sweep jobs, is the geometry-lattice section: it names the
// lattice the cells cover, and the cells themselves carry lattice point
// labels ("lru@4096x16") in place of policy names. Explanations, present
// only on explain jobs, holds one policy-diff explanation per workload in
// workload order (such jobs have no cells).
type Result struct {
	ID           string                   `json:"id"`
	Fingerprint  string                   `json:"fingerprint"`
	Cache        telemetry.CacheGeometry  `json:"cache"`
	Records      int                      `json:"records_per_phase"`
	WarmFrac     float64                  `json:"warm_frac"`
	Sweep        *experiments.LatticeSpec `json:"sweep,omitempty"`
	Cells        []experiments.GridCell   `json:"cells"`
	Explanations []*explain.Explanation   `json:"explanations,omitempty"`
}

// Drain performs the SIGTERM shutdown contract: stop intake (submissions
// fail with ErrDraining), reject every still-queued job, let in-flight jobs
// finish, and return once the pool is idle. If ctx expires first, Drain
// returns its error with jobs still running — the caller can then Close to
// force-cancel them.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // workers drain the remainder and see draining=true
	}
	s.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close force-cancels every in-flight job through the base context. It is
// the escalation path after a Drain deadline, and safe to call at any time.
func (s *Server) Close() { s.baseCancel() }

// Health is the GET /healthz document. Beyond liveness it carries the
// daemon's result-determining configuration — scale and cache geometry —
// so a cluster coordinator can refuse to shard cells onto a peer whose
// results would not merge bit-identically with its own.
type Health struct {
	OK       bool    `json:"ok"`
	Draining bool    `json:"draining"`
	Role     string  `json:"role"`
	ShardOf  string  `json:"shard_of,omitempty"`
	Records  int     `json:"records_per_phase"`
	WarmFrac float64 `json:"warm_frac"`
	Cache    string  `json:"cache"`
}

// Health renders the daemon's current health document.
func (s *Server) Health() Health {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	cfg := s.base.Cfg
	return Health{
		OK:       !draining,
		Draining: draining,
		Role:     s.cfg.Role,
		ShardOf:  s.cfg.ShardOf,
		Records:  s.cfg.Scale.PhaseRecords,
		WarmFrac: s.cfg.Scale.WarmFrac,
		Cache: fmt.Sprintf("%s;size=%d;ways=%d;block=%d;sets=%d",
			cfg.Name, cfg.SizeBytes, cfg.Ways, cfg.BlockBytes, cfg.Sets()),
	}
}
