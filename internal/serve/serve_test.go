package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gippr/internal/experiments"
)

// testScale keeps daemon tests fast; it is also the scale the equivalence
// test rebuilds independently, so the two engines must agree bit-for-bit.
var testScale = experiments.CustomScale(4_000, 1.0/3)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Scale.PhaseRecords == 0 {
		cfg.Scale = testScale
	}
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			s.Close()
		}
	})
	return s
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	}
	return st, resp
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s (err %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for job %s to reach %s (at %s)", id, want, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServedGridBitIdentical is the acceptance criterion: a served job's
// manifest must be bit-identical to what the gippr-sim CLI computes for the
// same grid. Both run Lab.Grid, so the test rebuilds the CLI side as a
// fresh Lab at the daemon's scale and compares cells with exact equality —
// every float bit included.
func TestServedGridBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 4, LabWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{
		Workloads: []string{"mcf_like", "libquantum_like"},
		Policies:  []string{"lru", "plru"},
	}
	st, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	if st.CellsTotal != 4 {
		t.Fatalf("CellsTotal = %d, want 4", st.CellsTotal)
	}
	done := waitState(t, ts, st.ID, StateDone)
	if done.ResultURL == "" {
		t.Fatal("done status missing result_url")
	}

	rresp, err := http.Get(ts.URL + done.ResultURL)
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, want 200", rresp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(rresp.Body).Decode(&res); err != nil {
		t.Fatalf("decode result: %v", err)
	}

	// The CLI side: a fresh Lab at the same scale, same specs, same
	// workloads — the exact computation gippr-sim prints as its table.
	var specs []experiments.Spec
	for _, n := range req.Policies {
		sp, err := experiments.SpecFromRegistry(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sp)
	}
	job, err := s.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.NewLab(testScale).Grid(context.Background(), specs, job.wls, nil)
	if err != nil {
		t.Fatalf("reference Grid: %v", err)
	}
	if !reflect.DeepEqual(res.Cells, want) {
		t.Errorf("served cells are not bit-identical to the CLI engine:\n served %+v\n want   %+v", res.Cells, want)
	}
	if !strings.Contains(res.Fingerprint, "records=4000") {
		t.Errorf("fingerprint %q missing scale", res.Fingerprint)
	}

	// Resubmitting the same grid is served from the shared Lab's memo and
	// must reproduce the identical manifest cells.
	st2, _ := postJob(t, ts, req)
	waitState(t, ts, st2.ID, StateDone)
	r2, err := http.Get(ts.URL + "/v1/jobs/" + st2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var res2 Result
	if err := json.NewDecoder(r2.Body).Decode(&res2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Cells, res2.Cells) {
		t.Error("repeat job disagrees with first (memo reads must be identical)")
	}
}

// TestStreamNDJSON: the stream endpoint yields one JSON cell per line then a
// terminal-state trailer, and the union of streamed cells equals the result.
func TestStreamNDJSON(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru", "plru"}})
	resp, err := http.Get(ts.URL + st.StreamURL)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var cells []experiments.GridCell
	var trailer struct {
		State State `json:"state"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"state"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("bad trailer %q: %v", line, err)
			}
			continue
		}
		var c experiments.GridCell
		if err := json.Unmarshal(line, &c); err != nil {
			t.Fatalf("bad cell line %q: %v", line, err)
		}
		cells = append(cells, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if trailer.State != StateDone {
		t.Fatalf("trailer state = %q, want done", trailer.State)
	}
	if len(cells) != 2 {
		t.Fatalf("streamed %d cells, want 2", len(cells))
	}
	// Late-connecting client gets the full replay.
	resp2, err := http.Get(ts.URL + st.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n := 0
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		n++
	}
	if n != 3 { // 2 cells + trailer
		t.Errorf("replayed stream has %d lines, want 3", n)
	}
}

// blockingGrid substitutes the job body with one that parks until released
// (or its context ends), making queue saturation deterministic.
type blockingGrid struct {
	started chan string   // job IDs, as their runGrid begins
	release chan struct{} // close to let every parked job finish
}

func installBlocking(s *Server) *blockingGrid {
	b := &blockingGrid{started: make(chan string, 64), release: make(chan struct{})}
	s.runGrid = func(ctx context.Context, _ *experiments.Lab, job *Job) error {
		b.started <- job.ID
		select {
		case <-b.release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return b
}

// TestQueueFullRejects: submissions beyond workers+queue get 429 with a
// Retry-After header and never block.
func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	b := installBlocking(s)
	defer close(b.release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru"}}
	// First job occupies the worker...
	st1, _ := postJob(t, ts, req)
	<-b.started
	// ...second fills the queue...
	if _, resp := postJob(t, ts, req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d, want 202", resp.StatusCode)
	}
	// ...third must bounce, immediately.
	start := time.Now()
	_, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("rejection took %v; Submit must not block", elapsed)
	}
	var snap MetricsSnapshot
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Rejected429 != 1 || snap.JobsSubmitted != 2 || snap.JobsInflight != 1 {
		t.Errorf("metrics = %+v, want 1 rejection, 2 submitted, 1 inflight", snap)
	}
	_ = st1
}

// TestDrain pins the SIGTERM contract: draining stops intake with 503,
// rejects still-queued jobs, lets the in-flight job finish, and Drain
// returns once idle.
func TestDrain(t *testing.T) {
	s := New(Config{Scale: testScale, Workers: 1, QueueDepth: 2})
	b := installBlocking(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru"}}
	running, _ := postJob(t, ts, req)
	<-b.started
	queued, _ := postJob(t, ts, req)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Wait for intake to close, then verify rejections while the in-flight
	// job still runs.
	for i := 0; ; i++ {
		if _, resp := postJob(t, ts, req); resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
			break
		}
		if i > 500 {
			t.Fatal("draining server kept accepting jobs")
		}
		time.Sleep(5 * time.Millisecond)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", hresp.StatusCode)
	}

	close(b.release) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := waitState(t, ts, running.ID, StateDone); st.State != StateDone {
		t.Errorf("in-flight job = %s, want done", st.State)
	}
	qj, err := s.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := qj.Status(); st.State != StateRejected {
		t.Errorf("queued job after drain = %s, want rejected", st.State)
	}
}

// TestConcurrentSubmitters hammers a small queue from many goroutines (the
// -race exercise): every submission either lands or bounces with 429, all
// accepted jobs reach done, and the books balance.
func TestConcurrentSubmitters(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 2, LabWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []string
	rejected := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru"}}
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var st JobStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
					t.Errorf("submit %d decode: %v", i, err)
					return
				}
				mu.Lock()
				accepted = append(accepted, st.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				t.Errorf("submit %d: unexpected status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if len(accepted)+rejected != n {
		t.Fatalf("accepted %d + rejected %d != %d", len(accepted), rejected, n)
	}
	if len(accepted) == 0 {
		t.Fatal("every submission bounced; queue never admitted work")
	}
	for _, id := range accepted {
		waitState(t, ts, id, StateDone)
	}
}

// TestSubmitValidation: every bad input maps to 400 via the typed
// sentinels; missing jobs are 404; early results are 409.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	b := installBlocking(s)
	defer close(b.release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := []JobRequest{
		{Policies: []string{"no-such-policy"}},
		{Workloads: []string{"no_such_workload"}},
		{Workloads: []string{"lbm_like"}, IPV: "[ not a vector ]"},
		{Workloads: []string{"lbm_like"}, Sample: -1},
		{Workloads: []string{"lbm_like"}, Sample: 64},
		{Workloads: []string{"lbm_like"}, TimeoutSec: -1},
	}
	for i, req := range bad {
		if _, resp := postJob(t, ts, req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	// Unknown fields are rejected too (a typo must not silently no-op).
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload": ["lbm_like"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	gresp, err := http.Get(ts.URL + "/v1/jobs/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", gresp.StatusCode)
	}

	st, _ := postJob(t, ts, JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru"}})
	<-b.started
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("result of running job: status %d, want 409", rresp.StatusCode)
	}
}

// TestCancel: DELETE cancels a running job (its context ends, state becomes
// cancelled) and a queued job directly.
func TestCancel(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	b := installBlocking(s)
	defer close(b.release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru"}}
	running, _ := postJob(t, ts, req)
	<-b.started
	queued, _ := postJob(t, ts, req)

	for _, id := range []string{queued.ID, running.ID} {
		dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		dresp, err := http.DefaultClient.Do(dreq)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s: status %d, want 202", id, dresp.StatusCode)
		}
	}
	waitState(t, ts, running.ID, StateCancelled)
	waitState(t, ts, queued.ID, StateCancelled)
}

// TestJobTimeout: a request deadline cancels the job as cancelled, not
// failed.
func TestJobTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	b := installBlocking(s)
	defer close(b.release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _ := postJob(t, ts, JobRequest{
		Workloads: []string{"lbm_like"}, Policies: []string{"lru"}, TimeoutSec: 0.05,
	})
	<-b.started
	waitState(t, ts, st.ID, StateCancelled)
}

// TestResolveTimeoutValidation: a negative or non-finite timeout_sec is a
// typed usage error (400), never silently replaced by the server default.
// NaN and Inf cannot arrive through the JSON handler (encoding/json rejects
// them), but Submit is also a Go API, so resolve itself must refuse them.
func TestResolveTimeoutValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	for _, bad := range []float64{-1, -0.001, math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := s.resolve(JobRequest{Workloads: []string{"lbm_like"}, TimeoutSec: bad})
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("resolve(timeout_sec=%v) err = %v, want ErrBadRequest", bad, err)
		}
		if got := StatusOf(err); got != http.StatusBadRequest {
			t.Errorf("StatusOf(resolve(timeout_sec=%v)) = %d, want 400", bad, got)
		}
	}
	for _, ok := range []float64{0, 0.5, 30} {
		if _, err := s.resolve(JobRequest{Workloads: []string{"lbm_like"}, TimeoutSec: ok}); err != nil {
			t.Errorf("resolve(timeout_sec=%v) = %v, want nil", ok, err)
		}
	}
}

// TestCancelPickupRace hammers DELETE against worker pickup of queued jobs
// (run under -race). The state-machine contract it pins: a job the cancel
// handler reported as cancelled (terminal) is never resurrected to running
// — its grid body must not execute — and the done/cancelled metrics count
// exactly the transitions that actually happened, so a cancelled job never
// also increments jobs_done.
func TestCancelPickupRace(t *testing.T) {
	const n = 200
	s := newTestServer(t, Config{Workers: 2, QueueDepth: n})
	var mu sync.Mutex
	ran := make(map[string]bool)
	s.runGrid = func(_ context.Context, _ *experiments.Lab, job *Job) error {
		mu.Lock()
		ran[job.ID] = true
		mu.Unlock()
		return nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{Workloads: []string{"lbm_like"}, Policies: []string{"lru"}}
	type attempt struct {
		id       string
		atCancel State // state the DELETE response reported
	}
	var attempts []attempt
	for i := 0; i < n; i++ {
		job, err := s.Submit(req)
		if errors.Is(err, ErrQueueFull) {
			continue // workers lagging; the submitted jobs still exercise the race
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
		dresp, err := http.DefaultClient.Do(dreq)
		if err != nil {
			t.Fatalf("DELETE %d: %v", i, err)
		}
		var st JobStatus
		if err := json.NewDecoder(dresp.Body).Decode(&st); err != nil {
			t.Fatalf("decode DELETE response %d: %v", i, err)
		}
		dresp.Body.Close()
		attempts = append(attempts, attempt{id: job.ID, atCancel: st.State})
	}

	// Wait for every job to settle.
	deadline := time.Now().Add(20 * time.Second)
	for _, a := range attempts {
		for {
			job, err := s.Get(a.id)
			if err != nil {
				t.Fatal(err)
			}
			if job.Status().State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never settled (state %s)", a.id, job.Status().State)
			}
			time.Sleep(time.Millisecond)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	var done, cancelled int
	for _, a := range attempts {
		job, _ := s.Get(a.id)
		final := job.Status().State
		switch final {
		case StateDone:
			done++
			if !ran[a.id] {
				t.Errorf("job %s is done but its grid never ran", a.id)
			}
		case StateCancelled:
			cancelled++
			if ran[a.id] {
				t.Errorf("job %s is cancelled but its grid ran (cancelled queued job was resurrected)", a.id)
			}
		default:
			t.Errorf("job %s settled as %s, want done or cancelled", a.id, final)
		}
		if a.atCancel.Terminal() && final != a.atCancel {
			t.Errorf("job %s: DELETE reported terminal %s but final state is %s (terminal state changed)",
				a.id, a.atCancel, final)
		}
	}
	snap := s.Snapshot()
	if snap.JobsDone != uint64(done) {
		t.Errorf("metrics jobs_done = %d, want %d (post-cancel done must not count)", snap.JobsDone, done)
	}
	if snap.JobsCancelled != uint64(cancelled) {
		t.Errorf("metrics jobs_cancelled = %d, want %d", snap.JobsCancelled, cancelled)
	}
	if done+cancelled != len(attempts) {
		t.Errorf("done %d + cancelled %d != %d jobs", done, cancelled, len(attempts))
	}
}

// TestStatusOf pins the error -> HTTP mapping.
func TestStatusOf(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{ErrNotFound, http.StatusNotFound},
		{fmt.Errorf("wrap: %w", ErrNotDone), http.StatusConflict},
		{fmt.Errorf("wrap: %w", ErrQueueFull), http.StatusTooManyRequests},
		{ErrDraining, http.StatusServiceUnavailable},
		{fmt.Errorf("wrap: %w", ErrBadRequest), http.StatusBadRequest},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.want {
			t.Errorf("StatusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
