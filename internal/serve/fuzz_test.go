package serve

import (
	"bytes"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// fuzzServer builds one shared Server for the fuzz workers: resolve only
// reads the registry, the workload suite, and the cache geometry, so one
// instance validates every input.
var fuzzServer = sync.OnceValue(func() *Server {
	return New(Config{Scale: testScale, Workers: 1, QueueDepth: 1})
})

// FuzzSubmitRequest fuzzes the job-submission boundary: the JSON decoder
// plus resolve, the exact pair every POST /v1/jobs body flows through.
// The contract under fuzz: arbitrary bytes never panic and never map to
// anything but 400 — a submission either resolves into a well-formed job
// or is the client's fault, with no input reaching a 5xx or a crash.
func FuzzSubmitRequest(f *testing.F) {
	f.Add([]byte(`{"workloads": ["mcf_like"], "policies": ["lru", "plru"]}`))
	f.Add([]byte(`{"workloads": ["all"], "sample": 4, "timeout_sec": 1.5}`))
	f.Add([]byte(`{"ipv": "[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]", "exact": true}`))
	f.Add([]byte(`{"policies": []}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"unknown_field": true}`))
	f.Add([]byte(`{"workloads": "mcf_like"}`))
	f.Add([]byte(`{"sample": -1}`))
	f.Add([]byte(`{"sample": 99999}`))
	f.Add([]byte(`{"timeout_sec": -3}`))
	f.Add([]byte(`{"timeout_sec": 1e308}`))
	f.Add([]byte(`{"ipv": "[ not a vector ]"}`))
	f.Add([]byte(`{"policies": ["` + strings.Repeat("x", 4096) + `"]}`))
	f.Add([]byte(`{"workloads": [` + strings.Repeat(`"a",`, 2000) + `"a"]}`))
	f.Add([]byte(`{"exact": true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeJobRequest(bytes.NewReader(data))
		if err != nil {
			if got := StatusOf(err); got != http.StatusBadRequest {
				t.Fatalf("decode error %v maps to HTTP %d, want 400", err, got)
			}
			return
		}
		if _, err := fuzzServer().resolve(req); err != nil {
			if got := StatusOf(err); got != http.StatusBadRequest {
				t.Fatalf("resolve error %v maps to HTTP %d, want 400", err, got)
			}
		}
	})
}
