package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"gippr/internal/experiments"
	"gippr/internal/explain"
	"gippr/internal/resultstore"
	"gippr/internal/workload"
)

// postExplain submits through the dedicated /v1/explain endpoint.
func postExplain(t *testing.T, ts *httptest.Server, req JobRequest) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/explain: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	}
	return st, resp
}

// TestServedExplainBitIdentical is the explain acceptance criterion: the
// served result's explanations must be byte-identical (rendered JSON) to
// what a fresh Lab at the same scale derives via Lab.Diff — the same
// versioned document gippr-report's diff section prints.
func TestServedExplainBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, LabWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{
		Workloads: []string{"mcf_like", "libquantum_like"},
		Explain:   &ExplainRequest{PolicyA: "lru", PolicyB: "plru"},
	}
	st, resp := postExplain(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	if st.CellsTotal != 2 {
		t.Fatalf("CellsTotal = %d, want 2 (one explanation per workload)", st.CellsTotal)
	}
	if st.Explain == nil || st.Explain.PolicyA != "lru" || st.Explain.PolicyB != "plru" {
		t.Fatalf("status explain spec = %+v", st.Explain)
	}
	done := waitState(t, ts, st.ID, StateDone)
	res := getResult(t, ts, done.ID)
	if len(res.Cells) != 0 {
		t.Fatalf("explain result carries %d grid cells, want 0", len(res.Cells))
	}
	if len(res.Explanations) != 2 {
		t.Fatalf("result has %d explanations, want 2", len(res.Explanations))
	}
	if !strings.Contains(res.Fingerprint, "|explain=") {
		t.Fatalf("explain fingerprint %q missing |explain= suffix", res.Fingerprint)
	}

	lab := experiments.NewLab(testScale).SetWorkers(2)
	a, err := experiments.SpecFromRegistry("lru")
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.SpecFromRegistry("plru")
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"mcf_like", "libquantum_like"} {
		if res.Explanations[i].Workload != name {
			t.Fatalf("explanation %d is for %q, want %q (workload order)", i, res.Explanations[i].Workload, name)
		}
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := lab.Diff(a, b, w)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(res.Explanations[i])
		wantJSON, _ := json.Marshal(want)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s: served explanation differs from fresh Lab.Diff\nserved: %s\nfresh:  %s", name, gotJSON, wantJSON)
		}
		var sum int64
		for _, bkt := range res.Explanations[i].Reuse {
			sum += bkt.SavedMisses
		}
		if sum != res.Explanations[i].MissesSaved {
			t.Fatalf("%s: served decomposition does not sum: %d vs %d", name, sum, res.Explanations[i].MissesSaved)
		}
	}
}

// TestExplainStreamNDJSON checks the streaming shape: one explanation per
// line, then the state trailer, and that the prose cites the exact MPKI
// strings the JSON fields carry.
func TestExplainStreamNDJSON(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, LabWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _ := postExplain(t, ts, JobRequest{
		Workloads: []string{"mcf_like"},
		Explain:   &ExplainRequest{PolicyA: "lru", PolicyB: "gippr"},
	})
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + st.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 2 {
		t.Fatalf("stream has %d lines, want explanation + trailer", len(lines))
	}
	var e explain.Explanation
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 is not an explanation: %v", err)
	}
	if e.Version != explain.Version || e.Workload != "mcf_like" {
		t.Fatalf("streamed explanation = version %d workload %q", e.Version, e.Workload)
	}
	for _, v := range []float64{e.MPKIA, e.MPKIB} {
		raw, _ := json.Marshal(v)
		if !strings.Contains(e.Prose, string(raw)) {
			t.Fatalf("prose %q does not cite MPKI string %s", e.Prose, raw)
		}
	}
	var trailer map[string]State
	if err := json.Unmarshal([]byte(lines[1]), &trailer); err != nil || trailer["state"] != StateDone {
		t.Fatalf("trailer line %q, want state done", lines[1])
	}
}

// TestExplainBadRequests is the 400 table: explain cannot compose with any
// other engine or fidelity knob, the pair must resolve, and the dedicated
// endpoint refuses bodies without an explain spec.
func TestExplainBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pair := &ExplainRequest{PolicyA: "lru", PolicyB: "plru"}
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"with policies", JobRequest{Explain: pair, Policies: []string{"lru"}}},
		{"with ipv", JobRequest{Explain: pair, IPV: "0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0"}},
		{"with exact", JobRequest{Explain: pair, Exact: true}},
		{"with sample", JobRequest{Explain: pair, Sample: 2}},
		{"with sweep", JobRequest{Explain: pair, Sweep: &SweepRequest{MinSets: 64, MaxSets: 64, MaxWays: 2}}},
		{"unknown policy", JobRequest{Explain: &ExplainRequest{PolicyA: "lru", PolicyB: "nope"}}},
		{"missing spec", JobRequest{Workloads: []string{"mcf_like"}}},
	}
	for _, tc := range cases {
		_, resp := postExplain(t, ts, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// The generic /v1/jobs endpoint accepts explain bodies too (same
	// resolve path) — only the dedicated endpoint insists on the spec.
	st, resp := postJob(t, ts, JobRequest{Workloads: []string{"mcf_like"}, Explain: pair})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explain via /v1/jobs: status %d, want 202", resp.StatusCode)
	}
	waitState(t, ts, st.ID, StateDone)
}

// TestExplainStoreRoundTrip checks the persistence path: a repeat explain
// submission on a restarted daemon is served from the store byte-identical
// to the computed result, and explain store keys never collide with grid
// keys for the same policy pair.
func TestExplainStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st1, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Store: st1})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	req := JobRequest{Workloads: []string{"mcf_like"}, Explain: &ExplainRequest{PolicyA: "lru", PolicyB: "plru"}}
	job1, _ := postExplain(t, ts1, req)
	waitState(t, ts1, job1.ID, StateDone)
	res1 := getResult(t, ts1, job1.ID)

	// A grid job over the same two policies must land under a different key.
	grid, _ := postJob(t, ts1, JobRequest{Workloads: []string{"mcf_like"}, Policies: []string{"lru", "plru"}})
	waitState(t, ts1, grid.ID, StateDone)
	gridRes := getResult(t, ts1, grid.ID)
	if gridRes.Fingerprint == res1.Fingerprint {
		t.Fatalf("grid and explain jobs share fingerprint %q", res1.Fingerprint)
	}
	if strings.Contains(gridRes.Fingerprint, "explain") {
		t.Fatalf("grid fingerprint %q mentions explain", gridRes.Fingerprint)
	}

	st2, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	job2, _ := postExplain(t, ts2, req)
	waitState(t, ts2, job2.ID, StateDone)
	res2 := getResult(t, ts2, job2.ID)
	if got := st2.Stats(); got.Hits != 1 {
		t.Fatalf("restarted store stats = %+v, want 1 hit", got)
	}
	res1.ID, res2.ID = "", ""
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("store round-trip changed the result:\nfirst:  %+v\nsecond: %+v", res1, res2)
	}
}
