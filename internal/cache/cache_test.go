package cache

import (
	"testing"

	"gippr/internal/trace"
)

// lruTestPolicy is a minimal true-LRU policy local to this package so the
// cache can be tested without importing package policy (which imports this
// package).
type lruTestPolicy struct {
	ways   int
	stamps [][]uint64
	clock  uint64
}

func newLRUTest(sets, ways int) *lruTestPolicy {
	s := make([][]uint64, sets)
	for i := range s {
		s[i] = make([]uint64, ways)
	}
	return &lruTestPolicy{ways: ways, stamps: s}
}

func (p *lruTestPolicy) Name() string { return "test-lru" }
func (p *lruTestPolicy) OnHit(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[set][way] = p.clock
}
func (p *lruTestPolicy) OnMiss(uint32, trace.Record) {}
func (p *lruTestPolicy) OnFill(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[set][way] = p.clock
}
func (p *lruTestPolicy) OnEvict(uint32, int, trace.Record) {}
func (p *lruTestPolicy) Victim(set uint32, _ trace.Record) int {
	best, bestStamp := 0, p.stamps[set][0]
	for w := 1; w < p.ways; w++ {
		if p.stamps[set][w] < bestStamp {
			best, bestStamp = w, p.stamps[set][w]
		}
	}
	return best
}

func tinyConfig() Config {
	return Config{Name: "tiny", SizeBytes: 4 * 64 * 2, Ways: 2, BlockBytes: 64, HitLatency: 1}
}

func rec(addr uint64) trace.Record { return trace.Record{Gap: 1, Addr: addr} }

func TestConfigSets(t *testing.T) {
	if got := L3Config.Sets(); got != 4096 {
		t.Fatalf("L3 sets = %d", got)
	}
	if got := L1Config.Sets(); got != 64 {
		t.Fatalf("L1 sets = %d", got)
	}
	if got := L2Config.Sets(); got != 512 {
		t.Fatalf("L2 sets = %d", got)
	}
}

func TestConfigPanics(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 2, BlockBytes: 64},
		{SizeBytes: 1000, Ways: 3, BlockBytes: 64}, // non-power-of-two sets
		{SizeBytes: 1024, Ways: 2, BlockBytes: 48}, // non-power-of-two block
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %d did not panic", i)
				}
			}()
			cfg.Sets()
		}()
	}
}

func TestHitAndMiss(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	if c.Access(rec(0)) {
		t.Fatal("cold access hit")
	}
	if !c.Access(rec(0)) {
		t.Fatal("second access missed")
	}
	if !c.Access(rec(63)) {
		t.Fatal("same-block access missed")
	}
	if c.Access(rec(64)) {
		t.Fatal("different block hit")
	}
	if c.Stats.Accesses != 4 || c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	cfg := tinyConfig() // 4 sets, 2 ways
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	setStride := uint64(4 * 64) // addresses mapping to set 0
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(rec(a))
	c.Access(rec(b))
	c.Access(rec(a)) // a is now MRU
	c.Access(rec(d)) // evicts b
	if !c.Contains(a) {
		t.Fatal("a evicted despite being MRU")
	}
	if c.Contains(b) {
		t.Fatal("b survived despite being LRU")
	}
	if !c.Contains(d) {
		t.Fatal("d not filled")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
}

func TestWriteCounting(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	c.Access(trace.Record{Gap: 1, Addr: 0, Write: true})
	c.Access(trace.Record{Gap: 1, Addr: 0, Write: false})
	if c.Stats.Writes != 1 {
		t.Fatalf("writes = %d", c.Stats.Writes)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	c.Access(rec(0))
	c.ResetStats()
	if c.Stats.Accesses != 0 {
		t.Fatal("stats not reset")
	}
	if !c.Access(rec(0)) {
		t.Fatal("contents lost on stats reset")
	}
}

func TestSetMapping(t *testing.T) {
	cfg := tinyConfig() // 4 sets
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	if c.SetOf(0) != 0 || c.SetOf(64) != 1 || c.SetOf(192) != 3 || c.SetOf(256) != 0 {
		t.Fatal("set mapping wrong")
	}
	if c.Block(128) != 2 {
		t.Fatalf("block of 128 = %d", c.Block(128))
	}
}

// badVictimPolicy returns an out-of-range victim to exercise the guard.
type badVictimPolicy struct{ lruTestPolicy }

func (p *badVictimPolicy) Victim(uint32, trace.Record) int { return 99 }

func TestBadVictimPanics(t *testing.T) {
	cfg := tinyConfig()
	bad := &badVictimPolicy{*newLRUTest(cfg.Sets(), cfg.Ways)}
	c := New(cfg, bad)
	setStride := uint64(4 * 64)
	c.Access(rec(0))
	c.Access(rec(setStride))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid victim not caught")
		}
	}()
	c.Access(rec(2 * setStride))
}

func newTestHierarchy() *Hierarchy {
	l1 := New(Config{Name: "l1", SizeBytes: 2 * 64 * 2, Ways: 2, BlockBytes: 64, HitLatency: 3}, newLRUTest(2, 2))
	l2 := New(Config{Name: "l2", SizeBytes: 4 * 64 * 4, Ways: 4, BlockBytes: 64, HitLatency: 12}, newLRUTest(4, 4))
	l3 := New(Config{Name: "l3", SizeBytes: 8 * 64 * 8, Ways: 8, BlockBytes: 64, HitLatency: 30}, newLRUTest(8, 8))
	return NewHierarchy(l1, l2, l3)
}

func TestHierarchyLevels(t *testing.T) {
	h := newTestHierarchy()
	if lvl := h.Access(rec(0)); lvl != LevelMemory {
		t.Fatalf("cold access satisfied at %v", lvl)
	}
	if lvl := h.Access(rec(0)); lvl != LevelL1 {
		t.Fatalf("hot access satisfied at %v", lvl)
	}
	// Evict block 0 from tiny L1 (2 sets x 2 ways; same-set blocks are 2
	// block-strides apart) but leave it in L2.
	h.Access(rec(2 * 64))
	h.Access(rec(4 * 64))
	if lvl := h.Access(rec(0)); lvl != LevelL2 {
		t.Fatalf("expected L2 hit, got %v", lvl)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := newTestHierarchy()
	if h.Latency(LevelL1) != 3 || h.Latency(LevelL2) != 12 || h.Latency(LevelL3) != 30 {
		t.Fatal("hit latencies wrong")
	}
	if h.Latency(LevelMemory) != 30+DRAMLatency {
		t.Fatalf("memory latency = %d", h.Latency(LevelMemory))
	}
}

func TestHierarchyInstructionCount(t *testing.T) {
	h := newTestHierarchy()
	h.Access(trace.Record{Gap: 5, Addr: 0})
	h.Access(trace.Record{Gap: 3, Addr: 64})
	if h.Instructions != 8 {
		t.Fatalf("instructions = %d", h.Instructions)
	}
}

func TestRecordLLCGaps(t *testing.T) {
	h := newTestHierarchy()
	h.RecordLLC = true
	h.Access(trace.Record{Gap: 5, Addr: 0})   // miss everywhere -> LLC sees it, gap 5
	h.Access(trace.Record{Gap: 3, Addr: 0})   // L1 hit -> not recorded
	h.Access(trace.Record{Gap: 2, Addr: 512}) // miss -> recorded with gap 3+2
	if len(h.LLCStream) != 2 {
		t.Fatalf("LLC stream has %d records", len(h.LLCStream))
	}
	if h.LLCStream[0].Gap != 5 || h.LLCStream[1].Gap != 5 {
		t.Fatalf("LLC gaps = %d, %d", h.LLCStream[0].Gap, h.LLCStream[1].Gap)
	}
}

func TestReserveLLC(t *testing.T) {
	h := newTestHierarchy()
	h.RecordLLC = true
	h.ReserveLLC(100)
	if cap(h.LLCStream) < 100 {
		t.Fatalf("reserved cap = %d", cap(h.LLCStream))
	}
	base := &h.LLCStream[:1][0] // identity of the reserved backing array
	for i := 0; i < 100; i++ {
		h.Access(trace.Record{Gap: 1, Addr: uint64(i) * 1 << 20}) // distinct sets+tags, all LLC misses
	}
	if len(h.LLCStream) != 100 {
		t.Fatalf("captured %d records", len(h.LLCStream))
	}
	if &h.LLCStream[0] != base {
		t.Fatal("capture regrew the buffer despite reservation")
	}

	// Reserving again with enough headroom already present is a no-op.
	h.LLCStream = h.LLCStream[:0]
	before := cap(h.LLCStream)
	h.ReserveLLC(before)
	if cap(h.LLCStream) != before {
		t.Fatalf("no-op reserve changed cap %d -> %d", before, cap(h.LLCStream))
	}

	// Reserving preserves already-captured records.
	h.LLCStream = append(h.LLCStream[:0], trace.Record{Addr: 42})
	h.ReserveLLC(1 << 16)
	if len(h.LLCStream) != 1 || h.LLCStream[0].Addr != 42 {
		t.Fatal("reserve dropped existing records")
	}
	if cap(h.LLCStream) < 1+1<<16 {
		t.Fatalf("grow-with-contents cap = %d", cap(h.LLCStream))
	}
}

func TestHierarchyRun(t *testing.T) {
	h := newTestHierarchy()
	src := trace.NewSliceSource([]trace.Record{rec(0), rec(64), rec(0)})
	if n := h.Run(src); n != 3 {
		t.Fatalf("Run processed %d", n)
	}
	if h.L1.Stats.Accesses != 3 {
		t.Fatalf("L1 accesses = %d", h.L1.Stats.Accesses)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := newTestHierarchy()
	h.Access(rec(0))
	h.ResetStats()
	if h.L1.Stats.Accesses != 0 || h.L3.Stats.Accesses != 0 || h.Instructions != 0 {
		t.Fatal("reset incomplete")
	}
	if lvl := h.Access(rec(0)); lvl != LevelL1 {
		t.Fatal("contents lost by stats reset")
	}
}

func TestReplayStream(t *testing.T) {
	cfg := tinyConfig()
	stream := []trace.Record{
		rec(0), rec(64), // warm
		rec(0), rec(64), rec(128), rec(0),
	}
	rs := ReplayStream(stream, cfg, newLRUTest(cfg.Sets(), cfg.Ways), 2)
	if rs.Accesses != 4 {
		t.Fatalf("accesses = %d", rs.Accesses)
	}
	if rs.Hits != 3 || rs.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", rs.Hits, rs.Misses)
	}
	if rs.Instructions != 4 {
		t.Fatalf("instructions = %d", rs.Instructions)
	}
}

func TestReplayStreamWarmBeyondLength(t *testing.T) {
	cfg := tinyConfig()
	rs := ReplayStream([]trace.Record{rec(0)}, cfg, newLRUTest(cfg.Sets(), cfg.Ways), 10)
	if rs.Accesses != 0 {
		t.Fatalf("accesses = %d", rs.Accesses)
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMemory: "MEM", Level(9): "?"}
	for l, want := range names {
		if l.String() != want {
			t.Fatalf("Level(%d).String() = %q", l, l.String())
		}
	}
}

func TestWritebackAccounting(t *testing.T) {
	cfg := tinyConfig() // 4 sets x 2 ways
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	stride := uint64(4 * 64)
	// Dirty fill, clean fill, then two evictions: only the dirty line
	// produces a writeback.
	c.Access(trace.Record{Gap: 1, Addr: 0, Write: true})
	c.Access(trace.Record{Gap: 1, Addr: stride})
	c.Access(rec(2 * stride)) // evicts dirty block 0
	c.Access(rec(3 * stride)) // evicts clean block
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestWriteHitDirtiesLine(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	stride := uint64(4 * 64)
	c.Access(rec(0))                                     // clean fill
	c.Access(trace.Record{Gap: 1, Addr: 0, Write: true}) // dirtied by a hit
	c.Access(rec(stride))
	c.Access(rec(2 * stride)) // evicts block 0
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d after write hit", c.Stats.Writebacks)
	}
}

func TestInvalidateDropsDirtyState(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	c.Access(trace.Record{Gap: 1, Addr: 0, Write: true})
	c.Invalidate(0)
	// Refill clean and evict: the stale dirty bit must not leak.
	stride := uint64(4 * 64)
	c.Access(rec(0))
	c.Access(rec(stride))
	c.Access(rec(2 * stride))
	if c.Stats.Writebacks != 0 {
		t.Fatalf("writebacks = %d, stale dirty bit leaked", c.Stats.Writebacks)
	}
}

func TestSampleFullFidelity(t *testing.T) {
	cfg := tinyConfig() // SampleShift 0
	for set := 0; set < cfg.Sets(); set++ {
		if !cfg.InSample(uint32(set)) {
			t.Fatalf("set %d outside sample at full fidelity", set)
		}
	}
	if cfg.SampledSets() != cfg.Sets() {
		t.Fatalf("SampledSets = %d, want %d", cfg.SampledSets(), cfg.Sets())
	}
	if f := cfg.SampleFactor(); f != 1 {
		t.Fatalf("SampleFactor = %v, want exactly 1", f)
	}
}

func TestSampleSelectionConsistency(t *testing.T) {
	for shift := uint(1); shift <= 6; shift++ {
		cfg := L3Config
		cfg.SampleShift = shift
		n := 0
		for set := 0; set < cfg.Sets(); set++ {
			if cfg.InSample(uint32(set)) {
				n++
			}
		}
		if n == 0 {
			t.Fatalf("shift %d: empty sample", shift)
		}
		if got := cfg.SampledSets(); got != n {
			t.Fatalf("shift %d: SampledSets = %d, InSample count = %d", shift, got, n)
		}
		if got, want := cfg.SampleFactor(), float64(cfg.Sets())/float64(n); got != want {
			t.Fatalf("shift %d: SampleFactor = %v, want %v", shift, got, want)
		}
		// The hash keeps roughly 1 in 2^shift sets; on 4096 sets the count
		// should be within a factor of two of the expectation.
		want := cfg.Sets() >> shift
		if n < want/2 || n > want*2 {
			t.Fatalf("shift %d: %d sampled sets, expected near %d", shift, n, want)
		}
	}
}

func TestSampleFallbackNeverEmpty(t *testing.T) {
	// A 4-set cache at large shifts all but guarantees the hash rule selects
	// nothing; the striding fallback must keep the sample non-empty (and it
	// always includes set 0).
	for shift := uint(1); shift <= 10; shift++ {
		cfg := tinyConfig()
		cfg.SampleShift = shift
		if cfg.SampledSets() < 1 {
			t.Fatalf("shift %d: empty sample", shift)
		}
		if !cfg.InSample(0) && cfg.hashSampleEmpty() {
			t.Fatalf("shift %d: fallback sample excludes set 0", shift)
		}
	}
}

func TestSampleSkipsUnsampledSets(t *testing.T) {
	cfg := tinyConfig() // 4 sets x 2 ways
	cfg.SampleShift = 1
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	var in, out uint64
	for set := 0; set < cfg.Sets(); set++ {
		hit := c.Access(rec(uint64(set) * 64)) // one cold access per set
		if cfg.InSample(uint32(set)) {
			in++
			if hit {
				t.Fatalf("cold access to sampled set %d hit", set)
			}
		} else {
			out++
			if !hit {
				t.Fatalf("skipped access to set %d reported a miss", set)
			}
		}
	}
	if out == 0 {
		t.Fatal("test vacuous: every set in sample at shift 1")
	}
	if c.Stats.Skipped != out {
		t.Fatalf("Skipped = %d, want %d", c.Stats.Skipped, out)
	}
	if c.Stats.Accesses != in || c.Stats.Misses != in {
		t.Fatalf("stats %+v, want %d accesses/misses", c.Stats, in)
	}
}

func TestSampleAgreesWithFullOnSampledSets(t *testing.T) {
	// Sets are independent, so a sampled cache must produce exactly the
	// miss/hit behaviour of the full cache restricted to the sampled sets.
	full := tinyConfig()
	sampled := tinyConfig()
	sampled.SampleShift = 1
	cf := New(full, newLRUTest(full.Sets(), full.Ways))
	cs := New(sampled, newLRUTest(sampled.Sets(), sampled.Ways))
	var wantAccesses, wantMisses uint64
	for i := 0; i < 4096; i++ {
		addr := uint64(i*i*2654435761) % (1 << 14)
		r := rec(addr)
		hitFull := cf.Access(r)
		cs.Access(r)
		if sampled.InSample(cf.SetOf(addr)) {
			wantAccesses++
			if !hitFull {
				wantMisses++
			}
		}
	}
	if cs.Stats.Accesses != wantAccesses || cs.Stats.Misses != wantMisses {
		t.Fatalf("sampled stats %+v, want %d accesses / %d misses",
			cs.Stats, wantAccesses, wantMisses)
	}
}

func TestReplayStreamSampledInstructions(t *testing.T) {
	// Instruction counting covers the whole stream even when most accesses
	// are skipped: MPKI estimates divide scaled misses by true instructions.
	cfg := tinyConfig()
	cfg.SampleShift = 1
	stream := []trace.Record{rec(0), rec(64), rec(128), rec(192)}
	rs := ReplayStream(stream, cfg, newLRUTest(cfg.Sets(), cfg.Ways), 0)
	if rs.Instructions != 4 {
		t.Fatalf("instructions = %d, want 4", rs.Instructions)
	}
	if rs.Accesses >= 4 {
		t.Fatalf("accesses = %d, sampling skipped nothing", rs.Accesses)
	}
}
