package cache

import (
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// Level identifies where an access was satisfied.
type Level int

// Hierarchy levels, in lookup order.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelL3
	LevelMemory
)

// String returns a short name for the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMemory:
		return "MEM"
	default:
		return "?"
	}
}

// Hierarchy is the three-level cache hierarchy of the paper's simulator.
type Hierarchy struct {
	L1, L2, L3 *Cache
	// DRAM is the main-memory latency in cycles.
	DRAM int
	// Instructions is the running instruction count (sum of record gaps).
	Instructions uint64

	// RecordLLC, when set before simulation, captures the stream of
	// accesses that reach the L3 into LLCStream. Each captured record's Gap
	// holds the number of instructions since the previous LLC access, so
	// the captured stream alone supports CPI estimation during replay.
	RecordLLC bool
	LLCStream []trace.Record

	gapSinceLLC uint64
}

// NewHierarchy assembles a hierarchy from three caches. Pass the policies
// you want; the paper fixes L1/L2 to true LRU and varies only L3.
func NewHierarchy(l1, l2, l3 *Cache) *Hierarchy {
	return &Hierarchy{L1: l1, L2: l2, L3: l3, DRAM: DRAMLatency}
}

// ReserveLLC pre-sizes the LLCStream capture buffer for a run of at most n
// references. The captured stream can never exceed the number of references
// pushed in, so reserving the source's record budget up front turns the
// capture loop's millions of appends into plain stores — no geometric
// regrowth, no copying of a multi-megabyte backing array per doubling.
// Callers that keep the stream long-term should copy it down to its final
// length (the budget is an upper bound; L1/L2 filter most references out).
func (h *Hierarchy) ReserveLLC(n int) {
	if n > 0 && cap(h.LLCStream)-len(h.LLCStream) < n {
		grown := make([]trace.Record, len(h.LLCStream), len(h.LLCStream)+n)
		copy(grown, h.LLCStream)
		h.LLCStream = grown
	}
}

// SetTelemetry attaches one event sink per level (any of which may be nil
// to leave that level uninstrumented). Detach everything with three nils.
func (h *Hierarchy) SetTelemetry(l1, l2, l3 *telemetry.Sink) {
	h.L1.SetTelemetry(l1)
	h.L2.SetTelemetry(l2)
	h.L3.SetTelemetry(l3)
}

// MakeInclusive enforces inclusion: an eviction from the L3
// back-invalidates the block in L1 and L2, and an L2 eviction
// back-invalidates L1. Policies that bypass the LLC must not be used in an
// inclusive hierarchy (the bypassed block would live in L1/L2 without an L3
// copy) — the same caveat the paper notes for PDP-with-bypass.
func (h *Hierarchy) MakeInclusive() {
	h.L3.OnEviction = func(addr uint64) {
		h.L1.Invalidate(addr)
		h.L2.Invalidate(addr)
	}
	h.L2.OnEviction = func(addr uint64) {
		h.L1.Invalidate(addr)
	}
}

// Access performs one reference through the hierarchy and returns the level
// that satisfied it.
func (h *Hierarchy) Access(r trace.Record) Level {
	h.Instructions += uint64(r.Gap)
	h.gapSinceLLC += uint64(r.Gap)
	if h.L1.Access(r) {
		return LevelL1
	}
	if h.L2.Access(r) {
		return LevelL2
	}
	if h.RecordLLC {
		cr := r
		g := h.gapSinceLLC
		if g > 1<<31 {
			g = 1 << 31
		}
		cr.Gap = uint32(g)
		h.LLCStream = append(h.LLCStream, cr)
	}
	h.gapSinceLLC = 0
	if h.L3.Access(r) {
		return LevelL3
	}
	return LevelMemory
}

// Latency returns the access latency in cycles for a reference satisfied at
// the given level. Memory latency is DRAM on top of the L3 lookup.
func (h *Hierarchy) Latency(l Level) int {
	switch l {
	case LevelL1:
		return h.L1.cfg.HitLatency
	case LevelL2:
		return h.L2.cfg.HitLatency
	case LevelL3:
		return h.L3.cfg.HitLatency
	default:
		return h.L3.cfg.HitLatency + h.DRAM
	}
}

// Run drains a trace source through the hierarchy and returns the number of
// references processed.
func (h *Hierarchy) Run(src trace.Source) uint64 {
	var n uint64
	for {
		r, ok := src.Next()
		if !ok {
			return n
		}
		h.Access(r)
		n++
	}
}

// ResetStats zeroes the counters at every level and the instruction count
// (used after warm-up), keeping cache contents and replacement state.
func (h *Hierarchy) ResetStats() {
	h.L1.ResetStats()
	h.L2.ResetStats()
	h.L3.ResetStats()
	h.Instructions = 0
}

// ReplayStats summarizes an LLC-only replay.
type ReplayStats struct {
	Accesses     uint64
	Hits         uint64
	Misses       uint64
	Instructions uint64 // sum of gaps in the replayed window
}

// ReplayStream replays an LLC access stream (as captured via RecordLLC) into
// a standalone LLC with the given policy. The first warm accesses only warm
// the cache; statistics cover the remainder. This is the paper's fitness-
// evaluation path (Section 4.3: 500M instructions of warm-up, then measure).
func ReplayStream(stream []trace.Record, cfg Config, pol Policy, warm int) ReplayStats {
	return ReplayStreamTel(stream, cfg, pol, warm, nil)
}

// ReplayStreamTel is ReplayStream with an optional telemetry sink attached
// to the LLC for the duration of the replay. Warm-up events are discarded
// at the warm boundary (the sink is reset together with the cache stats),
// so the sink describes exactly the measurement window. A nil sink makes it
// identical to ReplayStream: the hot loop pays only the per-event nil
// checks inside Cache.Access.
//
// When the policy opts into the batched fast path (batchreplay.Packable —
// PLRU and single-vector GIPPR do), the replay runs through the packed
// branch-free kernel instead of Cache.Access. The two paths are
// bit-identical in every observable: stats, telemetry event sequence and
// final policy state (FuzzBatchedReplayConsistency and the golden-MPKI
// suite pin this), so the dispatch needs no call-site opt-in.
func ReplayStreamTel(stream []trace.Record, cfg Config, pol Policy, warm int, tel *telemetry.Sink) ReplayStats {
	if pr, ok := NewPackedReplay(cfg, pol); ok {
		if tel != nil {
			pr.K.SetTelemetry(tel)
		}
		r := pr.K.Replay(stream, warm)
		pr.Finish()
		return ReplayStats{
			Accesses:     r.Accesses,
			Hits:         r.Hits,
			Misses:       r.Misses,
			Instructions: r.Instructions,
		}
	}
	c := New(cfg, pol)
	if tel != nil {
		c.SetTelemetry(tel)
	}
	if warm > len(stream) {
		warm = len(stream)
	}
	for _, r := range stream[:warm] {
		c.Access(r)
	}
	c.ResetStats()
	var rs ReplayStats
	for _, r := range stream[warm:] {
		c.Access(r)
		rs.Instructions += uint64(r.Gap)
	}
	rs.Accesses = c.Stats.Accesses
	rs.Hits = c.Stats.Hits
	rs.Misses = c.Stats.Misses
	return rs
}
