// Package cache implements the trace-driven set-associative cache model and
// the three-level hierarchy of the paper's evaluation (Section 4.5): a 32 KB
// 8-way L1 data cache, a 256 KB 8-way unified L2, a 4 MB 16-way L3 (the
// last-level cache whose replacement policy is under study), and a 200-cycle
// DRAM.
//
// The model is a miss-accounting simulator in the style of CMP$im's cache
// core: it tracks tags, dirty bits and replacement state, not data.
// Replacement policy is pluggable per cache via the Policy interface; every
// policy in package policy (LRU, PLRU, DRRIP, PDP, GIPPR, DGIPPR, ...)
// implements it. The hierarchy is non-inclusive/non-exclusive by default
// (each level fills on its own miss; opt into back-invalidation with
// Hierarchy.MakeInclusive) and write misses allocate like reads; these
// simplifications do not affect relative replacement-policy behaviour at
// the LLC, which is what the paper measures.
//
// Because the L1 and L2 policies are fixed, the access stream reaching the
// LLC is independent of the LLC's own replacement policy. The hierarchy can
// therefore record the LLC-visible stream once (RecordLLC), and searches
// such as the genetic algorithm replay it into an LLC-only model with
// ReplayStream — exactly the paper's Valgrind-trace methodology
// (Section 4.3), and orders of magnitude faster than re-simulating L1/L2.
package cache

import (
	"errors"
	"fmt"
	"math/bits"

	"gippr/internal/telemetry"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// ErrBadGeometry is the sentinel wrapped by every cache-geometry validation
// failure (inconsistent size/ways/block, non-power-of-two set counts, and
// out-of-range set-sampling shifts). Callers branch with errors.Is: the cmd
// tools map it to their usage exit code and the job service maps it to
// 400 Bad Request.
var ErrBadGeometry = errors.New("cache: bad geometry")

// Policy decides replacement within each set of one cache. Implementations
// hold all their per-set state (recency stacks, plru bits, RRPVs, ...).
// The cache calls:
//
//   - OnHit when an access hits;
//   - OnMiss once per miss, before victim selection (dueling policies use
//     this to update their selection counters);
//   - Victim on a miss in a full set, to choose the way to evict;
//   - OnEvict when a valid block is evicted (its way is about to be
//     overwritten);
//   - OnFill after the missing block has been placed in a way (whether it
//     replaced a victim or filled an invalid way).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	OnHit(set uint32, way int, r trace.Record)
	OnMiss(set uint32, r trace.Record)
	Victim(set uint32, r trace.Record) int
	OnEvict(set uint32, way int, r trace.Record)
	OnFill(set uint32, way int, r trace.Record)
}

// Instrumented is optionally implemented by replacement policies that can
// emit telemetry events (insertion positions, promotion distances, dueling
// votes). Cache.SetTelemetry forwards its sink to an Instrumented policy so
// cache-level and policy-level events land in the same place.
type Instrumented interface {
	SetTelemetry(*telemetry.Sink)
}

// Bypasser is optionally implemented by replacement policies that can
// decide an incoming block should not be cached at all (e.g. PDP with
// bypass, or the GIPPR+bypass extension). The cache consults it on a miss
// only when the set is full; a bypassed access counts as a miss but evicts
// nothing and fills nothing. Bypass violates inclusion, so it must not be
// used at an inclusive level.
type Bypasser interface {
	ShouldBypass(set uint32, r trace.Record) bool
}

// Config describes one cache's geometry.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	BlockBytes int
	// HitLatency is the access latency in cycles when this cache hits,
	// used by the CPU timing models.
	HitLatency int
	// SampleShift enables set sampling: only sets selected by a fixed
	// deterministic hash of the set index — a 1-in-2^SampleShift fraction —
	// are simulated; accesses to every other set are skipped (counted in
	// Stats.Skipped and treated as hits by the timing models). Miss counts
	// from a sampled cache estimate the full cache's misses after scaling
	// by SampleFactor. 0 (the zero value) means full fidelity: every set is
	// simulated and behaviour is bit-identical to a Config without the
	// field. This is the same statistical bet the paper's set-dueling makes
	// (a few leader sets predict the whole cache); DESIGN.md §9 derives the
	// estimator and its error model.
	SampleShift uint
}

// sampleSeed is the fixed hash seed behind set sampling. It is a package
// constant, not a Config field, so every sampled simulation of a geometry
// selects the same sets — estimates are reproducible across runs, tools and
// worker counts by construction.
const sampleSeed = 0x5e75a11ed5e75 // "set sampled sets"

// InSample reports whether a sampled cache simulates the given set. With
// SampleShift 0 every set is in the sample. The primary rule keeps a set
// when the low SampleShift bits of a hash of its index are zero; in the
// degenerate case where that selects no set at all (tiny caches at large
// shifts), the rule falls back to plain striding (every 2^shift-th set,
// which always includes set 0), keeping the sample non-empty.
func (c Config) InSample(set uint32) bool {
	if c.SampleShift == 0 {
		return true
	}
	mask := uint64(1)<<c.SampleShift - 1
	if c.hashSampleEmpty() {
		return uint64(set)&mask == 0
	}
	return xrand.Mix(uint64(set), sampleSeed)&mask == 0
}

// hashSampleEmpty reports whether the hash rule selects no set (the
// fallback trigger in InSample). SampleShift must be non-zero.
func (c Config) hashSampleEmpty() bool {
	mask := uint64(1)<<c.SampleShift - 1
	for set := 0; set < c.Sets(); set++ {
		if xrand.Mix(uint64(set), sampleSeed)&mask == 0 {
			return false
		}
	}
	return true
}

// SampledSets returns how many sets the sample selects (all of them when
// SampleShift is 0). The hash keeps a 1-in-2^SampleShift fraction in
// expectation; the exact count varies, which is why estimates scale by the
// measured SampleFactor rather than by 2^SampleShift.
func (c Config) SampledSets() int {
	if c.SampleShift == 0 {
		return c.Sets()
	}
	n := 0
	for set := 0; set < c.Sets(); set++ {
		if c.InSample(uint32(set)) {
			n++
		}
	}
	return n
}

// SampleFactor returns the factor that scales sampled-set event counts up
// to full-cache estimates: total sets over sampled sets (exactly 1 at full
// fidelity).
func (c Config) SampleFactor() float64 {
	return float64(c.Sets()) / float64(c.SampledSets())
}

// Validate checks the whole geometry without panicking: positive
// size/ways/block, power-of-two set and block counts, and a sampling shift
// that still selects at least one set. Every failure wraps ErrBadGeometry.
// Sets() enforces the same invariants by panic for internal callers that
// construct geometries from trusted constants; Validate is the error-path
// twin for geometries that cross an API boundary (job submissions, facade
// construction, flag parsing).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("%w: %s: size %d, ways %d, block %d must all be positive",
			ErrBadGeometry, c.Name, c.SizeBytes, c.Ways, c.BlockBytes)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("%w: %s: block size %d is not a power of two", ErrBadGeometry, c.Name, c.BlockBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("%w: %s: %d sets is not a power of two", ErrBadGeometry, c.Name, sets)
	}
	if _, err := c.CheckSampleShift(int(c.SampleShift)); err != nil {
		return err
	}
	return nil
}

// CheckSampleShift validates a user-supplied set-sampling shift against
// this geometry and returns it as the SampleShift field value. Negative
// shifts and shifts that sample fewer than one set (2^shift > sets) wrap
// ErrBadGeometry — they used to be silently clamped by the degenerate-hash
// fallback, which made "-sample 99" quietly simulate a single set.
func (c Config) CheckSampleShift(shift int) (uint, error) {
	if shift < 0 {
		return 0, fmt.Errorf("%w: %s: sample shift %d is negative", ErrBadGeometry, c.Name, shift)
	}
	if shift > 0 {
		base := c
		base.SampleShift = 0
		if sets := base.Sets(); shift >= bits.Len(uint(sets)) {
			return 0, fmt.Errorf("%w: %s: sample shift %d exceeds the geometry (2^%d > %d sets)",
				ErrBadGeometry, c.Name, shift, shift, sets)
		}
	}
	return uint(shift), nil
}

// Sets returns the number of sets implied by the geometry. It panics if the
// geometry is inconsistent or not a power of two.
func (c Config) Sets() int {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		panic(fmt.Sprintf("cache: bad geometry %+v", c))
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %s: %d sets is not a power of two", c.Name, sets))
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		panic(fmt.Sprintf("cache: %s: block size %d is not a power of two", c.Name, c.BlockBytes))
	}
	return sets
}

// Standard geometries from the paper (Section 4.5).
var (
	L1Config = Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, BlockBytes: 64, HitLatency: 3}
	L2Config = Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64, HitLatency: 12}
	L3Config = Config{Name: "L3", SizeBytes: 4 << 20, Ways: 16, BlockBytes: 64, HitLatency: 30}
)

// DRAMLatency is the paper's main-memory latency in cycles.
const DRAMLatency = 200

// Stats counts events at one cache.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writes    uint64
	// Writebacks counts evictions of dirty lines — the write traffic this
	// cache would send toward memory. The simulator accounts it as a
	// statistic; writeback traffic is not re-injected into lower levels
	// (replacement decisions at the LLC are driven by demand references).
	Writebacks uint64
	// Skipped counts accesses to sets outside the sample when set sampling
	// is enabled (Config.SampleShift > 0). Skipped accesses are not counted
	// in Accesses/Hits/Misses, so those counters describe only the sampled
	// sets and scale up by Config.SampleFactor.
	Skipped uint64
}

// HitRate returns hits/accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	block uint64 // full block number (addr >> blockShift); tag+index in one
	valid bool
	dirty bool
}

// Cache is one level of set-associative cache.
type Cache struct {
	cfg        Config
	sets       int
	ways       int
	setMask    uint64
	blockShift uint
	lines      []line // flattened [set*ways + way]
	sampled    []bool // nil at full fidelity; else per-set in-sample flags
	pol        Policy
	Stats      Stats
	tel        *telemetry.Sink // nil when telemetry is disabled

	// OnEviction, if set, is called with the byte address of every valid
	// block this cache evicts. Hierarchies use it to implement inclusion
	// (back-invalidation of inner levels).
	OnEviction func(addr uint64)
}

// New returns a cache with the given geometry and replacement policy.
func New(cfg Config, pol Policy) *Cache {
	sets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		ways:       cfg.Ways,
		setMask:    uint64(sets - 1),
		blockShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		lines:      make([]line, sets*cfg.Ways),
		pol:        pol,
	}
	if cfg.SampleShift > 0 {
		c.sampled = make([]bool, sets)
		for set := 0; set < sets; set++ {
			c.sampled[set] = cfg.InSample(uint32(set))
		}
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Policy returns the replacement policy in use.
func (c *Cache) Policy() Policy { return c.pol }

// SetTelemetry attaches an event sink to the cache (nil detaches). The sink
// is sized for the cache's line count and, when the replacement policy is
// Instrumented, shared with it, so cache-level events (hits, misses,
// evictions with measured reuse) and policy-level events (insertion and
// promotion positions, dueling votes) accumulate together. With no sink
// attached, the Access hot path pays exactly one nil check per event site.
func (c *Cache) SetTelemetry(s *telemetry.Sink) {
	s.Attach(len(c.lines))
	c.tel = s
	if ins, ok := c.pol.(Instrumented); ok {
		ins.SetTelemetry(s)
	}
}

// Telemetry returns the attached sink (nil when disabled).
func (c *Cache) Telemetry() *telemetry.Sink { return c.tel }

// Block returns the block number of a byte address in this cache's geometry.
func (c *Cache) Block(addr uint64) uint64 { return addr >> c.blockShift }

// SetOf returns the set index a byte address maps to.
func (c *Cache) SetOf(addr uint64) uint32 { return uint32(c.Block(addr) & c.setMask) }

// Access performs one reference and returns whether it hit. On a miss the
// block is filled (allocate-on-miss for both reads and writes).
func (c *Cache) Access(r trace.Record) bool {
	block := c.Block(r.Addr)
	set := uint32(block & c.setMask)
	if c.sampled != nil && !c.sampled[set] {
		// Out-of-sample set: no tags are kept for it, so nothing to do.
		// Reported as a hit so timing models charge the optimistic latency
		// (DESIGN.md §9 discusses the resulting CPI bias).
		c.Stats.Skipped++
		return true
	}
	c.Stats.Accesses++
	if r.Write {
		c.Stats.Writes++
	}
	base := int(set) * c.ways
	ls := c.lines[base : base+c.ways]
	for w := range ls {
		if ls[w].valid && ls[w].block == block {
			c.Stats.Hits++
			if r.Write {
				ls[w].dirty = true
			}
			if c.tel != nil {
				c.tel.Hit(base + w)
			}
			c.pol.OnHit(set, w, r)
			return true
		}
	}
	c.Stats.Misses++
	if c.tel != nil {
		c.tel.Miss()
	}
	c.pol.OnMiss(set, r)
	w := -1
	for i := range ls {
		if !ls[i].valid {
			w = i
			break
		}
	}
	if w < 0 {
		if bp, ok := c.pol.(Bypasser); ok && bp.ShouldBypass(set, r) {
			c.tel.Bypass() // nil-safe; off the common path
			return false
		}
		w = c.pol.Victim(set, r)
		if w < 0 || w >= c.ways {
			panic(fmt.Sprintf("cache: %s: policy %s chose invalid victim way %d", c.cfg.Name, c.pol.Name(), w))
		}
		c.Stats.Evictions++
		if ls[w].dirty {
			c.Stats.Writebacks++
		}
		if c.tel != nil {
			c.tel.Evict(base+w, ls[w].dirty)
		}
		c.pol.OnEvict(set, w, r)
		if c.OnEviction != nil {
			c.OnEviction(ls[w].block << c.blockShift)
		}
	}
	ls[w] = line{block: block, valid: true, dirty: r.Write}
	if c.tel != nil {
		c.tel.Fill(base + w)
	}
	c.pol.OnFill(set, w, r)
	return false
}

// Invalidate removes the block holding addr if present, returning whether
// it was resident. Used for back-invalidation in inclusive hierarchies.
// The replacement policy is not notified: the line simply becomes invalid
// and will be preferred for the next fill.
func (c *Cache) Invalidate(addr uint64) bool {
	block := c.Block(addr)
	set := uint32(block & c.setMask)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].valid && c.lines[base+w].block == block {
			c.lines[base+w].valid = false
			return true
		}
	}
	return false
}

// Contains reports whether the block holding addr is present (no state
// change; for tests).
func (c *Cache) Contains(addr uint64) bool {
	block := c.Block(addr)
	set := uint32(block & c.setMask)
	base := int(set) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].valid && c.lines[base+w].block == block {
			return true
		}
	}
	return false
}

// ResetStats zeroes the counters and any attached telemetry (e.g. after
// cache warm-up). The telemetry sink's per-line reuse clocks survive the
// reset, so reuse intervals spanning the warm-up boundary stay correct.
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	c.tel.Reset()
}
