package cache

import (
	"errors"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := L3Config.Validate(); err != nil {
		t.Fatalf("paper LLC geometry invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SizeBytes = 0 },
		func(c *Config) { c.Ways = 0 },
		func(c *Config) { c.BlockBytes = 48 },
		func(c *Config) { c.SizeBytes = c.SizeBytes * 3 / 2 }, // non-pow2 sets
		func(c *Config) { c.SampleShift = 40 },
	}
	for i, mutate := range bad {
		cfg := L3Config
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, ErrBadGeometry) {
			t.Errorf("bad config %d: err = %v, want ErrBadGeometry", i, err)
		}
	}
}

// CheckSampleShift accepts exactly 0..log2(sets) and returns the typed
// sentinel otherwise — no silent clamping.
func TestCheckSampleShift(t *testing.T) {
	cfg := L3Config // 4096 sets
	for shift := 0; shift <= 12; shift++ {
		got, err := cfg.CheckSampleShift(shift)
		if err != nil || got != uint(shift) {
			t.Errorf("CheckSampleShift(%d) = %d, %v; want %d, nil", shift, got, err, shift)
		}
	}
	for _, shift := range []int{-1, -64, 13, 1000} {
		if _, err := cfg.CheckSampleShift(shift); !errors.Is(err, ErrBadGeometry) {
			t.Errorf("CheckSampleShift(%d): err = %v, want ErrBadGeometry", shift, err)
		}
	}
}
