package cache

import (
	"testing"

	"gippr/internal/trace"
	"gippr/internal/xrand"
)

func TestInvalidate(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	c.Access(rec(0))
	if !c.Invalidate(0) {
		t.Fatal("resident block not invalidated")
	}
	if c.Contains(0) {
		t.Fatal("block still resident after invalidation")
	}
	if c.Invalidate(0) {
		t.Fatal("absent block reported invalidated")
	}
	// The invalidated way must be preferred for the next fill (no
	// eviction needed).
	c.Access(rec(0))
	if c.Stats.Evictions != 0 {
		t.Fatal("fill after invalidation evicted something")
	}
}

func TestOnEvictionHook(t *testing.T) {
	cfg := tinyConfig() // 4 sets x 2 ways
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	var evicted []uint64
	c.OnEviction = func(addr uint64) { evicted = append(evicted, addr) }
	stride := uint64(4 * 64)
	c.Access(rec(0))
	c.Access(rec(stride))
	c.Access(rec(2 * stride)) // evicts block 0
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("eviction hook got %v", evicted)
	}
}

func TestInclusiveHierarchyInvariant(t *testing.T) {
	h := newTestHierarchy()
	h.MakeInclusive()
	rng := xrand.New(99)
	for i := 0; i < 50_000; i++ {
		h.Access(trace.Record{Gap: 1, Addr: rng.Uint64n(4096) * 64})
		if i%1000 != 0 {
			continue
		}
		// Invariant: every block in L1 or L2 is also in L3.
		for b := uint64(0); b < 4096; b++ {
			addr := b * 64
			if (h.L1.Contains(addr) || h.L2.Contains(addr)) && !h.L3.Contains(addr) {
				t.Fatalf("inclusion violated for block %d at step %d", b, i)
			}
		}
	}
}

func TestNonInclusiveHierarchyCanViolateInclusion(t *testing.T) {
	// Sanity check of the default (non-inclusive) mode: a block kept hot
	// in L1 (so its L3 recency never refreshes) eventually loses its L3
	// copy under streaming traffic while remaining L1-resident. This
	// guards against MakeInclusive becoming implicit default behaviour.
	h := newTestHierarchy()
	rng := xrand.New(7)
	next := uint64(1 << 20)
	violated := false
	for i := 0; i < 50_000 && !violated; i++ {
		if rng.Bool(0.8) {
			h.Access(trace.Record{Gap: 1, Addr: uint64(rng.Intn(2)) * 64})
		} else {
			h.Access(trace.Record{Gap: 1, Addr: next * 64})
			next++
		}
		for b := uint64(0); b < 2; b++ {
			addr := b * 64
			if (h.L1.Contains(addr) || h.L2.Contains(addr)) && !h.L3.Contains(addr) {
				violated = true
			}
		}
	}
	if !violated {
		t.Fatal("non-inclusive hierarchy never diverged; test workload too weak?")
	}
}

func TestInclusiveMissCountsDiffer(t *testing.T) {
	// The classic inclusion-victim pattern: blocks hot in L1 stop
	// refreshing their L3 recency (their hits never reach L3), the
	// streaming traffic evicts them from L3, and back-invalidation then
	// costs extra L1 misses that the non-inclusive hierarchy avoids.
	runMisses := func(inclusive bool) uint64 {
		h := newTestHierarchy()
		if inclusive {
			h.MakeInclusive()
		}
		rng := xrand.New(11)
		next := uint64(1 << 20)
		for i := 0; i < 60_000; i++ {
			if rng.Bool(0.8) {
				h.Access(trace.Record{Gap: 1, Addr: uint64(rng.Intn(2)) * 64}) // hot pair
			} else {
				h.Access(trace.Record{Gap: 1, Addr: next * 64}) // L3-thrashing stream
				next++
			}
		}
		return h.L1.Stats.Misses
	}
	ni, inc := runMisses(false), runMisses(true)
	if inc <= ni {
		t.Fatalf("inclusive L1 misses %d not above non-inclusive %d", inc, ni)
	}
}
