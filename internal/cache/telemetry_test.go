package cache

import (
	"testing"

	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// TestTelemetryMirrorsStats drives a cache with and without a sink attached
// and checks that (a) the simulation outcome is identical and (b) the sink's
// counters agree with the cache's own Stats.
func TestTelemetryMirrorsStats(t *testing.T) {
	cfg := tinyConfig()
	sets := cfg.Sets()
	addrs := []uint64{0, 64, 512, 0, 1024, 64, 1536, 0, 2048, 512}

	plain := New(cfg, newLRUTest(sets, cfg.Ways))
	var sink telemetry.Sink
	instr := New(cfg, newLRUTest(sets, cfg.Ways))
	instr.SetTelemetry(&sink)

	for i, a := range addrs {
		r := trace.Record{Gap: 1, Addr: a, Write: i%3 == 0}
		if plain.Access(r) != instr.Access(r) {
			t.Fatalf("access %d (%#x): outcome diverged with telemetry attached", i, a)
		}
	}
	if plain.Stats != instr.Stats {
		t.Fatalf("stats diverged: plain %+v, instrumented %+v", plain.Stats, instr.Stats)
	}

	s := instr.Stats
	if sink.Hits.Load() != s.Hits || sink.Misses.Load() != s.Misses {
		t.Errorf("sink hits/misses = %d/%d, stats %d/%d",
			sink.Hits.Load(), sink.Misses.Load(), s.Hits, s.Misses)
	}
	if sink.Evictions.Load() != s.Evictions || sink.Writebacks.Load() != s.Writebacks {
		t.Errorf("sink evictions/writebacks = %d/%d, stats %d/%d",
			sink.Evictions.Load(), sink.Writebacks.Load(), s.Evictions, s.Writebacks)
	}
	if sink.Fills.Load() != s.Misses {
		t.Errorf("sink fills = %d, want one per miss (%d)", sink.Fills.Load(), s.Misses)
	}
	if sink.Accesses() != s.Accesses {
		t.Errorf("sink accesses = %d, stats %d", sink.Accesses(), s.Accesses)
	}
	if sink.HitReuse.Count() != s.Hits {
		t.Errorf("HitReuse count = %d, want one observation per hit (%d)",
			sink.HitReuse.Count(), s.Hits)
	}
	if sink.EvictAge.Count() != s.Evictions || sink.EvictLife.Count() != s.Evictions {
		t.Errorf("EvictAge/EvictLife counts = %d/%d, want one per eviction (%d)",
			sink.EvictAge.Count(), sink.EvictLife.Count(), s.Evictions)
	}
}

func TestCacheResetStatsResetsSink(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, newLRUTest(cfg.Sets(), cfg.Ways))
	var sink telemetry.Sink
	c.SetTelemetry(&sink)

	c.Access(rec(0))
	c.Access(rec(64))
	c.ResetStats()
	if sink.Accesses() != 0 {
		t.Fatalf("sink not reset with stats: %d accesses", sink.Accesses())
	}
	// The reuse clock must survive the reset: a hit on the pre-reset fill of
	// address 0 still yields a well-formed (positive) reuse interval.
	c.Access(rec(0))
	if sink.Hits.Load() != 1 || sink.HitReuse.Count() != 1 {
		t.Fatalf("post-reset hit not recorded: hits=%d reuse=%d",
			sink.Hits.Load(), sink.HitReuse.Count())
	}
}

// bypassTestPolicy bypasses every miss in a full set.
type bypassTestPolicy struct{ lruTestPolicy }

func (p *bypassTestPolicy) ShouldBypass(uint32, trace.Record) bool { return true }

func TestTelemetryBypass(t *testing.T) {
	cfg := tinyConfig()
	c := New(cfg, &bypassTestPolicy{*newLRUTest(cfg.Sets(), cfg.Ways)})
	var sink telemetry.Sink
	c.SetTelemetry(&sink)

	// Fill set 0 (two ways), then miss into the full set: must bypass.
	c.Access(rec(0))
	c.Access(rec(512))
	c.Access(rec(1024))
	if sink.Bypasses.Load() != 1 {
		t.Errorf("bypasses = %d, want 1", sink.Bypasses.Load())
	}
	if sink.Evictions.Load() != 0 || sink.Fills.Load() != 2 {
		t.Errorf("evictions/fills = %d/%d, want 0/2", sink.Evictions.Load(), sink.Fills.Load())
	}
}

func TestReplayStreamTelMatchesReplayStream(t *testing.T) {
	cfg := tinyConfig()
	var stream []trace.Record
	for i := 0; i < 200; i++ {
		stream = append(stream, rec(uint64(i%7)*64*11))
	}
	warm := 50
	plain := ReplayStream(stream, cfg, newLRUTest(cfg.Sets(), cfg.Ways), warm)
	var sink telemetry.Sink
	got := ReplayStreamTel(stream, cfg, newLRUTest(cfg.Sets(), cfg.Ways), warm, &sink)
	if plain != got {
		t.Fatalf("replay stats diverged with telemetry: %+v vs %+v", plain, got)
	}
	if sink.Accesses() != got.Accesses {
		t.Errorf("sink accesses = %d, want measurement window only (%d)",
			sink.Accesses(), got.Accesses)
	}
	if sink.Hits.Load() != got.Hits || sink.Misses.Load() != got.Misses {
		t.Errorf("sink hits/misses = %d/%d, want %d/%d",
			sink.Hits.Load(), sink.Misses.Load(), got.Hits, got.Misses)
	}
}

func TestHierarchySetTelemetry(t *testing.T) {
	mk := func(cfg Config) *Cache { return New(cfg, newLRUTest(cfg.Sets(), cfg.Ways)) }
	h := NewHierarchy(mk(L1Config), mk(L2Config), mk(L3Config))
	var l1, l3 telemetry.Sink
	h.SetTelemetry(&l1, nil, &l3)

	for i := 0; i < 100; i++ {
		h.Access(rec(uint64(i) * 64))
	}
	if l1.Accesses() != h.L1.Stats.Accesses {
		t.Errorf("L1 sink accesses = %d, stats %d", l1.Accesses(), h.L1.Stats.Accesses)
	}
	if h.L2.Telemetry() != nil {
		t.Error("L2 sink unexpectedly attached")
	}
	if l3.Accesses() != h.L3.Stats.Accesses {
		t.Errorf("L3 sink accesses = %d, stats %d", l3.Accesses(), h.L3.Stats.Accesses)
	}
}
