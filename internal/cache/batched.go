package cache

import (
	"math/bits"

	"gippr/internal/batchreplay"
	"gippr/internal/plrutree"
)

// treeExposer is the accessor the tree-PLRU policy family provides for its
// per-set trees (policy.PLRU and policy.GIPPR both have it). The batched
// fast path uses it to seed the kernel's packed state words from the policy
// and to write the final state back, so a kernel replay is equivalent to the
// scalar path even for callers that reuse a policy object across replays —
// the policy sees exactly the tree mutations Cache.Access would have caused.
type treeExposer interface {
	Tree(set uint32) *plrutree.Tree
}

// PackedReplay is an engaged batched fast path for one (geometry, policy)
// pair: the kernel plus the bookkeeping needed to keep the policy object's
// own state coherent. Obtain one with NewPackedReplay; call Finish after the
// last access to write replacement state back to the policy.
type PackedReplay struct {
	K    *batchreplay.Kernel
	pol  treeExposer
	sets int
}

// NewPackedReplay builds a batchreplay kernel modeling cfg under pol. It
// engages only when the policy opts in via batchreplay.Packable (and is not
// also a Bypasser — bypass decisions are outside the kernel's model), the
// vector matches the geometry, and the associativity is in the packed-tree
// domain; ok=false means the caller must take the scalar path. The paths
// are interchangeable: Stats, telemetry events and final policy state are
// bit-identical either way.
func NewPackedReplay(cfg Config, pol Policy) (*PackedReplay, bool) {
	pk, ok := pol.(batchreplay.Packable)
	if !ok {
		return nil, false
	}
	if _, bypass := pol.(Bypasser); bypass {
		return nil, false
	}
	vec, ok := pk.PackedIPV()
	if !ok {
		return nil, false
	}
	te, ok := pol.(treeExposer)
	if !ok || !batchreplay.Supported(cfg.Ways) || len(vec) != cfg.Ways+1 {
		return nil, false
	}
	sets := cfg.Sets()
	var sampled []bool
	if cfg.SampleShift > 0 {
		sampled = make([]bool, sets)
		for set := 0; set < sets; set++ {
			sampled[set] = cfg.InSample(uint32(set))
		}
	}
	blockShift := uint(bits.TrailingZeros(uint(cfg.BlockBytes)))
	k := batchreplay.New(sets, cfg.Ways, blockShift, sampled, vec)
	for set := 0; set < sets; set++ {
		k.SetPLRUBits(set, te.Tree(uint32(set)).Bits())
	}
	return &PackedReplay{K: k, pol: te, sets: sets}, true
}

// Finish writes the kernel's final tree-PLRU state back into the policy,
// leaving the policy object exactly as a scalar replay would have.
func (p *PackedReplay) Finish() {
	for set := 0; set < p.sets; set++ {
		p.pol.Tree(uint32(set)).SetBits(p.K.PLRUBits(set))
	}
}
