package plrutree

import (
	"testing"
	"testing/quick"

	"gippr/internal/xrand"
)

// refTree is an independent, deliberately naive implementation of the
// paper's Figures 5-9 pseudocode, used to cross-check the bit-twiddled Tree.
// Nodes are a slice indexed 1..k-1 of ints.
type refTree struct {
	k    int
	bits []int // bits[n] for 1 <= n < k
}

func newRef(k int) *refTree { return &refTree{k: k, bits: make([]int, k)} }

func (r *refTree) victim() int {
	p := 1
	for p < r.k {
		p = 2*p + r.bits[p]
	}
	return p - r.k
}

func (r *refTree) promote(w int) {
	p := r.k + w
	for p > 1 {
		parent := p / 2
		if p%2 == 0 { // left child
			r.bits[parent] = 1
		} else {
			r.bits[parent] = 0
		}
		p = parent
	}
}

func (r *refTree) position(w int) int {
	p := r.k + w
	x, i := 0, 0
	for p > 1 {
		parent := p / 2
		b := r.bits[parent]
		if p%2 == 0 {
			b = 1 - b
		}
		x |= b << i
		i++
		p = parent
	}
	return x
}

func (r *refTree) setPosition(w, x int) {
	p := r.k + w
	i := 0
	for p > 1 {
		parent := p / 2
		b := (x >> i) & 1
		if p%2 == 0 {
			b = 1 - b
		}
		r.bits[parent] = b
		p = parent
		i++
	}
}

var testedKs = []int{2, 4, 8, 16, 32, 64}

func TestNewPanics(t *testing.T) {
	for _, k := range []int{0, 1, 3, 6, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestInitialState(t *testing.T) {
	for _, k := range testedKs {
		tr := New(k)
		if tr.Victim() != 0 {
			t.Fatalf("k=%d: initial victim %d", k, tr.Victim())
		}
		if tr.Position(0) != k-1 {
			t.Fatalf("k=%d: way 0 initial position %d, want %d", k, tr.Position(0), k-1)
		}
	}
}

func TestPromoteMakesPMRU(t *testing.T) {
	for _, k := range testedKs {
		tr := New(k)
		for w := 0; w < k; w++ {
			tr.Promote(w)
			if got := tr.Position(w); got != 0 {
				t.Fatalf("k=%d: after Promote(%d) position is %d", k, w, got)
			}
			if v := tr.Victim(); v == w {
				t.Fatalf("k=%d: victim is the just-promoted way %d", k, w)
			}
		}
	}
}

func TestSetPositionRoundTrip(t *testing.T) {
	for _, k := range testedKs {
		tr := New(k)
		for w := 0; w < k; w++ {
			for x := 0; x < k; x++ {
				tr.SetPosition(w, x)
				if got := tr.Position(w); got != x {
					t.Fatalf("k=%d: SetPosition(%d,%d) read back %d", k, w, x, got)
				}
			}
		}
	}
}

func TestVictimHasMaxPosition(t *testing.T) {
	for _, k := range testedKs {
		tr := New(k)
		rng := xrand.New(uint64(k) * 7)
		for i := 0; i < 200; i++ {
			tr.SetPosition(rng.Intn(k), rng.Intn(k))
			v := tr.Victim()
			if got := tr.Position(v); got != k-1 {
				t.Fatalf("k=%d: victim %d has position %d", k, v, got)
			}
		}
	}
}

func TestPositionsAlwaysPermutation(t *testing.T) {
	for _, k := range testedKs {
		tr := New(k)
		rng := xrand.New(uint64(k) * 13)
		check := func() {
			seen := make([]bool, k)
			for _, p := range tr.Positions() {
				if p < 0 || p >= k || seen[p] {
					t.Fatalf("k=%d: positions not a permutation: %v", k, tr.Positions())
				}
				seen[p] = true
			}
		}
		check()
		for i := 0; i < 500; i++ {
			switch rng.Intn(3) {
			case 0:
				tr.Promote(rng.Intn(k))
			case 1:
				tr.SetPosition(rng.Intn(k), rng.Intn(k))
			case 2:
				tr.SetBits(rng.Uint64())
			}
			check()
		}
	}
}

func TestWayAtInverse(t *testing.T) {
	for _, k := range testedKs {
		tr := New(k)
		rng := xrand.New(uint64(k) * 17)
		for i := 0; i < 200; i++ {
			tr.SetBits(rng.Uint64())
			for x := 0; x < k; x++ {
				w := tr.WayAt(x)
				if got := tr.Position(w); got != x {
					t.Fatalf("k=%d: WayAt(%d)=%d but Position(%d)=%d", k, x, w, w, got)
				}
			}
		}
	}
}

func TestAgainstReference(t *testing.T) {
	for _, k := range testedKs {
		tr := New(k)
		ref := newRef(k)
		rng := xrand.New(uint64(k) * 31)
		for i := 0; i < 2000; i++ {
			switch rng.Intn(3) {
			case 0:
				w := rng.Intn(k)
				tr.Promote(w)
				ref.promote(w)
			case 1:
				w, x := rng.Intn(k), rng.Intn(k)
				tr.SetPosition(w, x)
				ref.setPosition(w, x)
			case 2:
				if tr.Victim() != ref.victim() {
					t.Fatalf("k=%d step %d: victim %d != ref %d", k, i, tr.Victim(), ref.victim())
				}
			}
			for w := 0; w < k; w++ {
				if tr.Position(w) != ref.position(w) {
					t.Fatalf("k=%d step %d: position(%d) %d != ref %d",
						k, i, w, tr.Position(w), ref.position(w))
				}
			}
		}
	}
}

func TestPromoteEqualsSetPositionZero(t *testing.T) {
	for _, k := range testedKs {
		a, b := New(k), New(k)
		rng := xrand.New(uint64(k) * 37)
		for i := 0; i < 300; i++ {
			bits := rng.Uint64()
			w := rng.Intn(k)
			a.SetBits(bits)
			b.SetBits(bits)
			a.Promote(w)
			b.SetPosition(w, 0)
			if a.Bits() != b.Bits() {
				t.Fatalf("k=%d: Promote(%d) bits %x != SetPosition(,0) bits %x", k, w, a.Bits(), b.Bits())
			}
		}
	}
}

func TestSetPositionTouchesAtMostLogKBits(t *testing.T) {
	for _, k := range testedKs {
		logk := 0
		for 1<<logk < k {
			logk++
		}
		tr := New(k)
		rng := xrand.New(uint64(k) * 41)
		for i := 0; i < 300; i++ {
			tr.SetBits(rng.Uint64())
			before := tr.Bits()
			tr.SetPosition(rng.Intn(k), rng.Intn(k))
			diff := before ^ tr.Bits()
			n := 0
			for d := diff; d != 0; d &= d - 1 {
				n++
			}
			if n > logk {
				t.Fatalf("k=%d: SetPosition changed %d bits, max %d", k, n, logk)
			}
		}
	}
}

func TestSetBitsMasks(t *testing.T) {
	tr := New(4)
	tr.SetBits(^uint64(0))
	if tr.Bits() != 0b1110 {
		t.Fatalf("SetBits did not mask: %b", tr.Bits())
	}
	tr.Reset()
	if tr.Bits() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestPaperFig8Example(t *testing.T) {
	// Figure 8 is a 16-way tree with given internal bits; rather than
	// transcribe the (typeset-mangled) figure, verify its stated property
	// on arbitrary states: if the root bit is 1, every block in the right
	// half has the MSB of its position set, i.e. position >= k/2.
	f := func(raw uint64) bool {
		tr := New(16)
		tr.SetBits(raw)
		root := (tr.Bits() >> 1) & 1
		for w := 8; w < 16; w++ { // right-half leaves
			pos := tr.Position(w)
			msb := pos >> 3
			if root == 1 && msb != 1 {
				return false
			}
			if root == 0 && msb != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetPositionPanicsOutOfRange(t *testing.T) {
	tr := New(8)
	for _, x := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetPosition(0,%d) did not panic", x)
				}
			}()
			tr.SetPosition(0, x)
		}()
	}
}

func TestWayAtPanicsOutOfRange(t *testing.T) {
	tr := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	tr.WayAt(8)
}

func TestStringHasLevels(t *testing.T) {
	tr := New(8)
	s := tr.String()
	// 8-way: levels of 1, 2 and 4 bits.
	if len(s) != 1+1+2+1+4 {
		t.Fatalf("String = %q", s)
	}
}

func BenchmarkPromote(b *testing.B) {
	tr := New(16)
	for i := 0; i < b.N; i++ {
		tr.Promote(i & 15)
	}
}

func BenchmarkSetPosition(b *testing.B) {
	tr := New(16)
	for i := 0; i < b.N; i++ {
		tr.SetPosition(i&15, (i>>4)&15)
	}
}

func BenchmarkPosition(b *testing.B) {
	tr := New(16)
	s := 0
	for i := 0; i < b.N; i++ {
		s += tr.Position(i & 15)
	}
	_ = s
}

func BenchmarkVictim(b *testing.B) {
	tr := New(16)
	s := 0
	for i := 0; i < b.N; i++ {
		s += tr.Victim()
	}
	_ = s
}
