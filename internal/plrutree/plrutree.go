// Package plrutree implements tree-based PseudoLRU state for one cache set
// (Handy, "The Cache Memory Book"; paper Section 3).
//
// A set of k ways (k a power of two) is tracked with a complete binary tree
// of k-1 one-bit internal nodes stored as a bitmask, so a 16-way set needs
// exactly 15 bits — the storage claim the paper's overhead argument rests on.
// The package provides the four algorithms of the paper's Figures 5, 6, 7
// and 9:
//
//   - Victim (find_plru): walk from the root following the plru bits
//     (1 = right, 0 = left) to the PseudoLRU leaf;
//   - Promote: set the bits on the leaf-to-root path to point away from the
//     block, making it the PMRU block (position 0);
//   - Position (find_index): read a block's position in the PseudoLRU
//     recency stack from the bits on its path;
//   - SetPosition (set_index): write the bits on a block's path so that the
//     block occupies a chosen position — the enabling primitive for
//     PseudoLRU insertion/promotion vectors.
//
// Positions are in 0 (PMRU) .. k-1 (PLRU, the victim). A key structural
// property, exploited by tests and by the GIPPR policy, is that the k
// blocks' positions always form a permutation of 0..k-1, even though only
// k-1 bits of state exist: sibling subtrees split every position range in
// half according to their parent bit.
//
// Node indexing is the standard implicit heap layout: the root is node 1,
// node n's children are 2n and 2n+1, and leaf k+w corresponds to way w.
package plrutree

import (
	"fmt"
	"math/bits"
)

// MaxWays is the largest supported associativity: the k-1 internal-node bits
// must fit in a uint64.
const MaxWays = 64

// Tree holds the PseudoLRU bits for one cache set. The zero value is not
// usable; construct with New. Tree is a small value type (16 bytes) intended
// to be embedded per set by replacement policies.
type Tree struct {
	k    uint32 // associativity, power of two
	logk uint32 // log2(k)
	bits uint64 // bit n (1 <= n < k) is the plru bit of internal node n
}

// New returns a PseudoLRU tree for a k-way set. k must be a power of two in
// 2..MaxWays. All plru bits start at zero, so the initial victim is way 0
// (every walk goes left) and way 0 initially holds position k-1.
func New(k int) Tree {
	if k < 2 || k > MaxWays || k&(k-1) != 0 {
		panic(fmt.Sprintf("plrutree: associativity %d is not a power of two in 2..%d", k, MaxWays))
	}
	return Tree{k: uint32(k), logk: uint32(bits.TrailingZeros32(uint32(k)))}
}

// K returns the associativity.
func (t *Tree) K() int { return int(t.k) }

// Bits returns the raw plru bitmask (bit n = internal node n, 1 <= n < k).
func (t *Tree) Bits() uint64 { return t.bits }

// SetBits overwrites the raw plru bitmask; bits outside 1..k-1 are masked
// off. Useful for tests and for snapshot/restore.
func (t *Tree) SetBits(b uint64) {
	mask := uint64(1)<<t.k - 2 // bits 1..k-1
	t.bits = b & mask
}

// Reset clears all plru bits.
func (t *Tree) Reset() { t.bits = 0 }

func (t *Tree) bit(n uint32) uint64 { return (t.bits >> n) & 1 }

func (t *Tree) setBit(n uint32, v uint64) {
	t.bits = (t.bits &^ (1 << n)) | (v&1)<<n
}

// Victim implements find_plru (Figure 5): starting at the root, follow each
// node's plru bit (1 = right child, 0 = left child) to a leaf and return its
// way. The returned way always has Position == k-1.
func (t *Tree) Victim() int {
	p := uint32(1)
	for p < t.k {
		p = 2*p + uint32(t.bit(p))
	}
	return int(p - t.k)
}

// Promote implements promote (Figure 6): set every plru bit on way w's
// leaf-to-root path to lead away from w, making w the PMRU block
// (Position == 0). Only log2(k) bits change.
func (t *Tree) Promote(w int) {
	p := t.k + uint32(w)
	for p > 1 {
		parent := p >> 1
		// If p is a left child (even), the parent bit must be 1 to lead
		// away; if a right child (odd), it must be 0.
		t.setBit(parent, uint64(^p&1))
		p = parent
	}
}

// Position implements find_index (Figure 7): read way w's position in the
// PseudoLRU recency stack. Bit i of the position (i counted from the leaf's
// parent upward, so the root contributes the most significant bit) is the
// parent's plru bit if the i-th path node is a right child, else its
// complement. Position k-1 is the victim; position 0 is the PMRU block.
func (t *Tree) Position(w int) int {
	p := t.k + uint32(w)
	x := uint32(0)
	for i := uint32(0); p > 1; i++ {
		parent := p >> 1
		b := uint32(t.bit(parent))
		if p&1 == 0 { // left child: complement
			b ^= 1
		}
		x |= b << i
		p = parent
	}
	return int(x)
}

// SetPosition implements set_index (Figure 9): write the plru bits on way
// w's path so that w occupies position x in the PseudoLRU recency stack.
// Only log2(k) bits change, but other blocks' positions may change
// drastically as a side effect — the property that makes PseudoLRU
// insertion/promotion different from true-LRU IPV moves, and the reason the
// paper evolves separate vectors for GIPPR.
func (t *Tree) SetPosition(w, x int) {
	if x < 0 || x >= int(t.k) {
		panic(fmt.Sprintf("plrutree: position %d out of range 0..%d", x, t.k-1))
	}
	p := t.k + uint32(w)
	ux := uint32(x)
	for i := uint32(0); p > 1; i++ {
		parent := p >> 1
		b := uint64(ux>>i) & 1
		if p&1 == 0 { // left child: store complement
			b ^= 1
		}
		t.setBit(parent, b)
		p = parent
	}
}

// Positions returns the positions of all k ways. The result is always a
// permutation of 0..k-1.
func (t *Tree) Positions() []int {
	ps := make([]int, t.k)
	for w := range ps {
		ps[w] = t.Position(w)
	}
	return ps
}

// WayAt returns the way currently occupying position x, the inverse of
// Position. It walks the tree once (O(log k)): at each internal node the
// child containing position-bit b is chosen by comparing b with the node's
// plru bit, consuming position bits from most significant (root) to least.
func (t *Tree) WayAt(x int) int {
	if x < 0 || x >= int(t.k) {
		panic(fmt.Sprintf("plrutree: position %d out of range 0..%d", x, t.k-1))
	}
	p := uint32(1)
	for i := int(t.logk) - 1; i >= 0; i-- {
		b := uint64(x>>uint(i)) & 1
		// A right child's position bit equals the parent bit; a left
		// child's is the complement. So to realize bit b we go right when
		// b == parent bit, left otherwise.
		if b == t.bit(p) {
			p = 2*p + 1
		} else {
			p = 2 * p
		}
	}
	return int(p - t.k)
}

// String renders the bits grouped by tree level, for debugging.
func (t *Tree) String() string {
	s := ""
	for level, start := 0, uint32(1); start < t.k; level, start = level+1, start*2 {
		if level > 0 {
			s += " "
		}
		for n := start; n < start*2; n++ {
			s += fmt.Sprintf("%d", t.bit(n))
		}
	}
	return s
}
