package plrutree

import (
	"testing"

	"gippr/internal/xrand"
)

// TestNewPackedRejectsBadAssociativity mirrors New's validation: the packed
// tables share the same k domain.
func TestNewPackedRejectsBadAssociativity(t *testing.T) {
	for _, k := range []int{-4, 0, 1, 3, 6, 65, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPacked(%d) did not panic", k)
				}
			}()
			NewPacked(k)
		}()
	}
}

// TestPackedMatchesTreeExhaustive checks Set/Promote/Victim/Position against
// Tree over every reachable raw state word for the small geometries, and
// every (way, position) pair. 2^(k-1) states x k ways x k positions stays
// cheap through k=8 and covers the full state space, not just states
// reachable from zero.
func TestPackedMatchesTreeExhaustive(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		p := NewPacked(k)
		if p.K() != k {
			t.Fatalf("k=%d: K() = %d", k, p.K())
		}
		tr := New(k)
		states := uint64(1) << (k - 1) // bits 1..k-1
		for s := uint64(0); s < states; s++ {
			word := s << 1
			tr.SetBits(word)
			if got, want := p.Victim(word), tr.Victim(); got != want {
				t.Fatalf("k=%d word=%#x: Victim = %d, Tree says %d", k, word, got, want)
			}
			for w := 0; w < k; w++ {
				tr.SetBits(word)
				if got, want := p.Position(word, w), tr.Position(w); got != want {
					t.Fatalf("k=%d word=%#x: Position(%d) = %d, Tree says %d", k, word, w, got, want)
				}
				for x := 0; x < k; x++ {
					tr.SetBits(word)
					tr.SetPosition(w, x)
					if got, want := p.Set(word, w, x), tr.Bits(); got != want {
						t.Fatalf("k=%d word=%#x: Set(%d,%d) = %#x, Tree says %#x", k, word, w, x, got, want)
					}
				}
				tr.SetBits(word)
				tr.Promote(w)
				if got, want := p.Promote(word, w), tr.Bits(); got != want {
					t.Fatalf("k=%d word=%#x: Promote(%d) = %#x, Tree says %#x", k, word, w, got, want)
				}
			}
		}
	}
}

// TestPackedMatchesTreeRandom samples the larger geometries: random raw
// states, all ways, random positions. The long mixed-operation sequences
// live in the differential battery (differential_test.go); this pins the
// per-primitive equivalence in isolation.
func TestPackedMatchesTreeRandom(t *testing.T) {
	rounds := 2_000
	if testing.Short() {
		rounds = 200
	}
	for _, k := range diffGeometries {
		p := NewPacked(k)
		tr := New(k)
		rng := xrand.New(0x9ACCED ^ uint64(k))
		for i := 0; i < rounds; i++ {
			word := rng.Uint64()
			tr.SetBits(word)
			word = tr.Bits() // masked to the legal bit range
			if got, want := p.Victim(word), tr.Victim(); got != want {
				t.Fatalf("k=%d word=%#x: Victim = %d, Tree says %d", k, word, got, want)
			}
			for w := 0; w < k; w++ {
				if got, want := p.Position(word, w), tr.Position(w); got != want {
					t.Fatalf("k=%d word=%#x: Position(%d) = %d, Tree says %d", k, word, w, got, want)
				}
			}
			w, x := rng.Intn(k), rng.Intn(k)
			tr.SetPosition(w, x)
			if got, want := p.Set(word, w, x), tr.Bits(); got != want {
				t.Fatalf("k=%d word=%#x: Set(%d,%d) = %#x, Tree says %#x", k, word, w, x, got, want)
			}
		}
	}
}
