package plrutree

// Packed evaluates the four tree-PLRU primitives directly on a raw plru
// bitmask (the uint64 Tree.Bits representation) without per-node walks that
// branch on child direction. It exists for the batched replay kernel
// (package batchreplay), which keeps one uint64 of replacement state per set
// and needs Victim/SetPosition to be a handful of shifts, masks and table
// lookups.
//
// The construction leans on a structural fact of the implicit-heap layout:
// the set of internal nodes on way w's leaf-to-root path depends only on
// (k, w), not on the current state. SetPosition(w, x) always rewrites
// exactly those log2(k) bits to a value determined by (w, x) alone — see
// Tree.SetPosition, whose stores never read the old state. So a Packed
// precomputes, per way, the path mask, and per (way, position), the path
// bits, making set_index a single  word&^mask | vals  expression. The
// tables are filled by running the scalar Tree on a scratch instance, so
// Packed agrees with Tree by construction rather than by re-derivation;
// the differential battery in differential_test.go then checks that
// agreement against the independent pointer-based reference as well.
//
// A Packed is immutable after construction and safe for concurrent use; the
// state word itself is owned by the caller.
type Packed struct {
	k    uint32
	logk uint32
	// mask[w] has a 1 for every internal node on way w's leaf-to-root path.
	mask []uint64
	// vals[w*k+x] is the value of those path bits that places way w at
	// position x (all other bits zero).
	vals []uint64
}

// NewPacked builds the packed-operation tables for a k-way set. k must be a
// power of two in 2..MaxWays (the same constraint as New, which performs the
// validation).
func NewPacked(k int) *Packed {
	t := New(k)
	p := &Packed{
		k:    t.k,
		logk: t.logk,
		mask: make([]uint64, k),
		vals: make([]uint64, k*k),
	}
	for w := 0; w < k; w++ {
		var m uint64
		for n := uint32(k) + uint32(w); n > 1; n >>= 1 {
			m |= 1 << (n >> 1)
		}
		p.mask[w] = m
		for x := 0; x < k; x++ {
			t.SetBits(0)
			t.SetPosition(w, x)
			p.vals[w*k+x] = t.Bits()
		}
	}
	return p
}

// K returns the associativity the tables were built for.
func (p *Packed) K() int { return int(p.k) }

// Set returns word with way w's path bits rewritten so w occupies position
// x — set_index (Tree.SetPosition) as one mask-and-or. The caller must keep
// 0 <= w < k and 0 <= x < k; out-of-range arguments index past the tables
// and panic on the slice bounds.
func (p *Packed) Set(word uint64, w, x int) uint64 {
	return word&^p.mask[w] | p.vals[w*int(p.k)+x]
}

// Promote returns word with way w made the PMRU block — promote (Figure 6)
// is set_index to position 0.
func (p *Packed) Promote(word uint64, w int) uint64 {
	return word&^p.mask[w] | p.vals[w*int(p.k)]
}

// Victim returns the PseudoLRU way of word — find_plru (Figure 5) as a
// branch-free root-to-leaf walk: each step shifts the node index up and ors
// in the node's plru bit.
func (p *Packed) Victim(word uint64) int {
	n := uint64(1)
	for i := uint32(0); i < p.logk; i++ {
		n = n<<1 | (word>>n)&1
	}
	return int(n) - int(p.k)
}

// Position returns way w's recency-stack position in word — find_index
// (Figure 7) with the left-child complement folded into an xor instead of a
// branch: a left child (even node index) reads its parent bit inverted.
func (p *Packed) Position(word uint64, w int) int {
	n := p.k + uint32(w)
	x := uint32(0)
	for i := uint32(0); i < p.logk; i++ {
		parent := n >> 1
		x |= (uint32(word>>parent) ^ ^n) & 1 << i
		n = parent
	}
	return int(x)
}
