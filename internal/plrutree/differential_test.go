package plrutree

import (
	"testing"

	"gippr/internal/xrand"
)

// This file cross-checks Tree against a pointer-based recursive model that
// shares no structure with the bitmask implementation: no implicit heap
// indexing, no bit shifting, no iteration from leaf to root. Each internal
// node is a heap-allocated struct and every operation is expressed as
// top-down recursion over subtree leaf counts. The model and the production
// code can therefore only agree if both implement the paper's Figures 5-9
// semantics, not merely the same bit layout. (plrutree_test.go has a second,
// array-based reference that mirrors the pseudocode more literally.)

// pnode is one node of the recursive reference tree. Leaves have left ==
// right == nil and carry a way number; internal nodes carry the plru bit
// (0 = next victim is in the left subtree, 1 = right).
type pnode struct {
	left, right *pnode
	way         int // leaves only
	bit         int // internal nodes only
	leaves      int // number of ways under this node
}

// buildPtr returns the reference tree over ways [lo, lo+n).
func buildPtr(lo, n int) *pnode {
	if n == 1 {
		return &pnode{way: lo, leaves: 1}
	}
	return &pnode{
		left:   buildPtr(lo, n/2),
		right:  buildPtr(lo+n/2, n/2),
		leaves: n,
	}
}

func (p *pnode) isLeaf() bool { return p.left == nil }

// contains reports whether way w is a leaf of this subtree. Ways are laid
// out in order, so a range check suffices.
func (p *pnode) contains(w int) bool {
	lo := p.minWay()
	return lo <= w && w < lo+p.leaves
}

func (p *pnode) minWay() int {
	for !p.isLeaf() {
		p = p.left
	}
	return p.way
}

// victim follows the plru bits to the PseudoLRU leaf (Figure 5).
func (p *pnode) victim() int {
	if p.isLeaf() {
		return p.way
	}
	if p.bit == 1 {
		return p.right.victim()
	}
	return p.left.victim()
}

// promote points every bit on w's root-to-leaf path away from w (Figure 6).
func (p *pnode) promote(w int) {
	if p.isLeaf() {
		return
	}
	if p.left.contains(w) {
		p.bit = 1
		p.left.promote(w)
	} else {
		p.bit = 0
		p.right.promote(w)
	}
}

// position reads w's recency-stack position (Figure 7). The subtree not
// containing the victim path bit contributes a block of half positions: if w
// sits on the side the bit points at, its position is in the upper half.
func (p *pnode) position(w int) int {
	if p.isLeaf() {
		return 0
	}
	half := p.leaves / 2
	if p.left.contains(w) {
		return (1-p.bit)*half + p.left.position(w)
	}
	return p.bit*half + p.right.position(w)
}

// setPosition writes the bits on w's path so that w lands at position x
// (Figure 9).
func (p *pnode) setPosition(w, x int) {
	if p.isLeaf() {
		return
	}
	half := p.leaves / 2
	hi := x / half // 0 or 1: which half of the position range
	if p.left.contains(w) {
		p.bit = 1 - hi
		p.left.setPosition(w, x%half)
	} else {
		p.bit = hi
		p.right.setPosition(w, x%half)
	}
}

// wayAt inverts position: which way currently occupies position x.
func (p *pnode) wayAt(x int) int {
	if p.isLeaf() {
		return p.way
	}
	half := p.leaves / 2
	if x/half == p.bit {
		return p.right.wayAt(x % half)
	}
	return p.left.wayAt(x % half)
}

// diffGeometries is every supported power-of-two associativity; the paper's
// LLC uses 16 ways but the primitives must hold for all of them.
var diffGeometries = []int{2, 4, 8, 16, 32, 64}

// checkAgree compares every observable of the three implementations — the
// production Tree, the pointer-based reference, and the packed-word
// operations applied to word — after access i of the differential run and
// fails with the diverging index. word is the packed-state shadow the caller
// maintains with ops; it must equal the Tree's raw bits exactly, so the
// packed path proves bit-identity, not just observational equivalence.
func checkAgree(t *testing.T, k int, i int, op string, tr *Tree, ref *pnode, ops *Packed, word uint64) {
	t.Helper()
	if word != tr.Bits() {
		t.Fatalf("k=%d access %d (%s): packed word %#x != tree bits %#x",
			k, i, op, word, tr.Bits())
	}
	if got, want := tr.Victim(), ref.victim(); got != want {
		t.Fatalf("k=%d access %d (%s): Victim() = %d, reference tree says %d\nbits: %s",
			k, i, op, got, want, tr.String())
	}
	if got, want := ops.Victim(word), ref.victim(); got != want {
		t.Fatalf("k=%d access %d (%s): packed Victim = %d, reference tree says %d\nbits: %s",
			k, i, op, got, want, tr.String())
	}
	seen := make([]bool, k)
	for w := 0; w < k; w++ {
		got, want := tr.Position(w), ref.position(w)
		if got != want {
			t.Fatalf("k=%d access %d (%s): Position(%d) = %d, reference tree says %d\nbits: %s",
				k, i, op, w, got, want, tr.String())
		}
		if pg := ops.Position(word, w); pg != want {
			t.Fatalf("k=%d access %d (%s): packed Position(%d) = %d, reference tree says %d\nbits: %s",
				k, i, op, w, pg, want, tr.String())
		}
		if got < 0 || got >= k || seen[got] {
			t.Fatalf("k=%d access %d (%s): positions are not a permutation (way %d -> %d)\nbits: %s",
				k, i, op, w, got, tr.String())
		}
		seen[got] = true
		if back := tr.WayAt(got); back != w {
			t.Fatalf("k=%d access %d (%s): WayAt(Position(%d)) = %d, want %d\nbits: %s",
				k, i, op, w, back, w, tr.String())
		}
		if back := ref.wayAt(got); back != w {
			t.Fatalf("k=%d access %d (%s): reference wayAt(position(%d)) = %d, want %d",
				k, i, op, w, back, w)
		}
	}
}

// TestDifferentialRandomSequence drives Tree and the pointer-based reference
// through the same long seeded random access sequence, checking every
// observable after every access. Any divergence reports the first failing
// access index so the offending prefix can be replayed.
func TestDifferentialRandomSequence(t *testing.T) {
	accesses := 10_000
	if testing.Short() {
		accesses = 1_000
	}
	for _, k := range diffGeometries {
		k := k
		t.Run(sizeName(k), func(t *testing.T) {
			t.Parallel()
			rng := xrand.New(0xD1FF + uint64(k))
			tr := New(k)
			ref := buildPtr(0, k)
			ops := NewPacked(k)
			var word uint64
			checkAgree(t, k, -1, "init", &tr, ref, ops, word)
			for i := 0; i < accesses; i++ {
				var op string
				switch rng.Intn(4) {
				case 0: // hit-style promotion of a random way
					w := rng.Intn(k)
					op = "promote"
					tr.Promote(w)
					ref.promote(w)
					word = ops.Promote(word, w)
				case 1: // miss-style: evict the victim, insert at a random position
					v := tr.Victim()
					x := rng.Intn(k)
					op = "victim+setpos"
					tr.SetPosition(v, x)
					ref.setPosition(v, x)
					word = ops.Set(word, v, x)
				case 2: // IPV-style: move a random way to a random position
					w, x := rng.Intn(k), rng.Intn(k)
					op = "setpos"
					tr.SetPosition(w, x)
					ref.setPosition(w, x)
					word = ops.Set(word, w, x)
				case 3: // promote the current PMRU block (idempotence probe)
					w := tr.WayAt(0)
					op = "repromote"
					tr.Promote(w)
					ref.promote(w)
					word = ops.Promote(word, w)
				}
				checkAgree(t, k, i, op, &tr, ref, ops, word)
			}
		})
	}
}

// TestDifferentialAdversarialBits additionally seeds the pair with random
// raw bit states (via SetBits and a matching recursive write) so agreement
// does not depend on states reachable from the zero tree alone.
func TestDifferentialAdversarialBits(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 40
	}
	for _, k := range diffGeometries {
		k := k
		t.Run(sizeName(k), func(t *testing.T) {
			t.Parallel()
			rng := xrand.New(0xBEEF + uint64(k))
			ops := NewPacked(k)
			for round := 0; round < rounds; round++ {
				raw := rng.Uint64()
				tr := New(k)
				tr.SetBits(raw)
				ref := buildPtr(0, k)
				loadBits(ref, &tr)
				word := tr.Bits()
				checkAgree(t, k, round, "setbits", &tr, ref, ops, word)
				// A few follow-up operations from the adversarial state.
				for i := 0; i < 8; i++ {
					w, x := rng.Intn(k), rng.Intn(k)
					tr.SetPosition(w, x)
					ref.setPosition(w, x)
					word = ops.Set(word, w, x)
					v := tr.Victim()
					tr.Promote(v)
					ref.promote(ref.victim())
					word = ops.Promote(word, v)
					checkAgree(t, k, round*8+i, "adversarial-followup", &tr, ref, ops, word)
				}
			}
		})
	}
}

// loadBits copies Tree's raw bit state into the reference tree by walking it
// in the same implicit-heap order New uses, keeping the copy trivially
// auditable without giving the reference any bit arithmetic of its own.
func loadBits(ref *pnode, tr *Tree) {
	var walk func(p *pnode, node uint32)
	walk = func(p *pnode, node uint32) {
		if p.isLeaf() {
			return
		}
		p.bit = int(tr.Bits() >> node & 1)
		walk(p.left, 2*node)
		walk(p.right, 2*node+1)
	}
	walk(ref, 1)
}

func sizeName(k int) string {
	return map[int]string{2: "k=2", 4: "k=4", 8: "k=8", 16: "k=16", 32: "k=32", 64: "k=64"}[k]
}
