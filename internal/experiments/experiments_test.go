package experiments

import (
	"strings"
	"testing"
)

func smokeLab() *Lab { return NewLab(Smoke) }

func TestScaleFromEnv(t *testing.T) {
	t.Setenv("GIPPR_SCALE", "smoke")
	if ScaleFromEnv().Name != "smoke" {
		t.Fatal("smoke not selected")
	}
	t.Setenv("GIPPR_SCALE", "full")
	if ScaleFromEnv().Name != "full" {
		t.Fatal("full not selected")
	}
	t.Setenv("GIPPR_SCALE", "")
	if ScaleFromEnv().Name != "default" {
		t.Fatal("default not selected")
	}
}

func TestStreamsBuiltOncePerWorkload(t *testing.T) {
	lab := smokeLab()
	w := lab.Suite()[0]
	a := lab.Streams(w)
	b := lab.Streams(w)
	if &a[0].Records[0] != &b[0].Records[0] {
		t.Fatal("streams rebuilt instead of memoized")
	}
	if len(a) != len(w.Phases) {
		t.Fatalf("%d streams for %d phases", len(a), len(w.Phases))
	}
}

func TestStreamsCarryInstructionGaps(t *testing.T) {
	lab := smokeLab()
	st := lab.Streams(lab.Suite()[0])[0]
	if len(st.Records) == 0 {
		t.Fatal("empty LLC stream")
	}
	var instrs uint64
	for _, r := range st.Records {
		if r.Gap == 0 {
			t.Fatal("zero-gap record in LLC stream")
		}
		instrs += uint64(r.Gap)
	}
	if instrs <= uint64(len(st.Records)) {
		t.Fatal("gaps do not accumulate skipped instructions")
	}
}

func TestMPKIMemoization(t *testing.T) {
	lab := smokeLab()
	w := lab.Suite()[1]
	a := lab.MPKI(SpecLRU, w)
	b := lab.MPKI(SpecLRU, w)
	if a != b {
		t.Fatal("memoized MPKI differs")
	}
	if a <= 0 {
		t.Fatalf("MPKI = %v for a memory-heavy workload", a)
	}
}

func TestSpeedupBaselineIsOne(t *testing.T) {
	lab := smokeLab()
	w := lab.Suite()[2]
	if got := lab.Speedup(SpecLRU, SpecLRU, w); got != 1 {
		t.Fatalf("self-speedup = %v", got)
	}
}

func TestNormalizedMPKIInsensitiveGuard(t *testing.T) {
	lab := smokeLab()
	// gamess_like has essentially no post-warm LLC misses; the guard must
	// return exactly 1 for every policy.
	for _, w := range lab.Suite() {
		if w.Name != "gamess_like" {
			continue
		}
		if got := lab.NormalizedMPKI(SpecRandom, SpecLRU, w); got != 1 {
			t.Fatalf("insensitive workload normalized MPKI = %v", got)
		}
		if got := lab.OptimalNormalizedMPKI(SpecLRU, w); got != 1 {
			t.Fatalf("insensitive workload optimal normalized MPKI = %v", got)
		}
	}
}

func TestFoldAssignmentStable(t *testing.T) {
	if FoldOf("mcf_like") != 0 {
		t.Fatalf("mcf_like fold = %d", FoldOf("mcf_like"))
	}
	counts := make([]int, NumFolds)
	lab := smokeLab()
	for _, w := range lab.Suite() {
		f := FoldOf(w.Name)
		if f < 0 || f >= NumFolds {
			t.Fatalf("fold %d out of range", f)
		}
		counts[f]++
	}
	for f, c := range counts {
		if c < 5 {
			t.Fatalf("fold %d has only %d workloads", f, c)
		}
	}
}

func TestWNVectorAccessors(t *testing.T) {
	for _, name := range []string{"mcf_like", "povray_like"} {
		if WNVectors1(name) == nil {
			t.Fatal("nil WN vector")
		}
		if WNVectors2(name)[0] == nil || WNVectors2(name)[1] == nil {
			t.Fatal("nil WN pair")
		}
		for _, v := range WNVectors4(name) {
			if v == nil {
				t.Fatal("nil WN quad member")
			}
			if err := v.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTableOperations(t *testing.T) {
	tbl := &Table{
		Title:   "test",
		Columns: []string{"a", "b"},
		Rows: []TableRow{
			{Name: "x", Values: []float64{2, 1}},
			{Name: "y", Values: []float64{1, 4}},
		},
	}
	tbl.SortByColumn("a")
	if tbl.Rows[0].Name != "y" {
		t.Fatal("sort failed")
	}
	gm := tbl.GeoMeans()
	if gm[0] < 1.40 || gm[0] > 1.45 { // sqrt(2) ~ 1.414
		t.Fatalf("geomean a = %v", gm[0])
	}
	if got := tbl.Value("x", "b"); got != 1 {
		t.Fatalf("Value = %v", got)
	}
	if got := tbl.GeoMeanOver("b", func(r string) bool { return r == "y" }); got != 4 {
		t.Fatalf("subset geomean = %v", got)
	}
	out := tbl.Format()
	for _, want := range []string{"test", "geomean", "benchmark"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q", want)
		}
	}
}

func TestTablePanicsOnUnknown(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"a"}, Rows: []TableRow{{Name: "x", Values: []float64{1}}}}
	for _, f := range []func(){
		func() { tbl.SortByColumn("zz") },
		func() { tbl.Value("zz", "a") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFig2Fig3Structure(t *testing.T) {
	g2 := Fig2()
	if g2.K != 16 || len(g2.Solid) != 17 {
		t.Fatalf("Fig2 graph malformed: k=%d solid=%d", g2.K, len(g2.Solid))
	}
	g3 := Fig3()
	if g3.K != 16 {
		t.Fatal("Fig3 graph malformed")
	}
	if len(g3.Dashed) <= len(g2.Dashed)-1 {
		// The evolved vector has demotions, so it has shift-up edges LRU
		// lacks; just sanity-check both render.
		_ = g3
	}
	if !strings.Contains(g3.DOT("x"), "digraph") {
		t.Fatal("DOT render failed")
	}
}

func TestFig1Smoke(t *testing.T) {
	lab := smokeLab()
	res := Fig1(lab)
	if res.Samples != Smoke.RandomIPVs {
		t.Fatalf("samples = %d", res.Samples)
	}
	for i := 1; i < len(res.Sorted); i++ {
		if res.Sorted[i] < res.Sorted[i-1] {
			t.Fatal("curve not sorted")
		}
	}
	// The curve's dynamic range stays modest (the paper's random sample
	// tops out below +3%; ours below ~+10% — see EXPERIMENTS.md on the
	// fraction-beating-LRU divergence, which depends on the suite's
	// thrash weighting and the trace scale).
	if res.Summary.Max > 1.5 || res.Summary.Min < 0.5 {
		t.Fatalf("random-IPV speedups out of plausible range: [%v, %v]",
			res.Summary.Min, res.Summary.Max)
	}
	if !strings.Contains(res.Format(), "percentile") {
		t.Fatal("format")
	}
}

func TestFig4Smoke(t *testing.T) {
	lab := smokeLab()
	tbl := Fig4(lab)
	if len(tbl.Rows) != 29 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	if len(tbl.Columns) != 3 {
		t.Fatalf("columns %v", tbl.Columns)
	}
	for _, c := range tbl.Columns {
		g := tbl.GeoMean(c)
		if g < 0.5 || g > 2.5 {
			t.Fatalf("%s geomean speedup = %v: implausible", c, g)
		}
	}
}

func TestFig10And11Smoke(t *testing.T) {
	lab := smokeLab()
	t10 := Fig10(lab)
	if len(t10.Rows) != 29 || len(t10.Columns) != 4 {
		t.Fatalf("fig10 shape %dx%d", len(t10.Rows), len(t10.Columns))
	}
	// Optimal must have the lowest geomean normalized MPKI.
	gms := t10.GeoMeans()
	opt := gms[len(gms)-1]
	for _, g := range gms[:len(gms)-1] {
		if opt > g+1e-9 {
			t.Fatalf("optimal geomean %v above a real policy %v", opt, g)
		}
	}
	t11 := Fig11(lab)
	if len(t11.Rows) != 29 || len(t11.Columns) != 4 {
		t.Fatalf("fig11 shape %dx%d", len(t11.Rows), len(t11.Columns))
	}
}

func TestFig12Smoke(t *testing.T) {
	lab := smokeLab()
	tbl := Fig12(lab)
	if len(tbl.Columns) != 6 {
		t.Fatalf("columns %v", tbl.Columns)
	}
}

func TestFig13Smoke(t *testing.T) {
	lab := smokeLab()
	res := Fig13(lab)
	if len(res.Table.Rows) != 29 {
		t.Fatalf("rows %d", len(res.Table.Rows))
	}
	out := res.Format()
	if !strings.Contains(out, "memory-intensive subset") {
		t.Fatal("format")
	}
	for _, n := range res.MemoryIntensive {
		if res.Table.Value(n, "DRRIP") <= 1.01 {
			t.Fatalf("%s in subset but DRRIP speedup %v", n, res.Table.Value(n, "DRRIP"))
		}
	}
}

func TestOverheadReport(t *testing.T) {
	lab := smokeLab()
	s, err := Overhead(lab)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LRU", "DRRIP", "PDP", "4-DGIPPR"} {
		if !strings.Contains(s, want) {
			t.Fatalf("overhead report missing %q", want)
		}
	}
}

func TestVectorsLearnedSmoke(t *testing.T) {
	lab := smokeLab()
	res := VectorsLearned(lab)
	if err := res.Fresh.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.FreshFit <= 0 {
		t.Fatalf("fresh fitness %v", res.FreshFit)
	}
	if !strings.Contains(res.Format(), "WI-4-DGIPPR") {
		t.Fatal("format")
	}
}

func TestGAStreamsTruncated(t *testing.T) {
	lab := smokeLab()
	full := 0
	for _, w := range lab.Suite() {
		for _, s := range lab.Streams(w) {
			full += len(s.Records)
		}
	}
	ga := 0
	for _, s := range lab.GAStreams() {
		ga += len(s.Records)
	}
	if ga >= full {
		t.Fatalf("GA streams (%d) not smaller than full streams (%d)", ga, full)
	}
}
