package experiments

import (
	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/policy"
)

// SpecFromRegistry resolves a policy-registry name (the names gippr-sim's
// -policies flag and the job API accept) into a Spec keyed by that name.
// Unknown names wrap policy.ErrUnknownPolicy.
func SpecFromRegistry(name string) (Spec, error) {
	f, err := policy.Lookup(name)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Key: name, Label: f.Name, New: func(_ string, s, w int) cache.Policy {
		return f.New(s, w)
	}}, nil
}

// SpecForIPV returns a Spec simulating GIPPR driven by an explicit vector
// (gippr-sim's -ipv flag, the job API's "ipv" field). The memo key embeds
// the vector so distinct vectors never collide in a shared Lab.
func SpecForIPV(label string, v ipv.Vector) Spec {
	return Spec{Key: "gippr-ipv|" + v.String(), Label: label, New: func(_ string, s, w int) cache.Policy {
		g := policy.NewGIPPR(s, w, v)
		g.SetName(label)
		return g
	}}
}

// Baseline and prior-work policy specs. Labels follow the paper's figures.
var (
	SpecLRU = Spec{Key: "lru", Label: "LRU", New: func(_ string, s, w int) cache.Policy {
		return policy.NewTrueLRU(s, w)
	}}
	SpecPLRU = Spec{Key: "plru", Label: "PLRU", New: func(_ string, s, w int) cache.Policy {
		return policy.NewPLRU(s, w)
	}}
	SpecRandom = Spec{Key: "random", Label: "Random", New: func(_ string, s, w int) cache.Policy {
		return policy.NewRandom(s, w)
	}}
	SpecFIFO = Spec{Key: "fifo", Label: "FIFO", New: func(_ string, s, w int) cache.Policy {
		return policy.NewFIFO(s, w)
	}}
	SpecNRU = Spec{Key: "nru", Label: "NRU", New: func(_ string, s, w int) cache.Policy {
		return policy.NewNRU(s, w)
	}}
	SpecLIP = Spec{Key: "lip", Label: "LIP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewLIP(s, w)
	}}
	SpecBIP = Spec{Key: "bip", Label: "BIP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewBIP(s, w)
	}}
	SpecDIP = Spec{Key: "dip", Label: "DIP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewDIP(s, w)
	}}
	SpecSRRIP = Spec{Key: "srrip", Label: "SRRIP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewSRRIP(s, w)
	}}
	SpecBRRIP = Spec{Key: "brrip", Label: "BRRIP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewBRRIP(s, w)
	}}
	SpecDRRIP = Spec{Key: "drrip", Label: "DRRIP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewDRRIP(s, w)
	}}
	SpecPDP = Spec{Key: "pdp", Label: "PDP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewPDP(s, w)
	}}
	SpecSHiP = Spec{Key: "ship", Label: "SHiP", New: func(_ string, s, w int) cache.Policy {
		return policy.NewSHiP(s, w)
	}}
	SpecMSLRU = Spec{Key: "mslru", Label: "MSLRU", New: func(_ string, s, w int) cache.Policy {
		p := policy.NewMSLRU(s, w, policy.DefaultMSLRUStep(w))
		p.SetName("MSLRU")
		return p
	}}
)

// SpecGIPLR is the Figure 4 policy: the evolved IPV over true LRU.
var SpecGIPLR = Spec{Key: "giplr", Label: "GIPLR", New: func(_ string, s, w int) cache.Policy {
	return policy.NewGIPLR(s, w, GIPLRVector())
}}

// Workload-inclusive GIPPR variants (vectors evolved on the full suite).
var (
	SpecWIGIPPR = Spec{Key: "wi-gippr", Label: "WI-GIPPR", New: func(_ string, s, w int) cache.Policy {
		g := policy.NewGIPPR(s, w, WIVector1())
		g.SetName("WI-GIPPR")
		return g
	}}
	SpecWI2DGIPPR = Spec{Key: "wi-2dgippr", Label: "WI-2-DGIPPR", New: func(_ string, s, w int) cache.Policy {
		p := policy.NewDGIPPR2(s, w, WIVectors2())
		p.SetName("WI-2-DGIPPR")
		return p
	}}
	SpecWI4DGIPPR = Spec{Key: "wi-4dgippr", Label: "WI-4-DGIPPR", New: func(_ string, s, w int) cache.Policy {
		p := policy.NewDGIPPR4(s, w, WIVectors4())
		p.SetName("WI-4-DGIPPR")
		return p
	}}
)

// Workload-neutral GIPPR variants: the vectors used for each workload were
// evolved with that workload's fold held out (paper Section 4.4).
var (
	SpecWNGIPPR = Spec{Key: "wn-gippr", Label: "WN-GIPPR", New: func(name string, s, w int) cache.Policy {
		g := policy.NewGIPPR(s, w, WNVectors1(name))
		g.SetName("WN-GIPPR")
		return g
	}}
	SpecWN2DGIPPR = Spec{Key: "wn-2dgippr", Label: "WN-2-DGIPPR", New: func(name string, s, w int) cache.Policy {
		p := policy.NewDGIPPR2(s, w, WNVectors2(name))
		p.SetName("WN-2-DGIPPR")
		return p
	}}
	SpecWN4DGIPPR = Spec{Key: "wn-4dgippr", Label: "WN-4-DGIPPR", New: func(name string, s, w int) cache.Policy {
		p := policy.NewDGIPPR4(s, w, WNVectors4(name))
		p.SetName("WN-4-DGIPPR")
		return p
	}}
)
