package experiments

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"gippr/internal/cache"
	"gippr/internal/policy"
)

// TestParallelGridBitIdenticalToSerial is the determinism contract of the
// parallel evaluation engine: a grid prefetched with 8 workers must produce
// bit-identical MPKI and CPI to a lab evaluated serially, including the
// Belady MIN cells. Run with -race to also prove the fan-out is data-race
// free (the Makefile's race target does).
func TestParallelGridBitIdenticalToSerial(t *testing.T) {
	specs := []Spec{SpecLRU, SpecPLRU, SpecDRRIP}
	serial := NewLab(Smoke).SetWorkers(1)
	par := NewLab(Smoke).SetWorkers(8)
	ws := par.Suite()[:4]
	par.PrefetchWorkloads(specs, ws, true)

	for _, w := range ws {
		for _, s := range specs {
			if a, b := serial.MPKI(s, w), par.MPKI(s, w); a != b {
				t.Fatalf("%s/%s MPKI: serial %v != parallel %v", s.Key, w.Name, a, b)
			}
			if a, b := serial.CPI(s, w), par.CPI(s, w); a != b {
				t.Fatalf("%s/%s CPI: serial %v != parallel %v", s.Key, w.Name, a, b)
			}
		}
		if a, b := serial.OptimalMPKI(w), par.OptimalMPKI(w); a != b {
			t.Fatalf("%s optimal MPKI: serial %v != parallel %v", w.Name, a, b)
		}
	}
}

// TestStreamsSingleflightUnderConcurrency: concurrent Streams calls for the
// same workload must coalesce into one build and hand every caller the same
// backing slice.
func TestStreamsSingleflightUnderConcurrency(t *testing.T) {
	lab := smokeLab()
	w := lab.Suite()[0]
	const goroutines = 8
	var wg sync.WaitGroup
	first := make([]interface{}, goroutines) // identity of each caller's backing array
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := lab.Streams(w)
			first[i] = &s[0].Records[0]
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if first[i] != first[0] {
			t.Fatal("concurrent Streams calls returned different backing arrays (stream built twice)")
		}
	}
}

// TestPhaseRunSingleflightUnderConcurrency: a concurrent miss on the same
// (spec, workload, phase) key must run the replay exactly once — the policy
// constructor is the observable proxy for a replay.
func TestPhaseRunSingleflightUnderConcurrency(t *testing.T) {
	lab := smokeLab()
	w := lab.Suite()[1]
	var built atomic.Int32
	spec := Spec{Key: "counted", Label: "counted", New: func(_ string, sets, ways int) cache.Policy {
		built.Add(1)
		return policy.NewTrueLRU(sets, ways)
	}}
	const goroutines = 6
	res := make([]float64, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res[i] = lab.MPKI(spec, w)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if res[i] != res[0] {
			t.Fatalf("concurrent MPKI values differ: %v vs %v", res[i], res[0])
		}
	}
	if got, want := built.Load(), int32(len(w.Phases)); got != want {
		t.Fatalf("policy built %d times for %d phases: memoization raced", got, want)
	}
}

// TestStreamsCompactedToFootprint: the capture buffer is reserved at the
// record budget but must not stay pinned at it — the memoized stream should
// hold roughly its real footprint.
func TestStreamsCompactedToFootprint(t *testing.T) {
	lab := smokeLab()
	for _, w := range lab.Suite()[:3] {
		for pi, st := range lab.Streams(w) {
			if len(st.Records) == 0 {
				continue
			}
			if cap(st.Records) > len(st.Records)+len(st.Records)/4+1 {
				t.Fatalf("%s phase %d: stream cap %d for len %d — reservation not compacted",
					w.Name, pi, cap(st.Records), len(st.Records))
			}
		}
	}
}

// TestPrefetchCtxCancellationIsCorrectnessNeutral: cancelling a prefetch
// stops precomputation but must never change what the memoized getters
// return — a cell missed by the truncated prefetch is computed on demand
// with identical results.
func TestPrefetchCtxCancellationIsCorrectnessNeutral(t *testing.T) {
	specs := []Spec{SpecLRU, SpecPLRU}
	ref := NewLab(Smoke).SetWorkers(2)
	ws := ref.Suite()[:2]
	ref.PrefetchWorkloads(specs, ws, false)

	cancelled := NewLab(Smoke).SetWorkers(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cancelled.PrefetchWorkloadsCtx(ctx, specs, ws, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled prefetch err = %v", err)
	}
	for _, w := range ws {
		for _, s := range specs {
			if a, b := ref.MPKI(s, w), cancelled.MPKI(s, w); a != b {
				t.Fatalf("%s/%s MPKI after cancelled prefetch: %v != %v", s.Key, w.Name, a, b)
			}
		}
	}
}

// TestGAEnvCtxCancelled: environment construction must report cancellation
// instead of returning a half-built environment.
func TestGAEnvCtxCancelled(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if env, err := lab.GAEnvCtx(ctx); env != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("GAEnvCtx = (%v, %v), want (nil, context.Canceled)", env, err)
	}
}
