package experiments

import (
	"gippr/internal/ipv"
	"gippr/internal/workload"
)

// Evolved insertion/promotion vectors used by the shipped experiments.
//
// The paper evolves its vectors offline on a 200-CPU cluster and ships them
// in the text (Section 5.3); we do the same at laptop scale: the vectors
// below were produced by `go run ./cmd/gippr-evolve -bake` on this
// repository's synthetic suite (GA per DESIGN.md, seeded with the paper's
// published vectors plus LRU/LIP), then pasted here. Rerunning that command
// regenerates them; the paper's own vectors remain available as
// ipv.Paper* for comparison.
//
// Workload-neutral (WN) vectors use the paper's WNk cross-validation
// (Section 4.4) instantiated as k-fold holdout: the suite is split into
// NumFolds folds by suite position, and the vectors used for a workload are
// evolved with that workload's entire fold excluded.

// NumFolds is the cross-validation fold count for workload-neutral vectors.
const NumFolds = 5

// FoldOf returns the fold a workload belongs to (by its position in the
// suite, so folds are stable and stratified across archetype groups).
func FoldOf(name string) int {
	for i, n := range workload.Names() {
		if n == name {
			return i % NumFolds
		}
	}
	return 0
}

// Workload-inclusive vectors, evolved on the full suite by
// `go run ./cmd/gippr-evolve -bake -scale default -seeds 3`. Like the
// paper's learned sets (Section 5.3), the pairs/quads duel between
// PMRU-side insertion (the all-zero LRU-like vector) and PLRU-side
// insertion with pessimistic demotion patterns (insertion 15).
var (
	wiVector1  = ipv.MustParse("[ 0 0 0 0 0 0 0 5 0 8 8 0 2 4 14 11 15 ]")
	wiVectors2 = [2]ipv.Vector{
		ipv.MustParse("[ 0 0 0 0 0 0 0 5 0 8 8 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
	}
	wiVectors4 = [4]ipv.Vector{
		ipv.MustParse("[ 0 0 0 0 0 0 0 5 0 8 8 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 6 3 0 0 0 11 0 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15 ]"),
	}
	// giplrVector drives Figure 4 (IPV over true LRU); the paper's
	// published vector transfers well to this suite.
	giplrVector = ipv.PaperGIPLR
)

// Workload-neutral vectors: wnVectorsN[f] are the vectors used for
// workloads in fold f (evolved with fold f held out), from the same
// gippr-evolve -bake run.
var (
	wnVectors1 [NumFolds]ipv.Vector
	wnVectors2 [NumFolds][2]ipv.Vector
	wnVectors4 [NumFolds][4]ipv.Vector
)

func init() {
	wnVectors1[0] = ipv.MustParse("[ 0 0 0 6 4 4 6 5 8 8 10 1 12 8 2 1 15 ]")
	wnVectors2[0] = [2]ipv.Vector{
		ipv.MustParse("[ 0 0 0 6 4 4 6 5 8 8 10 1 12 8 2 1 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
	}
	wnVectors4[0] = [4]ipv.Vector{
		ipv.MustParse("[ 0 0 0 6 4 4 6 5 8 8 10 1 12 8 2 1 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 10 0 0 0 4 5 14 11 15 ]"),
	}
	wnVectors1[1] = ipv.MustParse("[ 0 0 2 1 4 4 5 5 8 8 10 1 0 0 0 8 15 ]")
	wnVectors2[1] = [2]ipv.Vector{
		ipv.MustParse("[ 0 0 2 1 4 4 5 5 8 8 10 1 0 0 0 8 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
	}
	wnVectors4[1] = [4]ipv.Vector{
		ipv.MustParse("[ 0 0 2 1 4 4 5 5 8 8 10 1 0 0 0 8 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
		ipv.MustParse("[ 0 0 0 0 1 0 0 0 9 0 0 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15 ]"),
	}
	wnVectors1[2] = ipv.MustParse("[ 0 0 0 0 0 0 0 3 0 0 8 0 2 4 14 11 15 ]")
	wnVectors2[2] = [2]ipv.Vector{
		ipv.MustParse("[ 0 0 0 0 0 0 0 3 0 0 8 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
	}
	wnVectors4[2] = [4]ipv.Vector{
		ipv.MustParse("[ 0 0 0 0 0 0 0 3 0 0 8 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 4 3 0 8 12 13 0 14 3 15 ]"),
		ipv.MustParse("[ 3 0 0 0 0 7 0 0 0 0 0 0 0 6 0 8 15 ]"),
	}
	wnVectors1[3] = ipv.MustParse("[ 0 0 0 0 0 1 0 0 0 8 8 0 2 4 14 11 15 ]")
	wnVectors2[3] = [2]ipv.Vector{
		ipv.MustParse("[ 0 0 0 0 0 1 0 0 0 8 8 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
	}
	wnVectors4[3] = [4]ipv.Vector{
		ipv.MustParse("[ 0 0 0 0 0 1 0 0 0 8 8 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 12 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15 ]"),
	}
	wnVectors1[4] = ipv.MustParse("[ 0 0 0 1 4 4 6 5 8 8 0 11 9 8 9 12 15 ]")
	wnVectors2[4] = [2]ipv.Vector{
		ipv.MustParse("[ 0 0 0 1 4 4 6 5 8 8 0 11 9 8 9 12 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
	}
	wnVectors4[4] = [4]ipv.Vector{
		ipv.MustParse("[ 0 0 0 1 4 4 6 5 8 8 0 11 9 8 9 12 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 ]"),
		ipv.MustParse("[ 0 0 0 0 4 4 6 5 0 8 8 0 2 4 14 11 15 ]"),
		ipv.MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 15 ]"),
	}
}

// WNVectors1 returns the single WN vector for a workload.
func WNVectors1(name string) ipv.Vector { return wnVectors1[FoldOf(name)] }

// WNVectors2 returns the WN vector pair for a workload.
func WNVectors2(name string) [2]ipv.Vector { return wnVectors2[FoldOf(name)] }

// WNVectors4 returns the WN vector quad for a workload.
func WNVectors4(name string) [4]ipv.Vector { return wnVectors4[FoldOf(name)] }

// WIVector1 returns the workload-inclusive single vector.
func WIVector1() ipv.Vector { return wiVector1 }

// WIVectors2 returns the workload-inclusive pair.
func WIVectors2() [2]ipv.Vector { return wiVectors2 }

// WIVectors4 returns the workload-inclusive quad.
func WIVectors4() [4]ipv.Vector { return wiVectors4 }

// GIPLRVector returns the vector used for the Figure 4 GIPLR run.
func GIPLRVector() ipv.Vector { return giplrVector }
