package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gippr/internal/cache"
	"gippr/internal/policy"
	"gippr/internal/stackdist"
	"gippr/internal/stats"
	"gippr/internal/workload"
)

// testLatticeSpec is the differential battery's lattice: three set counts
// around the paper LLC crossed with every associativity up to the LLC's,
// plus tree-PLRU at the LLC's own shape and one smaller shape.
func testLatticeSpec() LatticeSpec {
	return LatticeSpec{
		MinSets: 1024,
		MaxSets: 4096,
		MaxWays: 16,
		PLRU: []stackdist.Geometry{
			{Sets: 4096, Ways: 16},
			{Sets: 2048, Ways: 8},
		},
	}
}

// directSweepCell recomputes one lattice point's cell the slow way: a fresh
// per-geometry cache.ReplayStream per phase, aggregated with exactly the
// expressions onePassCells uses. The one-pass engine must match this
// bit-for-bit — same MPKI doubles, same counters.
func directSweepCell(l *Lab, p stackdist.Point, w workload.Workload) GridCell {
	cell := GridCell{Workload: w.Name, Policy: p.Label()}
	mpkis := make([]float64, len(w.Phases))
	hitrs := make([]float64, len(w.Phases))
	wts := make([]float64, len(w.Phases))
	for pi, ph := range w.Phases {
		st := l.Streams(w)[pi]
		cfg := cache.Config{
			Name:       p.Label(),
			SizeBytes:  p.Sets * p.Ways * l.Cfg.BlockBytes,
			Ways:       p.Ways,
			BlockBytes: l.Cfg.BlockBytes,
		}
		var pol cache.Policy
		if p.Policy == stackdist.PolicyPLRU {
			pol = policy.NewPLRU(p.Sets, p.Ways)
		} else {
			pol = policy.NewTrueLRU(p.Sets, p.Ways)
		}
		rs := cache.ReplayStream(st.Records, cfg, pol, l.warm(len(st.Records)))
		mpkis[pi] = stats.MPKI(rs.Misses, rs.Instructions)
		acc := rs.Accesses
		if acc < 1 {
			acc = 1
		}
		hitrs[pi] = 100 * float64(rs.Hits) / float64(acc)
		wts[pi] = ph.Weight
		cell.Misses += rs.Misses
		cell.Accesses += rs.Accesses
	}
	cell.MPKI = stats.WeightedMean(mpkis, wts)
	cell.HitPct = stats.WeightedMean(hitrs, wts)
	return cell
}

// TestSweepGridDifferentialReplay is the lattice acceptance criterion: every
// one-pass cell must be bit-identical to a fresh per-geometry replay, at 1
// worker and at 8, with both worker counts agreeing exactly. Direct-mapped
// (ways=1) lattice points have no policy.NewTrueLRU partner — the registry
// requires ways >= 2 — so they are pinned against an independent naive model
// in the stackdist package tests instead and skipped here. Under -short a
// strided subset of LRU points is checked (the full lattice runs in the CI
// race job).
func TestSweepGridDifferentialReplay(t *testing.T) {
	base := NewLab(Smoke)
	spec := testLatticeSpec()
	wls := base.Suite()[:2]
	stride := 1
	if testing.Short() {
		wls = wls[:1]
		stride = 3
	}
	pts := spec.Options(1, 0).Lattice()
	points := spec.Points()

	// The slow side, computed once over the base lab's shared streams.
	want := make(map[string]GridCell)
	for _, w := range wls {
		for pi, p := range pts {
			if p.Policy == stackdist.PolicyLRU && (p.Ways < 2 || pi%stride != 0) {
				continue
			}
			want[w.Name+"|"+p.Label()] = directSweepCell(base, p, w)
		}
	}

	var prev []GridCell
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// A fresh full-fidelity view: shared streams, cold sweep memos, so
			// each worker count exercises its own one-pass computation.
			lab := base.WithSampling(0).SetWorkers(workers)
			cells, err := lab.SweepGrid(context.Background(), spec, wls, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(cells) != len(wls)*points {
				t.Fatalf("got %d cells, want %d", len(cells), len(wls)*points)
			}
			for wi, w := range wls {
				for pi, p := range pts {
					got := cells[wi*points+pi]
					if got.Workload != w.Name || got.Policy != p.Label() {
						t.Fatalf("cell[%d,%d] labeled %s/%s, want %s/%s",
							wi, pi, got.Workload, got.Policy, w.Name, p.Label())
					}
					ref, ok := want[w.Name+"|"+p.Label()]
					if !ok {
						continue
					}
					if got != ref {
						t.Errorf("%s/%s: one-pass %+v, direct replay %+v", w.Name, p.Label(), got, ref)
					}
				}
			}
			if prev != nil {
				for i := range cells {
					if cells[i] != prev[i] {
						t.Errorf("cell %d differs across worker counts: %+v vs %+v", i, cells[i], prev[i])
					}
				}
			}
			prev = cells
		})
	}
}

// TestSweepGridMatchesGridCell pins the bridge between the two engines: the
// lattice point at the lab's own geometry must reproduce the classic grid
// path's cell for the matching registry policy, bit-for-bit (the lattice
// carries no timing model, so IPC is excluded).
func TestSweepGridMatchesGridCell(t *testing.T) {
	lab := NewLab(Smoke)
	w := lab.Suite()[0]
	spec := testLatticeSpec()
	cells, err := lab.OnePassSweep(spec, w)
	if err != nil {
		t.Fatal(err)
	}
	find := func(label string) GridCell {
		for i, l := range spec.Labels() {
			if l == label {
				return cells[i]
			}
		}
		t.Fatalf("no lattice cell labeled %q", label)
		return GridCell{}
	}
	gridCells, err := lab.Grid(context.Background(), []Spec{SpecLRU, SpecPLRU}, []workload.Workload{w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sets, ways := lab.Cfg.Sets(), lab.Cfg.Ways
	for i, label := range []string{
		fmt.Sprintf("lru@%dx%d", sets, ways),
		fmt.Sprintf("plru@%dx%d", sets, ways),
	} {
		lat, grid := find(label), gridCells[i]
		if lat.MPKI != grid.MPKI || lat.HitPct != grid.HitPct ||
			lat.Misses != grid.Misses || lat.Accesses != grid.Accesses {
			t.Errorf("%s: lattice cell %+v != grid cell %+v", label, lat, grid)
		}
		if grid.IPC == 0 {
			t.Errorf("%s: grid cell carries no IPC (timing model missing?)", label)
		}
		if lat.IPC != 0 {
			t.Errorf("%s: lattice cell has IPC %v, want 0 (no timing model)", label, lat.IPC)
		}
	}
}

// TestSweepInclusionMonotonicity re-checks Mattson's inclusion property on
// the one-pass path, at the cell level: at a fixed set count, growing the
// associativity can only add hits, so misses never increase with ways.
func TestSweepInclusionMonotonicity(t *testing.T) {
	lab := NewLab(Smoke)
	spec := testLatticeSpec()
	pts := spec.Options(1, 0).Lattice()
	for _, w := range lab.Suite()[:3] {
		cells, err := lab.OnePassSweep(spec, w)
		if err != nil {
			t.Fatal(err)
		}
		prev := map[int]GridCell{} // set count -> previous (smaller-ways) cell
		for pi, p := range pts {
			if p.Policy != stackdist.PolicyLRU {
				continue
			}
			c := cells[pi]
			if last, ok := prev[p.Sets]; ok {
				if c.Misses > last.Misses {
					t.Errorf("%s sets=%d: misses grew from %d (w=%d) to %d (w=%d)",
						w.Name, p.Sets, last.Misses, p.Ways-1, c.Misses, p.Ways)
				}
				if c.MPKI > last.MPKI {
					t.Errorf("%s sets=%d: MPKI grew from %v to %v at w=%d",
						w.Name, p.Sets, last.MPKI, c.MPKI, p.Ways)
				}
			}
			prev[p.Sets] = c
		}
	}
}

// TestSweepBeladyDominance re-checks the optimality bound against the
// one-pass path: Belady MIN at the lab geometry can never miss more than the
// one-pass LRU cell at that same geometry.
func TestSweepBeladyDominance(t *testing.T) {
	lab := NewLab(Smoke)
	spec := testLatticeSpec()
	label := fmt.Sprintf("lru@%dx%d", lab.Cfg.Sets(), lab.Cfg.Ways)
	li := -1
	for i, l := range spec.Labels() {
		if l == label {
			li = i
		}
	}
	if li < 0 {
		t.Fatalf("lattice has no point %q", label)
	}
	for _, w := range lab.Suite()[:3] {
		cells, err := lab.OnePassSweep(spec, w)
		if err != nil {
			t.Fatal(err)
		}
		var optMisses uint64
		for pi := range w.Phases {
			optMisses += lab.optimalRun(w, pi).Misses
		}
		if lru := cells[li]; optMisses > lru.Misses {
			t.Errorf("%s: Belady MIN missed %d > one-pass LRU %d at %s",
				w.Name, optMisses, lru.Misses, label)
		}
	}
}

// TestLatticeSpecValidate pins the up-front rejection of impossible sweep
// ranges: every failure must wrap cache.ErrBadGeometry (the usage exit code
// on the CLI, HTTP 400 through serve), and both lattice entry points must
// refuse before touching any stream.
func TestLatticeSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec LatticeSpec
		ok   bool
	}{
		{"default", DefaultLatticeSpec(cache.L3Config), true},
		{"no plru", LatticeSpec{MinSets: 64, MaxSets: 128, MaxWays: 4}, true},
		{"min above max", LatticeSpec{MinSets: 256, MaxSets: 128, MaxWays: 4}, false},
		{"sets not power of two", LatticeSpec{MinSets: 96, MaxSets: 128, MaxWays: 4}, false},
		{"zero ways", LatticeSpec{MinSets: 64, MaxSets: 128, MaxWays: 0}, false},
		{"ways beyond lattice cap", LatticeSpec{MinSets: 64, MaxSets: 128, MaxWays: 1024}, false},
		{"plru ways not power of two", LatticeSpec{MinSets: 64, MaxSets: 128, MaxWays: 4,
			PLRU: []stackdist.Geometry{{Sets: 64, Ways: 3}}}, false},
		{"plru ways beyond tree capacity", LatticeSpec{MinSets: 64, MaxSets: 128, MaxWays: 4,
			PLRU: []stackdist.Geometry{{Sets: 64, Ways: 128}}}, false},
		{"plru sets not power of two", LatticeSpec{MinSets: 64, MaxSets: 128, MaxWays: 4,
			PLRU: []stackdist.Geometry{{Sets: 100, Ways: 4}}}, false},
	}
	lab := NewLab(Smoke)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate(lab.Cfg.BlockBytes)
			if tc.ok {
				if err != nil {
					t.Fatalf("Validate: unexpected error %v", err)
				}
				return
			}
			if !errors.Is(err, cache.ErrBadGeometry) {
				t.Fatalf("Validate: error %v, want cache.ErrBadGeometry", err)
			}
			// Both entry points must refuse identically, before any stream
			// build or replay.
			if _, err := lab.OnePassSweep(tc.spec, lab.Suite()[0]); !errors.Is(err, cache.ErrBadGeometry) {
				t.Errorf("OnePassSweep: error %v, want cache.ErrBadGeometry", err)
			}
			if _, err := lab.SweepGrid(context.Background(), tc.spec, lab.Suite()[:1], nil); !errors.Is(err, cache.ErrBadGeometry) {
				t.Errorf("SweepGrid: error %v, want cache.ErrBadGeometry", err)
			}
		})
	}
}

// TestLatticeReportRenders sanity-checks the report path: one table per
// workload with a row per set count, plus one line per tree-PLRU geometry.
func TestLatticeReportRenders(t *testing.T) {
	lab := NewLab(Smoke)
	spec := testLatticeSpec()
	out, err := lab.LatticeReport(context.Background(), spec, lab.Suite()[:1])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lru s=1024", "lru s=2048", "lru s=4096", "plru@4096x16", "plru@2048x8", "w16"} {
		if !strings.Contains(out, want) {
			t.Errorf("lattice report missing %q:\n%s", want, out)
		}
	}
}
