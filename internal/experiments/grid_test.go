package experiments

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"gippr/internal/workload"
)

// gridScale keeps grid tests fast: tiny phases, standard warm fraction.
var gridScale = CustomScale(4_000, 1.0/3)

func gridSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, name := range []string{"lru", "plru"} {
		sp, err := SpecFromRegistry(name)
		if err != nil {
			t.Fatalf("SpecFromRegistry(%q): %v", name, err)
		}
		specs = append(specs, sp)
	}
	return specs
}

func gridWorkloads(t *testing.T, names ...string) []workload.Workload {
	t.Helper()
	wls := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		wls = append(wls, w)
	}
	return wls
}

// TestGridMatchesPointQueries pins the bit-identity contract: a Grid cell
// equals the aggregation of the same lab's memoized point queries, and two
// independent labs at the same scale produce byte-identical grids.
func TestGridMatchesPointQueries(t *testing.T) {
	specs := gridSpecs(t)
	wls := gridWorkloads(t, "mcf_like", "libquantum_like")

	lab := NewLab(gridScale)
	cells, err := lab.Grid(context.Background(), specs, wls, nil)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if len(cells) != len(wls)*len(specs) {
		t.Fatalf("got %d cells, want %d", len(cells), len(wls)*len(specs))
	}
	for wi, w := range wls {
		for si, sp := range specs {
			cell := cells[wi*len(specs)+si]
			if cell.Workload != w.Name || cell.Policy != sp.Label {
				t.Fatalf("cell[%d,%d] labeled (%s,%s), want (%s,%s)",
					wi, si, cell.Workload, cell.Policy, w.Name, sp.Label)
			}
			if want := lab.cellOf(sp, w); cell != want {
				t.Errorf("cell (%s,%s) = %+v, want memoized %+v", w.Name, sp.Label, cell, want)
			}
			if cell.Accesses == 0 || cell.MPKI <= 0 {
				t.Errorf("cell (%s,%s) looks empty: %+v", w.Name, sp.Label, cell)
			}
		}
	}

	// A fresh lab — same scale, no shared memo — must agree bit-for-bit,
	// and so must a repeat call on the first lab (pure memo reads).
	fresh, err := NewLab(gridScale).Grid(context.Background(), specs, wls, nil)
	if err != nil {
		t.Fatalf("fresh Grid: %v", err)
	}
	if !reflect.DeepEqual(cells, fresh) {
		t.Error("independent labs disagree on grid cells")
	}
	again, err := lab.Grid(context.Background(), specs, wls, nil)
	if err != nil {
		t.Fatalf("repeat Grid: %v", err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Error("repeat Grid call disagrees with first (memo reads must be identical)")
	}
}

// TestGridOnCell checks the streaming callback: every cell is delivered
// exactly once, concurrently-safely, and matches the returned slice.
func TestGridOnCell(t *testing.T) {
	specs := gridSpecs(t)
	wls := gridWorkloads(t, "mcf_like", "lbm_like")
	lab := NewLab(gridScale).SetWorkers(2)

	var mu sync.Mutex
	got := make(map[string]GridCell)
	cells, err := lab.Grid(context.Background(), specs, wls, func(c GridCell) {
		mu.Lock()
		defer mu.Unlock()
		key := c.Workload + "|" + c.Policy
		if _, dup := got[key]; dup {
			t.Errorf("cell %s delivered twice", key)
		}
		got[key] = c
	})
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if len(got) != len(cells) {
		t.Fatalf("onCell saw %d cells, want %d", len(got), len(cells))
	}
	for _, c := range cells {
		if d, ok := got[c.Workload+"|"+c.Policy]; !ok || d != c {
			t.Errorf("onCell cell %+v != returned %+v", d, c)
		}
	}
}

// TestGridCancellation: a pre-cancelled context stops the grid without
// running every workload and surfaces context.Canceled.
func TestGridCancellation(t *testing.T) {
	specs := gridSpecs(t)
	lab := NewLab(gridScale).SetWorkers(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := lab.Grid(ctx, specs, lab.Suite(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Grid on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
