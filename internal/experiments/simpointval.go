package experiments

import (
	"fmt"
	"strings"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/policy"
	"gippr/internal/simpoint"
	"gippr/internal/stats"
	"gippr/internal/trace"
	"gippr/internal/workload"
)

// SimPointRow compares full-trace MPKI against the SimPoint-weighted
// estimate for one workload and policy.
type SimPointRow struct {
	Workload string
	Policy   string
	FullMPKI float64
	SPMPKI   float64
	Points   int
	RelError float64
}

// SimPointValidation examines the paper's methodological premise
// (Section 4.6): results measured on a few weighted SimPoint intervals
// approximate results on the full trace. For four workloads, the full LLC
// stream's MPKI under LRU and DRRIP is compared with the weighted average
// over the intervals SimPoint picks (with functional warming from the
// preceding trace).
//
// Expected outcome at laptop scale: good agreement on stationary workloads
// (mcf-like: under ~15% error) and systematic error on coarse-phased ones
// (hmmer-like), because with short traces the cache-state time constant
// (tens of thousands of LLC accesses) is comparable to the interval length,
// so same-cluster intervals do not behave alike. The paper's one-billion-
// instruction intervals are three orders of magnitude above that time
// constant, which is precisely why its SimPoint usage is sound there — this
// experiment quantifies where the shortcut stops being valid.
func SimPointValidation(l *Lab) []SimPointRow {
	workloads := []string{"hmmer_like", "gcc_like", "bzip2_like", "mcf_like"}
	intervalLen := l.Scale.PhaseRecords / 10
	if intervalLen < 1000 {
		intervalLen = 1000
	}
	specs := []struct {
		name string
		mk   func() cache.Policy
	}{
		{"LRU", func() cache.Policy { return policy.NewTrueLRU(l.Cfg.Sets(), l.Cfg.Ways) }},
		{"DRRIP", func() cache.Policy { return policy.NewDRRIP(l.Cfg.Sets(), l.Cfg.Ways) }},
	}
	mpkiOf := func(recs []trace.Record, warm int, mk func() cache.Policy) float64 {
		res := cpu.WindowReplay(recs, l.Cfg, mk(), warm, cpu.DefaultWindowModel())
		return stats.MPKI(res.Misses, res.Instructions)
	}
	var rows []SimPointRow
	for _, name := range workloads {
		w, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		st := l.Streams(w)[0]
		points := simpoint.Pick(simpoint.Extract(st.Records, intervalLen), 6, 0x51)
		for _, s := range specs {
			// The full-trace reference uses the same short functional warm
			// as the intervals so both sides cover every program phase —
			// a long warm-up would bias the reference toward whichever
			// phases happen to fall late in the trace.
			fullWarm := 3 * intervalLen
			if max := len(st.Records) / 4; fullWarm > max {
				fullWarm = max
			}
			full := mpkiOf(st.Records, fullWarm, s.mk)
			var vals, weights []float64
			for _, p := range points {
				// Functional warming, as in the real methodology: replay
				// the trace preceding the interval (up to three interval
				// lengths of it) untimed, then measure the interval.
				start := p.Interval.Index * intervalLen
				warmStart := start - 3*intervalLen
				if warmStart < 0 {
					warmStart = 0
				}
				end := start + p.Interval.Records
				vals = append(vals, mpkiOf(st.Records[warmStart:end], start-warmStart, s.mk))
				weights = append(weights, p.Weight)
			}
			sp := stats.WeightedMean(vals, weights)
			rel := 0.0
			if full > 0 {
				rel = (sp - full) / full
			}
			rows = append(rows, SimPointRow{
				Workload: name, Policy: s.name,
				FullMPKI: full, SPMPKI: sp, Points: len(points), RelError: rel,
			})
		}
	}
	return rows
}

// FormatSimPointValidation renders the comparison.
func FormatSimPointValidation(rows []SimPointRow) string {
	var sb strings.Builder
	sb.WriteString("SimPoint validation: full-trace MPKI vs weighted simpoint estimate\n")
	fmt.Fprintf(&sb, "%-18s %-8s %10s %10s %7s %8s\n",
		"workload", "policy", "full", "simpoint", "points", "rel err")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %-8s %10.2f %10.2f %7d %7.1f%%\n",
			r.Workload, r.Policy, r.FullMPKI, r.SPMPKI, r.Points, 100*r.RelError)
	}
	return sb.String()
}
