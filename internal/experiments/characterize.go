package experiments

import (
	"fmt"
	"strings"

	"gippr/internal/reusedist"
	"gippr/internal/stats"
)

// Characterization is the per-workload "Table 1" every cache paper carries:
// footprint, memory intensity and the LLC-stream reuse-distance profile
// that determines which replacement policies can help.
type Characterization struct {
	Workload   string
	LLCRecords int
	Footprint  int     // distinct 64-byte blocks in the LLC stream
	RefsPerKI  float64 // LLC accesses per kilo-instruction
	WriteFrac  float64
	ColdFrac   float64 // first-touch fraction of LLC accesses
	MeanRD     float64 // mean finite reuse distance (blocks)
	P50RD      int64
	P90RD      int64
	LRUFAHit   float64 // hit rate of a fully-associative LRU at LLC capacity
	LRUMPKI    float64 // measured set-associative LRU MPKI
}

// Characterize profiles every workload's LLC stream. The fully-associative
// LRU hit rate at LLC capacity (from the reuse-distance histogram) is the
// upper bound a recency-based policy can reach; comparing it with the
// measured set-associative LRU MPKI separates conflict effects from
// capacity effects.
func Characterize(l *Lab) []Characterization {
	l.Prefetch([]Spec{SpecLRU}, false)
	llcBlocks := int64(l.Cfg.SizeBytes / l.Cfg.BlockBytes)
	out := make([]Characterization, 0, len(l.Suite()))
	for _, w := range l.Suite() {
		c := Characterization{Workload: w.Name}
		var instrs, writes uint64
		blocks := map[uint64]struct{}{}
		var hists []*reusedist.Histogram
		for _, st := range l.Streams(w) {
			c.LLCRecords += len(st.Records)
			p := reusedist.New(len(st.Records) + 1)
			for _, r := range st.Records {
				instrs += uint64(r.Gap)
				if r.Write {
					writes++
				}
				blocks[r.Addr>>6] = struct{}{}
				p.Access(r.Addr >> 6)
			}
			hists = append(hists, p.Histogram())
		}
		c.Footprint = len(blocks)
		if instrs > 0 {
			c.RefsPerKI = 1000 * float64(c.LLCRecords) / float64(instrs)
		}
		if c.LLCRecords > 0 {
			c.WriteFrac = float64(writes) / float64(c.LLCRecords)
		}
		// Merge the per-phase histograms (weighted by phase size is
		// implicit: Add-ed counts accumulate).
		var total, cold uint64
		var meanNum, meanDen float64
		var p50s, p90s, has []float64
		for _, h := range hists {
			total += h.Total
			cold += h.Cold
			meanNum += h.MeanFinite() * float64(h.Total-h.Cold)
			meanDen += float64(h.Total - h.Cold)
			p50s = append(p50s, float64(h.Percentile(0.5)))
			p90s = append(p90s, float64(h.Percentile(0.9)))
			has = append(has, h.HitRateAt(llcBlocks))
		}
		if total > 0 {
			c.ColdFrac = float64(cold) / float64(total)
		}
		if meanDen > 0 {
			c.MeanRD = meanNum / meanDen
		}
		if len(p50s) > 0 {
			c.P50RD = int64(stats.Mean(p50s))
			c.P90RD = int64(stats.Mean(p90s))
			c.LRUFAHit = stats.Mean(has)
		}
		c.LRUMPKI = l.MPKI(SpecLRU, w)
		out = append(out, c)
	}
	return out
}

// FormatCharacterization renders the characterization table.
func FormatCharacterization(cs []Characterization) string {
	var sb strings.Builder
	sb.WriteString("Workload characterization (LLC-filtered streams)\n")
	fmt.Fprintf(&sb, "%-18s %9s %9s %7s %6s %6s %9s %9s %9s %7s %9s\n",
		"workload", "llc refs", "blocks", "refs/KI", "wr%", "cold%", "meanRD", "p50RD", "p90RD", "faHit%", "LRU MPKI")
	for _, c := range cs {
		fmt.Fprintf(&sb, "%-18s %9d %9d %7.1f %6.1f %6.1f %9.0f %9d %9d %7.1f %9.2f\n",
			c.Workload, c.LLCRecords, c.Footprint, c.RefsPerKI,
			100*c.WriteFrac, 100*c.ColdFrac, c.MeanRD, c.P50RD, c.P90RD,
			100*c.LRUFAHit, c.LRUMPKI)
	}
	return sb.String()
}
