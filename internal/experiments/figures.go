package experiments

import (
	"fmt"
	"strings"

	"gippr/internal/ga"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/stats"
)

// Fig1Result is the sorted random-design-space exploration of Figure 1.
type Fig1Result struct {
	Samples int
	Sorted  []float64 // estimated speedups over LRU, ascending
	Summary stats.Summary
}

// Fig1 samples Scale.RandomIPVs uniformly random IPVs, evaluates each with
// the GA fitness function, and returns the sorted speedup curve. The
// paper's observation to reproduce: most random points lose to LRU, a
// minority beat it by a small margin.
func Fig1(l *Lab) Fig1Result {
	scored := ga.RandomSearch(l.GAEnv(), l.Scale.RandomIPVs, 0xF161)
	sorted := make([]float64, len(scored))
	for i, s := range scored {
		sorted[i] = s.Fitness
	}
	return Fig1Result{Samples: len(sorted), Sorted: sorted, Summary: stats.Summarize(sorted)}
}

// Format renders the Figure 1 curve as deciles.
func (r Fig1Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1: random IPV design-space exploration (%d samples, estimated speedup over LRU)\n", r.Samples)
	fmt.Fprintf(&sb, "%-12s %10s\n", "percentile", "speedup")
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		fmt.Fprintf(&sb, "%-12.0f %10.4f\n", p*100, stats.Percentile(r.Sorted, p))
	}
	fmt.Fprintf(&sb, "fraction beating LRU: %.1f%%\n", 100*r.Summary.FractionAboveOne)
	return sb.String()
}

// Fig2 and Fig3 are the transition graphs of the LRU vector and the evolved
// GIPLR vector; they are structural (no simulation).
func Fig2() *ipv.Graph { return ipv.TransitionGraph(ipv.LRU(16)) }

// Fig3 returns the transition graph of the paper's evolved GIPLR vector.
func Fig3() *ipv.Graph { return ipv.TransitionGraph(ipv.PaperGIPLR) }

// Fig4 reproduces Figure 4: per-benchmark speedup over LRU of PLRU, Random
// and the evolved GIPLR vector, sorted ascending by GIPLR. Shapes to
// reproduce: PLRU ~ LRU, Random ~ LRU overall, GIPLR a few percent ahead.
func Fig4(l *Lab) *Table {
	specs := []Spec{SpecPLRU, SpecRandom, SpecGIPLR}
	l.Prefetch(append([]Spec{SpecLRU}, specs...), false)
	t := &Table{Title: "Figure 4: speedup over LRU (window model)"}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.Label)
	}
	for _, w := range l.Suite() {
		row := TableRow{Name: w.Name}
		for _, s := range specs {
			row.Values = append(row.Values, l.Speedup(s, SpecLRU, w))
		}
		t.Rows = append(t.Rows, row)
	}
	t.SortByColumn("GIPLR")
	return t
}

// Fig10 reproduces Figure 10: MPKI normalized to LRU for the 1-, 2- and
// 4-vector workload-neutral GIPPR variants plus Belady MIN, sorted by the
// 4-vector column. Shapes: 4-DGIPPR <= GIPPR < 1, MIN far below all.
func Fig10(l *Lab) *Table {
	specs := []Spec{SpecWNGIPPR, SpecWN2DGIPPR, SpecWN4DGIPPR}
	l.Prefetch(append([]Spec{SpecLRU}, specs...), true)
	t := &Table{Title: "Figure 10: MPKI normalized to LRU"}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.Label)
	}
	t.Columns = append(t.Columns, "Optimal")
	for _, w := range l.Suite() {
		row := TableRow{Name: w.Name}
		for _, s := range specs {
			row.Values = append(row.Values, l.NormalizedMPKI(s, SpecLRU, w))
		}
		row.Values = append(row.Values, l.OptimalNormalizedMPKI(SpecLRU, w))
		t.Rows = append(t.Rows, row)
	}
	t.SortByColumn("WN-4-DGIPPR")
	return t
}

// Fig11 reproduces Figure 11: MPKI normalized to LRU for DRRIP, PDP,
// WN-4-DGIPPR and MIN. Shape: the three policies cluster (paper: 91.5%,
// 90.2%, 91.0%), MIN near 67%.
func Fig11(l *Lab) *Table {
	specs := []Spec{SpecDRRIP, SpecPDP, SpecWN4DGIPPR}
	l.Prefetch(append([]Spec{SpecLRU}, specs...), true)
	t := &Table{Title: "Figure 11: MPKI normalized to LRU"}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.Label)
	}
	t.Columns = append(t.Columns, "Optimal")
	for _, w := range l.Suite() {
		row := TableRow{Name: w.Name}
		for _, s := range specs {
			row.Values = append(row.Values, l.NormalizedMPKI(s, SpecLRU, w))
		}
		row.Values = append(row.Values, l.OptimalNormalizedMPKI(SpecLRU, w))
		t.Rows = append(t.Rows, row)
	}
	t.SortByColumn("DRRIP")
	return t
}

// Fig12 reproduces Figure 12: workload-neutral versus workload-inclusive
// speedup over LRU for the three GIPPR variants. Shape: WN within a point
// of WI for each variant.
func Fig12(l *Lab) *Table {
	specs := []Spec{
		SpecWNGIPPR, SpecWN2DGIPPR, SpecWN4DGIPPR,
		SpecWIGIPPR, SpecWI2DGIPPR, SpecWI4DGIPPR,
	}
	l.Prefetch(append([]Spec{SpecLRU}, specs...), false)
	t := &Table{Title: "Figure 12: workload-neutral vs workload-inclusive speedup over LRU"}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.Label)
	}
	for _, w := range l.Suite() {
		row := TableRow{Name: w.Name}
		for _, s := range specs {
			row.Values = append(row.Values, l.Speedup(s, SpecLRU, w))
		}
		t.Rows = append(t.Rows, row)
	}
	t.SortByColumn("WN-4-DGIPPR")
	return t
}

// Fig13Result is Figure 13 plus the paper's memory-intensive subset
// geomeans (Section 5.2.2).
type Fig13Result struct {
	Table *Table
	// MemoryIntensive lists the workloads where DRRIP's speedup over LRU
	// exceeds 1%, the paper's subset rule.
	MemoryIntensive []string
	// SubsetGeoMeans maps column label -> geomean over the subset.
	SubsetGeoMeans map[string]float64
}

// Fig13 reproduces Figure 13: speedup over LRU of DRRIP, PDP and
// WN-4-DGIPPR, sorted ascending by DRRIP, plus the memory-intensive subset
// geomeans. Shapes: the three cluster overall (paper: 5.41%, 5.69%, 5.61%)
// and on the subset (15.6%, 16.4%, 15.6%).
func Fig13(l *Lab) Fig13Result {
	specs := []Spec{SpecDRRIP, SpecPDP, SpecWN4DGIPPR}
	l.Prefetch(append([]Spec{SpecLRU}, specs...), false)
	t := &Table{Title: "Figure 13: speedup over LRU (window model)"}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.Label)
	}
	for _, w := range l.Suite() {
		row := TableRow{Name: w.Name}
		for _, s := range specs {
			row.Values = append(row.Values, l.Speedup(s, SpecLRU, w))
		}
		t.Rows = append(t.Rows, row)
	}
	t.SortByColumn("DRRIP")

	res := Fig13Result{Table: t, SubsetGeoMeans: map[string]float64{}}
	subset := map[string]bool{}
	for _, row := range t.Rows {
		if row.Values[0] > 1.01 { // DRRIP speedup > 1%
			subset[row.Name] = true
			res.MemoryIntensive = append(res.MemoryIntensive, row.Name)
		}
	}
	if len(res.MemoryIntensive) > 0 {
		for _, c := range t.Columns {
			res.SubsetGeoMeans[c] = t.GeoMeanOver(c, func(r string) bool { return subset[r] })
		}
	}
	return res
}

// Format renders Figure 13 with its subset summary and bootstrap
// confidence intervals on the geomean speedups. Overlapping intervals are
// the statistical version of the paper's conclusion that the three policies
// perform comparably.
func (r Fig13Result) Format() string {
	var sb strings.Builder
	sb.WriteString(r.Table.Format())
	fmt.Fprintf(&sb, "\nmemory-intensive subset (DRRIP speedup > 1%%): %d workloads\n", len(r.MemoryIntensive))
	for _, c := range r.Table.Columns {
		if g, ok := r.SubsetGeoMeans[c]; ok {
			fmt.Fprintf(&sb, "  %-14s subset geomean %.4f\n", c, g)
		}
	}
	sb.WriteString("\n95% bootstrap CIs on the overall geomean speedup:\n")
	for ci, col := range r.Table.Columns {
		vals := make([]float64, len(r.Table.Rows))
		for i, row := range r.Table.Rows {
			vals[i] = row.Values[ci]
		}
		b := stats.BootstrapGeoMean(vals, 0.95, 2000, uint64(ci)+1)
		fmt.Fprintf(&sb, "  %-14s %.4f [%.4f, %.4f]\n", col, b.Point, b.Lo, b.Hi)
	}
	return sb.String()
}

// Overhead reproduces the Section 3.6 storage comparison for the LLC
// geometry.
func Overhead(l *Lab) (string, error) {
	names := []string{"lru", "plru", "gippr", "2-dgippr", "4-dgippr", "dip", "drrip", "pdp", "ship", "random", "fifo", "nru"}
	rows, err := policy.OverheadTable(l.Cfg, names)
	if err != nil {
		return "", err
	}
	return policy.FormatOverheadTable(l.Cfg, rows), nil
}

// VectorsLearnedResult is the Section 5.3 report: the vector sets in use
// plus a freshly evolved vector at this scale.
type VectorsLearnedResult struct {
	WI1      ipv.Vector
	WI2      [2]ipv.Vector
	WI4      [4]ipv.Vector
	Fresh    ipv.Vector
	FreshFit float64
}

// VectorsLearned reports the shipped vector sets and runs one small GA at
// the lab's scale to demonstrate the evolution pipeline end to end.
func VectorsLearned(l *Lab) VectorsLearnedResult {
	cfg := ga.DefaultConfig(0x6a)
	cfg.Population = l.Scale.GAPopulation
	cfg.Generations = l.Scale.GAGenerations
	cfg.Seeds = []ipv.Vector{ipv.LRU(l.Cfg.Ways), ipv.LIP(l.Cfg.Ways), WIVector1()}
	best, fit, _ := ga.Evolve(l.GAEnv(), cfg)
	return VectorsLearnedResult{
		WI1:   WIVector1(),
		WI2:   WIVectors2(),
		WI4:   WIVectors4(),
		Fresh: best, FreshFit: fit,
	}
}

// Format renders the learned vectors.
func (r VectorsLearnedResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Section 5.3: vectors in use\n")
	fmt.Fprintf(&sb, "WI-GIPPR:      %v\n", r.WI1)
	fmt.Fprintf(&sb, "WI-2-DGIPPR:   %v\n               %v\n", r.WI2[0], r.WI2[1])
	fmt.Fprintf(&sb, "WI-4-DGIPPR:   %v\n               %v\n               %v\n               %v\n",
		r.WI4[0], r.WI4[1], r.WI4[2], r.WI4[3])
	fmt.Fprintf(&sb, "freshly evolved at this scale: %v (fitness %.4f)\n", r.Fresh, r.FreshFit)
	return sb.String()
}

// MemoryIntensiveNames returns Fig13's subset, for reuse by other reports.
func MemoryIntensiveNames(l *Lab) []string { return Fig13(l).MemoryIntensive }

// Interpret reproduces Section 5.3.2's reading of the learned vectors: each
// shipped vector's insertion class, promotion aggressiveness and degeneracy
// status, for both the paper's published sets and this suite's evolved sets.
func Interpret() string {
	var sb strings.Builder
	sb.WriteString("Section 5.3.2: interpreting the vectors\n")
	line := func(label string, v ipv.Vector) {
		fmt.Fprintf(&sb, "%-22s %v\n%22s   %s\n", label, v, "", ipv.Analyze(v))
	}
	sb.WriteString("-- paper's published vectors --\n")
	line("GIPLR (Fig 3)", ipv.PaperGIPLR)
	line("WI-GIPPR", ipv.PaperWIGIPPR)
	line("WI-2-DGIPPR[0]", ipv.PaperWI2DGIPPR[0])
	line("WI-2-DGIPPR[1]", ipv.PaperWI2DGIPPR[1])
	for i, v := range ipv.PaperWI4DGIPPR {
		line(fmt.Sprintf("WI-4-DGIPPR[%d]", i), v)
	}
	sb.WriteString("-- vectors evolved on this suite --\n")
	line("WI-GIPPR", WIVector1())
	for i, v := range WIVectors2() {
		line(fmt.Sprintf("WI-2-DGIPPR[%d]", i), v)
	}
	for i, v := range WIVectors4() {
		line(fmt.Sprintf("WI-4-DGIPPR[%d]", i), v)
	}
	set := WIVectors4()
	classes := ipv.ClassifySet(set[:])
	fmt.Fprintf(&sb, "insertion classes covered by the 4-vector set: %v\n", classes)
	return sb.String()
}

// SamplingResult compares set-sampled MPKI estimates against the full
// simulation for one policy across the suite: the estimator the -sample
// flag enables, and the error the statistical test pins (DESIGN.md §9).
type SamplingResult struct {
	Policy      string
	Shifts      []uint
	SampledSets []int     // per shift, out of the full set count
	Sets        int       // full set count
	Table       *Table    // per-workload full MPKI, estimates, relative errors
	MeanRelErr  []float64 // per shift, mean over sensitive workloads
	MaxRelErr   []float64 // per shift
}

// samplingErrFloor is the full-simulation MPKI below which a workload is
// treated as LLC-insensitive for error reporting — the same 1e-3 guard the
// normalized-MPKI figures use: relative error against a near-zero
// denominator measures noise, not estimator quality.
const samplingErrFloor = 1e-3

// Sampling runs the suite under spec at full fidelity and at each sampling
// shift, and reports estimate vs truth per workload. Each sampled run uses
// a WithSampling view of the lab (shared streams, fresh memos) driven by
// the single-pass engine.
func Sampling(l *Lab, spec Spec, shifts ...uint) SamplingResult {
	r := SamplingResult{
		Policy: spec.Label,
		Shifts: shifts,
		Sets:   l.Cfg.Sets(),
	}
	labs := make([]*Lab, len(shifts))
	for i, s := range shifts {
		labs[i] = l.WithSampling(s)
		r.SampledSets = append(r.SampledSets, labs[i].Cfg.SampledSets())
	}
	l.PrefetchMulti([]Spec{spec}, false)
	for _, sl := range labs {
		sl.PrefetchMulti([]Spec{spec}, false)
	}
	t := &Table{
		Title:      fmt.Sprintf("Set-sampled MPKI estimation (%s)", spec.Label),
		Columns:    []string{"full"},
		MeanFooter: true, // error columns contain zeros; geomean is undefined
	}
	for _, s := range shifts {
		t.Columns = append(t.Columns, fmt.Sprintf("est s=%d", s), fmt.Sprintf("relerr s=%d", s))
	}
	for _, w := range l.Suite() {
		full := l.MPKI(spec, w)
		row := TableRow{Name: w.Name, Values: []float64{full}}
		for _, sl := range labs {
			est := sl.MPKI(spec, w)
			relErr := 0.0
			if full >= samplingErrFloor {
				relErr = abs(est-full) / full
			}
			row.Values = append(row.Values, est, relErr)
		}
		t.Rows = append(t.Rows, row)
	}
	r.Table = t
	for _, s := range shifts {
		col := fmt.Sprintf("relerr s=%d", s)
		r.MeanRelErr = append(r.MeanRelErr, t.ColumnMean(col))
		r.MaxRelErr = append(r.MaxRelErr, t.ColumnMax(col))
	}
	return r
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Format renders the sampling comparison with per-shift error summaries.
func (r SamplingResult) Format() string {
	var sb strings.Builder
	sb.WriteString(r.Table.Format())
	sb.WriteString("\nper-shift summary (relative error over LLC-sensitive workloads):\n")
	for i, s := range r.Shifts {
		fmt.Fprintf(&sb, "  s=%d: %4d/%d sets simulated (%5.1f%% of tags), mean relerr %6.3f%%, max relerr %6.3f%%\n",
			s, r.SampledSets[i], r.Sets, 100*float64(r.SampledSets[i])/float64(r.Sets),
			100*r.MeanRelErr[i], 100*r.MaxRelErr[i])
	}
	return sb.String()
}
