package experiments

// Tests for the single-pass multi-policy engine (multiPhaseRun /
// PrefetchMulti) and the set-sampling estimator: the engine must be
// bit-identical to the per-spec engine for every registered policy, and the
// estimator must stay within pinned relative-error tolerances of the full
// simulation (DESIGN.md §9).

import (
	"testing"
)

// registeredSpecs is every policy spec the experiments package defines: the
// baselines, the prior-work roster, and the full GIPPR family. The
// equivalence test runs the whole list so a policy with replay-order
// dependence (e.g. one that secretly shares state across instances) cannot
// hide outside the golden roster.
func registeredSpecs() []Spec {
	return []Spec{
		SpecLRU, SpecPLRU, SpecRandom, SpecFIFO, SpecNRU,
		SpecLIP, SpecBIP, SpecDIP,
		SpecSRRIP, SpecBRRIP, SpecDRRIP, SpecPDP, SpecSHiP, SpecMSLRU,
		SpecGIPLR,
		SpecWIGIPPR, SpecWI2DGIPPR, SpecWI4DGIPPR,
		SpecWNGIPPR, SpecWN2DGIPPR, SpecWN4DGIPPR,
	}
}

// requireSettled asserts that PrefetchMulti actually settled every (spec,
// workload, phase) flight. Without this check the equivalence test could
// silently pass by falling back to the on-demand per-spec path when the
// batch engine skipped a cell.
func requireSettled(t *testing.T, l *Lab, specs []Spec) {
	t.Helper()
	for _, w := range l.Suite() {
		for p := range w.Phases {
			for _, s := range specs {
				f := l.claim(l.results, phaseKey(s, w, p))
				if !f.ready.Load() {
					t.Fatalf("PrefetchMulti left %s unsettled", phaseKey(s, w, p))
				}
			}
		}
	}
}

// TestGoldenMPKIMultiRun pins the single-pass engine to the same checked-in
// fingerprints as TestGoldenMPKI: the multi-model kernel must reproduce the
// per-spec engine's MPKIs bit-identically, not merely approximately — at one
// worker and at eight, so neither scheduling nor the batched replay kernel
// (which carries the Packable roster policies, see internal/batchreplay) can
// perturb a fingerprint.
func TestGoldenMPKIMultiRun(t *testing.T) {
	want := loadGolden(t)
	specs := goldenSpecs()
	if testing.Short() {
		specs = specs[:3]
	}
	for _, workers := range []int{1, 8} {
		lab := NewLab(Smoke).SetWorkers(workers)
		lab.PrefetchMulti(specs, false)
		requireSettled(t, lab, specs)
		for _, w := range lab.Suite() {
			for _, s := range specs {
				wv := want[w.Name][s.Key]
				if wv == "" {
					t.Fatalf("no golden value for %s/%s", w.Name, s.Key)
				}
				if gv := goldenKey(lab.MPKI(s, w)); gv != wv {
					t.Errorf("workers=%d %s/%s: single-pass MPKI %s, golden %s", workers, w.Name, s.Key, gv, wv)
				}
			}
		}
	}
}

// TestMultiRunEquivalence holds the tentpole invariant: for every registered
// policy, on every workload, the single-pass engine (one walk of the stream
// driving all policy models) produces bit-identical MPKI and CPI to the
// per-spec engine (one walk per policy) — at one worker and at eight, so
// scheduling cannot perturb results either. The sampled views share the
// reference lab's captured streams, so any disagreement is in the replay
// engines themselves, never in stream capture.
func TestMultiRunEquivalence(t *testing.T) {
	specs := registeredSpecs()
	if testing.Short() {
		// A cross-family slice: recency, RRIP, duelling, and per-workload
		// vector selection all stay covered.
		specs = []Spec{SpecLRU, SpecPLRU, SpecDRRIP, SpecSHiP, SpecWN4DGIPPR}
	}
	ref := NewLab(Smoke).SetWorkers(8)
	ref.Prefetch(specs, false) // per-spec engine

	for _, workers := range []int{1, 8} {
		multi := ref.WithSampling(0).SetWorkers(workers) // fresh memos, shared streams
		multi.PrefetchMulti(specs, false)
		requireSettled(t, multi, specs)
		for _, s := range specs {
			for _, w := range multi.Suite() {
				if a, b := goldenKey(ref.MPKI(s, w)), goldenKey(multi.MPKI(s, w)); a != b {
					t.Errorf("workers=%d %s/%s: per-spec MPKI %s, single-pass %s",
						workers, s.Key, w.Name, a, b)
				}
				if a, b := goldenKey(ref.CPI(s, w)), goldenKey(multi.CPI(s, w)); a != b {
					t.Errorf("workers=%d %s/%s: per-spec CPI %s, single-pass %s",
						workers, s.Key, w.Name, a, b)
				}
			}
		}
	}
}

// samplingTolerance pins the estimator's worst-case relative error per
// sampling shift at smoke scale (fixed seeds, so these are deterministic
// measurements with headroom, not statistical bounds): measured max errors
// are ~5.0% at s=1, ~6.0% at s=2 and ~11.8% at s=3. A regression past these
// ceilings means the estimator (hash selection, scaling, or the replay
// kernel under sampling) got worse, not that the dice rolled badly.
var samplingTolerance = map[uint]float64{1: 0.08, 2: 0.10, 3: 0.15}

// TestSamplingEstimateWithinTolerance runs the suite under true LRU at full
// fidelity and at shifts 1..3, and requires every LLC-sensitive workload's
// sampled MPKI to land within the pinned relative-error tolerance of the
// full simulation.
func TestSamplingEstimateWithinTolerance(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(8)
	shifts := []uint{1, 2, 3}
	res := Sampling(lab, SpecLRU, shifts...)

	sensitive := 0
	for _, row := range res.Table.Rows {
		if row.Values[0] >= samplingErrFloor {
			sensitive++
		}
	}
	if sensitive < 10 {
		t.Fatalf("only %d of %d workloads are LLC-sensitive; the tolerance check would be vacuous", sensitive, len(res.Table.Rows))
	}

	for i, s := range shifts {
		tol := samplingTolerance[s]
		if got := res.SampledSets[i]; got <= 0 || got >= res.Sets {
			t.Errorf("s=%d: %d sampled sets out of %d, want a proper subset", s, got, res.Sets)
		}
		if res.MaxRelErr[i] > tol {
			t.Errorf("s=%d: max relative error %.4f exceeds pinned tolerance %.2f", s, res.MaxRelErr[i], tol)
		}
		if res.MeanRelErr[i] > res.MaxRelErr[i] {
			t.Errorf("s=%d: mean relative error %.4f exceeds max %.4f", s, res.MeanRelErr[i], res.MaxRelErr[i])
		}
		col := res.Table.Columns[2+2*i] // "relerr s=<s>"
		for _, row := range res.Table.Rows {
			if relErr := row.Values[2+2*i]; relErr > tol {
				t.Errorf("%s %s: relative error %.4f exceeds pinned tolerance %.2f", row.Name, col, relErr, tol)
			}
		}
	}
}

// TestSamplingReproducible builds the sampled estimate twice from scratch —
// independent labs, different worker counts — and requires bit-identical
// MPKIs: the estimator is deterministic (hashed set selection under a fixed
// seed), so runs and schedules must never disagree.
func TestSamplingReproducible(t *testing.T) {
	const shift = 2
	a := NewLab(Smoke).SetWorkers(1).WithSampling(shift)
	b := NewLab(Smoke).SetWorkers(8).WithSampling(shift)
	a.PrefetchMulti([]Spec{SpecLRU}, false)
	b.PrefetchMulti([]Spec{SpecLRU}, false)
	for _, w := range a.Suite() {
		av, bv := goldenKey(a.MPKI(SpecLRU, w)), goldenKey(b.MPKI(SpecLRU, w))
		if av != bv {
			t.Errorf("%s: sampled MPKI %s at 1 worker, %s at 8 workers", w.Name, av, bv)
		}
	}
}
