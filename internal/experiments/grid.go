package experiments

import (
	"context"

	"gippr/internal/parallel"
	"gippr/internal/stats"
	"gippr/internal/telemetry"
	"gippr/internal/workload"
)

// GridCell is one (workload, policy) result of a simulation grid: the
// weighted per-phase aggregates a gippr-sim table row prints and a served
// job streams. Every numeric field is computed from the lab's memoized
// phase results with the exact expressions the pre-refactor gippr-sim grid
// used, so any two engines that share a Lab produce bit-identical cells.
type GridCell struct {
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	MPKI     float64 `json:"mpki"`
	HitPct   float64 `json:"hit_pct"`
	IPC      float64 `json:"ipc"`
	Misses   uint64  `json:"misses"`
	Accesses uint64  `json:"accesses"`
}

// cellOf aggregates one workload's per-phase results for one spec into its
// grid cell. Per-phase IPC is instructions/cycles (not 1/CPI: the two agree
// mathematically but associate floats differently, and cells promise
// bit-identity across engines); hit rate describes the simulated sets,
// which under sampling means the sampled subset.
func (l *Lab) cellOf(spec Spec, w workload.Workload) GridCell {
	cell := GridCell{Workload: w.Name, Policy: spec.Label}
	mpkis := make([]float64, len(w.Phases))
	hitrs := make([]float64, len(w.Phases))
	ipcs := make([]float64, len(w.Phases))
	wts := make([]float64, len(w.Phases))
	for pi, ph := range w.Phases {
		res := l.phaseRun(spec, w, pi)
		mpkis[pi] = res.MPKI
		acc := res.Accesses
		if acc < 1 {
			acc = 1
		}
		hitrs[pi] = 100 * float64(res.Hits) / float64(acc)
		ipcs[pi] = float64(res.Instrs) / res.Cycles
		wts[pi] = ph.Weight
		cell.Misses += res.Misses
		cell.Accesses += res.Accesses
	}
	cell.MPKI = stats.WeightedMean(mpkis, wts)
	cell.HitPct = stats.WeightedMean(hitrs, wts)
	cell.IPC = stats.WeightedMean(ipcs, wts)
	return cell
}

// Grid evaluates specs x workloads through the lab's memoized single-pass
// engine and returns the cells in workload-major order (all specs of
// workloads[0], then workloads[1], ...). Each workload is one parallel task
// on l.Workers goroutines: its phases replay every cold spec together via
// the multi-policy kernel, then the memoized per-phase results aggregate
// into cells. Cell values are bit-identical at any worker count and across
// repeat calls (later calls are pure memo reads).
//
// onCell, when non-nil, is invoked once per cell as soon as that cell's
// value settles — the job daemon streams cells to clients from it. It is
// called concurrently from worker goroutines and must be safe for that.
//
// On cancellation no new workload starts, in-flight workloads drain (their
// cells are complete and were delivered to onCell), and Grid returns the
// partial cell slice alongside ctx's error; cells of workloads that never
// ran are zero-valued.
func (l *Lab) Grid(ctx context.Context, specs []Spec, wls []workload.Workload, onCell func(GridCell)) ([]GridCell, error) {
	cells := make([]GridCell, len(wls)*len(specs))
	err := parallel.ForCtx(ctx, l.Workers, len(wls), func(wi int) {
		w := wls[wi]
		for pi := range w.Phases {
			l.multiPhaseRun(specs, w, pi)
		}
		for si, spec := range specs {
			cell := l.cellOf(spec, w)
			cells[wi*len(specs)+si] = cell
			if onCell != nil {
				onCell(cell)
			}
		}
	})
	return cells, err
}

// TelemetryEntries replays every spec on one workload with event sinks
// attached and returns the per-spec manifest entries (one coherent
// instrumented run per entry, bypassing the terminal-number memo — see
// TelemetryEntry). It is the exported face of the single-pass instrumented
// engine for callers that pick their own workload subset, such as
// gippr-sim's -telemetry path.
func (l *Lab) TelemetryEntries(specs []Spec, w workload.Workload) []telemetry.Entry {
	return l.multiTelemetryEntries(specs, w)
}
