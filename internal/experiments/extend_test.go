package experiments

import (
	"strings"
	"testing"
)

func TestMulticoreMixesWellFormed(t *testing.T) {
	lab := smokeLab()
	names := map[string]bool{}
	for _, w := range lab.Suite() {
		names[w.Name] = true
	}
	for mix, ws := range MulticoreMixes {
		for _, w := range ws {
			if !names[w] {
				t.Fatalf("mix %q references unknown workload %q", mix, w)
			}
		}
	}
}

func TestMulticoreSmoke(t *testing.T) {
	lab := smokeLab()
	tbl := Multicore(lab)
	if len(tbl.Rows) != 4 || len(tbl.Columns) != 4 {
		t.Fatalf("multicore table %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	for _, row := range tbl.Rows {
		for i, v := range row.Values {
			if v <= 0 {
				t.Fatalf("mix %s col %s: non-positive normalized throughput %v",
					row.Name, tbl.Columns[i], v)
			}
		}
	}
	// The friendly mix is LLC-insensitive: every policy at ~LRU.
	for i := range tbl.Columns {
		if v := valueOf(tbl, "friendly", i); v < 0.97 || v > 1.03 {
			t.Fatalf("friendly mix normalized throughput %v for %s", v, tbl.Columns[i])
		}
	}
	if !strings.Contains(tbl.Format(), "normalized to LRU") {
		t.Fatal("format")
	}
}

func valueOf(t *Table, row string, col int) float64 {
	for _, r := range t.Rows {
		if r.Name == row {
			return r.Values[col]
		}
	}
	return -1
}

func TestAssocSweepSmoke(t *testing.T) {
	lab := smokeLab()
	tbl := AssocSweep(lab)
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for i, v := range row.Values {
			if v <= 0 || v > 2.5 {
				t.Fatalf("%s %s: implausible normalized MPKI %v", row.Name, tbl.Columns[i], v)
			}
		}
	}
}

func TestRRIPVSearchSmoke(t *testing.T) {
	lab := smokeLab()
	res := RRIPVSearch(lab)
	if res.Evaluated != 1024 {
		t.Fatalf("evaluated %d vectors", res.Evaluated)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exhaustive search dominates both published promotion rules by
	// construction.
	if res.BestFitness < res.HPFitness || res.BestFitness < res.FPFitness {
		t.Fatalf("best %.4f below a baseline (HP %.4f, FP %.4f)",
			res.BestFitness, res.HPFitness, res.FPFitness)
	}
	if !strings.Contains(res.Format(), "SRRIP-HP") {
		t.Fatal("format")
	}
}

func TestBypassTableSmoke(t *testing.T) {
	lab := smokeLab()
	tbl := Bypass(lab)
	if len(tbl.Rows) != 29 || len(tbl.Columns) != 3 {
		t.Fatalf("bypass table %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
}

func TestCharacterizeSmoke(t *testing.T) {
	lab := smokeLab()
	cs := Characterize(lab)
	if len(cs) != 29 {
		t.Fatalf("%d characterizations", len(cs))
	}
	for _, c := range cs {
		if c.LLCRecords == 0 {
			t.Fatalf("%s: empty LLC stream", c.Workload)
		}
		if c.Footprint <= 0 || c.Footprint > c.LLCRecords+1 {
			t.Fatalf("%s: footprint %d vs %d records", c.Workload, c.Footprint, c.LLCRecords)
		}
		if c.ColdFrac < 0 || c.ColdFrac > 1 || c.LRUFAHit < 0 || c.LRUFAHit > 1 {
			t.Fatalf("%s: fractions out of range: %+v", c.Workload, c)
		}
	}
	out := FormatCharacterization(cs)
	if !strings.Contains(out, "mcf_like") || !strings.Contains(out, "meanRD") {
		t.Fatal("format")
	}
}

func TestCharacterizeStreamingIsCold(t *testing.T) {
	lab := smokeLab()
	for _, c := range Characterize(lab) {
		if c.Workload == "libquantum_like" {
			// A cyclic sweep bigger than the trace window is all first
			// touches at smoke scale... at any scale its cold fraction
			// far exceeds a cache-resident workload's.
			if c.ColdFrac < 0.3 {
				t.Fatalf("libquantum cold fraction %v", c.ColdFrac)
			}
		}
		// gamess (L2-resident) reaches the LLC only for first touches: its
		// LLC stream is entirely cold — the characterization must show it.
		if c.Workload == "gamess_like" && c.ColdFrac != 1 {
			t.Fatalf("gamess cold fraction %v, want 1 (only cold fills reach the LLC)", c.ColdFrac)
		}
		// dealII's delayed single reuse reaches the LLC, so a large share
		// of its LLC accesses are re-references.
		if c.Workload == "dealII_like" && c.ColdFrac > 0.9 {
			t.Fatalf("dealII cold fraction %v, expected visible LLC reuse", c.ColdFrac)
		}
	}
}

func TestSimPointValidationSmoke(t *testing.T) {
	lab := smokeLab()
	rows := SimPointValidation(lab)
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Points < 1 {
			t.Fatalf("%s/%s: no simpoints", r.Workload, r.Policy)
		}
		if r.FullMPKI < 0 || r.SPMPKI < 0 {
			t.Fatalf("negative MPKI: %+v", r)
		}
	}
	if !strings.Contains(FormatSimPointValidation(rows), "rel err") {
		t.Fatal("format")
	}
}
