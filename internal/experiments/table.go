package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gippr/internal/stats"
)

// Table is a per-workload results table with one column per policy, plus a
// geometric-mean summary row — the textual equivalent of the paper's bar
// charts.
type Table struct {
	Title   string
	Columns []string
	Rows    []TableRow
	// MeanFooter switches the Format summary row from geometric to
	// arithmetic means, for tables whose columns legitimately contain zeros
	// (GeoMean rejects non-positive values).
	MeanFooter bool
}

// TableRow is one workload's values across the table's columns.
type TableRow struct {
	Name   string
	Values []float64
}

// SortByColumn orders rows ascending by the named column, matching the
// paper's convention of sorting benchmarks by the statistic being measured
// for DRRIP.
func (t *Table) SortByColumn(col string) {
	idx := t.columnIndex(col)
	sort.SliceStable(t.Rows, func(i, j int) bool {
		return t.Rows[i].Values[idx] < t.Rows[j].Values[idx]
	})
}

func (t *Table) columnIndex(col string) int {
	for i, c := range t.Columns {
		if c == col {
			return i
		}
	}
	panic(fmt.Sprintf("experiments: table %q has no column %q", t.Title, col))
}

// GeoMeans returns the per-column geometric means.
func (t *Table) GeoMeans() []float64 {
	out := make([]float64, len(t.Columns))
	for c := range t.Columns {
		vals := make([]float64, len(t.Rows))
		for r, row := range t.Rows {
			vals[r] = row.Values[c]
		}
		out[c] = stats.GeoMean(vals)
	}
	return out
}

// GeoMean returns one column's geometric mean.
func (t *Table) GeoMean(col string) float64 { return t.GeoMeans()[t.columnIndex(col)] }

// Means returns the per-column arithmetic means — the right summary for
// columns that may legitimately contain zeros (e.g. relative errors), where
// a geometric mean collapses.
func (t *Table) Means() []float64 {
	out := make([]float64, len(t.Columns))
	for c := range t.Columns {
		vals := make([]float64, len(t.Rows))
		for r, row := range t.Rows {
			vals[r] = row.Values[c]
		}
		out[c] = stats.Mean(vals)
	}
	return out
}

// ColumnMean returns one column's arithmetic mean.
func (t *Table) ColumnMean(col string) float64 { return t.Means()[t.columnIndex(col)] }

// ColumnMax returns one column's maximum value (0 for an empty table).
func (t *Table) ColumnMax(col string) float64 {
	idx := t.columnIndex(col)
	max := 0.0
	for i, row := range t.Rows {
		if i == 0 || row.Values[idx] > max {
			max = row.Values[idx]
		}
	}
	return max
}

// GeoMeanOver returns a column's geometric mean over a subset of rows.
func (t *Table) GeoMeanOver(col string, keep func(row string) bool) float64 {
	idx := t.columnIndex(col)
	var vals []float64
	for _, row := range t.Rows {
		if keep(row.Name) {
			vals = append(vals, row.Values[idx])
		}
	}
	return stats.GeoMean(vals)
}

// Value returns one cell.
func (t *Table) Value(row, col string) float64 {
	idx := t.columnIndex(col)
	for _, r := range t.Rows {
		if r.Name == row {
			return r.Values[idx]
		}
	}
	panic(fmt.Sprintf("experiments: table %q has no row %q", t.Title, row))
}

// Format renders the table with a geometric-mean footer.
func (t *Table) Format() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-18s", "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %14s", c)
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-18s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(&sb, " %14.4f", v)
		}
		sb.WriteString("\n")
	}
	footer, vals := "geomean", t.GeoMeans
	if t.MeanFooter {
		footer, vals = "mean", t.Means
	}
	fmt.Fprintf(&sb, "%-18s", footer)
	for _, v := range vals() {
		fmt.Fprintf(&sb, " %14.4f", v)
	}
	sb.WriteString("\n")
	return sb.String()
}
