package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"gippr/internal/explain"
)

const goldenExplainPath = "testdata/golden_explain.json"

// TestDiffDecompositionIdentity is the differential battery behind the
// explain engine: for every pair of roster policies, on every covered
// workload, at 1 and at 8 workers, the explanation's per-bucket hit deltas
// must sum to the replay's exact miss delta (in integers, bit for bit) and
// the headline MPKIs must equal the golden-path Lab.MPKI values bit for
// bit. The 1- and 8-worker explanations must also agree byte for byte once
// rendered — worker scheduling must not perturb a single field.
func TestDiffDecompositionIdentity(t *testing.T) {
	specs := goldenSpecs()
	wls := NewLab(Smoke).Suite()
	if testing.Short() {
		specs = specs[:4]
		wls = wls[:3]
	} else {
		wls = wls[:6]
	}

	type cell struct{ a, b, w string }
	rendered := map[int]map[cell][]byte{}
	for _, workers := range []int{1, 8} {
		lab := NewLab(Smoke).SetWorkers(workers)
		rendered[workers] = map[cell][]byte{}
		for _, w := range wls {
			for i := 0; i < len(specs); i++ {
				for j := i + 1; j < len(specs); j++ {
					a, b := specs[i], specs[j]
					e, err := lab.Diff(a, b, w)
					if err != nil {
						t.Fatalf("Diff(%s, %s, %s): %v", a.Key, b.Key, w.Name, err)
					}
					var sum int64
					for _, bkt := range e.Reuse {
						sum += bkt.SavedMisses
					}
					if sum != e.MissesSaved {
						t.Fatalf("%s vs %s on %s: bucket deltas sum to %d, want %d",
							a.Key, b.Key, w.Name, sum, e.MissesSaved)
					}
					if got, want := goldenKey(e.MPKIA), goldenKey(lab.MPKI(a, w)); got != want {
						t.Fatalf("%s on %s: explain MPKI %s, golden path %s", a.Key, w.Name, got, want)
					}
					if got, want := goldenKey(e.MPKIB), goldenKey(lab.MPKI(b, w)); got != want {
						t.Fatalf("%s on %s: explain MPKI %s, golden path %s", b.Key, w.Name, got, want)
					}
					if e.MPKISaved != e.MPKIA-e.MPKIB {
						t.Fatalf("%s vs %s on %s: MPKISaved %v != %v - %v",
							a.Key, b.Key, w.Name, e.MPKISaved, e.MPKIA, e.MPKIB)
					}
					raw, err := json.Marshal(e)
					if err != nil {
						t.Fatal(err)
					}
					rendered[workers][cell{a.Key, b.Key, w.Name}] = raw
				}
			}
		}
	}
	for c, one := range rendered[1] {
		if eight, ok := rendered[8][c]; !ok || !bytes.Equal(one, eight) {
			t.Fatalf("%s vs %s on %s: 1-worker and 8-worker explanations differ", c.a, c.b, c.w)
		}
	}
}

// TestDiffMemoization checks that the capture and diff memos behave:
// repeated diffs return the identical explanation, and the reversed pair
// negates the headline deltas exactly (both directions read the same
// captures).
func TestDiffMemoization(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(2)
	w := lab.Suite()[0]
	a, b := SpecLRU, SpecWIGIPPR
	e1, err := lab.Diff(a, b, w)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := lab.Diff(a, b, w)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("repeated Diff did not return the memoized explanation")
	}
	rev, err := lab.Diff(b, a, w)
	if err != nil {
		t.Fatal(err)
	}
	if rev.MissesSaved != -e1.MissesSaved || rev.MPKISaved != -(e1.MPKISaved) {
		t.Fatalf("reversed diff: saved %d/%v, want %d/%v",
			rev.MissesSaved, rev.MPKISaved, -e1.MissesSaved, -e1.MPKISaved)
	}
}

// TestDiffAll checks the fan-out wrapper: per-workload explanations in
// suite order, matching the memoized per-workload diffs.
func TestDiffAll(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(4)
	wls := lab.Suite()[:4]
	out, err := lab.DiffAll(context.Background(), SpecLRU, SpecWIGIPPR, wls)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(wls) {
		t.Fatalf("got %d explanations, want %d", len(out), len(wls))
	}
	for i, w := range wls {
		if out[i] == nil || out[i].Workload != w.Name {
			t.Fatalf("entry %d: got %+v, want workload %s", i, out[i], w.Name)
		}
		single, err := lab.Diff(SpecLRU, SpecWIGIPPR, w)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != single {
			t.Fatalf("entry %d is not the memoized explanation", i)
		}
	}
}

// TestGoldenExplain pins one full explanation — LRU vs WI-4-DGIPPR on the
// first suite workload — to a checked-in fixture, byte for byte. Like the
// MPKI golden file, any intentional simulator or schema change regenerates
// it with -update; review the diff before committing.
func TestGoldenExplain(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(1)
	e, err := lab.Diff(SpecLRU, SpecWI4DGIPPR, lab.Suite()[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != explain.Version {
		t.Fatalf("explanation version %d, want %d", e.Version, explain.Version)
	}
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	if *updateGolden {
		if err := os.WriteFile(goldenExplainPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenExplainPath)
		return
	}
	want, err := os.ReadFile(goldenExplainPath)
	if err != nil {
		t.Fatalf("reading golden explanation (regenerate with -update): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("explanation diverged from %s (regenerate with -update if intentional)\ngot:\n%s\nwant:\n%s",
			goldenExplainPath, raw, want)
	}
}
