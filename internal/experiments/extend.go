package experiments

// Extension experiments beyond the paper's figures, covering its future-work
// directions (Section 7): multi-core shared-LLC evaluation (item 4), a
// high-associativity sweep (item 6), systematic search over the RRIP
// transition space (items 3 and 5), and the predictor-guided bypass
// combination (item 1).

import (
	"fmt"
	"strings"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/multicore"
	"gippr/internal/parallel"
	"gippr/internal/policy"
	"gippr/internal/stats"
	"gippr/internal/trace"
	"gippr/internal/workload"
	"gippr/internal/xrand"
)

// MulticoreMixes are the 4-core multi-programmed mixes evaluated by the
// multi-core extension: all-intensive, half-intensive, pointer-heavy and
// mostly-friendly.
var MulticoreMixes = map[string][4]string{
	"intensive": {"cactusADM_like", "libquantum_like", "bwaves_like", "lbm_like"},
	"half":      {"cactusADM_like", "lbm_like", "gcc_like", "gobmk_like"},
	"pointer":   {"mcf_like", "omnetpp_like", "astar_like", "xalancbmk_like"},
	"friendly":  {"namd_like", "gobmk_like", "povray_like", "perlbench_like"},
}

// Multicore runs each mix under LRU, DRRIP, PDP and WI-4-DGIPPR on the
// shared LLC and returns system throughput normalized to LRU (higher is
// better). Expected shape: the adaptive policies cluster above LRU on the
// intensive mixes and stay at 1.0 on the friendly mix.
func Multicore(l *Lab) *Table {
	refs := l.Scale.PhaseRecords / 2
	specs := []struct {
		label string
		mk    func() cache.Policy
	}{
		{"LRU", func() cache.Policy { return policy.NewTrueLRU(l.Cfg.Sets(), l.Cfg.Ways) }},
		{"DRRIP", func() cache.Policy { return policy.NewDRRIP(l.Cfg.Sets(), l.Cfg.Ways) }},
		{"PDP", func() cache.Policy { return policy.NewPDP(l.Cfg.Sets(), l.Cfg.Ways) }},
		{"PIPP-dyn", func() cache.Policy { return policy.NewPIPPDyn(l.Cfg.Sets(), l.Cfg.Ways, 4) }},
		{"WI-4-DGIPPR", func() cache.Policy { return policy.NewDGIPPR4(l.Cfg.Sets(), l.Cfg.Ways, WIVectors4()) }},
	}
	t := &Table{Title: fmt.Sprintf("Multi-core extension: 4-core system throughput normalized to LRU (%d refs/core)", refs)}
	for _, s := range specs[1:] {
		t.Columns = append(t.Columns, s.label)
	}
	mixNames := []string{"intensive", "half", "pointer", "friendly"}
	throughput := func(mix [4]string, mk func() cache.Policy) float64 {
		var srcs []trace.Source
		for i, wname := range mix {
			w, err := workload.ByName(wname)
			if err != nil {
				panic(err)
			}
			srcs = append(srcs, w.Phases[0].Source(xrand.Mix(uint64(i), 0x3c)))
		}
		sys := multicore.New(mk(), srcs)
		sys.Run(refs)
		return sys.Results().Throughput
	}
	// Every (mix, policy) run is an independent deterministic simulation
	// (fresh policy, per-core seeded sources), so the whole matrix fans out.
	vals := make([][]float64, len(mixNames))
	for i := range vals {
		vals[i] = make([]float64, len(specs))
	}
	parallel.For(l.Workers, len(mixNames)*len(specs), func(idx int) {
		mi, si := idx/len(specs), idx%len(specs)
		vals[mi][si] = throughput(MulticoreMixes[mixNames[mi]], specs[si].mk)
	})
	for mi, mixName := range mixNames {
		row := TableRow{Name: mixName}
		for si := range specs[1:] {
			row.Values = append(row.Values, vals[mi][si+1]/vals[mi][0])
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AssocSweep evaluates GIPPR against LRU and DRRIP at 8-, 16-, 32- and
// 64-way associativity (cache size fixed at 4 MB), the paper's future-work
// item 6. Values are MPKI normalized to same-geometry LRU, geomeaned over
// the policy-sensitive workloads. GIPPR's storage advantage grows with
// associativity (k-1 bits per set versus k*log2(k) for LRU), so holding its
// miss advantage at high k is the interesting result.
func AssocSweep(l *Lab) *Table {
	t := &Table{
		Title:   "Associativity sweep: MPKI normalized to same-geometry LRU (4 MB LLC)",
		Columns: []string{"PLRU", "GIPPR", "DRRIP"},
	}
	sensitive := []string{"cactusADM_like", "libquantum_like", "sphinx3_like", "lbm_like", "mcf_like", "omnetpp_like"}
	sensWs := make([]workload.Workload, len(sensitive))
	for i, name := range sensitive {
		w, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		sensWs[i] = w
	}
	l.PrefetchStreams(sensWs)
	allWays := []int{8, 16, 32, 64}
	// One cell per (geometry, policy column); each cell replays its six
	// workloads serially and writes only its own table slot.
	cells := make([][]float64, len(allWays))
	for i := range cells {
		cells[i] = make([]float64, len(t.Columns))
	}
	parallel.For(l.Workers, len(allWays)*len(t.Columns), func(idx int) {
		wi, ci := idx/len(t.Columns), idx%len(t.Columns)
		ways := allWays[wi]
		col := t.Columns[ci]
		cfg := cache.Config{
			Name: fmt.Sprintf("L3/%dw", ways), SizeBytes: l.Cfg.SizeBytes,
			Ways: ways, BlockBytes: l.Cfg.BlockBytes, HitLatency: l.Cfg.HitLatency,
		}
		sets := cfg.Sets()
		mk := map[string]func() cache.Policy{
			"LRU":   func() cache.Policy { return policy.NewTrueLRU(sets, ways) },
			"PLRU":  func() cache.Policy { return policy.NewPLRU(sets, ways) },
			"GIPPR": func() cache.Policy { return policy.NewGIPPR(sets, ways, scaleVector(WIVector1(), ways)) },
			"DRRIP": func() cache.Policy { return policy.NewDRRIP(sets, ways) },
		}
		var ratios []float64
		for _, w := range sensWs {
			var polMisses, lruMisses uint64 = 0, 0
			for _, st := range l.Streams(w) {
				warm := l.warm(len(st.Records))
				polMisses += cache.ReplayStream(st.Records, cfg, mk[col](), warm).Misses
				lruMisses += cache.ReplayStream(st.Records, cfg, mk["LRU"](), warm).Misses
			}
			if lruMisses > 0 {
				ratios = append(ratios, float64(polMisses)/float64(lruMisses))
			}
		}
		cells[wi][ci] = stats.GeoMean(ratios)
	})
	for wi, ways := range allWays {
		t.Rows = append(t.Rows, TableRow{Name: fmt.Sprintf("%d-way", ways), Values: cells[wi]})
	}
	return t
}

// scaleVector adapts a 16-way vector to another associativity by
// proportional scaling (same scheme as the policy registry).
func scaleVector(v ipv.Vector, ways int) ipv.Vector {
	if v.K() == ways {
		return v
	}
	out := make(ipv.Vector, ways+1)
	for i := range out {
		src := i * v.K() / ways
		if i == ways {
			src = v.K()
		}
		out[i] = v[src] * ways / v.K()
		if out[i] >= ways {
			out[i] = ways - 1
		}
	}
	return out
}

// RRIPVResult is the outcome of the exhaustive RRIP-transition-vector
// search (future-work items 3 and 5: systematic search, applied to RRIP).
type RRIPVResult struct {
	Best        policy.RRIPVector
	BestFitness float64
	// HPFitness and FPFitness are the fitnesses of the two published RRIP
	// promotion rules under the same evaluation.
	HPFitness float64
	FPFitness float64
	Evaluated int
}

// RRIPVSearch exhaustively evaluates all 4^5 = 1024 RRIP transition vectors
// with the GA fitness function on shortened streams. Unlike the IPV space
// (16^17 points, needing a genetic algorithm), this space admits the
// systematic search the paper calls for.
func RRIPVSearch(l *Lab) RRIPVResult {
	// Evaluate on four policy-sensitive workloads at full evaluation
	// length. Replacement-policy differences only materialize once sets
	// fill and evict repeatedly (>= ~100 accesses per set), so unlike the
	// 17-entry IPV search — whose GA tolerates shortened fitness streams —
	// this exhaustive pass trades workload breadth for stream depth.
	sensitive := []string{"cactusADM_like", "dealII_like", "sphinx3_like", "mcf_like"}
	var streams [][]trace.Record
	var warms []int
	sensWs := make([]workload.Workload, len(sensitive))
	for i, name := range sensitive {
		w, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		sensWs[i] = w
	}
	l.PrefetchStreams(sensWs)
	for _, w := range sensWs {
		for _, s := range l.Streams(w) {
			recs := s.Records
			if max := l.Scale.PhaseRecords / 2; len(recs) > max {
				recs = recs[:max]
			}
			if len(recs) == 0 {
				continue
			}
			streams = append(streams, recs)
			warms = append(warms, l.warm(len(recs)))
		}
	}
	fitness := func(v policy.RRIPVector) float64 {
		var miss, acc uint64
		for i, recs := range streams {
			rs := cache.ReplayStream(recs, l.Cfg, policy.NewRRIPV(l.Cfg.Sets(), l.Cfg.Ways, v), warms[i])
			miss += rs.Misses
			acc += rs.Accesses
		}
		if acc == 0 {
			return 0
		}
		return 1 - float64(miss)/float64(acc) // hit rate as the score
	}
	// The 1024-point space is scored in parallel; the argmax scan below
	// walks the same enumeration order as the old nested loops (strict >, so
	// ties resolve to the lowest index), keeping the result bit-identical
	// for any worker count.
	const nVec = 4 * 4 * 4 * 4 * 4
	decode := func(i int) policy.RRIPVector {
		return policy.RRIPVector{
			Promote: [4]uint8{uint8(i >> 6 & 3), uint8(i >> 4 & 3), uint8(i >> 2 & 3), uint8(i & 3)},
			Insert:  uint8(i >> 8 & 3),
		}
	}
	fits := make([]float64, nVec)
	parallel.For(l.Workers, nVec, func(i int) { fits[i] = fitness(decode(i)) })
	res := RRIPVResult{BestFitness: -1}
	for p0 := 0; p0 < 4; p0++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := 0; p2 < 4; p2++ {
				for p3 := 0; p3 < 4; p3++ {
					for ins := 0; ins < 4; ins++ {
						i := ins<<8 | p0<<6 | p1<<4 | p2<<2 | p3
						res.Evaluated++
						if fits[i] > res.BestFitness {
							res.BestFitness, res.Best = fits[i], decode(i)
						}
					}
				}
			}
		}
	}
	res.HPFitness = fitness(policy.SRRIPHPVector)
	res.FPFitness = fitness(policy.SRRIPFPVector)
	return res
}

// Format renders the RRIPV search outcome.
func (r RRIPVResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Exhaustive RRIP transition-vector search (future work items 3 and 5)\n")
	fmt.Fprintf(&sb, "evaluated %d vectors\n", r.Evaluated)
	fmt.Fprintf(&sb, "best:      promote=%v insert=%d  hit rate %.6f\n", r.Best.Promote, r.Best.Insert, r.BestFitness)
	fmt.Fprintf(&sb, "SRRIP-HP:  promote=%v insert=%d  hit rate %.6f\n", policy.SRRIPHPVector.Promote, policy.SRRIPHPVector.Insert, r.HPFitness)
	fmt.Fprintf(&sb, "SRRIP-FP:  promote=%v insert=%d  hit rate %.6f\n", policy.SRRIPFPVector.Promote, policy.SRRIPFPVector.Insert, r.FPFitness)
	return sb.String()
}

// Bypass compares GIPPR with the predictor-guided bypass combination
// (future-work item 1) on the streaming-heavy workloads, as MPKI normalized
// to LRU.
func Bypass(l *Lab) *Table {
	t := &Table{Title: "GIPPR + bypass predictor extension: MPKI normalized to LRU"}
	specs := []Spec{
		SpecWIGIPPR,
		{Key: "wi-gippr-bypass", Label: "GIPPR+bypass", New: func(_ string, s, w int) cache.Policy {
			return policy.NewBypassGIPPR(s, w, WIVector1())
		}},
		SpecWI4DGIPPR,
	}
	for _, s := range specs {
		t.Columns = append(t.Columns, s.Label)
	}
	for _, w := range l.Suite() {
		row := TableRow{Name: w.Name}
		for _, s := range specs {
			row.Values = append(row.Values, l.NormalizedMPKI(s, SpecLRU, w))
		}
		t.Rows = append(t.Rows, row)
	}
	t.SortByColumn("GIPPR+bypass")
	return t
}
