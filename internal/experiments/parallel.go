package experiments

// The parallel evaluation engine: the paper's grid — ~14 policies x 29
// workloads x up to 3 phases — is embarrassingly parallel, because every
// (policy, workload, phase) cell builds a fresh policy instance and replays
// a deterministically seeded stream. Prefetch fans the cells out over a
// bounded worker pool and lets the Lab's singleflight memoization absorb the
// results; the figure runners then read memoized values serially, so their
// output is bit-identical to a fully serial run regardless of worker count
// or cell completion order (the determinism test in parallel_test.go holds
// this invariant under the race detector).

import (
	"context"

	"gippr/internal/parallel"
	"gippr/internal/workload"
)

// gridCell names one unit of work in a prefetch fan-out. A nil spec marks a
// Belady MIN cell.
type gridCell struct {
	spec  *Spec
	w     workload.Workload
	phase int
}

// Prefetch computes every (spec, workload, phase) cell over the full suite
// in parallel on l.Workers goroutines. With withOptimal, Belady MIN is also
// computed per (workload, phase). After it returns, every corresponding
// MPKI/CPI/Speedup/OptimalMPKI call is a memoized map lookup.
func (l *Lab) Prefetch(specs []Spec, withOptimal bool) {
	l.PrefetchWorkloads(specs, l.suite, withOptimal)
}

// PrefetchCtx is Prefetch with explicit cancellation: when ctx is
// cancelled, no new cell starts, in-flight cells drain to completion (their
// memoized results stay valid), and the error is ctx.Err().
func (l *Lab) PrefetchCtx(ctx context.Context, specs []Spec, withOptimal bool) error {
	return l.PrefetchWorkloadsCtx(ctx, specs, l.suite, withOptimal)
}

// PrefetchWorkloads is Prefetch restricted to a subset of workloads.
func (l *Lab) PrefetchWorkloads(specs []Spec, ws []workload.Workload, withOptimal bool) {
	// Cancellation via the lab context only stops precomputation; the
	// memoized getters behind the figure runners still compute missing
	// cells on demand, so dropping the error here never corrupts output.
	_ = l.PrefetchWorkloadsCtx(l.ctx, specs, ws, withOptimal)
}

// PrefetchWorkloadsCtx is PrefetchCtx restricted to a subset of workloads.
func (l *Lab) PrefetchWorkloadsCtx(ctx context.Context, specs []Spec, ws []workload.Workload, withOptimal bool) error {
	// Build the LLC streams first, one task per workload. Doing this as its
	// own pass keeps the cell pass below from stacking every spec of one
	// workload behind that workload's stream build.
	if err := l.PrefetchStreamsCtx(ctx, ws); err != nil {
		return err
	}

	var cells []gridCell
	for _, w := range ws {
		for p := range w.Phases {
			for si := range specs {
				cells = append(cells, gridCell{spec: &specs[si], w: w, phase: p})
			}
			if withOptimal {
				cells = append(cells, gridCell{w: w, phase: p})
			}
		}
	}
	return parallel.ForCtx(ctx, l.Workers, len(cells), func(i int) {
		c := cells[i]
		if c.spec == nil {
			l.optimalRun(c.w, c.phase)
		} else {
			l.phaseRun(*c.spec, c.w, c.phase)
		}
	})
}

// PrefetchMulti computes the same grid as Prefetch through the single-pass
// engine: one task per (workload, phase), each replaying every spec's model
// from one walk of the phase's stream (cpu.MultiWindowReplay) instead of
// one walk per spec. Results land in the same memo as Prefetch and are
// bit-identical to it; the golden equivalence test holds both engines to
// that. Belady MIN needs future knowledge, so with withOptimal it runs as
// its own offline task alongside each phase's multi-model replay.
func (l *Lab) PrefetchMulti(specs []Spec, withOptimal bool) {
	// See PrefetchWorkloads on why the error is safe to drop.
	_ = l.PrefetchMultiCtx(l.ctx, specs, withOptimal)
}

// PrefetchMultiCtx is PrefetchMulti with explicit cancellation: no new
// (workload, phase) task starts after ctx is cancelled, in-flight tasks
// drain, and the error is ctx.Err().
func (l *Lab) PrefetchMultiCtx(ctx context.Context, specs []Spec, withOptimal bool) error {
	return l.PrefetchMultiWorkloadsCtx(ctx, specs, l.suite, withOptimal)
}

// PrefetchMultiWorkloadsCtx is PrefetchMultiCtx restricted to a subset of
// workloads.
func (l *Lab) PrefetchMultiWorkloadsCtx(ctx context.Context, specs []Spec, ws []workload.Workload, withOptimal bool) error {
	if err := l.PrefetchStreamsCtx(ctx, ws); err != nil {
		return err
	}
	type task struct {
		w       workload.Workload
		phase   int
		optimal bool
	}
	var tasks []task
	for _, w := range ws {
		for p := range w.Phases {
			tasks = append(tasks, task{w: w, phase: p})
			if withOptimal {
				tasks = append(tasks, task{w: w, phase: p, optimal: true})
			}
		}
	}
	return parallel.ForCtx(ctx, l.Workers, len(tasks), func(i int) {
		t := tasks[i]
		if t.optimal {
			l.optimalRun(t.w, t.phase)
		} else {
			l.multiPhaseRun(specs, t.w, t.phase)
		}
	})
}

// PrefetchStreams builds the LLC-filtered streams of the given workloads in
// parallel (all of them when ws is nil).
func (l *Lab) PrefetchStreams(ws []workload.Workload) {
	_ = l.PrefetchStreamsCtx(l.ctx, ws) // see PrefetchWorkloads on the dropped error
}

// PrefetchStreamsCtx is PrefetchStreams with explicit cancellation; a
// stream build in flight at cancellation time runs to completion and is
// memoized as usual.
func (l *Lab) PrefetchStreamsCtx(ctx context.Context, ws []workload.Workload) error {
	if ws == nil {
		ws = l.suite
	}
	return parallel.ForCtx(ctx, l.Workers, len(ws), func(i int) { l.Streams(ws[i]) })
}
