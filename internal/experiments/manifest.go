package experiments

import (
	"context"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/parallel"
	"gippr/internal/stats"
	"gippr/internal/telemetry"
	"gippr/internal/workload"
)

// TelemetryEntry replays every phase of a workload under a policy with an
// event sink attached and returns the merged manifest entry: weighted MPKI
// plus the LLC's event-level report (insertion positions, promotion
// distances, reuse and dead-time histograms, dueling votes) over the
// measurement windows of all phases. Instrumented replays bypass the lab's
// memoized results on purpose — the memo holds terminal numbers only, and an
// entry must describe a single coherent run.
func (l *Lab) TelemetryEntry(spec Spec, w workload.Workload) telemetry.Entry {
	merged := &telemetry.Sink{}
	vals := make([]float64, len(w.Phases))
	wts := make([]float64, len(w.Phases))
	for pi, ph := range w.Phases {
		st := l.Streams(w)[pi]
		pol := spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
		var sink telemetry.Sink
		res := cpu.WindowReplayTel(st.Records, l.Cfg, pol, l.warm(len(st.Records)),
			cpu.DefaultWindowModel(), &sink)
		merged.Merge(&sink)
		vals[pi] = l.phaseMPKI(res.Misses, res.Instructions)
		wts[pi] = ph.Weight
	}
	return telemetry.Entry{
		Workload: w.Name,
		Policy:   spec.Label,
		MPKI:     stats.WeightedMean(vals, wts),
		LLC:      merged.Report(),
	}
}

// multiTelemetryEntries builds TelemetryEntry's output for every spec on one
// workload from a single pass per phase: one cpu.MultiWindowReplay drives
// all the models with a private telemetry sink each, so N instrumented
// entries cost one walk of the stream instead of N. Per-model results and
// events are bit-identical to TelemetryEntry's (the kernel's equivalence
// guarantee); entries come back in spec order.
func (l *Lab) multiTelemetryEntries(specs []Spec, w workload.Workload) []telemetry.Entry {
	merged := make([]*telemetry.Sink, len(specs))
	vals := make([][]float64, len(specs))
	for si := range specs {
		merged[si] = &telemetry.Sink{}
		vals[si] = make([]float64, len(w.Phases))
	}
	wts := make([]float64, len(w.Phases))
	for pi, ph := range w.Phases {
		st := l.Streams(w)[pi]
		pols := make([]cache.Policy, len(specs))
		models := make([]*cpu.WindowModel, len(specs))
		sinks := make([]*telemetry.Sink, len(specs))
		for si, spec := range specs {
			pols[si] = spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
			models[si] = cpu.DefaultWindowModel()
			sinks[si] = &telemetry.Sink{}
		}
		results := cpu.MultiWindowReplay(st.Records, l.Cfg, pols, l.warm(len(st.Records)), models, sinks)
		wts[pi] = ph.Weight
		for si := range specs {
			merged[si].Merge(sinks[si])
			vals[si][pi] = l.phaseMPKI(results[si].Misses, results[si].Instructions)
		}
	}
	entries := make([]telemetry.Entry, len(specs))
	for si, spec := range specs {
		entries[si] = telemetry.Entry{
			Workload: w.Name,
			Policy:   spec.Label,
			MPKI:     stats.WeightedMean(vals[si], wts),
			LLC:      merged[si].Report(),
		}
	}
	return entries
}

// Manifest builds a run manifest over specs x the lab's workload suite,
// replaying each (policy, workload) pair with telemetry attached. Each
// workload is one parallel task that replays all specs in a single pass
// over its streams (multiTelemetryEntries), so the manifest costs one
// stream walk per workload phase rather than one per (spec, phase); entry
// values are bit-identical to per-spec replays. The entry order is
// deterministic (spec-major, suite order) regardless of scheduling. On
// cancellation the partial manifest built so far is returned with ctx's
// error; a workload's entries are either all present or all absent, never
// truncated mid-workload.
func (l *Lab) Manifest(ctx context.Context, tool, fingerprint string, specs []Spec) (*telemetry.Manifest, error) {
	geom := telemetry.CacheGeometry{
		Name:       l.Cfg.Name,
		SizeBytes:  l.Cfg.SizeBytes,
		Ways:       l.Cfg.Ways,
		BlockBytes: l.Cfg.BlockBytes,
		Sets:       l.Cfg.Sets(),
	}
	if l.Cfg.SampleShift > 0 {
		geom.SampleShift = l.Cfg.SampleShift
		geom.SampledSets = l.Cfg.SampledSets()
	}
	m := &telemetry.Manifest{
		Tool:        tool,
		Fingerprint: fingerprint,
		Cache:       geom,
		Records:     l.Scale.PhaseRecords,
		WarmFrac:    l.Scale.WarmFrac,
	}
	perWorkload := make([][]telemetry.Entry, len(l.suite))
	err := parallel.ForCtx(ctx, l.Workers, len(l.suite), func(wi int) {
		perWorkload[wi] = l.multiTelemetryEntries(specs, l.suite[wi])
	})
	for si := range specs {
		for wi := range l.suite {
			if perWorkload[wi] != nil {
				m.Entries = append(m.Entries, perWorkload[wi][si])
			}
		}
	}
	return m, err
}
