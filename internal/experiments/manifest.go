package experiments

import (
	"context"

	"gippr/internal/cpu"
	"gippr/internal/parallel"
	"gippr/internal/stats"
	"gippr/internal/telemetry"
	"gippr/internal/workload"
)

// TelemetryEntry replays every phase of a workload under a policy with an
// event sink attached and returns the merged manifest entry: weighted MPKI
// plus the LLC's event-level report (insertion positions, promotion
// distances, reuse and dead-time histograms, dueling votes) over the
// measurement windows of all phases. Instrumented replays bypass the lab's
// memoized results on purpose — the memo holds terminal numbers only, and an
// entry must describe a single coherent run.
func (l *Lab) TelemetryEntry(spec Spec, w workload.Workload) telemetry.Entry {
	merged := &telemetry.Sink{}
	vals := make([]float64, len(w.Phases))
	wts := make([]float64, len(w.Phases))
	for pi, ph := range w.Phases {
		st := l.Streams(w)[pi]
		pol := spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
		var sink telemetry.Sink
		res := cpu.WindowReplayTel(st.Records, l.Cfg, pol, l.warm(len(st.Records)),
			cpu.DefaultWindowModel(), &sink)
		merged.Merge(&sink)
		vals[pi] = stats.MPKI(res.Misses, res.Instructions)
		wts[pi] = ph.Weight
	}
	return telemetry.Entry{
		Workload: w.Name,
		Policy:   spec.Label,
		MPKI:     stats.WeightedMean(vals, wts),
		LLC:      merged.Report(),
	}
}

// Manifest builds a run manifest over specs x the lab's workload suite,
// replaying each (policy, workload) pair with telemetry attached. Pairs run
// in parallel up to the lab's worker count; the entry order is deterministic
// (spec-major, suite order) regardless of scheduling. On cancellation the
// partial manifest built so far is returned with ctx's error; entries are
// either complete or absent, never truncated mid-workload.
func (l *Lab) Manifest(ctx context.Context, tool, fingerprint string, specs []Spec) (*telemetry.Manifest, error) {
	m := &telemetry.Manifest{
		Tool:        tool,
		Fingerprint: fingerprint,
		Cache: telemetry.CacheGeometry{
			Name:       l.Cfg.Name,
			SizeBytes:  l.Cfg.SizeBytes,
			Ways:       l.Cfg.Ways,
			BlockBytes: l.Cfg.BlockBytes,
			Sets:       l.Cfg.Sets(),
		},
		Records:  l.Scale.PhaseRecords,
		WarmFrac: l.Scale.WarmFrac,
	}
	type cell struct{ si, wi int }
	var cells []cell
	for si := range specs {
		for wi := range l.suite {
			cells = append(cells, cell{si, wi})
		}
	}
	entries := make([]telemetry.Entry, len(cells))
	done := make([]bool, len(cells))
	err := parallel.ForCtx(ctx, l.Workers, len(cells), func(i int) {
		entries[i] = l.TelemetryEntry(specs[cells[i].si], l.suite[cells[i].wi])
		done[i] = true
	})
	for i := range cells {
		if done[i] {
			m.Entries = append(m.Entries, entries[i])
		}
	}
	return m, err
}
