package experiments

import (
	"context"
	"testing"
)

func TestLabManifest(t *testing.T) {
	l := smokeLab()
	m, err := l.Manifest(context.Background(), "test", "fp|smoke", []Spec{SpecPLRU})
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "test" || m.Fingerprint != "fp|smoke" {
		t.Errorf("manifest header = %q/%q", m.Tool, m.Fingerprint)
	}
	if m.Cache.Sets != l.Cfg.Sets() || m.Cache.Ways != l.Cfg.Ways {
		t.Errorf("manifest geometry = %+v", m.Cache)
	}
	if len(m.Entries) != len(l.Suite()) {
		t.Fatalf("got %d entries, want one per workload (%d)", len(m.Entries), len(l.Suite()))
	}
	for i, w := range l.Suite() {
		e := m.Entries[i]
		if e.Workload != w.Name || e.Policy != "PLRU" {
			t.Fatalf("entry %d = %s/%s, want %s/PLRU (order must be deterministic)",
				i, e.Workload, e.Policy, w.Name)
		}
		// The instrumented replay must agree with the memoized scalar path.
		if want := l.MPKI(SpecPLRU, w); e.MPKI != want {
			t.Errorf("%s: manifest MPKI %.6f != lab MPKI %.6f", w.Name, e.MPKI, want)
		}
		if e.LLC.Accesses != e.LLC.Hits+e.LLC.Misses {
			t.Errorf("%s: accesses %d != hits+misses", w.Name, e.LLC.Accesses)
		}
		// Cache-resident smoke workloads may see zero fills in the measured
		// window; what must always hold is one insertion event per fill.
		if e.LLC.Insertions != e.LLC.Fills {
			t.Errorf("%s: insertions %d != fills %d", w.Name, e.LLC.Insertions, e.LLC.Fills)
		}
	}
}

func TestLabManifestCancelled(t *testing.T) {
	l := smokeLab()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := l.Manifest(ctx, "test", "fp", []Spec{SpecPLRU})
	if err == nil {
		t.Fatal("cancelled manifest returned nil error")
	}
	if len(m.Entries) != 0 {
		t.Errorf("cancelled-before-start manifest has %d entries", len(m.Entries))
	}
}
