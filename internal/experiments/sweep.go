package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"gippr/internal/cache"
	"gippr/internal/parallel"
	"gippr/internal/stackdist"
	"gippr/internal/stats"
	"gippr/internal/workload"
)

// LatticeSpec names one one-pass geometry sweep: the LRU lattice bounds
// (every power-of-two set count in [MinSets, MaxSets] crossed with every
// associativity 1..MaxWays) plus the tree-PLRU geometries co-simulated in
// the same pass. The block size and warm-up come from the lab, so the same
// spec against the same lab always means the same cells.
type LatticeSpec struct {
	MinSets int                  `json:"min_sets"`
	MaxSets int                  `json:"max_sets"`
	MaxWays int                  `json:"max_ways"`
	PLRU    []stackdist.Geometry `json:"plru,omitempty"`
}

// DefaultLatticeSpec sweeps around a geometry: set counts from a quarter of
// the cache's up to the cache's, associativities up to the cache's, with
// tree-PLRU co-simulated at the cache's own shape.
func DefaultLatticeSpec(cfg cache.Config) LatticeSpec {
	sets := cfg.Sets()
	minSets := sets / 4
	if minSets < 1 {
		minSets = 1
	}
	return LatticeSpec{
		MinSets: minSets,
		MaxSets: sets,
		MaxWays: cfg.Ways,
		PLRU:    []stackdist.Geometry{{Sets: sets, Ways: cfg.Ways}},
	}
}

// Options renders the spec as a stackdist request for one stream.
func (sp LatticeSpec) Options(blockBytes, warm int) stackdist.Options {
	return stackdist.Options{
		BlockBytes: blockBytes,
		MinSets:    sp.MinSets,
		MaxSets:    sp.MaxSets,
		MaxWays:    sp.MaxWays,
		Warm:       warm,
		PLRU:       sp.PLRU,
	}
}

// Validate checks the spec against a block size up front; every failure
// wraps cache.ErrBadGeometry (usage exit code, HTTP 400 via serve).
func (sp LatticeSpec) Validate(blockBytes int) error {
	return sp.Options(blockBytes, 0).Validate()
}

// Points returns the number of cells one workload contributes: the full
// LRU lattice plus the PLRU geometries. Meaningful only for valid specs.
func (sp LatticeSpec) Points() int { return sp.Options(1, 0).Points() }

// Labels returns the canonical cell labels in result order — the order
// SweepGrid emits each workload's cells in.
func (sp LatticeSpec) Labels() []string { return sp.Options(1, 0).Labels() }

// Key is the spec's canonical memoization/fingerprint fragment.
func (sp LatticeSpec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:%d:%d", sp.MinSets, sp.MaxSets, sp.MaxWays)
	for _, g := range sp.PLRU {
		fmt.Fprintf(&b, ",%dx%d", g.Sets, g.Ways)
	}
	return b.String()
}

// sweepFlight is the singleflight slot of one (spec, workload, phase)
// one-pass run, following the flight contract: res is only read after
// once.Do returns.
type sweepFlight struct {
	once sync.Once
	res  *stackdist.Sweep
}

// claimSweep returns the singleflight slot for one sweep key, creating it
// if absent.
func (l *Lab) claimSweep(key string) *sweepFlight {
	l.mu.Lock()
	f, ok := l.sweeps[key]
	if !ok {
		f = &sweepFlight{}
		l.sweeps[key] = f
	}
	l.mu.Unlock()
	return f
}

// sweepPhase runs the one-pass engine over one workload phase, memoized
// like phaseRun: concurrent requests for the same (spec, workload, phase)
// coalesce into a single stream walk. The engine always runs at full
// fidelity — the lattice is exact by construction, so the lab's sampling
// shift (which trades exactness for speed on the grid path) does not apply.
// Callers must have validated the spec; an engine error here is a
// programmer error.
func (l *Lab) sweepPhase(spec LatticeSpec, w workload.Workload, phase int) *stackdist.Sweep {
	f := l.claimSweep(fmt.Sprintf("%s|%s|%d", spec.Key(), w.Name, phase))
	f.once.Do(func() {
		st := l.Streams(w)[phase]
		sw, err := stackdist.Run(st.Records, spec.Options(l.Cfg.BlockBytes, l.warm(len(st.Records))))
		if err != nil {
			panic(fmt.Sprintf("experiments: one-pass sweep on validated spec: %v", err))
		}
		f.res = sw
	})
	return f.res
}

// OnePassSweep evaluates the full lattice on one workload and returns one
// GridCell per lattice point, labeled "lru@SETSxWAYS" / "plru@SETSxWAYS",
// in LatticeSpec.Labels order. Aggregation over phases uses exactly the
// grid path's expressions (stats.MPKI per phase, then the weighted mean in
// the same order), so the lattice point matching a Spec's geometry and
// policy is bit-identical to that Spec's grid cell. Lattice cells carry no
// timing model: IPC is 0.
func (l *Lab) OnePassSweep(spec LatticeSpec, w workload.Workload) ([]GridCell, error) {
	if err := spec.Validate(l.Cfg.BlockBytes); err != nil {
		return nil, err
	}
	return l.onePassCells(spec, w), nil
}

// onePassCells is OnePassSweep past validation.
func (l *Lab) onePassCells(spec LatticeSpec, w workload.Workload) []GridCell {
	sweeps := make([]*stackdist.Sweep, len(w.Phases))
	for pi := range w.Phases {
		sweeps[pi] = l.sweepPhase(spec, w, pi)
	}
	points := sweeps[0].Results
	cells := make([]GridCell, len(points))
	mpkis := make([]float64, len(w.Phases))
	hitrs := make([]float64, len(w.Phases))
	wts := make([]float64, len(w.Phases))
	for gi := range points {
		cell := GridCell{Workload: w.Name, Policy: points[gi].Label()}
		for pi, ph := range w.Phases {
			res := sweeps[pi].Results[gi]
			mpkis[pi] = res.MPKI
			acc := res.Accesses
			if acc < 1 {
				acc = 1
			}
			hitrs[pi] = 100 * float64(res.Hits) / float64(acc)
			wts[pi] = ph.Weight
			cell.Misses += res.Misses
			cell.Accesses += res.Accesses
		}
		cell.MPKI = stats.WeightedMean(mpkis, wts)
		cell.HitPct = stats.WeightedMean(hitrs, wts)
		cells[gi] = cell
	}
	return cells
}

// SweepGrid evaluates the lattice across workloads through the memoized
// one-pass engine and returns cells in workload-major order (all lattice
// points of wls[0], then wls[1], ...), each workload one parallel task on
// l.Workers goroutines. Cell values are bit-identical at any worker count
// and across repeat calls. onCell follows the Grid contract: invoked once
// per settled cell, concurrently, as each workload's pass completes. On
// cancellation no new workload starts, in-flight ones drain, and the
// partial cells return alongside ctx's error.
func (l *Lab) SweepGrid(ctx context.Context, spec LatticeSpec, wls []workload.Workload, onCell func(GridCell)) ([]GridCell, error) {
	if err := spec.Validate(l.Cfg.BlockBytes); err != nil {
		return nil, err
	}
	points := spec.Points()
	cells := make([]GridCell, len(wls)*points)
	err := parallel.ForCtx(ctx, l.Workers, len(wls), func(wi int) {
		cs := l.onePassCells(spec, wls[wi])
		copy(cells[wi*points:(wi+1)*points], cs)
		if onCell != nil {
			for _, c := range cs {
				onCell(c)
			}
		}
	})
	return cells, err
}

// LatticeReport renders the geometry-lattice section: per workload, a
// table of LRU MPKI with one row per set count and one column per
// associativity, followed by one line per co-simulated tree-PLRU geometry.
func (l *Lab) LatticeReport(ctx context.Context, spec LatticeSpec, wls []workload.Workload) (string, error) {
	cells, err := l.SweepGrid(ctx, spec, wls, nil)
	if err != nil {
		return "", err
	}
	pts := spec.Options(1, 0).Lattice()
	points := spec.Points()
	var b strings.Builder
	for wi, w := range wls {
		t := &Table{
			Title:      fmt.Sprintf("One-pass lattice MPKI: %s (rows sets, cols ways)", w.Name),
			MeanFooter: true,
		}
		for wy := 1; wy <= spec.MaxWays; wy++ {
			t.Columns = append(t.Columns, fmt.Sprintf("w%d", wy))
		}
		rows := map[int]*TableRow{}
		var order []int
		var plruLines []string
		for pi, p := range pts {
			c := cells[wi*points+pi]
			if p.Policy == stackdist.PolicyPLRU {
				plruLines = append(plruLines,
					fmt.Sprintf("%-18s MPKI %10.4f   hit %6.2f%%", p.Label(), c.MPKI, c.HitPct))
				continue
			}
			r, ok := rows[p.Sets]
			if !ok {
				r = &TableRow{Name: fmt.Sprintf("lru s=%d", p.Sets)}
				rows[p.Sets] = r
				order = append(order, p.Sets)
			}
			r.Values = append(r.Values, c.MPKI)
		}
		for _, s := range order {
			t.Rows = append(t.Rows, *rows[s])
		}
		b.WriteString(t.Format())
		for _, line := range plruLines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
