package experiments

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"gippr/internal/stackdist"
)

// updateGolden rewrites testdata/golden_mpki.json from the current
// simulator output:
//
//	go test ./internal/experiments -run TestGolden -update
//
// Each golden test owns one section of the file ("grid" for the policy
// roster, "lattice" for the one-pass sweep) and rewrites only its own, so a
// partial -update run never discards the other section's fingerprints.
// Review the diff before committing — any change means the simulation is no
// longer bit-compatible with the checked-in fingerprints.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_mpki.json with current MPKI values")

const goldenPath = "testdata/golden_mpki.json"

// goldenFile is the fingerprint document: grid is workload -> policy key ->
// MPKI for the roster policies at the paper LLC; lattice is workload ->
// lattice point label -> MPKI for the one-pass geometry sweep.
type goldenFile struct {
	Grid    map[string]map[string]string `json:"grid"`
	Lattice map[string]map[string]string `json:"lattice"`
}

// loadGoldenFile reads the checked-in fingerprint document; missing files
// come back empty so an -update run can populate from scratch.
func loadGoldenFile(t *testing.T) *goldenFile {
	t.Helper()
	var g goldenFile
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		if os.IsNotExist(err) && *updateGolden {
			return &g
		}
		t.Fatalf("reading golden fingerprints (regenerate with -update): %v", err)
	}
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return &g
}

// saveGoldenFile writes the fingerprint document back. Callers mutate only
// their own section of a freshly loaded file, preserving the rest.
func saveGoldenFile(t *testing.T, g *goldenFile) {
	t.Helper()
	raw, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// compareGoldenSection reports every mismatch between a computed section and
// its checked-in counterpart, in both directions.
func compareGoldenSection(t *testing.T, section string, got, want map[string]map[string]string) {
	t.Helper()
	if want == nil {
		t.Fatalf("golden file has no %q section (regenerate with -update)", section)
	}
	if len(want) != len(got) {
		t.Errorf("golden %s section covers %d workloads, simulator produced %d (regenerate with -update?)",
			section, len(want), len(got))
	}
	for wl, row := range got {
		wantRow, ok := want[wl]
		if !ok {
			t.Errorf("%s: workload %s missing from golden file (regenerate with -update?)", section, wl)
			continue
		}
		for key, v := range row {
			if wv, ok := wantRow[key]; !ok {
				t.Errorf("%s: %s/%s missing from golden file (regenerate with -update?)", section, wl, key)
			} else if v != wv {
				t.Errorf("%s: %s/%s: MPKI %s, golden %s", section, wl, key, v, wv)
			}
		}
	}
}

// goldenSpecs is the fingerprinted roster: the headline baselines, the
// strongest prior work, and the GIPPR family — the same roster the
// gippr-report telemetry manifest covers.
func goldenSpecs() []Spec {
	return []Spec{
		SpecLRU, SpecPLRU, SpecDRRIP, SpecPDP,
		SpecSHiP, SpecMSLRU, SpecWIGIPPR, SpecWI2DGIPPR, SpecWI4DGIPPR,
	}
}

// goldenKey formats an MPKI for exact comparison. 'g'/17 round-trips every
// float64 bit pattern, so two runs match iff their doubles are identical.
func goldenKey(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

// loadGolden reads the grid section's workload -> policy -> MPKI
// fingerprints.
func loadGolden(t *testing.T) map[string]map[string]string {
	t.Helper()
	g := loadGoldenFile(t)
	if g.Grid == nil {
		t.Fatalf("golden file has no grid section (regenerate with -update)")
	}
	return g.Grid
}

// TestGoldenMPKI pins the smoke-scale LLC MPKI of every roster policy on
// every workload to checked-in fingerprints, exactly (bit-identical
// float64s). Any intentional change to workload generation, the hierarchy
// filter, replacement policy behaviour or the replay loop must regenerate
// the file with -update; an unintentional difference is a regression this
// test exists to catch.
func TestGoldenMPKI(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(1)
	specs := goldenSpecs()

	got := map[string]map[string]string{}
	for _, w := range lab.Suite() {
		row := map[string]string{}
		for _, spec := range specs {
			row[spec.Key] = goldenKey(lab.MPKI(spec, w))
		}
		got[w.Name] = row
	}

	if *updateGolden {
		g := loadGoldenFile(t)
		g.Grid = got
		saveGoldenFile(t, g)
		t.Logf("rewrote %s grid section: %d workloads x %d policies", goldenPath, len(got), len(specs))
		return
	}

	compareGoldenSection(t, "grid", got, loadGolden(t))
}

// goldenLatticeSpec is the fingerprinted one-pass lattice: the paper LLC's
// set count and its half, every associativity up to the LLC's, tree-PLRU at
// the LLC's own shape. Small enough to keep the golden file reviewable,
// wide enough to cover both engine paths (exact stacks and grouped PLRU).
func goldenLatticeSpec() LatticeSpec {
	return LatticeSpec{
		MinSets: 2048,
		MaxSets: 4096,
		MaxWays: 16,
		PLRU:    []stackdist.Geometry{{Sets: 4096, Ways: 16}},
	}
}

// TestGoldenLattice pins the one-pass sweep's smoke-scale MPKI per lattice
// point to checked-in fingerprints, exactly, over a fixed workload subset —
// the lattice counterpart of TestGoldenMPKI. It shares the -update flow but
// rewrites only the lattice section.
func TestGoldenLattice(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(1)
	spec := goldenLatticeSpec()
	labels := spec.Labels()

	got := map[string]map[string]string{}
	for _, w := range lab.Suite()[:6] {
		cells, err := lab.OnePassSweep(spec, w)
		if err != nil {
			t.Fatal(err)
		}
		row := map[string]string{}
		for i, label := range labels {
			row[label] = goldenKey(cells[i].MPKI)
		}
		got[w.Name] = row
	}

	if *updateGolden {
		g := loadGoldenFile(t)
		g.Lattice = got
		saveGoldenFile(t, g)
		t.Logf("rewrote %s lattice section: %d workloads x %d points", goldenPath, len(got), len(labels))
		return
	}

	compareGoldenSection(t, "lattice", got, loadGoldenFile(t).Lattice)
}

// TestGoldenMPKIWorkersAndTelemetryInvariant re-derives the fingerprinted
// MPKIs down the *other* code path — eight replay workers instead of one,
// and with a telemetry sink attached to every replay — and requires
// bit-identical agreement with the golden file. This pins two invariants at
// once: worker scheduling must not perturb results (each (policy, workload)
// cell is an independent deterministic replay), and instrumentation must
// observe the simulation without disturbing it.
func TestGoldenMPKIWorkersAndTelemetryInvariant(t *testing.T) {
	want := loadGolden(t)
	lab := NewLab(Smoke).SetWorkers(8)
	specs := goldenSpecs()
	if testing.Short() {
		specs = specs[:3] // lru, plru, drrip: still crosses both code paths
	}
	m, err := lab.Manifest(context.Background(), "golden-test", "golden", specs)
	if err != nil {
		t.Fatal(err)
	}
	if wantN := len(specs) * len(lab.Suite()); len(m.Entries) != wantN {
		t.Fatalf("manifest has %d entries, want %d", len(m.Entries), wantN)
	}
	labels := map[string]string{} // spec label -> golden key
	for _, s := range specs {
		labels[s.Label] = s.Key
	}
	for _, e := range m.Entries {
		wv := want[e.Workload][labels[e.Policy]]
		if wv == "" {
			t.Fatalf("no golden value for %s/%s", e.Workload, e.Policy)
		}
		if gv := goldenKey(e.MPKI); gv != wv {
			t.Errorf("%s/%s: instrumented 8-worker MPKI %s, golden %s", e.Workload, e.Policy, gv, wv)
		}
		if e.LLC.Accesses == 0 {
			t.Errorf("%s/%s: telemetry sink saw no events", e.Workload, e.Policy)
		}
	}
}
