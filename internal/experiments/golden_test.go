package experiments

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// updateGolden rewrites testdata/golden_mpki.json from the current
// simulator output:
//
//	go test ./internal/experiments -run TestGoldenMPKI -update
//
// Review the diff before committing — any change means the simulation is no
// longer bit-compatible with the checked-in fingerprints.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_mpki.json with current MPKI values")

const goldenPath = "testdata/golden_mpki.json"

// goldenSpecs is the fingerprinted roster: the headline baselines, the
// strongest prior work, and the GIPPR family — the same roster the
// gippr-report telemetry manifest covers.
func goldenSpecs() []Spec {
	return []Spec{
		SpecLRU, SpecPLRU, SpecDRRIP, SpecPDP,
		SpecSHiP, SpecWIGIPPR, SpecWI2DGIPPR, SpecWI4DGIPPR,
	}
}

// goldenKey formats an MPKI for exact comparison. 'g'/17 round-trips every
// float64 bit pattern, so two runs match iff their doubles are identical.
func goldenKey(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

// loadGolden reads the checked-in workload -> policy -> MPKI fingerprints.
func loadGolden(t *testing.T) map[string]map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fingerprints (regenerate with -update): %v", err)
	}
	var g map[string]map[string]string
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return g
}

// TestGoldenMPKI pins the smoke-scale LLC MPKI of every roster policy on
// every workload to checked-in fingerprints, exactly (bit-identical
// float64s). Any intentional change to workload generation, the hierarchy
// filter, replacement policy behaviour or the replay loop must regenerate
// the file with -update; an unintentional difference is a regression this
// test exists to catch.
func TestGoldenMPKI(t *testing.T) {
	lab := NewLab(Smoke).SetWorkers(1)
	specs := goldenSpecs()

	got := map[string]map[string]string{}
	for _, w := range lab.Suite() {
		row := map[string]string{}
		for _, spec := range specs {
			row[spec.Key] = goldenKey(lab.MPKI(spec, w))
		}
		got[w.Name] = row
	}

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s: %d workloads x %d policies", goldenPath, len(got), len(specs))
		return
	}

	want := loadGolden(t)
	if len(want) != len(got) {
		t.Errorf("golden file covers %d workloads, simulator produced %d (regenerate with -update?)", len(want), len(got))
	}
	for wl, row := range got {
		wantRow, ok := want[wl]
		if !ok {
			t.Errorf("workload %s missing from golden file (regenerate with -update?)", wl)
			continue
		}
		for key, v := range row {
			if wv, ok := wantRow[key]; !ok {
				t.Errorf("%s/%s missing from golden file (regenerate with -update?)", wl, key)
			} else if v != wv {
				t.Errorf("%s/%s: MPKI %s, golden %s", wl, key, v, wv)
			}
		}
	}
}

// TestGoldenMPKIWorkersAndTelemetryInvariant re-derives the fingerprinted
// MPKIs down the *other* code path — eight replay workers instead of one,
// and with a telemetry sink attached to every replay — and requires
// bit-identical agreement with the golden file. This pins two invariants at
// once: worker scheduling must not perturb results (each (policy, workload)
// cell is an independent deterministic replay), and instrumentation must
// observe the simulation without disturbing it.
func TestGoldenMPKIWorkersAndTelemetryInvariant(t *testing.T) {
	want := loadGolden(t)
	lab := NewLab(Smoke).SetWorkers(8)
	specs := goldenSpecs()
	if testing.Short() {
		specs = specs[:3] // lru, plru, drrip: still crosses both code paths
	}
	m, err := lab.Manifest(context.Background(), "golden-test", "golden", specs)
	if err != nil {
		t.Fatal(err)
	}
	if wantN := len(specs) * len(lab.Suite()); len(m.Entries) != wantN {
		t.Fatalf("manifest has %d entries, want %d", len(m.Entries), wantN)
	}
	labels := map[string]string{} // spec label -> golden key
	for _, s := range specs {
		labels[s.Label] = s.Key
	}
	for _, e := range m.Entries {
		wv := want[e.Workload][labels[e.Policy]]
		if wv == "" {
			t.Fatalf("no golden value for %s/%s", e.Workload, e.Policy)
		}
		if gv := goldenKey(e.MPKI); gv != wv {
			t.Errorf("%s/%s: instrumented 8-worker MPKI %s, golden %s", e.Workload, e.Policy, gv, wv)
		}
		if e.LLC.Accesses == 0 {
			t.Errorf("%s/%s: telemetry sink saw no events", e.Workload, e.Policy)
		}
	}
}
