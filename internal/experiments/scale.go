// Package experiments reproduces every figure in the paper's evaluation
// (Figures 1, 4, 10, 11, 12, 13, plus the Section 3.6 overhead comparison
// and the Section 5.3 learned vectors). Each figure has a runner returning a
// structured result and an ASCII rendering; cmd/gippr-report regenerates all
// of them, and bench_test.go exposes one benchmark per figure.
//
// All experiments work on LLC-filtered access streams: each workload phase
// is pushed once through the fixed L1/L2 hierarchy (whose behaviour is
// independent of the LLC policy) and the captured LLC stream is replayed
// into an LLC-only model per policy — the paper's own trace methodology
// (Section 4.3). Streams and per-(workload, policy) results are memoized
// within a Lab.
package experiments

import (
	"os"
)

// Scale sizes an experiment run. The paper's full scale (1.5B instructions
// per SimPoint, 15,000 random IPVs, day-long GA runs on 96 processors) is
// out of reach for a single-core reproduction; these presets keep the same
// structure at tractable sizes.
type Scale struct {
	Name string
	// PhaseRecords is the number of memory references generated per
	// workload phase before L1/L2 filtering.
	PhaseRecords int
	// WarmFrac is the fraction of each LLC stream used for cache warm-up
	// (the paper warms 500M of 1.5B instructions = 1/3).
	WarmFrac float64
	// RandomIPVs is the Figure 1 sample count (paper: 15,000).
	RandomIPVs int
	// EvolveRecords is the per-phase record count used for GA fitness
	// streams (smaller than PhaseRecords, as the paper's fitness model is
	// deliberately cheaper than its evaluation model).
	EvolveRecords int
	// GAPopulation/GAGenerations size Evolve runs at this scale.
	GAPopulation  int
	GAGenerations int
}

// Presets, selectable via GIPPR_SCALE.
var (
	Smoke = Scale{
		Name: "smoke", PhaseRecords: 60_000, WarmFrac: 1.0 / 3,
		RandomIPVs: 40, EvolveRecords: 20_000, GAPopulation: 8, GAGenerations: 3,
	}
	Default = Scale{
		Name: "default", PhaseRecords: 600_000, WarmFrac: 1.0 / 3,
		RandomIPVs: 400, EvolveRecords: 150_000, GAPopulation: 24, GAGenerations: 10,
	}
	Full = Scale{
		Name: "full", PhaseRecords: 4_000_000, WarmFrac: 1.0 / 3,
		RandomIPVs: 15_000, EvolveRecords: 600_000, GAPopulation: 64, GAGenerations: 25,
	}
)

// CustomScale returns a scale with explicit per-phase record count and
// warm-up fraction — the shape the gippr-sim CLI's -records/-warm flags and
// the job daemon's configuration need. The search-related knobs (random IPV
// count, GA sizing, evolve-stream truncation) inherit Default's structure,
// with the evolve streams scaled by Default's evolve/evaluate ratio.
func CustomScale(records int, warmFrac float64) Scale {
	s := Default
	s.Name = "custom"
	s.PhaseRecords = records
	s.WarmFrac = warmFrac
	s.EvolveRecords = records * Default.EvolveRecords / Default.PhaseRecords
	return s
}

// ScaleFromEnv returns the preset selected by the GIPPR_SCALE environment
// variable ("smoke", "default" or "full"), defaulting to Default.
func ScaleFromEnv() Scale {
	switch os.Getenv("GIPPR_SCALE") {
	case "smoke":
		return Smoke
	case "full":
		return Full
	default:
		return Default
	}
}
