package experiments

import (
	"context"
	"sync"
	"sync/atomic"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/explain"
	"gippr/internal/parallel"
	"gippr/internal/stats"
	"gippr/internal/telemetry"
	"gippr/internal/workload"
)

// telCapture is the memoized instrumented run of one (policy, workload):
// per-phase terminal counts with their reuse histograms, the merged
// event-level report, and the weighted MPKI computed with the exact same
// expression as Lab.MPKI — the kernel's per-model equivalence guarantee
// makes the instrumented counts bit-identical to the memoized terminal
// ones, so this MPKI matches the golden path bit for bit.
type telCapture struct {
	phases []explain.PhaseStats
	merged telemetry.Report
	mpki   float64
}

// telFlight is the singleflight slot of one capture; same protocol as
// flight (see its comment for the ready/once contract).
type telFlight struct {
	once  sync.Once
	ready atomic.Bool
	cap   telCapture
}

func (f *telFlight) set(c telCapture) {
	f.cap = c
	f.ready.Store(true)
}

// diffFlight memoizes one settled explanation.
type diffFlight struct {
	once sync.Once
	expl *explain.Explanation
	err  error
}

// claimTel returns the capture slot for key, creating it if absent.
func (l *Lab) claimTel(key string) *telFlight {
	l.mu.Lock()
	f, ok := l.tels[key]
	if !ok {
		f = &telFlight{}
		l.tels[key] = f
	}
	l.mu.Unlock()
	return f
}

// claimDiff returns the explanation slot for key, creating it if absent.
func (l *Lab) claimDiff(key string) *diffFlight {
	l.mu.Lock()
	f, ok := l.diffs[key]
	if !ok {
		f = &diffFlight{}
		l.diffs[key] = f
	}
	l.mu.Unlock()
	return f
}

func telKey(spec Spec, w workload.Workload) string { return spec.Key + "|" + w.Name }

// captureTel settles the instrumented captures of every given spec on one
// workload with a single pass per phase: specs whose capture is already
// settled are skipped, the rest replay together via cpu.MultiWindowReplay
// with a private sink each. Like multiPhaseRun, each computed value is
// bit-identical to a standalone instrumented replay, so concurrent
// captures of overlapping spec sets agree on every value.
func (l *Lab) captureTel(specs []Spec, w workload.Workload) {
	type slot struct {
		f    *telFlight
		spec Spec
	}
	var todo []slot
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if seen[s.Key] {
			continue
		}
		seen[s.Key] = true
		f := l.claimTel(telKey(s, w))
		if !f.ready.Load() {
			todo = append(todo, slot{f: f, spec: s})
		}
	}
	if len(todo) == 0 {
		return
	}
	caps := make([]telCapture, len(todo))
	merged := make([]*telemetry.Sink, len(todo))
	vals := make([][]float64, len(todo))
	for i := range todo {
		merged[i] = &telemetry.Sink{}
		vals[i] = make([]float64, len(w.Phases))
	}
	wts := make([]float64, len(w.Phases))
	for pi, ph := range w.Phases {
		st := l.Streams(w)[pi]
		pols := make([]cache.Policy, len(todo))
		models := make([]*cpu.WindowModel, len(todo))
		sinks := make([]*telemetry.Sink, len(todo))
		for i, s := range todo {
			pols[i] = s.spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
			models[i] = cpu.DefaultWindowModel()
			sinks[i] = &telemetry.Sink{}
		}
		results := cpu.MultiWindowReplay(st.Records, l.Cfg, pols, l.warm(len(st.Records)), models, sinks)
		wts[pi] = ph.Weight
		for i := range todo {
			caps[i].phases = append(caps[i].phases, explain.PhaseStats{
				Weight:       ph.Weight,
				Misses:       results[i].Misses,
				Hits:         results[i].Hits,
				Accesses:     results[i].Accesses,
				Instructions: results[i].Instructions,
				HitReuse:     sinks[i].HitReuse.Snapshot(),
			})
			merged[i].Merge(sinks[i])
			vals[i][pi] = l.phaseMPKI(results[i].Misses, results[i].Instructions)
		}
	}
	for i, s := range todo {
		caps[i].merged = merged[i].Report()
		caps[i].mpki = stats.WeightedMean(vals[i], wts)
		c := caps[i]
		s.f.once.Do(func() { s.f.set(c) })
	}
}

// telOf returns the memoized capture of one (spec, workload), computing it
// alone if no batch capture settled it first.
func (l *Lab) telOf(spec Spec, w workload.Workload) telCapture {
	f := l.claimTel(telKey(spec, w))
	f.once.Do(func() {
		merged := &telemetry.Sink{}
		vals := make([]float64, len(w.Phases))
		wts := make([]float64, len(w.Phases))
		var c telCapture
		for pi, ph := range w.Phases {
			st := l.Streams(w)[pi]
			pol := spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
			var sink telemetry.Sink
			res := cpu.WindowReplayTel(st.Records, l.Cfg, pol, l.warm(len(st.Records)),
				cpu.DefaultWindowModel(), &sink)
			c.phases = append(c.phases, explain.PhaseStats{
				Weight:       ph.Weight,
				Misses:       res.Misses,
				Hits:         res.Hits,
				Accesses:     res.Accesses,
				Instructions: res.Instructions,
				HitReuse:     sink.HitReuse.Snapshot(),
			})
			merged.Merge(&sink)
			vals[pi] = l.phaseMPKI(res.Misses, res.Instructions)
			wts[pi] = ph.Weight
		}
		c.merged = merged.Report()
		c.mpki = stats.WeightedMean(vals, wts)
		f.set(c)
	})
	return f.cap
}

// side assembles one explain input from a settled capture.
func (l *Lab) side(spec Spec, c telCapture) explain.Side {
	s := explain.Side{
		Policy:    spec.Label,
		MPKI:      c.mpki,
		Telemetry: c.merged,
		Phases:    c.phases,
	}
	for _, p := range c.phases {
		s.Misses += p.Misses
		s.Hits += p.Hits
		s.Accesses += p.Accesses
		s.Instructions += p.Instructions
	}
	if l.Cfg.SampleShift != 0 {
		s.MPKIScale = l.sampleFactor()
	}
	return s
}

// Diff explains spec b relative to spec a on one workload: both sides are
// captured from a single instrumented pass over the workload's streams
// (one cpu.MultiWindowReplay per phase), then decomposed by
// explain.Diff. Results are memoized per (a, b, workload) and captures
// are shared across diffs — Diff(A, B, w) then Diff(A, C, w) replays A
// once. The headline MPKIs equal Lab.MPKI bit for bit.
func (l *Lab) Diff(a, b Spec, w workload.Workload) (*explain.Explanation, error) {
	f := l.claimDiff(a.Key + "|" + b.Key + "|" + w.Name)
	f.once.Do(func() {
		l.captureTel([]Spec{a, b}, w)
		sa := l.side(a, l.telOf(a, w))
		sb := l.side(b, l.telOf(b, w))
		f.expl, f.err = explain.Diff(w.Name, sa, sb)
	})
	return f.expl, f.err
}

// DiffAll explains b relative to a on every given workload, fanning the
// per-workload captures across the lab's workers. On cancellation the
// slice holds the explanations settled so far (nil for the rest) and
// ctx's error; otherwise the first per-workload failure is returned with
// every non-failed entry populated.
func (l *Lab) DiffAll(ctx context.Context, a, b Spec, wls []workload.Workload) ([]*explain.Explanation, error) {
	out := make([]*explain.Explanation, len(wls))
	errs := make([]error, len(wls))
	err := parallel.ForCtx(ctx, l.Workers, len(wls), func(i int) {
		out[i], errs[i] = l.Diff(a, b, wls[i])
	})
	if err != nil {
		return out, err
	}
	for i, e := range errs {
		if e != nil {
			out[i] = nil
			return out, e
		}
	}
	return out, nil
}
