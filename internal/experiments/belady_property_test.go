package experiments

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/policy"
	"gippr/internal/stats"
)

// TestBeladyDominatesEveryRegisteredPolicy checks the defining property of
// Belady's MIN on the real evaluation pipeline: on every workload's
// LLC-filtered stream, MIN's miss count (hence MPKI — the instruction count
// is a property of the stream, shared by all policies) is a lower bound for
// every policy in the registry. Each policy replays the identical stream,
// so any violation means either the MIN implementation or a policy's
// bookkeeping is wrong.
//
// The comparison uses warm = 0: MIN minimizes total misses over the whole
// stream, so the bound is exact only when every access is counted. (With a
// warm-up window a policy could, in principle, trade warm misses for
// measured ones and edge out MIN inside the window.)
func TestBeladyDominatesEveryRegisteredPolicy(t *testing.T) {
	lab := NewLab(Smoke)
	suite := lab.Suite()
	names := policy.Names()
	if testing.Short() {
		// Keep a representative cross-section: every sixth workload still
		// spans the generator families (cyclic, scan, pointer-chase, mixed).
		var reduced = suite[:0:0]
		for i := 0; i < len(suite); i += 6 {
			reduced = append(reduced, suite[i])
		}
		suite = reduced
	}

	sets, ways := lab.Cfg.Sets(), lab.Cfg.Ways
	for _, w := range suite {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for pi, st := range lab.Streams(w) {
				if len(st.Records) == 0 {
					continue
				}
				min := policy.Optimal(st.Records, lab.Cfg, 0)
				for _, name := range names {
					f, err := policy.Lookup(name)
					if err != nil {
						t.Fatalf("registry lookup %q: %v", name, err)
					}
					rs := cache.ReplayStream(st.Records, lab.Cfg, f.New(sets, ways), 0)
					if rs.Misses < min.Misses {
						t.Errorf("%s phase %d: policy %s beats Belady MIN: %d misses (MPKI %.4f) < %d (MPKI %.4f) over %d accesses",
							w.Name, pi, name, rs.Misses,
							stats.MPKI(rs.Misses, rs.Instructions),
							min.Misses,
							stats.MPKI(min.Misses, min.Instructions),
							rs.Accesses)
					}
				}
			}
		})
	}
}
