package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/ga"
	"gippr/internal/ipv"
	"gippr/internal/parallel"
	"gippr/internal/policy"
	"gippr/internal/stats"
	"gippr/internal/trace"
	"gippr/internal/workload"
	"gippr/internal/xrand"
)

// Spec names a policy under evaluation. New receives the workload name so
// workload-neutral variants can choose the vectors evolved without that
// workload (paper Section 4.4).
type Spec struct {
	Key   string // stable identifier, used for memoization
	Label string // display label, e.g. "WN-4-DGIPPR"
	New   func(workloadName string, sets, ways int) cache.Policy
}

// phaseResult is the memoized outcome of one (phase, policy) replay.
type phaseResult struct {
	MPKI     float64
	CPI      float64
	Cycles   float64
	Misses   uint64
	Hits     uint64
	Instrs   uint64
	Accesses uint64
}

// flight is a per-key singleflight slot: the first goroutine to claim the
// key runs the computation inside once; everyone else blocks on the same
// once and reads the settled value. Values are only read after once.Do
// returns, which establishes the happens-before edge. ready lets batch
// engines (multiPhaseRun) cheaply test "already settled?" without entering
// the once — it is advisory for work-skipping only; readers of res still
// synchronize through once.Do.
type flight struct {
	once  sync.Once
	ready atomic.Bool
	res   phaseResult
}

// set stores the settled value; call only from inside once.Do.
func (f *flight) set(res phaseResult) {
	f.res = res
	f.ready.Store(true)
}

// streamFlight is the per-workload equivalent for LLC stream construction.
type streamFlight struct {
	once    sync.Once
	streams []ga.Stream
}

// streamTable is a share-able memo of built LLC streams, keyed by workload
// name, with its own lock so several Labs (a full-fidelity lab and its
// WithSampling views) can hand out the same streams without racing on a
// per-lab mutex. Sharing is sound because stream capture is independent of
// both the LLC replacement policy (records are captured before L3 lookup)
// and set sampling (capture always runs at full fidelity).
type streamTable struct {
	mu sync.Mutex
	m  map[string]*streamFlight
}

func newStreamTable() *streamTable {
	return &streamTable{m: make(map[string]*streamFlight)}
}

// claim returns the singleflight slot for a workload, creating it if absent.
func (t *streamTable) claim(name string) *streamFlight {
	t.mu.Lock()
	f, ok := t.m[name]
	if !ok {
		f = &streamFlight{}
		t.m[name] = f
	}
	t.mu.Unlock()
	return f
}

// Lab owns the streams and memoized results for one scale. It is safe for
// concurrent use: stream builds and replays for distinct keys proceed in
// parallel, while concurrent requests for the same key are coalesced into a
// single computation (singleflight) — the lab-wide mutex only guards the
// memoization map lookups, never a replay.
type Lab struct {
	Scale Scale
	Cfg   cache.Config // the LLC under study

	// Workers bounds the goroutines used by the lab's own fan-out entry
	// points (Prefetch and friends). It does not limit how many goroutines
	// may call into the lab concurrently. Values below 1 mean GOMAXPROCS.
	Workers int

	// ctx is the lab's base run context, used by the non-Ctx fan-out entry
	// points (Prefetch and friends) so cancellation reaches figure runners
	// that predate the ctx-threaded API. Cancellation stops new cells from
	// being handed out; memoized reads that miss still compute on demand,
	// so already-running callers always see complete, correct values —
	// cancellation truncates a run, it never corrupts one.
	ctx context.Context

	suite   []workload.Workload
	streams *streamTable            // workload -> one LLC stream per phase
	results map[string]*flight      // key: policyKey|workload|phase
	optimal map[string]*flight      // key: workload|phase
	sweeps  map[string]*sweepFlight // key: latticeKey|workload|phase
	tels    map[string]*telFlight   // key: policyKey|workload
	diffs   map[string]*diffFlight  // key: policyKeyA|policyKeyB|workload

	mu sync.Mutex // guards the result maps' entries, not their computation

	factorOnce sync.Once // lazily caches Cfg.SampleFactor()
	factor     float64
}

// NewLab returns a lab over the full 29-workload suite at the given scale,
// with the paper's 4 MB 16-way LLC.
func NewLab(s Scale) *Lab {
	return &Lab{
		Scale:   s,
		Cfg:     cache.L3Config,
		Workers: parallel.DefaultWorkers(),
		ctx:     context.Background(),
		suite:   workload.Suite(),
		streams: newStreamTable(),
		results: make(map[string]*flight),
		optimal: make(map[string]*flight),
		sweeps:  make(map[string]*sweepFlight),
		tels:    make(map[string]*telFlight),
		diffs:   make(map[string]*diffFlight),
	}
}

// WithSampling returns a lab view with the given set-sampling shift: same
// scale, suite, workers and context, sharing this lab's built LLC streams
// (capture is sampling-independent, so rebuilding them would be pure waste)
// but with fresh result memos, since sampled and full-fidelity replays must
// never mix under one key. WithSampling(0) is a full-fidelity view with
// fresh memos over shared streams — the equivalence tests use it to force
// recomputation without re-capturing.
func (l *Lab) WithSampling(shift uint) *Lab {
	n := &Lab{
		Scale:   l.Scale,
		Cfg:     l.Cfg,
		Workers: l.Workers,
		ctx:     l.ctx,
		suite:   l.suite,
		streams: l.streams,
		results: make(map[string]*flight),
		optimal: make(map[string]*flight),
		sweeps:  make(map[string]*sweepFlight),
		tels:    make(map[string]*telFlight),
		diffs:   make(map[string]*diffFlight),
	}
	n.Cfg.SampleShift = shift
	return n
}

// sampleFactor returns the lab's miss scale-up factor (Cfg.SampleFactor),
// computed once. Callers must only use it when Cfg.SampleShift != 0, so the
// full-fidelity path never multiplies by a float even when it equals 1.
func (l *Lab) sampleFactor() float64 {
	l.factorOnce.Do(func() { l.factor = l.Cfg.SampleFactor() })
	return l.factor
}

// SetWorkers sets the fan-out width used by Prefetch (values below 1 mean
// GOMAXPROCS) and returns the lab for chaining.
func (l *Lab) SetWorkers(n int) *Lab {
	l.Workers = parallel.Clamp(n)
	return l
}

// SetContext installs ctx as the lab's base run context (see the field
// comment for semantics) and returns the lab for chaining. A nil ctx
// restores context.Background.
func (l *Lab) SetContext(ctx context.Context) *Lab {
	if ctx == nil {
		ctx = context.Background()
	}
	l.ctx = ctx
	return l
}

// Suite returns the workloads under study.
func (l *Lab) Suite() []workload.Workload { return l.suite }

// phaseSeed derives the deterministic seed of one workload phase.
func phaseSeed(name string, phase int) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return xrand.Mix(h, uint64(phase)+1)
}

// Streams builds (once) and returns the LLC-filtered streams of a workload,
// one per phase, by pushing PhaseRecords references through a fresh
// LRU-managed L1/L2. Builds for different workloads run concurrently; a
// second caller asking for a workload mid-build waits for that build only,
// and memoized lookups never block behind any build.
func (l *Lab) Streams(w workload.Workload) []ga.Stream {
	f := l.streams.claim(w.Name)
	f.once.Do(func() { f.streams = l.buildStreams(w) })
	return f.streams
}

// buildStreams is the expensive hierarchy replay behind Streams, run exactly
// once per workload.
func (l *Lab) buildStreams(w workload.Workload) []ga.Stream {
	// Capture always runs at full fidelity: records reach the stream before
	// the L3 lookup, so a sampled L3 here would change nothing about the
	// stream while making the capture hierarchy's stats misleading.
	llcCfg := l.Cfg
	llcCfg.SampleShift = 0
	out := make([]ga.Stream, 0, len(w.Phases))
	for pi, ph := range w.Phases {
		h := cache.NewHierarchy(
			cache.New(cache.L1Config, policy.NewTrueLRU(cache.L1Config.Sets(), cache.L1Config.Ways)),
			cache.New(cache.L2Config, policy.NewTrueLRU(cache.L2Config.Sets(), cache.L2Config.Ways)),
			cache.New(llcCfg, policy.NewTrueLRU(llcCfg.Sets(), llcCfg.Ways)),
		)
		h.RecordLLC = true
		// The LLC stream is bounded by the source's record budget; reserving
		// it up front removes every regrowth copy from the capture loop.
		h.ReserveLLC(l.Scale.PhaseRecords)
		src := &workload.Limit{Src: ph.Source(phaseSeed(w.Name, pi)), N: uint64(l.Scale.PhaseRecords)}
		h.Run(src)
		recs := h.LLCStream
		// The budget is an upper bound — L1/L2 filter most references. The
		// stream lives for the lab's lifetime, so copy it down to its real
		// size rather than pinning the mostly-empty reservation.
		if cap(recs) > len(recs)+len(recs)/4 {
			recs = append(make([]trace.Record, 0, len(recs)), recs...)
		}
		out = append(out, ga.Stream{
			Workload: w.Name,
			Weight:   ph.Weight,
			Records:  recs,
		})
	}
	return out
}

func (l *Lab) warm(n int) int { return int(float64(n) * l.Scale.WarmFrac) }

// claim returns the singleflight slot for key in m, creating it if absent.
func (l *Lab) claim(m map[string]*flight, key string) *flight {
	l.mu.Lock()
	f, ok := m[key]
	if !ok {
		f = &flight{}
		m[key] = f
	}
	l.mu.Unlock()
	return f
}

// phaseMPKI converts sampled-or-full miss/instruction counts into the
// phase's MPKI. At full fidelity it is exactly stats.MPKI; under sampling
// the misses describe only the sampled sets and scale up by the measured
// set fraction. The SampleShift guard (rather than factor != 1) keeps the
// full-fidelity path free of any float multiply, preserving bit-exactness
// with the pre-sampling simulator.
func (l *Lab) phaseMPKI(misses, instrs uint64) float64 {
	mpki := stats.MPKI(misses, instrs)
	if l.Cfg.SampleShift != 0 {
		mpki *= l.sampleFactor()
	}
	return mpki
}

// resultOf converts one replay outcome into the memoized phase result.
func (l *Lab) resultOf(res cpu.ReplayResult) phaseResult {
	return phaseResult{
		MPKI:     l.phaseMPKI(res.Misses, res.Instructions),
		CPI:      res.CPI,
		Cycles:   res.Cycles,
		Misses:   res.Misses,
		Hits:     res.Hits,
		Instrs:   res.Instructions,
		Accesses: res.Accesses,
	}
}

// phaseKey is the memoization key of one (policy, workload, phase) cell.
func phaseKey(spec Spec, w workload.Workload, phase int) string {
	return fmt.Sprintf("%s|%s|%d", spec.Key, w.Name, phase)
}

// phaseRun replays one phase's stream under one policy, memoized with
// singleflight semantics: when several goroutines miss on the same key at
// once, exactly one performs the multi-second replay and the rest wait for
// its result instead of duplicating the work.
func (l *Lab) phaseRun(spec Spec, w workload.Workload, phase int) phaseResult {
	f := l.claim(l.results, phaseKey(spec, w, phase))
	f.once.Do(func() {
		st := l.Streams(w)[phase]
		pol := spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
		res := cpu.WindowReplay(st.Records, l.Cfg, pol, l.warm(len(st.Records)), cpu.DefaultWindowModel())
		f.set(l.resultOf(res))
	})
	return f.res
}

// multiPhaseRun settles the flights of every given spec on one (workload,
// phase) with a single pass over the stream: specs whose flight is already
// settled are skipped, the rest replay together via cpu.MultiWindowReplay.
// Each computed value is bit-identical to what phaseRun would have produced
// (the kernel's per-model equivalence guarantee), so the two engines share
// one memo safely; a concurrent phaseRun on the same key simply wins or
// loses the once and both sides agree on the value.
func (l *Lab) multiPhaseRun(specs []Spec, w workload.Workload, phase int) {
	type slot struct {
		f    *flight
		spec Spec
	}
	var todo []slot
	for _, s := range specs {
		f := l.claim(l.results, phaseKey(s, w, phase))
		if !f.ready.Load() {
			todo = append(todo, slot{f: f, spec: s})
		}
	}
	if len(todo) == 0 {
		return
	}
	st := l.Streams(w)[phase]
	pols := make([]cache.Policy, len(todo))
	models := make([]*cpu.WindowModel, len(todo))
	for i, s := range todo {
		pols[i] = s.spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
		models[i] = cpu.DefaultWindowModel()
	}
	results := cpu.MultiWindowReplay(st.Records, l.Cfg, pols, l.warm(len(st.Records)), models, nil)
	for i, s := range todo {
		res := l.resultOf(results[i])
		s.f.once.Do(func() { s.f.set(res) })
	}
}

// optimalRun computes Belady MIN for one phase, memoized with the same
// singleflight coalescing as phaseRun.
func (l *Lab) optimalRun(w workload.Workload, phase int) phaseResult {
	key := fmt.Sprintf("%s|%d", w.Name, phase)
	f := l.claim(l.optimal, key)
	f.once.Do(func() {
		st := l.Streams(w)[phase]
		rs := policy.Optimal(st.Records, l.Cfg, l.warm(len(st.Records)))
		f.set(phaseResult{
			MPKI:     l.phaseMPKI(rs.Misses, rs.Instructions),
			Misses:   rs.Misses,
			Instrs:   rs.Instructions,
			Accesses: rs.Accesses,
		})
	})
	return f.res
}

// weighted combines per-phase values with the workload's phase weights.
func weighted(w workload.Workload, f func(phase int) float64) float64 {
	vals := make([]float64, len(w.Phases))
	wts := make([]float64, len(w.Phases))
	for i, p := range w.Phases {
		vals[i] = f(i)
		wts[i] = p.Weight
	}
	return stats.WeightedMean(vals, wts)
}

// MPKI returns the weighted misses-per-kilo-instruction of a policy on a
// workload.
func (l *Lab) MPKI(spec Spec, w workload.Workload) float64 {
	return weighted(w, func(p int) float64 { return l.phaseRun(spec, w, p).MPKI })
}

// CPI returns the weighted CPI of a policy on a workload under the window
// model.
func (l *Lab) CPI(spec Spec, w workload.Workload) float64 {
	return weighted(w, func(p int) float64 { return l.phaseRun(spec, w, p).CPI })
}

// Speedup returns the workload's speedup of spec over the baseline spec
// (ratio of weighted CPIs).
func (l *Lab) Speedup(spec, baseline Spec, w workload.Workload) float64 {
	return stats.Speedup(l.CPI(baseline, w), l.CPI(spec, w))
}

// NormalizedMPKI returns spec's MPKI normalized to the baseline's. When a
// workload has essentially no LLC misses under the baseline (below one miss
// per million instructions), it returns exactly 1: such workloads are
// insensitive to the LLC policy and would otherwise produce wild ratios
// from noise.
func (l *Lab) NormalizedMPKI(spec, baseline Spec, w workload.Workload) float64 {
	base := l.MPKI(baseline, w)
	if base < 1e-3 {
		return 1
	}
	return l.MPKI(spec, w) / base
}

// OptimalMPKI returns Belady MIN's weighted MPKI on a workload.
func (l *Lab) OptimalMPKI(w workload.Workload) float64 {
	return weighted(w, func(p int) float64 { return l.optimalRun(w, p).MPKI })
}

// OptimalNormalizedMPKI returns MIN's MPKI normalized to the baseline's,
// with the same insensitive-workload guard as NormalizedMPKI.
func (l *Lab) OptimalNormalizedMPKI(baseline Spec, w workload.Workload) float64 {
	base := l.MPKI(baseline, w)
	if base < 1e-3 {
		return 1
	}
	return l.OptimalMPKI(w) / base
}

// GAStreams builds the reduced-size fitness streams for evolution at this
// scale (the paper's fitness traces are likewise cheaper than its
// evaluation runs). The streams are truncated copies of the lab streams.
func (l *Lab) GAStreams() []ga.Stream {
	out, _ := l.GAStreamsCtx(context.Background()) // Background never cancels
	return out
}

// GAStreamsCtx is GAStreams with cooperative cancellation of the stream
// builds; on cancellation it returns (nil, ctx.Err()) once in-flight builds
// have drained.
func (l *Lab) GAStreamsCtx(ctx context.Context) ([]ga.Stream, error) {
	if err := l.PrefetchStreamsCtx(ctx, nil); err != nil {
		return nil, err
	}
	var out []ga.Stream
	for _, w := range l.suite {
		for _, st := range l.Streams(w) {
			recs := st.Records
			// Truncate proportionally to the evolve/evaluate record ratio.
			maxLen := len(recs) * l.Scale.EvolveRecords / l.Scale.PhaseRecords
			if maxLen < len(recs) {
				recs = recs[:maxLen]
			}
			out = append(out, ga.Stream{Workload: st.Workload, Weight: st.Weight, Records: recs})
		}
	}
	return out, nil
}

// GAEnv builds a fitness environment over the GA streams, searching the
// GIPPR family (tree-PLRU IPVs).
func (l *Lab) GAEnv() *ga.Env {
	env, _ := l.GAEnvCtx(context.Background()) // Background never cancels
	return env
}

// GAEnvCtx is GAEnv with cooperative cancellation of the stream-building
// phase, the expensive part of environment construction.
func (l *Lab) GAEnvCtx(ctx context.Context) (*ga.Env, error) {
	streams, err := l.GAStreamsCtx(ctx)
	if err != nil {
		return nil, err
	}
	return ga.NewEnv(l.Cfg, cpu.DefaultLinearModel(), l.Scale.WarmFrac, streams,
		func(sets, ways int) cache.Policy { return policy.NewTrueLRU(sets, ways) },
		func(sets, ways int, v ipv.Vector) cache.Policy { return policy.NewGIPPR(sets, ways, v) },
	).SetWorkers(l.Workers), nil
}

// GAEnvLRU is the Section 2 proof-of-concept environment: the same fitness
// over the GIPLR family (true-LRU IPVs).
func (l *Lab) GAEnvLRU() *ga.Env {
	return ga.NewEnv(l.Cfg, cpu.DefaultLinearModel(), l.Scale.WarmFrac, l.GAStreams(),
		func(sets, ways int) cache.Policy { return policy.NewTrueLRU(sets, ways) },
		func(sets, ways int, v ipv.Vector) cache.Policy { return policy.NewGIPLR(sets, ways, v) },
	).SetWorkers(l.Workers)
}

// LLCStreamStats summarizes the captured streams (for reports and tests).
type LLCStreamStats struct {
	Workload string
	Phases   int
	Records  int
	Instrs   uint64
}

// StreamStats returns per-workload stream summaries.
func (l *Lab) StreamStats() []LLCStreamStats {
	l.PrefetchStreams(nil)
	out := make([]LLCStreamStats, 0, len(l.suite))
	for _, w := range l.suite {
		s := LLCStreamStats{Workload: w.Name, Phases: len(w.Phases)}
		for _, st := range l.Streams(w) {
			s.Records += len(st.Records)
			s.Instrs += trace.Instructions(st.Records)
		}
		out = append(out, s)
	}
	return out
}
