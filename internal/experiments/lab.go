package experiments

import (
	"fmt"
	"sync"

	"gippr/internal/cache"
	"gippr/internal/cpu"
	"gippr/internal/ga"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/stats"
	"gippr/internal/trace"
	"gippr/internal/workload"
	"gippr/internal/xrand"
)

// Spec names a policy under evaluation. New receives the workload name so
// workload-neutral variants can choose the vectors evolved without that
// workload (paper Section 4.4).
type Spec struct {
	Key   string // stable identifier, used for memoization
	Label string // display label, e.g. "WN-4-DGIPPR"
	New   func(workloadName string, sets, ways int) cache.Policy
}

// phaseResult is the memoized outcome of one (phase, policy) replay.
type phaseResult struct {
	MPKI     float64
	CPI      float64
	Misses   uint64
	Instrs   uint64
	Accesses uint64
}

// Lab owns the streams and memoized results for one scale. It is not safe
// for concurrent use.
type Lab struct {
	Scale Scale
	Cfg   cache.Config // the LLC under study

	suite   []workload.Workload
	streams map[string][]ga.Stream // workload -> one LLC stream per phase
	results map[string]phaseResult // key: policyKey|workload|phase
	optimal map[string]phaseResult // key: workload|phase

	mu sync.Mutex
}

// NewLab returns a lab over the full 29-workload suite at the given scale,
// with the paper's 4 MB 16-way LLC.
func NewLab(s Scale) *Lab {
	return &Lab{
		Scale:   s,
		Cfg:     cache.L3Config,
		suite:   workload.Suite(),
		streams: make(map[string][]ga.Stream),
		results: make(map[string]phaseResult),
		optimal: make(map[string]phaseResult),
	}
}

// Suite returns the workloads under study.
func (l *Lab) Suite() []workload.Workload { return l.suite }

// phaseSeed derives the deterministic seed of one workload phase.
func phaseSeed(name string, phase int) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return xrand.Mix(h, uint64(phase)+1)
}

// Streams builds (once) and returns the LLC-filtered streams of a workload,
// one per phase, by pushing PhaseRecords references through a fresh
// LRU-managed L1/L2.
func (l *Lab) Streams(w workload.Workload) []ga.Stream {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.streams[w.Name]; ok {
		return s
	}
	out := make([]ga.Stream, 0, len(w.Phases))
	for pi, ph := range w.Phases {
		h := cache.NewHierarchy(
			cache.New(cache.L1Config, policy.NewTrueLRU(cache.L1Config.Sets(), cache.L1Config.Ways)),
			cache.New(cache.L2Config, policy.NewTrueLRU(cache.L2Config.Sets(), cache.L2Config.Ways)),
			cache.New(l.Cfg, policy.NewTrueLRU(l.Cfg.Sets(), l.Cfg.Ways)),
		)
		h.RecordLLC = true
		src := &workload.Limit{Src: ph.Source(phaseSeed(w.Name, pi)), N: uint64(l.Scale.PhaseRecords)}
		h.Run(src)
		out = append(out, ga.Stream{
			Workload: w.Name,
			Weight:   ph.Weight,
			Records:  h.LLCStream,
		})
	}
	l.streams[w.Name] = out
	return out
}

func (l *Lab) warm(n int) int { return int(float64(n) * l.Scale.WarmFrac) }

// phaseRun replays one phase's stream under one policy, memoized.
func (l *Lab) phaseRun(spec Spec, w workload.Workload, phase int) phaseResult {
	key := fmt.Sprintf("%s|%s|%d", spec.Key, w.Name, phase)
	l.mu.Lock()
	if r, ok := l.results[key]; ok {
		l.mu.Unlock()
		return r
	}
	l.mu.Unlock()

	st := l.Streams(w)[phase]
	pol := spec.New(w.Name, l.Cfg.Sets(), l.Cfg.Ways)
	res := cpu.WindowReplay(st.Records, l.Cfg, pol, l.warm(len(st.Records)), cpu.DefaultWindowModel())
	pr := phaseResult{
		MPKI:     stats.MPKI(res.Misses, res.Instructions),
		CPI:      res.CPI,
		Misses:   res.Misses,
		Instrs:   res.Instructions,
		Accesses: res.Accesses,
	}
	l.mu.Lock()
	l.results[key] = pr
	l.mu.Unlock()
	return pr
}

// optimalRun computes Belady MIN for one phase, memoized.
func (l *Lab) optimalRun(w workload.Workload, phase int) phaseResult {
	key := fmt.Sprintf("%s|%d", w.Name, phase)
	l.mu.Lock()
	if r, ok := l.optimal[key]; ok {
		l.mu.Unlock()
		return r
	}
	l.mu.Unlock()

	st := l.Streams(w)[phase]
	rs := policy.Optimal(st.Records, l.Cfg, l.warm(len(st.Records)))
	pr := phaseResult{
		MPKI:     stats.MPKI(rs.Misses, rs.Instructions),
		Misses:   rs.Misses,
		Instrs:   rs.Instructions,
		Accesses: rs.Accesses,
	}
	l.mu.Lock()
	l.optimal[key] = pr
	l.mu.Unlock()
	return pr
}

// weighted combines per-phase values with the workload's phase weights.
func weighted(w workload.Workload, f func(phase int) float64) float64 {
	vals := make([]float64, len(w.Phases))
	wts := make([]float64, len(w.Phases))
	for i, p := range w.Phases {
		vals[i] = f(i)
		wts[i] = p.Weight
	}
	return stats.WeightedMean(vals, wts)
}

// MPKI returns the weighted misses-per-kilo-instruction of a policy on a
// workload.
func (l *Lab) MPKI(spec Spec, w workload.Workload) float64 {
	return weighted(w, func(p int) float64 { return l.phaseRun(spec, w, p).MPKI })
}

// CPI returns the weighted CPI of a policy on a workload under the window
// model.
func (l *Lab) CPI(spec Spec, w workload.Workload) float64 {
	return weighted(w, func(p int) float64 { return l.phaseRun(spec, w, p).CPI })
}

// Speedup returns the workload's speedup of spec over the baseline spec
// (ratio of weighted CPIs).
func (l *Lab) Speedup(spec, baseline Spec, w workload.Workload) float64 {
	return stats.Speedup(l.CPI(baseline, w), l.CPI(spec, w))
}

// NormalizedMPKI returns spec's MPKI normalized to the baseline's. When a
// workload has essentially no LLC misses under the baseline (below one miss
// per million instructions), it returns exactly 1: such workloads are
// insensitive to the LLC policy and would otherwise produce wild ratios
// from noise.
func (l *Lab) NormalizedMPKI(spec, baseline Spec, w workload.Workload) float64 {
	base := l.MPKI(baseline, w)
	if base < 1e-3 {
		return 1
	}
	return l.MPKI(spec, w) / base
}

// OptimalMPKI returns Belady MIN's weighted MPKI on a workload.
func (l *Lab) OptimalMPKI(w workload.Workload) float64 {
	return weighted(w, func(p int) float64 { return l.optimalRun(w, p).MPKI })
}

// OptimalNormalizedMPKI returns MIN's MPKI normalized to the baseline's,
// with the same insensitive-workload guard as NormalizedMPKI.
func (l *Lab) OptimalNormalizedMPKI(baseline Spec, w workload.Workload) float64 {
	base := l.MPKI(baseline, w)
	if base < 1e-3 {
		return 1
	}
	return l.OptimalMPKI(w) / base
}

// GAStreams builds the reduced-size fitness streams for evolution at this
// scale (the paper's fitness traces are likewise cheaper than its
// evaluation runs). The streams are truncated copies of the lab streams.
func (l *Lab) GAStreams() []ga.Stream {
	var out []ga.Stream
	for _, w := range l.suite {
		for _, st := range l.Streams(w) {
			recs := st.Records
			// Truncate proportionally to the evolve/evaluate record ratio.
			maxLen := len(recs) * l.Scale.EvolveRecords / l.Scale.PhaseRecords
			if maxLen < len(recs) {
				recs = recs[:maxLen]
			}
			out = append(out, ga.Stream{Workload: st.Workload, Weight: st.Weight, Records: recs})
		}
	}
	return out
}

// GAEnv builds a fitness environment over the GA streams, searching the
// GIPPR family (tree-PLRU IPVs).
func (l *Lab) GAEnv() *ga.Env {
	return ga.NewEnv(l.Cfg, cpu.DefaultLinearModel(), l.Scale.WarmFrac, l.GAStreams(),
		func(sets, ways int) cache.Policy { return policy.NewTrueLRU(sets, ways) },
		func(sets, ways int, v ipv.Vector) cache.Policy { return policy.NewGIPPR(sets, ways, v) },
	)
}

// GAEnvLRU is the Section 2 proof-of-concept environment: the same fitness
// over the GIPLR family (true-LRU IPVs).
func (l *Lab) GAEnvLRU() *ga.Env {
	return ga.NewEnv(l.Cfg, cpu.DefaultLinearModel(), l.Scale.WarmFrac, l.GAStreams(),
		func(sets, ways int) cache.Policy { return policy.NewTrueLRU(sets, ways) },
		func(sets, ways int, v ipv.Vector) cache.Policy { return policy.NewGIPLR(sets, ways, v) },
	)
}

// LLCStreamStats summarizes the captured streams (for reports and tests).
type LLCStreamStats struct {
	Workload string
	Phases   int
	Records  int
	Instrs   uint64
}

// StreamStats returns per-workload stream summaries.
func (l *Lab) StreamStats() []LLCStreamStats {
	out := make([]LLCStreamStats, 0, len(l.suite))
	for _, w := range l.suite {
		s := LLCStreamStats{Workload: w.Name, Phases: len(w.Phases)}
		for _, st := range l.Streams(w) {
			s.Records += len(st.Records)
			s.Instrs += trace.Instructions(st.Records)
		}
		out = append(out, s)
	}
	return out
}
