package experiments

import (
	"sync"
	"testing"

	"gippr/internal/workload"
)

// Shape tests assert the paper's qualitative results on the archetypal
// workloads at Default scale. They are the reproduction's core regression
// suite: if a policy or workload change breaks a paper-level shape, these
// fail. They share one Default-scale lab and run a few seconds; skipped
// under -short.

var (
	shapeOnce sync.Once
	shapeLab  *Lab
)

func defaultLab(t *testing.T) *Lab {
	if testing.Short() {
		t.Skip("default-scale shape test skipped in short mode")
	}
	shapeOnce.Do(func() { shapeLab = NewLab(Default) })
	return shapeLab
}

func byName(t *testing.T, lab *Lab, name string) workload.Workload {
	t.Helper()
	for _, w := range lab.Suite() {
		if w.Name == name {
			return w
		}
	}
	t.Fatalf("workload %q missing", name)
	return workload.Workload{}
}

func TestShapeThrashWorkload(t *testing.T) {
	lab := defaultLab(t)
	w := byName(t, lab, "cactusADM_like")
	lru := lab.MPKI(SpecLRU, w)
	// The paper's cactusADM: GIPPR-family and DRRIP/PDP all slash misses.
	for _, s := range []Spec{SpecDRRIP, SpecPDP, SpecWI4DGIPPR} {
		if got := lab.MPKI(s, w); got > 0.6*lru {
			t.Errorf("%s MPKI %.1f vs LRU %.1f: expected a large thrash win", s.Label, got, lru)
		}
	}
	// MIN is at or below all of them.
	min := lab.OptimalMPKI(w)
	if min > lab.MPKI(SpecPDP, w)+1 {
		t.Errorf("MIN MPKI %.1f above PDP", min)
	}
	// PLRU tracks LRU.
	if plru := lab.MPKI(SpecPLRU, w); plru < 0.9*lru || plru > 1.1*lru {
		t.Errorf("PLRU MPKI %.1f far from LRU %.1f", plru, lru)
	}
}

func TestShapeLRUFriendlyWorkload(t *testing.T) {
	lab := defaultLab(t)
	w := byName(t, lab, "dealII_like")
	lru := lab.MPKI(SpecLRU, w)
	// The paper's dealII: misses are increased greatly over LRU for
	// DRRIP and 4-DGIPPR; PDP fares better than the others; MIN == LRU.
	if dr := lab.MPKI(SpecDRRIP, w); dr < 1.1*lru {
		t.Errorf("DRRIP MPKI %.1f should be well above LRU %.1f on dealII-like", dr, lru)
	}
	if pdp := lab.MPKI(SpecPDP, w); pdp > 1.15*lru {
		t.Errorf("PDP MPKI %.1f should stay near LRU %.1f on dealII-like", pdp, lru)
	}
	if min := lab.OptimalMPKI(w); min > 1.01*lru {
		t.Errorf("MIN %.1f above LRU %.1f", min, lru)
	}
}

func TestShapeInsensitiveWorkload(t *testing.T) {
	lab := defaultLab(t)
	// The paper: for 416.gamess and 453.povray, MIN, LRU, and all other
	// policies deliver about the same (near-zero) misses.
	for _, name := range []string{"gamess_like", "povray_like"} {
		w := byName(t, lab, name)
		for _, s := range []Spec{SpecLRU, SpecDRRIP, SpecPDP, SpecWI4DGIPPR, SpecRandom} {
			if got := lab.Speedup(s, SpecLRU, w); got < 0.99 || got > 1.01 {
				t.Errorf("%s on %s: speedup %v, expected ~1", s.Label, name, got)
			}
		}
	}
}

func TestShapeAdaptivityBeatsStaticOnPhased(t *testing.T) {
	lab := defaultLab(t)
	w := byName(t, lab, "hmmer_like")
	// Adaptive DGIPPR must not be much worse than the better of its
	// extremes on a phase-alternating workload; crucially it must beat
	// the wrong static choice.
	d4 := lab.MPKI(SpecWI4DGIPPR, w)
	lru := lab.MPKI(SpecLRU, w)
	if d4 > lru {
		t.Errorf("4-DGIPPR MPKI %.1f above LRU %.1f on a phase-alternating workload", d4, lru)
	}
}

func TestShapeStreamWithHotLoop(t *testing.T) {
	lab := defaultLab(t)
	w := byName(t, lab, "lbm_like")
	lru := lab.MPKI(SpecLRU, w)
	// Scan-resistant policies protect the hot loop from the stream.
	for _, s := range []Spec{SpecDRRIP, SpecPDP} {
		if got := lab.MPKI(s, w); got > lru {
			t.Errorf("%s MPKI %.1f above LRU %.1f under streaming interference", s.Label, got, lru)
		}
	}
}

func TestShapeOptimalDominatesEverywhere(t *testing.T) {
	lab := defaultLab(t)
	for _, name := range []string{"mcf_like", "libquantum_like", "omnetpp_like", "xalancbmk_like"} {
		w := byName(t, lab, name)
		min := lab.OptimalMPKI(w)
		for _, s := range []Spec{SpecLRU, SpecDRRIP, SpecPDP, SpecWI4DGIPPR, SpecRandom} {
			if got := lab.MPKI(s, w); got < min-0.5 {
				t.Errorf("%s on %s: MPKI %.2f below MIN %.2f", s.Label, name, got, min)
			}
		}
	}
}

func TestHeadlineNumbersFrozen(t *testing.T) {
	// Everything in this repository is deterministic, so the headline
	// Figure 11 geomeans can be pinned exactly (to float-printing
	// precision). If a workload, policy or model change moves these, the
	// change is real and EXPERIMENTS.md + report_output.txt must be
	// regenerated alongside updating this test.
	lab := defaultLab(t)
	tbl := Fig11(lab)
	want := map[string]float64{
		"DRRIP":       0.8077,
		"PDP":         0.7966,
		"WN-4-DGIPPR": 0.8053,
		"Optimal":     0.6744,
	}
	for col, w := range want {
		got := tbl.GeoMean(col)
		if got < w-0.0001 || got > w+0.0001 {
			t.Errorf("%s geomean normalized MPKI = %.4f, EXPERIMENTS.md records %.4f", col, got, w)
		}
	}
}
