package workload

import (
	"fmt"
	"strconv"
	"strings"

	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// ParseSpec parses a textual workload specification into workloads usable
// everywhere the built-in suite is, letting users model their own
// applications without recompiling (cmd/gippr-sim's -spec flag).
//
// The format is line-oriented; '#' starts a comment:
//
//	workload my_app
//	phase 0.7
//	  mix 0.6 loop blocks=48K gap=2:6
//	  mix 0.4 stream gap=2:6
//	phase 0.3 switch=250K
//	  chase blocks=80K gap=3:7
//	  loop blocks=4K gap=3:7
//
// A workload holds one or more weighted phases. Each phase holds one or
// more generators: with plain `mix` weights they interleave per access;
// with `switch=N` on the phase line they alternate every N accesses
// (coarse program phases). Generator kinds and their options:
//
//	loop      blocks=N gap=LO:HI        cyclic sequential sweep
//	stream    gap=LO:HI                 one-shot streaming, never reuses
//	scanreuse delay=N gap=LO:HI         each block re-referenced once after N new blocks
//	uniform   blocks=N gap=LO:HI        uniformly random over N blocks
//	zipf      blocks=N alpha=F gap=LO:HI  skewed popularity
//	chase     blocks=N gap=LO:HI        random-permutation pointer chase
//
// Sizes accept K and M suffixes (binary: 48K = 49152 blocks of 64 bytes).
// Address regions are derived from the workload name, disjoint from the
// built-in suite's regions.
func ParseSpec(text string) ([]Workload, error) {
	type genSpec struct {
		weight float64
		kind   string
		opts   map[string]string
	}
	type phaseSpec struct {
		weight float64
		period uint64 // 0: mix; >0: phased switching
		gens   []genSpec
	}
	type wlSpec struct {
		name   string
		phases []phaseSpec
	}

	var specs []wlSpec
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("workload spec line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "workload":
			if len(fields) != 2 {
				return nil, errf("want 'workload NAME'")
			}
			specs = append(specs, wlSpec{name: fields[1]})
		case "phase":
			if len(specs) == 0 {
				return nil, errf("'phase' before any 'workload'")
			}
			if len(fields) < 2 {
				return nil, errf("want 'phase WEIGHT [switch=N]'")
			}
			w, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || w <= 0 {
				return nil, errf("bad phase weight %q", fields[1])
			}
			ph := phaseSpec{weight: w}
			for _, f := range fields[2:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok || k != "switch" {
					return nil, errf("unknown phase option %q", f)
				}
				n, err := parseSize(v)
				if err != nil || n == 0 {
					return nil, errf("bad switch period %q", v)
				}
				ph.period = n
			}
			wl := &specs[len(specs)-1]
			wl.phases = append(wl.phases, ph)
		default:
			if len(specs) == 0 || len(specs[len(specs)-1].phases) == 0 {
				return nil, errf("generator line before any 'phase'")
			}
			g := genSpec{weight: 1, opts: map[string]string{}}
			rest := fields
			if fields[0] == "mix" {
				if len(fields) < 3 {
					return nil, errf("want 'mix WEIGHT KIND ...'")
				}
				w, err := strconv.ParseFloat(fields[1], 64)
				if err != nil || w <= 0 {
					return nil, errf("bad mix weight %q", fields[1])
				}
				g.weight = w
				rest = fields[2:]
			}
			g.kind = rest[0]
			for _, f := range rest[1:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, errf("bad option %q (want key=value)", f)
				}
				g.opts[k] = v
			}
			if err := validateGenSpec(g.kind, g.opts); err != nil {
				return nil, errf("%v", err)
			}
			wl := &specs[len(specs)-1]
			ph := &wl.phases[len(wl.phases)-1]
			ph.gens = append(ph.gens, g)
		}
	}

	// Build Workloads. Region ids derive from the workload name, offset
	// far above the built-in suite's ids (which are below 2^10).
	var out []Workload
	seen := map[string]bool{}
	for _, ws := range specs {
		if ws.name == "" || seen[ws.name] {
			return nil, fmt.Errorf("workload spec: duplicate or empty workload name %q", ws.name)
		}
		seen[ws.name] = true
		if len(ws.phases) == 0 {
			return nil, fmt.Errorf("workload spec: %s has no phases", ws.name)
		}
		w := Workload{Name: ws.name}
		for pi, ps := range ws.phases {
			if len(ps.gens) == 0 {
				return nil, fmt.Errorf("workload spec: %s phase %d has no generators", ws.name, pi+1)
			}
			ps := ps
			pi := pi
			name := ws.name
			w.Phases = append(w.Phases, Phase{
				Weight: ps.weight,
				Source: func(seed uint64) trace.Source {
					var children []trace.Source
					var weights []float64
					for gi, g := range ps.gens {
						reg := newRegion(specRegionID(name, pi, gi))
						children = append(children, buildGen(g.kind, g.opts, reg, xrand.Mix(seed, uint64(gi)+1)))
						weights = append(weights, g.weight)
					}
					if len(children) == 1 {
						return children[0]
					}
					if ps.period > 0 {
						return newPhased(ps.period, children...)
					}
					return newMix(seed, weights, children...)
				},
			})
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload spec: no workloads defined")
	}
	return out, nil
}

// specRegionID hashes a (workload, phase, generator) coordinate into a
// region id far above the built-in suite's (which are < 2^10). Collisions
// across distinct custom workloads are possible in principle but need a
// 2^-44-scale coincidence.
func specRegionID(name string, phase, gen int) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h = xrand.Mix(h, uint64(phase)*131+uint64(gen)+7)
	return 1<<12 | (h % (1 << 14) << 4) | uint64(gen)
}

func validateGenSpec(kind string, opts map[string]string) error {
	need := map[string][]string{
		"loop":      {"blocks", "gap"},
		"stream":    {"gap"},
		"scanreuse": {"delay", "gap"},
		"uniform":   {"blocks", "gap"},
		"zipf":      {"blocks", "alpha", "gap"},
		"chase":     {"blocks", "gap"},
	}
	req, ok := need[kind]
	if !ok {
		return fmt.Errorf("unknown generator kind %q", kind)
	}
	for _, k := range req {
		if _, ok := opts[k]; !ok {
			return fmt.Errorf("%s requires %s=", kind, k)
		}
	}
	for k := range opts {
		found := false
		for _, r := range req {
			if k == r {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("%s does not take option %q", kind, k)
		}
	}
	// Validate the values eagerly so errors surface at parse time.
	if v, ok := opts["blocks"]; ok {
		if n, err := parseSize(v); err != nil || n == 0 {
			return fmt.Errorf("bad blocks=%q", v)
		}
	}
	if v, ok := opts["delay"]; ok {
		if n, err := parseSize(v); err != nil || n == 0 {
			return fmt.Errorf("bad delay=%q", v)
		}
	}
	if v, ok := opts["alpha"]; ok {
		if a, err := strconv.ParseFloat(v, 64); err != nil || a <= 0 {
			return fmt.Errorf("bad alpha=%q", v)
		}
	}
	if v, ok := opts["gap"]; ok {
		if _, err := parseGap(v); err != nil {
			return err
		}
	}
	return nil
}

func buildGen(kind string, opts map[string]string, reg region, seed uint64) trace.Source {
	gap, _ := parseGap(opts["gap"])
	size := func(k string) uint64 { n, _ := parseSize(opts[k]); return n }
	switch kind {
	case "loop":
		return newLoop(reg, size("blocks"), gap, seed)
	case "stream":
		return newStream(reg, gap, seed)
	case "scanreuse":
		return newScanReuse(reg, size("delay"), gap, seed)
	case "uniform":
		return newUniform(reg, size("blocks"), gap, seed)
	case "zipf":
		alpha, _ := strconv.ParseFloat(opts["alpha"], 64)
		return newZipf(reg, size("blocks"), alpha, gap, seed)
	case "chase":
		return newChase(reg, size("blocks"), gap, seed)
	}
	panic("workload: unreachable generator kind " + kind) // validated earlier
}

// parseSize parses an integer with an optional binary K/M suffix.
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 40)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// parseGap parses "LO:HI" (or a single value) into a gap range.
func parseGap(s string) (gapRange, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		hi = lo
	}
	l, err1 := strconv.ParseUint(lo, 10, 16)
	h, err2 := strconv.ParseUint(hi, 10, 16)
	if err1 != nil || err2 != nil || l == 0 || h < l {
		return gapRange{}, fmt.Errorf("bad gap %q (want LO:HI with 1 <= LO <= HI)", s)
	}
	return gapRange{lo: uint32(l), hi: uint32(h)}, nil
}
