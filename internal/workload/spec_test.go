package workload

import "testing"

const sampleSpec = `
# a two-phase custom workload
workload my_app
phase 0.7
  mix 0.6 loop blocks=48K gap=2:6
  mix 0.4 stream gap=2:6
phase 0.3 switch=1K
  chase blocks=8K gap=3:7
  loop blocks=4K gap=3:7

workload tiny
phase 1
  zipf blocks=2K alpha=1.1 gap=10:20
`

func TestParseSpec(t *testing.T) {
	ws, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("%d workloads", len(ws))
	}
	if ws[0].Name != "my_app" || len(ws[0].Phases) != 2 {
		t.Fatalf("first workload %s with %d phases", ws[0].Name, len(ws[0].Phases))
	}
	if ws[0].Phases[0].Weight != 0.7 || ws[0].Phases[1].Weight != 0.3 {
		t.Fatal("phase weights")
	}
	// Streams must generate and be deterministic.
	a := ws[0].Phases[0].Records(5, 3000)
	b := ws[0].Phases[0].Records(5, 3000)
	if len(a) != 3000 {
		t.Fatalf("generated %d records", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("spec workload not deterministic")
		}
	}
}

func TestParseSpecGapBounds(t *testing.T) {
	ws, err := ParseSpec("workload w\nphase 1\n  loop blocks=1K gap=3:5\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ws[0].Phases[0].Records(1, 2000) {
		if r.Gap < 3 || r.Gap > 5 {
			t.Fatalf("gap %d outside 3:5", r.Gap)
		}
	}
}

func TestParseSpecSwitchAlternates(t *testing.T) {
	ws, err := ParseSpec("workload w\nphase 1 switch=100\n  loop blocks=16 gap=1\n  stream gap=1\n")
	if err != nil {
		t.Fatal(err)
	}
	recs := ws[0].Phases[0].Records(1, 400)
	regions := map[uint64]int{}
	for _, r := range recs {
		regions[r.Addr>>36]++
	}
	if len(regions) != 2 {
		t.Fatalf("switch phase touched %d regions", len(regions))
	}
	for reg, n := range regions {
		if n != 200 {
			t.Fatalf("region %d got %d accesses, want 200", reg, n)
		}
	}
}

func TestParseSpecSingleGapValue(t *testing.T) {
	ws, err := ParseSpec("workload w\nphase 1\n  stream gap=4\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ws[0].Phases[0].Records(1, 100) {
		if r.Gap != 4 {
			t.Fatalf("gap %d", r.Gap)
		}
	}
}

func TestParseSpecRegionsDisjointFromSuite(t *testing.T) {
	ws, err := ParseSpec("workload w\nphase 1\n  loop blocks=1K gap=1\n")
	if err != nil {
		t.Fatal(err)
	}
	recs := ws[0].Phases[0].Records(1, 100)
	suiteMax := uint64(len(Suite()) * 8)
	for _, r := range recs {
		if r.Addr>>36 < suiteMax {
			t.Fatalf("custom workload region %d collides with the built-in suite", r.Addr>>36)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"phase before workload":  "phase 1\n loop blocks=1 gap=1",
		"gen before phase":       "workload w\n loop blocks=1 gap=1",
		"bad weight":             "workload w\nphase zero\n loop blocks=1 gap=1",
		"unknown kind":           "workload w\nphase 1\n warble blocks=1 gap=1",
		"missing option":         "workload w\nphase 1\n loop gap=1",
		"unknown option":         "workload w\nphase 1\n stream gap=1 blocks=4",
		"bad gap":                "workload w\nphase 1\n stream gap=5:2",
		"zero gap":               "workload w\nphase 1\n stream gap=0:2",
		"bad blocks":             "workload w\nphase 1\n loop blocks=none gap=1",
		"bad alpha":              "workload w\nphase 1\n zipf blocks=1K alpha=-1 gap=1",
		"bad mix weight":         "workload w\nphase 1\n mix x loop blocks=1 gap=1",
		"bad switch":             "workload w\nphase 1 switch=0\n stream gap=1",
		"unknown phase option":   "workload w\nphase 1 bogus=3\n stream gap=1",
		"duplicate names":        "workload w\nphase 1\n stream gap=1\nworkload w\nphase 1\n stream gap=1",
		"empty":                  "   \n# only comments\n",
		"workload without phase": "workload w",
		"phase without gens":     "workload w\nphase 1",
	}
	for name, spec := range cases {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("%s: accepted %q", name, spec)
		}
	}
}

func TestParseSpecSizeSuffixes(t *testing.T) {
	if n, err := parseSize("48K"); err != nil || n != 48<<10 {
		t.Fatalf("48K -> %d, %v", n, err)
	}
	if n, err := parseSize("2M"); err != nil || n != 2<<20 {
		t.Fatalf("2M -> %d, %v", n, err)
	}
	if n, err := parseSize("7"); err != nil || n != 7 {
		t.Fatalf("7 -> %d, %v", n, err)
	}
	if _, err := parseSize("K"); err == nil {
		t.Fatal("bare suffix accepted")
	}
}

func TestParseSpecCommentsIgnored(t *testing.T) {
	ws, err := ParseSpec("workload w # trailing comment\nphase 1 # another\n  stream gap=1 # third\n")
	if err != nil {
		t.Fatal(err)
	}
	if ws[0].Name != "w" {
		t.Fatal("comment parsing broke the name")
	}
}
