package workload

import (
	"testing"

	"gippr/internal/trace"
)

func TestSuiteHas29Workloads(t *testing.T) {
	s := Suite()
	if len(s) != 29 {
		t.Fatalf("suite has %d workloads, want 29 (SPEC CPU 2006 count)", len(s))
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate workload name %q", n)
		}
		seen[n] = true
	}
}

func TestPhaseWeightsPositiveAndFinite(t *testing.T) {
	for _, w := range Suite() {
		total := 0.0
		for _, p := range w.Phases {
			if p.Weight <= 0 {
				t.Fatalf("%s: non-positive phase weight", w.Name)
			}
			total += p.Weight
		}
		if total <= 0 {
			t.Fatalf("%s: zero total weight", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf_like")
	if err != nil || w.Name != "mcf_like" {
		t.Fatalf("ByName: %v %v", w.Name, err)
	}
	if _, err := ByName("not_a_workload"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, w := range Suite()[:5] {
		a := w.Phases[0].Records(42, 2000)
		b := w.Phases[0].Records(42, 2000)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", w.Name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs across identical seeds", w.Name, i)
			}
		}
	}
}

func TestSeedsChangeStreams(t *testing.T) {
	w, _ := ByName("mcf_like")
	a := w.Phases[0].Records(1, 2000)
	b := w.Phases[0].Records(2, 2000)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGapsWithinDeclaredRanges(t *testing.T) {
	for _, w := range Suite() {
		for pi, p := range w.Phases {
			for _, r := range p.Records(7, 3000) {
				if r.Gap < 1 || r.Gap > 64 {
					t.Fatalf("%s phase %d: gap %d out of sane range", w.Name, pi, r.Gap)
				}
			}
		}
	}
}

func TestWorkloadsUseDisjointAddressRegions(t *testing.T) {
	// Each generator owns a 64 GB region; distinct workloads must never
	// alias (otherwise results would couple across benchmarks).
	regions := map[uint64]string{}
	for _, w := range Suite() {
		for pi, p := range w.Phases {
			for _, r := range p.Records(3, 2000) {
				reg := r.Addr >> 36
				if owner, ok := regions[reg]; ok && owner != w.Name {
					t.Fatalf("region %d shared by %s and %s (phase %d)", reg, owner, w.Name, pi)
				}
				regions[reg] = w.Name
			}
		}
	}
}

func TestPCsAreStable(t *testing.T) {
	w, _ := ByName("libquantum_like")
	recs := w.Phases[0].Records(5, 1000)
	pcs := map[uint64]bool{}
	for _, r := range recs {
		pcs[r.PC] = true
	}
	if len(pcs) > 16 {
		t.Fatalf("single-generator workload uses %d distinct PCs", len(pcs))
	}
}

func TestLoopGeneratorCycles(t *testing.T) {
	g := newLoop(newRegion(999), 4, gapRange{1, 1}, 0)
	var addrs []uint64
	for i := 0; i < 8; i++ {
		r, _ := g.Next()
		addrs = append(addrs, r.Addr)
	}
	for i := 0; i < 4; i++ {
		if addrs[i] != addrs[i+4] {
			t.Fatalf("loop did not cycle: %v", addrs)
		}
	}
}

func TestStreamNeverRepeatsSoon(t *testing.T) {
	g := newStream(newRegion(998), gapRange{1, 1}, 0)
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		r, _ := g.Next()
		if seen[r.Addr] {
			t.Fatalf("stream repeated address at step %d", i)
		}
		seen[r.Addr] = true
	}
}

func TestScanReuseRevisitsExactlyOnce(t *testing.T) {
	g := newScanReuse(newRegion(997), 10, gapRange{1, 1}, 0)
	count := map[uint64]int{}
	for i := 0; i < 5000; i++ {
		r, _ := g.Next()
		count[r.Addr]++
	}
	over := 0
	for _, c := range count {
		if c > 2 {
			over++
		}
	}
	if over > 0 {
		t.Fatalf("%d blocks visited more than twice", over)
	}
	twice := 0
	for _, c := range count {
		if c == 2 {
			twice++
		}
	}
	if twice < 2000 {
		t.Fatalf("only %d blocks reused; delayed reuse not happening", twice)
	}
}

func TestChaseCoversWholeWorkingSet(t *testing.T) {
	const blocks = 64
	g := newChase(newRegion(996), blocks, gapRange{1, 1}, 3)
	seen := map[uint64]bool{}
	for i := 0; i < blocks; i++ {
		r, _ := g.Next()
		seen[r.Addr] = true
	}
	if len(seen) != blocks {
		t.Fatalf("chase visited %d of %d blocks in one cycle", len(seen), blocks)
	}
}

func TestZipfSkew(t *testing.T) {
	g := newZipf(newRegion(995), 1024, 1.2, gapRange{1, 1}, 9)
	count := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		count[r.Addr]++
	}
	max := 0
	for _, c := range count {
		if c > max {
			max = c
		}
	}
	// The hottest block of a Zipf(1.2) over 1024 should take a clearly
	// disproportionate share (uniform would be ~49).
	if max < 1000 {
		t.Fatalf("hottest block has %d of %d accesses; zipf not skewed", max, n)
	}
}

func TestMixRespectsWeights(t *testing.T) {
	a := newLoop(newRegion(994), 16, gapRange{1, 1}, 1)
	b := newLoop(newRegion(993), 16, gapRange{1, 1}, 2)
	m := newMix(7, []float64{0.9, 0.1}, a, b)
	fromA := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r, _ := m.Next()
		if r.Addr>>36 == 994 {
			fromA++
		}
	}
	frac := float64(fromA) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("mix weight 0.9 delivered %.3f", frac)
	}
}

func TestPhasedSwitches(t *testing.T) {
	a := newLoop(newRegion(992), 16, gapRange{1, 1}, 1)
	b := newLoop(newRegion(991), 16, gapRange{1, 1}, 2)
	p := newPhased(100, a, b)
	regions := map[uint64]int{}
	for i := 0; i < 400; i++ {
		r, _ := p.Next()
		regions[r.Addr>>36]++
	}
	if regions[992] != 200 || regions[991] != 200 {
		t.Fatalf("phased split %v", regions)
	}
}

func TestLimit(t *testing.T) {
	g := newStream(newRegion(990), gapRange{1, 1}, 0)
	l := &Limit{Src: g, N: 5}
	n := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("limit yielded %d", n)
	}
}

func TestRecordsShortStream(t *testing.T) {
	w, _ := ByName("gamess_like")
	var src trace.Source = w.Phases[0].Source(1)
	if src == nil {
		t.Fatal("nil source")
	}
	recs := w.Phases[0].Records(1, 100)
	if len(recs) != 100 {
		t.Fatalf("got %d records", len(recs))
	}
}
