package workload

import (
	"errors"
	"fmt"
	"sort"

	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// ErrUnknownWorkload is the sentinel wrapped by ByName failures, so callers
// can branch with errors.Is (usage exit code in the cmd tools, 400 Bad
// Request in the job service).
var ErrUnknownWorkload = errors.New("workload: unknown workload")

// Phase is one SimPoint-like program phase: a weighted, independently
// seeded access-stream generator. Per-benchmark results are the weighted
// average of per-phase results, matching the paper's SimPoint methodology
// (Section 4.6).
type Phase struct {
	Weight float64
	// Source builds a fresh generator for the phase; seed perturbs the
	// stream deterministically (the same seed always gives the same
	// stream).
	Source func(seed uint64) trace.Source
}

// Workload is one named benchmark stand-in.
type Workload struct {
	Name   string
	Phases []Phase
}

// Block-count helpers relative to the simulated hierarchy: the 4 MB LLC
// holds 65536 64-byte blocks (4096 sets x 16 ways), the 256 KB L2 holds
// 4096, the 32 KB L1 holds 512.
const (
	llcBlocks = 65536
	l2Blocks  = 4096
)

// Suite returns the 29 benchmark stand-ins. Each call builds fresh
// definitions; generators are only instantiated when a Phase's Source is
// invoked. The archetypes (documented inline) are chosen so the suite spans
// the regimes that differentiate replacement policies; see DESIGN.md
// Section 1 for the substitution rationale.
func Suite() []Workload {
	// region ids partition the address space: workload w, generator g ->
	// id w*8+g. Workload indices are fixed by position below.
	var ws []Workload
	rid := func(g int) uint64 { return uint64(len(ws)*8 + g) }
	add := func(name string, phases ...Phase) {
		if len(phases) == 0 {
			panic("workload: no phases for " + name)
		}
		ws = append(ws, Workload{Name: name, Phases: phases})
	}
	one := func(f func(seed uint64) trace.Source) []Phase {
		return []Phase{{Weight: 1, Source: f}}
	}

	// --- memory-intensive archetypes -------------------------------------

	// mcf_like: large pointer chases over 12.5 MB and 2.5 MB structures
	// plus skewed node popularity; the 2.5 MB chase fits the LLC only if it
	// is protected from the large chase's pollution.
	{
		r0, r1, r2 := rid(0), rid(1), rid(2)
		add("mcf_like",
			Phase{Weight: 0.6, Source: func(seed uint64) trace.Source {
				return newMix(seed, []float64{0.5, 0.3, 0.2},
					newChase(newRegion(r0), 200<<10, gapRange{1, 4}, xrand.Mix(seed, 1)),
					newChase(newRegion(r1), 40<<10, gapRange{1, 4}, xrand.Mix(seed, 2)),
					newZipf(newRegion(r2), 96<<10, 0.8, gapRange{1, 4}, xrand.Mix(seed, 3)))
			}},
			Phase{Weight: 0.4, Source: func(seed uint64) trace.Source {
				return newMix(seed, []float64{0.6, 0.4},
					newChase(newRegion(r0), 200<<10, gapRange{1, 3}, xrand.Mix(seed, 4)),
					newChase(newRegion(r1), 36<<10, gapRange{1, 3}, xrand.Mix(seed, 5)))
			}})
	}

	// libquantum_like: cyclic sequential sweep over a 10 MB array — the
	// canonical LRU-thrashing loop (2.5x LLC capacity).
	{
		r0 := rid(0)
		add("libquantum_like", one(func(seed uint64) trace.Source {
			return newLoop(newRegion(r0), 160<<10, gapRange{4, 8}, seed)
		})...)
	}

	// lbm_like: streaming stencil with a modest reusable working set.
	{
		r0, r1 := rid(0), rid(1)
		add("lbm_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.7, 0.3},
				newStream(newRegion(r0), gapRange{2, 5}, xrand.Mix(seed, 1)),
				newLoop(newRegion(r1), 32<<10, gapRange{2, 5}, xrand.Mix(seed, 2)))
		})...)
	}

	// milc_like: large uniformly random lattice accesses over a hot loop.
	{
		r0, r1 := rid(0), rid(1)
		add("milc_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.6, 0.4},
				newUniform(newRegion(r0), 192<<10, gapRange{2, 6}, xrand.Mix(seed, 1)),
				newLoop(newRegion(r1), 48<<10, gapRange{2, 6}, xrand.Mix(seed, 2)))
		})...)
	}

	// soplex_like: sparse solver — delayed-reuse scans plus skewed column
	// reuse plus a fitting loop.
	{
		r0, r1, r2 := rid(0), rid(1), rid(2)
		add("soplex_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.5, 0.3, 0.2},
				newScanReuse(newRegion(r0), 30<<10, gapRange{2, 6}, xrand.Mix(seed, 1)),
				newZipf(newRegion(r1), 128<<10, 0.9, gapRange{2, 6}, xrand.Mix(seed, 2)),
				newLoop(newRegion(r2), 20<<10, gapRange{2, 6}, xrand.Mix(seed, 3)))
		})...)
	}

	// sphinx3_like: acoustic-model sweep slightly beyond LLC capacity over
	// a skewed dictionary.
	{
		r0, r1 := rid(0), rid(1)
		add("sphinx3_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.6, 0.4},
				newLoop(newRegion(r0), 100<<10, gapRange{2, 5}, xrand.Mix(seed, 1)),
				newZipf(newRegion(r1), 32<<10, 1.0, gapRange{2, 5}, xrand.Mix(seed, 2)))
		})...)
	}

	// cactusADM_like: grid sweep at ~1.4x LLC capacity — pure cyclic
	// thrash, the workload where the paper reports GIPPR's largest win
	// (39-49%).
	{
		r0 := rid(0)
		add("cactusADM_like", one(func(seed uint64) trace.Source {
			return newLoop(newRegion(r0), 90<<10, gapRange{5, 10}, seed)
		})...)
	}

	// leslie3d_like: streaming plus a slightly-thrashing loop.
	{
		r0, r1 := rid(0), rid(1)
		add("leslie3d_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.5, 0.5},
				newStream(newRegion(r0), gapRange{3, 7}, xrand.Mix(seed, 1)),
				newLoop(newRegion(r1), 70<<10, gapRange{3, 7}, xrand.Mix(seed, 2)))
		})...)
	}

	// GemsFDTD_like: field sweeps with reuse just inside LLC capacity plus
	// streaming — the regime where aggressive insertion hurts (the paper
	// shows DRRIP and PDP losing on 459.GemsFDTD).
	{
		r0, r1 := rid(0), rid(1)
		add("GemsFDTD_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.5, 0.5},
				newScanReuse(newRegion(r0), 50<<10, gapRange{2, 6}, xrand.Mix(seed, 1)),
				newStream(newRegion(r1), gapRange{2, 6}, xrand.Mix(seed, 2)))
		})...)
	}

	// omnetpp_like: pointer-heavy event simulation slightly over capacity.
	{
		r0, r1 := rid(0), rid(1)
		add("omnetpp_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.6, 0.4},
				newChase(newRegion(r0), 80<<10, gapRange{2, 6}, xrand.Mix(seed, 1)),
				newZipf(newRegion(r1), 64<<10, 0.9, gapRange{2, 6}, xrand.Mix(seed, 2)))
		})...)
	}

	// xalancbmk_like: XML transform — skewed tree nodes, a hot fitting
	// loop, and output streaming; two phases with different balances.
	{
		r0, r1, r2 := rid(0), rid(1), rid(2)
		add("xalancbmk_like",
			Phase{Weight: 0.7, Source: func(seed uint64) trace.Source {
				return newMix(seed, []float64{0.4, 0.4, 0.2},
					newZipf(newRegion(r0), 128<<10, 1.1, gapRange{3, 7}, xrand.Mix(seed, 1)),
					newLoop(newRegion(r1), 10<<10, gapRange{3, 7}, xrand.Mix(seed, 2)),
					newStream(newRegion(r2), gapRange{3, 7}, xrand.Mix(seed, 3)))
			}},
			Phase{Weight: 0.3, Source: func(seed uint64) trace.Source {
				return newMix(seed, []float64{0.6, 0.4},
					newZipf(newRegion(r0), 128<<10, 1.1, gapRange{3, 7}, xrand.Mix(seed, 4)),
					newStream(newRegion(r2), gapRange{3, 7}, xrand.Mix(seed, 5)))
			}})
	}

	// bwaves_like: large block-tridiagonal sweep, ~1.9x LLC.
	{
		r0 := rid(0)
		add("bwaves_like", one(func(seed uint64) trace.Source {
			return newLoop(newRegion(r0), 120<<10, gapRange{4, 9}, seed)
		})...)
	}

	// zeusmp_like: half streaming, half fitting loop.
	{
		r0, r1 := rid(0), rid(1)
		add("zeusmp_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.5, 0.5},
				newStream(newRegion(r0), gapRange{3, 8}, xrand.Mix(seed, 1)),
				newLoop(newRegion(r1), 30<<10, gapRange{3, 8}, xrand.Mix(seed, 2)))
		})...)
	}

	// wrf_like: weather model — mixed loop/stream/skew.
	{
		r0, r1, r2 := rid(0), rid(1), rid(2)
		add("wrf_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.4, 0.3, 0.3},
				newLoop(newRegion(r0), 60<<10, gapRange{4, 9}, xrand.Mix(seed, 1)),
				newStream(newRegion(r1), gapRange{4, 9}, xrand.Mix(seed, 2)),
				newZipf(newRegion(r2), 16<<10, 0.8, gapRange{4, 9}, xrand.Mix(seed, 3)))
		})...)
	}

	// astar_like: pathfinding pointer chase with a hot open list.
	{
		r0, r1 := rid(0), rid(1)
		add("astar_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.7, 0.3},
				newChase(newRegion(r0), 50<<10, gapRange{3, 7}, xrand.Mix(seed, 1)),
				newUniform(newRegion(r1), 8<<10, gapRange{3, 7}, xrand.Mix(seed, 2)))
		})...)
	}

	// --- moderate / phase-changing archetypes -----------------------------

	// gcc_like: compilation phases alternating small hot structures,
	// delayed-reuse IR walks and streaming.
	{
		r0, r1, r2 := rid(0), rid(1), rid(2)
		add("gcc_like", one(func(seed uint64) trace.Source {
			return newPhased(400_000,
				newLoop(newRegion(r0), 6<<10, gapRange{4, 9}, xrand.Mix(seed, 1)),
				newScanReuse(newRegion(r1), 20<<10, gapRange{4, 9}, xrand.Mix(seed, 2)),
				newStream(newRegion(r2), gapRange{4, 9}, xrand.Mix(seed, 3)))
		})...)
	}

	// bzip2_like: alternating compression blocks — small loop, then a
	// working set beyond the LLC.
	{
		r0, r1 := rid(0), rid(1)
		add("bzip2_like", one(func(seed uint64) trace.Source {
			return newPhased(300_000,
				newLoop(newRegion(r0), 12<<10, gapRange{3, 7}, xrand.Mix(seed, 1)),
				newUniform(newRegion(r1), 96<<10, gapRange{3, 7}, xrand.Mix(seed, 2)))
		})...)
	}

	// hmmer_like: pronounced phase alternation between a thrashing sweep
	// and a fitting table — the adaptivity stress test where the paper's
	// 2-DGIPPR falters but 4-DGIPPR is near optimal.
	{
		r0, r1 := rid(0), rid(1)
		add("hmmer_like", one(func(seed uint64) trace.Source {
			return newPhased(250_000,
				newLoop(newRegion(r0), 70<<10, gapRange{4, 8}, xrand.Mix(seed, 1)),
				newLoop(newRegion(r1), 3<<10, gapRange{4, 8}, xrand.Mix(seed, 2)))
		})...)
	}

	// h264ref_like: small hot frame buffer plus short-delay reference
	// frames; mostly L2-resident.
	{
		r0, r1 := rid(0), rid(1)
		add("h264ref_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.6, 0.4},
				newLoop(newRegion(r0), 2<<10, gapRange{6, 12}, xrand.Mix(seed, 1)),
				newScanReuse(newRegion(r1), 8<<10, gapRange{6, 12}, xrand.Mix(seed, 2)))
		})...)
	}

	// perlbench_like: interpreter — skewed opcode/data structures with
	// light streaming.
	{
		r0, r1 := rid(0), rid(1)
		add("perlbench_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.8, 0.2},
				newZipf(newRegion(r0), 24<<10, 1.0, gapRange{5, 10}, xrand.Mix(seed, 1)),
				newStream(newRegion(r1), gapRange{5, 10}, xrand.Mix(seed, 2)))
		})...)
	}

	// gromacs_like: molecular dynamics — fitting neighbour lists plus
	// moderate random force lookups.
	{
		r0, r1 := rid(0), rid(1)
		add("gromacs_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.6, 0.4},
				newLoop(newRegion(r0), 7<<10, gapRange{6, 11}, xrand.Mix(seed, 1)),
				newUniform(newRegion(r1), 20<<10, gapRange{6, 11}, xrand.Mix(seed, 2)))
		})...)
	}

	// dealII_like: finite elements — delayed single reuse with short
	// per-set stack distance plus a fitting loop: the workload the paper
	// singles out as hurt by every non-LRU policy.
	{
		r0, r1 := rid(0), rid(1)
		add("dealII_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.7, 0.3},
				newScanReuse(newRegion(r0), 16<<10, gapRange{3, 6}, xrand.Mix(seed, 1)),
				newLoop(newRegion(r1), 8<<10, gapRange{3, 6}, xrand.Mix(seed, 2)))
		})...)
	}

	// tonto_like: quantum chemistry — fitting tensors with skewed basis
	// lookups.
	{
		r0, r1 := rid(0), rid(1)
		add("tonto_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.5, 0.5},
				newLoop(newRegion(r0), 5<<10, gapRange{7, 13}, xrand.Mix(seed, 1)),
				newZipf(newRegion(r1), 12<<10, 0.9, gapRange{7, 13}, xrand.Mix(seed, 2)))
		})...)
	}

	// sjeng_like: game-tree search — lightly skewed transposition table far
	// beyond LLC capacity; low locality, low sensitivity.
	{
		r0 := rid(0)
		add("sjeng_like", one(func(seed uint64) trace.Source {
			return newZipf(newRegion(r0), 160<<10, 1.2, gapRange{7, 14}, seed)
		})...)
	}

	// --- cache-insensitive archetypes -------------------------------------

	// gobmk_like: small board structures, fits comfortably.
	{
		r0 := rid(0)
		add("gobmk_like", one(func(seed uint64) trace.Source {
			return newUniform(newRegion(r0), 6<<10, gapRange{7, 14}, seed)
		})...)
	}

	// namd_like: tight molecular kernel, fits in L2/LLC.
	{
		r0 := rid(0)
		add("namd_like", one(func(seed uint64) trace.Source {
			return newLoop(newRegion(r0), 4<<10, gapRange{9, 16}, seed)
		})...)
	}

	// calculix_like: small matrix kernels with negligible streaming.
	{
		r0, r1 := rid(0), rid(1)
		add("calculix_like", one(func(seed uint64) trace.Source {
			return newMix(seed, []float64{0.9, 0.1},
				newLoop(newRegion(r0), 3<<10, gapRange{9, 17}, xrand.Mix(seed, 1)),
				newStream(newRegion(r1), gapRange{9, 17}, xrand.Mix(seed, 2)))
		})...)
	}

	// povray_like: tiny skewed scene data; every policy equal (the paper
	// notes MIN == LRU here).
	{
		r0 := rid(0)
		add("povray_like", one(func(seed uint64) trace.Source {
			return newZipf(newRegion(r0), 2<<10, 1.1, gapRange{10, 20}, seed)
		})...)
	}

	// gamess_like: tiny loop, L1/L2 resident.
	{
		r0 := rid(0)
		add("gamess_like", one(func(seed uint64) trace.Source {
			return newLoop(newRegion(r0), 1<<10, gapRange{10, 20}, seed)
		})...)
	}

	return ws
}

// Names returns the suite's workload names in suite order.
func Names() []string {
	s := Suite()
	names := make([]string, len(s))
	for i, w := range s {
		names[i] = w.Name
	}
	return names
}

// ByName finds a workload in the suite.
func ByName(name string) (Workload, error) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, nil
		}
	}
	sorted := Names()
	sort.Strings(sorted)
	return Workload{}, fmt.Errorf("%w %q (known: %v)", ErrUnknownWorkload, name, sorted)
}

// Records materializes n records of one phase with the given seed.
func (p Phase) Records(seed uint64, n int) []trace.Record {
	src := p.Source(seed)
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	return recs
}
