// Package workload provides the synthetic SPEC CPU 2006 stand-ins described
// in DESIGN.md. The paper evaluates on traces of the 29 SPEC CPU 2006
// benchmarks; those traces are proprietary, so this package substitutes 29
// named deterministic generators ("mcf_like", "libquantum_like", ...) whose
// last-level-cache behaviour falls in the same regimes: cache-fitting loops,
// cyclic thrashing slightly beyond LLC capacity, pure streaming, streaming
// with delayed single reuse, skewed (Zipf) popularity, pointer chases, and
// phased mixtures of these. Sizes are chosen relative to the simulated
// hierarchy (32 KB L1 / 256 KB L2 / 4 MB LLC, 64-byte blocks), which is what
// determines how a replacement policy ranks — the property the reproduction
// needs to preserve.
//
// Every generator is an infinite trace.Source driven by a seeded
// deterministic RNG; the same (workload, phase, seed) always produces the
// same stream.
package workload

import (
	"math"
	"sort"

	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// BlockBytes is the memory block granularity generators emit addresses in.
const BlockBytes = 64

// gapRange samples instruction gaps uniformly in [lo, hi].
type gapRange struct{ lo, hi uint32 }

func (g gapRange) sample(rng *xrand.RNG) uint32 {
	if g.hi <= g.lo {
		return g.lo
	}
	return g.lo + uint32(rng.Intn(int(g.hi-g.lo+1)))
}

// region carves out a disjoint address range for a generator instance so
// independently parameterized generators never alias.
type region struct {
	base uint64
	pcs  [8]uint64
}

func newRegion(id uint64) region {
	r := region{base: id << 36} // 64 GB apart
	for i := range r.pcs {
		r.pcs[i] = 0x4000_0000_0000 | id<<16 | uint64(i)*4
	}
	return r
}

func (r *region) addr(block uint64) uint64 { return r.base + block*BlockBytes }

// loopGen cyclically scans a working set of `blocks` blocks in sequential
// order: the canonical fixed-reuse-distance pattern. A working set under the
// LLC capacity hits always once warm; one slightly over it thrashes LRU
// completely while insertion-filtering policies retain a stable fraction.
type loopGen struct {
	reg    region
	blocks uint64
	pos    uint64
	gap    gapRange
	rng    *xrand.RNG
}

func newLoop(reg region, blocks uint64, gap gapRange, seed uint64) *loopGen {
	return &loopGen{reg: reg, blocks: blocks, gap: gap, rng: xrand.New(seed)}
}

func (g *loopGen) Next() (trace.Record, bool) {
	r := trace.Record{
		Gap:  g.gap.sample(g.rng),
		PC:   g.reg.pcs[0],
		Addr: g.reg.addr(g.pos),
	}
	g.pos++
	if g.pos == g.blocks {
		g.pos = 0
	}
	return r, true
}

// streamGen touches each block exactly once, forever: the zero-reuse pattern
// of Liu et al.'s "cache bursts" discussion in the paper's Section 2.2. It
// wraps far beyond any cache's capacity so reuse never lands.
type streamGen struct {
	reg  region
	pos  uint64
	span uint64
	gap  gapRange
	rng  *xrand.RNG
}

func newStream(reg region, gap gapRange, seed uint64) *streamGen {
	return &streamGen{reg: reg, span: 1 << 28 /* 16 GB of blocks */, gap: gap, rng: xrand.New(seed)}
}

func (g *streamGen) Next() (trace.Record, bool) {
	r := trace.Record{
		Gap:   g.gap.sample(g.rng),
		PC:    g.reg.pcs[1],
		Addr:  g.reg.addr(g.pos),
		Write: g.rng.OneIn(4),
	}
	g.pos++
	if g.pos == g.span {
		g.pos = 0
	}
	return r, true
}

// scanReuseGen streams new blocks and revisits each exactly once after
// `delay` further new blocks, alternating new/reuse accesses. The reuse has
// a short per-set stack distance, so true LRU captures it while aggressive
// insertion policies (LIP, SRRIP-class) evict the block before its single
// reuse — the "LRU-friendly, everything else hurts" regime of 447.dealII.
type scanReuseGen struct {
	reg   region
	head  uint64
	delay uint64
	reuse bool
	gap   gapRange
	rng   *xrand.RNG
}

func newScanReuse(reg region, delay uint64, gap gapRange, seed uint64) *scanReuseGen {
	return &scanReuseGen{reg: reg, delay: delay, gap: gap, rng: xrand.New(seed)}
}

func (g *scanReuseGen) Next() (trace.Record, bool) {
	r := trace.Record{Gap: g.gap.sample(g.rng), PC: g.reg.pcs[2]}
	if g.reuse && g.head > g.delay {
		r.Addr = g.reg.addr((g.head - g.delay) % (1 << 28))
		g.reuse = false
	} else {
		r.Addr = g.reg.addr(g.head % (1 << 28))
		g.head++
		g.reuse = true
	}
	return r, true
}

// uniformGen touches uniformly random blocks within a working set.
type uniformGen struct {
	reg    region
	blocks uint64
	gap    gapRange
	rng    *xrand.RNG
}

func newUniform(reg region, blocks uint64, gap gapRange, seed uint64) *uniformGen {
	return &uniformGen{reg: reg, blocks: blocks, gap: gap, rng: xrand.New(seed)}
}

func (g *uniformGen) Next() (trace.Record, bool) {
	return trace.Record{
		Gap:  g.gap.sample(g.rng),
		PC:   g.reg.pcs[3],
		Addr: g.reg.addr(g.rng.Uint64n(g.blocks)),
	}, true
}

// zipfGen draws blocks from a Zipf(alpha) popularity distribution over a
// working set, modelling skewed hot/cold data. Sampling is by binary search
// over a precomputed CDF.
type zipfGen struct {
	reg region
	cdf []float64
	gap gapRange
	rng *xrand.RNG
}

func newZipf(reg region, blocks uint64, alpha float64, gap gapRange, seed uint64) *zipfGen {
	cdf := make([]float64, blocks)
	sum := 0.0
	for i := range cdf {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfGen{reg: reg, cdf: cdf, gap: gap, rng: xrand.New(seed)}
}

func (g *zipfGen) Next() (trace.Record, bool) {
	u := g.rng.Float64()
	i := sort.SearchFloat64s(g.cdf, u)
	if i >= len(g.cdf) {
		i = len(g.cdf) - 1
	}
	// Scatter ranks over the region so hot blocks do not clump into the
	// same cache sets.
	block := (uint64(i) * 0x9e3779b97f4a7c15) % uint64(len(g.cdf))
	return trace.Record{
		Gap:  g.gap.sample(g.rng),
		PC:   g.reg.pcs[4],
		Addr: g.reg.addr(block),
	}, true
}

// chaseGen follows a fixed random-permutation cycle over a working set: the
// pointer-chasing pattern of 429.mcf and 471.omnetpp. Its reuse distance
// equals the working-set size, like a loop, but successive accesses hit
// arbitrary sets, so per-set arrival order is irregular.
type chaseGen struct {
	reg  region
	next []uint32
	cur  uint32
	gap  gapRange
	rng  *xrand.RNG
}

func newChase(reg region, blocks uint64, gap gapRange, seed uint64) *chaseGen {
	rng := xrand.New(seed)
	perm := rng.Perm(int(blocks))
	next := make([]uint32, blocks)
	for i := 0; i < len(perm); i++ {
		next[perm[i]] = uint32(perm[(i+1)%len(perm)])
	}
	return &chaseGen{reg: reg, next: next, gap: gap, rng: rng}
}

func (g *chaseGen) Next() (trace.Record, bool) {
	r := trace.Record{
		Gap:  g.gap.sample(g.rng),
		PC:   g.reg.pcs[5],
		Addr: g.reg.addr(uint64(g.cur)),
	}
	g.cur = g.next[g.cur]
	return r, true
}

// mixGen interleaves child generators, choosing one per access with the
// given weights — the standard way to model a hot structure under streaming
// interference.
type mixGen struct {
	children []trace.Source
	cdf      []float64
	rng      *xrand.RNG
}

func newMix(seed uint64, weights []float64, children ...trace.Source) *mixGen {
	if len(weights) != len(children) {
		panic("workload: mix weights/children mismatch")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &mixGen{children: children, cdf: cdf, rng: xrand.New(seed)}
}

func (g *mixGen) Next() (trace.Record, bool) {
	u := g.rng.Float64()
	i := sort.SearchFloat64s(g.cdf, u)
	if i >= len(g.children) {
		i = len(g.children) - 1
	}
	return g.children[i].Next()
}

// phasedGen round-robins child generators, switching every `period`
// accesses: coarse program phases within one trace, the behaviour that
// rewards run-time adaptivity (456.hmmer in the paper).
type phasedGen struct {
	children []trace.Source
	period   uint64
	count    uint64
	cur      int
}

func newPhased(period uint64, children ...trace.Source) *phasedGen {
	return &phasedGen{children: children, period: period}
}

func (g *phasedGen) Next() (trace.Record, bool) {
	r, ok := g.children[g.cur].Next()
	g.count++
	if g.count%g.period == 0 {
		g.cur = (g.cur + 1) % len(g.children)
	}
	return r, ok
}

// Limit caps an infinite source at n records.
type Limit struct {
	Src trace.Source
	N   uint64
	i   uint64
}

// Next implements trace.Source.
func (l *Limit) Next() (trace.Record, bool) {
	if l.i >= l.N {
		return trace.Record{}, false
	}
	l.i++
	return l.Src.Next()
}
