package ipv

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a directed edge between recency-stack positions in a transition
// graph.
type Edge struct {
	From, To int
}

// Graph is the transition graph of an IPV in the style of the paper's
// Figures 2 and 3. Vertices are recency-stack positions 0..k-1 plus two
// virtual vertices: Insertion (k) and Eviction (k+1, the exit of the LRU
// position). Solid edges show the new position for an accessed or inserted
// block; dashed edges show where a block is shifted when another block is
// moved into its position (true-LRU shift semantics).
type Graph struct {
	K      int
	Solid  []Edge // access/insertion moves: i -> V[i], Insertion -> V[k]
	Dashed []Edge // shift moves: j -> j±1, and k-1 -> Eviction
}

// InsertionNode and EvictionNode return the virtual vertex ids used in the
// graph for the insertion source and the eviction sink.
func (g *Graph) InsertionNode() int { return g.K }
func (g *Graph) EvictionNode() int  { return g.K + 1 }

// TransitionGraph builds the transition graph of v under true-LRU stack
// semantics.
func TransitionGraph(v Vector) *Graph {
	k := v.K()
	g := &Graph{K: k}
	// Solid edges: accessed block at i moves to V[i]; insertion moves a new
	// block to V[k].
	for i := 0; i < k; i++ {
		g.Solid = append(g.Solid, Edge{From: i, To: v[i]})
	}
	g.Solid = append(g.Solid, Edge{From: g.InsertionNode(), To: v[k]})

	// Dashed edges: positions displaced by promotions, demotions and
	// insertions, mirroring ReachesMRU's shift analysis.
	down := make([]bool, k)
	up := make([]bool, k)
	for i := 0; i < k; i++ {
		t := v[i]
		if t < i {
			for j := t; j < i; j++ {
				down[j] = true
			}
		} else if t > i {
			for j := i + 1; j <= t; j++ {
				up[j] = true
			}
		}
	}
	for j := v[k]; j < k-1; j++ {
		down[j] = true
	}
	for j := 0; j < k; j++ {
		if down[j] {
			if j+1 < k {
				g.Dashed = append(g.Dashed, Edge{From: j, To: j + 1})
			}
		}
		if up[j] && j > 0 {
			g.Dashed = append(g.Dashed, Edge{From: j, To: j - 1})
		}
	}
	// The LRU block leaves the stack when a victim is needed.
	g.Dashed = append(g.Dashed, Edge{From: k - 1, To: g.EvictionNode()})
	sortEdges(g.Solid)
	sortEdges(g.Dashed)
	return g
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
}

// DOT renders the graph in Graphviz DOT format, suitable for regenerating
// the paper's Figures 2 and 3 with `dot -Tpdf`.
func (g *Graph) DOT(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph ipv {\n")
	fmt.Fprintf(&sb, "  label=%q;\n", title)
	fmt.Fprintf(&sb, "  rankdir=LR;\n  node [shape=circle];\n")
	for i := 0; i < g.K; i++ {
		fmt.Fprintf(&sb, "  n%d [label=\"%d\"];\n", i, i)
	}
	fmt.Fprintf(&sb, "  n%d [label=\"insertion\", shape=box];\n", g.InsertionNode())
	fmt.Fprintf(&sb, "  n%d [label=\"eviction\", shape=box];\n", g.EvictionNode())
	for _, e := range g.Solid {
		fmt.Fprintf(&sb, "  n%d -> n%d;\n", e.From, e.To)
	}
	for _, e := range g.Dashed {
		fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed];\n", e.From, e.To)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Text renders a compact human-readable description of the graph, one line
// per vertex, used by cmd/gippr-graph's default output.
func (g *Graph) Text() string {
	solid := map[int][]int{}
	dashed := map[int][]int{}
	for _, e := range g.Solid {
		solid[e.From] = append(solid[e.From], e.To)
	}
	for _, e := range g.Dashed {
		dashed[e.From] = append(dashed[e.From], e.To)
	}
	name := func(n int) string {
		switch n {
		case g.InsertionNode():
			return "insertion"
		case g.EvictionNode():
			return "eviction"
		default:
			return fmt.Sprintf("%d", n)
		}
	}
	var sb strings.Builder
	nodes := make([]int, 0, g.K+1)
	for i := 0; i < g.K; i++ {
		nodes = append(nodes, i)
	}
	nodes = append(nodes, g.InsertionNode())
	for _, n := range nodes {
		fmt.Fprintf(&sb, "%-9s", name(n))
		if ts := solid[n]; len(ts) > 0 {
			sb.WriteString(" solid ->")
			for _, t := range ts {
				fmt.Fprintf(&sb, " %s", name(t))
			}
		}
		if ts := dashed[n]; len(ts) > 0 {
			sb.WriteString("  dashed ->")
			for _, t := range ts {
				fmt.Fprintf(&sb, " %s", name(t))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
