package ipv

import (
	"fmt"
	"strings"
)

// InsertionClass coarsely classifies where a vector inserts incoming
// blocks, the dimension the paper reads off its learned vectors
// (Section 5.3.2: "the WI-4-DGIPPR IPVs switch between PLRU, PMRU, close to
// PMRU, and 'middle' insertion").
type InsertionClass string

// Insertion classes, by quartile of the recency stack.
const (
	InsertPMRU     InsertionClass = "PMRU"          // top quarter
	InsertNearPMRU InsertionClass = "close-to-PMRU" // second quarter
	InsertMiddle   InsertionClass = "middle"        // third quarter
	InsertPLRU     InsertionClass = "PLRU"          // bottom quarter
)

// Analysis summarizes a vector's behaviour along the axes the paper uses to
// interpret its learned vectors.
type Analysis struct {
	Vector       Vector
	Insertion    InsertionClass
	InsertionPos int
	// Promotions counts entries with V[i] < i (the block moves toward
	// MRU when re-referenced).
	Promotions int
	// Demotions counts entries with V[i] > i (a "pessimistic" promotion
	// policy in the paper's words — the first WI-2-DGIPPR vector moves
	// most referenced blocks closer to the PLRU position).
	Demotions int
	// Identity counts entries with V[i] == i.
	Identity int
	// MeanTarget is the average new position of a re-referenced block:
	// near 0 for aggressive MRU promotion, near k-1 for pessimistic
	// policies.
	MeanTarget float64
	// Pessimistic reports whether re-referenced blocks land, on average,
	// clearly below the MRU quarter of the stack (MeanTarget > k/4) — the
	// paper's reading of its first WI-2-DGIPPR vector, which "moves most
	// referenced blocks closer to the PLRU position".
	Pessimistic bool
	// LRULike reports whether the vector is within a small edit distance
	// of classic LRU (all promotions to 0 and MRU insertion).
	LRULike bool
	// ReachesMRU is the footnote-1 degeneracy test.
	ReachesMRU bool
}

// Analyze computes the interpretation summary of a vector.
func Analyze(v Vector) Analysis {
	if err := v.Validate(); err != nil {
		panic(err)
	}
	k := v.K()
	a := Analysis{
		Vector:       v.Clone(),
		InsertionPos: v.Insertion(),
		ReachesMRU:   v.ReachesMRU(),
	}
	switch q := 4 * v.Insertion() / k; q {
	case 0:
		a.Insertion = InsertPMRU
	case 1:
		a.Insertion = InsertNearPMRU
	case 2:
		a.Insertion = InsertMiddle
	default:
		a.Insertion = InsertPLRU
	}
	sum := 0
	nonLRU := 0
	for i := 0; i < k; i++ {
		sum += v[i]
		switch {
		case v[i] < i:
			a.Promotions++
		case v[i] > i:
			a.Demotions++
		default:
			a.Identity++
		}
		if v[i] != 0 {
			nonLRU++
		}
	}
	if v.Insertion() != 0 {
		nonLRU++
	}
	a.MeanTarget = float64(sum) / float64(k)
	a.Pessimistic = a.MeanTarget > float64(k)/4
	a.LRULike = nonLRU <= k/4
	return a
}

// String renders a one-line interpretation, e.g.
// "insert@13 (PLRU), 11 promotions / 3 demotions, mean target 2.1".
func (a Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "insert@%d (%s), %d promotions / %d demotions / %d holds, mean target %.1f",
		a.InsertionPos, a.Insertion, a.Promotions, a.Demotions, a.Identity, a.MeanTarget)
	if a.Pessimistic {
		sb.WriteString(", pessimistic")
	}
	if a.LRULike {
		sb.WriteString(", LRU-like")
	}
	if !a.ReachesMRU {
		sb.WriteString(", DEGENERATE (cannot reach MRU)")
	}
	return sb.String()
}

// ClassifySet summarizes a duelled vector set the way the paper reads its
// WI-2/4-DGIPPR sets: the list of insertion classes covered.
func ClassifySet(vs []Vector) []InsertionClass {
	out := make([]InsertionClass, len(vs))
	for i, v := range vs {
		out[i] = Analyze(v).Insertion
	}
	return out
}
