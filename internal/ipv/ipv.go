// Package ipv implements insertion/promotion vectors (IPVs), the central
// abstraction of the paper (Section 2.3).
//
// For a k-way set-associative cache an IPV is a vector V[0..k] of k+1
// integers, each in 0..k-1, interpreted against a recency stack with the MRU
// block at position 0 and the LRU block at position k-1:
//
//   - V[i] for i < k is the new position a block in position i moves to when
//     it is re-referenced (a promotion — or a demotion, nothing forces
//     V[i] <= i);
//   - V[k] is the position at which an incoming block is inserted on a miss.
//
// Classic policies are points in this space: LRU is [0,0,...,0,0], LRU
// insertion (LIP, Qureshi et al.) is [0,0,...,0,k-1]. The paper searches this
// k^(k+1) design space with a genetic algorithm. This package provides the
// vector type itself, validation, the named vectors published in the paper,
// the MRU-reachability (degeneracy) test of footnote 1, and transition-graph
// construction/DOT export used to regenerate Figures 2 and 3.
package ipv

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadVector is the sentinel wrapped by every vector validation or parse
// failure, so callers can branch with errors.Is instead of string matching
// (the cmd tools map it to their usage exit code, the job service to
// 400 Bad Request).
var ErrBadVector = errors.New("ipv: bad vector")

// Vector is an insertion/promotion vector for a k-way cache: k promotion
// entries followed by one insertion entry, so len(Vector) == k+1.
type Vector []int

// New returns the vector for a k-way cache with all entries zero, i.e. the
// classic LRU policy (promote to MRU, insert at MRU).
func New(k int) Vector {
	if k < 2 {
		panic("ipv: associativity must be at least 2")
	}
	return make(Vector, k+1)
}

// LRU returns the classic LRU vector [0,0,...,0] for a k-way cache.
func LRU(k int) Vector { return New(k) }

// LIP returns the LRU-insertion vector [0,...,0,k-1] (Qureshi et al.'s LIP):
// hits promote to MRU but incoming blocks are inserted at the LRU position.
func LIP(k int) Vector {
	v := New(k)
	v[k] = k - 1
	return v
}

// MidClimb returns the three-step example from Section 2.4:
// insert at LRU, first re-reference promotes to the middle of the stack,
// second re-reference promotes to MRU.
func MidClimb(k int) Vector {
	v := New(k)
	v[k] = k - 1   // insert at LRU
	v[k-1] = k / 2 // referenced at LRU -> middle
	v[k/2] = 0     // referenced at middle -> MRU
	return v
}

// MultiStep returns the multi-step LRU vector for a k-way cache, the IPV
// form of Inoue's multi-step promotion (arXiv:2112.09981): the recency stack
// is divided into step equal segments of k/step positions, a re-referenced
// block climbs to the top of its own segment — or, from a segment top, to
// the top of the segment above — and incoming blocks insert at MRU. A block
// at the LRU position thus reaches MRU after exactly step re-references
// (step-1 in the fully incremental step == k case, where the LRU position is
// already a segment top). step must divide k.
// The family interpolates between classic LRU (step == 1, one segment, every
// hit promotes straight to MRU) and fully incremental promotion (step == k,
// every hit climbs a single position).
func MultiStep(k, step int) Vector {
	v := New(k)
	if step < 1 || step > k || k%step != 0 {
		panic(fmt.Sprintf("ipv: multi-step count %d must divide associativity %d", step, k))
	}
	seg := k / step
	for i := 1; i < k; i++ {
		v[i] = (i - 1) / seg * seg
	}
	return v
}

// K returns the associativity this vector is for.
func (v Vector) K() int { return len(v) - 1 }

// Insertion returns the insertion position V[k].
func (v Vector) Insertion() int { return v[len(v)-1] }

// Promotion returns the promotion target V[i] for a block referenced at
// position i.
func (v Vector) Promotion(i int) int { return v[i] }

// Validate checks that the vector is well-formed: at least 3 entries
// (2-way minimum) and every entry in 0..k-1.
func (v Vector) Validate() error {
	k := v.K()
	if k < 2 {
		return fmt.Errorf("%w: length %d is too short (need k+1 entries, k >= 2)", ErrBadVector, len(v))
	}
	for i, e := range v {
		if e < 0 || e >= k {
			return fmt.Errorf("%w: entry %d is %d, outside 0..%d", ErrBadVector, i, e, k-1)
		}
	}
	return nil
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Equal reports whether v and w are element-wise identical.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// String renders the vector in the paper's bracketed form,
// e.g. "[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]".
func (v Vector) String() string {
	var sb strings.Builder
	sb.WriteString("[")
	for _, e := range v {
		fmt.Fprintf(&sb, " %d", e)
	}
	sb.WriteString(" ]")
	return sb.String()
}

// Parse parses a vector from a whitespace- or comma-separated list of
// integers, optionally surrounded by brackets, and validates it.
func Parse(s string) (Vector, error) {
	s = strings.NewReplacer("[", " ", "]", " ", ",", " ").Replace(s)
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, fmt.Errorf("%w: empty vector", ErrBadVector)
	}
	v := make(Vector, len(fields))
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("%w: bad entry %q: %v", ErrBadVector, f, err)
		}
		v[i] = n
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// MustParse is Parse that panics on error; for package-level constants.
func MustParse(s string) Vector {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsLRU reports whether v is exactly the classic LRU vector.
func (v Vector) IsLRU() bool {
	for _, e := range v {
		if e != 0 {
			return false
		}
	}
	return true
}

// ReachesMRU implements the degeneracy test of the paper's footnote 1: it
// reports whether, under true-LRU stack semantics, a block inserted at V[k]
// can ever reach the MRU position (position 0) through some sequence of
// re-references and shifts caused by other blocks' movements.
//
// The induced graph on positions 0..k-1 has three kinds of edges:
//
//   - access edges i -> V[i];
//   - shift-down edges j -> j+1, present when some promotion V[i] (i > j,
//     V[i] <= j) or the insertion (V[k] <= j, j < k-1) can push the block at
//     j down one position;
//   - shift-up edges j -> j-1, present when some demotion V[i] with i < j
//     and V[i] >= j can pull the block at j up one position.
//
// A vector failing this test can never promote any block to MRU and is
// excluded from genetic search seeding (it is still a legal vector).
func (v Vector) ReachesMRU() bool {
	k := v.K()
	down := make([]bool, k) // down[j]: edge j -> j+1 exists
	up := make([]bool, k)   // up[j]:   edge j -> j-1 exists
	for i := 0; i < k; i++ {
		t := v[i]
		if t < i { // promotion: blocks in [t, i-1] shift down
			for j := t; j < i; j++ {
				down[j] = true
			}
		} else if t > i { // demotion: blocks in [i+1, t] shift up
			for j := i + 1; j <= t; j++ {
				up[j] = true
			}
		}
	}
	// Insertion pushes blocks in [V[k], k-2] down by one.
	for j := v[k]; j < k-1; j++ {
		down[j] = true
	}
	// BFS from the insertion position to position 0.
	visited := make([]bool, k)
	queue := []int{v[k]}
	visited[v[k]] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p == 0 {
			return true
		}
		next := []int{v[p]}
		if down[p] && p+1 < k {
			next = append(next, p+1)
		}
		if up[p] && p-1 >= 0 {
			next = append(next, p-1)
		}
		for _, n := range next {
			if !visited[n] {
				visited[n] = true
				queue = append(queue, n)
			}
		}
	}
	return false
}
