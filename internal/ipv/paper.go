package ipv

// The vectors published in the paper, reproduced verbatim. All are for
// 16-way associativity (17 entries).

// PaperGIPLR is the best insertion/promotion vector found by the genetic
// algorithm for true-LRU replacement (Section 2.5, Figure 3):
// an incoming block is inserted into position 13, a block referenced in the
// LRU position is moved to position 11, and so on.
var PaperGIPLR = MustParse("[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]")

// PaperGIPLRRefined is PaperGIPLR with its first 12 elements replaced by
// zeros, which the paper notes slightly improves the speedup (Section 2.6,
// 3.1% -> 3.12%).
var PaperGIPLRRefined = MustParse("[ 0 0 0 0 0 0 0 0 0 0 0 0 0 0 1 11 13 ]")

// PaperWIGIPPR is the workload-inclusive IPV learned for single-vector
// GIPPR (Section 5.3).
var PaperWIGIPPR = MustParse("[ 0 0 2 8 4 1 4 1 8 0 14 8 12 13 14 9 5 ]")

// PaperPerlbenchWN1 is the best single workload-neutral vector for
// 400.perlbench (Section 5.3).
var PaperPerlbenchWN1 = MustParse("[ 12 8 14 1 4 4 2 1 8 12 6 4 0 0 10 12 11 ]")

// PaperWI2DGIPPR is the pair of vectors used by workload-inclusive
// 2-DGIPPR (Section 5.3). The paper observes that the pair duels between
// PLRU-side and PMRU-side insertion, like DIP.
var PaperWI2DGIPPR = [2]Vector{
	MustParse("[ 8 0 2 8 12 4 6 3 0 8 10 8 4 12 14 3 15 ]"),
	MustParse("[ 0 0 0 0 0 0 0 0 8 8 8 8 0 0 0 0 0 ]"),
}

// PaperWI4DGIPPR is the quad of vectors used by workload-inclusive
// 4-DGIPPR (Section 5.3): the insertions switch between PLRU, PMRU,
// close-to-PMRU and "middle" insertion.
var PaperWI4DGIPPR = [4]Vector{
	MustParse("[ 14 5 6 1 10 6 8 8 15 8 8 14 12 4 12 9 8 ]"),
	MustParse("[ 4 12 2 8 10 0 6 8 0 8 8 0 2 4 14 11 15 ]"),
	MustParse("[ 0 0 2 1 4 4 6 5 8 8 10 1 12 8 2 1 3 ]"),
	MustParse("[ 11 12 10 0 5 0 10 4 9 8 10 0 4 4 12 0 0 ]"),
}
