package ipv

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsLRU(t *testing.T) {
	v := New(16)
	if len(v) != 17 {
		t.Fatalf("len = %d", len(v))
	}
	if !v.IsLRU() {
		t.Fatal("New(16) is not the LRU vector")
	}
	if v.K() != 16 {
		t.Fatalf("K = %d", v.K())
	}
}

func TestNewPanicsOnTinyK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	New(1)
}

func TestLIP(t *testing.T) {
	v := LIP(8)
	if v.Insertion() != 7 {
		t.Fatalf("LIP insertion = %d", v.Insertion())
	}
	for i := 0; i < 8; i++ {
		if v.Promotion(i) != 0 {
			t.Fatalf("LIP promotion[%d] = %d", i, v.Promotion(i))
		}
	}
}

func TestMidClimb(t *testing.T) {
	v := MidClimb(16)
	if v.Insertion() != 15 {
		t.Fatalf("insertion = %d", v.Insertion())
	}
	if v.Promotion(15) != 8 {
		t.Fatalf("promotion from LRU = %d", v.Promotion(15))
	}
	if v.Promotion(8) != 0 {
		t.Fatalf("promotion from middle = %d", v.Promotion(8))
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiStep(t *testing.T) {
	// step == 1: one segment, classic LRU.
	if v := MultiStep(8, 1); !v.IsLRU() {
		t.Fatalf("MultiStep(8, 1) = %v, not LRU", v)
	}
	// step == k: fully incremental, every hit climbs one position.
	v := MultiStep(8, 8)
	for i := 1; i < 8; i++ {
		if v.Promotion(i) != i-1 {
			t.Fatalf("MultiStep(8, 8) promotion[%d] = %d, want %d", i, v.Promotion(i), i-1)
		}
	}
	// The worked 8-way/4-step example: segments {0,1} {2,3} {4,5} {6,7}.
	if got, want := MultiStep(8, 4).String(), "[ 0 0 0 2 2 4 4 6 0 ]"; got != want {
		t.Fatalf("MultiStep(8, 4) = %s, want %s", got, want)
	}
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		for step := 1; step <= k; step++ {
			if k%step != 0 {
				continue
			}
			v := MultiStep(k, step)
			if err := v.Validate(); err != nil {
				t.Fatalf("MultiStep(%d, %d): %v", k, step, err)
			}
			if v.Insertion() != 0 {
				t.Fatalf("MultiStep(%d, %d) insertion = %d", k, step, v.Insertion())
			}
			if !v.ReachesMRU() {
				t.Fatalf("MultiStep(%d, %d) cannot reach MRU", k, step)
			}
			// A block at the LRU position reaches MRU in exactly step hits —
			// one fewer in the fully incremental step == k case, where the
			// LRU position is already a segment top.
			want := step
			if k == step {
				want = step - 1
			}
			hops, pos := 0, k-1
			for pos > 0 {
				pos = v.Promotion(pos)
				hops++
			}
			if hops != want {
				t.Fatalf("MultiStep(%d, %d): LRU block took %d hops to MRU, want %d", k, step, hops, want)
			}
		}
	}
}

// TestMultiStepMonotone pins the ordering that makes step a fidelity knob:
// coarser stepping never promotes a block to a lower (better) position than
// finer stepping, i.e. V_m(i) <= V_m'(i) whenever m divides m'.
func TestMultiStepMonotone(t *testing.T) {
	for _, k := range []int{4, 8, 16, 32, 64} {
		for m := 1; m <= k; m++ {
			if k%m != 0 {
				continue
			}
			for mp := m; mp <= k; mp += m {
				if k%mp != 0 || mp%m != 0 {
					continue
				}
				lo, hi := MultiStep(k, m), MultiStep(k, mp)
				for i := 0; i < k; i++ {
					if lo.Promotion(i) > hi.Promotion(i) {
						t.Fatalf("k=%d: MultiStep(%d)[%d]=%d > MultiStep(%d)[%d]=%d",
							k, m, i, lo.Promotion(i), mp, i, hi.Promotion(i))
					}
				}
			}
		}
	}
}

func TestMultiStepPanics(t *testing.T) {
	for _, tc := range []struct{ k, step int }{
		{8, 0}, {8, -1}, {8, 3}, {8, 9}, {8, 5}, {16, 6}, {6, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("MultiStep(%d, %d) did not panic", tc.k, tc.step)
				}
			}()
			MultiStep(tc.k, tc.step)
		}()
	}
}

func TestValidate(t *testing.T) {
	if err := (Vector{0, 0, 0}).Validate(); err != nil {
		t.Fatalf("valid 2-way vector rejected: %v", err)
	}
	if err := (Vector{0, 0}).Validate(); err == nil {
		t.Fatal("too-short vector accepted")
	}
	if err := (Vector{0, 2, 0}).Validate(); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	if err := (Vector{0, -1, 0}).Validate(); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := PaperGIPLR
	parsed, err := Parse(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(orig) {
		t.Fatalf("round trip: %v != %v", parsed, orig)
	}
}

func TestParseFormats(t *testing.T) {
	want := Vector{0, 1, 2, 3, 1}
	for _, s := range []string{"0 1 2 3 1", "[0,1,2,3,1]", " [ 0 1 2 3 1 ] ", "0,1, 2 ,3,1"} {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !v.Equal(want) {
			t.Fatalf("Parse(%q) = %v", s, v)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "a b c", "0 1 99", "5 5 5"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) accepted", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	MustParse("not a vector")
}

func TestCloneIndependence(t *testing.T) {
	v := LIP(4)
	c := v.Clone()
	c[0] = 3
	if v[0] == 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	if !LRU(4).Equal(LRU(4)) {
		t.Fatal("equal vectors not Equal")
	}
	if LRU(4).Equal(LIP(4)) {
		t.Fatal("different vectors Equal")
	}
	if LRU(4).Equal(LRU(8)) {
		t.Fatal("different lengths Equal")
	}
}

func TestPaperVectorsValid(t *testing.T) {
	all := []Vector{
		PaperGIPLR, PaperGIPLRRefined, PaperWIGIPPR, PaperPerlbenchWN1,
		PaperWI2DGIPPR[0], PaperWI2DGIPPR[1],
		PaperWI4DGIPPR[0], PaperWI4DGIPPR[1], PaperWI4DGIPPR[2], PaperWI4DGIPPR[3],
	}
	for i, v := range all {
		if err := v.Validate(); err != nil {
			t.Fatalf("paper vector %d invalid: %v", i, err)
		}
		if v.K() != 16 {
			t.Fatalf("paper vector %d has k=%d", i, v.K())
		}
	}
}

func TestPaperGIPLRSpotValues(t *testing.T) {
	// Section 2.5: "An incoming block is inserted into position 13. A block
	// referenced in the LRU position is moved to position 11. A block
	// referenced in position 2 is moved to position 1."
	v := PaperGIPLR
	if v.Insertion() != 13 {
		t.Fatalf("insertion = %d", v.Insertion())
	}
	if v.Promotion(15) != 11 {
		t.Fatalf("promotion from LRU = %d", v.Promotion(15))
	}
	if v.Promotion(2) != 1 {
		t.Fatalf("promotion from 2 = %d", v.Promotion(2))
	}
}

func TestReachesMRU(t *testing.T) {
	if !LRU(8).ReachesMRU() {
		t.Fatal("LRU cannot reach MRU?")
	}
	if !LIP(8).ReachesMRU() {
		t.Fatal("LIP cannot reach MRU?")
	}
	if !MidClimb(16).ReachesMRU() {
		t.Fatal("MidClimb cannot reach MRU?")
	}
	if !PaperGIPLR.ReachesMRU() {
		t.Fatal("paper GIPLR vector degenerate?")
	}
	// All-sevens is NOT degenerate: a block demoted from position 0 to 7
	// shifts the block at position 1 up into MRU.
	allSevens := Vector{7, 7, 7, 7, 7, 7, 7, 7, 7}
	if !allSevens.ReachesMRU() {
		t.Fatal("all-sevens vector should reach MRU via shift-up from 1")
	}
	// Truly degenerate: nothing ever demotes out of position 0, so no
	// shift-up into MRU exists, and no access edge points at 0.
	stuck := Vector{0, 7, 7, 7, 7, 7, 7, 7, 7}
	if stuck.ReachesMRU() {
		t.Fatal("stuck-below-MRU vector reported as reaching MRU")
	}
	// Self-loop at insertion point with no shifts either.
	self := Vector{0, 1, 2, 3, 4, 5, 6, 7, 4}
	// position 4 promotes to itself; no other vector entry moves anything
	// across 4... entries are identity so no shift edges exist at all.
	self[4] = 4
	if self.ReachesMRU() {
		t.Fatal("identity-promotion vector reported as reaching MRU")
	}
}

func TestReachesMRUViaShifts(t *testing.T) {
	// Insertion at 3 promotes only to itself, but promotions from position
	// 5 to 0 shift blocks at 0..4 down, and... shifting down moves away
	// from MRU; reaching MRU via shift-up requires a demotion crossing our
	// position. Construct: V[1] = 6 demotes a block from 1 to 6, shifting
	// blocks in 2..6 up by one. Insert at 4; block can drift 4->3->2->1 via
	// repeated shift-ups, then V[1]=6... we need an access edge to 0:
	// V[2] = 0. Path: insert 4 -(up)-> 3 -(up)-> 2 -(access)-> 0.
	k := 8
	v := make(Vector, k+1)
	for i := range v {
		v[i] = i // identity: no movement by default
	}
	v[k] = 4 // insert at 4
	v[1] = 6 // demotion 1->6 creates shift-up edges for 2..6
	v[2] = 0 // access at 2 reaches MRU
	if !v.ReachesMRU() {
		t.Fatal("shift-up path not found")
	}
	// Remove the access edge: now 2's promotion is identity again and no
	// position reaches 0 (shift-up stops at 2 because up-edges cover 2..6,
	// and positions 1 and 0 are unreachable).
	v[2] = 2
	if v.ReachesMRU() {
		t.Fatal("MRU reported reachable without any edge into 0")
	}
}

func TestTransitionGraphLRU(t *testing.T) {
	g := TransitionGraph(LRU(16))
	// Every access edge points to 0.
	solidTo := map[int]int{}
	for _, e := range g.Solid {
		solidTo[e.From] = e.To
	}
	for i := 0; i < 16; i++ {
		if solidTo[i] != 0 {
			t.Fatalf("LRU solid edge %d -> %d", i, solidTo[i])
		}
	}
	if solidTo[g.InsertionNode()] != 0 {
		t.Fatal("LRU insertion edge does not point to MRU")
	}
	// Every position except the last shifts down; the LRU position exits.
	downs := 0
	evict := false
	for _, e := range g.Dashed {
		if e.To == e.From+1 {
			downs++
		}
		if e.From == 15 && e.To == g.EvictionNode() {
			evict = true
		}
	}
	if downs != 15 {
		t.Fatalf("LRU has %d shift-down edges, want 15", downs)
	}
	if !evict {
		t.Fatal("missing eviction edge")
	}
}

func TestTransitionGraphDOT(t *testing.T) {
	dot := TransitionGraph(PaperGIPLR).DOT("fig3")
	for _, want := range []string{"digraph", "insertion", "eviction", "style=dashed", "fig3"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
}

func TestTransitionGraphText(t *testing.T) {
	txt := TransitionGraph(LRU(4)).Text()
	if !strings.Contains(txt, "insertion") || !strings.Contains(txt, "solid ->") {
		t.Fatalf("Text output unexpected:\n%s", txt)
	}
}

func TestTransitionGraphEdgesWithinRange(t *testing.T) {
	f := func(seed uint64) bool {
		// Pseudo-random vector from the seed.
		k := 8
		v := make(Vector, k+1)
		s := seed
		for i := range v {
			s = s*6364136223846793005 + 1442695040888963407
			v[i] = int(s>>33) % k
			if v[i] < 0 {
				v[i] = -v[i]
			}
		}
		g := TransitionGraph(v)
		for _, e := range g.Solid {
			if e.To < 0 || e.To >= k {
				return false
			}
		}
		for _, e := range g.Dashed {
			if e.To != g.EvictionNode() && (e.To < 0 || e.To >= k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	got := (Vector{0, 1, 2}).String()
	if got != "[ 0 1 2 ]" {
		t.Fatalf("String = %q", got)
	}
}

// Every Parse and Validate failure wraps ErrBadVector, so callers can
// classify with errors.Is (usage exit in the CLIs, 400 in gippr-serve).
func TestBadVectorSentinel(t *testing.T) {
	for _, s := range []string{"", "[ ]", "[ 1 2 junk ]", "[ 0 1 99 0 16 ]"} {
		if _, err := Parse(s); !errors.Is(err, ErrBadVector) {
			t.Errorf("Parse(%q): err = %v, want ErrBadVector", s, err)
		}
	}
	if err := (Vector{0, 9, 1}).Validate(); !errors.Is(err, ErrBadVector) {
		t.Error("Validate of out-of-range vector must wrap ErrBadVector")
	}
	if _, err := Parse(LRU(16).String()); err != nil {
		t.Errorf("round-trip parse failed: %v", err)
	}
}
