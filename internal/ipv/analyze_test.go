package ipv

import (
	"strings"
	"testing"
)

func TestAnalyzeLRU(t *testing.T) {
	a := Analyze(LRU(16))
	if a.Insertion != InsertPMRU || a.InsertionPos != 0 {
		t.Fatalf("LRU insertion class %v@%d", a.Insertion, a.InsertionPos)
	}
	if a.Demotions != 0 {
		t.Fatalf("LRU has %d demotions", a.Demotions)
	}
	if !a.LRULike {
		t.Fatal("LRU not LRU-like")
	}
	if a.Pessimistic {
		t.Fatal("LRU flagged pessimistic")
	}
	if a.MeanTarget != 0 {
		t.Fatalf("LRU mean target %v", a.MeanTarget)
	}
	// Position 0 holds (V[0]==0), the rest promote.
	if a.Promotions != 15 || a.Identity != 1 {
		t.Fatalf("LRU promotions/identity %d/%d", a.Promotions, a.Identity)
	}
}

func TestAnalyzeLIP(t *testing.T) {
	a := Analyze(LIP(16))
	if a.Insertion != InsertPLRU || a.InsertionPos != 15 {
		t.Fatalf("LIP insertion %v@%d", a.Insertion, a.InsertionPos)
	}
	if !a.ReachesMRU {
		t.Fatal("LIP degenerate?")
	}
}

func TestAnalyzeMidClimb(t *testing.T) {
	a := Analyze(MidClimb(16))
	if a.Insertion != InsertPLRU {
		t.Fatalf("MidClimb insertion %v", a.Insertion)
	}
}

func TestAnalyzePaperPessimisticVector(t *testing.T) {
	// The paper reads its first WI-2-DGIPPR vector as "a very pessimistic
	// promotion policy, moving most referenced blocks closer to the PLRU
	// position".
	a := Analyze(PaperWI2DGIPPR[0])
	if !a.Pessimistic {
		t.Fatalf("paper's pessimistic vector not flagged: %+v", a)
	}
	if a.Insertion != InsertPLRU {
		t.Fatalf("first WI-2-DGIPPR vector inserts at %d (%v), paper says PLRU",
			a.InsertionPos, a.Insertion)
	}
	// And the second is "very close to PLRU by itself" with PMRU
	// insertion.
	b := Analyze(PaperWI2DGIPPR[1])
	if b.Insertion != InsertPMRU || !b.LRULike {
		t.Fatalf("second WI-2-DGIPPR vector: %+v", b)
	}
}

func TestClassifySetCoversClasses(t *testing.T) {
	// Section 5.3.2: "The WI-4-DGIPPR IPVs switch between PLRU, PMRU,
	// close to PMRU, and middle insertion" — the quad's insertion classes
	// span more than one class.
	classes := ClassifySet([]Vector{
		PaperWI4DGIPPR[0], PaperWI4DGIPPR[1], PaperWI4DGIPPR[2], PaperWI4DGIPPR[3],
	})
	distinct := map[InsertionClass]bool{}
	for _, c := range classes {
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("4-vector set covers only %v", classes)
	}
}

func TestAnalysisString(t *testing.T) {
	s := Analyze(PaperGIPLR).String()
	for _, want := range []string{"insert@13", "PLRU", "promotions"} {
		if !strings.Contains(s, want) {
			t.Fatalf("analysis string %q missing %q", s, want)
		}
	}
	// Degenerate vectors are labelled.
	deg := Vector{0, 7, 7, 7, 7, 7, 7, 7, 7}
	if !strings.Contains(Analyze(deg).String(), "DEGENERATE") {
		t.Fatal("degenerate vector not labelled")
	}
}

func TestAnalyzePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	Analyze(Vector{0, 99, 0})
}

func TestInsertionClassBoundaries(t *testing.T) {
	k := 16
	cases := map[int]InsertionClass{
		0: InsertPMRU, 3: InsertPMRU,
		4: InsertNearPMRU, 7: InsertNearPMRU,
		8: InsertMiddle, 11: InsertMiddle,
		12: InsertPLRU, 15: InsertPLRU,
	}
	for pos, want := range cases {
		v := New(k)
		v[k] = pos
		if got := Analyze(v).Insertion; got != want {
			t.Fatalf("insert@%d classified %v, want %v", pos, got, want)
		}
	}
}
