package ipv

import (
	"strings"
	"testing"
)

// FuzzParseVector checks the vector parser — the boundary every external
// input crosses (command-line -ipv flags, checkpoint payloads) — never
// panics on arbitrary text, and that anything it accepts passes Validate
// and survives a String round trip.
func FuzzParseVector(f *testing.F) {
	f.Add("[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]")
	f.Add("0 0 0")
	f.Add("")
	f.Add("[,,]")
	f.Add("9999999999999999999999")
	f.Add("-1 0 0")
	f.Add("0,1,\t2 ,3,1")
	f.Add(LRU(16).String())      // checkpoint payloads store String() forms
	f.Add(MidClimb(16).String())
	f.Add("1 1 1")               // entries must stay below k
	f.Add("0 0 1e2")
	f.Add(strings.Repeat("0 ", 1024))
	f.Fuzz(func(t *testing.T, s string) {
		v, err := Parse(s)
		if err != nil {
			return
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid vector %v: %v", v, err)
		}
		back, err := Parse(v.String())
		if err != nil || !back.Equal(v) {
			t.Fatalf("round trip failed for %v: %v", v, err)
		}
	})
}

// FuzzAnalyze checks the analyzer and degeneracy test against arbitrary
// valid vectors built from fuzzed bytes.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{3, 2, 1, 0, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 3 || len(raw) > 65 {
			return
		}
		k := len(raw) - 1
		v := make(Vector, len(raw))
		for i, b := range raw {
			v[i] = int(b) % k
		}
		a := Analyze(v)
		if a.Promotions+a.Demotions+a.Identity != k {
			t.Fatalf("entry classification does not sum to k: %+v", a)
		}
		if a.MeanTarget < 0 || a.MeanTarget > float64(k-1) {
			t.Fatalf("mean target out of range: %v", a.MeanTarget)
		}
		_ = v.ReachesMRU()
		_ = TransitionGraph(v)
	})
}
