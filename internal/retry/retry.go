// Package retry is the cross-node robustness primitive underneath the
// cluster layer: context-aware exponential backoff with full jitter and
// per-attempt deadlines. Every hop a coordinator makes to a shard worker
// goes through a Policy, so transient failures (a dropped connection, a
// 5xx, a slow peer) are absorbed by bounded retries instead of surfacing
// as job failures, and a hung peer is cut off by the attempt deadline
// instead of stalling the whole grid.
//
// The backoff follows the "full jitter" scheme: the delay before attempt
// i+1 is drawn uniformly from [0, min(MaxDelay, BaseDelay<<i)], which
// decorrelates a thundering herd of retriers without giving up the
// exponential ceiling. The draw is injectable (Policy.Jitter) so tests are
// deterministic.
//
// Cancellation beats retrying everywhere: a Done parent context stops the
// loop immediately — mid-backoff or between attempts — and an error marked
// Permanent is returned at once, because retrying a 400 can only waste the
// budget a real outage needs.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Default backoff shape, used when a Policy leaves the fields zero.
const (
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 2 * time.Second
)

// Policy describes one retry discipline. The zero value is usable: a
// single attempt with no per-attempt deadline (Do degenerates to calling
// op once).
type Policy struct {
	// MaxAttempts is the total number of tries, first attempt included.
	// Values below 1 mean 1 (no retrying).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; the ceiling
	// doubles each further attempt. 0 means DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. 0 means DefaultMaxDelay.
	MaxDelay time.Duration
	// AttemptTimeout, when positive, bounds each individual attempt with
	// its own deadline (derived from Do's context), so one hung call cannot
	// consume the caller's whole budget.
	AttemptTimeout time.Duration
	// Jitter draws the actual sleep from [0, ceiling]. Nil uses a uniform
	// draw from the shared math/rand/v2 generator; tests substitute a
	// deterministic function.
	Jitter func(ceiling time.Duration) time.Duration
	// OnRetry, when non-nil, observes every scheduled retry: the attempt
	// number that just failed (1-based), its error, and the chosen delay.
	// The cluster layer counts retries here.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do returns it immediately instead of retrying —
// the marker for failures where another attempt cannot change the outcome
// (validation rejections, incompatible peers). A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Do runs op until it succeeds, the attempts are exhausted, ctx is done,
// or op returns a Permanent error. Each attempt receives a context derived
// from ctx (with AttemptTimeout applied when set); backoff sleeps are
// interruptible by ctx. The returned error is nil on success, the
// unwrapped permanent error, ctx's error when cancellation preempted the
// first attempt, or the last attempt's error annotated with the attempt
// count when the budget ran out.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = DefaultMaxDelay
	}
	jitter := p.Jitter
	if jitter == nil {
		jitter = fullJitter
	}

	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				return cerr
			}
			return err
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = op(actx)
		cancel()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= attempts {
			if attempts == 1 {
				return err
			}
			return fmt.Errorf("retry: %d attempts: %w", attempts, err)
		}
		if ctx.Err() != nil {
			// The parent context ended (possibly the very thing that failed
			// the attempt); retrying is pointless and sleeping is wrong.
			return err
		}
		ceiling := backoffCeiling(base, maxd, attempt-1)
		delay := jitter(ceiling)
		if delay < 0 {
			delay = 0
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return err
			}
		}
	}
}

// backoffCeiling is min(maxd, base<<shift) with overflow protection.
func backoffCeiling(base, maxd time.Duration, shift int) time.Duration {
	if shift > 32 {
		return maxd
	}
	c := base << shift
	if c <= 0 || c > maxd {
		return maxd
	}
	return c
}

// fullJitter draws uniformly from [0, ceiling].
func fullJitter(ceiling time.Duration) time.Duration {
	if ceiling <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(ceiling) + 1))
}
