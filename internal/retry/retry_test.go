package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// noJitter makes backoff deterministic and instant for tests that count
// attempts rather than measure time.
func noJitter(time.Duration) time.Duration { return 0 }

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	var retries []int
	p := Policy{
		MaxAttempts: 5,
		Jitter:      noJitter,
		OnRetry:     func(attempt int, _ error, _ time.Duration) { retries = append(retries, attempt) },
	}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("OnRetry attempts = %v, want [1 2]", retries)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	p := Policy{MaxAttempts: 3, Jitter: noJitter}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return boom
	})
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	if !errors.Is(err, boom) {
		t.Errorf("exhausted error %v does not wrap the last attempt's error", err)
	}
}

func TestDoPermanentShortCircuits(t *testing.T) {
	calls := 0
	bad := errors.New("bad request")
	p := Policy{MaxAttempts: 5, Jitter: noJitter}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("peer said: %w", bad))
	})
	if calls != 1 {
		t.Errorf("op ran %d times, want 1 (permanent must not retry)", calls)
	}
	if !errors.Is(err, bad) {
		t.Errorf("permanent error %v lost its cause", err)
	}
	if IsPermanent(err) {
		t.Error("Do should unwrap the Permanent marker before returning")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) must stay nil")
	}
	if !IsPermanent(Permanent(bad)) {
		t.Error("IsPermanent(Permanent(err)) = false")
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{MaxAttempts: 100, BaseDelay: time.Hour, MaxDelay: time.Hour}
	boom := errors.New("boom")
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return boom
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; backoff sleep must be interruptible", elapsed)
	}
	if calls != 1 {
		t.Errorf("op ran %d times, want 1", calls)
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want the last attempt error", err)
	}

	// A context that is already done never runs op at all.
	calls = 0
	err = p.Do(ctx, func(context.Context) error { calls++; return nil })
	if calls != 0 {
		t.Errorf("op ran %d times under a dead context, want 0", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond, Jitter: noJitter}
	attempts := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		attempts++
		<-ctx.Done() // a hung peer: only the attempt deadline frees us
		return ctx.Err()
	})
	if attempts != 2 {
		t.Errorf("op ran %d times, want 2 (deadline per attempt, then retry)", attempts)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestBackoffCeiling(t *testing.T) {
	cases := []struct {
		shift int
		want  time.Duration
	}{
		{0, 50 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{10, 2 * time.Second}, // clamped
		{63, 2 * time.Second}, // overflow-safe
	}
	for _, c := range cases {
		if got := backoffCeiling(50*time.Millisecond, 2*time.Second, c.shift); got != c.want {
			t.Errorf("backoffCeiling(shift=%d) = %v, want %v", c.shift, got, c.want)
		}
	}
	for i := 0; i < 100; i++ {
		if d := fullJitter(time.Second); d < 0 || d > time.Second {
			t.Fatalf("fullJitter out of range: %v", d)
		}
	}
	if fullJitter(0) != 0 {
		t.Error("fullJitter(0) != 0")
	}
}

func TestZeroPolicyRunsOnce(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Policy{}.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if calls != 1 || !errors.Is(err, boom) {
		t.Errorf("zero policy: calls=%d err=%v, want one attempt returning the raw error", calls, err)
	}
}
