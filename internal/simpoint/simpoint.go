// Package simpoint implements a miniature SimPoint (Sherwood et al.,
// ASPLOS 2002; Perelman et al., SIGMETRICS 2003), the phase-selection
// methodology the paper uses to pick representative simulation intervals
// ("we use SimPoint to identify up to 6 segments of one billion
// instructions each...  the results reported per benchmark are the weighted
// average of the results for the individual simpoints", Section 4.6).
//
// The original clusters basic-block vectors; a trace-driven reproduction
// has no basic blocks, so intervals are summarized by the closest available
// analogue: a fixed-width signature of which address regions the interval
// touches, L1-filtered intensity, and write fraction. Intervals are
// clustered with k-means (deterministic seeding), and each cluster's
// medoid interval becomes a simpoint whose weight is the fraction of
// intervals in its cluster — exactly how the paper's per-benchmark weighted
// averages are formed.
package simpoint

import (
	"fmt"
	"math"

	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// signatureDims is the dimensionality of an interval's feature vector: a
// 62-bucket address-region histogram plus intensity and write-rate
// features.
const signatureDims = 64

// Interval is one fixed-length slice of a trace with its feature vector.
type Interval struct {
	Index   int // position in the trace, in intervals
	Records int
	Vector  [signatureDims]float64
}

// Extract splits a record stream into intervals of intervalLen references
// and computes each interval's normalized feature vector. A trailing
// partial interval shorter than half the length is dropped.
func Extract(recs []trace.Record, intervalLen int) []Interval {
	if intervalLen < 1 {
		panic("simpoint: interval length must be positive")
	}
	var out []Interval
	for start := 0; start < len(recs); start += intervalLen {
		end := start + intervalLen
		if end > len(recs) {
			if len(recs)-start < intervalLen/2 {
				break
			}
			end = len(recs)
		}
		iv := Interval{Index: len(out), Records: end - start}
		var writes, instrs uint64
		for _, r := range recs[start:end] {
			// Region histogram: hash the 1 MB-region id into 62 buckets.
			region := r.Addr >> 20
			h := xrand.Mix(region, 0x51b9) % 62
			iv.Vector[h]++
			if r.Write {
				writes++
			}
			instrs += uint64(r.Gap)
		}
		n := float64(iv.Records)
		for d := 0; d < 62; d++ {
			iv.Vector[d] /= n
		}
		iv.Vector[62] = float64(writes) / n
		if instrs > 0 {
			iv.Vector[63] = n / float64(instrs) // memory intensity
		}
		out = append(out, iv)
	}
	return out
}

// Point is one chosen simpoint: a representative interval and the weight
// of the phase it represents.
type Point struct {
	Interval Interval
	Weight   float64
	Cluster  int
}

// Pick clusters the intervals into at most k phases with k-means and
// returns one weighted representative per non-empty cluster, ordered by
// descending weight. Deterministic for a given seed.
func Pick(intervals []Interval, k int, seed uint64) []Point {
	if k < 1 {
		panic("simpoint: k must be positive")
	}
	if len(intervals) == 0 {
		return nil
	}
	if k > len(intervals) {
		k = len(intervals)
	}
	rng := xrand.New(seed)

	// k-means++ style seeding: first centroid random, then proportional
	// to squared distance.
	centroids := make([][signatureDims]float64, 0, k)
	centroids = append(centroids, intervals[rng.Intn(len(intervals))].Vector)
	for len(centroids) < k {
		dists := make([]float64, len(intervals))
		total := 0.0
		for i, iv := range intervals {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := sqDist(iv.Vector, c); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			break // all points coincide with centroids
		}
		r := rng.Float64() * total
		pick := 0
		for i, d := range dists {
			r -= d
			if r <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, intervals[pick].Vector)
	}

	assign := make([]int, len(intervals))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, iv := range intervals {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(iv.Vector, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids.
		var sums = make([][signatureDims]float64, len(centroids))
		counts := make([]int, len(centroids))
		for i, iv := range intervals {
			c := assign[i]
			counts[c]++
			for d := range iv.Vector {
				sums[c][d] += iv.Vector[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}

	// Medoid of each non-empty cluster + weight.
	var points []Point
	for c := range centroids {
		bestIdx, bestD, n := -1, math.Inf(1), 0
		for i, iv := range intervals {
			if assign[i] != c {
				continue
			}
			n++
			if d := sqDist(iv.Vector, centroids[c]); d < bestD {
				bestIdx, bestD = i, d
			}
		}
		if bestIdx < 0 {
			continue
		}
		points = append(points, Point{
			Interval: intervals[bestIdx],
			Weight:   float64(n) / float64(len(intervals)),
			Cluster:  c,
		})
	}
	// Descending weight, stable by interval index.
	for i := 1; i < len(points); i++ {
		for j := i; j > 0 && (points[j].Weight > points[j-1].Weight ||
			(points[j].Weight == points[j-1].Weight && points[j].Interval.Index < points[j-1].Interval.Index)); j-- {
			points[j], points[j-1] = points[j-1], points[j]
		}
	}
	return points
}

func sqDist(a, b [signatureDims]float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Slice returns the trace records of a chosen simpoint given the original
// stream and the interval length used for Extract.
func Slice(recs []trace.Record, p Point, intervalLen int) []trace.Record {
	start := p.Interval.Index * intervalLen
	end := start + p.Interval.Records
	if start > len(recs) {
		start = len(recs)
	}
	if end > len(recs) {
		end = len(recs)
	}
	return recs[start:end]
}

// String renders a point.
func (p Point) String() string {
	return fmt.Sprintf("interval %d (weight %.2f, cluster %d)", p.Interval.Index, p.Weight, p.Cluster)
}
