package simpoint

import (
	"math"
	"testing"

	"gippr/internal/trace"
	"gippr/internal/workload"
)

// twoPhaseTrace builds a stream with two obviously different phases:
// a small-loop phase and a streaming phase, alternating.
func twoPhaseTrace(n, period int) []trace.Record {
	recs := make([]trace.Record, n)
	next := uint64(1 << 30)
	for i := range recs {
		if (i/period)%2 == 0 {
			recs[i] = trace.Record{Gap: 2, Addr: uint64(i%64) * 64}
		} else {
			recs[i] = trace.Record{Gap: 8, Addr: next * 64, Write: true}
			next++
		}
	}
	return recs
}

func TestExtractIntervalCount(t *testing.T) {
	recs := twoPhaseTrace(10_000, 1000)
	ivs := Extract(recs, 1000)
	if len(ivs) != 10 {
		t.Fatalf("%d intervals", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Index != i || iv.Records != 1000 {
			t.Fatalf("interval %d malformed: %+v", i, iv)
		}
	}
}

func TestExtractDropsTinyTail(t *testing.T) {
	recs := twoPhaseTrace(10_300, 1000)
	ivs := Extract(recs, 1000)
	if len(ivs) != 10 {
		t.Fatalf("tiny tail not dropped: %d intervals", len(ivs))
	}
	// A tail of at least half an interval is kept.
	ivs = Extract(twoPhaseTrace(10_600, 1000), 1000)
	if len(ivs) != 11 {
		t.Fatalf("substantial tail dropped: %d intervals", len(ivs))
	}
}

func TestExtractPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	Extract(nil, 0)
}

func TestFeatureVectorsSeparatePhases(t *testing.T) {
	recs := twoPhaseTrace(20_000, 1000)
	ivs := Extract(recs, 1000)
	// Same-phase intervals must be much closer than cross-phase ones.
	same := sqDist(ivs[0].Vector, ivs[2].Vector)
	cross := sqDist(ivs[0].Vector, ivs[1].Vector)
	if same*10 > cross {
		t.Fatalf("phases not separable: same %g cross %g", same, cross)
	}
}

func TestPickFindsTwoPhases(t *testing.T) {
	recs := twoPhaseTrace(40_000, 1000)
	points := Pick(Extract(recs, 1000), 2, 7)
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	total := 0.0
	for _, p := range points {
		total += p.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum to %v", total)
	}
	// The two phases alternate equally: both weights near 0.5 and the two
	// representatives come from different phases (one even, one odd
	// interval index).
	if math.Abs(points[0].Weight-0.5) > 0.11 {
		t.Fatalf("weights %v and %v, expected ~0.5 each", points[0].Weight, points[1].Weight)
	}
	if points[0].Interval.Index%2 == points[1].Interval.Index%2 {
		t.Fatalf("both representatives from the same phase: %v, %v", points[0], points[1])
	}
}

func TestPickDeterministic(t *testing.T) {
	ivs := Extract(twoPhaseTrace(20_000, 1000), 1000)
	a := Pick(ivs, 3, 5)
	b := Pick(ivs, 3, 5)
	if len(a) != len(b) {
		t.Fatal("nondeterministic point count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic picks")
		}
	}
}

func TestPickClampsK(t *testing.T) {
	ivs := Extract(twoPhaseTrace(3000, 1000), 1000)
	points := Pick(ivs, 10, 1)
	if len(points) > 3 {
		t.Fatalf("more points than intervals: %d", len(points))
	}
}

func TestPickEmptyAndPanics(t *testing.T) {
	if Pick(nil, 3, 1) != nil {
		t.Fatal("points from no intervals")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	Pick([]Interval{{}}, 0, 1)
}

func TestSliceRecoversInterval(t *testing.T) {
	recs := twoPhaseTrace(10_000, 1000)
	ivs := Extract(recs, 1000)
	points := Pick(ivs, 2, 3)
	for _, p := range points {
		s := Slice(recs, p, 1000)
		if len(s) != p.Interval.Records {
			t.Fatalf("slice of %d records, want %d", len(s), p.Interval.Records)
		}
		if &s[0] != &recs[p.Interval.Index*1000] {
			t.Fatal("slice does not alias the original stream")
		}
	}
}

func TestOnRealWorkload(t *testing.T) {
	// hmmer_like alternates two loops every 250K accesses; with 50K-record
	// intervals over 500K records, SimPoint must find two clear phases.
	w, err := workload.ByName("hmmer_like")
	if err != nil {
		t.Fatal(err)
	}
	recs := w.Phases[0].Records(42, 500_000)
	points := Pick(Extract(recs, 50_000), 2, 9)
	if len(points) != 2 {
		t.Fatalf("%d phases found", len(points))
	}
	if points[0].Weight < 0.3 || points[0].Weight > 0.7 {
		t.Fatalf("phase weights %v / %v, expected a balanced split", points[0].Weight, points[1].Weight)
	}
}

func TestPointString(t *testing.T) {
	p := Point{Interval: Interval{Index: 3}, Weight: 0.25, Cluster: 1}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}
