package policy

import (
	"fmt"

	"gippr/internal/cache"
	"gippr/internal/recency"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// pippPromoteProb is PIPP's single-step promotion probability (Xie & Loh
// use 3/4 for their baseline configuration).
const pippPromoteProb = 0.75

// PIPP is promotion/insertion pseudo-partitioning (Xie & Loh, ISCA 2009),
// the shared-cache policy the paper cites as the generalization of
// insertion/promotion control to multi-core partitioning (Section 6.2).
// Each core receives a partition allocation; a core's incoming blocks are
// inserted at the stack position equal to its allocation (counted from the
// LRU end), and hits promote a block by a single position with probability
// 3/4 rather than jumping to MRU. Cores that under-use their allocation
// naturally cede space because their blocks drift down — hence "pseudo"
// partitioning.
//
// This implementation uses fixed allocations (equal by default) rather than
// the original's UCP-style utility monitors; the monitors choose the
// allocations but do not change the insertion/promotion mechanism under
// study. Single-core traces (Core always 0) degrade to LIP with
// stepwise promotion.
type PIPP struct {
	nop
	stacks []*recency.Stack
	alloc  []int // alloc[core] = partition size in ways
	ways   int
	rng    *xrand.RNG
}

// NewPIPP returns a PIPP policy with explicit per-core allocations, which
// must be positive and sum to at most the associativity.
func NewPIPP(sets, ways int, alloc []int) *PIPP {
	validateGeometry(sets, ways)
	if len(alloc) == 0 {
		panic("policy: PIPP needs at least one core allocation")
	}
	total := 0
	for c, a := range alloc {
		if a < 1 || a > ways {
			panic(fmt.Sprintf("policy: PIPP allocation %d for core %d out of range", a, c))
		}
		total += a
	}
	if total > ways {
		panic(fmt.Sprintf("policy: PIPP allocations sum to %d > %d ways", total, ways))
	}
	p := &PIPP{
		stacks: make([]*recency.Stack, sets),
		alloc:  append([]int(nil), alloc...),
		ways:   ways,
		rng:    xrand.New(0x919),
	}
	for i := range p.stacks {
		p.stacks[i] = recency.New(ways)
	}
	return p
}

// NewPIPPEqual returns PIPP with the associativity split equally among
// cores (remainder to the lower-numbered cores).
func NewPIPPEqual(sets, ways, cores int) *PIPP {
	if cores < 1 || cores > ways {
		panic("policy: PIPP core count out of range")
	}
	alloc := make([]int, cores)
	for i := range alloc {
		alloc[i] = ways / cores
		if i < ways%cores {
			alloc[i]++
		}
	}
	return NewPIPP(sets, ways, alloc)
}

// Name implements cache.Policy.
func (p *PIPP) Name() string { return fmt.Sprintf("PIPP%v", p.alloc) }

// Allocations returns a copy of the per-core partition sizes.
func (p *PIPP) Allocations() []int { return append([]int(nil), p.alloc...) }

// OnHit implements cache.Policy: promote by one position with probability
// 3/4 (never past MRU).
func (p *PIPP) OnHit(set uint32, way int, _ trace.Record) {
	st := p.stacks[set]
	pos := st.Position(way)
	if pos > 0 && p.rng.Bool(pippPromoteProb) {
		st.MoveTo(way, pos-1)
	}
}

// Victim implements cache.Policy: the LRU block.
func (p *PIPP) Victim(set uint32, _ trace.Record) int { return p.stacks[set].Victim() }

// OnFill implements cache.Policy: insert at the requesting core's
// allocation position, counted from the LRU end. Unknown cores (beyond the
// allocation table) insert at LRU.
func (p *PIPP) OnFill(set uint32, way int, r trace.Record) {
	a := 1
	if int(r.Core) < len(p.alloc) {
		a = p.alloc[r.Core]
	}
	p.stacks[set].MoveTo(way, p.ways-a)
}

// OverheadBits implements Overheader: the LRU stack plus the allocation
// registers.
func (p *PIPP) OverheadBits() (float64, int) {
	return float64(p.ways * log2ceil(p.ways)), len(p.alloc) * log2ceil(p.ways+1)
}

var (
	_ cache.Policy = (*PIPP)(nil)
	_ Overheader   = (*PIPP)(nil)
)
