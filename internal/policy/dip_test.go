package policy

import (
	"testing"

	"gippr/internal/cache"
)

func TestBIPRetainsFractionOnThrash(t *testing.T) {
	cfg := testConfig()
	stream := cyclic(384, 60000)
	bip := run(cfg, NewBIP(cfg.Sets(), cfg.Ways), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	if float64(bip.Misses) > 0.8*float64(lru.Misses) {
		t.Fatalf("BIP misses %d vs LRU %d: expected thrash protection", bip.Misses, lru.Misses)
	}
}

func TestBIPNearLRUOnFriendlyWorkload(t *testing.T) {
	// A working set that fits: both hit almost always once warm.
	cfg := testConfig()
	stream := cyclic(128, 60000)
	bip := run(cfg, NewBIP(cfg.Sets(), cfg.Ways), stream)
	if bip.HitRate() < 0.95 {
		t.Fatalf("BIP hit rate %.3f on a fitting loop", bip.HitRate())
	}
}

func TestDIPAdaptsBothWays(t *testing.T) {
	cfg := cache.L3Config
	// Thrash: DIP must track BIP.
	thrash := cyclic(90<<10, 500_000)
	dip := run(cfg, NewDIP(cfg.Sets(), cfg.Ways), thrash)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), thrash)
	bip := run(cfg, NewBIP(cfg.Sets(), cfg.Ways), thrash)
	if dip.Misses >= lru.Misses {
		t.Fatalf("DIP did not beat LRU on thrash (%d vs %d)", dip.Misses, lru.Misses)
	}
	if float64(dip.Misses) > 1.3*float64(bip.Misses) {
		t.Fatalf("DIP misses %d too far above BIP %d on thrash", dip.Misses, bip.Misses)
	}

	// Quick-reuse scan: DIP must track LRU, where BIP loses.
	scan := scanWithQuickReuse(500_000, 16<<10)
	dip2 := run(cfg, NewDIP(cfg.Sets(), cfg.Ways), scan)
	lru2 := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), scan)
	bip2 := run(cfg, NewBIP(cfg.Sets(), cfg.Ways), scan)
	if bip2.Misses <= lru2.Misses {
		t.Fatalf("test premise broken: BIP (%d) should lose to LRU (%d) on quick reuse", bip2.Misses, lru2.Misses)
	}
	if float64(dip2.Misses) > 1.15*float64(lru2.Misses) {
		t.Fatalf("DIP misses %d too far above LRU %d on quick reuse", dip2.Misses, lru2.Misses)
	}
}

func TestDIPOverheadIncludesPSEL(t *testing.T) {
	p := NewDIP(4096, 16)
	perSet, global := p.OverheadBits()
	if perSet != 64 || global != 10 {
		t.Fatalf("DIP overhead %v/%v", perSet, global)
	}
}

func TestPolicyNames(t *testing.T) {
	if NewBIP(16, 4).Name() != "BIP" || NewDIP(16, 4).Name() != "DIP" {
		t.Fatal("names")
	}
}
