package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/trace"
)

func TestUMONCountsHitPositions(t *testing.T) {
	u := newUMON(4)
	// Access pattern in one set: a b a -> a hits at position 1.
	u.access(0, 100)
	u.access(0, 101)
	u.access(0, 100)
	if u.hits[1] != 1 {
		t.Fatalf("hits %v", u.hits)
	}
	if u.misses != 2 {
		t.Fatalf("misses %d", u.misses)
	}
	// Immediate re-access hits at position 0.
	u.access(0, 100)
	if u.hits[0] != 1 {
		t.Fatalf("hits %v", u.hits)
	}
}

func TestUMONATDBoundedByWays(t *testing.T) {
	u := newUMON(4)
	for b := uint64(0); b < 100; b++ {
		u.access(0, b)
	}
	if len(u.tags[0]) > 4 {
		t.Fatalf("ATD grew to %d entries", len(u.tags[0]))
	}
}

func TestUMONDecay(t *testing.T) {
	u := newUMON(4)
	u.hits[2] = 9
	u.misses = 5
	u.decay()
	if u.hits[2] != 4 || u.misses != 2 {
		t.Fatalf("decay gave hits=%d misses=%d", u.hits[2], u.misses)
	}
}

func TestUCPAllocateGreedy(t *testing.T) {
	// Core 0 has utility concentrated at low positions (small working
	// set); core 1 keeps gaining through deep positions. With 8 ways the
	// greedy allocation must give core 1 the larger share.
	a, b := newUMON(8), newUMON(8)
	a.hits = []uint64{100, 50, 0, 0, 0, 0, 0, 0}
	b.hits = []uint64{100, 90, 80, 70, 60, 50, 40, 30}
	alloc := ucpAllocate([]*umon{a, b}, 8)
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("allocation %v does not sum to ways", alloc)
	}
	if alloc[1] <= alloc[0] {
		t.Fatalf("high-utility core got %v", alloc)
	}
	if alloc[0] < 1 {
		t.Fatal("every core must keep at least one way")
	}
}

func TestUCPAllocateEqualUtility(t *testing.T) {
	a, b := newUMON(8), newUMON(8)
	for i := range a.hits {
		a.hits[i], b.hits[i] = 10, 10
	}
	alloc := ucpAllocate([]*umon{a, b}, 8)
	if alloc[0]+alloc[1] != 8 || alloc[0] < 3 || alloc[1] < 3 {
		t.Fatalf("equal utility split %v", alloc)
	}
}

func TestPIPPDynAdaptsAllocations(t *testing.T) {
	// Core 0 streams (no reuse); core 1 loops over a reusable set. After
	// enough epochs the monitors must shift ways to core 1.
	cfg := cache.Config{Name: "u", SizeBytes: 64 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 1}
	p := NewPIPPDyn(cfg.Sets(), cfg.Ways, 2)
	c := cache.New(cfg, p)
	next := uint64(1 << 20)
	hot := 0
	for i := 0; i < 3*umonEpochLength; i++ {
		if i%2 == 0 {
			c.Access(trace.Record{Gap: 1, Addr: next * 64, Core: 0})
			next++
		} else {
			c.Access(trace.Record{Gap: 1, Addr: uint64(hot%600) * 64, Core: 1})
			hot++
		}
	}
	alloc := p.Allocations()
	if alloc[1] <= alloc[0] {
		t.Fatalf("allocations %v: the reusing core did not win ways", alloc)
	}
}

func TestPIPPDynBeatsLRUWithStreamingCoRunner(t *testing.T) {
	cfg := testConfig()
	recs := make([]trace.Record, 150_000)
	next := uint64(1 << 20)
	hot := 0
	for i := range recs {
		if i%2 == 0 {
			recs[i] = trace.Record{Gap: 1, Addr: next * 64, Core: 0}
			next++
		} else {
			recs[i] = trace.Record{Gap: 1, Addr: uint64(hot%200) * 64, Core: 1}
			hot++
		}
	}
	lru := runRecs(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), recs)
	dyn := runRecs(cfg, NewPIPPDyn(cfg.Sets(), cfg.Ways, 2), recs)
	if dyn.Misses >= lru.Misses {
		t.Fatalf("PIPP-dyn misses %d not below LRU %d", dyn.Misses, lru.Misses)
	}
}

func TestPIPPDynConstructorValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewPIPPDyn(16, 16, 0) },
		func() { NewPIPPDyn(16, 16, 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestPIPPDynOverheadCountsATD(t *testing.T) {
	p := NewPIPPDyn(4096, 16, 4)
	_, global := p.OverheadBits()
	if global < 4*64*16*40 { // 4 cores x 64 sampled sets x 16 ways x ~tag
		t.Fatalf("ATD storage undercounted: %d", global)
	}
	if p.Name() != "PIPP-dyn" {
		t.Fatal("name")
	}
}
