package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/trace"
)

func TestRRIPVictimAging(t *testing.T) {
	st := newRRIPState(1, 4)
	rr := st.set(0)
	// All empty ways start at max: the first way is the victim.
	if v := st.victim(0); v != 0 {
		t.Fatalf("initial victim %d", v)
	}
	// Give everyone low RRPVs; victim search must age until one saturates.
	rr[0], rr[1], rr[2], rr[3] = 0, 1, 2, 1
	if v := st.victim(0); v != 2 {
		t.Fatalf("victim %d, want 2 (first to reach max)", v)
	}
	// Aging must have bumped everyone by the same amount (one round).
	if rr[0] != 1 || rr[1] != 2 || rr[3] != 2 {
		t.Fatalf("aging wrong: %v", rr)
	}
}

func TestRRIPVictimLeftmostTieBreak(t *testing.T) {
	st := newRRIPState(1, 4)
	rr := st.set(0)
	rr[0], rr[1], rr[2], rr[3] = 3, 3, 3, 3
	if v := st.victim(0); v != 0 {
		t.Fatalf("tie-break victim %d", v)
	}
}

func TestSRRIPInsertsAtLong(t *testing.T) {
	p := NewSRRIP(4, 4)
	p.OnFill(0, 2, trace.Record{})
	if got := p.st.set(0)[2]; got != rrpvLong {
		t.Fatalf("fill RRPV = %d", got)
	}
	p.OnHit(0, 2, trace.Record{})
	if got := p.st.set(0)[2]; got != 0 {
		t.Fatalf("hit RRPV = %d", got)
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP(4, 4)
	distant, long := 0, 0
	for i := 0; i < 3200; i++ {
		p.OnFill(0, 0, trace.Record{})
		switch p.st.set(0)[0] {
		case rrpvMax:
			distant++
		case rrpvLong:
			long++
		default:
			t.Fatalf("unexpected RRPV %d", p.st.set(0)[0])
		}
	}
	if long == 0 {
		t.Fatal("BRRIP never inserted at long RRPV")
	}
	// Expected 1/32 of 3200 = 100 long inserts; allow wide slack.
	if long < 40 || long > 220 {
		t.Fatalf("BRRIP long inserts = %d of 3200", long)
	}
	if distant < 2900 {
		t.Fatalf("BRRIP distant inserts = %d of 3200", distant)
	}
}

func TestSRRIPResistsScanBetterThanLRU(t *testing.T) {
	// A hot working set under one-shot stream interference: SRRIP inserts
	// strangers at distant RRPV, protecting the hot blocks LRU would evict.
	cfg := testConfig()
	stream := mixStreams(200, 60000, 4)
	sr := run(cfg, NewSRRIP(cfg.Sets(), cfg.Ways), stream)
	lr := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	if sr.Misses >= lr.Misses {
		t.Fatalf("SRRIP misses %d not below LRU %d under scan interference", sr.Misses, lr.Misses)
	}
}

func TestDRRIPBeatsLRUOnThrash(t *testing.T) {
	cfg := cache.L3Config
	stream := cyclic(90<<10, 500_000)
	pol := NewDRRIP(cfg.Sets(), cfg.Ways)
	dr := run(cfg, pol, stream)
	lr := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	if float64(dr.Misses) > 0.7*float64(lr.Misses) {
		t.Fatalf("DRRIP misses %d, LRU %d: expected a large win on thrash", dr.Misses, lr.Misses)
	}
	if pol.Winner() != 1 {
		t.Fatalf("DRRIP winner = %d, want BRRIP (1) on thrash", pol.Winner())
	}
}

func TestDRRIPTracksSRRIPOnFriendlyWorkload(t *testing.T) {
	cfg := testConfig()
	stream := mixStreams(200, 60000, 8)
	dr := run(cfg, NewDRRIP(cfg.Sets(), cfg.Ways), stream)
	sr := run(cfg, NewSRRIP(cfg.Sets(), cfg.Ways), stream)
	// Dueling overhead should keep DRRIP within a few percent of the
	// better static policy.
	if float64(dr.Misses) > 1.10*float64(sr.Misses) {
		t.Fatalf("DRRIP misses %d too far above SRRIP %d", dr.Misses, sr.Misses)
	}
}
