package policy

import (
	"fmt"

	"gippr/internal/cache"
	"gippr/internal/dueling"
	"gippr/internal/ipv"
	"gippr/internal/plrutree"
	"gippr/internal/trace"
)

// DGIPPRBracket is DGIPPR generalized to any power-of-two vector count via
// a bracket of duel counters. The paper caps its study at four vectors
// ("extending beyond four vectors yields diminishing returns"); this
// variant exists so the ablation benches can reproduce that observation
// with a real 8-vector configuration rather than take it on faith.
type DGIPPRBracket struct {
	nop
	name  string
	vecs  []ipv.Vector
	trees []plrutree.Tree
	duel  *dueling.Bracket
	ways  int
}

// NewDGIPPRBracket returns a DGIPPR duelling len(vecs) vectors (a power of
// two >= 2).
func NewDGIPPRBracket(sets, ways int, vecs []ipv.Vector) *DGIPPRBracket {
	validateGeometry(sets, ways)
	n := len(vecs)
	if n < 2 || n&(n-1) != 0 {
		panic(fmt.Sprintf("policy: DGIPPR bracket needs a power-of-two vector count, got %d", n))
	}
	p := &DGIPPRBracket{
		name:  fmt.Sprintf("%d-DGIPPR(bracket)", n),
		trees: make([]plrutree.Tree, sets),
		duel:  dueling.NewBracket(sets, n, leadersFor(sets, n), dueling.CounterBits11),
		ways:  ways,
	}
	for _, v := range vecs {
		if err := v.Validate(); err != nil {
			panic(err)
		}
		if v.K() != ways {
			panic("policy: DGIPPR bracket vector associativity mismatch")
		}
		p.vecs = append(p.vecs, v.Clone())
	}
	for i := range p.trees {
		p.trees[i] = plrutree.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *DGIPPRBracket) Name() string { return p.name }

// OnMiss implements cache.Policy.
func (p *DGIPPRBracket) OnMiss(set uint32, _ trace.Record) { p.duel.OnMiss(set) }

// OnHit implements cache.Policy.
func (p *DGIPPRBracket) OnHit(set uint32, way int, _ trace.Record) {
	t := &p.trees[set]
	v := p.vecs[p.duel.Choose(set)]
	t.SetPosition(way, v.Promotion(t.Position(way)))
}

// OnFill implements cache.Policy.
func (p *DGIPPRBracket) OnFill(set uint32, way int, _ trace.Record) {
	p.trees[set].SetPosition(way, p.vecs[p.duel.Choose(set)].Insertion())
}

// Victim implements cache.Policy.
func (p *DGIPPRBracket) Victim(set uint32, _ trace.Record) int { return p.trees[set].Victim() }

// Winner returns the vector index follower sets currently use.
func (p *DGIPPRBracket) Winner() int { return p.duel.Winner() }

// OverheadBits implements Overheader: PseudoLRU bits plus n-1 counters.
func (p *DGIPPRBracket) OverheadBits() (float64, int) {
	return float64(p.ways - 1), (len(p.vecs) - 1) * dueling.CounterBits11
}

var (
	_ cache.Policy = (*DGIPPRBracket)(nil)
	_ Overheader   = (*DGIPPRBracket)(nil)
)
