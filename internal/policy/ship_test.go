package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// shipStream builds a stream where a "hot" PC touches a small reused set
// and a "scan" PC streams one-shot blocks.
func shipStream(n int, seed uint64) []trace.Record {
	rng := xrand.New(seed)
	recs := make([]trace.Record, n)
	hot, stream := 0, uint64(1<<30)
	for i := range recs {
		if rng.Bool(0.5) {
			recs[i] = trace.Record{Gap: 1, PC: 0x1000, Addr: uint64(hot%200) * 64}
			hot++
		} else {
			recs[i] = trace.Record{Gap: 1, PC: 0x2000, Addr: stream * 64}
			stream++
		}
	}
	return recs
}

func runRecs(cfg cache.Config, pol cache.Policy, recs []trace.Record) cache.Stats {
	c := cache.New(cfg, pol)
	for _, r := range recs {
		c.Access(r)
	}
	return c.Stats
}

func TestSHiPLearnsDeadPC(t *testing.T) {
	cfg := testConfig()
	recs := shipStream(80000, 31)
	ship := runRecs(cfg, NewSHiP(cfg.Sets(), cfg.Ways), recs)
	lru := runRecs(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), recs)
	if ship.Misses >= lru.Misses {
		t.Fatalf("SHiP misses %d not below LRU %d with a dead scan PC", ship.Misses, lru.Misses)
	}
}

func TestSHiPCountersMove(t *testing.T) {
	p := NewSHiP(16, 4)
	sig := shipSignature(0x2000)
	start := p.shct[sig]
	// Fill and evict without reuse repeatedly: counter must reach zero.
	r := trace.Record{Gap: 1, PC: 0x2000}
	for i := 0; i < 10; i++ {
		p.OnFill(0, 0, r)
		p.OnEvict(0, 0, r)
	}
	if p.shct[sig] != 0 {
		t.Fatalf("dead signature counter = %d (started %d)", p.shct[sig], start)
	}
	// Once dead, fills insert at distant RRPV.
	p.OnFill(0, 1, r)
	if got := p.st.set(0)[1]; got != rrpvMax {
		t.Fatalf("dead-signature fill RRPV = %d", got)
	}
	// Reuse trains the counter back up and fills return to long RRPV.
	for i := 0; i < 4; i++ {
		p.OnFill(0, 2, r)
		p.OnHit(0, 2, r)
	}
	p.OnFill(0, 3, r)
	if got := p.st.set(0)[3]; got != rrpvLong {
		t.Fatalf("live-signature fill RRPV = %d", got)
	}
}

func TestSHiPOutcomeBitResets(t *testing.T) {
	p := NewSHiP(16, 4)
	r := trace.Record{Gap: 1, PC: 0x3000}
	p.OnFill(0, 0, r)
	p.OnHit(0, 0, r)
	if !p.reused[0] {
		t.Fatal("outcome bit not set on hit")
	}
	p.OnFill(0, 0, r)
	if p.reused[0] {
		t.Fatal("outcome bit not cleared on refill")
	}
}

func TestSHiPHitIncrementsOnce(t *testing.T) {
	p := NewSHiP(16, 4)
	r := trace.Record{Gap: 1, PC: 0x4000}
	sig := shipSignature(0x4000)
	base := p.shct[sig]
	p.OnFill(0, 0, r)
	p.OnHit(0, 0, r)
	p.OnHit(0, 0, r)
	p.OnHit(0, 0, r)
	if got := p.shct[sig]; got != base+1 {
		t.Fatalf("counter after repeated hits = %d, want %d", got, base+1)
	}
}

func TestSHiPSignatureInRange(t *testing.T) {
	for _, pc := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		if s := shipSignature(pc); int(s) >= shipTableSize {
			t.Fatalf("signature %d out of table", s)
		}
	}
}
