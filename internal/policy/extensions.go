package policy

// Extensions implementing two of the paper's future-work directions
// (Section 7):
//
//   - item 5, "it may be adapted to other LRU-like algorithms such as
//     RRIP": RRIPV drives RRIP's re-reference prediction values with an
//     insertion/promotion vector over RRPV space instead of the fixed
//     hit-promote-to-zero rule;
//   - item 1, "combining DGIPPR with a predictor that decides whether a
//     block should bypass the cache": BypassGIPPR set-duels plain GIPPR
//     against GIPPR with probabilistic bypass of incoming blocks.

import (
	"fmt"

	"gippr/internal/cache"
	"gippr/internal/dueling"
	"gippr/internal/ipv"
	"gippr/internal/plrutree"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// RRIPVector is an insertion/promotion vector over the 2-bit RRPV space:
// Promote[v] is the new RRPV of a block hit at RRPV v; Insert is the RRPV
// given to an incoming block. Classic SRRIP-HP is Promote = [0,0,0,0],
// Insert = 2; SRRIP-FP is Promote = [0,0,1,2], Insert = 2.
type RRIPVector struct {
	Promote [4]uint8
	Insert  uint8
}

// Validate checks all values fit in 2 bits.
func (v RRIPVector) Validate() error {
	for i, p := range v.Promote {
		if p > 3 {
			return fmt.Errorf("policy: RRIP vector promote[%d] = %d out of range", i, p)
		}
	}
	if v.Insert > 3 {
		return fmt.Errorf("policy: RRIP vector insert = %d out of range", v.Insert)
	}
	return nil
}

// SRRIPHPVector is the hit-priority RRIP transition vector.
var SRRIPHPVector = RRIPVector{Promote: [4]uint8{0, 0, 0, 0}, Insert: 2}

// SRRIPFPVector is the frequency-priority RRIP transition vector.
var SRRIPFPVector = RRIPVector{Promote: [4]uint8{0, 0, 1, 2}, Insert: 2}

// RRIPV is RRIP replacement driven by an arbitrary RRPV transition vector —
// the paper's "adapt IPVs to RRIP" future-work item. With 4^5 = 1024
// possible vectors the space is small enough to search exhaustively.
type RRIPV struct {
	nop
	st  rripState
	vec RRIPVector
}

// NewRRIPV returns RRIP replacement with the given transition vector.
func NewRRIPV(sets, ways int, v RRIPVector) *RRIPV {
	if err := v.Validate(); err != nil {
		panic(err)
	}
	return &RRIPV{st: newRRIPState(sets, ways), vec: v}
}

// Name implements cache.Policy.
func (p *RRIPV) Name() string {
	return fmt.Sprintf("RRIPV[%v %d]", p.vec.Promote, p.vec.Insert)
}

// OnHit implements cache.Policy.
func (p *RRIPV) OnHit(set uint32, way int, _ trace.Record) {
	rr := p.st.set(set)
	rr[way] = p.vec.Promote[rr[way]]
}

// Victim implements cache.Policy.
func (p *RRIPV) Victim(set uint32, _ trace.Record) int { return p.st.victim(set) }

// OnFill implements cache.Policy.
func (p *RRIPV) OnFill(set uint32, way int, _ trace.Record) {
	p.st.set(set)[way] = p.vec.Insert
}

// OverheadBits implements Overheader.
func (p *RRIPV) OverheadBits() (float64, int) { return float64(rrpvBits * p.st.ways), 0 }

// bypassSampleInverse keeps the bypass predictor trained: one in this many
// would-be-bypassed fills is inserted anyway so a signature that becomes
// reused again can recover from a zero counter.
const bypassSampleInverse = 32

// BypassGIPPR is GIPPR combined with a PC-signature bypass predictor
// (paper future-work item 1): a SHiP-style table of 2-bit counters, trained
// up when a line is reused and down when it is evicted dead, decides
// whether an incoming block should skip the cache entirely. A set-duel
// between "never bypass" and "bypass dead signatures" guards against
// workloads where the predictor misfires. One in 32 predicted-dead fills is
// inserted anyway so the predictor can recover when a signature's behaviour
// changes. Note bypass is incompatible with inclusive hierarchies — the
// same caveat the paper raises for PDP-with-bypass (Section 6.3).
type BypassGIPPR struct {
	nop
	vec    ipv.Vector
	trees  []plrutree.Tree
	duel   *dueling.Duel
	rng    *xrand.RNG
	ways   int
	shct   []uint8  // signature reuse counters
	sig    []uint16 // per-line signature
	reused []bool   // per-line outcome
}

// NewBypassGIPPR returns the predictor-guided bypass variant of GIPPR.
func NewBypassGIPPR(sets, ways int, v ipv.Vector) *BypassGIPPR {
	validateGeometry(sets, ways)
	if err := v.Validate(); err != nil {
		panic(err)
	}
	if v.K() != ways {
		panic("policy: BypassGIPPR vector associativity mismatch")
	}
	p := &BypassGIPPR{
		vec:    v.Clone(),
		trees:  make([]plrutree.Tree, sets),
		duel:   dueling.NewDuel(sets, leadersFor(sets, 2), dueling.CounterBits11),
		rng:    xrand.New(0xb1fa),
		ways:   ways,
		shct:   make([]uint8, shipTableSize),
		sig:    make([]uint16, sets*ways),
		reused: make([]bool, sets*ways),
	}
	for i := range p.shct {
		p.shct[i] = 1 // weakly alive: give cold signatures a chance
	}
	for i := range p.trees {
		p.trees[i] = plrutree.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *BypassGIPPR) Name() string { return "GIPPR+bypass" }

// OnMiss implements cache.Policy.
func (p *BypassGIPPR) OnMiss(set uint32, _ trace.Record) { p.duel.OnMiss(set) }

// OnHit implements cache.Policy: IPV promotion plus predictor training.
func (p *BypassGIPPR) OnHit(set uint32, way int, _ trace.Record) {
	t := &p.trees[set]
	t.SetPosition(way, p.vec.Promotion(t.Position(way)))
	idx := int(set)*p.ways + way
	if !p.reused[idx] {
		p.reused[idx] = true
		if s := p.sig[idx]; p.shct[s] < shipCounterMax {
			p.shct[s]++
		}
	}
}

// OnEvict implements cache.Policy: train down dead signatures.
func (p *BypassGIPPR) OnEvict(set uint32, way int, _ trace.Record) {
	idx := int(set)*p.ways + way
	if !p.reused[idx] {
		if s := p.sig[idx]; p.shct[s] > 0 {
			p.shct[s]--
		}
	}
}

// ShouldBypass implements cache.Bypasser: on the bypassing arm, skip fills
// whose PC signature has shown no reuse, except for the training sample.
func (p *BypassGIPPR) ShouldBypass(set uint32, r trace.Record) bool {
	if p.duel.Choose(set) == 0 {
		return false // plain-GIPPR arm
	}
	if p.shct[shipSignature(r.PC)] > 0 {
		return false
	}
	return !p.rng.OneIn(bypassSampleInverse)
}

// Victim implements cache.Policy.
func (p *BypassGIPPR) Victim(set uint32, _ trace.Record) int { return p.trees[set].Victim() }

// OnFill implements cache.Policy.
func (p *BypassGIPPR) OnFill(set uint32, way int, r trace.Record) {
	p.trees[set].SetPosition(way, p.vec.Insertion())
	idx := int(set)*p.ways + way
	p.sig[idx] = shipSignature(r.PC)
	p.reused[idx] = false
}

// OverheadBits implements Overheader: PseudoLRU bits plus per-line
// signature/outcome state, one duel counter and the predictor table.
func (p *BypassGIPPR) OverheadBits() (float64, int) {
	return float64(p.ways-1) + float64((14+1)*p.ways),
		dueling.CounterBits11 + shipTableSize*2
}

var (
	_ cache.Policy   = (*RRIPV)(nil)
	_ cache.Policy   = (*BypassGIPPR)(nil)
	_ cache.Bypasser = (*BypassGIPPR)(nil)
	_ Overheader     = (*RRIPV)(nil)
	_ Overheader     = (*BypassGIPPR)(nil)
)
