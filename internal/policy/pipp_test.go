package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/trace"
)

func TestPIPPConstructorValidation(t *testing.T) {
	bad := []func(){
		func() { NewPIPP(4, 4, nil) },
		func() { NewPIPP(4, 4, []int{0, 2}) },
		func() { NewPIPP(4, 4, []int{3, 3}) }, // sums beyond ways
		func() { NewPIPPEqual(4, 4, 0) },
		func() { NewPIPPEqual(4, 4, 5) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestPIPPEqualSplit(t *testing.T) {
	p := NewPIPPEqual(16, 16, 3)
	got := p.Allocations()
	want := []int{6, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("allocations %v, want %v", got, want)
		}
	}
}

func TestPIPPInsertionPosition(t *testing.T) {
	// One set, 8 ways, allocations [6, 2]: core 0 inserts at position 2
	// (8-6), core 1 at position 6 (8-2).
	cfg := cache.Config{Name: "p", SizeBytes: 8 * 64, Ways: 8, BlockBytes: 64, HitLatency: 1}
	p := NewPIPP(cfg.Sets(), cfg.Ways, []int{6, 2})
	c := cache.New(cfg, p)
	for b := uint64(0); b < 8; b++ { // fill
		c.Access(trace.Record{Gap: 1, Addr: b * 64, Core: 0})
	}
	c.Access(trace.Record{Gap: 1, Addr: 100 * 64, Core: 0})
	// Find the newly inserted block's position: way of block 100.
	st := p.stacks[0]
	found := -1
	for w := 0; w < 8; w++ {
		if st.Position(w) == 2 {
			found = w
		}
	}
	if found < 0 {
		t.Fatal("no way at core 0's insertion position")
	}
	c.Access(trace.Record{Gap: 1, Addr: 101 * 64, Core: 1})
	// Core 1's block lands at position 6.
	c.Access(trace.Record{Gap: 1, Addr: 102 * 64, Core: 9}) // unknown core -> LRU insert
	_ = found
}

func TestPIPPPromotionIsStepwise(t *testing.T) {
	cfg := cache.Config{Name: "p", SizeBytes: 8 * 64, Ways: 8, BlockBytes: 64, HitLatency: 1}
	p := NewPIPP(cfg.Sets(), cfg.Ways, []int{4})
	c := cache.New(cfg, p)
	for b := uint64(0); b < 8; b++ {
		c.Access(trace.Record{Gap: 1, Addr: b * 64})
	}
	// Hit the block at the LRU position repeatedly: its position must only
	// ever decrease by one per hit (probabilistically), never jump to 0.
	st := p.stacks[0]
	victim := st.Victim()
	block := uint64(0)
	for w, b := 0, uint64(0); b < 8; b++ {
		_ = w
		if c.Contains(b*64) && st.Position(int(b)) == 7 {
			block = b
		}
	}
	_ = victim
	prev := st.Position(int(block))
	for i := 0; i < 20 && prev > 0; i++ {
		c.Access(trace.Record{Gap: 1, Addr: block * 64})
		cur := st.Position(int(block))
		if cur < prev-1 {
			t.Fatalf("promotion jumped from %d to %d", prev, cur)
		}
		prev = cur
	}
}

func TestPIPPProtectsSmallPartition(t *testing.T) {
	// Core 0 streams (huge working set), core 1 loops over a set that
	// fits its partition. Under LRU the stream flushes core 1; under PIPP
	// the stream inserts near LRU and cannot displace core 1's promoted
	// blocks.
	cfg := testConfig() // 16 sets x 16 ways
	recs := make([]trace.Record, 120_000)
	next := uint64(1 << 20)
	hot := 0
	for i := range recs {
		if i%2 == 0 {
			recs[i] = trace.Record{Gap: 1, Addr: next * 64, Core: 0}
			next++
		} else {
			// 200 hot blocks over 16 sets: ~12.5 per set, which plus the
			// interleaved stream exceeds LRU's reach but fits core 1's
			// 14-way partition once the stream is pinned at LRU.
			recs[i] = trace.Record{Gap: 1, Addr: uint64(hot%200) * 64, Core: 1}
			hot++
		}
	}
	lru := runRecs(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), recs)
	pipp := runRecs(cfg, NewPIPP(cfg.Sets(), cfg.Ways, []int{2, 14}), recs)
	if pipp.Misses >= lru.Misses {
		t.Fatalf("PIPP misses %d not below LRU %d with a streaming co-runner", pipp.Misses, lru.Misses)
	}
}

func TestPIPPOverheadIncludesAllocations(t *testing.T) {
	p := NewPIPP(4096, 16, []int{8, 8})
	perSet, global := p.OverheadBits()
	if perSet != 64 {
		t.Fatalf("per-set bits %v", perSet)
	}
	if global == 0 {
		t.Fatal("allocation registers not counted")
	}
}
