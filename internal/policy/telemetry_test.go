package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// runTel pushes a block stream through a cache with a fresh sink attached and
// returns the sink.
func runTel(cfg cache.Config, pol cache.Policy, blocks []uint64) *telemetry.Sink {
	var sink telemetry.Sink
	c := cache.New(cfg, pol)
	c.SetTelemetry(&sink)
	for _, b := range blocks {
		c.Access(trace.Record{Gap: 1, Addr: b * 64, PC: 0x400000 + (b%7)*4})
	}
	return &sink
}

func TestPLRUTelemetryEvents(t *testing.T) {
	cfg := testConfig()
	sink := runTel(cfg, NewPLRU(cfg.Sets(), cfg.Ways), uniformBlocks(512, 20000, 1))
	if sink.Insertions.Load() != sink.Fills.Load() {
		t.Errorf("insertions = %d, want one per fill (%d)",
			sink.Insertions.Load(), sink.Fills.Load())
	}
	if sink.Promotions.Load() != sink.Hits.Load() {
		t.Errorf("promotions = %d, want one per hit (%d)",
			sink.Promotions.Load(), sink.Hits.Load())
	}
	// PLRU always inserts and promotes to MRU (position 0).
	if sink.InsertPos.Sum() != 0 {
		t.Errorf("PLRU inserted at non-zero positions (sum %d)", sink.InsertPos.Sum())
	}
	if sink.PromoteTo.Sum() != 0 {
		t.Errorf("PLRU promoted to non-zero positions (sum %d)", sink.PromoteTo.Sum())
	}
}

func TestGIPPRTelemetryInsertPosition(t *testing.T) {
	cfg := testConfig()
	v := ipv.LRU(cfg.Ways)
	v[cfg.Ways] = 13
	sink := runTel(cfg, NewGIPPR(cfg.Sets(), cfg.Ways, v), uniformBlocks(512, 20000, 2))
	n := sink.Insertions.Load()
	if n == 0 {
		t.Fatal("no insertions recorded")
	}
	// During cold start the tree is partially default, so the *recorded*
	// position is always the vector's insertion entry: V[k] = 13.
	if sink.InsertPos.Sum() != 13*n {
		t.Errorf("InsertPos sum = %d, want %d (all inserts at 13)", sink.InsertPos.Sum(), 13*n)
	}
	if sink.InsertPos.Max() != 13 {
		t.Errorf("InsertPos max = %d, want 13", sink.InsertPos.Max())
	}
}

func TestGIPLRTelemetryMatchesGIPPRCounts(t *testing.T) {
	cfg := testConfig()
	blocks := uniformBlocks(512, 20000, 3)
	sink := runTel(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), blocks)
	if sink.Insertions.Load() != sink.Fills.Load() || sink.Promotions.Load() != sink.Hits.Load() {
		t.Errorf("GIPLR event counts off: ins=%d fills=%d promo=%d hits=%d",
			sink.Insertions.Load(), sink.Fills.Load(),
			sink.Promotions.Load(), sink.Hits.Load())
	}
}

func TestDGIPPRTelemetryVotes(t *testing.T) {
	cfg := testConfig()
	vecs := [2]ipv.Vector{ipv.LRU(cfg.Ways), ipv.LIP(cfg.Ways)}
	p := NewDGIPPR2(cfg.Sets(), cfg.Ways, vecs)
	var sink telemetry.Sink
	c := cache.New(cfg, p)
	c.SetTelemetry(&sink)
	rng := xrand.New(7)
	for i := 0; i < 30000; i++ {
		c.Access(trace.Record{Gap: 1, Addr: rng.Uint64n(2048) * 64})
	}
	// Votes are recorded only on misses in leader sets, so their total is a
	// strict subset of all misses, and both candidates lead some sets.
	var votes uint64
	for i := 0; i < telemetry.MaxVotePolicies; i++ {
		votes += sink.Votes[i].Load()
	}
	if votes == 0 || votes >= sink.Misses.Load() {
		t.Errorf("leader votes = %d, want 0 < votes < misses (%d)", votes, sink.Misses.Load())
	}
	if sink.Votes[0].Load() == 0 || sink.Votes[1].Load() == 0 {
		t.Errorf("votes per candidate = %d/%d, want both non-zero",
			sink.Votes[0].Load(), sink.Votes[1].Load())
	}
}

// TestTelemetryDoesNotPerturbSimulation: for every registered policy, a run
// with a sink attached must produce bit-identical stats to a run without.
// This is the guarantee the golden-fingerprint tests lean on.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	cfg := testConfig()
	blocks := append(uniformBlocks(256, 8000, 11), scanWithQuickReuse(8000, 64)...)
	for _, name := range Names() {
		f, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plain := run(cfg, f.New(cfg.Sets(), cfg.Ways), blocks)
		var sink telemetry.Sink
		c := cache.New(cfg, f.New(cfg.Sets(), cfg.Ways))
		c.SetTelemetry(&sink)
		for _, b := range blocks {
			c.Access(trace.Record{Gap: 1, Addr: b * 64, PC: 0x400000 + (b%7)*4})
		}
		if plain != c.Stats {
			t.Errorf("%s: stats diverged with telemetry: %+v vs %+v", name, plain, c.Stats)
		}
	}
}
