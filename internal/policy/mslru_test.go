package policy

import (
	"reflect"
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/recency"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

func TestMSLRUConstructorValidation(t *testing.T) {
	bad := []func(){
		func() { NewMSLRU(0, 8, 2) },
		func() { NewMSLRU(4, 1, 1) },
		func() { NewMSLRU(4, 128, 2) }, // beyond the packed-lane domain
		func() { NewMSLRU(4, 8, 0) },
		func() { NewMSLRU(4, 8, -1) },
		func() { NewMSLRU(4, 8, 3) }, // does not divide
		func() { NewMSLRU(4, 8, 9) },
		func() { NewMSLRU(4, 16, 6) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
	if got := NewMSLRU(4, 8, 4).Name(); got != "4-MSLRU" {
		t.Fatalf("name %q", got)
	}
	if got := NewMSLRU(4, 64, 64).Step(); got != 64 {
		t.Fatalf("step %d", got)
	}
}

func TestDefaultMSLRUStep(t *testing.T) {
	for _, tc := range []struct{ ways, want int }{
		{16, 4}, {8, 4}, {4, 4}, {12, 4}, {2, 2}, {6, 2}, {3, 1}, {5, 1},
	} {
		if got := DefaultMSLRUStep(tc.ways); got != tc.want {
			t.Fatalf("DefaultMSLRUStep(%d) = %d, want %d", tc.ways, got, tc.want)
		}
	}
}

// mslruStream mixes reuse, scans and writes over ~1.5x the cache footprint
// so replays exercise hits, evictions and cold fills in every set.
func mslruStream(cfg cache.Config, n int, seed uint64) []trace.Record {
	rng := xrand.New(seed)
	blocks := uint64(cfg.Sets()*cfg.Ways) * 3 / 2
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			Gap:   1,
			Addr:  rng.Uint64n(blocks) * uint64(cfg.BlockBytes),
			Write: rng.Intn(4) == 0,
		}
	}
	return recs
}

// replayTel replays recs through a fresh instrumented cache and returns the
// stats with the sink's final state.
func replayTel(cfg cache.Config, pol cache.Policy, recs []trace.Record) (cache.Stats, *telemetry.Sink) {
	c := cache.New(cfg, pol)
	sink := &telemetry.Sink{}
	c.SetTelemetry(sink)
	for _, r := range recs {
		c.Access(r)
	}
	return c.Stats, sink
}

// TestMSLRUStepOneMatchesTrueLRU pins the degenerate end of the family:
// with one segment the SWAR lanes must reproduce classic LRU bit for bit —
// stats, telemetry event stream, and final recency order.
func TestMSLRUStepOneMatchesTrueLRU(t *testing.T) {
	cfg := testConfig()
	recs := mslruStream(cfg, 40000, 0x51ED)
	ms := NewMSLRU(cfg.Sets(), cfg.Ways, 1)
	lru := NewTrueLRU(cfg.Sets(), cfg.Ways)
	msStats, msSink := replayTel(cfg, ms, recs)
	lruStats, lruSink := replayTel(cfg, lru, recs)
	if msStats != lruStats {
		t.Fatalf("1-MSLRU stats %+v != true LRU %+v", msStats, lruStats)
	}
	if !reflect.DeepEqual(msSink, lruSink) {
		t.Fatal("1-MSLRU telemetry diverged from true LRU")
	}
	for set := uint32(0); set < uint32(cfg.Sets()); set++ {
		for w := 0; w < cfg.Ways; w++ {
			if mp, lp := ms.Position(set, w), lru.Stack(set).Position(w); mp != lp {
				t.Fatalf("set %d way %d: position %d != LRU stack's %d", set, w, mp, lp)
			}
		}
	}
}

// TestMSLRUMatchesGIPLRMultiStep is the policy's defining differential: at
// every legal (ways, step) the packed-lane implementation must be
// indistinguishable from GIPLR driving ipv.MultiStep over a recency.Stack —
// the reference semantics MSLRU reimplements with SWAR arithmetic.
func TestMSLRUMatchesGIPLRMultiStep(t *testing.T) {
	for _, ways := range []int{2, 4, 8, 16, 64} {
		cfg := cache.Config{Name: "m", SizeBytes: 8 * ways * 64, Ways: ways, BlockBytes: 64, HitLatency: 1}
		n := 30000
		if testing.Short() {
			n = 4000
		}
		for step := 1; step <= ways; step *= 2 {
			recs := mslruStream(cfg, n, 0x3577^uint64(ways*1000+step))
			ms := NewMSLRU(cfg.Sets(), cfg.Ways, step)
			ref := NewGIPLR(cfg.Sets(), cfg.Ways, ipv.MultiStep(ways, step))
			msStats, msSink := replayTel(cfg, ms, recs)
			refStats, refSink := replayTel(cfg, ref, recs)
			if msStats != refStats {
				t.Fatalf("ways %d step %d: MSLRU %+v != GIPLR ref %+v", ways, step, msStats, refStats)
			}
			if !reflect.DeepEqual(msSink, refSink) {
				t.Fatalf("ways %d step %d: telemetry diverged", ways, step)
			}
			for set := uint32(0); set < uint32(cfg.Sets()); set++ {
				for w := 0; w < ways; w++ {
					if mp, rp := ms.Position(set, w), ref.Stack(set).Position(w); mp != rp {
						t.Fatalf("ways %d step %d set %d way %d: position %d != stack's %d",
							ways, step, set, w, mp, rp)
					}
				}
			}
		}
	}
}

// TestMSLRUMoveToMatchesStack drives the SWAR rotation primitive directly
// against recency.Stack.MoveTo with random (way, target) pairs — the
// op-level differential underneath the replay-level ones above, including
// associativities that leave parked lanes in the top word.
func TestMSLRUMoveToMatchesStack(t *testing.T) {
	for _, ways := range []int{2, 4, 8, 12, 16, 24, 64} {
		const sets = 3
		ms := NewMSLRU(sets, ways, 1)
		ref := make([]*recency.Stack, sets)
		for i := range ref {
			ref[i] = recency.New(ways)
		}
		rng := xrand.New(0xD1FF ^ uint64(ways))
		rounds := 5000
		if testing.Short() {
			rounds = 500
		}
		for i := 0; i < rounds; i++ {
			set := uint32(rng.Intn(sets))
			w := rng.Intn(ways)
			target := rng.Intn(ways)
			ms.moveTo(set, w, target)
			ref[set].MoveTo(w, target)
			for v := 0; v < ways; v++ {
				if mp, rp := ms.Position(set, v), ref[set].Position(v); mp != rp {
					t.Fatalf("ways %d round %d: way %d at %d, stack says %d", ways, i, v, mp, rp)
				}
			}
			if mv, rv := ms.Victim(set, trace.Record{}), ref[set].Victim(); mv != rv {
				t.Fatalf("ways %d round %d: victim %d, stack says %d", ways, i, mv, rv)
			}
		}
	}
}

// TestMSLRUStepControlsClimbRate gives the step knob behavioural teeth.
// The deterministic half: a block hit once from the LRU position jumps
// straight to MRU under step 1 but climbs only one position under the fully
// incremental step — re-reference count, not recency alone, now controls how
// protected a block is. The statistical half: the family's endpoints make
// genuinely different replacement decisions on a mixed stream, so the step
// parameter is not a renaming of LRU.
func TestMSLRUStepControlsClimbRate(t *testing.T) {
	cfg := cache.Config{Name: "m", SizeBytes: 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 1}
	for _, tc := range []struct{ step, want int }{{1, 0}, {16, 14}} {
		ms := NewMSLRU(1, 16, tc.step)
		c := cache.New(cfg, ms)
		for b := uint64(0); b < 16; b++ {
			c.Access(trace.Record{Gap: 1, Addr: b * 64})
		}
		if got := ms.Position(0, 0); got != 15 {
			t.Fatalf("step %d: block 0 at position %d after fills, want LRU", tc.step, got)
		}
		c.Access(trace.Record{Gap: 1, Addr: 0}) // one hit from the LRU position
		if got := ms.Position(0, 0); got != tc.want {
			t.Fatalf("step %d: one hit from LRU landed at %d, want %d", tc.step, got, tc.want)
		}
	}

	big := testConfig()
	recs := mslruStream(big, 60_000, 0xBEEF)
	one := runRecs(big, NewMSLRU(big.Sets(), big.Ways, 1), recs)
	many := runRecs(big, NewMSLRU(big.Sets(), big.Ways, 16), recs)
	if one.Misses == many.Misses {
		t.Fatal("1-MSLRU and 16-MSLRU agreed exactly; the step knob changed nothing")
	}
}

func TestMSLRURegistryRoundTrip(t *testing.T) {
	f, err := Lookup("mslru")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	pol := f.New(cfg.Sets(), cfg.Ways)
	ms, ok := pol.(*MSLRU)
	if !ok {
		t.Fatalf("registry built %T", pol)
	}
	if ms.Name() != "MSLRU" {
		t.Fatalf("registry name %q", ms.Name())
	}
	if ms.Step() != DefaultMSLRUStep(cfg.Ways) {
		t.Fatalf("registry step %d, want %d", ms.Step(), DefaultMSLRUStep(cfg.Ways))
	}
	if !ms.Vector().Equal(ipv.MultiStep(cfg.Ways, ms.Step())) {
		t.Fatalf("registry vector %v", ms.Vector())
	}
	st := runRecs(cfg, ms, mslruStream(cfg, 5000, 7))
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("degenerate replay %+v", st)
	}
}

func TestMSLRUOverhead(t *testing.T) {
	perSet, global := NewMSLRU(4096, 16, 4).OverheadBits()
	if perSet != 64 || global != 0 {
		t.Fatalf("MSLRU overhead %v/%v", perSet, global)
	}
}
