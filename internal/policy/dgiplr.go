package policy

import (
	"gippr/internal/cache"
	"gippr/internal/dueling"
	"gippr/internal/ipv"
	"gippr/internal/recency"
	"gippr/internal/trace"
)

// DGIPLR2 is the true-LRU counterpart of DGIPPR2 — the paper's future-work
// item 5 ("the full LRU version of the technique also deserves further
// study"): two IPVs duelling over full recency stacks. It costs k*log2(k)
// bits per set (4x GIPPR at 16 ways) and exists to quantify what, if
// anything, exact recency buys over the tree approximation
// (BenchmarkAblationTreeVsTrueLRU).
type DGIPLR2 struct {
	nop
	vecs   [2]ipv.Vector
	stacks []*recency.Stack
	duel   *dueling.Duel
	ways   int
}

// NewDGIPLR2 returns a 2-vector dynamic GIPLR.
func NewDGIPLR2(sets, ways int, vecs [2]ipv.Vector) *DGIPLR2 {
	validateGeometry(sets, ways)
	for _, v := range vecs {
		if err := v.Validate(); err != nil {
			panic(err)
		}
		if v.K() != ways {
			panic("policy: DGIPLR2 vector associativity mismatch")
		}
	}
	p := &DGIPLR2{
		vecs:   [2]ipv.Vector{vecs[0].Clone(), vecs[1].Clone()},
		stacks: make([]*recency.Stack, sets),
		duel:   dueling.NewDuel(sets, leadersFor(sets, 2), dueling.CounterBits11),
		ways:   ways,
	}
	for i := range p.stacks {
		p.stacks[i] = recency.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *DGIPLR2) Name() string { return "2-DGIPLR" }

// OnMiss implements cache.Policy.
func (p *DGIPLR2) OnMiss(set uint32, _ trace.Record) { p.duel.OnMiss(set) }

// OnHit implements cache.Policy.
func (p *DGIPLR2) OnHit(set uint32, way int, _ trace.Record) {
	p.stacks[set].Touch(way, p.vecs[p.duel.Choose(set)])
}

// Victim implements cache.Policy.
func (p *DGIPLR2) Victim(set uint32, _ trace.Record) int { return p.stacks[set].Victim() }

// OnFill implements cache.Policy.
func (p *DGIPLR2) OnFill(set uint32, way int, _ trace.Record) {
	p.stacks[set].Fill(way, p.vecs[p.duel.Choose(set)])
}

// OverheadBits implements Overheader.
func (p *DGIPLR2) OverheadBits() (float64, int) {
	return float64(p.ways * log2ceil(p.ways)), dueling.CounterBits11
}

// DGIPLR4 is the four-vector true-LRU variant, the DGIPPR4 counterpart.
type DGIPLR4 struct {
	nop
	vecs   [4]ipv.Vector
	stacks []*recency.Stack
	duel   *dueling.Tournament
	ways   int
}

// NewDGIPLR4 returns a 4-vector dynamic GIPLR.
func NewDGIPLR4(sets, ways int, vecs [4]ipv.Vector) *DGIPLR4 {
	validateGeometry(sets, ways)
	for _, v := range vecs {
		if err := v.Validate(); err != nil {
			panic(err)
		}
		if v.K() != ways {
			panic("policy: DGIPLR4 vector associativity mismatch")
		}
	}
	p := &DGIPLR4{
		stacks: make([]*recency.Stack, sets),
		duel:   dueling.NewTournament(sets, leadersFor(sets, 4), dueling.CounterBits11),
		ways:   ways,
	}
	for i, v := range vecs {
		p.vecs[i] = v.Clone()
	}
	for i := range p.stacks {
		p.stacks[i] = recency.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *DGIPLR4) Name() string { return "4-DGIPLR" }

// OnMiss implements cache.Policy.
func (p *DGIPLR4) OnMiss(set uint32, _ trace.Record) { p.duel.OnMiss(set) }

// OnHit implements cache.Policy.
func (p *DGIPLR4) OnHit(set uint32, way int, _ trace.Record) {
	p.stacks[set].Touch(way, p.vecs[p.duel.Choose(set)])
}

// Victim implements cache.Policy.
func (p *DGIPLR4) Victim(set uint32, _ trace.Record) int { return p.stacks[set].Victim() }

// OnFill implements cache.Policy.
func (p *DGIPLR4) OnFill(set uint32, way int, _ trace.Record) {
	p.stacks[set].Fill(way, p.vecs[p.duel.Choose(set)])
}

// OverheadBits implements Overheader.
func (p *DGIPLR4) OverheadBits() (float64, int) {
	return float64(p.ways * log2ceil(p.ways)), 3 * dueling.CounterBits11
}

var (
	_ cache.Policy = (*DGIPLR2)(nil)
	_ cache.Policy = (*DGIPLR4)(nil)
	_ Overheader   = (*DGIPLR2)(nil)
	_ Overheader   = (*DGIPLR4)(nil)
)
