package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/trace"
)

func TestFIFOEvictionOrder(t *testing.T) {
	cfg := cache.Config{Name: "f", SizeBytes: 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 1}
	p := NewFIFO(cfg.Sets(), cfg.Ways)
	c := cache.New(cfg, p)
	stride := uint64(64)
	// Fill ways 0..3 with blocks 0..3.
	for b := uint64(0); b < 4; b++ {
		c.Access(trace.Record{Gap: 1, Addr: b * stride})
	}
	// Hit block 0 (FIFO ignores it), then miss: block 0 must be evicted
	// first (oldest insertion).
	c.Access(trace.Record{Gap: 1, Addr: 0})
	c.Access(trace.Record{Gap: 1, Addr: 4 * stride})
	if c.Contains(0) {
		t.Fatal("FIFO kept the oldest block despite a hit")
	}
	// Next victim is block 1.
	c.Access(trace.Record{Gap: 1, Addr: 5 * stride})
	if c.Contains(1 * stride) {
		t.Fatal("FIFO evicted out of order")
	}
	if !c.Contains(2*stride) || !c.Contains(3*stride) {
		t.Fatal("FIFO evicted a younger block")
	}
}

func TestFIFOPanicsOnHugeWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	NewFIFO(1, 256)
}

func TestNRUVictimSelection(t *testing.T) {
	p := NewNRU(4, 4)
	r := trace.Record{}
	// Mark ways 0 and 1 referenced.
	p.OnFill(0, 0, r)
	p.OnFill(0, 1, r)
	if v := p.Victim(0, r); v != 2 {
		t.Fatalf("victim %d, want first unreferenced way 2", v)
	}
	// Saturate: all referenced -> clear and pick way 0.
	p.OnFill(0, 2, r)
	p.OnFill(0, 3, r)
	if v := p.Victim(0, r); v != 0 {
		t.Fatalf("victim after saturation %d", v)
	}
	// The clear must have reset the bits.
	if p.set(0)[1] {
		t.Fatal("reference bits not cleared")
	}
}

func TestNRUApproximatesLRUBehaviour(t *testing.T) {
	cfg := testConfig()
	stream := mixStreams(100, 40000, 3)
	nru := run(cfg, NewNRU(cfg.Sets(), cfg.Ways), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	ratio := float64(nru.Misses) / float64(lru.Misses)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("NRU/LRU miss ratio %.3f, expected rough parity", ratio)
	}
}

func TestRandomIsDeterministicAcrossRuns(t *testing.T) {
	cfg := testConfig()
	stream := uniformBlocks(512, 20000, 12)
	a := run(cfg, NewRandom(cfg.Sets(), cfg.Ways), stream)
	b := run(cfg, NewRandom(cfg.Sets(), cfg.Ways), stream)
	if a.Misses != b.Misses {
		t.Fatalf("random policy not reproducible: %d vs %d", a.Misses, b.Misses)
	}
}

func TestRandomNearLRUOnMixedStream(t *testing.T) {
	// Figure 4's observation: random replacement is roughly on par with
	// LRU overall. Check a generous band on a mixed stream.
	cfg := testConfig()
	stream := append(cyclic(384, 30000), uniformBlocks(128, 30000, 5)...)
	rnd := run(cfg, NewRandom(cfg.Sets(), cfg.Ways), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	ratio := float64(rnd.Misses) / float64(lru.Misses)
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("Random/LRU miss ratio %.3f, expected same ballpark", ratio)
	}
}
