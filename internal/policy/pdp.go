package policy

import (
	"gippr/internal/cache"
	"gippr/internal/trace"
)

// PDP configuration defaults. The paper configures PDP with 4 bits per
// block and no bypass; dmax follows Duong et al.'s 256-access cap on
// measured reuse distances.
const (
	pdpMaxDistance = 256   // largest reuse distance the sampler measures
	pdpEpochLength = 32768 // accesses between protecting-distance recomputations
	pdpSampleMask  = 63    // sample sets where set & mask == 0 (1 in 64)
	pdpSweepPeriod = 1024  // sampled-set accesses between stale-entry sweeps
	pdpInitialPD   = 64
	pdpMinPD       = 8
)

// PDP is the Protecting Distance based Policy (Duong et al., MICRO 2012),
// reimplemented from the publication: a reuse-distance sampler feeds a
// periodic solver that picks the protecting distance dp maximizing the
// expected hits per unit of cache occupancy, and each line is protected
// from eviction until dp set-accesses have elapsed since its last touch.
//
// Reproduction notes (documented substitutions):
//   - the paper's dedicated microcontroller is simply the solver code here;
//   - per-line remaining-distance counters are represented as exact
//     set-local timestamps rather than the quantized decrementing fields of
//     the hardware proposal (the hardware quantization only coarsens the
//     same decision); the overhead report still charges the paper's 4 bits
//     per block;
//   - bypass is disabled, matching the configuration the paper compares
//     against ("we configure PDP to use 4 bits per block and to not bypass").
type PDP struct {
	nop
	sets, ways int

	now   []uint32 // per-set access counter
	stamp []uint32 // per-line set-local time of last protection (fill or hit)
	pd    uint32   // current protecting distance

	// Reuse-distance sampler state (sampled sets only).
	samp      map[uint64]uint32 // block -> set-local time of previous access
	sampSet   map[uint64]uint32 // block -> its set (to read the right clock)
	hist      []uint64          // hist[d], d in 1..pdpMaxDistance
	infinite  uint64            // reuses beyond dmax, and never-reused sweeps
	sampCount uint64

	accesses uint64
}

// NewPDP returns a protecting-distance policy with the defaults above.
func NewPDP(sets, ways int) *PDP {
	validateGeometry(sets, ways)
	return &PDP{
		sets:    sets,
		ways:    ways,
		now:     make([]uint32, sets),
		stamp:   make([]uint32, sets*ways),
		pd:      pdpInitialPD,
		samp:    make(map[uint64]uint32),
		sampSet: make(map[uint64]uint32),
		hist:    make([]uint64, pdpMaxDistance+1),
	}
}

// Name implements cache.Policy.
func (p *PDP) Name() string { return "PDP" }

// PD returns the current protecting distance (for tests and reports).
func (p *PDP) PD() int { return int(p.pd) }

func (p *PDP) lines(set uint32) []uint32 {
	base := int(set) * p.ways
	return p.stamp[base : base+p.ways]
}

// tick advances a set's clock and runs the sampler; called once per access
// from OnHit and OnMiss.
func (p *PDP) tick(set uint32, r trace.Record) {
	p.now[set]++
	p.accesses++
	if set&pdpSampleMask == 0 {
		p.sample(set, r.Addr>>6) // 64-byte blocks, matching the L3 geometry
	}
	if p.accesses%pdpEpochLength == 0 {
		p.solve()
	}
}

func (p *PDP) sample(set uint32, block uint64) {
	now := p.now[set]
	if prev, ok := p.samp[block]; ok {
		rd := now - prev
		if rd >= 1 && rd <= pdpMaxDistance {
			p.hist[rd]++
		} else {
			p.infinite++
		}
	}
	p.samp[block] = now
	p.sampSet[block] = set
	p.sampCount++
	if p.sampCount%pdpSweepPeriod == 0 {
		p.sweep()
	}
}

// sweep drops sampler entries whose reuse can no longer land within dmax,
// counting them as infinite-distance; this bounds the sampler's footprint
// under streaming workloads.
func (p *PDP) sweep() {
	for b, t := range p.samp {
		if p.now[p.sampSet[b]]-t > pdpMaxDistance {
			p.infinite++
			delete(p.samp, b)
			delete(p.sampSet, b)
		}
	}
}

// solve recomputes the protecting distance: maximize
// E(d) = hits(d) / cost(d) with hits(d) the reuses at distance <= d and
// cost(d) the expected occupancy those lines consume — reused lines occupy
// their reuse distance, unreused lines occupy the full protecting distance.
// The histogram is halved afterwards so the policy adapts to phase changes.
func (p *PDP) solve() {
	var total uint64 = p.infinite
	for _, n := range p.hist[1:] {
		total += n
	}
	if total == 0 {
		return
	}
	scores := make([]float64, pdpMaxDistance+1)
	var hits, weighted uint64
	for d := 1; d <= pdpMaxDistance; d++ {
		hits += p.hist[d]
		weighted += p.hist[d] * uint64(d)
		cost := float64(weighted) + float64(total-hits)*float64(d)
		if cost > 0 {
			scores[d] = float64(hits) / cost
		}
	}
	best := argmaxFloat(scores[1:]) + 1
	if best < pdpMinPD {
		best = pdpMinPD
	}
	p.pd = uint32(best)
	for d := range p.hist {
		p.hist[d] >>= 1
	}
	p.infinite >>= 1
}

// OnHit implements cache.Policy: reprotect the line.
func (p *PDP) OnHit(set uint32, way int, r trace.Record) {
	p.tick(set, r)
	p.lines(set)[way] = p.now[set]
}

// OnMiss implements cache.Policy.
func (p *PDP) OnMiss(set uint32, r trace.Record) { p.tick(set, r) }

// Victim implements cache.Policy. A line is protected while its age (set
// accesses since its last touch) is at most the protecting distance; its
// predicted reuse lands at age == pd, so protection is inclusive. Eviction
// prefers the oldest unprotected line — one whose predicted reuse already
// passed without materializing (a dead line). When every line is still
// protected (PDP without bypass must evict something), the youngest line is
// evicted: it is the one whose predicted reuse lies farthest in the future,
// the Belady-inspired choice that gives PDP its thrash resistance — older
// protected lines are closer to their predicted reuse and are preserved.
func (p *PDP) Victim(set uint32, _ trace.Record) int {
	lines := p.lines(set)
	now := p.now[set]
	deadWay, deadAge := -1, uint32(0)
	youngWay, youngAge := 0, ^uint32(0)
	for w, s := range lines {
		age := now - s
		if age > p.pd && age >= deadAge {
			deadWay, deadAge = w, age
		}
		if age < youngAge {
			youngWay, youngAge = w, age
		}
	}
	if deadWay >= 0 {
		return deadWay
	}
	return youngWay
}

// OnFill implements cache.Policy: protect the incoming line.
func (p *PDP) OnFill(set uint32, way int, _ trace.Record) {
	p.lines(set)[way] = p.now[set]
}

// OverheadBits implements Overheader: the paper charges PDP 4 bits per
// block plus the reuse-distance sampler and microcontroller; we report the
// per-block state and a nominal 256-entry histogram as global bits. The
// microcontroller's 10K NAND gates have no bit-count equivalent and are
// noted in the report text.
func (p *PDP) OverheadBits() (float64, int) {
	return float64(4 * p.ways), pdpMaxDistance * 16
}

var (
	_ cache.Policy = (*PDP)(nil)
	_ Overheader   = (*PDP)(nil)
)
