package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/trace"
)

func TestRRIPVHPMatchesSRRIP(t *testing.T) {
	cfg := testConfig()
	stream := mixStreams(200, 60000, 77)
	a := run(cfg, NewRRIPV(cfg.Sets(), cfg.Ways, SRRIPHPVector), stream)
	b := run(cfg, NewSRRIP(cfg.Sets(), cfg.Ways), stream)
	if a.Misses != b.Misses {
		t.Fatalf("RRIPV[HP] misses %d != SRRIP %d", a.Misses, b.Misses)
	}
}

func TestRRIPVFPDiffersFromHP(t *testing.T) {
	cfg := testConfig()
	stream := mixStreams(200, 60000, 78)
	hp := run(cfg, NewRRIPV(cfg.Sets(), cfg.Ways, SRRIPHPVector), stream)
	fp := run(cfg, NewRRIPV(cfg.Sets(), cfg.Ways, SRRIPFPVector), stream)
	if hp.Misses == fp.Misses {
		t.Fatal("HP and FP vectors behave identically; promotion vector ignored?")
	}
}

func TestRRIPVectorValidation(t *testing.T) {
	if err := (RRIPVector{Promote: [4]uint8{0, 1, 2, 3}, Insert: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (RRIPVector{Promote: [4]uint8{4, 0, 0, 0}, Insert: 0}).Validate(); err == nil {
		t.Fatal("bad promote accepted")
	}
	if err := (RRIPVector{Insert: 9}).Validate(); err == nil {
		t.Fatal("bad insert accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewRRIPV accepted invalid vector")
		}
	}()
	NewRRIPV(4, 4, RRIPVector{Insert: 9})
}

func TestRRIPVName(t *testing.T) {
	if NewRRIPV(4, 4, SRRIPHPVector).Name() == "" {
		t.Fatal("empty name")
	}
}

func TestBypassGIPPRBeatsGIPPROnStreamMix(t *testing.T) {
	// A hot loop under pure-stream interference, with the stream issued
	// from its own PC: the predictor learns the stream signature is dead
	// and bypasses it, keeping the hot working set resident. The hot loop
	// (40K blocks, ~10 per set) plus unthrottled stream insertions (~15
	// per set between reuses) does not fit; with the stream bypassed it
	// fits easily.
	cfg := cache.L3Config
	recs := make([]trace.Record, 600_000)
	hot := 0
	next := uint64(1 << 30)
	for i := range recs {
		if i%2 == 0 {
			recs[i] = trace.Record{Gap: 1, PC: 0x1000, Addr: uint64(hot%(40<<10)) * 64}
			hot++
		} else {
			recs[i] = trace.Record{Gap: 1, PC: 0x2000, Addr: next * 64}
			next++
		}
	}
	v := ipv.LRU(16)
	plain := runRecs(cfg, NewGIPPR(cfg.Sets(), cfg.Ways, v), recs)
	byp := runRecs(cfg, NewBypassGIPPR(cfg.Sets(), cfg.Ways, v), recs)
	if float64(byp.Misses) > 0.85*float64(plain.Misses) {
		t.Fatalf("bypass arm (%d misses) not clearly below plain GIPPR (%d) under streaming",
			byp.Misses, plain.Misses)
	}
}

func TestBypassGIPPRTracksGIPPROnFriendlyWorkload(t *testing.T) {
	// When everything is reused, the duel must settle on the plain arm
	// and stay within a small margin of GIPPR.
	cfg := testConfig()
	stream := cyclic(128, 60000) // fits comfortably
	v := ipv.LRU(16)
	plain := run(cfg, NewGIPPR(cfg.Sets(), cfg.Ways, v), stream)
	byp := run(cfg, NewBypassGIPPR(cfg.Sets(), cfg.Ways, v), stream)
	if float64(byp.Misses) > 1.2*float64(plain.Misses)+50 {
		t.Fatalf("bypass variant misses %d vs plain %d on a fitting loop", byp.Misses, plain.Misses)
	}
}

func TestBypassNeverFillsBypassedBlock(t *testing.T) {
	// Force the bypass arm on a leader set and verify the block is absent
	// after its (bypassed) miss.
	cfg := cache.Config{Name: "b", SizeBytes: 256 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 1}
	p := NewBypassGIPPR(cfg.Sets(), cfg.Ways, ipv.LRU(16))
	c := cache.New(cfg, p)
	// Set 1 is the leader of the bypass arm (policy index 1).
	setStride := uint64(256)
	fill := func(b uint64) { c.Access(trace.Record{Gap: 1, Addr: (1 + b*setStride) * 64}) }
	for b := uint64(0); b < 16; b++ {
		fill(b) // fill the set (invalid ways: always cached)
	}
	bypassed, cached := 0, 0
	for b := uint64(16); b < 200; b++ {
		fill(b)
		if c.Contains((1 + b*setStride) * 64) {
			cached++
		} else {
			bypassed++
		}
	}
	if bypassed == 0 {
		t.Fatal("bypass arm never bypassed on its own leader set")
	}
	if cached == 0 {
		t.Fatal("bypass arm bypassed everything; throttle broken")
	}
}

func TestBypassGIPPROverhead(t *testing.T) {
	p := NewBypassGIPPR(4096, 16, ipv.LRU(16))
	perSet, global := p.OverheadBits()
	if perSet != 15+15*16 || global != 11+shipTableSize*2 {
		t.Fatalf("overhead %v/%v", perSet, global)
	}
	if p.Name() != "GIPPR+bypass" {
		t.Fatal("name")
	}
}
