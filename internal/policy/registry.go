package policy

import (
	"errors"
	"fmt"
	"sort"

	"gippr/internal/cache"
	"gippr/internal/ipv"
)

// ErrUnknownPolicy is the sentinel wrapped by Lookup failures, so callers
// can branch with errors.Is (usage exit code in the cmd tools, 400 Bad
// Request in the job service).
var ErrUnknownPolicy = errors.New("policy: unknown policy")

// Registry returns factories for every named policy, keyed by the names the
// CLI tools and experiment harness use. The DGIPPR entries use the paper's
// published workload-inclusive vectors; harnesses that need workload-neutral
// or freshly evolved vectors construct policies directly.
func Registry() map[string]Factory {
	reg := map[string]Factory{
		"lru":    {Name: "LRU", New: func(s, w int) cache.Policy { return NewTrueLRU(s, w) }},
		"random": {Name: "Random", New: func(s, w int) cache.Policy { return NewRandom(s, w) }},
		"fifo":   {Name: "FIFO", New: func(s, w int) cache.Policy { return NewFIFO(s, w) }},
		"nru":    {Name: "NRU", New: func(s, w int) cache.Policy { return NewNRU(s, w) }},
		"plru":   {Name: "PLRU", New: func(s, w int) cache.Policy { return NewPLRU(s, w) }},
		"lip":    {Name: "LIP", New: func(s, w int) cache.Policy { return NewLIP(s, w) }},
		"bip":    {Name: "BIP", New: func(s, w int) cache.Policy { return NewBIP(s, w) }},
		"dip":    {Name: "DIP", New: func(s, w int) cache.Policy { return NewDIP(s, w) }},
		"srrip":  {Name: "SRRIP", New: func(s, w int) cache.Policy { return NewSRRIP(s, w) }},
		"brrip":  {Name: "BRRIP", New: func(s, w int) cache.Policy { return NewBRRIP(s, w) }},
		"drrip":  {Name: "DRRIP", New: func(s, w int) cache.Policy { return NewDRRIP(s, w) }},
		"pdp":    {Name: "PDP", New: func(s, w int) cache.Policy { return NewPDP(s, w) }},
		"ship":   {Name: "SHiP", New: func(s, w int) cache.Policy { return NewSHiP(s, w) }},
		"mslru": {Name: "MSLRU", New: func(s, w int) cache.Policy {
			p := NewMSLRU(s, w, DefaultMSLRUStep(w))
			p.SetName("MSLRU")
			return p
		}},
		"giplr": {Name: "GIPLR", New: func(s, w int) cache.Policy {
			return NewGIPLR(s, w, paperVectorFor(w, ipv.PaperGIPLR))
		}},
		"gippr": {Name: "GIPPR", New: func(s, w int) cache.Policy {
			g := NewGIPPR(s, w, paperVectorFor(w, ipv.PaperWIGIPPR))
			g.SetName("GIPPR")
			return g
		}},
		"2-dgippr": {Name: "2-DGIPPR", New: func(s, w int) cache.Policy {
			return NewDGIPPR2(s, w, [2]ipv.Vector{
				paperVectorFor(w, ipv.PaperWI2DGIPPR[0]),
				paperVectorFor(w, ipv.PaperWI2DGIPPR[1]),
			})
		}},
		"4-dgippr": {Name: "4-DGIPPR", New: func(s, w int) cache.Policy {
			return NewDGIPPR4(s, w, [4]ipv.Vector{
				paperVectorFor(w, ipv.PaperWI4DGIPPR[0]),
				paperVectorFor(w, ipv.PaperWI4DGIPPR[1]),
				paperVectorFor(w, ipv.PaperWI4DGIPPR[2]),
				paperVectorFor(w, ipv.PaperWI4DGIPPR[3]),
			})
		}},
	}
	return reg
}

// Names returns the registry's keys in sorted order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the factory for a registry name.
func Lookup(name string) (Factory, error) {
	f, ok := Registry()[name]
	if !ok {
		return Factory{}, fmt.Errorf("%w %q (known: %v)", ErrUnknownPolicy, name, Names())
	}
	return f, nil
}

// paperVectorFor adapts a published 16-way vector to other associativities
// by scaling each entry proportionally, so the registry remains usable on
// non-16-way geometries (tests exercise 4- and 8-way caches). For 16 ways
// the vector is returned unchanged.
func paperVectorFor(ways int, v ipv.Vector) ipv.Vector {
	if v.K() == ways {
		return v
	}
	out := make(ipv.Vector, ways+1)
	for i := range out {
		src := i * v.K() / ways
		if i == ways {
			src = v.K()
		}
		out[i] = v[src] * ways / v.K()
		if out[i] >= ways {
			out[i] = ways - 1
		}
	}
	return out
}
