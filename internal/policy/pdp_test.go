package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/trace"
)

func TestPDPProtectsReusedLines(t *testing.T) {
	// Hot loop + one-shot stream: PDP must keep the hot lines (reprotected
	// on every hit) and sacrifice the never-reused stream lines.
	cfg := testConfig()
	stream := mixStreams(200, 80000, 21)
	pdp := run(cfg, NewPDP(cfg.Sets(), cfg.Ways), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	if pdp.Misses >= lru.Misses {
		t.Fatalf("PDP misses %d not below LRU %d under scan interference", pdp.Misses, lru.Misses)
	}
}

func TestPDPThrashResistance(t *testing.T) {
	// On a cyclic loop beyond capacity PDP approaches MIN: once the solver
	// locks onto the per-set reuse distance, protected-but-oldest lines
	// survive to their reuse and the youngest are sacrificed.
	cfg := cache.L3Config
	blocks := cyclic(90<<10, 600_000)
	pdp := run(cfg, NewPDP(cfg.Sets(), cfg.Ways), blocks)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), blocks)
	if float64(pdp.Misses) > 0.6*float64(lru.Misses) {
		t.Fatalf("PDP misses %d vs LRU %d: expected strong thrash resistance", pdp.Misses, lru.Misses)
	}
}

func TestPDPSolverLocksOntoReuseDistance(t *testing.T) {
	// Drive a single sampled set (set 0) with a fixed per-set reuse
	// distance of 12 and check the solver's protecting distance lands at
	// or just above it.
	p := NewPDP(64, 16)
	var recs []trace.Record
	for i := 0; i < 3*pdpEpochLength; i++ {
		block := uint64(i % 12)
		recs = append(recs, trace.Record{Gap: 1, Addr: block * 64 * 64}) // all map to set 0
	}
	c := cache.New(cache.Config{Name: "p", SizeBytes: 64 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 1}, p)
	for _, r := range recs {
		c.Access(r)
	}
	if pd := p.PD(); pd < 10 || pd > 24 {
		t.Fatalf("solver PD = %d, expected near the reuse distance 12", pd)
	}
}

func TestPDPDefaultPD(t *testing.T) {
	p := NewPDP(16, 16)
	if p.PD() != pdpInitialPD {
		t.Fatalf("initial PD = %d", p.PD())
	}
}

func TestPDPVictimPrefersDeadLines(t *testing.T) {
	p := NewPDP(64, 4)
	c := cache.New(cache.Config{Name: "p", SizeBytes: 64 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 1}, p)
	// Fill set 0 with 4 blocks (set stride is 64 blocks).
	for b := uint64(0); b < 4; b++ {
		c.Access(trace.Record{Gap: 1, Addr: b * 64 * 64})
	}
	// Keep blocks 1..3 fresh, let block 0 exceed the protecting distance.
	for i := 0; i < pdpInitialPD+8; i++ {
		for b := uint64(1); b < 4; b++ {
			c.Access(trace.Record{Gap: 1, Addr: b * 64 * 64})
		}
	}
	// A miss should now evict the dead block 0.
	c.Access(trace.Record{Gap: 1, Addr: 9 * 64 * 64})
	if c.Contains(0) {
		t.Fatal("dead line survived eviction")
	}
	for b := uint64(1); b < 4; b++ {
		if !c.Contains(b * 64 * 64) {
			t.Fatalf("protected hot line %d evicted", b)
		}
	}
}

func TestPDPNoBypassAlwaysFills(t *testing.T) {
	cfg := smallConfig()
	p := NewPDP(cfg.Sets(), cfg.Ways)
	c := cache.New(cfg, p)
	// Stream far beyond capacity: every access must still be filled
	// (paper configuration: PDP without bypass).
	for b := uint64(0); b < 1000; b++ {
		c.Access(trace.Record{Gap: 1, Addr: b * 64})
		if !c.Contains(b * 64) {
			t.Fatalf("block %d bypassed", b)
		}
	}
}

func TestPDPSamplerSweepBounds(t *testing.T) {
	// A pure stream on sampled sets must not grow the sampler without
	// bound: the sweep counts stale entries as infinite distance.
	p := NewPDP(64, 16)
	c := cache.New(cache.Config{Name: "p", SizeBytes: 64 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 1}, p)
	for b := uint64(0); b < 300_000; b++ {
		c.Access(trace.Record{Gap: 1, Addr: b * 64 * 64}) // every access to set 0, new block
	}
	if len(p.samp) > 4*pdpSweepPeriod {
		t.Fatalf("sampler grew to %d entries", len(p.samp))
	}
	if p.infinite == 0 {
		t.Fatal("streaming produced no infinite-distance samples")
	}
}

func TestPDPOverhead(t *testing.T) {
	p := NewPDP(4096, 16)
	perSet, global := p.OverheadBits()
	if perSet != 64 { // 4 bits x 16 ways
		t.Fatalf("per-set bits = %v", perSet)
	}
	if global <= 0 {
		t.Fatal("PDP must report sampler storage")
	}
}
