package policy

import (
	"testing"
	"testing/quick"

	"gippr/internal/cache"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

func recsFromBlocks(blocks []uint64) []trace.Record {
	recs := make([]trace.Record, len(blocks))
	for i, b := range blocks {
		recs[i] = trace.Record{Gap: 1, Addr: b * 64}
	}
	return recs
}

func TestOptimalKnownSequence(t *testing.T) {
	// 1 set, 2 ways. Sequence: a b c a b. MIN: a,b fill; c is never
	// re-used so it bypasses; a and b hit. 3 misses, 2 hits.
	cfg := cache.Config{Name: "o", SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64, HitLatency: 1}
	rs := Optimal(recsFromBlocks([]uint64{0, 1, 2, 0, 1}), cfg, 0)
	if rs.Misses != 3 || rs.Hits != 2 {
		t.Fatalf("misses/hits = %d/%d, want 3/2", rs.Misses, rs.Hits)
	}
	// LRU on the same sequence: c evicts a; a evicts b; b evicts c ->
	// 5 misses. MIN strictly better.
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), []uint64{0, 1, 2, 0, 1})
	if lru.Misses != 5 {
		t.Fatalf("LRU misses = %d, want 5", lru.Misses)
	}
}

func TestOptimalCyclicLoopFormula(t *testing.T) {
	// For a cyclic loop of N blocks over a k-way set, MIN with bypass
	// pins k blocks and streams the rest past the cache: steady-state hit
	// rate k/N.
	cfg := cache.Config{Name: "o", SizeBytes: 8 * 64, Ways: 8, BlockBytes: 64, HitLatency: 1}
	const n, rounds = 12, 400
	blocks := make([]uint64, 0, n*rounds)
	for r := 0; r < rounds; r++ {
		for b := uint64(0); b < n; b++ {
			blocks = append(blocks, b*1) // same set: 1 set total? sets = 1
		}
	}
	// cfg has 1 set (8 ways x 64B = 512B size): every block maps there.
	rs := Optimal(recsFromBlocks(blocks), cfg, n*4)
	hitRate := float64(rs.Hits) / float64(rs.Accesses)
	want := float64(cfg.Ways) / float64(n)
	if hitRate < want-0.02 || hitRate > want+0.02 {
		t.Fatalf("MIN hit rate on cyclic loop = %.4f, want ~%.4f", hitRate, want)
	}
}

func TestOptimalNeverWorseThanAnyPolicy(t *testing.T) {
	cfg := smallConfig()
	policies := []func() cache.Policy{
		func() cache.Policy { return NewTrueLRU(cfg.Sets(), cfg.Ways) },
		func() cache.Policy { return NewRandom(cfg.Sets(), cfg.Ways) },
		func() cache.Policy { return NewPLRU(cfg.Sets(), cfg.Ways) },
		func() cache.Policy { return NewDRRIP(cfg.Sets(), cfg.Ways) },
		func() cache.Policy { return NewPDP(cfg.Sets(), cfg.Ways) },
		func() cache.Policy { return NewFIFO(cfg.Sets(), cfg.Ways) },
	}
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2000 + rng.Intn(2000)
		span := 8 + rng.Intn(120)
		blocks := make([]uint64, n)
		for i := range blocks {
			blocks[i] = rng.Uint64n(uint64(span))
		}
		min := Optimal(recsFromBlocks(blocks), cfg, 0)
		for _, mk := range policies {
			if st := run(cfg, mk(), blocks); st.Misses < min.Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatalf("a policy beat Belady MIN: %v", err)
	}
}

func TestOptimalWarmup(t *testing.T) {
	cfg := cache.Config{Name: "o", SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64, HitLatency: 1}
	recs := recsFromBlocks([]uint64{0, 1, 0, 1})
	rs := Optimal(recs, cfg, 2)
	if rs.Accesses != 2 || rs.Hits != 2 || rs.Misses != 0 {
		t.Fatalf("warm stats %+v", rs)
	}
	// Warm beyond length.
	rs = Optimal(recs, cfg, 100)
	if rs.Accesses != 0 {
		t.Fatalf("over-warm stats %+v", rs)
	}
}

func TestOptimalInstructionAccounting(t *testing.T) {
	cfg := smallConfig()
	recs := []trace.Record{
		{Gap: 3, Addr: 0}, {Gap: 5, Addr: 64}, {Gap: 7, Addr: 128},
	}
	rs := Optimal(recs, cfg, 1)
	if rs.Instructions != 12 {
		t.Fatalf("instructions = %d, want 12", rs.Instructions)
	}
}

func TestOptimalEmptyStream(t *testing.T) {
	rs := Optimal(nil, smallConfig(), 0)
	if rs.Accesses != 0 || rs.Misses != 0 {
		t.Fatalf("empty stream stats %+v", rs)
	}
}
