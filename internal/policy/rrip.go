package policy

import (
	"gippr/internal/cache"
	"gippr/internal/dueling"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// RRIP constants (Jaleel et al., ISCA 2010), 2-bit variant as evaluated in
// the paper: re-reference prediction values (RRPVs) range 0 (near-immediate
// re-reference) to 3 (distant). Hit priority (HP) promotion sets a hit
// block's RRPV to 0.
const (
	rrpvBits      = 2
	rrpvMax       = 1<<rrpvBits - 1 // 3: distant re-reference (eviction candidate)
	rrpvLong      = rrpvMax - 1     // 2: long re-reference (SRRIP insertion)
	brripThrottle = 32              // BRRIP inserts at rrpvLong once per 32 fills
)

// rripState is the shared RRPV machinery of SRRIP/BRRIP/DRRIP.
type rripState struct {
	ways int
	rrpv []uint8 // flattened [set*ways+way]
}

func newRRIPState(sets, ways int) rripState {
	validateGeometry(sets, ways)
	st := rripState{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range st.rrpv {
		st.rrpv[i] = rrpvMax // empty ways predict distant re-reference
	}
	return st
}

func (st *rripState) set(set uint32) []uint8 {
	base := int(set) * st.ways
	return st.rrpv[base : base+st.ways]
}

// victim finds the leftmost way with RRPV == max, aging the whole set until
// one exists.
func (st *rripState) victim(set uint32) int {
	rr := st.set(set)
	for {
		for w, v := range rr {
			if v == rrpvMax {
				return w
			}
		}
		for w := range rr {
			rr[w]++
		}
	}
}

// SRRIP is static re-reference interval prediction with hit priority:
// insert at RRPV 2, promote to RRPV 0 on hit, evict at RRPV 3.
type SRRIP struct {
	nop
	st rripState
}

// NewSRRIP returns static RRIP replacement.
func NewSRRIP(sets, ways int) *SRRIP { return &SRRIP{st: newRRIPState(sets, ways)} }

// Name implements cache.Policy.
func (p *SRRIP) Name() string { return "SRRIP" }

// OnHit implements cache.Policy.
func (p *SRRIP) OnHit(set uint32, way int, _ trace.Record) { p.st.set(set)[way] = 0 }

// Victim implements cache.Policy.
func (p *SRRIP) Victim(set uint32, _ trace.Record) int { return p.st.victim(set) }

// OnFill implements cache.Policy.
func (p *SRRIP) OnFill(set uint32, way int, _ trace.Record) { p.st.set(set)[way] = rrpvLong }

// OverheadBits implements Overheader.
func (p *SRRIP) OverheadBits() (float64, int) { return float64(rrpvBits * p.st.ways), 0 }

// BRRIP is bimodal RRIP: insert at RRPV 3 (distant) except once per 32
// fills at RRPV 2 — RRIP's analogue of BIP, protecting against thrashing.
type BRRIP struct {
	nop
	st  rripState
	rng *xrand.RNG
}

// NewBRRIP returns bimodal RRIP replacement.
func NewBRRIP(sets, ways int) *BRRIP {
	return &BRRIP{st: newRRIPState(sets, ways), rng: xrand.New(0xbead)}
}

// Name implements cache.Policy.
func (p *BRRIP) Name() string { return "BRRIP" }

// OnHit implements cache.Policy.
func (p *BRRIP) OnHit(set uint32, way int, _ trace.Record) { p.st.set(set)[way] = 0 }

// Victim implements cache.Policy.
func (p *BRRIP) Victim(set uint32, _ trace.Record) int { return p.st.victim(set) }

// OnFill implements cache.Policy.
func (p *BRRIP) OnFill(set uint32, way int, _ trace.Record) {
	if p.rng.OneIn(brripThrottle) {
		p.st.set(set)[way] = rrpvLong
	} else {
		p.st.set(set)[way] = rrpvMax
	}
}

// OverheadBits implements Overheader.
func (p *BRRIP) OverheadBits() (float64, int) { return float64(rrpvBits * p.st.ways), 0 }

// DRRIP is dynamic RRIP: set-dueling between SRRIP and BRRIP insertion over
// shared RRPVs, with a 10-bit PSEL and 32 leader sets per policy. This is
// the primary state-of-the-art comparison point in the paper (2 bits per
// block versus GIPPR's <1).
type DRRIP struct {
	nop
	st   rripState
	duel *dueling.Duel
	rng  *xrand.RNG
}

// NewDRRIP returns dynamic RRIP replacement.
func NewDRRIP(sets, ways int) *DRRIP {
	return &DRRIP{
		st:   newRRIPState(sets, ways),
		duel: dueling.NewDuel(sets, leadersFor(sets, 2), 10),
		rng:  xrand.New(0xd44),
	}
}

// Name implements cache.Policy.
func (p *DRRIP) Name() string { return "DRRIP" }

// OnHit implements cache.Policy.
func (p *DRRIP) OnHit(set uint32, way int, _ trace.Record) { p.st.set(set)[way] = 0 }

// OnMiss implements cache.Policy.
func (p *DRRIP) OnMiss(set uint32, _ trace.Record) { p.duel.OnMiss(set) }

// Victim implements cache.Policy.
func (p *DRRIP) Victim(set uint32, _ trace.Record) int { return p.st.victim(set) }

// OnFill implements cache.Policy: policy 0 = SRRIP insertion, policy 1 =
// BRRIP insertion.
func (p *DRRIP) OnFill(set uint32, way int, _ trace.Record) {
	if p.duel.Choose(set) == 0 {
		p.st.set(set)[way] = rrpvLong
		return
	}
	if p.rng.OneIn(brripThrottle) {
		p.st.set(set)[way] = rrpvLong
	} else {
		p.st.set(set)[way] = rrpvMax
	}
}

// Winner returns the insertion mode follower sets currently use (0 = SRRIP,
// 1 = BRRIP).
func (p *DRRIP) Winner() int { return p.duel.Winner() }

// OverheadBits implements Overheader: 2 bits per block plus the PSEL.
func (p *DRRIP) OverheadBits() (float64, int) { return float64(rrpvBits * p.st.ways), 10 }

var (
	_ cache.Policy = (*SRRIP)(nil)
	_ cache.Policy = (*BRRIP)(nil)
	_ cache.Policy = (*DRRIP)(nil)
	_ Overheader   = (*SRRIP)(nil)
	_ Overheader   = (*BRRIP)(nil)
	_ Overheader   = (*DRRIP)(nil)
)
