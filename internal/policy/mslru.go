package policy

import (
	"fmt"
	"math/bits"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// laneLSB and laneMSB broadcast a byte-lane's low and high bit across a
// uint64, the two masks every SWAR byte trick below is built from.
const (
	laneLSB = 0x0101010101010101
	laneMSB = 0x8080808080808080
)

// MSLRU is multi-step LRU (Inoue, arXiv:2112.09981) as a standalone policy:
// exact per-set recency positions, but hits climb the stack one segment at a
// time instead of jumping to MRU — behaviourally identical to
// NewGIPLR(sets, ways, ipv.MultiStep(ways, step)), which the differential
// tests pin. With step == 1 it degenerates to classic true LRU.
//
// The implementation is the point: instead of recency.Stack's paired
// way<->position arrays it keeps one 7-bit recency counter per way, packed
// eight to a uint64, and performs every stack rotation with branch-free SWAR
// arithmetic — a per-lane compare builds the "positions between from and to"
// mask and a single add or subtract shifts them all at once. That is the
// same packed-word discipline as plrutree.Packed and the batchreplay kernel
// (DESIGN.md §14), applied to exact recency instead of the tree
// approximation.
type MSLRU struct {
	nop
	name  string
	vec   ipv.Vector
	step  int
	ways  int
	words int      // uint64 words per set: (ways+7)/8
	lanes []uint64 // [set*words .. set*words+words): 8 positions per word
	tel   *telemetry.Sink
}

// NewMSLRU returns a multi-step LRU policy with the given promotion step
// count, which must divide the associativity; the associativity must be at
// most 64 (the packed-lane domain, matching plrutree.MaxWays).
func NewMSLRU(sets, ways, step int) *MSLRU {
	validateGeometry(sets, ways)
	if ways > 64 {
		panic(fmt.Sprintf("policy: MSLRU associativity %d exceeds 64", ways))
	}
	if step < 1 || step > ways || ways%step != 0 {
		panic(fmt.Sprintf("policy: MSLRU step %d must divide associativity %d", step, ways))
	}
	words := (ways + 7) / 8
	p := &MSLRU{
		name:  fmt.Sprintf("%d-MSLRU", step),
		vec:   ipv.MultiStep(ways, step),
		step:  step,
		ways:  ways,
		words: words,
		lanes: make([]uint64, sets*words),
	}
	// Initial recency order is way order — the same convention as
	// recency.New — with unused tail lanes parked at 0x7F, above every
	// reachable position, so no compare mask ever selects them.
	for set := 0; set < sets; set++ {
		for lane := 0; lane < 8*words; lane++ {
			pos := uint64(lane)
			if lane >= ways {
				pos = 0x7F
			}
			p.lanes[set*words+lane>>3] |= pos << ((lane & 7) * 8)
		}
	}
	return p
}

// DefaultMSLRUStep is the registry's step choice for an associativity: 4
// when it divides the associativity (the sweet spot in the multi-step LRU
// paper's sweep), else 2, else exact LRU.
func DefaultMSLRUStep(ways int) int {
	switch {
	case ways%4 == 0:
		return 4
	case ways%2 == 0:
		return 2
	default:
		return 1
	}
}

// Name implements cache.Policy.
func (p *MSLRU) Name() string { return p.name }

// SetName overrides the default "<step>-MSLRU" display name.
func (p *MSLRU) SetName(n string) { p.name = n }

// Step returns the promotion step count.
func (p *MSLRU) Step() int { return p.step }

// Vector returns the equivalent insertion/promotion vector,
// ipv.MultiStep(ways, step).
func (p *MSLRU) Vector() ipv.Vector { return p.vec.Clone() }

// SetTelemetry implements cache.Instrumented.
func (p *MSLRU) SetTelemetry(s *telemetry.Sink) { p.tel = s }

// laneLT returns a per-lane x < y indicator in each lane's high bit. Valid
// for lane values up to 0x7F, which setting the high bits of x guarantees
// borrow-free subtraction per lane.
func laneLT(x, y uint64) uint64 {
	return ^((x | laneMSB) - y) & laneMSB
}

// Position returns way's current recency position in set (0 = MRU).
func (p *MSLRU) Position(set uint32, way int) int {
	return int(p.lanes[int(set)*p.words+way>>3] >> ((way & 7) * 8) & 0x7F)
}

// moveTo rotates way from its current position to target, shifting every
// position strictly between by one — recency.Stack.MoveTo on packed lanes.
// Each word is one compare-mask-and-add: promoted rotations increment the
// lanes in [target, from), demoted ones decrement the lanes in (from,
// target]. Parked 0x7F lanes sit above both bounds, so neither mask ever
// touches them.
func (p *MSLRU) moveTo(set uint32, way, target int) {
	from := p.Position(set, way)
	if from == target {
		return
	}
	base := int(set) * p.words
	bFrom := uint64(from) * laneLSB
	bTo := uint64(target) * laneLSB
	for j := 0; j < p.words; j++ {
		x := p.lanes[base+j]
		if target < from {
			x += (laneLT(x, bFrom) & (laneMSB &^ laneLT(x, bTo))) >> 7
		} else {
			x -= (laneLT(bFrom, x) & (laneMSB &^ laneLT(bTo, x))) >> 7
		}
		p.lanes[base+j] = x
	}
	shift := uint(way&7) * 8
	w := base + way>>3
	p.lanes[w] = p.lanes[w]&^(0x7F<<shift) | uint64(target)<<shift
}

// OnHit implements cache.Policy: promote per the multi-step vector.
func (p *MSLRU) OnHit(set uint32, way int, _ trace.Record) {
	from := p.Position(set, way)
	to := p.vec.Promotion(from)
	if p.tel != nil {
		p.tel.Promote(from, to)
	}
	p.moveTo(set, way, to)
}

// Victim implements cache.Policy: the block in the LRU position, found with
// a SWAR zero-byte scan. XORing the broadcast LRU position turns the
// matching lane into 0x00; the classic (z-0x01..)&^z&0x80.. detector is
// exact here because every lane is at most 0x7F. Exactly one lane matches —
// positions are a permutation — and parked 0x7F lanes never do.
func (p *MSLRU) Victim(set uint32, _ trace.Record) int {
	base := int(set) * p.words
	lru := uint64(p.ways-1) * laneLSB
	for j := 0; j < p.words; j++ {
		z := p.lanes[base+j] ^ lru
		if m := (z - laneLSB) &^ z & laneMSB; m != 0 {
			return j*8 + bits.TrailingZeros64(m)>>3
		}
	}
	panic("policy: MSLRU positions are not a permutation")
}

// OnFill implements cache.Policy: move the incoming block to the insertion
// position (MRU for every multi-step vector). During cold start the cache
// may fill an invalid way; the move applies from whatever position that way
// held, exactly as GIPLR's stack fill does.
func (p *MSLRU) OnFill(set uint32, way int, _ trace.Record) {
	if p.tel != nil {
		p.tel.Insert(p.vec.Insertion())
	}
	p.moveTo(set, way, p.vec.Insertion())
}

// OverheadBits implements Overheader: exact recency costs k*log2(k) bits per
// set like true LRU; the step count is a wired constant, not state.
func (p *MSLRU) OverheadBits() (float64, int) {
	return float64(p.ways * log2ceil(p.ways)), 0
}

var (
	_ cache.Policy       = (*MSLRU)(nil)
	_ Overheader         = (*MSLRU)(nil)
	_ cache.Instrumented = (*MSLRU)(nil)
)
