package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
)

func TestDGIPLR2AdaptsToThrash(t *testing.T) {
	cfg := cache.L3Config
	stream := cyclic(90<<10, 500_000)
	d := run(cfg, NewDGIPLR2(cfg.Sets(), cfg.Ways, [2]ipv.Vector{ipv.LRU(16), ipv.LIP(16)}), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	if d.Misses >= lru.Misses {
		t.Fatalf("2-DGIPLR (%d misses) did not beat LRU (%d) on thrash", d.Misses, lru.Misses)
	}
}

func TestDGIPLR2TracksLRUOnQuickReuse(t *testing.T) {
	cfg := cache.L3Config
	stream := scanWithQuickReuse(400_000, 16<<10)
	d := run(cfg, NewDGIPLR2(cfg.Sets(), cfg.Ways, [2]ipv.Vector{ipv.LRU(16), ipv.LIP(16)}), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	if float64(d.Misses) > 1.15*float64(lru.Misses) {
		t.Fatalf("2-DGIPLR misses %d too far above LRU %d on LRU-friendly pattern", d.Misses, lru.Misses)
	}
}

func TestDGIPLR4BeatsWorstStatic(t *testing.T) {
	cfg := cache.L3Config
	vecs := [4]ipv.Vector{ipv.LRU(16), ipv.LIP(16), ipv.MidClimb(16), ipv.PaperGIPLR}
	stream := cyclic(90<<10, 500_000)
	d := run(cfg, NewDGIPLR4(cfg.Sets(), cfg.Ways, vecs), stream)
	worst := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream) // LRU is the worst arm on thrash
	if d.Misses >= worst.Misses {
		t.Fatalf("4-DGIPLR (%d) no better than its worst arm (%d)", d.Misses, worst.Misses)
	}
}

func TestDGIPLRTreeCounterpartsAgreeRoughly(t *testing.T) {
	// The PseudoLRU version must track the true-LRU version within a
	// modest margin — the paper's core storage argument relies on the
	// tree approximation not giving much away.
	cfg := cache.L3Config
	vecs2 := [2]ipv.Vector{ipv.LRU(16), ipv.LIP(16)}
	stream := append(cyclic(90<<10, 300_000), scanWithQuickReuse(300_000, 16<<10)...)
	lruVer := run(cfg, NewDGIPLR2(cfg.Sets(), cfg.Ways, vecs2), stream)
	treeVer := run(cfg, NewDGIPPR2(cfg.Sets(), cfg.Ways, vecs2), stream)
	ratio := float64(treeVer.Misses) / float64(lruVer.Misses)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("tree/true-LRU miss ratio %.3f: approximation too lossy", ratio)
	}
}

func TestDGIPLRPanicsOnMismatch(t *testing.T) {
	for i, f := range []func(){
		func() { NewDGIPLR2(16, 16, [2]ipv.Vector{ipv.LRU(8), ipv.LRU(16)}) },
		func() { NewDGIPLR4(16, 16, [4]ipv.Vector{ipv.LRU(16), ipv.LRU(16), ipv.LRU(16), ipv.LRU(8)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
}

func TestDGIPLROverheads(t *testing.T) {
	p2 := NewDGIPLR2(4096, 16, [2]ipv.Vector{ipv.LRU(16), ipv.LIP(16)})
	perSet, global := p2.OverheadBits()
	if perSet != 64 || global != 11 {
		t.Fatalf("2-DGIPLR overhead %v/%v", perSet, global)
	}
	p4 := NewDGIPLR4(4096, 16, [4]ipv.Vector{ipv.LRU(16), ipv.LIP(16), ipv.MidClimb(16), ipv.PaperGIPLR})
	perSet, global = p4.OverheadBits()
	if perSet != 64 || global != 33 {
		t.Fatalf("4-DGIPLR overhead %v/%v", perSet, global)
	}
	if p2.Name() != "2-DGIPLR" || p4.Name() != "4-DGIPLR" {
		t.Fatal("names")
	}
}
