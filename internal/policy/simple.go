package policy

import (
	"gippr/internal/cache"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// Random evicts a uniformly pseudo-random way. The paper's Figure 4 shows it
// performing at 99.9% of LRU on average — the observation motivating the
// claim that LRU's intuition buys little at the LLC.
type Random struct {
	nop
	ways int
	rng  *xrand.RNG
}

// NewRandom returns random replacement with a fixed seed for
// reproducibility.
func NewRandom(sets, ways int) *Random {
	validateGeometry(sets, ways)
	return &Random{ways: ways, rng: xrand.New(0x7a9db0c1)}
}

// Name implements cache.Policy.
func (p *Random) Name() string { return "Random" }

// Victim implements cache.Policy.
func (p *Random) Victim(uint32, trace.Record) int { return p.rng.Intn(p.ways) }

// OverheadBits implements Overheader: no replacement state.
func (p *Random) OverheadBits() (float64, int) { return 0, 0 }

// FIFO evicts blocks in insertion order, ignoring hits.
type FIFO struct {
	nop
	ways int
	next []uint8 // per-set round-robin pointer
}

// NewFIFO returns first-in-first-out replacement.
func NewFIFO(sets, ways int) *FIFO {
	validateGeometry(sets, ways)
	if ways > 255 {
		panic("policy: FIFO supports at most 255 ways")
	}
	return &FIFO{ways: ways, next: make([]uint8, sets)}
}

// Name implements cache.Policy.
func (p *FIFO) Name() string { return "FIFO" }

// Victim implements cache.Policy: the oldest-filled way.
func (p *FIFO) Victim(set uint32, _ trace.Record) int { return int(p.next[set]) }

// OnFill implements cache.Policy: advance the pointer past the filled way so
// cold fills (into invalid ways chosen by the cache) and replacements both
// keep insertion order.
func (p *FIFO) OnFill(set uint32, way int, _ trace.Record) {
	p.next[set] = uint8((way + 1) % p.ways)
}

// OverheadBits implements Overheader: one way pointer per set.
func (p *FIFO) OverheadBits() (float64, int) { return float64(log2ceil(p.ways)), 0 }

// NRU is not-recently-used replacement: one reference bit per block, set on
// hit and fill; the victim is the first way (in physical order) whose bit is
// clear, and when every bit is set they are all cleared first. NRU is the
// hardware-cheap policy RRIP generalizes.
type NRU struct {
	nop
	ways int
	ref  []bool // flattened [set*ways+way]
}

// NewNRU returns not-recently-used replacement.
func NewNRU(sets, ways int) *NRU {
	validateGeometry(sets, ways)
	return &NRU{ways: ways, ref: make([]bool, sets*ways)}
}

// Name implements cache.Policy.
func (p *NRU) Name() string { return "NRU" }

func (p *NRU) set(set uint32) []bool {
	base := int(set) * p.ways
	return p.ref[base : base+p.ways]
}

// OnHit implements cache.Policy.
func (p *NRU) OnHit(set uint32, way int, _ trace.Record) { p.set(set)[way] = true }

// OnFill implements cache.Policy.
func (p *NRU) OnFill(set uint32, way int, _ trace.Record) { p.set(set)[way] = true }

// Victim implements cache.Policy.
func (p *NRU) Victim(set uint32, _ trace.Record) int {
	bits := p.set(set)
	for w, b := range bits {
		if !b {
			return w
		}
	}
	for w := range bits {
		bits[w] = false
	}
	return 0
}

// OverheadBits implements Overheader: one bit per block.
func (p *NRU) OverheadBits() (float64, int) { return float64(p.ways), 0 }

var (
	_ cache.Policy = (*Random)(nil)
	_ cache.Policy = (*FIFO)(nil)
	_ cache.Policy = (*NRU)(nil)
	_ Overheader   = (*Random)(nil)
	_ Overheader   = (*FIFO)(nil)
	_ Overheader   = (*NRU)(nil)
)
