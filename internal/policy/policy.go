// Package policy implements every replacement policy the paper evaluates or
// builds on, all against the cache.Policy interface:
//
//   - classic baselines: true LRU, Random, FIFO, NRU, tree PseudoLRU;
//   - insertion-policy prior work: LIP, BIP, DIP (Qureshi et al.);
//   - re-reference interval prediction: SRRIP, BRRIP, DRRIP (Jaleel et al.);
//   - protecting distance: PDP (Duong et al.);
//   - signature-based hit prediction: SHiP-lite (Wu et al.);
//   - the paper's contributions: GIPLR (IPV over true LRU), GIPPR (IPV over
//     tree PseudoLRU) and DGIPPR (set-dueling over two or four IPVs);
//   - Belady's MIN optimal replacement, as an offline trace algorithm.
//
// Each policy reports its replacement-state storage via the Overheader
// interface so the paper's overhead comparison (Section 3.6) can be
// regenerated.
package policy

import (
	"math"
	"math/bits"

	"gippr/internal/cache"
	"gippr/internal/dueling"
	"gippr/internal/trace"
)

// Overheader is implemented by policies that can account for their
// replacement-state storage, mirroring the paper's Section 3.6 comparison.
type Overheader interface {
	// OverheadBits returns the replacement-state storage as bits per cache
	// set plus global bits for the whole cache (duel counters, predictor
	// tables, ...).
	OverheadBits() (perSet float64, global int)
}

// BitsPerBlock converts an OverheadBits result to the per-block figure the
// paper quotes (e.g. "less than 0.94 bits per block" for 15 bits across 16
// ways).
func BitsPerBlock(perSet float64, global, sets, ways int) float64 {
	return (perSet*float64(sets) + float64(global)) / float64(sets*ways)
}

// nop provides no-op defaults for the cache.Policy callbacks; policies embed
// it and override what they need.
type nop struct{}

func (nop) OnHit(uint32, int, trace.Record)   {}
func (nop) OnMiss(uint32, trace.Record)       {}
func (nop) OnEvict(uint32, int, trace.Record) {}
func (nop) OnFill(uint32, int, trace.Record)  {}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Factory constructs a fresh policy instance for a cache geometry. Fresh
// instances matter: policies hold all per-set state, so one instance must
// never be shared between caches or simulation runs.
type Factory struct {
	Name string
	New  func(sets, ways int) cache.Policy
}

// Validate panics if sets/ways are unusable; shared by constructors.
func validateGeometry(sets, ways int) {
	if sets <= 0 || ways < 2 {
		panic("policy: need sets >= 1 and ways >= 2")
	}
}

// leadersFor scales the customary 32 leader sets per policy down for small
// caches so that constituencies stay valid: at most 1/8 of the sets lead any
// policy, and every policy keeps at least one leader.
func leadersFor(sets, policies int) int {
	l := dueling.DefaultLeaders
	if max := sets / (8 * policies); max < l {
		l = max
	}
	if l < 1 {
		l = 1
	}
	return l
}

// mean-free helper used by PDP's solver and tests.
func argmaxFloat(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range xs {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}
