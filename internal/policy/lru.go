package policy

import (
	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/recency"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// GIPLR is true-LRU replacement driven by an arbitrary insertion/promotion
// vector (paper Section 2): a full recency stack per set, with hits moving a
// block from position i to V[i] and fills inserting at V[k]. With the
// all-zero vector it is exactly classic LRU. This is the expensive
// (k·log2(k) bits per set) proof-of-concept the tree-based GIPPR approximates.
type GIPLR struct {
	nop
	name   string
	vec    ipv.Vector
	stacks []*recency.Stack
	ways   int
	tel    *telemetry.Sink
}

// NewGIPLR returns a GIPLR policy with the given vector. The vector's
// associativity must match ways.
func NewGIPLR(sets, ways int, v ipv.Vector) *GIPLR {
	validateGeometry(sets, ways)
	if err := v.Validate(); err != nil {
		panic(err)
	}
	if v.K() != ways {
		panic("policy: GIPLR vector associativity mismatch")
	}
	p := &GIPLR{name: "GIPLR" + v.String(), vec: v.Clone(), stacks: make([]*recency.Stack, sets), ways: ways}
	for i := range p.stacks {
		p.stacks[i] = recency.New(ways)
	}
	return p
}

// NewTrueLRU returns classic LRU replacement (the paper's baseline).
func NewTrueLRU(sets, ways int) *GIPLR {
	p := NewGIPLR(sets, ways, ipv.LRU(ways))
	p.name = "LRU"
	return p
}

// NewLIP returns LRU-insertion replacement (Qureshi et al.'s LIP): hits
// promote to MRU, incoming blocks are inserted at the LRU position.
func NewLIP(sets, ways int) *GIPLR {
	p := NewGIPLR(sets, ways, ipv.LIP(ways))
	p.name = "LIP"
	return p
}

// Name implements cache.Policy.
func (p *GIPLR) Name() string { return p.name }

// Vector returns the IPV in use.
func (p *GIPLR) Vector() ipv.Vector { return p.vec.Clone() }

// SetTelemetry implements cache.Instrumented.
func (p *GIPLR) SetTelemetry(s *telemetry.Sink) { p.tel = s }

// OnHit implements cache.Policy: promote per the vector.
func (p *GIPLR) OnHit(set uint32, way int, _ trace.Record) {
	st := p.stacks[set]
	if p.tel != nil {
		from := st.Position(way)
		p.tel.Promote(from, p.vec.Promotion(from))
	}
	st.Touch(way, p.vec)
}

// Victim implements cache.Policy: the block in the LRU position.
func (p *GIPLR) Victim(set uint32, _ trace.Record) int {
	return p.stacks[set].Victim()
}

// OnFill implements cache.Policy: move the incoming block to the insertion
// position. The cache may fill an invalid way during cold start; the move is
// applied from whatever position that way held.
func (p *GIPLR) OnFill(set uint32, way int, _ trace.Record) {
	if p.tel != nil {
		p.tel.Insert(p.vec.Insertion())
	}
	p.stacks[set].Fill(way, p.vec)
}

// Stack exposes the recency stack of one set (for tests).
func (p *GIPLR) Stack(set uint32) *recency.Stack { return p.stacks[set] }

// OverheadBits implements Overheader: k·log2(k) bits per set (Section 2.1.2).
func (p *GIPLR) OverheadBits() (float64, int) {
	return float64(p.ways * log2ceil(p.ways)), 0
}

var _ cache.Policy = (*GIPLR)(nil)
var _ Overheader = (*GIPLR)(nil)
var _ cache.Instrumented = (*GIPLR)(nil)
