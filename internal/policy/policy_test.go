package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// test geometry: 16 sets x 16 ways of 64-byte blocks.
func testConfig() cache.Config {
	return cache.Config{Name: "t", SizeBytes: 16 * 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 1}
}

// small geometry: 4 sets x 4 ways.
func smallConfig() cache.Config {
	return cache.Config{Name: "s", SizeBytes: 4 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 1}
}

// run pushes a block-number stream through a cache and returns its stats.
func run(cfg cache.Config, pol cache.Policy, blocks []uint64) cache.Stats {
	c := cache.New(cfg, pol)
	for _, b := range blocks {
		c.Access(trace.Record{Gap: 1, Addr: b * 64, PC: 0x400000 + (b%7)*4})
	}
	return c.Stats
}

// cyclic generates n accesses sweeping 0..span-1 repeatedly.
func cyclic(span, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i % span)
	}
	return out
}

// uniformBlocks generates n uniformly random block numbers below span.
func uniformBlocks(span, n int, seed uint64) []uint64 {
	rng := xrand.New(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64n(uint64(span))
	}
	return out
}

// scanWithQuickReuse emits new blocks, each re-referenced once after `delay`
// further new blocks (the dealII-style pattern).
func scanWithQuickReuse(n, delay int) []uint64 {
	var out []uint64
	next := uint64(0)
	for len(out) < n {
		out = append(out, next)
		if next >= uint64(delay) {
			out = append(out, next-uint64(delay))
		}
		next++
	}
	return out[:n]
}

// mixStreams interleaves a hot loop with a one-shot stream. Hot blocks are
// touched twice in quick succession so reuse-aware policies (SRRIP-class,
// PDP) can establish protection before streaming interference evicts them —
// real hot data behaves this way; a uniformly spaced single touch would deny
// every policy the chance to observe reuse.
func mixStreams(hotSpan, n int, seed uint64) []uint64 {
	rng := xrand.New(seed)
	var streamNext uint64 = 1 << 30
	out := make([]uint64, 0, n)
	hot := 0
	for len(out) < n {
		if rng.Bool(0.5) {
			b := uint64(hot % hotSpan)
			out = append(out, b, b)
			hot++
		} else {
			out = append(out, streamNext)
			streamNext++
		}
	}
	return out[:n]
}

func TestRegistryConstructsAndRuns(t *testing.T) {
	cfg := testConfig()
	stream := uniformBlocks(256, 4000, 99)
	for _, name := range Names() {
		f, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		pol := f.New(cfg.Sets(), cfg.Ways)
		if pol.Name() == "" {
			t.Fatalf("%s: empty policy name", name)
		}
		st := run(cfg, pol, stream)
		if st.Accesses != 4000 {
			t.Fatalf("%s: accesses = %d", name, st.Accesses)
		}
		if st.Misses == 0 {
			t.Fatalf("%s: zero misses on a thrashing stream", name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-policy"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRegistryOverheadImplemented(t *testing.T) {
	cfg := testConfig()
	for _, name := range Names() {
		f, _ := Lookup(name)
		pol := f.New(cfg.Sets(), cfg.Ways)
		oh, ok := pol.(Overheader)
		if !ok {
			t.Fatalf("%s does not implement Overheader", name)
		}
		perSet, global := oh.OverheadBits()
		if perSet < 0 || global < 0 {
			t.Fatalf("%s reports negative overhead", name)
		}
	}
}

func TestOverheadNumbers(t *testing.T) {
	cfg := cache.L3Config // 4096 sets, 16 ways
	rows, err := OverheadTable(cfg, []string{"lru", "plru", "gippr", "2-dgippr", "4-dgippr", "drrip", "pdp"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OverheadRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// Paper Section 3.6: LRU 4 bits/block (32KB), GIPPR < 0.94 bits/block
	// (7KB), DRRIP 2 bits/block (16KB), 4-DGIPPR adds only 33 global bits.
	if got := byName["LRU"].BitsPerBlock; got != 4 {
		t.Fatalf("LRU bits/block = %v", got)
	}
	if got := byName["GIPPR"].BitsPerBlock; got >= 0.94 {
		t.Fatalf("GIPPR bits/block = %v, want < 0.94", got)
	}
	if got := byName["PLRU"].BitsPerBlock; got != byName["GIPPR"].BitsPerBlock {
		t.Fatal("GIPPR must cost exactly PLRU")
	}
	if got := byName["DRRIP"].PerSetBits; got != 32 {
		t.Fatalf("DRRIP bits/set = %v", got)
	}
	if got := byName["4-DGIPPR"].GlobalBits; got != 33 {
		t.Fatalf("4-DGIPPR global bits = %v", got)
	}
	if got := byName["2-DGIPPR"].GlobalBits; got != 11 {
		t.Fatalf("2-DGIPPR global bits = %v", got)
	}
	// Total KB for the 4MB cache: LRU 32KB, GIPPR ~7.5KB, DRRIP ~16KB.
	if kb := byName["LRU"].TotalKB; kb != 32 {
		t.Fatalf("LRU total KB = %v", kb)
	}
	if kb := byName["GIPPR"].TotalKB; kb < 7 || kb > 8 {
		t.Fatalf("GIPPR total KB = %v", kb)
	}
}

func TestFormatOverheadTable(t *testing.T) {
	rows, err := OverheadTable(cache.L3Config, []string{"lru", "pdp"})
	if err != nil {
		t.Fatal(err)
	}
	s := FormatOverheadTable(cache.L3Config, rows)
	if len(s) == 0 {
		t.Fatal("empty table")
	}
	for _, want := range []string{"LRU", "PDP", "microcontroller"} {
		if !containsStr(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPaperVectorForScaling(t *testing.T) {
	v16 := ipv.PaperWIGIPPR
	if got := paperVectorFor(16, v16); !got.Equal(v16) {
		t.Fatal("16-way vector modified")
	}
	for _, k := range []int{4, 8, 32} {
		scaled := paperVectorFor(k, v16)
		if scaled.K() != k {
			t.Fatalf("scaled to k=%d got %d", k, scaled.K())
		}
		if err := scaled.Validate(); err != nil {
			t.Fatalf("scaled vector invalid: %v", err)
		}
	}
}

func TestBitsPerBlock(t *testing.T) {
	// 15 bits/set, no global, 4096 sets, 16 ways -> 0.9375.
	if got := BitsPerBlock(15, 0, 4096, 16); got != 0.9375 {
		t.Fatalf("BitsPerBlock = %v", got)
	}
}

func TestValidateGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	validateGeometry(0, 16)
}
