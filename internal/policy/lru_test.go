package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// refLRU is an independent timestamp-based LRU used to validate GIPLR's
// stack implementation.
type refLRU struct {
	nop
	ways   int
	stamps []uint64
	clock  uint64
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{ways: ways, stamps: make([]uint64, sets*ways)}
}

func (p *refLRU) Name() string { return "ref-lru" }
func (p *refLRU) OnHit(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[int(set)*p.ways+way] = p.clock
}
func (p *refLRU) OnFill(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[int(set)*p.ways+way] = p.clock
}
func (p *refLRU) Victim(set uint32, _ trace.Record) int {
	base := int(set) * p.ways
	best := 0
	for w := 1; w < p.ways; w++ {
		if p.stamps[base+w] < p.stamps[base+best] {
			best = w
		}
	}
	return best
}

func TestTrueLRUMatchesReference(t *testing.T) {
	cfg := smallConfig()
	stream := uniformBlocks(40, 20000, 5)
	got := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	want := run(cfg, newRefLRU(cfg.Sets(), cfg.Ways), stream)
	if got.Misses != want.Misses {
		t.Fatalf("GIPLR-as-LRU misses %d != reference %d", got.Misses, want.Misses)
	}
}

func TestTrueLRUName(t *testing.T) {
	if NewTrueLRU(4, 4).Name() != "LRU" {
		t.Fatal("name")
	}
	if NewLIP(4, 4).Name() != "LIP" {
		t.Fatal("LIP name")
	}
}

func TestGIPLRVectorAccessors(t *testing.T) {
	p := NewGIPLR(4, 16, ipv.PaperGIPLR)
	if !p.Vector().Equal(ipv.PaperGIPLR) {
		t.Fatal("vector accessor")
	}
	v := p.Vector()
	v[0] = 9
	if p.Vector()[0] == 9 {
		t.Fatal("Vector leaks internal storage")
	}
}

func TestGIPLRPanics(t *testing.T) {
	bad := []func(){
		func() { NewGIPLR(4, 16, ipv.LRU(8)) },           // associativity mismatch
		func() { NewGIPLR(4, 16, make(ipv.Vector, 17)) }, // valid actually: zeros
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched vector accepted")
			}
		}()
		bad[0]()
	}()
	bad[1]() // must not panic
}

func TestLIPBeatsLRUOnThrash(t *testing.T) {
	cfg := testConfig() // 256-block capacity
	stream := cyclic(384, 40000)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	lip := run(cfg, NewLIP(cfg.Sets(), cfg.Ways), stream)
	// LRU gets zero hits on a 1.5x-capacity cyclic loop; LIP retains a
	// large stable fraction.
	if lru.Hits > 400 { // allow cold-start noise only
		t.Fatalf("LRU got %d hits on a thrashing loop", lru.Hits)
	}
	if lip.Hits < uint64(len(stream))/3 {
		t.Fatalf("LIP hits = %d of %d, expected a large retained fraction", lip.Hits, len(stream))
	}
}

func TestLRUBeatsLIPOnQuickReuse(t *testing.T) {
	cfg := testConfig()
	stream := scanWithQuickReuse(40000, 64) // per-set reuse distance ~4
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	lip := run(cfg, NewLIP(cfg.Sets(), cfg.Ways), stream)
	if lru.Misses >= lip.Misses {
		t.Fatalf("LRU misses %d should be well below LIP %d on quick-reuse scan",
			lru.Misses, lip.Misses)
	}
}

func TestGIPLRMidClimbFiltersOneShots(t *testing.T) {
	// The MidClimb vector (insert at LRU, promote through the middle)
	// behaves LIP-like on thrash.
	cfg := testConfig()
	stream := cyclic(384, 40000)
	mid := run(cfg, NewGIPLR(cfg.Sets(), cfg.Ways, ipv.MidClimb(16)), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	if mid.Misses >= lru.Misses {
		t.Fatalf("MidClimb misses %d not below LRU %d on thrash", mid.Misses, lru.Misses)
	}
}

func TestGIPLRPermutationInvariantUnderTraffic(t *testing.T) {
	cfg := smallConfig()
	p := NewGIPLR(cfg.Sets(), cfg.Ways, ipv.MidClimb(cfg.Ways))
	c := cache.New(cfg, p)
	rng := xrand.New(77)
	for i := 0; i < 20000; i++ {
		c.Access(trace.Record{Gap: 1, Addr: rng.Uint64n(64) * 64})
	}
	for set := uint32(0); set < uint32(cfg.Sets()); set++ {
		seen := make([]bool, cfg.Ways)
		for _, pos := range p.Stack(set).Positions() {
			if pos < 0 || pos >= cfg.Ways || seen[pos] {
				t.Fatalf("set %d stack corrupt: %v", set, p.Stack(set).Positions())
			}
			seen[pos] = true
		}
	}
}

func TestGIPLROverhead(t *testing.T) {
	p := NewTrueLRU(4096, 16)
	perSet, global := p.OverheadBits()
	if perSet != 64 || global != 0 {
		t.Fatalf("LRU overhead %v/%v", perSet, global)
	}
}
