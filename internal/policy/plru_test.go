package policy

import (
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

func TestGIPPRWithZeroVectorEqualsPLRU(t *testing.T) {
	// GIPPR with the all-zero vector must be bit-identical to plain tree
	// PseudoLRU: SetPosition(w, 0) writes exactly the bits Promote(w) does.
	cfg := testConfig()
	plru := NewPLRU(cfg.Sets(), cfg.Ways)
	gip := NewGIPPR(cfg.Sets(), cfg.Ways, ipv.LRU(cfg.Ways))
	ca, cb := cache.New(cfg, plru), cache.New(cfg, gip)
	rng := xrand.New(123)
	for i := 0; i < 50000; i++ {
		r := trace.Record{Gap: 1, Addr: rng.Uint64n(600) * 64}
		if ca.Access(r) != cb.Access(r) {
			t.Fatalf("PLRU and GIPPR[0...0] diverged at access %d", i)
		}
	}
	for set := uint32(0); set < uint32(cfg.Sets()); set++ {
		if plru.Tree(set).Bits() != gip.Tree(set).Bits() {
			t.Fatalf("tree bits diverged in set %d", set)
		}
	}
}

func TestPLRUApproximatesLRU(t *testing.T) {
	// The paper: "PLRU provides performance almost equivalent to full
	// LRU." Allow a few percent miss-count difference on a mixed stream.
	cfg := testConfig()
	stream := append(uniformBlocks(128, 30000, 9), scanWithQuickReuse(30000, 64)...)
	plru := run(cfg, NewPLRU(cfg.Sets(), cfg.Ways), stream)
	lru := run(cfg, NewTrueLRU(cfg.Sets(), cfg.Ways), stream)
	ratio := float64(plru.Misses) / float64(lru.Misses)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("PLRU/LRU miss ratio = %.3f, expected near 1", ratio)
	}
}

func TestGIPPRInsertionPositionRespected(t *testing.T) {
	// With a single set, fill the cache and verify the incoming block's
	// PseudoLRU position equals the vector's insertion entry.
	cfg := cache.Config{Name: "one", SizeBytes: 16 * 64, Ways: 16, BlockBytes: 64, HitLatency: 1}
	v := ipv.LRU(16)
	v[16] = 13 // insert at position 13
	p := NewGIPPR(cfg.Sets(), cfg.Ways, v)
	c := cache.New(cfg, p)
	for b := uint64(0); b < 16; b++ {
		c.Access(trace.Record{Gap: 1, Addr: b * 64})
	}
	// Next fill must land at position 13 in the tree.
	c.Access(trace.Record{Gap: 1, Addr: 99 * 64})
	tree := p.Tree(0)
	found := false
	for w := 0; w < 16; w++ {
		if tree.Position(w) == 13 {
			found = true
		}
	}
	if !found {
		t.Fatal("no way at the insertion position after a fill")
	}
}

func TestGIPPRLIPLikeVectorResistsThrash(t *testing.T) {
	cfg := testConfig()
	v := ipv.LIP(16) // PLRU-position insertion
	stream := cyclic(384, 40000)
	gip := run(cfg, NewGIPPR(cfg.Sets(), cfg.Ways, v), stream)
	plru := run(cfg, NewPLRU(cfg.Sets(), cfg.Ways), stream)
	if gip.Misses >= plru.Misses {
		t.Fatalf("PLRU-insert GIPPR misses %d not below PLRU %d on thrash",
			gip.Misses, plru.Misses)
	}
	if gip.Hits < uint64(len(stream))/3 {
		t.Fatalf("GIPPR-LIP hits %d of %d too low", gip.Hits, len(stream))
	}
}

func TestGIPPRSetNameAndVector(t *testing.T) {
	p := NewGIPPR(4, 16, ipv.PaperWIGIPPR)
	p.SetName("WN-GIPPR")
	if p.Name() != "WN-GIPPR" {
		t.Fatal("SetName ignored")
	}
	if !p.Vector().Equal(ipv.PaperWIGIPPR) {
		t.Fatal("vector accessor")
	}
}

func TestGIPPRPanicsOnMismatchedVector(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	NewGIPPR(4, 16, ipv.LRU(8))
}

func TestDGIPPR2IdenticalVectorsEqualGIPPR(t *testing.T) {
	cfg := testConfig()
	v := ipv.PaperWIGIPPR
	a := NewDGIPPR2(cfg.Sets(), cfg.Ways, [2]ipv.Vector{v, v})
	b := NewGIPPR(cfg.Sets(), cfg.Ways, v)
	ca, cb := cache.New(cfg, a), cache.New(cfg, b)
	rng := xrand.New(321)
	for i := 0; i < 40000; i++ {
		r := trace.Record{Gap: 1, Addr: rng.Uint64n(500) * 64}
		if ca.Access(r) != cb.Access(r) {
			t.Fatalf("DGIPPR2[v,v] diverged from GIPPR[v] at access %d", i)
		}
	}
}

func TestDGIPPR4IdenticalVectorsEqualGIPPR(t *testing.T) {
	cfg := testConfig()
	v := ipv.PaperWIGIPPR
	a := NewDGIPPR4(cfg.Sets(), cfg.Ways, [4]ipv.Vector{v, v, v, v})
	b := NewGIPPR(cfg.Sets(), cfg.Ways, v)
	ca, cb := cache.New(cfg, a), cache.New(cfg, b)
	rng := xrand.New(654)
	for i := 0; i < 40000; i++ {
		r := trace.Record{Gap: 1, Addr: rng.Uint64n(500) * 64}
		if ca.Access(r) != cb.Access(r) {
			t.Fatalf("DGIPPR4[v x4] diverged from GIPPR[v] at access %d", i)
		}
	}
}

func TestDGIPPR2AdaptsToThrash(t *testing.T) {
	// Duel between pure-PLRU-like (MRU insert) and LIP-like vectors: on a
	// thrashing loop the LIP-like vector must win and pull the followers
	// close to the static LIP-like policy.
	cfg := cache.L3Config
	mru := ipv.LRU(16)
	lip := ipv.LIP(16)
	stream := cyclic(90<<10, 500_000)
	d := run(cfg, NewDGIPPR2(cfg.Sets(), cfg.Ways, [2]ipv.Vector{mru, lip}), stream)
	static := run(cfg, NewGIPPR(cfg.Sets(), cfg.Ways, lip), stream)
	plru := run(cfg, NewPLRU(cfg.Sets(), cfg.Ways), stream)
	if d.Misses >= plru.Misses {
		t.Fatalf("2-DGIPPR (%d misses) did not beat PLRU (%d) on thrash", d.Misses, plru.Misses)
	}
	// Within 25% of the static winner (leader sets for the losing vector
	// keep missing, so exact parity is impossible).
	if float64(d.Misses) > 1.25*float64(static.Misses) {
		t.Fatalf("2-DGIPPR misses %d too far above static LIP-like %d", d.Misses, static.Misses)
	}
}

func TestDGIPPR2WinnerFlips(t *testing.T) {
	cfg := cache.L3Config
	mru := ipv.LRU(16)
	lip := ipv.LIP(16)
	p := NewDGIPPR2(cfg.Sets(), cfg.Ways, [2]ipv.Vector{mru, lip})
	c := cache.New(cfg, p)
	// Thrash: LIP side (index 1) should win.
	for i, b := range cyclic(90<<10, 400_000) {
		_ = i
		c.Access(trace.Record{Gap: 1, Addr: uint64(b) * 64})
	}
	if p.Winner() != 1 {
		t.Fatalf("winner after thrash = %d, want 1 (LIP-like)", p.Winner())
	}
}

func TestDGIPPR4TournamentSelects(t *testing.T) {
	cfg := cache.L3Config
	vecs := [4]ipv.Vector{ipv.LRU(16), ipv.LIP(16), ipv.MidClimb(16), ipv.PaperWIGIPPR}
	p := NewDGIPPR4(cfg.Sets(), cfg.Ways, vecs)
	c := cache.New(cfg, p)
	for _, b := range cyclic(90<<10, 400_000) {
		c.Access(trace.Record{Gap: 1, Addr: uint64(b) * 64})
	}
	w := p.Winner()
	if w == 0 {
		t.Fatalf("tournament still on MRU-insert vector after heavy thrash")
	}
}

func TestNewDGIPPRN(t *testing.T) {
	v := ipv.LRU(16)
	if _, ok := NewDGIPPRN(16, 16, []ipv.Vector{v}).(*GIPPR); !ok {
		t.Fatal("1 vector should build GIPPR")
	}
	if _, ok := NewDGIPPRN(16, 16, []ipv.Vector{v, v}).(*DGIPPR2); !ok {
		t.Fatal("2 vectors should build DGIPPR2")
	}
	if _, ok := NewDGIPPRN(16, 16, []ipv.Vector{v, v, v, v}).(*DGIPPR4); !ok {
		t.Fatal("4 vectors should build DGIPPR4")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("3 vectors accepted")
		}
	}()
	NewDGIPPRN(16, 16, []ipv.Vector{v, v, v})
}

func TestPLRUVictimNeverJustPromoted(t *testing.T) {
	cfg := smallConfig()
	p := NewPLRU(cfg.Sets(), cfg.Ways)
	c := cache.New(cfg, p)
	rng := xrand.New(42)
	var last uint64 = ^uint64(0)
	for i := 0; i < 20000; i++ {
		b := rng.Uint64n(64)
		hit := c.Access(trace.Record{Gap: 1, Addr: b * 64})
		if hit && b == last {
			// Immediately re-accessing the same block must hit.
			continue
		}
		last = b
	}
	// Structural invariant: in every set the victim's position is k-1.
	for set := uint32(0); set < uint32(cfg.Sets()); set++ {
		tr := p.Tree(set)
		if tr.Position(tr.Victim()) != cfg.Ways-1 {
			t.Fatalf("set %d: victim not at PLRU position", set)
		}
	}
}

func TestDGIPPRBracketIdenticalVectorsEqualGIPPR(t *testing.T) {
	cfg := testConfig()
	v := ipv.PaperWIGIPPR
	a := NewDGIPPRBracket(cfg.Sets(), cfg.Ways, []ipv.Vector{v, v, v, v, v, v, v, v})
	b := NewGIPPR(cfg.Sets(), cfg.Ways, v)
	ca, cb := cache.New(cfg, a), cache.New(cfg, b)
	rng := xrand.New(91)
	for i := 0; i < 30000; i++ {
		r := trace.Record{Gap: 1, Addr: rng.Uint64n(500) * 64}
		if ca.Access(r) != cb.Access(r) {
			t.Fatalf("bracket[v x8] diverged from GIPPR[v] at access %d", i)
		}
	}
}

func TestDGIPPRBracketAdapts(t *testing.T) {
	cfg := cache.L3Config
	vecs := []ipv.Vector{
		ipv.LRU(16), ipv.LIP(16), ipv.MidClimb(16), ipv.PaperWIGIPPR,
		ipv.PaperWI4DGIPPR[0], ipv.PaperWI4DGIPPR[1], ipv.PaperWI4DGIPPR[2], ipv.PaperWI4DGIPPR[3],
	}
	stream := cyclic(90<<10, 500_000)
	br := run(cfg, NewDGIPPRBracket(cfg.Sets(), cfg.Ways, vecs), stream)
	plru := run(cfg, NewPLRU(cfg.Sets(), cfg.Ways), stream)
	if br.Misses >= plru.Misses {
		t.Fatalf("8-vector bracket (%d misses) did not beat PLRU (%d) on thrash", br.Misses, plru.Misses)
	}
}

func TestDGIPPRBracketPanics(t *testing.T) {
	v := ipv.LRU(16)
	for i, f := range []func(){
		func() { NewDGIPPRBracket(16, 16, []ipv.Vector{v}) },
		func() { NewDGIPPRBracket(16, 16, []ipv.Vector{v, v, v}) },
		func() { NewDGIPPRBracket(16, 16, []ipv.Vector{v, ipv.LRU(8)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
}
