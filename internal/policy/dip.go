package policy

import (
	"gippr/internal/cache"
	"gippr/internal/dueling"
	"gippr/internal/recency"
	"gippr/internal/trace"
	"gippr/internal/xrand"
)

// bipEpsilonInverse is the bimodal throttle: BIP inserts at MRU once every
// 1/epsilon fills (Qureshi et al. use epsilon = 1/32).
const bipEpsilonInverse = 32

// BIP is bimodal insertion (Qureshi et al., ISCA 2007): hits promote to MRU
// as in LRU, but incoming blocks are inserted at the LRU position except for
// a small fraction (1/32) inserted at MRU, which lets a thrashing working
// set retain a rotating subset of itself.
type BIP struct {
	nop
	stacks []*recency.Stack
	ways   int
	rng    *xrand.RNG
}

// NewBIP returns bimodal-insertion replacement.
func NewBIP(sets, ways int) *BIP {
	validateGeometry(sets, ways)
	p := &BIP{stacks: make([]*recency.Stack, sets), ways: ways, rng: xrand.New(0x51b1)}
	for i := range p.stacks {
		p.stacks[i] = recency.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *BIP) Name() string { return "BIP" }

// OnHit implements cache.Policy.
func (p *BIP) OnHit(set uint32, way int, _ trace.Record) { p.stacks[set].TouchLRU(way) }

// Victim implements cache.Policy.
func (p *BIP) Victim(set uint32, _ trace.Record) int { return p.stacks[set].Victim() }

// OnFill implements cache.Policy: LRU-position insert, MRU with probability
// 1/32.
func (p *BIP) OnFill(set uint32, way int, _ trace.Record) {
	if p.rng.OneIn(bipEpsilonInverse) {
		p.stacks[set].MoveTo(way, 0)
	} else {
		p.stacks[set].MoveTo(way, p.ways-1)
	}
}

// OverheadBits implements Overheader: the underlying LRU stack.
func (p *BIP) OverheadBits() (float64, int) { return float64(p.ways * log2ceil(p.ways)), 0 }

// DIP is dynamic insertion policy (Qureshi et al., ISCA 2007): set-dueling
// between classic LRU insertion (MRU position) and BIP, on top of a full LRU
// stack. It is the direct intellectual ancestor of DGIPPR's vector dueling.
type DIP struct {
	nop
	stacks []*recency.Stack
	duel   *dueling.Duel
	ways   int
	rng    *xrand.RNG
}

// NewDIP returns dynamic-insertion replacement with 32 leader sets per
// policy and a 10-bit PSEL, as in the original paper.
func NewDIP(sets, ways int) *DIP {
	validateGeometry(sets, ways)
	p := &DIP{
		stacks: make([]*recency.Stack, sets),
		duel:   dueling.NewDuel(sets, leadersFor(sets, 2), 10),
		ways:   ways,
		rng:    xrand.New(0xd1b),
	}
	for i := range p.stacks {
		p.stacks[i] = recency.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *DIP) Name() string { return "DIP" }

// OnHit implements cache.Policy.
func (p *DIP) OnHit(set uint32, way int, _ trace.Record) { p.stacks[set].TouchLRU(way) }

// OnMiss implements cache.Policy.
func (p *DIP) OnMiss(set uint32, _ trace.Record) { p.duel.OnMiss(set) }

// Victim implements cache.Policy.
func (p *DIP) Victim(set uint32, _ trace.Record) int { return p.stacks[set].Victim() }

// OnFill implements cache.Policy: policy 0 = LRU (MRU insert), policy 1 =
// BIP.
func (p *DIP) OnFill(set uint32, way int, _ trace.Record) {
	if p.duel.Choose(set) == 0 {
		p.stacks[set].MoveTo(way, 0)
		return
	}
	if p.rng.OneIn(bipEpsilonInverse) {
		p.stacks[set].MoveTo(way, 0)
	} else {
		p.stacks[set].MoveTo(way, p.ways-1)
	}
}

// OverheadBits implements Overheader: LRU stack plus the 10-bit PSEL.
func (p *DIP) OverheadBits() (float64, int) { return float64(p.ways * log2ceil(p.ways)), 10 }

var (
	_ cache.Policy = (*BIP)(nil)
	_ cache.Policy = (*DIP)(nil)
	_ Overheader   = (*BIP)(nil)
	_ Overheader   = (*DIP)(nil)
)
