package policy

import (
	"fmt"
	"strings"

	"gippr/internal/cache"
)

// OverheadRow is one line of the Section 3.6 storage comparison.
type OverheadRow struct {
	Policy       string
	PerSetBits   float64
	GlobalBits   int
	BitsPerBlock float64
	TotalKB      float64
	Note         string
}

// OverheadTable computes the replacement-state storage of each named policy
// for the given geometry, reproducing the paper's Section 3.6 comparison
// (for the 4 MB 16-way LLC: LRU 32 KB, DRRIP 16 KB, PDP 24-32 KB plus a
// microcontroller, GIPPR/DGIPPR 7 KB).
func OverheadTable(cfg cache.Config, names []string) ([]OverheadRow, error) {
	sets := cfg.Sets()
	rows := make([]OverheadRow, 0, len(names))
	for _, n := range names {
		f, err := Lookup(n)
		if err != nil {
			return nil, err
		}
		p := f.New(sets, cfg.Ways)
		oh, ok := p.(Overheader)
		if !ok {
			return nil, fmt.Errorf("policy: %s does not report overhead", f.Name)
		}
		perSet, global := oh.OverheadBits()
		row := OverheadRow{
			Policy:       f.Name,
			PerSetBits:   perSet,
			GlobalBits:   global,
			BitsPerBlock: BitsPerBlock(perSet, global, sets, cfg.Ways),
			TotalKB:      (perSet*float64(sets) + float64(global)) / 8 / 1024,
		}
		if n == "pdp" {
			row.Note = "plus a ~10K-NAND-gate microcontroller (not counted in bits)"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatOverheadTable renders rows as an aligned ASCII table.
func FormatOverheadTable(cfg cache.Config, rows []OverheadRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Replacement-state storage for %s (%d KB, %d-way, %d sets)\n",
		cfg.Name, cfg.SizeBytes/1024, cfg.Ways, cfg.Sets())
	fmt.Fprintf(&sb, "%-10s %12s %12s %14s %10s  %s\n",
		"policy", "bits/set", "global bits", "bits/block", "total KB", "notes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12.1f %12d %14.3f %10.2f  %s\n",
			r.Policy, r.PerSetBits, r.GlobalBits, r.BitsPerBlock, r.TotalKB, r.Note)
	}
	return sb.String()
}
