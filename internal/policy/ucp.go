package policy

import (
	"gippr/internal/cache"
	"gippr/internal/recency"
	"gippr/internal/trace"
)

// UMON configuration: sampled sets per core and the recomputation epoch.
const (
	umonSampleMask  = 63    // monitor sets where set & mask == 0 (1 in 64)
	umonEpochLength = 65536 // accesses between allocation recomputations
)

// umon is a utility monitor (Qureshi & Patt's UCP, MICRO 2006): an
// auxiliary tag directory that tracks, for one core, the LRU stack each
// sampled set would have if the core owned the cache alone, and counts hits
// per recency position. hits[p] is the marginal utility of granting the
// core its (p+1)-th way.
type umon struct {
	ways   int
	tags   map[uint32][]uint64 // sampled set -> ATD tags, MRU first
	hits   []uint64            // hits by recency position
	misses uint64
}

func newUMON(ways int) *umon {
	return &umon{ways: ways, tags: make(map[uint32][]uint64), hits: make([]uint64, ways)}
}

// access records one reference by the monitored core to a sampled set.
func (u *umon) access(set uint32, block uint64) {
	atd := u.tags[set]
	for p, b := range atd {
		if b == block {
			u.hits[p]++
			copy(atd[1:p+1], atd[:p])
			atd[0] = block
			return
		}
	}
	u.misses++
	if len(atd) < u.ways {
		atd = append(atd, 0)
	}
	copy(atd[1:], atd)
	atd[0] = block
	u.tags[set] = atd
}

// decay halves the counters so allocations adapt to phase changes.
func (u *umon) decay() {
	for p := range u.hits {
		u.hits[p] >>= 1
	}
	u.misses >>= 1
}

// ucpAllocate assigns ways to cores with UCP's lookahead algorithm
// (Qureshi & Patt, MICRO 2006): utility curves are not concave — a core
// whose working set hits only at depth d gains nothing until it owns d+1
// ways — so each round every core bids the best *density* of hits over a
// block of additional ways (max over j of sum(hits[a..a+j-1])/j), and the
// winning block is granted whole. Every core keeps at least one way.
func ucpAllocate(monitors []*umon, ways int) []int {
	alloc := make([]int, len(monitors))
	remaining := ways
	for i := range alloc {
		alloc[i] = 1
		remaining--
	}
	for remaining > 0 {
		bestCore, bestLen, bestDensity := -1, 0, -1.0
		for c, m := range monitors {
			var sum uint64
			for j := 1; j <= remaining && alloc[c]+j <= ways; j++ {
				sum += m.hits[alloc[c]+j-1]
				d := float64(sum) / float64(j)
				// Density ties go to the core currently holding less, so
				// identical utility curves split the cache evenly.
				if d > bestDensity || (d == bestDensity && bestCore >= 0 && alloc[c] < alloc[bestCore]) {
					bestCore, bestLen, bestDensity = c, j, d
				}
			}
		}
		if bestCore < 0 {
			break
		}
		alloc[bestCore] += bestLen
		remaining -= bestLen
	}
	return alloc
}

// PIPPDyn is PIPP with UCP utility monitors choosing the per-core
// allocations at run time, completing the cited design (Xie & Loh pair
// PIPP's insertion/promotion mechanism with UMON-driven targets).
type PIPPDyn struct {
	nop
	stacks   []*recency.Stack
	monitors []*umon
	alloc    []int
	ways     int
	accesses uint64
	rng      *pippRNG
}

// pippRNG is a minimal inlined xorshift so PIPPDyn's promotion throttle
// stays allocation-free on the hot path.
type pippRNG struct{ s uint64 }

func (r *pippRNG) bool75() bool {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s&3 != 0 // 3 in 4
}

// NewPIPPDyn returns dynamic-partition PIPP for the given core count.
func NewPIPPDyn(sets, ways, cores int) *PIPPDyn {
	validateGeometry(sets, ways)
	if cores < 1 || cores > ways {
		panic("policy: PIPPDyn core count out of range")
	}
	p := &PIPPDyn{
		stacks: make([]*recency.Stack, sets),
		alloc:  make([]int, cores),
		ways:   ways,
		rng:    &pippRNG{s: 0x9e3779b97f4a7c15},
	}
	for i := range p.stacks {
		p.stacks[i] = recency.New(ways)
	}
	for c := 0; c < cores; c++ {
		p.monitors = append(p.monitors, newUMON(ways))
		p.alloc[c] = ways / cores
		if c < ways%cores {
			p.alloc[c]++
		}
	}
	return p
}

// Name implements cache.Policy.
func (p *PIPPDyn) Name() string { return "PIPP-dyn" }

// Allocations returns a copy of the current per-core partition targets.
func (p *PIPPDyn) Allocations() []int { return append([]int(nil), p.alloc...) }

func (p *PIPPDyn) tick(set uint32, r trace.Record) {
	p.accesses++
	if set&umonSampleMask == 0 && int(r.Core) < len(p.monitors) {
		p.monitors[r.Core].access(set, r.Addr>>6)
	}
	if p.accesses%umonEpochLength == 0 {
		p.alloc = ucpAllocate(p.monitors, p.ways)
		for _, m := range p.monitors {
			m.decay()
		}
	}
}

// OnHit implements cache.Policy: single-step promotion with probability 3/4.
func (p *PIPPDyn) OnHit(set uint32, way int, r trace.Record) {
	p.tick(set, r)
	st := p.stacks[set]
	if pos := st.Position(way); pos > 0 && p.rng.bool75() {
		st.MoveTo(way, pos-1)
	}
}

// OnMiss implements cache.Policy.
func (p *PIPPDyn) OnMiss(set uint32, r trace.Record) { p.tick(set, r) }

// Victim implements cache.Policy.
func (p *PIPPDyn) Victim(set uint32, _ trace.Record) int { return p.stacks[set].Victim() }

// OnFill implements cache.Policy: insert at the core's current allocation
// position.
func (p *PIPPDyn) OnFill(set uint32, way int, r trace.Record) {
	a := 1
	if int(r.Core) < len(p.alloc) {
		a = p.alloc[r.Core]
	}
	p.stacks[set].MoveTo(way, p.ways-a)
}

// OverheadBits implements Overheader: the LRU stack, the allocation
// registers, and the sampled ATDs (tag+position per monitored line).
func (p *PIPPDyn) OverheadBits() (float64, int) {
	atdBits := len(p.monitors) * (4096 / (umonSampleMask + 1)) * p.ways * 40
	return float64(p.ways * log2ceil(p.ways)),
		len(p.alloc)*log2ceil(p.ways+1) + atdBits
}

var (
	_ cache.Policy = (*PIPPDyn)(nil)
	_ Overheader   = (*PIPPDyn)(nil)
)
