package policy

import (
	"gippr/internal/cache"
	"gippr/internal/trace"
)

// SHiP configuration (Wu et al., MICRO 2011), SHiP-PC variant on SRRIP.
const (
	shipTableSize  = 16384 // signature history counter table entries
	shipCounterMax = 3     // 2-bit counters
)

// SHiP is signature-based hit prediction over SRRIP machinery: each fill is
// tagged with a hash of the memory instruction's PC; lines evicted without
// reuse train the signature's counter down, reused lines train it up; fills
// whose signature predicts no reuse are inserted at distant RRPV so they are
// evicted quickly. The paper discusses SHiP as costlier related work (5 bits
// per block plus a PC channel to the LLC); it is included here as the
// "future work" combination target.
type SHiP struct {
	nop
	st     rripState
	shct   []uint8  // signature history counters
	sig    []uint16 // per-line signature
	reused []bool   // per-line outcome bit
}

// NewSHiP returns a SHiP-PC policy.
func NewSHiP(sets, ways int) *SHiP {
	validateGeometry(sets, ways)
	p := &SHiP{
		st:     newRRIPState(sets, ways),
		shct:   make([]uint8, shipTableSize),
		sig:    make([]uint16, sets*ways),
		reused: make([]bool, sets*ways),
	}
	// Start weakly positive so cold signatures are given a chance.
	for i := range p.shct {
		p.shct[i] = 1
	}
	return p
}

// Name implements cache.Policy.
func (p *SHiP) Name() string { return "SHiP" }

func shipSignature(pc uint64) uint16 {
	h := pc * 0x9e3779b97f4a7c15
	return uint16((h >> 48) & (shipTableSize - 1))
}

// OnHit implements cache.Policy.
func (p *SHiP) OnHit(set uint32, way int, _ trace.Record) {
	p.st.set(set)[way] = 0
	idx := int(set)*p.st.ways + way
	if !p.reused[idx] {
		p.reused[idx] = true
		if s := p.sig[idx]; p.shct[s] < shipCounterMax {
			p.shct[s]++
		}
	}
}

// OnEvict implements cache.Policy: train down signatures whose lines died
// without reuse.
func (p *SHiP) OnEvict(set uint32, way int, _ trace.Record) {
	idx := int(set)*p.st.ways + way
	if !p.reused[idx] {
		if s := p.sig[idx]; p.shct[s] > 0 {
			p.shct[s]--
		}
	}
}

// Victim implements cache.Policy.
func (p *SHiP) Victim(set uint32, _ trace.Record) int { return p.st.victim(set) }

// OnFill implements cache.Policy.
func (p *SHiP) OnFill(set uint32, way int, r trace.Record) {
	idx := int(set)*p.st.ways + way
	s := shipSignature(r.PC)
	p.sig[idx] = s
	p.reused[idx] = false
	if p.shct[s] == 0 {
		p.st.set(set)[way] = rrpvMax
	} else {
		p.st.set(set)[way] = rrpvLong
	}
}

// OverheadBits implements Overheader: RRPV + signature + outcome per block
// (the paper's "5 extra bits per cache block" counts a compressed
// signature), plus the SHCT.
func (p *SHiP) OverheadBits() (float64, int) {
	perLine := rrpvBits + 14 + 1
	return float64(perLine * p.st.ways), shipTableSize * 2
}

var (
	_ cache.Policy = (*SHiP)(nil)
	_ Overheader   = (*SHiP)(nil)
)
