package policy

import (
	"math"

	"gippr/internal/cache"
	"gippr/internal/trace"
)

// Optimal replays an LLC access stream under Belady's MIN algorithm
// (Belady, 1966): on each miss in a full set, the block with the farthest
// next reference — including the incoming block itself — is the one not
// kept. When the incoming block's own next use is the farthest, it bypasses
// the cache (the standard formulation of MIN for non-demand-paged CPU
// caches; without bypass MIN is not even optimal on a cyclic loop). MIN
// requires perfect future knowledge, so — exactly as in the paper
// (Section 4.7) — it is implemented as an offline trace algorithm over a
// captured LLC access stream, not as an online cache.Policy, and is used
// only for miss counts (the paper notes MIN is not well-defined for timing
// in an out-of-order processor).
//
// The first warm accesses populate the cache without being counted,
// mirroring cache.ReplayStream's warm-up convention so MIN's misses are
// directly comparable with every other policy's.
func Optimal(stream []trace.Record, cfg cache.Config, warm int) cache.ReplayStats {
	sets := cfg.Sets()
	ways := cfg.Ways
	setMask := uint64(sets - 1)
	blockShift := uint(0)
	for bb := cfg.BlockBytes; bb > 1; bb >>= 1 {
		blockShift++
	}
	if warm > len(stream) {
		warm = len(stream)
	}

	// Pass 1: next-use index for every access (math.MaxInt64 = never again).
	next := make([]int64, len(stream))
	last := make(map[uint64]int64, 1<<16)
	for i := len(stream) - 1; i >= 0; i-- {
		b := stream[i].Addr >> blockShift
		if n, ok := last[b]; ok {
			next[i] = n
		} else {
			next[i] = math.MaxInt64
		}
		last[b] = int64(i)
	}

	// Set sampling (cfg.SampleShift > 0): out-of-sample sets are not
	// simulated, matching the online cache's behaviour. Instructions still
	// accumulate over the whole measurement window — MIN's sampled misses
	// scale up against true kiloinstructions exactly like every other
	// policy's.
	var inSample []bool
	if cfg.SampleShift > 0 {
		inSample = make([]bool, sets)
		for s := 0; s < sets; s++ {
			inSample[s] = cfg.InSample(uint32(s))
		}
	}

	// Pass 2: simulate with farthest-next-use eviction.
	type optLine struct {
		block   uint64
		nextUse int64
	}
	occ := make([][]optLine, sets)
	var rs cache.ReplayStats
	for i, r := range stream {
		b := r.Addr >> blockShift
		s := b & setMask
		counted := i >= warm
		if inSample != nil && !inSample[s] {
			if counted {
				rs.Instructions += uint64(r.Gap)
			}
			continue
		}
		lines := occ[s]
		if counted {
			rs.Accesses++
			rs.Instructions += uint64(r.Gap)
		}
		hit := false
		for j := range lines {
			if lines[j].block == b {
				lines[j].nextUse = next[i]
				hit = true
				break
			}
		}
		if hit {
			if counted {
				rs.Hits++
			}
			continue
		}
		if counted {
			rs.Misses++
		}
		if len(lines) < ways {
			occ[s] = append(lines, optLine{block: b, nextUse: next[i]})
			continue
		}
		victim, far := 0, int64(-1)
		for j := range lines {
			if lines[j].nextUse > far {
				victim, far = j, lines[j].nextUse
			}
		}
		if next[i] >= far {
			continue // bypass: the incoming block is re-used farthest of all
		}
		lines[victim] = optLine{block: b, nextUse: next[i]}
	}
	return rs
}
