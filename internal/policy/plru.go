package policy

import (
	"fmt"

	"gippr/internal/cache"
	"gippr/internal/dueling"
	"gippr/internal/ipv"
	"gippr/internal/plrutree"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// PLRU is standard tree-based PseudoLRU (paper Section 3.1): on a hit or a
// fill the touched block is promoted to the PMRU position; the victim is the
// PLRU block found by walking the tree. k-1 bits per set.
type PLRU struct {
	nop
	trees []plrutree.Tree
	ways  int
	tel   *telemetry.Sink
}

// NewPLRU returns tree-based PseudoLRU replacement. ways must be a power of
// two.
func NewPLRU(sets, ways int) *PLRU {
	validateGeometry(sets, ways)
	trees := make([]plrutree.Tree, sets)
	for i := range trees {
		trees[i] = plrutree.New(ways)
	}
	return &PLRU{trees: trees, ways: ways}
}

// Name implements cache.Policy.
func (p *PLRU) Name() string { return "PLRU" }

// SetTelemetry implements cache.Instrumented.
func (p *PLRU) SetTelemetry(s *telemetry.Sink) { p.tel = s }

// OnHit implements cache.Policy.
func (p *PLRU) OnHit(set uint32, way int, _ trace.Record) {
	t := &p.trees[set]
	if p.tel != nil {
		p.tel.Promote(t.Position(way), 0)
	}
	t.Promote(way)
}

// OnFill implements cache.Policy.
func (p *PLRU) OnFill(set uint32, way int, _ trace.Record) {
	if p.tel != nil {
		p.tel.Insert(0)
	}
	p.trees[set].Promote(way)
}

// Victim implements cache.Policy.
func (p *PLRU) Victim(set uint32, _ trace.Record) int { return p.trees[set].Victim() }

// Tree exposes one set's tree (for tests and the batched replay kernel's
// state seeding/write-back).
func (p *PLRU) Tree(set uint32) *plrutree.Tree { return &p.trees[set] }

// PackedIPV implements batchreplay.Packable: plain PseudoLRU is IPV over
// tree-PLRU with the all-zero vector (hits and fills promote to position 0,
// victim is the tree-PLRU block), so replays may run through the batched
// branch-free kernel.
func (p *PLRU) PackedIPV() ([]int, bool) { return make([]int, p.ways+1), true }

// OverheadBits implements Overheader: k-1 bits per set.
func (p *PLRU) OverheadBits() (float64, int) { return float64(p.ways - 1), 0 }

// GIPPR is the paper's main contribution (Section 3.4): tree-based
// PseudoLRU whose insertion and promotion are driven by an evolved IPV. A
// hit on a block at PseudoLRU-stack position i rewrites its leaf-to-root
// path so it occupies position V[i]; a fill places the incoming block at
// position V[k]. Storage is identical to plain PseudoLRU: k-1 bits per set.
type GIPPR struct {
	nop
	name  string
	vec   ipv.Vector
	trees []plrutree.Tree
	ways  int
	tel   *telemetry.Sink
}

// NewGIPPR returns a GIPPR policy with the given vector.
func NewGIPPR(sets, ways int, v ipv.Vector) *GIPPR {
	validateGeometry(sets, ways)
	if err := v.Validate(); err != nil {
		panic(err)
	}
	if v.K() != ways {
		panic("policy: GIPPR vector associativity mismatch")
	}
	p := &GIPPR{
		name:  "GIPPR" + v.String(),
		vec:   v.Clone(),
		trees: make([]plrutree.Tree, sets),
		ways:  ways,
	}
	for i := range p.trees {
		p.trees[i] = plrutree.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *GIPPR) Name() string { return p.name }

// SetName overrides the report name (e.g. "WN1-GIPPR").
func (p *GIPPR) SetName(n string) { p.name = n }

// Vector returns the IPV in use.
func (p *GIPPR) Vector() ipv.Vector { return p.vec.Clone() }

// SetTelemetry implements cache.Instrumented.
func (p *GIPPR) SetTelemetry(s *telemetry.Sink) { p.tel = s }

// OnHit implements cache.Policy: move the block from its PseudoLRU position
// i to V[i].
func (p *GIPPR) OnHit(set uint32, way int, _ trace.Record) {
	t := &p.trees[set]
	from := t.Position(way)
	to := p.vec.Promotion(from)
	if p.tel != nil {
		p.tel.Promote(from, to)
	}
	t.SetPosition(way, to)
}

// OnFill implements cache.Policy: place the incoming block at V[k].
func (p *GIPPR) OnFill(set uint32, way int, _ trace.Record) {
	if p.tel != nil {
		p.tel.Insert(p.vec.Insertion())
	}
	p.trees[set].SetPosition(way, p.vec.Insertion())
}

// Victim implements cache.Policy: the PLRU block (position k-1).
func (p *GIPPR) Victim(set uint32, _ trace.Record) int { return p.trees[set].Victim() }

// Tree exposes one set's tree (for tests and the batched replay kernel's
// state seeding/write-back).
func (p *GIPPR) Tree(set uint32) *plrutree.Tree { return &p.trees[set] }

// PackedIPV implements batchreplay.Packable: GIPPR is by definition IPV
// over tree-PLRU with no further state, so replays may run through the
// batched branch-free kernel. (The dueling DGIPPR variants do not implement
// this — their per-miss PSEL updates are outside the kernel's model.)
func (p *GIPPR) PackedIPV() ([]int, bool) { return append([]int(nil), p.vec...), true }

// OverheadBits implements Overheader: k-1 bits per set, same as PseudoLRU.
func (p *GIPPR) OverheadBits() (float64, int) { return float64(p.ways - 1), 0 }

// DGIPPR2 is the two-vector dynamic GIPPR (paper Section 3.5): 32 leader
// sets per vector duel through a single 11-bit PSEL counter; follower sets
// apply the winning vector. The PseudoLRU bits are shared across vectors —
// switching vectors never touches the trees.
type DGIPPR2 struct {
	nop
	name  string
	vecs  [2]ipv.Vector
	trees []plrutree.Tree
	duel  *dueling.Duel
	ways  int
	tel   *telemetry.Sink
}

// NewDGIPPR2 returns a 2-vector DGIPPR with the paper's duel configuration.
func NewDGIPPR2(sets, ways int, vecs [2]ipv.Vector) *DGIPPR2 {
	validateGeometry(sets, ways)
	for _, v := range vecs {
		if err := v.Validate(); err != nil {
			panic(err)
		}
		if v.K() != ways {
			panic("policy: DGIPPR2 vector associativity mismatch")
		}
	}
	p := &DGIPPR2{
		name:  "2-DGIPPR",
		vecs:  [2]ipv.Vector{vecs[0].Clone(), vecs[1].Clone()},
		trees: make([]plrutree.Tree, sets),
		duel:  dueling.NewDuel(sets, leadersFor(sets, 2), dueling.CounterBits11),
		ways:  ways,
	}
	for i := range p.trees {
		p.trees[i] = plrutree.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *DGIPPR2) Name() string { return p.name }

// SetName overrides the report name.
func (p *DGIPPR2) SetName(n string) { p.name = n }

func (p *DGIPPR2) vec(set uint32) ipv.Vector { return p.vecs[p.duel.Choose(set)] }

// SetTelemetry implements cache.Instrumented.
func (p *DGIPPR2) SetTelemetry(s *telemetry.Sink) { p.tel = s }

// OnMiss implements cache.Policy: train the duel on leader-set misses.
func (p *DGIPPR2) OnMiss(set uint32, _ trace.Record) {
	if p.tel != nil {
		p.tel.Vote(p.duel.Leader(set))
	}
	p.duel.OnMiss(set)
}

// OnHit implements cache.Policy.
func (p *DGIPPR2) OnHit(set uint32, way int, _ trace.Record) {
	t := &p.trees[set]
	v := p.vec(set)
	from := t.Position(way)
	to := v.Promotion(from)
	if p.tel != nil {
		p.tel.Promote(from, to)
	}
	t.SetPosition(way, to)
}

// OnFill implements cache.Policy.
func (p *DGIPPR2) OnFill(set uint32, way int, _ trace.Record) {
	pos := p.vec(set).Insertion()
	if p.tel != nil {
		p.tel.Insert(pos)
	}
	p.trees[set].SetPosition(way, pos)
}

// Victim implements cache.Policy.
func (p *DGIPPR2) Victim(set uint32, _ trace.Record) int { return p.trees[set].Victim() }

// Winner returns the vector index follower sets currently use.
func (p *DGIPPR2) Winner() int { return p.duel.Winner() }

// OverheadBits implements Overheader: k-1 bits per set plus one 11-bit
// counter for the whole cache.
func (p *DGIPPR2) OverheadBits() (float64, int) { return float64(p.ways - 1), dueling.CounterBits11 }

// DGIPPR4 is the four-vector dynamic GIPPR: multi-set-dueling with two pair
// counters and a meta counter (three 11-bit counters total). The paper
// recommends this configuration ("we recommend that PseudoLRU insertion and
// promotion be deployed using at least four IPVs").
type DGIPPR4 struct {
	nop
	name  string
	vecs  [4]ipv.Vector
	trees []plrutree.Tree
	duel  *dueling.Tournament
	ways  int
	tel   *telemetry.Sink
}

// NewDGIPPR4 returns a 4-vector DGIPPR with the paper's duel configuration.
func NewDGIPPR4(sets, ways int, vecs [4]ipv.Vector) *DGIPPR4 {
	return NewDGIPPR4WithDuel(sets, ways, vecs, leadersFor(sets, 4), dueling.CounterBits11)
}

// NewDGIPPR4WithDuel returns a 4-vector DGIPPR with an explicit leader-set
// count and counter width, for the set-dueling ablation studies.
func NewDGIPPR4WithDuel(sets, ways int, vecs [4]ipv.Vector, leaders, counterBits int) *DGIPPR4 {
	validateGeometry(sets, ways)
	for _, v := range vecs {
		if err := v.Validate(); err != nil {
			panic(err)
		}
		if v.K() != ways {
			panic("policy: DGIPPR4 vector associativity mismatch")
		}
	}
	p := &DGIPPR4{
		name:  "4-DGIPPR",
		trees: make([]plrutree.Tree, sets),
		duel:  dueling.NewTournament(sets, leaders, counterBits),
		ways:  ways,
	}
	for i, v := range vecs {
		p.vecs[i] = v.Clone()
	}
	for i := range p.trees {
		p.trees[i] = plrutree.New(ways)
	}
	return p
}

// Name implements cache.Policy.
func (p *DGIPPR4) Name() string { return p.name }

// SetName overrides the report name.
func (p *DGIPPR4) SetName(n string) { p.name = n }

func (p *DGIPPR4) vec(set uint32) ipv.Vector { return p.vecs[p.duel.Choose(set)] }

// SetTelemetry implements cache.Instrumented.
func (p *DGIPPR4) SetTelemetry(s *telemetry.Sink) { p.tel = s }

// OnMiss implements cache.Policy.
func (p *DGIPPR4) OnMiss(set uint32, _ trace.Record) {
	if p.tel != nil {
		p.tel.Vote(p.duel.Leader(set))
	}
	p.duel.OnMiss(set)
}

// OnHit implements cache.Policy.
func (p *DGIPPR4) OnHit(set uint32, way int, _ trace.Record) {
	t := &p.trees[set]
	v := p.vec(set)
	from := t.Position(way)
	to := v.Promotion(from)
	if p.tel != nil {
		p.tel.Promote(from, to)
	}
	t.SetPosition(way, to)
}

// OnFill implements cache.Policy.
func (p *DGIPPR4) OnFill(set uint32, way int, _ trace.Record) {
	pos := p.vec(set).Insertion()
	if p.tel != nil {
		p.tel.Insert(pos)
	}
	p.trees[set].SetPosition(way, pos)
}

// Victim implements cache.Policy.
func (p *DGIPPR4) Victim(set uint32, _ trace.Record) int { return p.trees[set].Victim() }

// Winner returns the vector index follower sets currently use.
func (p *DGIPPR4) Winner() int { return p.duel.Winner() }

// OverheadBits implements Overheader: k-1 bits per set plus three 11-bit
// counters for the whole cache (33 bits, Section 3.6).
func (p *DGIPPR4) OverheadBits() (float64, int) {
	return float64(p.ways - 1), 3 * dueling.CounterBits11
}

// NewDGIPPRN builds a DGIPPR variant from 1, 2 or 4 vectors, the shapes the
// paper evaluates. It is a convenience for sweep/ablation harnesses.
func NewDGIPPRN(sets, ways int, vecs []ipv.Vector) cache.Policy {
	switch len(vecs) {
	case 1:
		return NewGIPPR(sets, ways, vecs[0])
	case 2:
		return NewDGIPPR2(sets, ways, [2]ipv.Vector{vecs[0], vecs[1]})
	case 4:
		return NewDGIPPR4(sets, ways, [4]ipv.Vector{vecs[0], vecs[1], vecs[2], vecs[3]})
	default:
		panic(fmt.Sprintf("policy: DGIPPR supports 1, 2 or 4 vectors, got %d", len(vecs)))
	}
}

var (
	_ cache.Policy       = (*PLRU)(nil)
	_ cache.Policy       = (*GIPPR)(nil)
	_ cache.Policy       = (*DGIPPR2)(nil)
	_ cache.Policy       = (*DGIPPR4)(nil)
	_ cache.Instrumented = (*PLRU)(nil)
	_ cache.Instrumented = (*GIPPR)(nil)
	_ cache.Instrumented = (*DGIPPR2)(nil)
	_ cache.Instrumented = (*DGIPPR4)(nil)
	_ Overheader         = (*PLRU)(nil)
	_ Overheader         = (*GIPPR)(nil)
	_ Overheader         = (*DGIPPR2)(nil)
	_ Overheader         = (*DGIPPR4)(nil)
)
