package reusedist

import (
	"strings"
	"testing"
	"testing/quick"

	"gippr/internal/xrand"
)

// naiveDistance is the O(n^2) reference: distinct blocks between the
// previous access to stream[i] and position i.
func naiveDistances(stream []uint64) []int64 {
	out := make([]int64, len(stream))
	for i, b := range stream {
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if stream[j] == b {
				prev = j
				break
			}
		}
		if prev < 0 {
			out[i] = Infinite
			continue
		}
		distinct := map[uint64]bool{}
		for j := prev + 1; j < i; j++ {
			distinct[stream[j]] = true
		}
		out[i] = int64(len(distinct))
	}
	return out
}

func TestKnownSequence(t *testing.T) {
	// a b c b a: distances inf, inf, inf, 1 (c), 3 (b,c ... b,c distinct
	// after a's first access = {b,c} -> 2).
	p := New(16)
	want := []int64{Infinite, Infinite, Infinite, 1, 2}
	stream := []uint64{1, 2, 3, 2, 1}
	for i, b := range stream {
		if got := p.Access(b); got != want[i] {
			t.Fatalf("access %d: distance %d, want %d", i, got, want[i])
		}
	}
}

func TestImmediateReuseIsZero(t *testing.T) {
	p := New(8)
	p.Access(7)
	if got := p.Access(7); got != 0 {
		t.Fatalf("immediate reuse distance %d", got)
	}
}

func TestAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 200 + rng.Intn(300)
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = rng.Uint64n(40)
		}
		want := naiveDistances(stream)
		p := New(n + 1)
		for i, b := range stream {
			if p.Access(b) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicLoopDistance(t *testing.T) {
	// A cyclic loop over N blocks has constant reuse distance N-1.
	const n = 32
	p := New(8 * n)
	for round := 0; round < 7; round++ {
		for b := uint64(0); b < n; b++ {
			d := p.Access(b)
			if round == 0 {
				continue
			}
			if d != n-1 {
				t.Fatalf("round %d block %d: distance %d, want %d", round, b, d, n-1)
			}
		}
	}
}

func TestCapacityPanic(t *testing.T) {
	p := New(2)
	p.Access(1)
	p.Access(2)
	defer func() {
		if recover() == nil {
			t.Fatal("exceeding capacity did not panic")
		}
	}()
	p.Access(3)
}

func TestHistogramColdAndMean(t *testing.T) {
	h := Profile([]uint64{1, 2, 3, 1, 2, 3})
	if h.Total != 6 || h.Cold != 3 {
		t.Fatalf("total/cold = %d/%d", h.Total, h.Cold)
	}
	if h.ColdFraction() != 0.5 {
		t.Fatalf("cold fraction %v", h.ColdFraction())
	}
	if h.MeanFinite() != 2 {
		t.Fatalf("mean finite %v", h.MeanFinite())
	}
}

func TestHitRateAtMatchesLRUIntuition(t *testing.T) {
	// Loop of 32 blocks: infinite LRU cache of >= 32 blocks hits all
	// re-references; capacity 16 hits none.
	var stream []uint64
	for r := 0; r < 10; r++ {
		for b := uint64(0); b < 32; b++ {
			stream = append(stream, b)
		}
	}
	h := Profile(stream)
	reRefs := float64(h.Total-h.Cold) / float64(h.Total)
	if got := h.HitRateAt(64); got < reRefs-0.01 {
		t.Fatalf("HitRateAt(64) = %v, want ~%v", got, reRefs)
	}
	if got := h.HitRateAt(16); got != 0 {
		t.Fatalf("HitRateAt(16) = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	h := Profile([]uint64{1, 2, 3, 4, 1, 2, 3, 4}) // distances all 3
	p50 := h.Percentile(0.5)
	if p50 < 3 || p50 > 4 {
		t.Fatalf("p50 = %d for constant distance 3 (bucket upper bound expected)", p50)
	}
	empty := NewHistogram()
	if empty.Percentile(0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestStringRendering(t *testing.T) {
	h := Profile([]uint64{1, 1, 2, 1})
	s := h.String()
	if !strings.Contains(s, "cold") || !strings.Contains(s, "[") {
		t.Fatalf("rendering: %q", s)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	New(0)
}
