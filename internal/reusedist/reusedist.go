// Package reusedist computes exact reuse-distance (LRU stack distance)
// profiles of reference streams: for each access, the number of distinct
// blocks referenced since the previous access to the same block. Reuse
// distance is the analytical backbone of the policies under study — a block
// hits in a fully-associative LRU cache of capacity C exactly when its
// reuse distance is below C, and PDP's protecting distances are per-set
// reuse distances — so the profiler doubles as a workload-characterization
// tool (cmd/gippr-report's workload section) and as an oracle for tests.
//
// The implementation is Bengt Olken's classic algorithm: keep each block's
// last access time and a Fenwick tree over time slots marking which of them
// are "live" (the most recent access of some block). The reuse distance of
// an access is the number of live slots after the block's previous access:
// O(log n) per access after coordinate compression over a bounded window.
package reusedist

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Infinite is the distance reported for first-time (cold) accesses.
const Infinite = math.MaxInt64

// Profiler computes reuse distances online. The zero value is not usable;
// construct with New.
type Profiler struct {
	fen   []int          // Fenwick tree over access slots: 1 = live slot
	last  map[uint64]int // block -> slot of its most recent access
	slot  int            // next slot index (1-based for the Fenwick tree)
	dists *Histogram
}

// New returns a profiler sized for up to capacity accesses (the Fenwick
// tree is preallocated; accesses beyond the capacity panic).
func New(capacity int) *Profiler {
	if capacity < 1 {
		panic("reusedist: capacity must be positive")
	}
	return &Profiler{
		fen:   make([]int, capacity+1),
		last:  make(map[uint64]int),
		dists: NewHistogram(),
	}
}

func (p *Profiler) add(i, delta int) {
	for ; i < len(p.fen); i += i & -i {
		p.fen[i] += delta
	}
}

func (p *Profiler) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += p.fen[i]
	}
	return s
}

// Access records a reference to block and returns its reuse distance
// (Infinite for the first reference).
func (p *Profiler) Access(block uint64) int64 {
	p.slot++
	if p.slot >= len(p.fen) {
		panic(fmt.Sprintf("reusedist: capacity %d exceeded", len(p.fen)-1))
	}
	var dist int64 = Infinite
	if prev, ok := p.last[block]; ok {
		// Live slots strictly after prev = distinct blocks since then.
		dist = int64(p.sum(p.slot-1) - p.sum(prev))
		p.add(prev, -1)
	}
	p.last[block] = p.slot
	p.add(p.slot, 1)
	p.dists.Add(dist)
	return dist
}

// Histogram returns the profile accumulated so far (shared, not a copy).
func (p *Profiler) Histogram() *Histogram { return p.dists }

// Histogram accumulates reuse distances in power-of-two buckets plus a
// cold-access count.
type Histogram struct {
	// Buckets[i] counts distances in [2^(i-1), 2^i) with Buckets[0]
	// counting distance 0.
	Buckets [48]uint64
	Cold    uint64
	Total   uint64
	sum     float64
	finite  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one distance.
func (h *Histogram) Add(dist int64) {
	h.Total++
	if dist == Infinite {
		h.Cold++
		return
	}
	h.finite++
	h.sum += float64(dist)
	b := 0
	for d := dist; d > 0; d >>= 1 {
		b++
	}
	if b >= len(h.Buckets) {
		b = len(h.Buckets) - 1
	}
	h.Buckets[b]++
}

// MeanFinite returns the mean over re-references (cold accesses excluded),
// or 0 when there were none.
func (h *Histogram) MeanFinite() float64 {
	if h.finite == 0 {
		return 0
	}
	return h.sum / float64(h.finite)
}

// ColdFraction returns the fraction of accesses that were first touches.
func (h *Histogram) ColdFraction() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Cold) / float64(h.Total)
}

// HitRateAt returns the fraction of all accesses whose reuse distance is
// strictly below capacity — the hit rate of a fully-associative LRU cache
// of that capacity on this stream (cold accesses always miss). Bucket
// granularity rounds capacity down to a power of two.
func (h *Histogram) HitRateAt(capacity int64) float64 {
	if h.Total == 0 || capacity <= 0 {
		return 0
	}
	var hits uint64
	limit := 0
	for d := capacity - 1; d > 0; d >>= 1 {
		limit++
	}
	for b := 0; b <= limit && b < len(h.Buckets); b++ {
		hits += h.Buckets[b]
	}
	return float64(hits) / float64(h.Total)
}

// String renders the non-empty buckets.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %d, cold %.1f%%, mean finite distance %.0f\n",
		h.Total, 100*h.ColdFraction(), h.MeanFinite())
	for b, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if b > 0 {
			lo = int64(1) << (b - 1)
		}
		fmt.Fprintf(&sb, "  [%8d, %8d): %d\n", lo, int64(1)<<b, c)
	}
	return sb.String()
}

// Profile computes the histogram of a block stream in one call.
func Profile(blocks []uint64) *Histogram {
	p := New(len(blocks) + 1)
	for _, b := range blocks {
		p.Access(b)
	}
	return p.Histogram()
}

// Percentile returns the q-quantile (0..1) of finite distances using
// bucket upper bounds, or 0 with no finite samples.
func (h *Histogram) Percentile(q float64) int64 {
	if h.finite == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.finite)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	idxs := make([]int, 0, len(h.Buckets))
	for b := range h.Buckets {
		idxs = append(idxs, b)
	}
	sort.Ints(idxs)
	for _, b := range idxs {
		cum += h.Buckets[b]
		if cum >= target {
			return int64(1) << b
		}
	}
	return int64(1) << (len(h.Buckets) - 1)
}
