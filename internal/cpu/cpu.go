// Package cpu provides the two processor timing models of the paper's
// methodology:
//
//   - LinearModel estimates cycles as a linear function of instruction and
//     last-level-cache event counts. This is the paper's genetic-algorithm
//     fitness function (Section 4.3): fast, but blind to memory-level
//     parallelism.
//   - WindowModel is a CMP$im-like analytic model of a 4-wide out-of-order
//     core with a 128-entry instruction window (Section 4.5): dispatch is
//     limited by issue width and by in-order retirement of the instruction
//     window, so independent long-latency misses that fall within a window
//     overlap naturally (MLP), and DRAM-latency misses stall the window.
//
// Neither model is cycle-accurate; the paper's CMP$im is itself "accurate to
// within 4% of a detailed cycle-accurate simulator", and what the
// reproduction needs is the first-order coupling between miss counts, miss
// overlap and IPC.
package cpu

import (
	"gippr/internal/cache"
	"gippr/internal/trace"
)

// LinearModel estimates cycles = Instructions*BaseCPI +
// LLCAccesses*L3HitCycles + LLCMisses*MissCycles. Only LLC-level activity is
// modelled because L1/L2 behaviour is identical across the LLC policies
// being compared (their cost is folded into BaseCPI).
type LinearModel struct {
	BaseCPI     float64
	L3HitCycles float64
	MissCycles  float64
}

// DefaultLinearModel matches the simulated hierarchy: a 4-wide core with
// near-L1-resident base behaviour, a 30-cycle L3 and 200-cycle DRAM with a
// fixed MLP discount folded into the miss cost.
func DefaultLinearModel() LinearModel {
	return LinearModel{BaseCPI: 0.5, L3HitCycles: 30, MissCycles: 150}
}

// Cycles returns the estimated cycle count.
func (m LinearModel) Cycles(instructions, llcAccesses, llcMisses uint64) float64 {
	return float64(instructions)*m.BaseCPI +
		float64(llcAccesses)*m.L3HitCycles +
		float64(llcMisses)*m.MissCycles
}

// CPIFromReplay applies the model to an LLC replay result.
func (m LinearModel) CPIFromReplay(rs cache.ReplayStats) float64 {
	if rs.Instructions == 0 {
		return m.BaseCPI
	}
	return m.Cycles(rs.Instructions, rs.Accesses, rs.Misses) / float64(rs.Instructions)
}

// SampledCPI applies the model to a set-sampled replay: accesses and misses
// describe only the sampled sets, so they are scaled up by factor (the
// cache's Config.SampleFactor) before costing, while instructions already
// cover the whole stream. Callers at full fidelity (factor 1) should use
// CPIFromReplay instead — the two compute the same value mathematically but
// associate the floating-point operations differently, and full-fidelity
// paths promise bit-identical results.
func (m LinearModel) SampledCPI(rs cache.ReplayStats, factor float64) float64 {
	if rs.Instructions == 0 {
		return m.BaseCPI
	}
	cycles := float64(rs.Instructions)*m.BaseCPI +
		factor*(float64(rs.Accesses)*m.L3HitCycles+float64(rs.Misses)*m.MissCycles)
	return cycles / float64(rs.Instructions)
}

// WindowModel models a width-wide core with an inst-window of robSize
// entries. Every instruction dispatches at most width per cycle, no earlier
// than the retirement of the instruction robSize slots ahead of it, and
// retires in order when its latency has elapsed; total cycles is the last
// retirement time. Misses whose dispatch times fall within a window overlap,
// which is exactly the MLP effect the paper's linear fitness function
// cannot see (Section 4.3).
type WindowModel struct {
	width      float64
	robSize    int
	retire     []float64
	head       int
	prevRetire float64
	clock      float64
	instrs     uint64

	// MemInterval is the minimum number of cycles between successive DRAM
	// fills (the bandwidth/MSHR limit). Without it, an in-order-retire
	// window with unlimited memory concurrency makes CPI insensitive to
	// miss counts once misses are denser than one per window — every
	// window refill costs one DRAM latency regardless of how many misses
	// it contains. Real memory systems serialize on channel bandwidth and
	// MSHR occupancy; this single parameter restores that first-order
	// effect. Applied only to StepMiss accesses.
	MemInterval float64
	memReady    float64
}

// DefaultMemInterval is the default DRAM service interval in cycles (a 64-
// byte line on a core running a few GHz against tens of GB/s of bandwidth).
const DefaultMemInterval = 10

// NewWindowModel returns a model; the paper's core is NewWindowModel(4, 128).
func NewWindowModel(width, robSize int) *WindowModel {
	if width < 1 || robSize < 1 {
		panic("cpu: invalid window model parameters")
	}
	return &WindowModel{
		width:       float64(width),
		robSize:     robSize,
		retire:      make([]float64, robSize),
		MemInterval: DefaultMemInterval,
	}
}

// DefaultWindowModel is the paper's 4-wide, 128-entry configuration.
func DefaultWindowModel() *WindowModel { return NewWindowModel(4, 128) }

// Reset clears accumulated time (used at the end of cache warm-up so only
// the measurement window is timed).
func (m *WindowModel) Reset() {
	for i := range m.retire {
		m.retire[i] = 0
	}
	m.head = 0
	m.prevRetire = 0
	m.clock = 0
	m.instrs = 0
	m.memReady = 0
}

// instr dispatches one instruction with the given latency. When mem is
// true the instruction occupies the DRAM channel: its service cannot begin
// before the previous miss's slot frees (MemInterval serialization).
func (m *WindowModel) instr(latency float64, mem bool) {
	d := m.clock
	if r := m.retire[m.head]; r > d {
		d = r // window full: wait for the oldest in-window instruction
	}
	start := d
	if mem {
		if m.memReady > start {
			start = m.memReady
		}
		m.memReady = start + m.MemInterval
	}
	c := start + latency
	if c < m.prevRetire {
		c = m.prevRetire // in-order retirement
	}
	m.retire[m.head] = c
	m.head++
	if m.head == m.robSize {
		m.head = 0
	}
	m.prevRetire = c
	m.clock = d + 1/m.width
	m.instrs++
}

// bulkNonMem advances past gap-1 single-cycle instructions, simulating the
// last window's worth individually and fast-forwarding the rest. The fast
// path honours both bounds on dispatch: issue bandwidth, and the window
// drain — at most robSize instructions can be in flight past the last
// retirement, so a long-latency instruction still charges its stall even
// when followed by a huge non-memory stretch.
func (m *WindowModel) bulkNonMem(nonMem int) int {
	if nonMem <= 2*m.robSize {
		return nonMem
	}
	skip := nonMem - m.robSize
	byWidth := m.clock + float64(skip)/m.width
	byDrain := m.prevRetire + float64(skip-m.robSize)/m.width
	if byDrain > byWidth {
		byWidth = byDrain
	}
	m.clock = byWidth
	if m.prevRetire < m.clock {
		m.prevRetire = m.clock
	}
	m.instrs += uint64(skip)
	return m.robSize
}

// Step accounts one trace record whose memory access hit in a cache: gap-1
// single-cycle non-memory instructions followed by one memory instruction
// with the given latency.
func (m *WindowModel) Step(gap uint32, latency int) {
	nonMem := m.bulkNonMem(int(gap) - 1)
	for i := 0; i < nonMem; i++ {
		m.instr(1, false)
	}
	m.instr(float64(latency), false)
}

// StepMiss accounts one trace record whose memory access goes to DRAM: as
// Step, but the access also occupies a DRAM service slot, so dense miss
// streams serialize on memory bandwidth.
func (m *WindowModel) StepMiss(gap uint32, latency int) {
	nonMem := m.bulkNonMem(int(gap) - 1)
	for i := 0; i < nonMem; i++ {
		m.instr(1, false)
	}
	m.instr(float64(latency), true)
}

// Cycles returns the current total cycle count (time of the last
// retirement).
func (m *WindowModel) Cycles() float64 { return m.prevRetire }

// Instructions returns the number of instructions accounted so far.
func (m *WindowModel) Instructions() uint64 { return m.instrs }

// IPC returns instructions per cycle so far (0 before any instruction).
func (m *WindowModel) IPC() float64 {
	if m.prevRetire == 0 {
		return 0
	}
	return float64(m.instrs) / m.prevRetire
}

// RunResult summarizes a timed hierarchy simulation.
type RunResult struct {
	Instructions uint64
	Cycles       float64
	IPC          float64
	CPI          float64
	L3           cache.Stats
	LevelHits    [5]uint64 // indexed by cache.Level
}

// Run drives src through hierarchy h and the window model: the first warm
// records only warm the caches (untimed); the remainder is timed. It
// returns the measurement-window result.
func Run(h *cache.Hierarchy, src trace.Source, warm int, m *WindowModel) RunResult {
	for i := 0; i < warm; i++ {
		r, ok := src.Next()
		if !ok {
			break
		}
		h.Access(r)
	}
	h.ResetStats()
	m.Reset()
	var res RunResult
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		lvl := h.Access(r)
		res.LevelHits[lvl]++
		if lvl == cache.LevelMemory {
			m.StepMiss(r.Gap, h.Latency(lvl))
		} else {
			m.Step(r.Gap, h.Latency(lvl))
		}
	}
	res.Instructions = m.Instructions()
	res.Cycles = m.Cycles()
	res.IPC = m.IPC()
	if res.Instructions > 0 && res.Cycles > 0 {
		res.CPI = res.Cycles / float64(res.Instructions)
	}
	res.L3 = h.L3.Stats
	return res
}
