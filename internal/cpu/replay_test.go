package cpu

import (
	"reflect"
	"testing"

	"gippr/internal/cache"
	"gippr/internal/ipv"
	"gippr/internal/policy"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// replayMRU evicts the most-recently-touched way — a deliberately different
// replacement decision from replayLRU, so multi-model tests exercise models
// that diverge on the same stream.
type replayMRU struct {
	ways   int
	stamps []uint64
	clock  uint64
}

func (p *replayMRU) Name() string { return "rmru" }
func (p *replayMRU) OnHit(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[int(set)*p.ways+way] = p.clock
}
func (p *replayMRU) OnMiss(uint32, trace.Record) {}
func (p *replayMRU) OnFill(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[int(set)*p.ways+way] = p.clock
}
func (p *replayMRU) OnEvict(uint32, int, trace.Record) {}
func (p *replayMRU) Victim(set uint32, _ trace.Record) int {
	base := int(set) * p.ways
	best := 0
	for w := 1; w < p.ways; w++ {
		if p.stamps[base+w] > p.stamps[base+best] {
			best = w
		}
	}
	return best
}

// multiTestMakers builds fresh policy instances for a geometry — fresh per
// call, because policies are stateful and each replay path needs its own.
func multiTestMakers(cfg cache.Config) []func() cache.Policy {
	return []func() cache.Policy{
		func() cache.Policy { return &replayLRU{ways: cfg.Ways, stamps: make([]uint64, cfg.Sets()*cfg.Ways)} },
		func() cache.Policy { return &replayMRU{ways: cfg.Ways, stamps: make([]uint64, cfg.Sets()*cfg.Ways)} },
		func() cache.Policy { return &replayLRU{ways: cfg.Ways, stamps: make([]uint64, cfg.Sets()*cfg.Ways)} },
	}
}

func TestMultiWindowReplayMatchesSingle(t *testing.T) {
	cfg := cache.Config{Name: "r", SizeBytes: 64 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 30}
	stream := makeStream(10000, 3)
	makers := multiTestMakers(cfg)
	const warm = 1000

	pols := make([]cache.Policy, len(makers))
	models := make([]*WindowModel, len(makers))
	for i, mk := range makers {
		pols[i] = mk()
		models[i] = DefaultWindowModel()
	}
	multi := MultiWindowReplay(stream, cfg, pols, warm, models, nil)

	for i, mk := range makers {
		single := WindowReplay(stream, cfg, mk(), warm, DefaultWindowModel())
		if multi[i] != single {
			t.Errorf("model %d: multi %+v != single %+v", i, multi[i], single)
		}
	}
	// The two policies genuinely diverge — otherwise this test proves less
	// than it claims.
	if multi[0].Misses == multi[1].Misses {
		t.Fatal("LRU and MRU agreed exactly; stream too easy to distinguish models")
	}
}

func TestMultiWindowReplaySampledMatchesSingle(t *testing.T) {
	cfg := cache.Config{Name: "r", SizeBytes: 64 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 30, SampleShift: 1}
	stream := makeStream(8000, 5)
	makers := multiTestMakers(cfg)
	pols := make([]cache.Policy, len(makers))
	models := make([]*WindowModel, len(makers))
	for i, mk := range makers {
		pols[i] = mk()
		models[i] = DefaultWindowModel()
	}
	multi := MultiWindowReplay(stream, cfg, pols, 500, models, nil)
	for i, mk := range makers {
		single := WindowReplay(stream, cfg, mk(), 500, DefaultWindowModel())
		if multi[i] != single {
			t.Errorf("model %d: sampled multi %+v != single %+v", i, multi[i], single)
		}
		if multi[i].Skipped == 0 {
			t.Errorf("model %d: sampling skipped nothing", i)
		}
	}
}

func TestMultiWindowReplayTelemetry(t *testing.T) {
	cfg := cache.Config{Name: "r", SizeBytes: 64 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 30}
	stream := makeStream(6000, 3)
	makers := multiTestMakers(cfg)
	pols := make([]cache.Policy, len(makers))
	models := make([]*WindowModel, len(makers))
	sinks := make([]*telemetry.Sink, len(makers))
	for i, mk := range makers {
		pols[i] = mk()
		models[i] = DefaultWindowModel()
		if i != 1 { // leave one model uninstrumented: nil entries are legal
			sinks[i] = &telemetry.Sink{}
		}
	}
	multi := MultiWindowReplay(stream, cfg, pols, 500, models, sinks)
	for i, mk := range makers {
		single := WindowReplayTel(stream, cfg, mk(), 500, DefaultWindowModel(), nil)
		if multi[i] != single {
			t.Errorf("model %d: instrumented multi %+v != bare single %+v", i, multi[i], single)
		}
	}
	for i, s := range sinks {
		if s == nil {
			continue
		}
		if s.Accesses() != multi[i].Accesses {
			t.Errorf("sink %d saw %d accesses, replay counted %d", i, s.Accesses(), multi[i].Accesses)
		}
	}
}

func TestMultiWindowReplayEdgeCases(t *testing.T) {
	cfg := cache.Config{Name: "r", SizeBytes: 64 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 30}
	if got := MultiWindowReplay(makeStream(100, 3), cfg, nil, 10, nil, nil); got != nil {
		t.Fatalf("empty policy list returned %v", got)
	}
	// Warm beyond the stream length measures nothing.
	pols := []cache.Policy{&replayLRU{ways: 4, stamps: make([]uint64, cfg.Sets()*4)}}
	res := MultiWindowReplay(makeStream(10, 3), cfg, pols, 100, []*WindowModel{DefaultWindowModel()}, nil)
	if res[0].Accesses != 0 || res[0].Instructions != 0 {
		t.Fatalf("over-warm replay measured %+v", res[0])
	}
	for _, bad := range []func(){
		func() {
			MultiWindowReplay(nil, cfg, pols, 0, nil, nil) // models length mismatch
		},
		func() {
			MultiWindowReplay(nil, cfg, pols, 0, []*WindowModel{DefaultWindowModel()},
				[]*telemetry.Sink{nil, nil}) // sinks length mismatch
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("length mismatch not caught")
				}
			}()
			bad()
		}()
	}
}

// scalarEngine hides a policy's PackedIPV method so newReplayModel routes it
// down the scalar Cache path — the reference side of the packed-vs-scalar
// comparison. SetTelemetry is re-exposed so instrumented runs still reach
// the wrapped policy.
type scalarEngine struct{ cache.Policy }

func (s scalarEngine) SetTelemetry(t *telemetry.Sink) {
	if ins, ok := s.Policy.(cache.Instrumented); ok {
		ins.SetTelemetry(t)
	}
}

// TestMultiWindowReplayPackedMatchesScalar mixes batched-kernel models and
// scalar models in one MultiWindowReplay call: each Packable policy (PLRU,
// GIPPR) runs once through the kernel and once wrapped in scalarEngine, plus
// one policy with no packed form at all. Every kernel model must agree with
// its scalar twin — timing results and full telemetry sinks — and with a
// standalone WindowReplayTel of the same pair.
func TestMultiWindowReplayPackedMatchesScalar(t *testing.T) {
	cfg := cache.Config{Name: "r", SizeBytes: 32 * 8 * 64, Ways: 8, BlockBytes: 64, HitLatency: 30}
	const warm = 1500
	// A random stream over ~1.5x the cache's footprint mixes hits, evictions
	// and writebacks — unlike makeStream's pure scan, it makes PLRU and LIP
	// genuinely diverge, so the cross-policy sanity check below has teeth.
	stream := make([]trace.Record, 12000)
	s := uint64(0x9E3779B97F4A7C15)
	blocks := uint64(cfg.Sets()*cfg.Ways) * 3 / 2
	for i := range stream {
		s = s*6364136223846793005 + 1442695040888963407
		stream[i] = trace.Record{
			Addr:  s >> 33 % blocks * 64,
			Gap:   uint32(s>>60)%8 + 1,
			Write: s>>32&3 == 0,
		}
	}
	vec := ipv.LIP(cfg.Ways)

	makers := []func() cache.Policy{
		func() cache.Policy { return policy.NewPLRU(cfg.Sets(), cfg.Ways) },
		func() cache.Policy { return policy.NewGIPPR(cfg.Sets(), cfg.Ways, vec) },
		func() cache.Policy { return &replayLRU{ways: cfg.Ways, stamps: make([]uint64, cfg.Sets()*cfg.Ways)} },
	}
	// Sanity-check the routing itself: the first two makers must engage the
	// kernel, and the scalarEngine wrapper must defeat it.
	for i, mk := range makers {
		_, packed := cache.NewPackedReplay(cfg, mk())
		if want := i < 2; packed != want {
			t.Fatalf("maker %d: packed dispatch = %v, want %v", i, packed, want)
		}
		if _, packed := cache.NewPackedReplay(cfg, scalarEngine{mk()}); packed {
			t.Fatalf("maker %d: scalarEngine wrapper still dispatched to the kernel", i)
		}
	}

	// One call with kernel and scalar twins interleaved.
	pols := make([]cache.Policy, 0, 2*len(makers))
	models := make([]*WindowModel, 0, 2*len(makers))
	sinks := make([]*telemetry.Sink, 0, 2*len(makers))
	for _, mk := range makers {
		pols = append(pols, mk(), scalarEngine{mk()})
		models = append(models, DefaultWindowModel(), DefaultWindowModel())
		sinks = append(sinks, &telemetry.Sink{}, &telemetry.Sink{})
	}
	multi := MultiWindowReplay(stream, cfg, pols, warm, models, sinks)

	for i, mk := range makers {
		kernel, scalar := multi[2*i], multi[2*i+1]
		if kernel != scalar {
			t.Errorf("maker %d: kernel %+v != scalar twin %+v", i, kernel, scalar)
		}
		if !reflect.DeepEqual(sinks[2*i], sinks[2*i+1]) {
			t.Errorf("maker %d: kernel sink diverged from scalar twin's", i)
		}
		sink := &telemetry.Sink{}
		single := WindowReplayTel(stream, cfg, mk(), warm, DefaultWindowModel(), sink)
		if kernel != single {
			t.Errorf("maker %d: multi %+v != standalone %+v", i, kernel, single)
		}
		if !reflect.DeepEqual(sinks[2*i], sink) {
			t.Errorf("maker %d: multi sink diverged from standalone sink", i)
		}
	}
	if multi[0].Misses == multi[2].Misses {
		t.Fatal("PLRU and GIPPR agreed exactly; stream too easy to distinguish models")
	}
}

func TestLinearModelSampledCPI(t *testing.T) {
	m := DefaultLinearModel()
	rs := cache.ReplayStats{Accesses: 50, Misses: 20, Instructions: 1000}
	got := m.SampledCPI(rs, 2)
	want := (1000*m.BaseCPI + 2*(50*m.L3HitCycles+20*m.MissCycles)) / 1000
	if got != want {
		t.Fatalf("SampledCPI = %v want %v", got, want)
	}
	if got := m.SampledCPI(cache.ReplayStats{}, 2); got != m.BaseCPI {
		t.Fatalf("zero-instruction SampledCPI = %v", got)
	}
	// More misses at the same factor must cost more.
	more := m.SampledCPI(cache.ReplayStats{Accesses: 50, Misses: 30, Instructions: 1000}, 2)
	if more <= got {
		t.Fatal("SampledCPI not monotonic in misses")
	}
}

// FuzzMultiRunConsistency drives random short synthetic streams through the
// single-pass multi-model kernel and through sequential per-policy replays,
// and requires exact agreement. Any cross-model state leak in the shared
// record loop (one model's cache or window state bleeding into another's)
// shows up as a mismatch. The fuzz input encodes the stream — each record is
// (addr byte, gap byte) — plus the warm length and an optional sample shift,
// so the corpus explores full-fidelity and sampled geometries alike.
func FuzzMultiRunConsistency(f *testing.F) {
	f.Add([]byte{0, 1, 64, 1, 128, 2, 0, 1}, uint8(2), uint8(0))
	f.Add([]byte{7, 3, 7, 3, 9, 1, 200, 5, 13, 2}, uint8(0), uint8(1))
	f.Add([]byte{255, 255, 0, 0, 128, 128}, uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, warmByte, shiftByte uint8) {
		if len(data) < 2 || len(data) > 512 {
			t.Skip()
		}
		stream := make([]trace.Record, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			stream = append(stream, trace.Record{
				// Spread addresses over several sets and tags of the tiny
				// geometry below; gap 0 is legal in captured streams only as
				// a degenerate case, keep it >= 1.
				Addr:  uint64(data[i]) * 64,
				Gap:   uint32(data[i+1]%64) + 1,
				Write: data[i]&1 == 1,
			})
		}
		cfg := cache.Config{Name: "fz", SizeBytes: 8 * 2 * 64, Ways: 2, BlockBytes: 64,
			HitLatency: 30, SampleShift: uint(shiftByte % 4)}
		warm := int(warmByte) % (len(stream) + 1)
		makers := multiTestMakers(cfg)
		pols := make([]cache.Policy, len(makers))
		models := make([]*WindowModel, len(makers))
		for i, mk := range makers {
			pols[i] = mk()
			models[i] = DefaultWindowModel()
		}
		multi := MultiWindowReplay(stream, cfg, pols, warm, models, nil)
		for i, mk := range makers {
			single := WindowReplay(stream, cfg, mk(), warm, DefaultWindowModel())
			if multi[i] != single {
				t.Fatalf("model %d diverged:\nmulti  %+v\nsingle %+v", i, multi[i], single)
			}
		}
	})
}
