package cpu

import (
	"gippr/internal/cache"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// ReplayResult summarizes a timed LLC-stream replay.
type ReplayResult struct {
	Instructions uint64
	Cycles       float64
	CPI          float64
	Accesses     uint64
	Hits         uint64
	Misses       uint64
}

// WindowReplay replays a captured LLC access stream into an LLC-only cache
// with the given policy, timing it with a window model. Each record's Gap
// carries the instructions since the previous LLC access (set when the
// stream was captured), so the instructions between LLC accesses — all
// non-memory work plus L1/L2 hits, identical across LLC policies — are
// accounted as single-cycle instructions, and each LLC access costs the L3
// hit latency or L3+DRAM on a miss. The first warm records warm the cache
// untimed.
func WindowReplay(stream []trace.Record, cfg cache.Config, pol cache.Policy,
	warm int, m *WindowModel) ReplayResult {
	return WindowReplayTel(stream, cfg, pol, warm, m, nil)
}

// WindowReplayTel is WindowReplay with an optional telemetry sink attached
// to the LLC for the replay's duration. Warm-up events are discarded with
// the warm-up stats (Cache.ResetStats resets the sink), so the sink
// describes exactly the timed measurement window. A nil sink makes it
// identical to WindowReplay.
func WindowReplayTel(stream []trace.Record, cfg cache.Config, pol cache.Policy,
	warm int, m *WindowModel, tel *telemetry.Sink) ReplayResult {
	c := cache.New(cfg, pol)
	if tel != nil {
		c.SetTelemetry(tel)
	}
	if warm > len(stream) {
		warm = len(stream)
	}
	for _, r := range stream[:warm] {
		c.Access(r)
	}
	c.ResetStats()
	m.Reset()
	hitLat := cfg.HitLatency
	missLat := cfg.HitLatency + cache.DRAMLatency
	for _, r := range stream[warm:] {
		if c.Access(r) {
			m.Step(r.Gap, hitLat)
		} else {
			m.StepMiss(r.Gap, missLat)
		}
	}
	res := ReplayResult{
		Instructions: m.Instructions(),
		Cycles:       m.Cycles(),
		Accesses:     c.Stats.Accesses,
		Hits:         c.Stats.Hits,
		Misses:       c.Stats.Misses,
	}
	if res.Instructions > 0 {
		res.CPI = res.Cycles / float64(res.Instructions)
	}
	return res
}
