package cpu

import (
	"gippr/internal/batchreplay"
	"gippr/internal/cache"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// ReplayResult summarizes a timed LLC-stream replay.
type ReplayResult struct {
	Instructions uint64
	Cycles       float64
	CPI          float64
	Accesses     uint64
	Hits         uint64
	Misses       uint64
	// Skipped counts accesses to out-of-sample sets when the replayed cache
	// uses set sampling (cache.Config.SampleShift > 0); 0 at full fidelity.
	Skipped uint64
}

// replayModel is one policy's simulation state inside a (multi-)window
// replay: either the batched branch-free kernel (when the policy opts in
// via batchreplay.Packable) or a scalar cache, plus the window timing
// model. Both paths observe the records of each block in stream order, so
// every model's result is bit-identical whichever engine carries it.
type replayModel struct {
	pr *cache.PackedReplay // batched path; nil for scalar policies
	c  *cache.Cache        // scalar path; nil when pr is set
	m  *WindowModel
}

func newReplayModel(cfg cache.Config, pol cache.Policy, m *WindowModel, tel *telemetry.Sink) replayModel {
	if pr, ok := cache.NewPackedReplay(cfg, pol); ok {
		if tel != nil {
			pr.K.SetTelemetry(tel)
		}
		return replayModel{pr: pr, m: m}
	}
	c := cache.New(cfg, pol)
	if tel != nil {
		c.SetTelemetry(tel)
	}
	return replayModel{c: c, m: m}
}

// warmBlock models one block untimed.
func (rm *replayModel) warmBlock(blk []trace.Record, hits *batchreplay.HitBits) {
	if rm.pr != nil {
		rm.pr.K.AccessBlock(blk, hits)
		return
	}
	for _, r := range blk {
		rm.c.Access(r)
	}
}

// reset discards warm-up stats/telemetry and resets the timing model.
func (rm *replayModel) reset() {
	if rm.pr != nil {
		rm.pr.K.ResetStats()
	} else {
		rm.c.ResetStats()
	}
	rm.m.Reset()
}

// measureBlock models one block and steps the window model per record. The
// batched path fills the hit bitmap first and then walks it; the scalar
// path interleaves, exactly as the pre-batching loop did — either way each
// record's timing step follows its own cache access in order.
func (rm *replayModel) measureBlock(blk []trace.Record, hits *batchreplay.HitBits, hitLat, missLat int) {
	if rm.pr != nil {
		rm.pr.K.AccessBlock(blk, hits)
		for i := range blk {
			if hits.Bit(i) {
				rm.m.Step(blk[i].Gap, hitLat)
			} else {
				rm.m.StepMiss(blk[i].Gap, missLat)
			}
		}
		return
	}
	for i := range blk {
		if rm.c.Access(blk[i]) {
			rm.m.Step(blk[i].Gap, hitLat)
		} else {
			rm.m.StepMiss(blk[i].Gap, missLat)
		}
	}
}

// result finalizes the model's counters, writing replacement state back to
// the policy when the batched path carried it.
func (rm *replayModel) result() ReplayResult {
	var st batchreplay.Stats
	if rm.pr != nil {
		rm.pr.Finish()
		st = rm.pr.K.Stats()
	} else {
		s := rm.c.Stats
		st = batchreplay.Stats{
			Accesses: s.Accesses, Hits: s.Hits, Misses: s.Misses,
			Evictions: s.Evictions, Writes: s.Writes, Writebacks: s.Writebacks,
			Skipped: s.Skipped,
		}
	}
	res := ReplayResult{
		Instructions: rm.m.Instructions(),
		Cycles:       rm.m.Cycles(),
		Accesses:     st.Accesses,
		Hits:         st.Hits,
		Misses:       st.Misses,
		Skipped:      st.Skipped,
	}
	if res.Instructions > 0 {
		res.CPI = res.Cycles / float64(res.Instructions)
	}
	return res
}

// replayAll drives every model through the stream in BlockSize chunks: the
// warm prefix untimed, then a reset, then the measured remainder. Each
// model consumes whole blocks at a time, so per-model event order matches a
// standalone replay record for record.
func replayAll(stream []trace.Record, ms []replayModel, warm int, hitLat, missLat int) {
	if warm > len(stream) {
		warm = len(stream)
	}
	var hits batchreplay.HitBits
	for off := 0; off < warm; off += batchreplay.BlockSize {
		end := off + batchreplay.BlockSize
		if end > warm {
			end = warm
		}
		for i := range ms {
			ms[i].warmBlock(stream[off:end], &hits)
		}
	}
	for i := range ms {
		ms[i].reset()
	}
	for off := warm; off < len(stream); off += batchreplay.BlockSize {
		end := off + batchreplay.BlockSize
		if end > len(stream) {
			end = len(stream)
		}
		for i := range ms {
			ms[i].measureBlock(stream[off:end], &hits, hitLat, missLat)
		}
	}
}

// WindowReplay replays a captured LLC access stream into an LLC-only cache
// with the given policy, timing it with a window model. Each record's Gap
// carries the instructions since the previous LLC access (set when the
// stream was captured), so the instructions between LLC accesses — all
// non-memory work plus L1/L2 hits, identical across LLC policies — are
// accounted as single-cycle instructions, and each LLC access costs the L3
// hit latency or L3+DRAM on a miss. The first warm records warm the cache
// untimed.
func WindowReplay(stream []trace.Record, cfg cache.Config, pol cache.Policy,
	warm int, m *WindowModel) ReplayResult {
	return WindowReplayTel(stream, cfg, pol, warm, m, nil)
}

// WindowReplayTel is WindowReplay with an optional telemetry sink attached
// to the LLC for the replay's duration. Warm-up events are discarded with
// the warm-up stats (the sink is reset with them), so the sink describes
// exactly the timed measurement window. A nil sink makes it identical to
// WindowReplay. Packable policies run through the batched branch-free
// kernel (see cache.ReplayStreamTel); results are bit-identical either way.
func WindowReplayTel(stream []trace.Record, cfg cache.Config, pol cache.Policy,
	warm int, m *WindowModel, tel *telemetry.Sink) ReplayResult {
	ms := []replayModel{newReplayModel(cfg, pol, m, tel)}
	replayAll(stream, ms, warm, cfg.HitLatency, cfg.HitLatency+cache.DRAMLatency)
	return ms[0].result()
}

// MultiWindowReplay replays one captured LLC stream through several
// independent cache models in a single pass over the records: model i gets
// its own cache (policy pols[i]), its own window model models[i], and — when
// sinks is non-nil — its own telemetry sink sinks[i] (individual entries may
// be nil). The call sequence each model observes is exactly the sequence
// WindowReplayTel would issue, so every per-model result is bit-identical
// to a standalone replay of the same (stream, policy) pair; the saving is
// that the stream's records are walked (and stay cache-hot) once instead of
// once per policy. The pass is blocked: records are consumed in
// batchreplay.BlockSize chunks, and models whose policy is
// batchreplay.Packable process each chunk through the branch-free kernel
// while the rest take the scalar per-record path — the two engines can mix
// freely within one call. pols, models and (if present) sinks must have
// equal length; a zero-length pols returns an empty slice without touching
// the stream.
func MultiWindowReplay(stream []trace.Record, cfg cache.Config, pols []cache.Policy,
	warm int, models []*WindowModel, sinks []*telemetry.Sink) []ReplayResult {
	if len(models) != len(pols) {
		panic("cpu: MultiWindowReplay: len(models) != len(pols)")
	}
	if sinks != nil && len(sinks) != len(pols) {
		panic("cpu: MultiWindowReplay: len(sinks) != len(pols)")
	}
	if len(pols) == 0 {
		return nil
	}
	ms := make([]replayModel, len(pols))
	for i, pol := range pols {
		var tel *telemetry.Sink
		if sinks != nil {
			tel = sinks[i]
		}
		ms[i] = newReplayModel(cfg, pol, models[i], tel)
	}
	replayAll(stream, ms, warm, cfg.HitLatency, cfg.HitLatency+cache.DRAMLatency)
	results := make([]ReplayResult, len(pols))
	for i := range ms {
		results[i] = ms[i].result()
	}
	return results
}
