package cpu

import (
	"gippr/internal/cache"
	"gippr/internal/telemetry"
	"gippr/internal/trace"
)

// ReplayResult summarizes a timed LLC-stream replay.
type ReplayResult struct {
	Instructions uint64
	Cycles       float64
	CPI          float64
	Accesses     uint64
	Hits         uint64
	Misses       uint64
	// Skipped counts accesses to out-of-sample sets when the replayed cache
	// uses set sampling (cache.Config.SampleShift > 0); 0 at full fidelity.
	Skipped uint64
}

// WindowReplay replays a captured LLC access stream into an LLC-only cache
// with the given policy, timing it with a window model. Each record's Gap
// carries the instructions since the previous LLC access (set when the
// stream was captured), so the instructions between LLC accesses — all
// non-memory work plus L1/L2 hits, identical across LLC policies — are
// accounted as single-cycle instructions, and each LLC access costs the L3
// hit latency or L3+DRAM on a miss. The first warm records warm the cache
// untimed.
func WindowReplay(stream []trace.Record, cfg cache.Config, pol cache.Policy,
	warm int, m *WindowModel) ReplayResult {
	return WindowReplayTel(stream, cfg, pol, warm, m, nil)
}

// WindowReplayTel is WindowReplay with an optional telemetry sink attached
// to the LLC for the replay's duration. Warm-up events are discarded with
// the warm-up stats (Cache.ResetStats resets the sink), so the sink
// describes exactly the timed measurement window. A nil sink makes it
// identical to WindowReplay.
func WindowReplayTel(stream []trace.Record, cfg cache.Config, pol cache.Policy,
	warm int, m *WindowModel, tel *telemetry.Sink) ReplayResult {
	c := cache.New(cfg, pol)
	if tel != nil {
		c.SetTelemetry(tel)
	}
	if warm > len(stream) {
		warm = len(stream)
	}
	for _, r := range stream[:warm] {
		c.Access(r)
	}
	c.ResetStats()
	m.Reset()
	hitLat := cfg.HitLatency
	missLat := cfg.HitLatency + cache.DRAMLatency
	for _, r := range stream[warm:] {
		if c.Access(r) {
			m.Step(r.Gap, hitLat)
		} else {
			m.StepMiss(r.Gap, missLat)
		}
	}
	res := ReplayResult{
		Instructions: m.Instructions(),
		Cycles:       m.Cycles(),
		Accesses:     c.Stats.Accesses,
		Hits:         c.Stats.Hits,
		Misses:       c.Stats.Misses,
		Skipped:      c.Stats.Skipped,
	}
	if res.Instructions > 0 {
		res.CPI = res.Cycles / float64(res.Instructions)
	}
	return res
}

// MultiWindowReplay replays one captured LLC stream through several
// independent cache models in a single pass over the records: model i gets
// its own cache (policy pols[i]), its own window model models[i], and — when
// sinks is non-nil — its own telemetry sink sinks[i] (individual entries may
// be nil). The call sequence each model observes is exactly the sequence
// WindowReplayTel would issue, so every per-model result is bit-identical
// to a standalone replay of the same (stream, policy) pair; the saving is
// that the stream's records are walked (and stay cache-hot) once instead of
// once per policy. pols, models and (if present) sinks must have equal
// length; a zero-length pols returns an empty slice without touching the
// stream.
func MultiWindowReplay(stream []trace.Record, cfg cache.Config, pols []cache.Policy,
	warm int, models []*WindowModel, sinks []*telemetry.Sink) []ReplayResult {
	if len(models) != len(pols) {
		panic("cpu: MultiWindowReplay: len(models) != len(pols)")
	}
	if sinks != nil && len(sinks) != len(pols) {
		panic("cpu: MultiWindowReplay: len(sinks) != len(pols)")
	}
	if len(pols) == 0 {
		return nil
	}
	caches := make([]*cache.Cache, len(pols))
	for i, pol := range pols {
		caches[i] = cache.New(cfg, pol)
		if sinks != nil && sinks[i] != nil {
			caches[i].SetTelemetry(sinks[i])
		}
	}
	if warm > len(stream) {
		warm = len(stream)
	}
	for _, r := range stream[:warm] {
		for _, c := range caches {
			c.Access(r)
		}
	}
	for i, c := range caches {
		c.ResetStats()
		models[i].Reset()
	}
	hitLat := cfg.HitLatency
	missLat := cfg.HitLatency + cache.DRAMLatency
	for _, r := range stream[warm:] {
		for i, c := range caches {
			if c.Access(r) {
				models[i].Step(r.Gap, hitLat)
			} else {
				models[i].StepMiss(r.Gap, missLat)
			}
		}
	}
	results := make([]ReplayResult, len(pols))
	for i, c := range caches {
		res := ReplayResult{
			Instructions: models[i].Instructions(),
			Cycles:       models[i].Cycles(),
			Accesses:     c.Stats.Accesses,
			Hits:         c.Stats.Hits,
			Misses:       c.Stats.Misses,
			Skipped:      c.Stats.Skipped,
		}
		if res.Instructions > 0 {
			res.CPI = res.Cycles / float64(res.Instructions)
		}
		results[i] = res
	}
	return results
}
