package cpu

import (
	"math"
	"testing"

	"gippr/internal/cache"
	"gippr/internal/trace"
)

func TestLinearModelCycles(t *testing.T) {
	m := LinearModel{BaseCPI: 0.5, L3HitCycles: 30, MissCycles: 150}
	got := m.Cycles(1000, 10, 4)
	want := 500.0 + 300 + 600
	if got != want {
		t.Fatalf("Cycles = %v want %v", got, want)
	}
}

func TestLinearModelCPIFromReplay(t *testing.T) {
	m := DefaultLinearModel()
	rs := cache.ReplayStats{Accesses: 100, Misses: 50, Instructions: 1000}
	cpi := m.CPIFromReplay(rs)
	want := (1000*m.BaseCPI + 100*m.L3HitCycles + 50*m.MissCycles) / 1000
	if math.Abs(cpi-want) > 1e-12 {
		t.Fatalf("CPI = %v want %v", cpi, want)
	}
	if got := m.CPIFromReplay(cache.ReplayStats{}); got != m.BaseCPI {
		t.Fatalf("zero-instruction CPI = %v", got)
	}
}

func TestLinearModelMonotonicInMisses(t *testing.T) {
	m := DefaultLinearModel()
	a := m.Cycles(1000, 100, 10)
	b := m.Cycles(1000, 100, 20)
	if b <= a {
		t.Fatal("more misses must cost more cycles")
	}
}

func TestWindowModelPeakIPC(t *testing.T) {
	m := NewWindowModel(4, 128)
	for i := 0; i < 100000; i++ {
		m.instr(1, false)
	}
	if ipc := m.IPC(); ipc < 3.9 || ipc > 4.01 {
		t.Fatalf("single-cycle stream IPC = %v, want ~4", ipc)
	}
}

func TestWindowModelSerializedMisses(t *testing.T) {
	// Misses separated by more than a window cannot overlap: each costs
	// its full latency.
	m := NewWindowModel(4, 128)
	const misses = 100
	for i := 0; i < misses; i++ {
		m.StepMiss(1000, 200) // 999 cheap instructions, then a 200-cycle miss
	}
	cycles := m.Cycles()
	// Lower bound: instruction bandwidth plus full serialized miss time.
	minCycles := float64(misses)*1000/4 + float64(misses)*0 // misses overlap with nothing
	if cycles < minCycles {
		t.Fatalf("cycles %v below issue-bandwidth bound %v", cycles, minCycles)
	}
	// Each miss should add close to its 200-cycle latency beyond the
	// bandwidth bound (no MLP possible).
	extra := cycles - float64(misses)*1000/4
	if extra < 0.8*float64(misses)*200 {
		t.Fatalf("serialized misses overlapped: extra = %v", extra)
	}
}

func TestWindowModelMLPOverlap(t *testing.T) {
	// Two misses 4 instructions apart fall in one window and overlap:
	// a pair costs barely more than one, far less than two.
	paired := NewWindowModel(4, 128)
	const pairs = 200
	for i := 0; i < pairs; i++ {
		paired.StepMiss(4, 200)
		paired.StepMiss(4, 200)
		paired.Step(2000, 1) // drain the window between pairs
	}
	single := NewWindowModel(4, 128)
	for i := 0; i < pairs; i++ {
		single.StepMiss(4, 200)
		single.Step(4, 1)
		single.Step(2000, 1)
	}
	overlapCost := paired.Cycles() - single.Cycles()
	if overlapCost > 0.3*float64(pairs)*200 {
		t.Fatalf("paired misses cost %v extra cycles; MLP not modelled", overlapCost)
	}
}

func TestWindowModelWindowStall(t *testing.T) {
	// Misses separated by more than the window size stall on retirement:
	// dispatch cannot run ahead more than robSize instructions.
	m := NewWindowModel(1, 4)
	// One long miss, then 10 quick instructions: instruction 5 must wait
	// for the miss to retire (in-order window of 4).
	m.Step(1, 100) // the miss retires at ~101
	for i := 0; i < 10; i++ {
		m.instr(1, false)
	}
	if m.Cycles() < 100 {
		t.Fatalf("window did not hold back retirement: %v", m.Cycles())
	}
}

func TestWindowModelReset(t *testing.T) {
	m := DefaultWindowModel()
	m.Step(10, 200)
	m.Reset()
	if m.Cycles() != 0 || m.Instructions() != 0 || m.IPC() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestWindowModelBulkAdvanceMatchesExact(t *testing.T) {
	// The bulk fast-path for long gaps must agree closely with per-
	// instruction simulation.
	bulk := NewWindowModel(4, 128)
	bulk.Step(100_000, 200)
	exact := NewWindowModel(4, 128)
	for i := 0; i < 100_000-1; i++ {
		exact.instr(1, false)
	}
	exact.instr(200, false)
	rel := math.Abs(bulk.Cycles()-exact.Cycles()) / exact.Cycles()
	if rel > 0.01 {
		t.Fatalf("bulk %v vs exact %v (rel %.4f)", bulk.Cycles(), exact.Cycles(), rel)
	}
	if bulk.Instructions() != exact.Instructions() {
		t.Fatalf("instruction counts differ: %d vs %d", bulk.Instructions(), exact.Instructions())
	}
}

func TestWindowModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	NewWindowModel(0, 128)
}

func makeStream(n int, hitEvery int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		b := uint64(i)
		if i%hitEvery == 0 {
			b = 0 // block 0 recurs: a hit once warm
		}
		recs[i] = trace.Record{Gap: 4, Addr: b * 64}
	}
	return recs
}

// replayPolicy is a trivial direct-mapped-style policy for replay tests.
type replayLRU struct {
	ways   int
	stamps []uint64
	clock  uint64
}

func (p *replayLRU) Name() string { return "rlru" }
func (p *replayLRU) OnHit(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[int(set)*p.ways+way] = p.clock
}
func (p *replayLRU) OnMiss(uint32, trace.Record) {}
func (p *replayLRU) OnFill(set uint32, way int, _ trace.Record) {
	p.clock++
	p.stamps[int(set)*p.ways+way] = p.clock
}
func (p *replayLRU) OnEvict(uint32, int, trace.Record) {}
func (p *replayLRU) Victim(set uint32, _ trace.Record) int {
	base := int(set) * p.ways
	best := 0
	for w := 1; w < p.ways; w++ {
		if p.stamps[base+w] < p.stamps[base+best] {
			best = w
		}
	}
	return best
}

func TestWindowReplay(t *testing.T) {
	cfg := cache.Config{Name: "r", SizeBytes: 64 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 30}
	stream := makeStream(10000, 3)
	pol := &replayLRU{ways: 4, stamps: make([]uint64, cfg.Sets()*4)}
	res := WindowReplay(stream, cfg, pol, 1000, DefaultWindowModel())
	if res.Accesses != 9000 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("degenerate replay: %+v", res)
	}
	if res.Instructions != 9000*4 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if res.CPI <= 0 {
		t.Fatalf("CPI = %v", res.CPI)
	}
}

func TestWindowReplayFewerMissesFasterCPI(t *testing.T) {
	cfg := cache.Config{Name: "r", SizeBytes: 64 * 4 * 64, Ways: 4, BlockBytes: 64, HitLatency: 30}
	hot := makeStream(20000, 2)    // half the accesses hit block 0
	cold := makeStream(20000, 1e9) // never reuses
	mk := func() cache.Policy {
		return &replayLRU{ways: 4, stamps: make([]uint64, cfg.Sets()*4)}
	}
	rh := WindowReplay(hot, cfg, mk(), 1000, DefaultWindowModel())
	rc := WindowReplay(cold, cfg, mk(), 1000, DefaultWindowModel())
	if rh.CPI >= rc.CPI {
		t.Fatalf("hot CPI %v not below cold CPI %v", rh.CPI, rc.CPI)
	}
}

func TestRunThroughHierarchy(t *testing.T) {
	mkCache := func(cfg cache.Config) *cache.Cache {
		return cache.New(cfg, &replayLRU{ways: cfg.Ways, stamps: make([]uint64, cfg.Sets()*cfg.Ways)})
	}
	h := cache.NewHierarchy(mkCache(cache.L1Config), mkCache(cache.L2Config), mkCache(cache.L3Config))
	recs := makeStream(5000, 4)
	res := Run(h, trace.NewSliceSource(recs), 500, DefaultWindowModel())
	if res.Instructions == 0 || res.Cycles <= 0 || res.IPC <= 0 {
		t.Fatalf("bad run result %+v", res)
	}
	var total uint64
	for _, c := range res.LevelHits {
		total += c
	}
	if total != 4500 {
		t.Fatalf("level hits sum to %d", total)
	}
}

var _ cache.Policy = (*replayLRU)(nil)
