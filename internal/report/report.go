// Package report is the typed section registry of gippr-report: the
// single source of truth for which output sections exist and in what
// order they print. The CLI's -only flag parses against it, so a
// misspelled section name ("latice") is a usage error the user sees
// immediately — not a silently empty report.
package report

import (
	"errors"
	"fmt"
	"strings"
)

// Section identifies one gippr-report output section.
type Section string

// The registered sections, in paper print order.
const (
	Streams      Section = "streams"
	Fig1         Section = "fig1"
	Fig2         Section = "fig2"
	Fig3         Section = "fig3"
	Fig4         Section = "fig4"
	Fig10        Section = "fig10"
	Fig11        Section = "fig11"
	Fig12        Section = "fig12"
	Fig13        Section = "fig13"
	Overhead     Section = "overhead"
	Vectors      Section = "vectors"
	Interpret    Section = "interpret"
	Characterize Section = "characterize"
	Multicore    Section = "multicore"
	Assoc        Section = "assoc"
	RRIPV        Section = "rripv"
	Bypass       Section = "bypass"
	SimPoint     Section = "simpoint"
	Sampling     Section = "sampling"
	Lattice      Section = "lattice"
	Diff         Section = "diff"
)

// ordered is the print order; Sections copies it so callers cannot
// reorder the registry.
var ordered = []Section{
	Streams, Fig1, Fig2, Fig3, Fig4, Fig10, Fig11, Fig12, Fig13,
	Overhead, Vectors, Interpret, Characterize, Multicore, Assoc,
	RRIPV, Bypass, SimPoint, Sampling, Lattice, Diff,
}

// Sections returns every registered section in print order.
func Sections() []Section {
	return append([]Section(nil), ordered...)
}

// ErrUnknownSection rejects a section name outside the registry.
// gippr-report maps it to exit code 2 (usage error).
var ErrUnknownSection = errors.New("report: unknown section")

// valid is the membership index behind Parse.
var valid = func() map[Section]bool {
	m := make(map[Section]bool, len(ordered))
	for _, s := range ordered {
		m[s] = true
	}
	return m
}()

// Parse resolves a comma-separated section list (the -only flag's value).
// An empty list selects every section (nil map); any unknown name fails
// with ErrUnknownSection naming the offender and the full registry.
func Parse(list string) (map[Section]bool, error) {
	if list == "" {
		return nil, nil
	}
	want := map[Section]bool{}
	for _, f := range strings.Split(list, ",") {
		s := Section(strings.TrimSpace(f))
		if !valid[s] {
			return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownSection, string(s), List())
		}
		want[s] = true
	}
	return want, nil
}

// Selected reports whether a section is in the parsed set; a nil set
// (no -only flag) selects everything.
func Selected(want map[Section]bool, s Section) bool {
	return want == nil || want[s]
}

// List renders the registry as the comma-separated string flag help and
// error messages show.
func List() string {
	names := make([]string, len(ordered))
	for i, s := range ordered {
		names[i] = string(s)
	}
	return strings.Join(names, ",")
}
