package report

import (
	"errors"
	"strings"
	"testing"
)

func TestSectionsOrderedAndUnique(t *testing.T) {
	secs := Sections()
	if len(secs) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[Section]bool{}
	for _, s := range secs {
		if seen[s] {
			t.Fatalf("duplicate section %q", s)
		}
		seen[s] = true
	}
	if secs[0] != Streams || secs[len(secs)-1] != Diff {
		t.Fatalf("unexpected order: first %q, last %q", secs[0], secs[len(secs)-1])
	}
	// The returned slice is a copy: mutating it must not corrupt the registry.
	secs[0] = "corrupted"
	if Sections()[0] != Streams {
		t.Fatal("Sections exposed the internal registry slice")
	}
}

func TestParse(t *testing.T) {
	want, err := Parse("")
	if err != nil || want != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", want, err)
	}
	want, err = Parse("fig1, lattice ,diff")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Section{Fig1, Lattice, Diff} {
		if !want[s] {
			t.Fatalf("Parse dropped %q", s)
		}
	}
	if len(want) != 3 {
		t.Fatalf("Parse kept %d sections, want 3", len(want))
	}
}

func TestParseUnknown(t *testing.T) {
	for _, bad := range []string{"latice", "fig1,nope", "diff,"} {
		if _, err := Parse(bad); !errors.Is(err, ErrUnknownSection) {
			t.Fatalf("Parse(%q) err = %v, want ErrUnknownSection", bad, err)
		} else if !strings.Contains(err.Error(), "known:") {
			t.Fatalf("Parse(%q) error %q does not list the registry", bad, err)
		}
	}
}

func TestSelected(t *testing.T) {
	if !Selected(nil, Fig1) {
		t.Fatal("nil set must select everything")
	}
	want, _ := Parse("fig1")
	if !Selected(want, Fig1) || Selected(want, Fig2) {
		t.Fatal("explicit set must select exactly its members")
	}
}

func TestList(t *testing.T) {
	l := List()
	for _, s := range Sections() {
		if !strings.Contains(l, string(s)) {
			t.Fatalf("List() %q missing %q", l, s)
		}
	}
}
