// Package trace defines the memory-reference trace format used by the
// simulator, plus binary readers and writers for storing traces on disk.
//
// The paper collects last-level-cache access traces with a modified Valgrind
// and replays them through a trace-driven cache model (Section 4.3). We
// reproduce that pipeline: workload generators (package workload) produce
// Record streams, the cache hierarchy (package cache) filters them, and both
// full reference streams and LLC-filtered block streams can be serialized
// with this package for offline replay (Belady's MIN, GA fitness).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record is one memory reference in a trace.
type Record struct {
	// Gap is the number of instructions executed since the previous record,
	// inclusive of this memory instruction; it is always >= 1 and is used
	// by the CPU timing models to account for non-memory work.
	Gap uint32
	// PC is the address of the memory instruction (used by PC-indexed
	// policies such as SHiP).
	PC uint64
	// Addr is the byte address of the data reference.
	Addr uint64
	// Write is true for stores.
	Write bool
	// Core identifies the requesting core in multi-core simulations
	// (0 in single-core traces). Core-aware shared-cache policies such as
	// PIPP partition by it. It is not serialized by Writer: stored traces
	// are single-core; the multicore scheduler stamps it at run time.
	Core uint8
}

// Source yields a stream of records. Next returns ok=false when the stream
// is exhausted.
type Source interface {
	Next() (rec Record, ok bool)
}

// SliceSource adapts an in-memory record slice to a Source.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource returns a Source reading from recs.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.i >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.i = 0 }

// Collect drains up to max records from src into a slice. max <= 0 collects
// everything.
func Collect(src Source, max int) []Record {
	var recs []Record
	for max <= 0 || len(recs) < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	return recs
}

// Instructions returns the total instruction count represented by recs (the
// sum of gaps).
func Instructions(recs []Record) uint64 {
	var n uint64
	for _, r := range recs {
		n += uint64(r.Gap)
	}
	return n
}

// File format: an 8-byte magic, a version byte, then varint-encoded records.
// PC and Addr are zigzag-delta encoded against the previous record, which
// compresses the strong spatial locality of real reference streams well.
const (
	magic   = "GIPPRTRC"
	version = 1
)

// Writer serializes records to an io.Writer. Call Flush when done.
type Writer struct {
	bw       *bufio.Writer
	prevPC   uint64
	prevAddr uint64
	wrote    bool
	count    uint64
}

// NewWriter returns a Writer that writes the trace header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := &Writer{bw: bufio.NewWriter(w)}
	if _, err := tw.bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := tw.bw.WriteByte(version); err != nil {
		return nil, err
	}
	return tw, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// Write appends one record. Gap must be >= 1.
func (tw *Writer) Write(r Record) error {
	if r.Gap == 0 {
		return errors.New("trace: record gap must be >= 1")
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := tw.bw.Write(buf[:n])
		return err
	}
	flags := uint64(0)
	if r.Write {
		flags = 1
	}
	if err := put(uint64(r.Gap)<<1 | flags); err != nil {
		return err
	}
	if err := put(zigzag(int64(r.PC - tw.prevPC))); err != nil {
		return err
	}
	if err := put(zigzag(int64(r.Addr - tw.prevAddr))); err != nil {
		return err
	}
	tw.prevPC, tw.prevAddr = r.PC, r.Addr
	tw.wrote = true
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered output to the underlying writer.
func (tw *Writer) Flush() error { return tw.bw.Flush() }

// Reader deserializes records written by Writer. It implements Source
// semantics via Read, which returns io.EOF at end of trace.
type Reader struct {
	br       *bufio.Reader
	prevPC   uint64
	prevAddr uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, errors.New("trace: bad magic (not a gippr trace)")
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(magic)])
	}
	return &Reader{br: br}, nil
}

// Read returns the next record, or io.EOF at the end of the trace.
func (tr *Reader) Read() (Record, error) {
	gf, err := binary.ReadUvarint(tr.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading gap: %w", err)
	}
	dpc, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record (pc): %w", err)
	}
	daddr, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record (addr): %w", err)
	}
	tr.prevPC += uint64(unzig(dpc))
	tr.prevAddr += uint64(unzig(daddr))
	r := Record{
		Gap:   uint32(gf >> 1),
		Write: gf&1 == 1,
		PC:    tr.prevPC,
		Addr:  tr.prevAddr,
	}
	if r.Gap == 0 {
		return Record{}, errors.New("trace: corrupt record with zero gap")
	}
	return r, nil
}

// ReadAll reads every remaining record.
func (tr *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		r, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
}

// Next adapts Reader to the Source interface, silently stopping at EOF or on
// a corrupt tail.
func (tr *Reader) Next() (Record, bool) {
	r, err := tr.Read()
	if err != nil {
		return Record{}, false
	}
	return r, true
}
