package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// CreateFile opens path for trace writing, transparently gzip-compressing
// when the name ends in ".gz". Call the returned close function (which
// flushes) when done.
func CreateFile(path string) (*Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	tw, err := NewWriter(w)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	closer := func() error {
		if err := tw.Flush(); err != nil {
			f.Close()
			return err
		}
		if gz != nil {
			if err := gz.Close(); err != nil {
				f.Close()
				return err
			}
		}
		return f.Close()
	}
	return tw, closer, nil
}

// OpenFile opens a trace file written by CreateFile, transparently
// decompressing ".gz" names. Call the returned close function when done.
func OpenFile(path string) (*Reader, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var r io.Reader = f
	var gz *gzip.Reader
	if strings.HasSuffix(path, ".gz") {
		gz, err = gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("trace: opening gzip %s: %w", path, err)
		}
		r = gz
	}
	tr, err := NewReader(r)
	if err != nil {
		if gz != nil {
			gz.Close()
		}
		f.Close()
		return nil, nil, err
	}
	closer := func() error {
		if gz != nil {
			if err := gz.Close(); err != nil {
				f.Close()
				return err
			}
		}
		return f.Close()
	}
	return tr, closer, nil
}

// WriteFile stores records at path (gzip when the name ends in ".gz").
func WriteFile(path string, recs []Record) error {
	tw, closeFn, err := CreateFile(path)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := tw.Write(r); err != nil {
			closeFn()
			return err
		}
	}
	return closeFn()
}

// ReadFile loads every record from path.
func ReadFile(path string) ([]Record, error) {
	tr, closeFn, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	recs, err := tr.ReadAll()
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return recs, err
}
