package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{Gap: 1, PC: 0x400000, Addr: 0x10000, Write: false},
		{Gap: 7, PC: 0x400004, Addr: 0x10040, Write: true},
		{Gap: 3, PC: 0x400004, Addr: 0x10080, Write: false},
		{Gap: 1 << 30, PC: 0xffff_ffff_0000, Addr: 0, Write: false}, // big gap, addr goes backwards
		{Gap: 2, PC: 0x400008, Addr: 1 << 40, Write: true},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(gaps []uint16, pcs, addrs []uint64, writes []bool) bool {
		n := len(gaps)
		for _, s := range []int{len(pcs), len(addrs), len(writes)} {
			if s < n {
				n = s
			}
		}
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{Gap: uint32(gaps[i]) + 1, PC: pcs[i], Addr: addrs[i], Write: writes[i]}
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		w.Flush()
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := rd.ReadAll()
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsZeroGap(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Gap: 0}); err == nil {
		t.Fatal("zero-gap record accepted")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACEFILE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderRejectsShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("GIP"))); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestReaderRejectsBadVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("GIPPRTRC\xff"))); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReaderEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Gap: 1, Addr: 64})
	w.Flush()
	r, _ := NewReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Gap: 5, PC: 123456789, Addr: 987654321})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record returned %v", err)
	}
}

func TestReaderAsSource(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Gap: 1, Addr: 64})
	w.Write(Record{Gap: 2, Addr: 128})
	w.Flush()
	r, _ := NewReader(&buf)
	var src Source = r
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("source yielded %d records", n)
	}
}

func TestSliceSource(t *testing.T) {
	recs := sampleRecords()
	s := NewSliceSource(recs)
	got := Collect(s, 0)
	if len(got) != len(recs) {
		t.Fatalf("collected %d", len(got))
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded a record")
	}
	s.Reset()
	if got := Collect(s, 2); len(got) != 2 {
		t.Fatalf("limited collect got %d", len(got))
	}
}

func TestInstructions(t *testing.T) {
	recs := []Record{{Gap: 3}, {Gap: 4}, {Gap: 1}}
	if got := Instructions(recs); got != 8 {
		t.Fatalf("Instructions = %d", got)
	}
	if got := Instructions(nil); got != 0 {
		t.Fatalf("Instructions(nil) = %d", got)
	}
}

func TestZigZag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<62 - 1, -(1 << 62)} {
		if got := unzig(zigzag(d)); got != d {
			t.Fatalf("zigzag round trip of %d gave %d", d, got)
		}
	}
}

func TestDeltaCompression(t *testing.T) {
	// Sequential addresses should compress to a few bytes per record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		w.Write(Record{Gap: 4, PC: 0x400000, Addr: uint64(i) * 64})
	}
	w.Flush()
	if per := float64(buf.Len()) / 1000; per > 5 {
		t.Fatalf("sequential trace uses %.1f bytes/record", per)
	}
}
