package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()
	for _, name := range []string{"plain.trc", "compressed.trc.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, recs); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: %d records", name, len(got))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("%s: record %d mismatch", name, i)
			}
		}
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	dir := t.TempDir()
	recs := make([]Record, 20000)
	for i := range recs {
		recs[i] = Record{Gap: 4, PC: 0x400000, Addr: uint64(i) * 64}
	}
	plain := filepath.Join(dir, "t.trc")
	zipped := filepath.Join(dir, "t.trc.gz")
	if err := WriteFile(plain, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(zipped, recs); err != nil {
		t.Fatal(err)
	}
	sp, _ := os.Stat(plain)
	sz, _ := os.Stat(zipped)
	if sz.Size() >= sp.Size() {
		t.Fatalf("gzip did not shrink: %d vs %d bytes", sz.Size(), sp.Size())
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Fatal("missing file opened")
	}
	// A .gz name with non-gzip contents must fail cleanly.
	bad := filepath.Join(t.TempDir(), "bad.trc.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(bad); err == nil {
		t.Fatal("bogus gzip accepted")
	}
	// A plain file with a bad header must fail cleanly.
	badMagic := filepath.Join(t.TempDir(), "bad.trc")
	if err := os.WriteFile(badMagic, []byte("WRONGMAGIC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCreateFileInMissingDirFails(t *testing.T) {
	if _, _, err := CreateFile(filepath.Join(t.TempDir(), "no", "such", "dir.trc")); err == nil {
		t.Fatal("create in missing directory succeeded")
	}
}
