package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader checks the binary trace reader never panics on arbitrary
// input and only ever returns well-formed records.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-record trace and some corruptions of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Gap: 3, PC: 0x400000, Addr: 0x1000, Write: true})
	w.Write(Record{Gap: 1, PC: 0x400004, Addr: 0x1040})
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("GIPPRTRC\x01"))
	f.Add([]byte("not a trace at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			rec, err := r.Read()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // corrupt tail: reported, not panicked
			}
			if rec.Gap == 0 {
				t.Fatal("reader produced a zero-gap record")
			}
		}
	})
}
