package dueling

import "testing"

func TestCounterSaturation(t *testing.T) {
	c := NewCounter(3) // 0..7, starts at 4
	if c.Value() != 4 {
		t.Fatalf("initial value %d", c.Value())
	}
	for i := 0; i < 20; i++ {
		c.Up()
	}
	if c.Value() != 7 {
		t.Fatalf("saturated up at %d", c.Value())
	}
	for i := 0; i < 20; i++ {
		c.Down()
	}
	if c.Value() != 0 {
		t.Fatalf("saturated down at %d", c.Value())
	}
}

func TestCounterHigh(t *testing.T) {
	c := NewCounter(2) // 0..3, mid 2
	if !c.High() {
		t.Fatal("initial counter should be at midpoint (High)")
	}
	c.Down()
	if c.High() {
		t.Fatal("below midpoint still High")
	}
}

func TestCounterPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, 31, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d did not panic", w)
				}
			}()
			NewCounter(w)
		}()
	}
}

func TestSelectorLeaderCounts(t *testing.T) {
	const sets, policies, leaders = 4096, 2, 32
	s := NewSelector(sets, policies, leaders)
	counts := make([]int, policies)
	followers := 0
	for set := uint32(0); set < sets; set++ {
		if l := s.Leader(set); l >= 0 {
			counts[l]++
		} else {
			followers++
		}
	}
	for p, c := range counts {
		if c != leaders {
			t.Fatalf("policy %d has %d leader sets, want %d", p, c, leaders)
		}
	}
	if followers != sets-policies*leaders {
		t.Fatalf("followers = %d", followers)
	}
}

func TestSelectorLeadersSpread(t *testing.T) {
	// Leaders must be distributed across the index space, not clumped in
	// one half.
	s := NewSelector(4096, 4, 32)
	lower := 0
	for set := uint32(0); set < 2048; set++ {
		if s.Leader(set) >= 0 {
			lower++
		}
	}
	if lower != 64 { // half of 4*32
		t.Fatalf("leaders in lower half = %d, want 64", lower)
	}
}

func TestSelectorPanics(t *testing.T) {
	cases := [][3]int{{0, 2, 1}, {16, 0, 1}, {16, 2, 0}, {16, 2, 16}, {4, 8, 1}}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewSelector(c[0], c[1], c[2])
		}()
	}
}

func TestDuelFollowsWinner(t *testing.T) {
	d := NewDuel(1024, 32, 10)
	// Policy 0's leader sets miss a lot: counter goes up, winner is 1.
	leader0 := uint32(0) // offset 0 of each period leads policy 0
	for i := 0; i < 600; i++ {
		d.OnMiss(leader0)
	}
	if d.Winner() != 1 {
		t.Fatalf("winner = %d after policy 0 missed heavily", d.Winner())
	}
	// A follower set uses the winner; leader sets always use themselves.
	if d.Choose(5) != 1 {
		t.Fatal("follower not using winner")
	}
	if d.Choose(0) != 0 || d.Choose(1) != 1 {
		t.Fatal("leaders not using their own policy")
	}
	// Now policy 1 misses even more: winner flips back.
	leader1 := uint32(1)
	for i := 0; i < 1200; i++ {
		d.OnMiss(leader1)
	}
	if d.Winner() != 0 {
		t.Fatalf("winner = %d after policy 1 missed heavily", d.Winner())
	}
}

func TestDuelIgnoresFollowerMisses(t *testing.T) {
	d := NewDuel(1024, 32, 10)
	before := d.Winner()
	for i := 0; i < 1000; i++ {
		d.OnMiss(7) // follower set
	}
	if d.Winner() != before {
		t.Fatal("follower misses moved the counter")
	}
}

func TestTournamentWinner(t *testing.T) {
	tour := NewTournament(4096, 32, 11)
	miss := func(leader uint32, n int) {
		for i := 0; i < n; i++ {
			tour.OnMiss(leader)
		}
	}
	// Pair (0,1) misses heavily -> meta prefers pair (2,3); within it,
	// policy 2's leaders miss more -> winner 3.
	miss(0, 1500)
	miss(1, 1500)
	miss(2, 300)
	if got := tour.Winner(); got != 3 {
		t.Fatalf("winner = %d, want 3", got)
	}
	// Followers adopt the winner; leaders stay on their own policy.
	if tour.Choose(9) != 3 {
		t.Fatal("follower not on winner")
	}
	for p := uint32(0); p < 4; p++ {
		if tour.Choose(p) != int(p) {
			t.Fatalf("leader %d not on its own policy", p)
		}
	}
	// Pair (2,3) misses even more -> back to pair (0,1); then policy 0's
	// leaders miss enough that 1 wins the pair.
	miss(2, 2000)
	miss(3, 2000)
	miss(0, 1000)
	if got := tour.Winner(); got != 1 {
		t.Fatalf("winner = %d, want 1", got)
	}
}

func TestTournamentBalancedPrefersFirst(t *testing.T) {
	tour := NewTournament(4096, 32, 11)
	// With balanced counters Winner must still be deterministic.
	if w := tour.Winner(); w < 0 || w > 3 {
		t.Fatalf("winner = %d", w)
	}
}

func TestBracketMatchesTournamentSemantics(t *testing.T) {
	// A 4-policy bracket and the hand-written Tournament must agree on
	// the winner for any miss pattern (they are the same structure).
	br := NewBracket(4096, 4, 32, 11)
	tour := NewTournament(4096, 32, 11)
	seqs := [][2]uint32{{0, 1500}, {1, 1500}, {2, 300}, {3, 100}, {0, 50}, {2, 900}}
	for _, s := range seqs {
		for i := uint32(0); i < s[1]; i++ {
			br.OnMiss(s[0])
			tour.OnMiss(s[0])
		}
		if br.Winner() != tour.Winner() {
			t.Fatalf("bracket winner %d != tournament winner %d after leader %d",
				br.Winner(), tour.Winner(), s[0])
		}
	}
}

func TestBracketEightPolicies(t *testing.T) {
	b := NewBracket(4096, 8, 16, 11)
	// Every policy's leaders miss except policy 5's, with the misses
	// interleaved as real traffic would be (sequential bursts would
	// saturate the counters and lose the counts).
	for i := 0; i < 3000; i++ {
		for p := uint32(0); p < 8; p++ {
			if p == 5 {
				continue
			}
			b.OnMiss(p)
		}
	}
	if got := b.Winner(); got != 5 {
		t.Fatalf("winner %d, want the only quiet policy 5", got)
	}
	// Leaders stay on their own policy, followers adopt the winner.
	for p := uint32(0); p < 8; p++ {
		if b.Choose(p) != int(p) {
			t.Fatalf("leader %d not on itself", p)
		}
	}
	if b.Choose(100) != 5 {
		t.Fatal("follower not on winner")
	}
}

func TestBracketPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bracket size %d accepted", n)
				}
			}()
			NewBracket(4096, n, 8, 11)
		}()
	}
}
