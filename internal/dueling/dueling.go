// Package dueling implements set-dueling (Qureshi et al., ISCA 2007) and
// Loh-style multi-set-dueling tournaments (MICRO 2009), the mechanism DGIPPR
// uses to pick among evolved IPVs at run time (paper Section 3.5).
//
// A small number of leader sets are statically dedicated to each candidate
// policy. A saturating counter counts up when policy A misses in one of its
// leader sets and down when policy B misses in one of its own; the follower
// sets (everything else) use whichever policy the counter currently favours.
// For four policies, two counters duel within the pairs (0,1) and (2,3) and
// a meta-counter duels the pairs; the winning element of the winning pair
// drives the followers. The paper uses 11-bit counters: one for 2-DGIPPR,
// three for 4-DGIPPR — 33 bits for the entire cache.
package dueling

import "fmt"

// Counter is a saturating up/down counter of a given bit width, initialized
// to its midpoint. High() reports whether the count is at or above the
// midpoint — i.e. whether the "up" policy has accumulated more misses.
type Counter struct {
	v   int
	max int
	mid int
}

// NewCounter returns a counter with the given width in bits (1..30).
func NewCounter(bits int) *Counter {
	if bits < 1 || bits > 30 {
		panic(fmt.Sprintf("dueling: counter width %d out of range", bits))
	}
	max := 1<<bits - 1
	mid := 1 << (bits - 1)
	return &Counter{v: mid, max: max, mid: mid}
}

// Up increments the counter, saturating at its maximum.
func (c *Counter) Up() {
	if c.v < c.max {
		c.v++
	}
}

// Down decrements the counter, saturating at zero.
func (c *Counter) Down() {
	if c.v > 0 {
		c.v--
	}
}

// High reports whether the counter is at or above its midpoint.
func (c *Counter) High() bool { return c.v >= c.mid }

// Value returns the raw count (for tests and debugging).
func (c *Counter) Value() int { return c.v }

// Selector statically assigns leader sets. With L leaders per policy and S
// sets, the sets are divided into L equal regions ("constituencies") and the
// first P offsets of each region lead policies 0..P-1; all other sets are
// followers. This spreads each policy's leaders uniformly across the index
// space, the property set-dueling's sampling argument relies on.
type Selector struct {
	period   uint32
	policies uint32
}

// NewSelector returns a selector for numSets sets, numPolicies policies and
// leadersPerPolicy leader sets each.
func NewSelector(numSets, numPolicies, leadersPerPolicy int) *Selector {
	if numSets <= 0 || numPolicies <= 0 || leadersPerPolicy <= 0 {
		panic("dueling: non-positive selector parameter")
	}
	if leadersPerPolicy*numPolicies > numSets {
		panic(fmt.Sprintf("dueling: %d policies x %d leaders exceed %d sets",
			numPolicies, leadersPerPolicy, numSets))
	}
	period := numSets / leadersPerPolicy
	if period < numPolicies {
		panic("dueling: constituency too small for policy count")
	}
	return &Selector{period: uint32(period), policies: uint32(numPolicies)}
}

// Leader returns the policy index the set leads, or -1 for follower sets.
func (s *Selector) Leader(set uint32) int {
	off := set % s.period
	if off < s.policies {
		return int(off)
	}
	return -1
}

// DefaultLeaders is the customary number of leader sets per policy.
const DefaultLeaders = 32

// Duel selects between two policies with a single PSEL counter
// (paper Section 2.3 / Qureshi et al.).
type Duel struct {
	sel  *Selector
	psel *Counter
}

// NewDuel returns a two-policy duel over numSets sets with the given number
// of leader sets per policy and counter width in bits.
func NewDuel(numSets, leadersPerPolicy, counterBits int) *Duel {
	return &Duel{
		sel:  NewSelector(numSets, 2, leadersPerPolicy),
		psel: NewCounter(counterBits),
	}
}

// Leader returns the policy index the set leads, or -1 for follower sets
// (exposed for telemetry: a leader miss is one dueling "vote").
func (d *Duel) Leader(set uint32) int { return d.sel.Leader(set) }

// OnMiss records a miss in the given set; misses in non-leader sets are
// ignored.
func (d *Duel) OnMiss(set uint32) {
	switch d.sel.Leader(set) {
	case 0:
		d.psel.Up()
	case 1:
		d.psel.Down()
	}
}

// Choose returns the policy index (0 or 1) the given set should use right
// now: leader sets always use their own policy; follower sets use the
// current winner (policy 0 while it has fewer leader misses).
func (d *Duel) Choose(set uint32) int {
	if l := d.sel.Leader(set); l >= 0 {
		return l
	}
	return d.Winner()
}

// Winner returns the policy followers currently use.
func (d *Duel) Winner() int {
	if d.psel.High() {
		return 1 // policy 0 has been missing more
	}
	return 0
}

// Tournament selects among four policies with two pair counters and a
// meta-counter (Loh's multi-set-dueling, used by 4-DGIPPR).
type Tournament struct {
	sel            *Selector
	c01, c23, meta *Counter
}

// NewTournament returns a four-policy tournament over numSets sets.
func NewTournament(numSets, leadersPerPolicy, counterBits int) *Tournament {
	return &Tournament{
		sel:  NewSelector(numSets, 4, leadersPerPolicy),
		c01:  NewCounter(counterBits),
		c23:  NewCounter(counterBits),
		meta: NewCounter(counterBits),
	}
}

// Leader returns the policy index the set leads, or -1 for follower sets.
func (t *Tournament) Leader(set uint32) int { return t.sel.Leader(set) }

// OnMiss records a miss in the given set, updating the pair counter the
// leader belongs to and the meta counter.
func (t *Tournament) OnMiss(set uint32) {
	switch t.sel.Leader(set) {
	case 0:
		t.c01.Up()
		t.meta.Up()
	case 1:
		t.c01.Down()
		t.meta.Up()
	case 2:
		t.c23.Up()
		t.meta.Down()
	case 3:
		t.c23.Down()
		t.meta.Down()
	}
}

// Choose returns the policy index (0..3) the set should use right now.
func (t *Tournament) Choose(set uint32) int {
	if l := t.sel.Leader(set); l >= 0 {
		return l
	}
	return t.Winner()
}

// Winner returns the policy followers currently use: the winning element of
// the winning pair.
func (t *Tournament) Winner() int {
	if t.meta.High() { // pair (0,1) missing more: use pair (2,3)
		if t.c23.High() {
			return 3
		}
		return 2
	}
	if t.c01.High() {
		return 1
	}
	return 0
}

// CounterBits11 is the counter width the paper specifies for DGIPPR.
const CounterBits11 = 11

// Bracket generalizes the tournament to any power-of-two number of
// policies: a complete binary tree of counters, one per internal node,
// arranged in the implicit heap layout (root = node 1). A leader's miss
// walks its leaf-to-root path, training each ancestor toward the sibling
// subtree; the winner walks root-to-leaf following the counters. With four
// policies this is exactly Tournament (three counters); the paper finds
// more than four vectors gives diminishing returns, which the 8-policy
// bracket lets the ablation benches verify.
type Bracket struct {
	sel      *Selector
	counters []*Counter // counters[n] for node n in 1..policies-1
	policies int
}

// NewBracket returns a tournament over numPolicies (a power of two >= 2).
func NewBracket(numSets, numPolicies, leadersPerPolicy, counterBits int) *Bracket {
	if numPolicies < 2 || numPolicies&(numPolicies-1) != 0 {
		panic(fmt.Sprintf("dueling: bracket size %d is not a power of two >= 2", numPolicies))
	}
	b := &Bracket{
		sel:      NewSelector(numSets, numPolicies, leadersPerPolicy),
		counters: make([]*Counter, numPolicies),
		policies: numPolicies,
	}
	for n := 1; n < numPolicies; n++ {
		b.counters[n] = NewCounter(counterBits)
	}
	return b
}

// Leader returns the policy index the set leads, or -1 for follower sets.
func (b *Bracket) Leader(set uint32) int { return b.sel.Leader(set) }

// OnMiss records a miss in the given set. A miss by leader p trains every
// counter on p's leaf-to-root path: Up when p lies in the node's left
// subtree (left missing pushes the node right), Down otherwise.
func (b *Bracket) OnMiss(set uint32) {
	p := b.sel.Leader(set)
	if p < 0 {
		return
	}
	node := b.policies + p // leaf index in the implicit tree
	for node > 1 {
		parent := node / 2
		if node%2 == 0 { // left child missed
			b.counters[parent].Up()
		} else {
			b.counters[parent].Down()
		}
		node = parent
	}
}

// Winner returns the policy followers currently use: walk from the root,
// at each counter picking the subtree with fewer leader misses.
func (b *Bracket) Winner() int {
	node := 1
	for node < b.policies {
		if b.counters[node].High() { // left subtree missing more: go right
			node = 2*node + 1
		} else {
			node = 2 * node
		}
	}
	return node - b.policies
}

// Choose returns the policy index the given set should use right now.
func (b *Bracket) Choose(set uint32) int {
	if l := b.sel.Leader(set); l >= 0 {
		return l
	}
	return b.Winner()
}
