package cluster

import (
	"fmt"
	"testing"
)

func mkPeers(addrs ...string) []*peer {
	out := make([]*peer, len(addrs))
	for i, a := range addrs {
		out[i] = &peer{addr: a}
	}
	return out
}

func addrsOf(ps []*peer) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.addr
	}
	return out
}

func TestRankDeterministicAndTotal(t *testing.T) {
	peers := mkPeers("a:1", "b:2", "c:3", "d:4")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("wl%d|lru|c", i)
		r1 := rank(key, peers)
		r2 := rank(key, peers)
		if len(r1) != len(peers) {
			t.Fatalf("rank returned %d peers, want %d", len(r1), len(peers))
		}
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("rank(%q) not deterministic at position %d", key, j)
			}
		}
		seen := make(map[string]bool)
		for _, p := range r1 {
			if seen[p.addr] {
				t.Fatalf("rank(%q) repeats peer %s", key, p.addr)
			}
			seen[p.addr] = true
		}
		for j := 1; j < len(r1); j++ {
			a, b := r1[j-1], r1[j]
			if sa, sb := score(a.addr, key), score(b.addr, key); sa < sb || (sa == sb && a.addr > b.addr) {
				t.Fatalf("rank(%q) out of order at %d: %s then %s", key, j, a.addr, b.addr)
			}
		}
	}
}

// TestRankStabilityOnPeerLoss is the property failover leans on: removing
// one peer must not move any cell whose owner survives — only the dead
// peer's cells remap, each to its previous runner-up.
func TestRankStabilityOnPeerLoss(t *testing.T) {
	full := mkPeers("a:1", "b:2", "c:3", "d:4")
	without := mkPeers("a:1", "b:2", "d:4") // c:3 removed
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("cell-%d", i)
		before := rank(key, full)
		after := rank(key, without)
		if before[0].addr != "c:3" {
			kept++
			if after[0].addr != before[0].addr {
				t.Fatalf("key %q: owner moved %s -> %s though %s survived", key, before[0].addr, after[0].addr, before[0].addr)
			}
			continue
		}
		moved++
		if want := before[1].addr; after[0].addr != want {
			t.Fatalf("key %q: dead owner's cell went to %s, want runner-up %s", key, after[0].addr, want)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d (want both nonzero)", moved, kept)
	}
}

// TestRankSpread sanity-checks that ownership is roughly balanced: with
// 4 peers and 400 keys, no peer should own almost everything or nothing.
func TestRankSpread(t *testing.T) {
	peers := mkPeers("a:1", "b:2", "c:3", "d:4")
	owned := make(map[string]int)
	const n = 400
	for i := 0; i < n; i++ {
		owned[rank(fmt.Sprintf("key-%d", i), peers)[0].addr]++
	}
	for _, p := range peers {
		if c := owned[p.addr]; c < n/10 || c > n/2 {
			t.Fatalf("peer %s owns %d/%d keys — rendezvous spread is broken (%v)", p.addr, c, n, addrsOf(peers))
		}
	}
}

func TestRankEmptyAndSingle(t *testing.T) {
	if r := rank("k", nil); len(r) != 0 {
		t.Fatalf("rank over no peers returned %d entries", len(r))
	}
	one := mkPeers("a:1")
	if r := rank("k", one); len(r) != 1 || r[0].addr != "a:1" {
		t.Fatalf("rank over one peer = %v", addrsOf(r))
	}
}
