// Package cluster is gippr-serve's horizontal sharding layer, built
// robustness-first: a Coordinator implements serve.GridRunner by
// rendezvous-hashing (workload, policy, geometry) cells across shard
// workers, fanning sub-jobs out over the existing HTTP/JSON surface, and
// merging the streamed NDJSON cells back into the job record — so
// /result, NDJSON streaming, late-connect replay, and the result store
// behave exactly as on a single node, and manifests stay byte-identical
// to what gippr-sim computes.
//
// Every cross-node hop is wrapped in the failure machinery:
//
//   - retries with exponential backoff, full jitter, and per-attempt
//     deadlines (internal/retry), so transient faults and slow peers cost
//     bounded time;
//   - active health checks (/healthz, which also carries the peer's scale
//     and cache geometry) driving a per-peer circuit breaker, so a dead or
//     flapping peer stops receiving cells after a handful of failures and
//     is readmitted by a successful probe after the cooldown;
//   - failover: cells owned by a failed or tripped peer move to the next
//     peer in their rendezvous ranking, and when no peer remains they
//     degrade to the coordinator's own in-process Lab. A single-node
//     deployment (no peers) and a fully-degraded cluster run the same
//     local path.
//
// Because every engine in the system computes bit-identical cells for the
// same (workload, policy, scale, geometry), it does not matter which node
// computes a cell — only that exactly the requested cells arrive. The
// coordinator therefore deduplicates re-streamed cells after a retry and
// verifies per sub-job that everything it asked for was delivered.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gippr/internal/experiments"
	"gippr/internal/retry"
	"gippr/internal/serve"
	"gippr/internal/workload"
)

// Signature is the result-determining configuration a peer must share with
// the coordinator before it may own cells: cells computed at a different
// scale or cache geometry would merge into a silently wrong manifest.
type Signature struct {
	Records  int
	WarmFrac float64
	Cache    string
}

// SignatureOf extracts the comparable signature from a health document.
func SignatureOf(h serve.Health) Signature {
	return Signature{Records: h.Records, WarmFrac: h.WarmFrac, Cache: h.Cache}
}

// Config wires a Coordinator.
type Config struct {
	// Peers are the shard workers' host:port addresses. Empty means every
	// job runs on the local Lab (the single-node path).
	Peers []string
	// Signature is the coordinator's own scale and geometry; peers whose
	// /healthz reports a different signature are marked incompatible and
	// never dispatched to. The zero value disables the check.
	Signature Signature
	// SubJobTimeout bounds one dispatch attempt (submit + stream) of one
	// sub-job; it is also sent to the worker as the sub-job's own deadline
	// so an abandoned sub-job self-reaps. Default 2m.
	SubJobTimeout time.Duration
	// Retry shapes per-peer retrying of a failed sub-job attempt before
	// failover. Zero-valued fields take the package defaults; MaxAttempts
	// defaults to 3.
	Retry retry.Policy
	// HealthInterval is the active health-probe period (default 2s).
	HealthInterval time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit (default 3); BreakerCooldown how long it stays open
	// before a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport overrides the HTTP transport (the chaos harness injects
	// faults here). Nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logf, when non-nil, receives one line per notable event (failover,
	// breaker transition, probe flip). Nil is silent.
	Logf func(format string, args ...any)
}

// peer is one shard worker plus its health and circuit state.
type peer struct {
	addr string
	brk  *breaker

	mu         sync.Mutex
	probed     bool // at least one probe completed
	healthy    bool
	compatible bool
	lastErr    string

	probes     atomic.Uint64
	probeFails atomic.Uint64
	subJobs    atomic.Uint64
	subJobFail atomic.Uint64
}

// setErr records the peer's most recent failure for /metrics.
func (p *peer) setErr(err error) {
	p.mu.Lock()
	p.lastErr = err.Error()
	p.mu.Unlock()
}

// dispatchable reports whether assignment may consider this peer at all:
// a probed-incompatible peer is permanently out (until its config
// changes); an unprobed one is admitted optimistically — if it is dead,
// the dispatch fails fast and the cell falls over.
func (p *peer) dispatchable() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.probed || p.compatible
}

// Coordinator fans grid cells out across shard workers. It implements
// serve.GridRunner and serve.ClusterReporter.
type Coordinator struct {
	cfg   Config
	cl    *client
	peers []*peer

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	subJobsSent atomic.Uint64
	retries     atomic.Uint64
	failovers   atomic.Uint64
	localCells  atomic.Uint64
	remoteCells atomic.Uint64
}

// New builds a Coordinator and starts one health prober per peer. Close
// stops the probers.
func New(cfg Config) *Coordinator {
	if cfg.SubJobTimeout <= 0 {
		cfg.SubJobTimeout = 2 * time.Minute
	}
	if cfg.Retry.MaxAttempts < 1 {
		cfg.Retry.MaxAttempts = 3
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	c := &Coordinator{cfg: cfg, cl: newClient(cfg.Transport), stop: make(chan struct{})}
	for _, addr := range cfg.Peers {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		p := &peer{addr: addr, brk: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
		p.compatible = true // until a probe says otherwise
		c.peers = append(c.peers, p)
	}
	for _, p := range c.peers {
		c.wg.Add(1)
		go c.probeLoop(p)
	}
	return c
}

// Close stops the health probers. In-flight RunGrid calls are unaffected
// (their sub-jobs own their contexts); call after the serving layer has
// drained.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// probeLoop actively health-checks one peer: an immediate probe at
// startup, then one per HealthInterval. Probe outcomes feed the peer's
// breaker, so a dead peer trips without any job traffic and a recovered
// one is readmitted by its first successful probe after the cooldown.
func (c *Coordinator) probeLoop(p *peer) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		c.probe(p)
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
	}
}

// probe runs one health check against p and updates its state.
func (c *Coordinator) probe(p *peer) {
	timeout := c.cfg.HealthInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	h, err := c.cl.health(ctx, p.addr)
	cancel()
	p.probes.Add(1)

	probed := err == nil // the health document decoded; its content is authoritative
	ok := probed && h.OK
	compatible := true
	if probed && c.cfg.Signature != (Signature{}) && SignatureOf(h) != c.cfg.Signature {
		compatible = false
		ok = false
		err = fmt.Errorf("cluster: %s is incompatible: peer %+v, coordinator %+v", p.addr, SignatureOf(h), c.cfg.Signature)
	}

	p.mu.Lock()
	wasHealthy, wasProbed := p.healthy, p.probed
	p.probed = true
	p.healthy = ok
	if probed {
		p.compatible = compatible
	}
	switch {
	case err != nil:
		p.lastErr = err.Error()
	case !h.OK:
		p.lastErr = "peer draining"
	default:
		p.lastErr = ""
	}
	p.mu.Unlock()

	if ok {
		p.brk.success()
	} else {
		p.probeFails.Add(1)
		p.brk.failure()
	}
	if !wasProbed || wasHealthy != ok {
		state, _, _, _ := p.brk.snapshot()
		c.logf("cluster: peer %s healthy=%v breaker=%s (%v)", p.addr, ok, state, err)
	}
}

// cell is one (workload, spec) grid cell moving through assignment.
type cell struct {
	wl    workload.Workload
	spec  experiments.Spec
	key   string          // rendezvous hash input: workload | policy key | geometry
	tried map[string]bool // peer addrs already charged with this cell
}

// dedupKey identifies a delivered cell: the manifest key the serve layer
// sorts by.
func (cl *cell) dedupKey() string { return cl.wl.Name + "\x00" + cl.spec.Label }

// group is one sub-job: the cells one peer owns for one workload (a
// worker request is a {workloads x policies} cross-product, so only
// same-workload cells can share a dispatch).
type group struct {
	p      *peer
	wl     workload.Workload
	sample int // the parent plan's sampling shift, forwarded verbatim
	cells  []*cell
}

// merger accumulates streamed cells with deduplication: retried sub-jobs
// legitimately re-stream cells they already delivered (every engine
// computes identical values, so dropping the duplicate is lossless), and a
// confused peer streaming cells outside the plan is ignored rather than
// corrupting the manifest.
type merger struct {
	mu       sync.Mutex
	expected map[string]int // dedupKey -> cells wanted (duplicate specs allowed)
	got      map[string]int
	emit     func(experiments.GridCell)
}

func newMerger(cells []*cell, emit func(experiments.GridCell)) *merger {
	m := &merger{expected: make(map[string]int), got: make(map[string]int), emit: emit}
	for _, cl := range cells {
		m.expected[cl.dedupKey()]++
	}
	return m
}

// deliver accepts one streamed cell if the plan still wants it, forwarding
// it to the serve layer exactly once per wanted occurrence.
func (m *merger) deliver(c experiments.GridCell, remote *atomic.Uint64, local *atomic.Uint64, isRemote bool) {
	key := c.Workload + "\x00" + c.Policy
	m.mu.Lock()
	accept := m.got[key] < m.expected[key]
	if accept {
		m.got[key]++
	}
	m.mu.Unlock()
	if !accept {
		return
	}
	if isRemote {
		remote.Add(1)
	} else {
		local.Add(1)
	}
	m.emit(c)
}

// satisfied reports whether every occurrence of the cell's key arrived.
func (m *merger) satisfied(cl *cell) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.got[cl.dedupKey()] >= m.expected[cl.dedupKey()]
}

// missing counts undelivered cells.
func (m *merger) missing() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k, want := range m.expected {
		if m.got[k] < want {
			n += want - m.got[k]
		}
	}
	return n
}

// RunGrid implements serve.GridRunner: assign every cell to its rendezvous
// owner among dispatchable peers, fan sub-jobs out concurrently, and — per
// failed sub-job — reassign its cells down their rendezvous rankings until
// they land or degrade to the local Lab. With no peers configured the
// whole plan runs locally, which is the identical degradation path.
func (c *Coordinator) RunGrid(ctx context.Context, local *experiments.Lab, plan serve.GridPlan, emit func(experiments.GridCell)) error {
	cells := make([]*cell, 0, len(plan.Workloads)*len(plan.Specs))
	for _, w := range plan.Workloads {
		for _, sp := range plan.Specs {
			cells = append(cells, &cell{
				wl:    w,
				spec:  sp,
				key:   w.Name + "|" + sp.Key + "|" + c.cfg.Signature.Cache,
				tried: make(map[string]bool),
			})
		}
	}
	m := newMerger(cells, emit)

	pending := cells
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		groups, localCells := c.assign(pending, int(plan.Shift))

		var mu sync.Mutex
		var failed []*cell
		var wg sync.WaitGroup
		for _, g := range groups {
			wg.Add(1)
			go func(g group) {
				defer wg.Done()
				err := c.runSubJob(ctx, g, m)
				if err != nil {
					c.logf("cluster: sub-job (%s x %d cells) on %s failed: %v", g.wl.Name, len(g.cells), g.p.addr, err)
				}
				// Success still re-checks delivery: a peer that answered
				// "done" but streamed fewer cells than asked (or garbage
				// the merger refused) forfeits the undelivered ones.
				for _, cl := range g.cells {
					if !m.satisfied(cl) {
						mu.Lock()
						failed = append(failed, cl)
						mu.Unlock()
					}
				}
			}(g)
		}

		var localErr error
		if len(localCells) > 0 {
			localErr = c.runLocal(ctx, local, localCells, m)
		}
		wg.Wait()
		if localErr != nil {
			// The local Lab is the engine of last resort; its failure
			// (cancellation included) fails the job.
			return localErr
		}
		pending = failed
	}
	if n := m.missing(); n > 0 {
		return fmt.Errorf("cluster: %d cells undelivered after exhausting peers and local fallback", n)
	}
	return nil
}

// assign routes every pending cell: the first peer in its rendezvous
// ranking that has not already been charged with it, is not known
// incompatible, and whose breaker admits traffic. Cells with no such peer
// degrade to the local Lab. Chosen peers are charged immediately so a cell
// never revisits a peer across failover rounds.
func (c *Coordinator) assign(pending []*cell, sample int) ([]group, []*cell) {
	byGroup := make(map[string]*group)
	var local []*cell
	var order []string // deterministic dispatch order for tests/logs
	for _, cl := range pending {
		ranking := rank(cl.key, c.peers)
		var chosen *peer
		for _, p := range ranking {
			if cl.tried[p.addr] || !p.dispatchable() || !p.brk.allow() {
				continue
			}
			chosen = p
			break
		}
		if chosen == nil {
			if len(c.peers) > 0 {
				// The cell had an owner but no usable peer remains: routing
				// it to the local Lab is the final failover hop.
				c.failovers.Add(1)
			}
			local = append(local, cl)
			continue
		}
		cl.tried[chosen.addr] = true
		if len(ranking) > 0 && chosen != ranking[0] {
			// The cell's rendezvous owner was skipped (tripped breaker,
			// incompatible, or already failed it): that is a failover.
			c.failovers.Add(1)
		}
		gk := chosen.addr + "\x00" + cl.wl.Name
		g, ok := byGroup[gk]
		if !ok {
			g = &group{p: chosen, wl: cl.wl, sample: sample}
			byGroup[gk] = g
			order = append(order, gk)
		}
		g.cells = append(g.cells, cl)
	}
	groups := make([]group, 0, len(byGroup))
	for _, gk := range order {
		groups = append(groups, *byGroup[gk])
	}
	return groups, local
}

// runSubJob dispatches one group to its peer with per-attempt deadlines
// and the configured retry policy, feeding the breaker with per-attempt
// outcomes.
func (c *Coordinator) runSubJob(ctx context.Context, g group, m *merger) error {
	jr := serve.JobRequest{
		Workloads:  []string{g.wl.Name},
		Exact:      true,
		Sample:     g.sample,
		TimeoutSec: c.cfg.SubJobTimeout.Seconds(),
	}
	for _, cl := range g.cells {
		if strings.HasPrefix(cl.spec.Key, "gippr-ipv|") {
			// The IPV spec travels as the request's ipv field (there is no
			// registry name for it); the worker rebuilds the identical
			// spec from the canonical vector.
			jr.IPV = strings.TrimPrefix(cl.spec.Key, "gippr-ipv|")
			continue
		}
		jr.Policies = append(jr.Policies, cl.spec.Key)
	}

	pol := c.cfg.Retry
	pol.AttemptTimeout = c.cfg.SubJobTimeout
	pol.OnRetry = func(attempt int, err error, delay time.Duration) {
		c.retries.Add(1)
		c.logf("cluster: retrying sub-job on %s after attempt %d (%v), backoff %v", g.p.addr, attempt, err, delay)
	}
	return pol.Do(ctx, func(actx context.Context) error {
		c.subJobsSent.Add(1)
		g.p.subJobs.Add(1)
		err := c.cl.run(actx, g.p.addr, jr, func(cell experiments.GridCell) {
			m.deliver(cell, &c.remoteCells, &c.localCells, true)
		})
		if err != nil {
			g.p.subJobFail.Add(1)
			g.p.brk.failure()
			g.p.setErr(err)
			return err
		}
		g.p.brk.success()
		return nil
	})
}

// runLocal is the degradation floor: compute cells on the coordinator's
// own Lab view, one Grid call per workload group (the same engine a
// single-node daemon uses, so nothing distinguishes a degraded cluster
// from no cluster at all).
func (c *Coordinator) runLocal(ctx context.Context, local *experiments.Lab, cells []*cell, m *merger) error {
	type wlGroup struct {
		wl    workload.Workload
		specs []experiments.Spec
	}
	byWl := make(map[string]*wlGroup)
	var order []string
	for _, cl := range cells {
		g, ok := byWl[cl.wl.Name]
		if !ok {
			g = &wlGroup{wl: cl.wl}
			byWl[cl.wl.Name] = g
			order = append(order, cl.wl.Name)
		}
		g.specs = append(g.specs, cl.spec)
	}
	if len(cells) > 0 {
		c.logf("cluster: running %d cells on the local lab", len(cells))
	}
	for _, name := range order {
		g := byWl[name]
		_, err := local.Grid(ctx, g.specs, []workload.Workload{g.wl}, func(cell experiments.GridCell) {
			m.deliver(cell, &c.remoteCells, &c.localCells, false)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ClusterSnapshot implements serve.ClusterReporter for /metrics.
func (c *Coordinator) ClusterSnapshot() serve.ClusterSnapshot {
	snap := serve.ClusterSnapshot{
		SubJobsSent: c.subJobsSent.Load(),
		Retries:     c.retries.Load(),
		Failovers:   c.failovers.Load(),
		LocalCells:  c.localCells.Load(),
		RemoteCells: c.remoteCells.Load(),
	}
	for _, p := range c.peers {
		state, fails, opens, closes := p.brk.snapshot()
		p.mu.Lock()
		ps := serve.ClusterPeer{
			Addr:       p.addr,
			Breaker:    state,
			Healthy:    p.healthy,
			Compatible: p.compatible,
			ConsecFail: fails,
			Probes:     p.probes.Load(),
			ProbeFails: p.probeFails.Load(),
			SubJobs:    p.subJobs.Load(),
			SubJobFail: p.subJobFail.Load(),
			LastError:  p.lastErr,
		}
		p.mu.Unlock()
		snap.Peers = append(snap.Peers, ps)
		snap.BreakerOpens += opens
		snap.BreakerCloses += closes
	}
	return snap
}
