package cluster

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b.now = clk.now
	return b, clk
}

func wantState(t *testing.T, b *breaker, want string) {
	t.Helper()
	if state, _, _, _ := b.snapshot(); state != want {
		t.Fatalf("breaker state = %s, want %s", state, want)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.failure()
	b.failure()
	wantState(t, b, "closed")
	if !b.allow() {
		t.Fatal("closed breaker refused traffic")
	}
	b.failure() // third consecutive failure trips it
	wantState(t, b, "open")
	if b.allow() {
		t.Fatal("open breaker admitted traffic before cooldown")
	}
	if _, _, opens, _ := b.snapshot(); opens != 1 {
		t.Fatalf("opens = %d, want 1", opens)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.failure()
	b.failure()
	b.success() // streak broken
	b.failure()
	b.failure()
	wantState(t, b, "closed")
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.failure()
	b.failure()
	wantState(t, b, "open")

	clk.advance(999 * time.Millisecond)
	if b.allow() {
		t.Fatal("breaker admitted traffic before the cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	wantState(t, b, "half-open")
	b.success()
	wantState(t, b, "closed")
	if _, _, _, closes := b.snapshot(); closes != 1 {
		t.Fatalf("closes = %d, want 1", closes)
	}
	if !b.allow() {
		t.Fatal("re-closed breaker refused traffic")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.failure()
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("no half-open probe admitted")
	}
	b.failure() // the probe failed: straight back to open, cooldown restarts
	wantState(t, b, "open")
	clk.advance(999 * time.Millisecond)
	if b.allow() {
		t.Fatal("reopened breaker did not restart its cooldown")
	}
	clk.advance(time.Millisecond)
	if !b.allow() {
		t.Fatal("no second half-open probe after restarted cooldown")
	}
	if _, _, opens, _ := b.snapshot(); opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
}

// TestBreakerProbeSuccessClosesOpenCircuit covers the health-prober path:
// a success arriving while the circuit is open (the prober does not call
// allow) closes it directly and counts the close.
func TestBreakerProbeSuccessClosesOpenCircuit(t *testing.T) {
	b, _ := newTestBreaker(1, time.Hour)
	b.failure()
	wantState(t, b, "open")
	b.success()
	wantState(t, b, "closed")
	if _, _, opens, closes := b.snapshot(); opens != 1 || closes != 1 {
		t.Fatalf("opens/closes = %d/%d, want 1/1", opens, closes)
	}
}
