// Package chaos is the test-only fault-injection harness for the cluster
// layer. It wraps the two seams every cross-node byte passes through — the
// coordinator's http.RoundTripper and a worker's http.Handler — with
// scripted faults: added latency, synthesized 5xx, dropped connections,
// and streams torn after a byte budget. Faults are rule-matched and
// counted, not sampled, so "the second stream request dies mid-body" is a
// deterministic test line rather than a flake; the optional latency jitter
// is seeded for the same reason.
//
// Nothing in the production path imports this package.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the synthetic transport-level failure used for dropped
// connections, so tests (and error chains) can tell injected faults from
// real ones.
var ErrInjected = errors.New("chaos: injected connection failure")

// Rule scripts one fault. The zero value matches every request and
// injects nothing; set fields to narrow and to hurt.
type Rule struct {
	// Match limits the rule to some requests: method and/or a substring of
	// the URL path. Empty fields match everything.
	Method     string
	PathSubstr string

	// Times bounds how many matching requests the rule faults; 0 means
	// every one, forever. Skip lets the first N matches through clean
	// (e.g. "fault the second stream, not the first").
	Times int
	Skip  int

	// Latency is added before the request proceeds (plus up to Jitter,
	// drawn from the harness's seeded generator). Cancellation of the
	// request context cuts the sleep short.
	Latency time.Duration
	Jitter  time.Duration

	// Exactly one (or none) of the fault kinds below.
	//
	// DropConn fails the exchange with ErrInjected as if the TCP
	// connection died. On a Transport the round trip errors; on a Handler
	// the connection is aborted via http.ErrAbortHandler before any bytes.
	DropConn bool
	// Status short-circuits with this status code and an empty body.
	Status int
	// TearAfter cuts the response body off after N bytes: a Transport
	// truncates and then fails the read; a Handler writes N bytes and
	// aborts the connection. Streams die mid-cell this way.
	TearAfter int64
}

// Fault is a registered Rule plus its hit counters — the handle tests
// assert "the retry really happened" against.
type Fault struct {
	Rule

	skipped atomic.Int64
	faulted atomic.Int64
}

// Faults reports how many requests this rule has actually faulted.
func (f *Fault) Faults() int64 { return f.faulted.Load() }

// matches reports whether the rule applies to the request at all.
func (f *Fault) matches(req *http.Request) bool {
	if f.Method != "" && req.Method != f.Method {
		return false
	}
	if f.PathSubstr != "" && !strings.Contains(req.URL.Path, f.PathSubstr) {
		return false
	}
	return true
}

// claim consumes one matching request, reporting whether it should fault.
func (f *Fault) claim() bool {
	if s := f.skipped.Add(1); int(s) <= f.Skip {
		return false
	}
	if n := f.faulted.Add(1); f.Times > 0 && int(n) > f.Times {
		f.faulted.Add(-1)
		return false
	}
	return true
}

// harness holds the shared rule list and seeded jitter source.
type harness struct {
	mu    sync.Mutex
	rules []*Fault
	rng   *rand.Rand
}

func newHarness(seed uint64) *harness {
	return &harness{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// add registers a rule and returns it for fault-count assertions.
func (h *harness) add(r Rule) *Fault {
	f := &Fault{Rule: r}
	h.mu.Lock()
	h.rules = append(h.rules, f)
	h.mu.Unlock()
	return f
}

// pick returns the first rule that matches and claims the request.
func (h *harness) pick(req *http.Request) *Fault {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.rules {
		if r.matches(req) && r.claim() {
			return r
		}
	}
	return nil
}

// sleep applies a rule's latency (with seeded jitter), cut short by ctx.
func (h *harness) sleep(req *http.Request, r *Fault) {
	d := r.Latency
	if r.Jitter > 0 {
		h.mu.Lock()
		d += time.Duration(h.rng.Int64N(int64(r.Jitter)))
		h.mu.Unlock()
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-req.Context().Done():
	}
}

// Transport injects faults on the client side of the wire: wrap the
// coordinator's http.RoundTripper with it (cluster.Config.Transport).
type Transport struct {
	*harness
	base http.RoundTripper
}

// NewTransport wraps base (nil means http.DefaultTransport) with a seeded
// fault harness. Add faults with Rule.
func NewTransport(base http.RoundTripper, seed uint64) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{harness: newHarness(seed), base: base}
}

// Rule registers a fault rule; the returned handle reports Faults().
func (t *Transport) Rule(r Rule) *Fault { return t.add(r) }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.pick(req)
	if r == nil {
		return t.base.RoundTrip(req)
	}
	t.sleep(req, r)
	switch {
	case r.DropConn:
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL.Path)
	case r.Status != 0:
		return &http.Response{
			StatusCode: r.Status,
			Status:     http.StatusText(r.Status),
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     make(http.Header),
			Body:       http.NoBody,
			Request:    req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if r.TearAfter > 0 {
		resp.Body = &tornBody{rc: resp.Body, left: r.TearAfter}
	}
	return resp, err
}

// tornBody reads through up to left bytes, then fails like a dying TCP
// stream (an error, not a clean EOF — the scanner must notice).
type tornBody struct {
	rc   io.ReadCloser
	left int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, fmt.Errorf("%w: body torn", ErrInjected)
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= int64(n)
	if err == nil && b.left <= 0 {
		err = fmt.Errorf("%w: body torn", ErrInjected)
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }

// Handler injects faults on the server side of the wire: wrap a worker's
// serve handler with it, and the faults happen after real work has
// started — a torn stream here killed a job that was genuinely running,
// which is as close to kill -9 as an in-process test can get.
type Handler struct {
	*harness
	next http.Handler
}

// NewHandler wraps next with a seeded fault harness.
func NewHandler(next http.Handler, seed uint64) *Handler {
	return &Handler{harness: newHarness(seed), next: next}
}

// Rule registers a fault rule; the returned handle reports Faults().
func (h *Handler) Rule(r Rule) *Fault { return h.add(r) }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r := h.pick(req)
	if r == nil {
		h.next.ServeHTTP(w, req)
		return
	}
	h.sleep(req, r)
	switch {
	case r.DropConn:
		// The canonical way to kill the connection without a response:
		// net/http recovers this sentinel and closes the socket.
		panic(http.ErrAbortHandler)
	case r.Status != 0:
		w.WriteHeader(r.Status)
		return
	case r.TearAfter > 0:
		h.next.ServeHTTP(&tornWriter{ResponseWriter: w, left: r.TearAfter}, req)
		return
	}
	h.next.ServeHTTP(w, req)
}

// tornWriter lets a handler write up to left bytes, then aborts the
// connection mid-response. Flush passes through so streamed cells really
// reach the client before the tear.
type tornWriter struct {
	http.ResponseWriter
	left int64
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		panic(http.ErrAbortHandler)
	}
	cut := false
	if int64(len(p)) > t.left {
		p = p[:t.left]
		cut = true
	}
	n, err := t.ResponseWriter.Write(p)
	t.left -= int64(n)
	if cut && err == nil {
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (t *tornWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
