package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gippr/internal/experiments"
	"gippr/internal/retry"
	"gippr/internal/serve"
)

// client speaks the gippr-serve v1 HTTP surface to shard workers. One
// attempt of a sub-job is submit + stream-to-completion; any tear in the
// middle (connection drop, truncated NDJSON, non-done trailer) surfaces as
// an error for the retry/failover machinery above it. A worker-side 400 is
// marked retry.Permanent — it means the sub-job itself is malformed or the
// peer is incompatible, and resending the same bytes cannot succeed.
type client struct {
	hc *http.Client
}

func newClient(transport http.RoundTripper) *client {
	if transport == nil {
		transport = http.DefaultTransport
	}
	// No client-level timeout: per-attempt deadlines come from the retry
	// policy's contexts, which (unlike http.Client.Timeout) the streaming
	// read respects per sub-job rather than per connection.
	return &client{hc: &http.Client{Transport: transport}}
}

// health fetches and decodes a peer's /healthz. A 503 (draining) decodes
// fine and reports OK=false; transport-level failures return the error.
func (c *client) health(ctx context.Context, addr string) (serve.Health, error) {
	var h serve.Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return h, fmt.Errorf("cluster: %s /healthz: status %d", addr, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); err != nil {
		return h, fmt.Errorf("cluster: %s /healthz: %w", addr, err)
	}
	return h, nil
}

// run executes one sub-job on addr: submit, stream every cell into onCell,
// and require a "done" trailer. On any failure after submission the job is
// best-effort cancelled on the worker so an abandoned sub-job does not
// keep burning the peer's capacity.
func (c *client) run(ctx context.Context, addr string, jr serve.JobRequest, onCell func(experiments.GridCell)) error {
	body, err := json.Marshal(jr)
	if err != nil {
		return retry.Permanent(fmt.Errorf("cluster: marshal sub-job: %w", err))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s submit: %w", addr, err)
	}
	var st serve.JobStatus
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusBadRequest:
		// The peer rejected the sub-job's content: retrying the identical
		// bytes is futile (version skew or a coordinator bug).
		return retry.Permanent(fmt.Errorf("cluster: %s rejected sub-job: status 400", addr))
	case resp.StatusCode != http.StatusAccepted:
		// 429 (queue full), 503 (draining), 5xx: all transient from the
		// coordinator's seat — retry here, then fail over.
		return fmt.Errorf("cluster: %s submit: status %d", addr, resp.StatusCode)
	case decErr != nil:
		return fmt.Errorf("cluster: %s submit: decode response: %w", addr, decErr)
	case st.ID == "":
		return fmt.Errorf("cluster: %s submit: response carries no job id", addr)
	}

	if err := c.stream(ctx, addr, st.ID, onCell); err != nil {
		c.cancel(addr, st.ID)
		return err
	}
	return nil
}

// stream consumes the sub-job's NDJSON: one GridCell per line, then a
// {"state": ...} trailer. Anything other than a complete stream ending in
// "done" is an error — a torn stream must look exactly like a dead peer.
func (c *client) stream(ctx context.Context, addr, id string, onCell func(experiments.GridCell)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s stream: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s stream: status %d", addr, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// Cells never carry a "state" key, so the shapes are unambiguous.
		if bytes.Contains(line, []byte(`"state"`)) {
			var trailer struct {
				State serve.State `json:"state"`
			}
			if err := json.Unmarshal(line, &trailer); err != nil {
				return fmt.Errorf("cluster: %s stream: bad trailer %q: %w", addr, line, err)
			}
			if trailer.State != serve.StateDone {
				return fmt.Errorf("cluster: %s sub-job %s ended %s", addr, id, trailer.State)
			}
			return nil
		}
		var cell experiments.GridCell
		if err := json.Unmarshal(line, &cell); err != nil {
			return fmt.Errorf("cluster: %s stream: bad cell %q: %w", addr, line, err)
		}
		onCell(cell)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cluster: %s stream torn: %w", addr, err)
	}
	return fmt.Errorf("cluster: %s stream ended without a trailer: %w", addr, io.ErrUnexpectedEOF)
}

// cancel best-effort DELETEs an abandoned sub-job so the worker stops
// computing cells nobody will merge. Fire-and-forget with its own short
// deadline: the coordinator's context may already be dead.
func (c *client) cancel(addr, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, "http://"+addr+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := c.hc.Do(req)
	if err == nil {
		resp.Body.Close()
	}
}
