package cluster

import "hash/fnv"

// Rendezvous (highest-random-weight) hashing decides which peer owns a
// grid cell: every peer scores hash(peerAddr, cellKey), and the ranking by
// descending score is the cell's failover order — the first entry is the
// owner, the rest are the peers a cell falls over to when the owner is
// down or tripped. The properties the cluster leans on:
//
//   - Stability: adding or removing one peer only remaps the cells that
//     peer owned (or wins); everyone else's assignment is untouched, so a
//     crash does not reshuffle the whole grid (and every peer's memoized
//     Lab stays warm for the cells it keeps).
//   - Agreement without coordination: any coordinator with the same peer
//     list computes the same ownership — there is no assignment state to
//     replicate or lose.
//   - Determinism: FNV-1a is seedless and stable across processes and
//     architectures, so tests and a restarted coordinator agree with the
//     previous run.

// score hashes one (peer, key) pair: 64-bit FNV-1a through a murmur3
// avalanche finalizer. The finalizer matters — raw FNV-1a of short,
// near-identical peer addresses ("127.0.0.1:4123x") is order-correlated
// enough that one peer can win every key, and rendezvous hashing is only
// balanced if the per-peer scores are independent.
func score(peerAddr, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peerAddr)) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})        //nolint:errcheck
	h.Write([]byte(key))      //nolint:errcheck
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rank orders peers by descending rendezvous score for key (ties broken by
// address so the order is total). The input slice is not modified.
func rank(key string, peers []*peer) []*peer {
	out := make([]*peer, len(peers))
	copy(out, peers)
	// Insertion sort: peer counts are single digits, and avoiding a
	// closure-allocating sort.Slice keeps assignment cheap per cell.
	for i := 1; i < len(out); i++ {
		p := out[i]
		ps := score(p.addr, key)
		j := i - 1
		for j >= 0 {
			qs := score(out[j].addr, key)
			if qs > ps || (qs == ps && out[j].addr <= p.addr) {
				break
			}
			out[j+1] = out[j]
			j--
		}
		out[j+1] = p
	}
	return out
}
