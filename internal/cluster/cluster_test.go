package cluster

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"gippr/internal/cluster/chaos"
	"gippr/internal/experiments"
	"gippr/internal/retry"
	"gippr/internal/serve"
)

// testScale matches the serve package's test scale, so cluster manifests
// can be compared against single-node ones cell for cell, bit for bit.
var testScale = experiments.CustomScale(4_000, 1.0/3)

// testIPV is the paper's example vector (ipv.Vector.String's docstring).
const testIPV = "[ 0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13 ]"

// newServe builds a serve.Server at the test scale with cleanup.
func newServe(t *testing.T, role string) *serve.Server {
	t.Helper()
	s := serve.New(serve.Config{Scale: testScale, Workers: 2, QueueDepth: 8, LabWorkers: 2, Role: role})
	t.Cleanup(s.Close)
	return s
}

// newWorker spins up one shard worker over loopback HTTP, optionally
// wrapped in a chaos handler, and returns its host:port.
func newWorker(t *testing.T, wrap func(http.Handler) http.Handler) string {
	t.Helper()
	h := http.Handler(newServe(t, "worker").Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// newCoordinator wires a coordinator serve.Server to its peers and serves
// it over loopback HTTP. tweak may adjust the cluster config before New.
func newCoordinator(t *testing.T, peers []string, tweak func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	s := newServe(t, "coordinator")
	cfg := Config{
		Peers:            peers,
		Signature:        SignatureOf(s.Health()),
		SubJobTimeout:    20 * time.Second,
		HealthInterval:   25 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
		Retry: retry.Policy{
			MaxAttempts: 3,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    25 * time.Millisecond,
		},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	coord := New(cfg)
	t.Cleanup(coord.Close)
	s.SetRunner(coord)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return coord, ts
}

var idField = regexp.MustCompile(`(?m)^\s*"id": "[^"]*",?\n`)

// runJob submits req, waits for it to finish, and returns the /result
// manifest with the job id (the only legitimately varying byte) stripped.
func runJob(t *testing.T, ts *httptest.Server, req serve.JobRequest) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st serve.JobStatus
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || decErr != nil {
		t.Fatalf("submit: status %d, decode err %v", resp.StatusCode, decErr)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll decode: %v", err)
		}
		if st.State == serve.StateDone {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rr, err := http.Get(ts.URL + st.ResultURL)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", rr.StatusCode)
	}
	raw, err := io.ReadAll(rr.Body)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	return idField.ReplaceAll(raw, nil)
}

// reference computes the single-node manifest the cluster must reproduce
// byte for byte.
func reference(t *testing.T, req serve.JobRequest) []byte {
	t.Helper()
	ts := httptest.NewServer(newServe(t, "single").Handler())
	t.Cleanup(ts.Close)
	return runJob(t, ts, req)
}

// deadAddr reserves a loopback port and releases it: connecting gets a
// fast refusal, which is what a SIGKILLed worker looks like.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

var gridReq = serve.JobRequest{
	Workloads: []string{"mcf_like", "libquantum_like"},
	Policies:  []string{"lru", "plru"},
}

// TestClusterManifestBitIdentical is the tentpole acceptance criterion in
// its happy-path form: a two-worker cluster's manifest (IPV cell included,
// so the vector travels the wire) must be byte-identical to a single
// node's, and every cell must have been computed remotely.
func TestClusterManifestBitIdentical(t *testing.T) {
	req := gridReq
	req.IPV = testIPV
	want := reference(t, req)

	peers := []string{newWorker(t, nil), newWorker(t, nil)}
	coord, ts := newCoordinator(t, peers, nil)
	got := runJob(t, ts, req)
	if string(got) != string(want) {
		t.Fatalf("cluster manifest differs from single-node:\n got: %s\nwant: %s", got, want)
	}

	snap := coord.ClusterSnapshot()
	if snap.RemoteCells != 6 || snap.LocalCells != 0 {
		t.Fatalf("remote/local cells = %d/%d, want 6/0 (snapshot %+v)", snap.RemoteCells, snap.LocalCells, snap)
	}

	// The coordinator's /metrics must carry the cluster section.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var ms serve.MetricsSnapshot
	err = json.NewDecoder(mr.Body).Decode(&ms)
	mr.Body.Close()
	if err != nil || ms.Cluster == nil {
		t.Fatalf("metrics cluster section missing (err %v)", err)
	}
	if len(ms.Cluster.Peers) != 2 {
		t.Fatalf("metrics reports %d peers, want 2", len(ms.Cluster.Peers))
	}
}

// TestClusterNoPeersRunsLocal: an empty peer list is the single-node
// deployment — everything runs on the local Lab through the same code
// path full degradation uses.
func TestClusterNoPeersRunsLocal(t *testing.T) {
	want := reference(t, gridReq)
	coord, ts := newCoordinator(t, nil, nil)
	got := runJob(t, ts, gridReq)
	if string(got) != string(want) {
		t.Fatalf("no-peer cluster manifest differs from single-node:\n got: %s\nwant: %s", got, want)
	}
	snap := coord.ClusterSnapshot()
	if snap.LocalCells != 4 || snap.RemoteCells != 0 || snap.Failovers != 0 {
		t.Fatalf("local/remote/failovers = %d/%d/%d, want 4/0/0", snap.LocalCells, snap.RemoteCells, snap.Failovers)
	}
}

// TestClusterIncompatiblePeerNeverDispatched: a worker at a different
// scale would merge wrong cells; the probe must mark it incompatible and
// the coordinator must never send it a sub-job.
func TestClusterIncompatiblePeerNeverDispatched(t *testing.T) {
	odd := serve.New(serve.Config{Scale: experiments.CustomScale(2_000, 1.0/3), Workers: 1, QueueDepth: 2, Role: "worker"})
	t.Cleanup(odd.Close)
	ts := httptest.NewServer(odd.Handler())
	t.Cleanup(ts.Close)

	coord, cts := newCoordinator(t, []string{strings.TrimPrefix(ts.URL, "http://")}, nil)
	waitSnapshot(t, coord, func(s serve.ClusterSnapshot) bool {
		return len(s.Peers) == 1 && s.Peers[0].Probes > 0 && !s.Peers[0].Compatible
	}, "peer marked incompatible")

	want := reference(t, gridReq)
	got := runJob(t, cts, gridReq)
	if string(got) != string(want) {
		t.Fatalf("manifest differs:\n got: %s\nwant: %s", got, want)
	}
	snap := coord.ClusterSnapshot()
	if snap.Peers[0].SubJobs != 0 {
		t.Fatalf("incompatible peer received %d sub-jobs, want 0", snap.Peers[0].SubJobs)
	}
	if snap.LocalCells != 4 {
		t.Fatalf("local cells = %d, want 4", snap.LocalCells)
	}
}

// waitSnapshot polls the coordinator's snapshot until cond holds.
func waitSnapshot(t *testing.T, c *Coordinator, cond func(serve.ClusterSnapshot) bool, what string) serve.ClusterSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := c.ClusterSnapshot()
		if cond(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s (snapshot %+v)", what, s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosDeadPeerBreakerOpensAndJobDegrades is the kill -9 scenario:
// the only peer is unreachable, so health probes trip its breaker without
// any job traffic, and a submitted job completes on the local Lab with a
// manifest identical to single-node — plus failovers on the books.
func TestChaosDeadPeerBreakerOpensAndJobDegrades(t *testing.T) {
	coord, ts := newCoordinator(t, []string{deadAddr(t)}, nil)
	waitSnapshot(t, coord, func(s serve.ClusterSnapshot) bool {
		return len(s.Peers) == 1 && s.Peers[0].Breaker == "open" && s.Peers[0].ProbeFails >= 3
	}, "breaker to open on probe failures")

	want := reference(t, gridReq)
	got := runJob(t, ts, gridReq)
	if string(got) != string(want) {
		t.Fatalf("degraded manifest differs:\n got: %s\nwant: %s", got, want)
	}
	snap := coord.ClusterSnapshot()
	if snap.LocalCells != 4 || snap.RemoteCells != 0 {
		t.Fatalf("local/remote = %d/%d, want 4/0", snap.LocalCells, snap.RemoteCells)
	}
	if snap.Failovers == 0 {
		t.Fatal("no failovers recorded though every cell was rerouted off its owner")
	}
	if snap.BreakerOpens == 0 {
		t.Fatal("no breaker opens recorded")
	}
	if snap.Peers[0].Healthy {
		t.Fatal("dead peer reported healthy")
	}
}

// TestChaosDroppedSubmitRetriesThenSucceeds: one torn connection on a
// submit must cost one retry, not the job — all cells still computed
// remotely, manifest untouched.
func TestChaosDroppedSubmitRetriesThenSucceeds(t *testing.T) {
	tr := chaos.NewTransport(nil, 1)
	rule := tr.Rule(chaos.Rule{Method: http.MethodPost, PathSubstr: "/v1/jobs", DropConn: true, Times: 1})

	peer := newWorker(t, nil)
	coord, ts := newCoordinator(t, []string{peer}, func(c *Config) { c.Transport = tr })

	want := reference(t, gridReq)
	got := runJob(t, ts, gridReq)
	if string(got) != string(want) {
		t.Fatalf("manifest differs after injected submit drop:\n got: %s\nwant: %s", got, want)
	}
	if f := rule.Faults(); f != 1 {
		t.Fatalf("rule faulted %d requests, want 1", f)
	}
	snap := coord.ClusterSnapshot()
	if snap.Retries == 0 {
		t.Fatal("no retry recorded for the dropped submit")
	}
	if snap.RemoteCells != 4 || snap.LocalCells != 0 {
		t.Fatalf("remote/local = %d/%d, want 4/0", snap.RemoteCells, snap.LocalCells)
	}
}

// TestChaosFlakySubmitsRecover: a peer answering 503 to the first two
// submits (a restart, a full queue) is retried through, never failed over.
func TestChaosFlakySubmitsRecover(t *testing.T) {
	tr := chaos.NewTransport(nil, 2)
	rule := tr.Rule(chaos.Rule{Method: http.MethodPost, PathSubstr: "/v1/jobs", Status: http.StatusServiceUnavailable, Times: 2})

	peer := newWorker(t, nil)
	coord, ts := newCoordinator(t, []string{peer}, func(c *Config) {
		c.Transport = tr
		c.Retry.MaxAttempts = 4
	})

	want := reference(t, gridReq)
	got := runJob(t, ts, gridReq)
	if string(got) != string(want) {
		t.Fatalf("manifest differs after injected 503s:\n got: %s\nwant: %s", got, want)
	}
	if f := rule.Faults(); f != 2 {
		t.Fatalf("rule faulted %d requests, want 2", f)
	}
	snap := coord.ClusterSnapshot()
	if snap.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", snap.Retries)
	}
	if snap.RemoteCells != 4 {
		t.Fatalf("remote cells = %d, want 4", snap.RemoteCells)
	}
}

// TestChaosTornStreamFallsBackLocal: every stream from the only peer is
// torn mid-body (the worker keeps dying mid-answer), so after retries the
// cells degrade to the local Lab — and any partial cells that did arrive
// before the tears must not duplicate in the manifest.
func TestChaosTornStreamFallsBackLocal(t *testing.T) {
	tr := chaos.NewTransport(nil, 3)
	rule := tr.Rule(chaos.Rule{Method: http.MethodGet, PathSubstr: "/stream", TearAfter: 200})

	peer := newWorker(t, nil)
	coord, ts := newCoordinator(t, []string{peer}, func(c *Config) {
		c.Transport = tr
		c.Retry.MaxAttempts = 2
	})

	want := reference(t, gridReq)
	got := runJob(t, ts, gridReq)
	if string(got) != string(want) {
		t.Fatalf("manifest differs after torn streams:\n got: %s\nwant: %s", got, want)
	}
	if rule.Faults() == 0 {
		t.Fatal("tear rule never fired")
	}
	snap := coord.ClusterSnapshot()
	if snap.LocalCells == 0 {
		t.Fatal("no cells degraded to the local lab despite every stream tearing")
	}
	if snap.LocalCells+snap.RemoteCells != 4 {
		t.Fatalf("local+remote = %d+%d, want exactly 4 accepted cells", snap.LocalCells, snap.RemoteCells)
	}
	if snap.Failovers == 0 {
		t.Fatal("no failovers recorded")
	}
}

// TestChaosSlowPeerDeadlinesOut: a peer that hangs (latency far past the
// per-attempt deadline) must cost SubJobTimeout per attempt, then degrade
// — graceful degradation under slowness, not just death.
func TestChaosSlowPeerDeadlinesOut(t *testing.T) {
	tr := chaos.NewTransport(nil, 4)
	tr.Rule(chaos.Rule{Method: http.MethodGet, PathSubstr: "/stream", Latency: time.Minute})

	peer := newWorker(t, nil)
	coord, ts := newCoordinator(t, []string{peer}, func(c *Config) {
		c.Transport = tr
		c.SubJobTimeout = 300 * time.Millisecond
		c.Retry.MaxAttempts = 2
	})

	want := reference(t, gridReq)
	start := time.Now()
	got := runJob(t, ts, gridReq)
	if string(got) != string(want) {
		t.Fatalf("manifest differs after slow peer:\n got: %s\nwant: %s", got, want)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("degradation took %v — per-attempt deadlines are not bounding slow peers", elapsed)
	}
	snap := coord.ClusterSnapshot()
	if snap.LocalCells != 4 {
		t.Fatalf("local cells = %d, want 4 (slow peer should never complete a stream)", snap.LocalCells)
	}
}

// TestChaosWorkerDiesMidJobFailsOverToPeer is the two-worker SIGKILL
// scenario: one worker's streams are severed at the socket (the in-process
// equivalent of kill -9 mid-job), and its cells must fail over to the
// surviving worker — manifest identical, zero local fallback.
func TestChaosWorkerDiesMidJobFailsOverToPeer(t *testing.T) {
	req := serve.JobRequest{
		Workloads: []string{"mcf_like", "libquantum_like"},
		Policies:  []string{"lru", "random", "fifo", "nru", "plru", "lip"},
	}
	want := reference(t, req)

	// w1 aborts every stream connection before writing a byte; w2 is clean.
	var w1chaos *chaos.Handler
	w1 := newWorker(t, func(h http.Handler) http.Handler {
		w1chaos = chaos.NewHandler(h, 5)
		w1chaos.Rule(chaos.Rule{Method: http.MethodGet, PathSubstr: "/stream", DropConn: true})
		return w1chaos
	})
	w2 := newWorker(t, nil)
	coord, ts := newCoordinator(t, []string{w1, w2}, func(c *Config) {
		c.Retry.MaxAttempts = 2
	})

	// Rendezvous ownership is hash-of-port dependent; know what to expect.
	owned := 0
	for _, wl := range req.Workloads {
		for _, pol := range req.Policies {
			key := wl + "|" + pol + "|" + coord.cfg.Signature.Cache
			if rank(key, coord.peers)[0].addr == w1 {
				owned++
			}
		}
	}

	got := runJob(t, ts, req)
	if string(got) != string(want) {
		t.Fatalf("manifest differs after mid-job worker death:\n got: %s\nwant: %s", got, want)
	}
	snap := coord.ClusterSnapshot()
	if snap.RemoteCells != 12 || snap.LocalCells != 0 {
		t.Fatalf("remote/local = %d/%d, want 12/0 (the surviving peer covers everything)", snap.RemoteCells, snap.LocalCells)
	}
	if owned > 0 && snap.Failovers == 0 {
		t.Fatalf("dead worker owned %d cells but no failovers were recorded", owned)
	}
	if owned > 0 && w1chaos != nil {
		if snap.Peers[0].SubJobFail+snap.Peers[1].SubJobFail == 0 {
			t.Fatal("no sub-job failures recorded against the dying worker")
		}
	}
	t.Logf("dead worker owned %d/12 cells; failovers=%d retries=%d", owned, snap.Failovers, snap.Retries)
}
