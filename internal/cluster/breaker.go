package cluster

import (
	"sync"
	"time"
)

// Breaker states. The machine is the classic three-state circuit breaker:
//
//	closed     -> open       after Threshold consecutive failures
//	open       -> half-open  when Cooldown has elapsed (next Allow probes)
//	half-open  -> closed     on the first success
//	half-open  -> open       on the first failure (cooldown restarts)
//
// Successes in any state reset the consecutive-failure count. Both
// dispatch outcomes and active health probes feed the breaker, so a dead
// peer trips within Threshold probe periods even when no job is running,
// and a recovered peer is readmitted by its probes without waiting for
// live traffic to risk a request.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateNames are the /metrics spellings.
var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breaker is one peer's circuit. It is safe for concurrent use.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures
	openedAt time.Time // when the circuit last opened

	opens  uint64 // closed/half-open -> open transitions
	closes uint64 // half-open -> closed transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may be sent. On an open circuit whose
// cooldown has elapsed it transitions to half-open and admits the caller
// as the probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // closed or half-open
		return true
	}
}

// success records a successful request or probe: the circuit closes and
// the failure count resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen || b.state == breakerOpen {
		// An open circuit can close directly on a health-probe success;
		// count it as the half-open -> closed transition it logically is.
		b.closes++
	}
	b.state = breakerClosed
	b.fails = 0
}

// failure records a failed request or probe, opening the circuit at the
// threshold (immediately when half-open).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.opens++
	}
}

// snapshot returns the display state, consecutive failures, and the
// transition counters.
func (b *breaker) snapshot() (state string, fails int, opens, closes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateNames[b.state], b.fails, b.opens, b.closes
}
