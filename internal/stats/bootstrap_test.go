package stats

import (
	"math"
	"testing"

	"gippr/internal/xrand"
)

func TestBootstrapContainsPoint(t *testing.T) {
	xs := []float64{1.0, 1.1, 0.9, 1.2, 1.05, 0.95, 1.15}
	ci := BootstrapGeoMean(xs, 0.95, 500, 1)
	if !ci.Contains(ci.Point) {
		t.Fatalf("interval [%v, %v] excludes its own point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Lo > ci.Hi {
		t.Fatal("inverted interval")
	}
	if ci.Point != GeoMean(xs) {
		t.Fatal("point is not the sample geomean")
	}
}

func TestBootstrapConstantSampleIsTight(t *testing.T) {
	xs := []float64{2, 2, 2, 2, 2}
	ci := BootstrapGeoMean(xs, 0.95, 200, 3)
	if ci.Width() != 0 || ci.Lo != 2 {
		t.Fatalf("constant sample interval [%v, %v]", ci.Lo, ci.Hi)
	}
}

func TestBootstrapNarrowsWithSampleSize(t *testing.T) {
	rng := xrand.New(7)
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 0.8 + 0.4*rng.Float64()
		}
		return xs
	}
	small := BootstrapGeoMean(mk(8), 0.95, 400, 11)
	large := BootstrapGeoMean(mk(256), 0.95, 400, 11)
	if large.Width() >= small.Width() {
		t.Fatalf("CI did not narrow: n=8 width %v, n=256 width %v", small.Width(), large.Width())
	}
}

func TestBootstrapCoverage(t *testing.T) {
	// Rough frequentist sanity: across many draws from a known
	// distribution, the 90% interval should contain the true geomean far
	// more often than not.
	rng := xrand.New(99)
	const trials = 60
	trueGM := 1.0 // symmetric around 1 in log space
	hits := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 30)
		for i := range xs {
			// log-uniform in [ln 0.8, ln 1.25]: geomean exactly 1.
			u := rng.Float64()
			xs[i] = 0.8 * math.Pow(1.25/0.8, u)
		}
		ci := BootstrapGeoMean(xs, 0.90, 300, uint64(trial))
		if ci.Contains(trueGM) {
			hits++
		}
	}
	if hits < trials*3/4 {
		t.Fatalf("90%% CI contained the truth only %d/%d times", hits, trials)
	}
}

func TestBootstrapOverlaps(t *testing.T) {
	a := CI{Lo: 1.0, Hi: 1.2}
	b := CI{Lo: 1.1, Hi: 1.4}
	c := CI{Lo: 1.3, Hi: 1.5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlapping intervals not detected")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint intervals overlap")
	}
}

func TestBootstrapEmptyAndPanics(t *testing.T) {
	if ci := BootstrapGeoMean(nil, 0.95, 100, 1); ci.Point != 0 {
		t.Fatalf("empty sample CI %+v", ci)
	}
	for i, f := range []func(){
		func() { BootstrapGeoMean([]float64{1}, 0, 100, 1) },
		func() { BootstrapGeoMean([]float64{1}, 1, 100, 1) },
		func() { BootstrapGeoMean([]float64{1}, 0.95, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
}
