// Package stats provides the small set of statistics used throughout the
// evaluation: geometric and weighted means, MPKI, speedups, and simple
// descriptive summaries. These mirror the reporting conventions of the paper
// (geometric-mean speedup over LRU, weighted averages over SimPoint phases,
// misses per thousand instructions).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs. It returns 0 for an empty slice
// and panics if any element is not positive (a speedup or normalized-MPKI
// ratio of zero or below indicates a bug upstream).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns the weighted arithmetic mean of xs with the given
// weights. It panics if the lengths differ or the total weight is not
// positive. This is how per-benchmark results are combined from per-phase
// (SimPoint-like) results.
func WeightedMean(xs, weights []float64) float64 {
	if len(xs) != len(weights) {
		panic("stats: WeightedMean length mismatch")
	}
	var sum, wsum float64
	for i, x := range xs {
		if weights[i] < 0 {
			panic("stats: negative weight")
		}
		sum += x * weights[i]
		wsum += weights[i]
	}
	if wsum <= 0 {
		panic("stats: WeightedMean with non-positive total weight")
	}
	return sum / wsum
}

// MPKI returns misses per thousand instructions.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(misses) / float64(instructions)
}

// Speedup returns the speedup of a policy with cycle count cycles relative to
// a baseline with cycle count baseCycles: baseCycles/cycles. Values above 1
// mean the policy is faster than the baseline.
func Speedup(baseCycles, cycles float64) float64 {
	if cycles <= 0 {
		panic("stats: Speedup with non-positive cycles")
	}
	return baseCycles / cycles
}

// Normalize returns x/base, the convention used for "normalized MPKI"
// figures (values below 1 mean fewer misses than the baseline).
func Normalize(x, base float64) float64 {
	if base == 0 {
		if x == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return x / base
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Median     float64
	P10, P90         float64
	GeoMean          float64
	AllPositive      bool
	FractionAboveOne float64 // fraction of samples strictly above 1.0
}

// Summarize computes descriptive statistics of xs. The input is not modified.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), AllPositive: true}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Mean = Mean(sorted)
	s.Median = Percentile(sorted, 0.5)
	s.P10 = Percentile(sorted, 0.10)
	s.P90 = Percentile(sorted, 0.90)
	above := 0
	for _, x := range sorted {
		if x <= 0 {
			s.AllPositive = false
		}
		if x > 1 {
			above++
		}
	}
	s.FractionAboveOne = float64(above) / float64(len(sorted))
	if s.AllPositive {
		s.GeoMean = GeoMean(sorted)
	}
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// slice using linear interpolation. It panics on an empty slice.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
