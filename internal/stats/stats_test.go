package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestGeoMeanBasics(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{4}); !almostEqual(got, 4) {
		t.Fatalf("GeoMean([4]) = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2) {
		t.Fatalf("GeoMean([1,4]) = %v", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2) {
		t.Fatalf("GeoMean constant = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean with zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		xs := []float64{1.1, 0.9, 2.5, 0.4, 1.0}
		g := GeoMean(xs)
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 3 * x
		}
		return math.Abs(GeoMean(scaled)-3*g) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2) {
		t.Fatalf("Mean = %v", got)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 1})
	if !almostEqual(got, 2) {
		t.Fatalf("equal weights: %v", got)
	}
	got = WeightedMean([]float64{1, 3}, []float64{3, 1})
	if !almostEqual(got, 1.5) {
		t.Fatalf("3:1 weights: %v", got)
	}
	got = WeightedMean([]float64{5, 100}, []float64{1, 0})
	if !almostEqual(got, 5) {
		t.Fatalf("zero weight not ignored: %v", got)
	}
}

func TestWeightedMeanPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"length mismatch", func() { WeightedMean([]float64{1}, []float64{1, 2}) }},
		{"zero total", func() { WeightedMean([]float64{1}, []float64{0}) }},
		{"negative weight", func() { WeightedMean([]float64{1, 2}, []float64{2, -1}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("did not panic")
				}
			}()
			c.f()
		})
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(5, 1000); !almostEqual(got, 5) {
		t.Fatalf("MPKI(5,1000) = %v", got)
	}
	if got := MPKI(1, 2000); !almostEqual(got, 0.5) {
		t.Fatalf("MPKI(1,2000) = %v", got)
	}
	if got := MPKI(10, 0); got != 0 {
		t.Fatalf("MPKI with zero instructions = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); !almostEqual(got, 2) {
		t.Fatalf("Speedup = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Speedup with zero cycles did not panic")
		}
	}()
	Speedup(1, 0)
}

func TestNormalize(t *testing.T) {
	if got := Normalize(9, 10); !almostEqual(got, 0.9) {
		t.Fatalf("Normalize = %v", got)
	}
	if got := Normalize(0, 0); got != 1 {
		t.Fatalf("Normalize(0,0) = %v", got)
	}
	if got := Normalize(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("Normalize(1,0) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almostEqual(got, c.want) {
			t.Fatalf("Percentile(%v) = %v want %v", c.p, got, c.want)
		}
	}
	// interpolation between elements
	if got := Percentile([]float64{0, 10}, 0.25); !almostEqual(got, 2.5) {
		t.Fatalf("interpolated percentile = %v", got)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("did not panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 1.5, 2.5, 3.5})
	if s.N != 4 || !almostEqual(s.Min, 0.5) || !almostEqual(s.Max, 3.5) {
		t.Fatalf("bad summary %+v", s)
	}
	if !almostEqual(s.Mean, 2) || !almostEqual(s.Median, 2) {
		t.Fatalf("bad central stats %+v", s)
	}
	if !almostEqual(s.FractionAboveOne, 0.75) {
		t.Fatalf("FractionAboveOne = %v", s.FractionAboveOne)
	}
	if !s.AllPositive || s.GeoMean <= 0 {
		t.Fatalf("positivity: %+v", s)
	}
}

func TestSummarizeEmptyAndNegative(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{-1, 2})
	if s.AllPositive {
		t.Fatal("negative sample flagged AllPositive")
	}
	if s.GeoMean != 0 {
		t.Fatalf("GeoMean computed for non-positive sample: %v", s.GeoMean)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}
