package stats

import (
	"math"
	"sort"

	"gippr/internal/xrand"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point    float64
	Lo, Hi   float64
	Level    float64 // e.g. 0.95
	Resample int
}

// BootstrapGeoMean estimates a confidence interval for the geometric mean
// of xs by the percentile bootstrap: resample xs with replacement, compute
// each resample's geometric mean, and take the (1-level)/2 quantiles. Used
// to report whether two policies' geomean speedups are distinguishable
// given only 29 workloads — a question the paper leaves to eyeballing.
func BootstrapGeoMean(xs []float64, level float64, resamples int, seed uint64) CI {
	if len(xs) == 0 {
		return CI{Level: level, Resample: resamples}
	}
	if level <= 0 || level >= 1 {
		panic("stats: confidence level must be in (0,1)")
	}
	if resamples < 10 {
		panic("stats: need at least 10 bootstrap resamples")
	}
	rng := xrand.New(seed)
	means := make([]float64, resamples)
	sample := make([]float64, len(xs))
	for r := range means {
		for i := range sample {
			sample[i] = xs[rng.Intn(len(xs))]
		}
		means[r] = GeoMean(sample)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	return CI{
		Point:    GeoMean(xs),
		Lo:       Percentile(means, alpha),
		Hi:       Percentile(means, 1-alpha),
		Level:    level,
		Resample: resamples,
	}
}

// Contains reports whether the interval contains v.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi - Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// Overlaps reports whether two intervals intersect — the coarse test for
// "these two policies are statistically indistinguishable on this suite".
func (c CI) Overlaps(o CI) bool {
	return !(c.Hi < o.Lo || o.Hi < c.Lo) &&
		!math.IsNaN(c.Lo) && !math.IsNaN(o.Lo)
}
