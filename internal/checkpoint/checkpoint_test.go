package checkpoint

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Gen  int       `json:"gen"`
	RNG  uint64    `json:"rng"`
	Fits []float64 `json:"fits"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ga.ckpt")
	in := payload{Gen: 7, RNG: 0xdeadbeefcafef00d, Fits: []float64{1.0312345678901234, 0.97}}
	if err := Save(path, "fp-v1", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, "fp-v1", &out); err != nil {
		t.Fatal(err)
	}
	if out.Gen != in.Gen || out.RNG != in.RNG || len(out.Fits) != 2 ||
		out.Fits[0] != in.Fits[0] || out.Fits[1] != in.Fits[1] {
		t.Fatalf("round trip changed payload: %+v -> %+v", in, out)
	}
}

func TestLoadMissingWrapsNotExist(t *testing.T) {
	err := Load(filepath.Join(t.TempDir(), "absent.ckpt"), "fp", &payload{})
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestFingerprintMismatchRefusesClearly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ga.ckpt")
	if err := Save(path, "pop=24 gens=10", payload{Gen: 1}); err != nil {
		t.Fatal(err)
	}
	err := Load(path, "pop=64 gens=25", &payload{})
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("err = %v, want ErrFingerprint", err)
	}
	// The error must show both fingerprints so the operator can see what
	// changed.
	if !strings.Contains(err.Error(), "pop=24 gens=10") || !strings.Contains(err.Error(), "pop=64 gens=25") {
		t.Fatalf("error does not name both configs: %v", err)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ga.ckpt")
	if err := Save(path, "fp", payload{Gen: 3}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the payload without breaking the JSON shape.
	mut := strings.Replace(string(data), `"gen": 3`, `"gen": 4`, 1)
	if mut == string(data) {
		t.Fatal("test could not find the payload field to corrupt")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, "fp", &payload{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTornFileDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ga.ckpt")
	if err := Save(path, "fp", payload{Gen: 3}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, "fp", &payload{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestCrashDuringSaveNeverCorruptsPreviousSnapshot simulates the crash
// window: a writer that died after creating (and possibly part-filling) its
// temp file but before the rename. The previous snapshot must load intact,
// and a subsequent Save must still succeed and replace it atomically.
func TestCrashDuringSaveNeverCorruptsPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ga.ckpt")
	if err := Save(path, "fp", payload{Gen: 5, RNG: 42}); err != nil {
		t.Fatal(err)
	}
	// Torn temp files from three different death instants.
	for i, junk := range []string{"", `{"version":1,"finge`, strings.Repeat("x", 1<<16)} {
		tmp := filepath.Join(dir, "ga.ckpt.tmp-crash"+string(rune('a'+i)))
		if err := os.WriteFile(tmp, []byte(junk), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	var out payload
	if err := Load(path, "fp", &out); err != nil || out.Gen != 5 || out.RNG != 42 {
		t.Fatalf("previous snapshot damaged by torn temp files: %+v, %v", out, err)
	}
	if err := Save(path, "fp", payload{Gen: 6, RNG: 43}); err != nil {
		t.Fatal(err)
	}
	if err := Load(path, "fp", &out); err != nil || out.Gen != 6 {
		t.Fatalf("post-crash Save did not replace snapshot: %+v, %v", out, err)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	// Successive saves must leave exactly one checkpoint file plus no
	// leftover temp files, and always the latest content.
	dir := t.TempDir()
	path := filepath.Join(dir, "ga.ckpt")
	for gen := 0; gen < 20; gen++ {
		if err := Save(path, "fp", payload{Gen: gen}); err != nil {
			t.Fatal(err)
		}
	}
	var out payload
	if err := Load(path, "fp", &out); err != nil || out.Gen != 19 {
		t.Fatalf("latest snapshot wrong: %+v, %v", out, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ga.ckpt" {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ga.ckpt")
	if err := Save(path, "fp", payload{}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	mut := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if mut == string(data) {
		t.Fatal("could not rewrite version field")
	}
	os.WriteFile(path, []byte(mut), 0o644)
	err := Load(path, "fp", &payload{})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew not rejected: %v", err)
	}
}
