// Package checkpoint provides crash-safe snapshot files for the long-running
// search and evaluation tools (gippr-evolve's multi-hour -bake pipeline in
// particular). A checkpoint is a small versioned JSON envelope around a
// caller-defined payload, written atomically — temp file in the same
// directory, fsync, rename, directory fsync — so a crash, OOM kill or power
// loss at any instant leaves either the previous complete snapshot or the
// new complete snapshot on disk, never a torn file. The payload carries a
// SHA-256 checksum (detects silent corruption) and a caller-supplied config
// fingerprint (refuses to resume a run under a different configuration,
// which would silently break the bit-identical-resume guarantee).
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// Version is the envelope format version. Bump it when the envelope schema
// changes incompatibly; payload schema changes are the caller's concern and
// belong in the fingerprint.
const Version = 1

// ErrFingerprint marks a checkpoint written under a different configuration
// than the one trying to resume from it. Resuming anyway would not be
// bit-identical, so callers must treat this as "start fresh or fix flags",
// never "ignore".
var ErrFingerprint = errors.New("checkpoint: config fingerprint mismatch")

// ErrCorrupt marks a checkpoint whose payload fails its checksum or whose
// envelope does not parse: the file was torn or tampered with outside the
// atomic-write protocol.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// envelope is the on-disk shape.
type envelope struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	SHA256      string          `json:"sha256"`
	Payload     json.RawMessage `json:"payload"`
}

// Save atomically replaces the snapshot at path with payload, recording
// fingerprint for the resume-compatibility check. The write protocol is
// temp file (same directory) + fsync + rename + directory fsync: readers
// concurrently calling Load see either the old or the new snapshot in full.
func Save(path, fingerprint string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal payload: %w", err)
	}
	sum := sha256.Sum256(raw)
	data, err := json.MarshalIndent(envelope{
		Version:     Version,
		Fingerprint: fingerprint,
		SHA256:      hex.EncodeToString(sum[:]),
		Payload:     raw,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	data = append(data, '\n')

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure below, remove the temp so aborted writes don't pile up;
	// the previous snapshot at path is untouched either way.
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: %s: %w", step, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write temp", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync temp", err)
	}
	if err := tmp.Close(); err != nil {
		return fail("close temp", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fail("chmod temp", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir makes the rename durable by fsyncing the containing directory.
// Best-effort: some platforms (and some filesystems) reject directory
// fsync, and the rename's atomicity does not depend on it.
func syncDir(dir string) {
	if runtime.GOOS == "windows" {
		return
	}
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load reads the snapshot at path, verifies its envelope version, payload
// checksum, and config fingerprint, and unmarshals the payload into out.
// It returns an error wrapping fs.ErrNotExist when no snapshot exists,
// ErrCorrupt for torn/invalid files, and ErrFingerprint when the snapshot
// was written under a different configuration.
func Load(path, fingerprint string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("checkpoint: read: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("%w: %s: envelope does not parse: %v", ErrCorrupt, path, err)
	}
	if env.Version != Version {
		return fmt.Errorf("checkpoint: %s: envelope version %d, this build reads %d",
			path, env.Version, Version)
	}
	// The envelope is written indented, which re-indents the embedded
	// payload; compact it back to the canonical form the checksum was
	// computed over.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return fmt.Errorf("%w: %s: payload does not compact: %v", ErrCorrupt, path, err)
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return fmt.Errorf("%w: %s: payload checksum mismatch", ErrCorrupt, path)
	}
	if env.Fingerprint != fingerprint {
		return fmt.Errorf("%w: snapshot %s was written by a run configured as\n  %s\nbut this run is configured as\n  %s\nresuming would not be bit-identical; delete the checkpoint or restore the original flags",
			ErrFingerprint, path, env.Fingerprint, fingerprint)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("checkpoint: %s: payload does not parse: %w", path, err)
	}
	return nil
}
