package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	// The contract the evaluation engine rests on: each index writes only
	// its own slot, so output is bit-identical for any worker count.
	const n = 257
	ref := make([]float64, n)
	For(1, n, func(i int) { ref[i] = float64(i*i) / 7 })
	for _, workers := range []int{2, 3, 8} {
		out := make([]float64, n)
		For(workers, n, func(i int) { out[i] = float64(i*i) / 7 })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, out[i], ref[i])
			}
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(4, 0, func(int) { t.Fatal("called with n=0") })
	ran := false
	For(4, 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("n=1 did not run")
	}
}

func TestForSerialIsInOrder(t *testing.T) {
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
			}()
			For(workers, 64, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForPanicCarriesWorkerStack(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: panic value %T, want *Panic", workers, r)
				}
				if p.Value != "boom" {
					t.Fatalf("workers=%d: original value %v", workers, p.Value)
				}
				msg := p.Error()
				if !strings.Contains(msg, "boom") || !strings.Contains(msg, "worker goroutine stack:") {
					t.Fatalf("workers=%d: message lacks value or worker stack:\n%s", workers, msg)
				}
				// The captured stack must point at the panicking frame, not
				// the re-raising caller.
				if !strings.Contains(msg, "parallel_test") {
					t.Fatalf("workers=%d: worker stack does not show the test frame:\n%s", workers, msg)
				}
			}()
			For(workers, 64, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForPanicUnwrapsError(t *testing.T) {
	sentinel := errors.New("sentinel")
	defer func() {
		p, ok := recover().(*Panic)
		if !ok {
			t.Fatal("expected *Panic")
		}
		if !errors.Is(p, sentinel) {
			t.Fatal("Panic does not unwrap to the original error")
		}
	}()
	For(4, 8, func(i int) { panic(sentinel) })
}

func TestForCtxCompletesWhenNotCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 100
		counts := make([]atomic.Int32, n)
		if err := ForCtx(context.Background(), workers, n, func(i int) { counts[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d not visited exactly once", workers, i)
			}
		}
	}
}

func TestForCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ForCtx(ctx, workers, 50, func(i int) { t.Errorf("workers=%d: ran index %d", workers, i) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestForCtxCancelTruncatesWithoutTearing(t *testing.T) {
	// Cancel after a few indices: every started index must finish (its slot
	// fully written), no index runs twice, and the error is ctx.Err().
	for _, workers := range []int{1, 4} {
		const n = 10000
		ctx, cancel := context.WithCancel(context.Background())
		var started, finished atomic.Int64
		counts := make([]atomic.Int32, n)
		err := ForCtx(ctx, workers, n, func(i int) {
			started.Add(1)
			if started.Load() == 5 {
				cancel()
			}
			counts[i].Add(1)
			finished.Add(1)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if started.Load() != finished.Load() {
			t.Fatalf("workers=%d: %d started but %d finished — in-flight calls must drain",
				workers, started.Load(), finished.Load())
		}
		if finished.Load() == n {
			t.Fatalf("workers=%d: cancellation did not truncate the fan-out", workers)
		}
		for i := range counts {
			if c := counts[i].Load(); c > 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(0) != DefaultWorkers() || Clamp(-3) != DefaultWorkers() {
		t.Fatal("Clamp should map <1 to DefaultWorkers")
	}
	if Clamp(5) != 5 {
		t.Fatal("Clamp changed an explicit count")
	}
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
