package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		For(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	// The contract the evaluation engine rests on: each index writes only
	// its own slot, so output is bit-identical for any worker count.
	const n = 257
	ref := make([]float64, n)
	For(1, n, func(i int) { ref[i] = float64(i*i) / 7 })
	for _, workers := range []int{2, 3, 8} {
		out := make([]float64, n)
		For(workers, n, func(i int) { out[i] = float64(i*i) / 7 })
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %v, want %v", workers, i, out[i], ref[i])
			}
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	For(4, 0, func(int) { t.Fatal("called with n=0") })
	ran := false
	For(4, 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("n=1 did not run")
	}
}

func TestForSerialIsInOrder(t *testing.T) {
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
			}()
			For(workers, 64, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestClamp(t *testing.T) {
	if Clamp(0) != DefaultWorkers() || Clamp(-3) != DefaultWorkers() {
		t.Fatal("Clamp should map <1 to DefaultWorkers")
	}
	if Clamp(5) != 5 {
		t.Fatal("Clamp changed an explicit count")
	}
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
