// Package parallel provides the bounded fork-join primitive underneath the
// simulator's parallel evaluation engine (experiments.Lab grids, ga fitness
// evaluation, cmd tools). The design rule shared by every caller: random
// number generation and any other order-sensitive work happens serially
// before the fork, the forked function touches only its own index's state,
// and results land in pre-sized slots — so worker count changes scheduling,
// never arithmetic, and parallel output is bit-identical to serial output.
//
// Cancellation follows the same rule: ForCtx stops handing out indices when
// its context is cancelled but lets every claimed index finish, so a
// cancelled fan-out truncates the set of completed indices without ever
// producing a partially-computed slot.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default degree of parallelism: the number of
// CPUs the Go runtime will actually schedule on.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Clamp normalizes a worker-count flag or field: values below 1 (zero, the
// unset default, or negatives) mean "pick for me" and become DefaultWorkers.
func Clamp(workers int) int {
	if workers < 1 {
		return DefaultWorkers()
	}
	return workers
}

// Panic is the value re-raised on the caller when a worker goroutine
// panics: it carries the worker's original panic value together with the
// stack captured on the worker at recover time, so the panic output shows
// both the worker's stack and the caller's.
type Panic struct {
	// Value is the worker's original panic value.
	Value any
	// Stack is the worker goroutine's stack at the point of the panic.
	Stack []byte
}

// Error renders the original panic value followed by the worker stack; the
// runtime appends the re-raising goroutine's stack after it.
func (p *Panic) Error() string {
	return fmt.Sprintf("%v\n\nworker goroutine stack:\n%s", p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p *Panic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// For runs f(i) for every i in [0, n) on up to workers goroutines and
// returns when all calls have finished. workers <= 1 (or n <= 1) runs f
// inline on the calling goroutine, in index order, with zero overhead —
// the serial engine and the one-worker parallel engine are literally the
// same code path. Indices are handed out dynamically, so uneven cell costs
// (a thrashing workload next to an LLC-friendly one) still load-balance.
//
// f must not panic across goroutines silently: a panic in any worker is
// re-raised on the caller as a *Panic (original value plus worker stack)
// after the remaining workers drain, so test failures and programming
// errors surface exactly as they do serially.
func For(workers, n int, f func(i int)) {
	// context.Background is never cancelled, so the only possible outcome
	// is completion (or a re-raised panic).
	_ = ForCtx(context.Background(), workers, n, f)
}

// ForCtx is For with cooperative cancellation: once ctx is cancelled, no
// new index is handed out (serially or to any worker), in-flight calls
// drain to completion, and ForCtx returns ctx.Err(). A nil return means
// every index in [0, n) ran exactly once; a non-nil return means a prefix
// of the claimed indices ran, each to completion — cancellation truncates
// the fan-out, it never leaves a slot half-written.
func ForCtx(ctx context.Context, workers, n int, f func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Wrap panics exactly as the multi-worker path does, so a
			// recovering caller sees the same *Panic shape at any width.
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(&Panic{Value: r, Stack: debug.Stack()})
					}
				}()
				f(i)
			}()
		}
		return nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value // first worker *Panic, re-raised on the caller
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &Panic{Value: r, Stack: debug.Stack()})
							// Stop handing out work; let peers drain.
							next.Store(int64(n))
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return ctx.Err()
}
