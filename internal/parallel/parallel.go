// Package parallel provides the bounded fork-join primitive underneath the
// simulator's parallel evaluation engine (experiments.Lab grids, ga fitness
// evaluation, cmd tools). The design rule shared by every caller: random
// number generation and any other order-sensitive work happens serially
// before the fork, the forked function touches only its own index's state,
// and results land in pre-sized slots — so worker count changes scheduling,
// never arithmetic, and parallel output is bit-identical to serial output.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default degree of parallelism: the number of
// CPUs the Go runtime will actually schedule on.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Clamp normalizes a worker-count flag or field: values below 1 (zero, the
// unset default, or negatives) mean "pick for me" and become DefaultWorkers.
func Clamp(workers int) int {
	if workers < 1 {
		return DefaultWorkers()
	}
	return workers
}

// For runs f(i) for every i in [0, n) on up to workers goroutines and
// returns when all calls have finished. workers <= 1 (or n <= 1) runs f
// inline on the calling goroutine, in index order, with zero overhead —
// the serial engine and the one-worker parallel engine are literally the
// same code path. Indices are handed out dynamically, so uneven cell costs
// (a thrashing workload next to an LLC-friendly one) still load-balance.
//
// f must not panic across goroutines silently: a panic in any worker is
// re-raised on the caller after the remaining workers drain, so test
// failures and programming errors surface exactly as they do serially.
func For(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value // first worker panic, re-raised on the caller
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, r)
							// Stop handing out work; let peers drain.
							next.Store(int64(n))
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}
